(* Determinism and fast-path differential tests.

   The engine's inline fast path (Config.sched_quantum > 0) claims to be
   bit-identical to the fully scheduled legacy execution (sched_quantum =
   0): same simulated cycles, same event and protocol statistics, same
   final memory image. These tests hold it to that claim, on both
   protocols, across fixed fork-tree shapes, random programs, and real
   benchmarks — and additionally pin down that the simulator is
   deterministic (same seed, same everything). *)

open Warden_machine
open Warden_sim
open Warden_runtime

let cfg_q quantum = { (Config.dual_socket ()) with Config.sched_quantum = quantum }

(* --- fork-tree programs (same shape family as test_random_programs) --- *)

type prog = Leaf of int | Node of prog * prog

let rec size = function Leaf _ -> 1 | Node (l, r) -> 1 + size l + size r

let gen_prog =
  QCheck2.Gen.(
    sized_size (int_range 1 24)
    @@ fix (fun self n ->
           if n <= 1 then map (fun w -> Leaf w) (int_range 1 24)
           else
             frequency
               [
                 (1, map (fun w -> Leaf w) (int_range 1 24));
                 ( 3,
                   map2
                     (fun l r -> Node (l, r))
                     (self (n / 2))
                     (self (n - 1 - (n / 2))) );
               ]))

let out_len = 24

let interpret ~input ~scratch prog =
  let rec go path slot prog =
    let out = Sarray.create ~len:out_len ~elt_bytes:8 in
    (match prog with
    | Leaf work ->
        for i = 0 to out_len - 1 do
          Par.tick 1;
          Sarray.set out i
            (Int64.add
               (Sarray.get input ((path + (i * work)) mod Sarray.length input))
               (Int64.of_int ((path * 1000) + i)))
        done
    | Node (l, r) ->
        let lo, ro =
          Par.par2
            (fun () -> go ((2 * path) + 1) (slot + 1) l)
            (fun () -> go ((2 * path) + 2) (slot + 1 + size l) r)
        in
        for i = 0 to out_len - 1 do
          Par.tick 1;
          Sarray.set out i (Int64.logxor (Sarray.get lo i) (Sarray.get ro i))
        done);
    for i = 0 to out_len - 1 do
      Sarray.set scratch ((slot * out_len) + i) (Sarray.get out i)
    done;
    out
  in
  go 0 0 prog

(* Everything observable about one simulation run. *)
type snapshot = {
  makespan : int;
  sstats : Sstats.t;
  pstats : Warden_proto.Pstats.t;
  energy : float * float * float;
  out : int64 array;
  scratch : int64 array;
}

let run_tree ~quantum proto prog =
  let eng = Engine.create (cfg_q quantum) ~proto in
  let ms = Engine.memsys eng in
  let ntasks = size prog in
  let (out, scratch), _ =
    Par.run eng (fun () ->
        let input = Sarray.create ~len:256 ~elt_bytes:8 in
        Warden_pbbs.Bkit.gen_ints ms input ~seed:17L ~bound:1_000_003L;
        let scratch = Sarray.create ~len:(ntasks * out_len) ~elt_bytes:8 in
        (interpret ~input ~scratch prog, scratch))
  in
  Memsys.flush_all ms;
  let en = Memsys.energy ms in
  {
    makespan = (Memsys.sstats ms).Sstats.cycles;
    sstats = Memsys.sstats ms;
    pstats = Memsys.pstats ms;
    energy = (Energy.network_pj en, Energy.processor_pj en, Energy.total_pj en);
    out = Array.init out_len (fun i -> Sarray.peek_host ms out i);
    scratch = Array.init (ntasks * out_len) (fun i -> Sarray.peek_host ms scratch i);
  }

let snap_equal a b =
  a.makespan = b.makespan && a.sstats = b.sstats && a.pstats = b.pstats
  && a.energy = b.energy && a.out = b.out && a.scratch = b.scratch

let check_snap_equal label a b =
  (* Headline fields first for a readable failure, then the whole thing. *)
  Alcotest.(check int) (label ^ ": makespan") a.makespan b.makespan;
  Alcotest.(check int)
    (label ^ ": instructions")
    a.sstats.Sstats.instructions b.sstats.Sstats.instructions;
  Alcotest.(check int)
    (label ^ ": sb_stalls") a.sstats.Sstats.sb_stalls b.sstats.Sstats.sb_stalls;
  Alcotest.(check int)
    (label ^ ": invalidations")
    a.pstats.Warden_proto.Pstats.invalidations
    b.pstats.Warden_proto.Pstats.invalidations;
  Alcotest.(check bool) (label ^ ": full snapshot") true (snap_equal a b)

let protos = [ (`Mesi, "mesi"); (`Warden, "warden") ]

let fixed_shapes =
  let rec left n = if n = 0 then Leaf 3 else Node (left (n - 1), Leaf 1) in
  let rec right n = if n = 0 then Leaf 5 else Node (Leaf 2, right (n - 1)) in
  let rec bal n = if n = 0 then Leaf 7 else Node (bal (n - 1), bal (n - 1)) in
  [ ("single leaf", Leaf 4); ("left spine", left 6); ("right spine", right 6);
    ("balanced depth 4", bal 4) ]

(* 1. Determinism: the same run twice gives the same everything. *)
let determinism_tests =
  List.map
    (fun (name, prog) ->
      Alcotest.test_case ("repeat run: " ^ name) `Quick (fun () ->
          List.iter
            (fun (proto, pname) ->
              check_snap_equal
                (Printf.sprintf "%s/%s" name pname)
                (run_tree ~quantum:4096 proto prog)
                (run_tree ~quantum:4096 proto prog))
            protos))
    fixed_shapes

(* 2. Differential: fast path (various quanta) vs legacy (quantum 0). *)
let differential_tree_tests =
  List.map
    (fun (name, prog) ->
      Alcotest.test_case ("fast path = legacy: " ^ name) `Quick (fun () ->
          List.iter
            (fun (proto, pname) ->
              let legacy = run_tree ~quantum:0 proto prog in
              List.iter
                (fun q ->
                  check_snap_equal
                    (Printf.sprintf "%s/%s q=%d" name pname q)
                    legacy
                    (run_tree ~quantum:q proto prog))
                [ 1; 64; 4096 ])
            protos))
    fixed_shapes

let prop_differential prog =
  List.for_all
    (fun (proto, _) ->
      let legacy = run_tree ~quantum:0 proto prog in
      List.for_all
        (fun q -> snap_equal legacy (run_tree ~quantum:q proto prog))
        [ 1; 4096 ])
    protos

let qtest =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15
       ~name:"random programs: fast path = legacy (both protocols)"
       ~print:(fun p ->
         let rec pp = function
           | Leaf w -> Printf.sprintf "L%d" w
           | Node (l, r) -> Printf.sprintf "(%s %s)" (pp l) (pp r)
         in
         pp p)
       gen_prog prop_differential)

(* 3. Differential on real benchmarks, full run_result (includes derived
   floats and the verified bit). *)
let bench_differential name =
  Alcotest.test_case ("benchmark: " ^ name) `Quick (fun () ->
      let spec = Option.get (Warden_pbbs.Suite.find name) in
      List.iter
        (fun (proto, pname) ->
          let run q =
            Warden_harness.Exp.run_bench ~quick:true ~config:(cfg_q q) ~proto
              spec
          in
          let legacy = run 0 and fast = run 4096 in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s verified" name pname)
            true fast.Warden_harness.Exp.verified;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s cycles" name pname)
            legacy.Warden_harness.Exp.cycles fast.Warden_harness.Exp.cycles;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s full result" name pname)
            true (legacy = fast))
        protos)

let suite =
  determinism_tests @ differential_tree_tests
  @ [ qtest ]
  @ List.map bench_differential [ "fib"; "palindrome"; "msort" ]

let () = Alcotest.run "warden-determinism" [ ("determinism", suite) ]
