(* Golden end-to-end stats snapshot: one small kernel simulated under both
   MESI and WARDen, with the exact instruction / cycle / hit / miss /
   coherence-event counts asserted verbatim.

   These numbers pin the simulator's observable behaviour bit-for-bit: a
   hot-path rewrite (directory layout, grant plumbing, cache probe order)
   must reproduce every one of them, and a future perf PR that silently
   drifts any counter fails here rather than in a paper figure.

   To regenerate after an *intentional* semantic change:
     GOLDEN_DUMP=1 dune exec test/test_golden.exe
   and paste the printed tables below. *)

open Warden_machine
open Warden_sim
open Warden_proto

type snap = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  rmws : int;
  l1_hits : int;
  l2_hits : int;
  priv_misses : int;
  sb_stalls : int;
  dir_accesses : int;
  invalidations : int;
  downgrades : int;
  fwds : int;
  writebacks : int;
  msgs : int;
  l3_hits : int;
  l3_misses : int;
  zero_fills : int;
  ward_grants : int;
  ward_adds : int;
  ward_removes : int;
  recon_blocks : int;
  recon_flushes : int;
}

let run_kernel ~bench ~scale ~proto =
  let spec = Option.get (Warden_pbbs.Suite.find bench) in
  let eng = Engine.create (Config.dual_socket ()) ~proto in
  let verified = spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng in
  Alcotest.(check bool) (bench ^ ": result verified") true verified;
  let ms = Engine.memsys eng in
  let ss = Memsys.sstats ms and ps = Memsys.pstats ms in
  {
    instructions = ss.Sstats.instructions;
    cycles = ss.Sstats.cycles;
    loads = ss.Sstats.loads;
    stores = ss.Sstats.stores;
    rmws = ss.Sstats.rmws;
    l1_hits = ss.Sstats.l1_hits;
    l2_hits = ss.Sstats.l2_hits;
    priv_misses = ss.Sstats.priv_misses;
    sb_stalls = ss.Sstats.sb_stalls;
    dir_accesses = ps.Pstats.dir_accesses;
    invalidations = ps.Pstats.invalidations;
    downgrades = ps.Pstats.downgrades;
    fwds = ps.Pstats.fwds;
    writebacks = ps.Pstats.writebacks;
    msgs = Pstats.total_msgs ps;
    l3_hits = ps.Pstats.l3_hits;
    l3_misses = ps.Pstats.l3_misses;
    zero_fills = ps.Pstats.zero_fills;
    ward_grants = ps.Pstats.ward_grants;
    ward_adds = ps.Pstats.ward_adds;
    ward_removes = ps.Pstats.ward_removes;
    recon_blocks = ps.Pstats.recon_blocks;
    recon_flushes = ps.Pstats.recon_flushes;
  }

let fields =
  [
    ("instructions", fun s -> s.instructions);
    ("cycles", fun s -> s.cycles);
    ("loads", fun s -> s.loads);
    ("stores", fun s -> s.stores);
    ("rmws", fun s -> s.rmws);
    ("l1_hits", fun s -> s.l1_hits);
    ("l2_hits", fun s -> s.l2_hits);
    ("priv_misses", fun s -> s.priv_misses);
    ("sb_stalls", fun s -> s.sb_stalls);
    ("dir_accesses", fun s -> s.dir_accesses);
    ("invalidations", fun s -> s.invalidations);
    ("downgrades", fun s -> s.downgrades);
    ("fwds", fun s -> s.fwds);
    ("writebacks", fun s -> s.writebacks);
    ("msgs", fun s -> s.msgs);
    ("l3_hits", fun s -> s.l3_hits);
    ("l3_misses", fun s -> s.l3_misses);
    ("zero_fills", fun s -> s.zero_fills);
    ("ward_grants", fun s -> s.ward_grants);
    ("ward_adds", fun s -> s.ward_adds);
    ("ward_removes", fun s -> s.ward_removes);
    ("recon_blocks", fun s -> s.recon_blocks);
    ("recon_flushes", fun s -> s.recon_flushes);
  ]

let dump label s =
  Printf.printf "  (* %s *)\n  [\n" label;
  List.iter (fun (n, f) -> Printf.printf "    (%S, %d);\n" n (f s)) fields;
  Printf.printf "  ]\n%!"

let assert_snap label golden s =
  List.iter
    (fun (name, expect) ->
      let actual = (List.assoc name fields) s in
      Alcotest.(check int) (label ^ ": " ^ name) expect actual)
    golden

(* ---- golden tables (captured from the seed simulator) -------------------- *)

let golden_msort_mesi =
  [
    ("instructions", 56207);
    ("cycles", 144034);
    ("loads", 26506);
    ("stores", 9943);
    ("rmws", 10);
    ("l1_hits", 35262);
    ("l2_hits", 0);
    ("priv_misses", 1197);
    ("sb_stalls", 0);
    ("dir_accesses", 1197);
    ("invalidations", 34);
    ("downgrades", 322);
    ("fwds", 166);
    ("writebacks", 389);
    ("msgs", 2973);
    ("l3_hits", 493);
    ("l3_misses", 125);
    ("zero_fills", 407);
    ("ward_grants", 0);
    ("ward_adds", 9);
    ("ward_removes", 9);
    ("recon_blocks", 0);
    ("recon_flushes", 0);
  ]

let golden_msort_warden =
  [
    ("instructions", 56019);
    ("cycles", 135431);
    ("loads", 26318);
    ("stores", 9943);
    ("rmws", 10);
    ("l1_hits", 35074);
    ("l2_hits", 0);
    ("priv_misses", 1197);
    ("sb_stalls", 0);
    ("dir_accesses", 1197);
    ("invalidations", 34);
    ("downgrades", 188);
    ("fwds", 99);
    ("writebacks", 133);
    ("msgs", 2906);
    ("l3_hits", 560);
    ("l3_misses", 125);
    ("zero_fills", 407);
    ("ward_grants", 256);
    ("ward_adds", 9);
    ("ward_removes", 9);
    ("recon_blocks", 256);
    ("recon_flushes", 512);
  ]

let golden_fib_mesi =
  [
    ("instructions", 1864);
    ("cycles", 8495);
    ("loads", 335);
    ("stores", 85);
    ("rmws", 26);
    ("l1_hits", 249);
    ("l2_hits", 1);
    ("priv_misses", 196);
    ("sb_stalls", 0);
    ("dir_accesses", 196);
    ("invalidations", 8);
    ("downgrades", 54);
    ("fwds", 29);
    ("writebacks", 26);
    ("msgs", 451);
    ("l3_hits", 117);
    ("l3_misses", 0);
    ("zero_fills", 48);
    ("ward_grants", 0);
    ("ward_adds", 12);
    ("ward_removes", 12);
    ("recon_blocks", 0);
    ("recon_flushes", 0);
  ]

let golden_fib_warden =
  [
    ("instructions", 1864);
    ("cycles", 8495);
    ("loads", 335);
    ("stores", 85);
    ("rmws", 26);
    ("l1_hits", 249);
    ("l2_hits", 1);
    ("priv_misses", 196);
    ("sb_stalls", 0);
    ("dir_accesses", 196);
    ("invalidations", 8);
    ("downgrades", 52);
    ("fwds", 28);
    ("writebacks", 14);
    ("msgs", 450);
    ("l3_hits", 118);
    ("l3_misses", 0);
    ("zero_fills", 48);
    ("ward_grants", 12);
    ("ward_adds", 12);
    ("ward_removes", 12);
    ("recon_blocks", 12);
    ("recon_flushes", 24);
  ]

let kernels =
  [
    ("msort", 1_000, `Mesi, golden_msort_mesi);
    ("msort", 1_000, `Warden, golden_msort_warden);
    ("fib", 12, `Mesi, golden_fib_mesi);
    ("fib", 12, `Warden, golden_fib_warden);
  ]

let test_golden () =
  List.iter
    (fun (bench, scale, proto, golden) ->
      let label =
        Printf.sprintf "%s/%s" bench
          (match proto with
          | `Mesi -> "mesi"
          | `Warden -> "warden"
          | `Msi_bus -> "msi-bus"
          | `Sisd -> "sisd")
      in
      let s = run_kernel ~bench ~scale ~proto in
      if Sys.getenv_opt "GOLDEN_DUMP" <> None then dump label s
      else assert_snap label golden s)
    kernels

let suite = [ Alcotest.test_case "end-to-end stats snapshot" `Quick test_golden ]
let () = Alcotest.run "warden-golden" [ ("golden", suite) ]
