(* Tests for the trace layer: the offline WARD classifier (§3.1 / Fig. 3)
   and the live disentanglement/WARD oracles. *)

open Warden_trace
open Warden_machine
open Warden_sim
open Warden_runtime

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ev thread write addr value = { Wardprop.thread; write; addr; value }

(* --- Wardprop: the Figure 3 events ----------------------------------------- *)

let test_event1_raw () =
  match Wardprop.classify [ ev 0 true 0 1L; ev 1 false 0 0L ] with
  | Wardprop.Raw_dependence { writer = 0; reader = 1; addr = 0 } -> ()
  | _ -> Alcotest.fail "expected RAW"

let test_event2_waw_ordered () =
  match Wardprop.classify [ ev 0 true 0 1L; ev 1 true 0 2L ] with
  | Wardprop.Waw_ordered { first = 0; second = 1; addr = 0 } -> ()
  | _ -> Alcotest.fail "expected ordered WAW"

let test_event3_waw_apathetic () =
  Alcotest.(check bool) "same-value WAW is WARD" true
    (Wardprop.is_ward [ ev 0 true 0 1L; ev 1 true 0 1L ])

let test_private_data_is_ward () =
  (* A single thread reading and writing its own data is always WARD. *)
  Alcotest.(check bool) "own RAW fine" true
    (Wardprop.is_ward [ ev 0 true 0 1L; ev 0 false 0 1L; ev 0 true 0 2L ])

let test_read_only_sharing_is_ward () =
  Alcotest.(check bool) "pure reads fine" true
    (Wardprop.is_ward [ ev 0 false 0 0L; ev 1 false 0 0L; ev 2 false 0 0L ])

let test_raw_after_apathetic_waw () =
  (* The sieve pattern plus a cross-thread read: not WARD. *)
  match Wardprop.classify [ ev 0 true 4 0L; ev 1 true 4 0L; ev 2 false 4 0L ] with
  | Wardprop.Raw_dependence { reader = 2; _ } -> ()
  | _ -> Alcotest.fail "expected RAW by the third thread"

let test_empty_trace_is_ward () =
  Alcotest.(check bool) "no events, no dependences" true (Wardprop.is_ward [])

let test_single_event_is_ward () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "one event cannot depend on anything" true
        (Wardprop.is_ward [ e ]))
    [ ev 0 true 0 1L; ev 3 false 17 0L ]

let test_first_dependence_wins () =
  (* Two cross-thread RAW dependences; the classifier reports the one that
     appears first in stream order (thread 1 reading thread 0's write to
     address 10), not the later one at address 20. *)
  let trace =
    [ ev 0 true 10 1L; ev 1 true 20 2L; ev 1 false 10 0L; ev 0 false 20 0L ]
  in
  match Wardprop.classify trace with
  | Wardprop.Raw_dependence { addr = 10; writer = 0; reader = 1 } -> ()
  | _ -> Alcotest.fail "expected the stream-order-first RAW at addr 10"

let test_same_value_waw_stream () =
  (* An apathetic (same-value) WAW does not end the scan: the write is
     absorbed and a later genuine dependence is still found. *)
  match
    Wardprop.classify [ ev 0 true 0 5L; ev 1 true 0 5L; ev 2 true 0 9L ]
  with
  | Wardprop.Waw_ordered { addr = 0; first = 1; second = 2 } -> ()
  | _ -> Alcotest.fail "expected ordered WAW against the absorbed writer"

let wardprop_single_thread_always_ward =
  qtest ~count:200 "single-threaded traces are always WARD"
    QCheck2.Gen.(list (triple bool (int_range 0 50) (int_range 0 5)))
    (fun ops ->
      Wardprop.is_ward
        (List.map (fun (w, a, v) -> ev 0 w a (Int64.of_int v)) ops))

let wardprop_disjoint_threads_always_ward =
  qtest ~count:200 "threads touching disjoint addresses are WARD"
    QCheck2.Gen.(list (triple (int_range 0 3) bool (int_range 0 50)))
    (fun ops ->
      (* Thread t only touches addresses congruent to t mod 4. *)
      Wardprop.is_ward
        (List.map (fun (t, w, a) -> ev t w ((a * 4) + t) 7L) ops))

(* --- Live oracle -------------------------------------------------------------- *)

let run_with_oracle prog =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Warden in
  Oracle.with_oracle (fun () -> fst (Par.run eng prog))

let test_oracle_clean_program () =
  let _, report =
    run_with_oracle (fun () ->
        Par.parreduce ~grain:8 0 256
          ~map:(fun i ->
            let a = Par.alloc ~bytes:64 in
            Par.write a ~size:8 (Int64.of_int i);
            Int64.to_int (Par.read a ~size:8))
          ~combine:( + ) ~init:0)
  in
  Alcotest.(check bool) "clean" true (Result.is_ok (Oracle.check_clean report));
  Alcotest.(check bool) "saw accesses" true (report.Oracle.accesses > 256);
  Alcotest.(check bool) "some accesses in ward regions" true
    (report.Oracle.ward_accesses > 0)

let test_oracle_counts () =
  let _, report =
    run_with_oracle (fun () ->
        let a = Par.alloc ~bytes:8 in
        Par.write a ~size:8 1L;
        ignore (Par.read a ~size:8))
  in
  Alcotest.(check int) "exactly two program accesses" 2 report.Oracle.accesses

let test_ward_fraction () =
  let r =
    {
      Oracle.accesses = 200;
      ward_accesses = 50;
      disentanglement_violations = [];
      ward_violations = [];
    }
  in
  Alcotest.(check (float 1e-9)) "fraction" 0.25 (Oracle.ward_fraction r)

let test_check_clean_reports () =
  let r =
    {
      Oracle.accesses = 1;
      ward_accesses = 0;
      disentanglement_violations = [ "bad" ];
      ward_violations = [];
    }
  in
  match Oracle.check_clean r with
  | Error msg -> Alcotest.(check bool) "mentions violation" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected error"

(* A deliberately entangled program must be caught: it leaks a pointer to a
   sibling's heap through a shared cell — sibling heaps are not on each
   other's root paths. *)
let test_oracle_catches_entanglement () =
  let _, report =
    run_with_oracle (fun () ->
        let shared = Par.alloc ~bytes:8 in
        let _ =
          Par.par2
            (fun () ->
              let mine = Par.alloc ~bytes:8 in
              Par.write mine ~size:8 42L;
              Par.write shared ~size:8 (Int64.of_int mine);
              (* Keep running so the sibling can observe the leak. *)
              Par.tick 4000)
            (fun () ->
              Par.tick 200;
              let rec wait n =
                if n > 0 then begin
                  let p = Par.read shared ~size:8 in
                  if p <> 0L then
                    (* Entangled: touching a sibling-heap address. *)
                    ignore (Par.read (Int64.to_int p) ~size:8)
                  else begin
                    Par.tick 50;
                    wait (n - 1)
                  end
                end
              in
              wait 50)
        in
        ())
  in
  Alcotest.(check bool) "entanglement detected" true
    (report.Oracle.disentanglement_violations <> [])

let suite =
  [
    Alcotest.test_case "fig3 event 1 (RAW)" `Quick test_event1_raw;
    Alcotest.test_case "fig3 event 2 (ordered WAW)" `Quick test_event2_waw_ordered;
    Alcotest.test_case "fig3 event 3 (apathetic WAW)" `Quick test_event3_waw_apathetic;
    Alcotest.test_case "private data is WARD" `Quick test_private_data_is_ward;
    Alcotest.test_case "read-only sharing is WARD" `Quick test_read_only_sharing_is_ward;
    Alcotest.test_case "RAW after apathetic WAW" `Quick test_raw_after_apathetic_waw;
    Alcotest.test_case "empty trace is WARD" `Quick test_empty_trace_is_ward;
    Alcotest.test_case "single event is WARD" `Quick test_single_event_is_ward;
    Alcotest.test_case "first dependence in stream order wins" `Quick
      test_first_dependence_wins;
    Alcotest.test_case "apathetic WAW absorbs the writer" `Quick
      test_same_value_waw_stream;
    wardprop_single_thread_always_ward;
    wardprop_disjoint_threads_always_ward;
    Alcotest.test_case "oracle: clean program" `Quick test_oracle_clean_program;
    Alcotest.test_case "oracle: access counting" `Quick test_oracle_counts;
    Alcotest.test_case "oracle: ward fraction" `Quick test_ward_fraction;
    Alcotest.test_case "oracle: error reporting" `Quick test_check_clean_reports;
    Alcotest.test_case "oracle: catches entanglement" `Quick
      test_oracle_catches_entanglement;
  ]

let () = Alcotest.run "warden-trace" [ ("trace", suite) ]
