(* warden.obs: the coherence-event observability layer.

   Three layers of assurance:

   1. Unit tests for the recording primitives (ring, histogram, heatmap).
   2. Non-perturbation: every observable of the simulation — cycles,
      stats, energy, verification — is bit-identical across
      obs_level ∈ {off, counters, full} × sim_domains ∈ {1, 2}, i.e.
      tracing a run never changes the run.
   3. The sinks themselves: counters agree with the protocol statistics
      banks, the Chrome trace is well-formed JSON and byte-identical
      across sim_domains, a MESI run of fib records invalidations, and a
      WARD-heavy kernel records strictly less coherence traffic under
      WARDen than under MESI. *)

open Warden_machine
open Warden_sim
open Warden_proto
open Warden_harness
module Obs = Warden_obs.Obs
module Oev = Warden_obs.Events
module Ring = Warden_obs.Ring
module Hist = Warden_obs.Hist
module Heat = Warden_obs.Sink_heatmap
module Chrome = Warden_obs.Sink_chrome

(* ---- 1. primitives ------------------------------------------------------- *)

let test_ring () =
  let r = Ring.create ~capacity:16 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  for i = 0 to 15 do
    Alcotest.(check bool) "push fits" true
      (Ring.push r ~code:i ~cycle:(100 + i) ~core:(i mod 4) ~blk:(i * 8)
         ~arg:(i * 2) ~seq:i)
  done;
  Alcotest.(check int) "full" 16 (Ring.length r);
  Alcotest.(check bool) "push on full rejected" false
    (Ring.push r ~code:99 ~cycle:0 ~core:0 ~blk:0 ~arg:0 ~seq:99);
  Alcotest.(check int) "rejected push writes nothing" 16 (Ring.length r);
  let seen = ref [] in
  Ring.drain r (fun ~code ~cycle ~core ~blk ~arg ~seq ->
      ignore (cycle, core, blk, arg, seq);
      seen := code :: !seen);
  Alcotest.(check (list int))
    "drain replays oldest-first"
    (List.init 16 (fun i -> i))
    (List.rev !seen);
  Alcotest.(check int) "drain clears" 0 (Ring.length r);
  Alcotest.(check bool) "reusable after drain" true
    (Ring.push r ~code:1 ~cycle:1 ~core:1 ~blk:1 ~arg:1 ~seq:1)

let test_hist () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Hist.bucket_of v))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9);
      (1024, 10); (max_int, Hist.nbuckets - 1) ];
  let h = Hist.create ~classes:3 in
  List.iter (fun v -> Hist.add h ~cls:1 v) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Hist.count h ~cls:1);
  Alcotest.(check int) "sum" 106 (Hist.sum h ~cls:1);
  Alcotest.(check (float 1e-9)) "mean" 26.5 (Hist.mean h ~cls:1);
  Alcotest.(check int) "bucket 1 holds 2,3" 2 (Hist.get h ~cls:1 ~bucket:1);
  Alcotest.(check int) "other class empty" 0 (Hist.count h ~cls:0);
  Alcotest.(check string) "empty class renders nothing" ""
    (Hist.render h ~cls:2 ~title:"t");
  Alcotest.(check bool) "non-empty class renders" true
    (String.length (Hist.render h ~cls:1 ~title:"t") > 0)

let test_percentile () =
  let h = Hist.create ~classes:3 in
  (* Empty class: 0 by definition. *)
  Alcotest.(check (float 0.)) "empty p50" 0. (Hist.percentile h ~cls:0 50.);
  Alcotest.(check (float 0.)) "empty p99.9" 0. (Hist.percentile h ~cls:0 99.9);
  (* Single bucket: 100 copies of 1 all land in bucket 0 = [0, 2); the
     interpolation sweeps that bucket linearly. *)
  for _ = 1 to 100 do
    Hist.add h ~cls:0 1
  done;
  Alcotest.(check (float 1e-9)) "single-bucket p0 = lower edge" 0.
    (Hist.percentile h ~cls:0 0.);
  Alcotest.(check (float 1e-9)) "single-bucket p50 = midpoint" 1.
    (Hist.percentile h ~cls:0 50.);
  Alcotest.(check (float 1e-9)) "single-bucket p100 = upper edge" 2.
    (Hist.percentile h ~cls:0 100.);
  (* Saturated: max_int lands in the last bucket [2^31, 2^32). *)
  for _ = 1 to 10 do
    Hist.add h ~cls:1 max_int
  done;
  let p50 = Hist.percentile h ~cls:1 50. in
  Alcotest.(check bool) "saturated p50 within last bucket" true
    (p50 >= Float.of_int (1 lsl (Hist.nbuckets - 1))
    && p50 <= Float.of_int 1 *. Float.pow 2. (float_of_int Hist.nbuckets));
  (* Multi-bucket: percentiles are monotone in p and bounded by the
     covering bucket's edges. *)
  List.iter (fun v -> Hist.add h ~cls:2 v) [ 2; 4; 8; 9; 1000 ];
  let prev = ref 0. in
  List.iter
    (fun p ->
      let v = Hist.percentile h ~cls:2 p in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at p%g" p)
        true (v >= !prev);
      prev := v)
    [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ];
  Alcotest.(check bool) "p100 covers the largest sample" true
    (Hist.percentile h ~cls:2 100. >= 1000.);
  Alcotest.check_raises "p out of range rejected"
    (Invalid_argument "Hist: bad percentile") (fun () ->
      ignore (Hist.percentile h ~cls:0 100.5));
  Alcotest.check_raises "negative p rejected"
    (Invalid_argument "Hist: bad percentile") (fun () ->
      ignore (Hist.percentile h ~cls:0 (-1.)))

let test_heatmap () =
  let t = Heat.create () in
  Alcotest.(check int) "no blocks yet" 0 (Heat.blocks t);
  (* block 7: two misses and an invalidation; block 3: one miss. *)
  Heat.touch_block t ~blk:7 ~cls:0;
  Heat.touch_block t ~blk:7 ~cls:0;
  Heat.touch_block t ~blk:7 ~cls:1;
  Heat.touch_block t ~blk:3 ~cls:0;
  Heat.mark_ward t ~blk:3;
  Alcotest.(check int) "two blocks" 2 (Heat.blocks t);
  Alcotest.(check int) "block 7 misses" 2 (Heat.block_count t ~blk:7 ~cls:0);
  Alcotest.(check int) "block 7 invs" 1 (Heat.block_count t ~blk:7 ~cls:1);
  Alcotest.(check int) "untouched cell" 0 (Heat.block_count t ~blk:3 ~cls:1);
  (match Heat.top_blocks t ~n:2 with
  | [ (b1, c1, w1); (b2, _, w2) ] ->
      Alcotest.(check int) "hottest block first" 7 b1;
      Alcotest.(check int) "hottest total" 3 (Array.fold_left ( + ) 0 c1);
      Alcotest.(check bool) "7 not warded" false w1;
      Alcotest.(check int) "runner-up" 3 b2;
      Alcotest.(check bool) "3 warded" true w2
  | l -> Alcotest.failf "expected 2 rows, got %d" (List.length l));
  Heat.touch_region t ~lo:1024 ~hi:2048 ~exit:false ~flushed:0;
  Heat.touch_region t ~lo:1024 ~hi:2048 ~exit:true ~flushed:5;
  Heat.touch_region t ~lo:64 ~hi:128 ~exit:false ~flushed:0;
  Alcotest.(check (list (pair int int)))
    "regions sorted by lo, enters/exits folded"
    [ (64, 1); (1024, 1) ]
    (List.map (fun (lo, _, enters, _, _) -> (lo, enters)) (Heat.regions t));
  (match Heat.regions t with
  | [ _; (_, hi, _, exits, flushed) ] ->
      Alcotest.(check int) "hi" 2048 hi;
      Alcotest.(check int) "exits" 1 exits;
      Alcotest.(check int) "flushed" 5 flushed
  | _ -> Alcotest.fail "expected 2 regions");
  Alcotest.(check bool) "block table renders" true
    (String.length (Heat.render_blocks t ~n:4) > 0)

(* ---- shared simulation driver -------------------------------------------- *)

let cfg ?(domains = 1) lvl =
  {
    (Config.dual_socket ()) with
    Config.obs_level = lvl;
    sim_domains = domains;
  }

let run_ms ~bench ~scale ~proto config =
  let spec = Option.get (Warden_pbbs.Suite.find bench) in
  let eng = Engine.create config ~proto in
  let ok = spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng in
  Alcotest.(check bool) (bench ^ ": verified") true ok;
  Engine.memsys eng

let kernels = [ ("fib", 12); ("msort", 1_000) ]
let protos = [ (`Mesi, "mesi"); (`Warden, "warden") ]

(* ---- 2. recording never perturbs the simulation --------------------------- *)

let test_non_perturbation () =
  List.iter
    (fun (bench, _scale) ->
      let spec = Option.get (Warden_pbbs.Suite.find bench) in
      List.iter
        (fun (proto, pname) ->
          let run lvl domains =
            Exp.run_bench ~quick:true ~config:(cfg ~domains lvl) ~proto spec
          in
          let base = run Config.Obs_off 1 in
          List.iter
            (fun ((lvl, lname), domains) ->
              let label =
                Printf.sprintf "%s/%s obs=%s D=%d" bench pname lname domains
              in
              let r = run lvl domains in
              Alcotest.(check bool) (label ^ ": verified") true r.Exp.verified;
              Alcotest.(check int) (label ^ ": cycles") base.Exp.cycles
                r.Exp.cycles;
              Alcotest.(check (float 0.))
                (label ^ ": energy") base.Exp.energy_total_pj
                r.Exp.energy_total_pj;
              Alcotest.(check bool) (label ^ ": full result") true (base = r))
            (List.concat_map
               (fun lvl -> [ (lvl, 1); (lvl, 2) ])
               [
                 (Config.Obs_off, "off");
                 (Config.Obs_counters, "counters");
                 (Config.Obs_full, "full");
               ]))
        protos)
    kernels

(* ---- 3. counters agree with the statistics banks --------------------------- *)

let counter_agreement () =
  List.iter
    (fun (bench, scale) ->
      List.iter
        (fun (proto, pname) ->
          let ms = run_ms ~bench ~scale ~proto (cfg Config.Obs_counters) in
          let obs = Memsys.obs ms in
          let ss = Memsys.sstats ms and ps = Memsys.pstats ms in
          let check name expect code =
            Alcotest.(check int)
              (Printf.sprintf "%s/%s: %s" bench pname name)
              expect (Obs.count obs code)
          in
          (* The stats banks accumulate cache levels per probe; obs counts
             probes and sums their levels, so the sums must agree. *)
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: invalidation levels" bench pname)
            ps.Pstats.invalidations
            (Obs.sum obs Oev.invalidation);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: downgrade levels" bench pname)
            ps.Pstats.downgrades
            (Obs.sum obs Oev.downgrade);
          check "ward grants" ps.Pstats.ward_grants Oev.ward_grant;
          check "ward enters" ps.Pstats.ward_adds Oev.ward_enter;
          check "ward exits" ps.Pstats.ward_removes Oev.ward_exit;
          check "sb stalls" ss.Sstats.sb_stalls Oev.sb_stall;
          check "l1 hits" ss.Sstats.l1_hits Oev.l1_hit;
          check "l2 hits" ss.Sstats.l2_hits Oev.l2_hit;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: misses+upgrades" bench pname)
            ss.Sstats.priv_misses
            (Obs.count obs Oev.miss + Obs.count obs Oev.upgrade))
        protos)
    kernels

(* ---- 4. Chrome trace ------------------------------------------------------ *)

(* A tiny recursive-descent JSON well-formedness checker: no external
   JSON dependency is available in the image, and "the file loads in
   about://tracing" reduces to "it parses". *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          if peek () = None then fail ();
          advance ();
          go ()
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    let digits = ref 0 in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '.' | 'e' | 'E' | '+' | '-') ->
          incr digits;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !digits = 0 then fail ()
  in
  let parse_lit lit =
    String.iter (fun c -> expect c) lit
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail ()
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail ()
          in
          elements ()
    | Some 't' -> parse_lit "true"
    | Some 'f' -> parse_lit "false"
    | Some 'n' -> parse_lit "null"
    | Some _ -> parse_number ()
    | None -> fail ()
  in
  match
    parse_value ();
    skip_ws ();
    !pos = n
  with
  | r -> r
  | exception Exit -> false

let trace_of runs =
  let buf = Buffer.create (1 lsl 12) in
  Chrome.write buf
    ~runs:(List.mapi (fun pid (name, ms) -> (pid, name, Obs.chrome (Memsys.obs ms))) runs);
  Buffer.contents buf

let test_chrome_trace () =
  (* fib under both protocols in one document, like `profile fib`. *)
  let run proto = run_ms ~bench:"fib" ~scale:12 ~proto (cfg Config.Obs_full) in
  let ms_m = run `Mesi and ms_w = run `Warden in
  let doc = trace_of [ ("mesi", ms_m); ("warden", ms_w) ] in
  Alcotest.(check bool) "trace is well-formed JSON" true (json_well_formed doc);
  Alcotest.(check bool) "trace has traceEvents" true
    (String.length doc > 0
    && String.sub doc 0 1 = "{"
    &&
    let needle = {|"traceEvents"|} in
    let rec find i =
      i + String.length needle <= String.length doc
      && (String.sub doc i (String.length needle) = needle || find (i + 1))
    in
    find 0);
  let obs_m = Memsys.obs ms_m in
  Alcotest.(check bool) "mesi fib records >= 1 invalidation" true
    (Obs.count obs_m Oev.invalidation >= 1);
  Alcotest.(check bool) "mesi trace retained records" true
    (Chrome.length (Obs.chrome obs_m) > 0);
  Alcotest.(check int) "no drops at this scale" 0
    (Chrome.dropped (Obs.chrome obs_m));
  (* "measurably fewer events under WARDen" on a WARD-heavy kernel: msort
     moves 356 inv+down under MESI and 222 under WARDen (golden). *)
  let coh ms =
    let ps = Memsys.pstats ms in
    ps.Pstats.invalidations + ps.Pstats.downgrades
  in
  let obs_coh ms =
    let o = Memsys.obs ms in
    Obs.sum o Oev.invalidation + Obs.sum o Oev.downgrade
  in
  let mm = run_ms ~bench:"msort" ~scale:1_000 ~proto:`Mesi (cfg Config.Obs_full) in
  let mw =
    run_ms ~bench:"msort" ~scale:1_000 ~proto:`Warden (cfg Config.Obs_full)
  in
  Alcotest.(check int) "msort mesi: obs matches pstats" (coh mm) (obs_coh mm);
  Alcotest.(check int) "msort warden: obs matches pstats" (coh mw) (obs_coh mw);
  Alcotest.(check bool) "msort: fewer coherence events under WARDen" true
    (obs_coh mw < obs_coh mm)

let test_trace_domain_identity () =
  let doc_at domains =
    let run proto =
      run_ms ~bench:"fib" ~scale:12 ~proto (cfg ~domains Config.Obs_full)
    in
    trace_of [ ("mesi", run `Mesi); ("warden", run `Warden) ]
  in
  Alcotest.(check string)
    "trace bytes identical for sim_domains 1 and 2" (doc_at 1) (doc_at 2)

let test_summary_renders () =
  let ms = run_ms ~bench:"fib" ~scale:12 ~proto:`Warden (cfg Config.Obs_full) in
  let s = Obs.render_summary (Memsys.obs ms) in
  List.iter
    (fun needle ->
      let rec find i =
        i + String.length needle <= String.length s
        && (String.sub s i (String.length needle) = needle || find (i + 1))
      in
      Alcotest.(check bool) ("summary mentions " ^ needle) true (find 0))
    [ "inv"; "ward-grant"; "l1-hit" ]

let suite =
  [
    Alcotest.test_case "ring push/drain" `Quick test_ring;
    Alcotest.test_case "histogram buckets" `Quick test_hist;
    Alcotest.test_case "histogram percentiles" `Quick test_percentile;
    Alcotest.test_case "heatmap blocks and regions" `Quick test_heatmap;
    Alcotest.test_case "recording never perturbs the run" `Quick
      test_non_perturbation;
    Alcotest.test_case "counters agree with statistics banks" `Quick
      counter_agreement;
    Alcotest.test_case "Chrome trace well-formed and meaningful" `Quick
      test_chrome_trace;
    Alcotest.test_case "trace byte-identical across sim_domains" `Quick
      test_trace_domain_identity;
    Alcotest.test_case "summary renders" `Quick test_summary_renders;
  ]

let () = Alcotest.run "warden-obs" [ ("obs", suite) ]
