(* Sharded-engine determinism sweep.

   The sharded scheduler (Config.sim_domains > 1) claims the commit lane
   replays the single-queue execution exactly: helper domains
   speculatively pre-execute the memory-system half of queued accesses,
   but the lane validates every speculation against the hierarchy's
   version before adopting it and re-executes inline on a squash, the
   per-shard run queues merge back into the global (cycle, sequence)
   order, and the per-shard statistics banks fold to the same integer
   totals. These tests hold every observable — cycles, stats, protocol
   counters, energy, verification — to bit-identity across
   sim_domains ∈ {1, 2, 4, 8}, across commit quantum (sim_quantum)
   values, with speculation disabled, and under the torture mode that
   force-squashes every speculation — on real benchmarks under both
   protocols plus a conflict-heavy pingpong kernel where speculations
   constantly race real invalidations. A memsys-level unit test pins the
   forced-squash path itself. They also pin Pool.effective_jobs' capping
   arithmetic. *)

open Warden_machine
open Warden_harness

let cfg_d ?(quantum = 8192) d =
  { (Config.dual_socket ()) with Config.sim_domains = d; sim_quantum = quantum }

let protos = [ (`Mesi, "mesi"); (`Warden, "warden") ]
let domain_sweep = [ 1; 2; 4; 8 ]

let check_result label (a : Exp.run_result) (b : Exp.run_result) =
  (* Headline fields first for a readable failure, then the whole record
     (which includes derived floats and the verified bit). *)
  Alcotest.(check bool) (label ^ ": verified") true b.Exp.verified;
  Alcotest.(check int) (label ^ ": cycles") a.Exp.cycles b.Exp.cycles;
  Alcotest.(check int)
    (label ^ ": instructions") a.Exp.instructions b.Exp.instructions;
  Alcotest.(check int) (label ^ ": loads") a.Exp.loads b.Exp.loads;
  Alcotest.(check int)
    (label ^ ": invalidations") a.Exp.invalidations b.Exp.invalidations;
  Alcotest.(check int) (label ^ ": messages") a.Exp.messages b.Exp.messages;
  Alcotest.(check (float 0.))
    (label ^ ": energy") a.Exp.energy_total_pj b.Exp.energy_total_pj;
  Alcotest.(check bool) (label ^ ": full result") true (a = b)

(* 1. Domain sweep: every benchmark/protocol pair is bit-identical for
   sim_domains 1, 2 and 4. *)
let domain_sweep_test name =
  Alcotest.test_case ("sim-domains sweep: " ^ name) `Quick (fun () ->
      let spec = Option.get (Warden_pbbs.Suite.find name) in
      List.iter
        (fun (proto, pname) ->
          let run d = Exp.run_bench ~quick:true ~config:(cfg_d d) ~proto spec in
          let sequential = run 1 in
          List.iter
            (fun d ->
              check_result
                (Printf.sprintf "%s/%s D=%d" name pname d)
                sequential (run d))
            (List.tl domain_sweep))
        protos)

(* 2. Commit-quantum sweep: barrier frequency must not be observable. *)
let quantum_sweep_test name =
  Alcotest.test_case ("sim-quantum sweep: " ^ name) `Quick (fun () ->
      let spec = Option.get (Warden_pbbs.Suite.find name) in
      List.iter
        (fun (proto, pname) ->
          let run q =
            Exp.run_bench ~quick:true ~config:(cfg_d ~quantum:q 2) ~proto spec
          in
          let base = run 8192 in
          List.iter
            (fun q ->
              check_result
                (Printf.sprintf "%s/%s quantum=%d" name pname q)
                base (run q))
            [ 1; 64 ])
        protos)

(* 2b. Conflict-heavy pingpong: every thread hammers one shared counter
   (each RMW invalidates the previous owner's copy, so helper
   speculations constantly race real coherence transitions and the
   version check must catch every one) interleaved with private-stride
   hits (which speculations can legitimately commit). All observables
   must be bit-identical across sim_domains, with speculation on, off,
   and in forced-squash torture mode. *)
let pingpong ?(spec = true) ?(torture = false) ?(obs = Config.Obs_off) d =
  let cfg =
    {
      (cfg_d d) with
      Config.sim_spec = spec;
      sim_spec_torture = torture;
      obs_level = obs;
    }
  in
  let eng = Warden_sim.Engine.create cfg ~proto:`Warden in
  let ms = Warden_sim.Engine.memsys eng in
  let ctr = Warden_sim.Memsys.alloc ms ~bytes:8 ~align:64 in
  let nthreads = min 8 (Config.num_threads cfg) in
  let lanes = Warden_sim.Memsys.alloc ms ~bytes:(nthreads * 64) ~align:64 in
  let body t () =
    let open Warden_sim.Engine.Ops in
    let mine = lanes + (t * 64) in
    for i = 0 to 149 do
      ignore (fetch_add ctr ~size:8 1L);
      store mine ~size:8 (Int64.of_int (i + t));
      ignore (load mine ~size:8);
      tick 1
    done
  in
  let mk = Warden_sim.Engine.run eng (Array.init nthreads body) in
  let obs_t = Warden_sim.Memsys.obs ms in
  Warden_sim.Memsys.flush_all ms;
  ( mk,
    Warden_sim.Memsys.peek ms ctr ~size:8,
    Warden_sim.Memsys.sstats ms,
    Warden_sim.Memsys.pstats ms,
    Warden_proto.Protocol.dump (Warden_sim.Memsys.protocol ms),
    obs_t )

let check_pingpong label (mk0, v0, st0, ps0, dump0, _) d result =
  let mk, v, st, ps, dump, _ = result in
  Alcotest.(check int) (Printf.sprintf "%s D=%d: makespan" label d) mk0 mk;
  Alcotest.(check int64) (Printf.sprintf "%s D=%d: counter" label d) v0 v;
  Alcotest.(check bool) (Printf.sprintf "%s D=%d: sstats" label d) true (st0 = st);
  Alcotest.(check bool) (Printf.sprintf "%s D=%d: pstats" label d) true (ps0 = ps);
  Alcotest.(check string) (Printf.sprintf "%s D=%d: directory" label d) dump0 dump

let pingpong_sweep_test () =
  let base = pingpong 1 in
  let _, v0, _, _, _, _ = base in
  Alcotest.(check int64) "pingpong: counter totals all increments"
    (Int64.of_int (150 * min 8 (Config.num_threads (cfg_d 1))))
    v0;
  List.iter
    (fun d -> check_pingpong "pingpong" base d (pingpong d))
    (List.tl domain_sweep)

let spec_off_test () =
  let base = pingpong 1 in
  List.iter
    (fun d -> check_pingpong "pingpong spec-off" base d (pingpong ~spec:false d))
    [ 4 ]

(* Torture mode bumps the version right before every validation, so no
   speculation can ever commit — every one takes the squash path and is
   re-executed inline. Observables must still match D=1 exactly, and the
   host-side outcome counters must show zero commits (how many squashes
   vs never-finished speculations depends on host timing and is not
   asserted). *)
let torture_test () =
  let base = pingpong 1 in
  List.iter
    (fun d ->
      let result = pingpong ~torture:true ~obs:Config.Obs_counters d in
      check_pingpong "pingpong torture" base d result;
      let _, _, _, _, _, obs_t = result in
      Alcotest.(check int)
        (Printf.sprintf "torture D=%d: no speculation ever commits" d)
        0
        (Warden_obs.Obs.spec_count obs_t 0))
    [ 2; 4 ]

(* 2c. The forced-squash path at the memsys level, with no host races
   involved: a speculation recorded by hand (as the helper would) must
   commit when the version is current, and must squash — mutating
   nothing — under sim_spec_torture's forced bump. *)
let forced_squash_unit_test () =
  let mk torture =
    let cfg = { (cfg_d 2) with Config.sim_spec_torture = torture } in
    let ms = Warden_sim.Memsys.create cfg ~proto:`Mesi in
    let a = Warden_sim.Memsys.alloc ms ~bytes:8 ~align:64 in
    ignore (Warden_sim.Memsys.store ms ~thread:0 a ~size:8 5L);
    (ms, a)
  in
  (* current version: the speculation commits with Hit accounting *)
  let ms, a = mk false in
  let r = Warden_sim.Privcache.spec_result () in
  ignore (Warden_sim.Memsys.spec_read ms ~thread:0 a ~size:8 ~write:false r);
  Alcotest.(check bool) "hit speculated" true r.Warden_sim.Privcache.ok;
  let before = (Warden_sim.Memsys.sstats ms).Warden_sim.Sstats.loads in
  let lat = Warden_sim.Memsys.try_commit_load ms ~thread:0 a ~size:8 r in
  Alcotest.(check bool) "commit returns a latency" true (lat >= 0);
  Alcotest.(check int64)
    "committed value" 5L
    (Warden_sim.Memsys.fast_value ms);
  Alcotest.(check int)
    "commit accounts the load" (before + 1)
    (Warden_sim.Memsys.sstats ms).Warden_sim.Sstats.loads;
  (* torture: the same speculation is force-squashed and changes nothing *)
  let ms, a = mk true in
  let r = Warden_sim.Privcache.spec_result () in
  ignore (Warden_sim.Memsys.spec_read ms ~thread:0 a ~size:8 ~write:false r);
  Alcotest.(check bool) "hit speculated under torture" true
    r.Warden_sim.Privcache.ok;
  let before = Warden_sim.Memsys.sstats ms in
  let stats_copy =
    ( before.Warden_sim.Sstats.loads,
      before.Warden_sim.Sstats.l1_hits,
      before.Warden_sim.Sstats.l2_hits )
  in
  let lat = Warden_sim.Memsys.try_commit_load ms ~thread:0 a ~size:8 r in
  Alcotest.(check int) "forced version mismatch squashes" (-1) lat;
  let after = Warden_sim.Memsys.sstats ms in
  Alcotest.(check bool) "squash mutates no statistics" true
    (stats_copy
    = ( after.Warden_sim.Sstats.loads,
        after.Warden_sim.Sstats.l1_hits,
        after.Warden_sim.Sstats.l2_hits ));
  (* the inline re-execution still serves the access *)
  let v, relat = Warden_sim.Memsys.load ms ~thread:0 a ~size:8 in
  Alcotest.(check int64) "re-executed value" 5L v;
  Alcotest.(check bool) "re-executed latency sane" true (relat > 0)

(* 3. Pool.effective_jobs: the cap formula, and its invariants. *)
let effective_jobs_test () =
  let budget = Domain.recommended_domain_count () in
  List.iter
    (fun (jobs, sd) ->
      let r = Pool.effective_jobs ~jobs ~sim_domains:sd in
      let label = Printf.sprintf "jobs=%d sim_domains=%d" jobs sd in
      Alcotest.(check bool) (label ^ ": at least one") true (r >= 1);
      Alcotest.(check bool) (label ^ ": never widens") true (r <= max 1 jobs);
      if jobs >= 1 && jobs * sd <= budget then
        Alcotest.(check int) (label ^ ": under budget unchanged") jobs r
      else if jobs >= 1 then
        Alcotest.(check int)
          (label ^ ": capped to budget/sim_domains")
          (max 1 (budget / max 1 sd))
          r)
    [ (1, 1); (1, 4); (2, 2); (4, 4); (16, 2); (64, 64); (0, 0); (3, 1) ]

(* 4. Cliscan: the bench harness's argv scanner. The regression it pins:
   a value flag (e.g. --jobs) followed immediately by another flag used
   to swallow that flag as its value, so
     bench.exe compare --jobs --sim-domains 2
   silently lost --sim-domains AND misread --jobs. A value flag must only
   consume a following non-flag token. *)
let cliscan_test () =
  let module C = Warden_util.Cliscan in
  let value_flags = [ [ "--jobs"; "-j" ]; [ "--sim-domains" ]; [ "--obs" ] ] in
  let scan args = C.create ~value_flags (Array.of_list ("bench.exe" :: args)) in
  (* the regression case *)
  let t = scan [ "compare"; "--jobs"; "--sim-domains"; "2" ] in
  Alcotest.(check (list string))
    "flag not swallowed as a value" [ "compare" ] (C.positionals t);
  Alcotest.(check bool) "--jobs still seen" true (C.has t "--jobs");
  Alcotest.(check int)
    "--sim-domains kept its value" 2
    (Option.get (C.int_flag t [ "--sim-domains" ]));
  Alcotest.check_raises "--jobs without a value is an error"
    (Invalid_argument "--jobs: missing value") (fun () ->
      ignore (C.int_flag t [ "--jobs"; "-j" ]));
  (* ordinary shapes keep working *)
  let t = scan [ "compare"; "a.json"; "b.json"; "--jobs"; "4" ] in
  Alcotest.(check (list string))
    "positionals in order"
    [ "compare"; "a.json"; "b.json" ]
    (C.positionals t);
  Alcotest.(check int) "--jobs value" 4 (Option.get (C.int_flag t [ "--jobs" ]));
  let t = scan [ "json"; "--jobs=8"; "--obs"; "counters" ] in
  Alcotest.(check int) "--jobs=8 form" 8 (Option.get (C.int_flag t [ "--jobs" ]));
  Alcotest.(check (option string))
    "--obs value" (Some "counters")
    (C.string_flag t [ "--obs" ]);
  Alcotest.(check (list string))
    "values never leak into positionals" [ "json" ] (C.positionals t);
  (* presence-only flags are dropped alone *)
  let t = scan [ "quick"; "--overhead"; "x.json" ] in
  Alcotest.(check bool) "presence flag seen" true (C.has t "--overhead");
  Alcotest.(check (list string))
    "presence flag takes no neighbor" [ "quick"; "x.json" ] (C.positionals t)

(* 4b. The bench harness's --filter flag: Cliscan must treat it as a
   value flag (so it can never swallow a following flag), and
   Suite.matching must select by substring, preserve suite order, treat
   the empty string as match-all, and find nothing for garbage. *)
let filter_flag_test () =
  let module C = Warden_util.Cliscan in
  let module Suite = Warden_pbbs.Suite in
  let value_flags = [ [ "--jobs"; "-j" ]; [ "--filter" ] ] in
  let t =
    C.create ~value_flags
      [| "bench.exe"; "quick"; "--filter"; "sort"; "--jobs"; "2" |]
  in
  Alcotest.(check (option string))
    "--filter carries its value" (Some "sort")
    (C.string_flag t [ "--filter" ]);
  Alcotest.(check int) "--jobs unaffected" 2 (Option.get (C.int_flag t [ "--jobs" ]));
  Alcotest.(check (list string)) "mode survives" [ "quick" ] (C.positionals t);
  let t = C.create ~value_flags [| "bench.exe"; "--filter"; "--jobs"; "2" |] in
  Alcotest.(check bool) "valueless --filter still seen" true (C.has t "--filter");
  Alcotest.(check (option string))
    "--filter never swallows a flag" None
    (C.string_flag t [ "--filter" ]);
  Alcotest.(check int)
    "the following flag keeps its value" 2
    (Option.get (C.int_flag t [ "--jobs" ]));
  (* Suite.matching semantics *)
  let all_names = List.map (fun (s : Warden_pbbs.Spec.t) -> s.Warden_pbbs.Spec.name) Suite.all in
  Alcotest.(check (list string))
    "empty substring matches everything in suite order" all_names
    (Suite.matching "");
  let contains_sub sub s =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  let sorts = Suite.matching "sort" in
  Alcotest.(check bool) "some benchmark matches \"sort\"" true (sorts <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s contains \"sort\"" n)
        true (contains_sub "sort" n))
    sorts;
  Alcotest.(check (list string))
    "matches keep suite order" sorts
    (List.filter (fun n -> List.mem n sorts) all_names);
  Alcotest.(check (list string))
    "no match for garbage" [] (Suite.matching "no-such-benchmark");
  (* exact name is a substring of itself *)
  Alcotest.(check bool) "exact name matches itself" true
    (List.mem "msort" (Suite.matching "msort"))

let cliscan_bad_value_test () =
  let module C = Warden_util.Cliscan in
  let t =
    C.create
      ~value_flags:[ [ "--jobs" ] ]
      [| "bench.exe"; "--jobs"; "zero" |]
  in
  Alcotest.check_raises "non-integer value is an error"
    (Invalid_argument "--jobs: expected a positive integer") (fun () ->
      ignore (C.int_flag t [ "--jobs" ]))

let suite =
  List.map domain_sweep_test [ "fib"; "msort"; "palindrome" ]
  @ [ quantum_sweep_test "fib" ]
  @ [
      Alcotest.test_case "pingpong conflict sweep (speculation on)" `Quick
        pingpong_sweep_test;
      Alcotest.test_case "pingpong with speculation off" `Quick spec_off_test;
      Alcotest.test_case "pingpong under forced-squash torture" `Quick
        torture_test;
      Alcotest.test_case "forced squash at the memsys level" `Quick
        forced_squash_unit_test;
    ]
  @ [ Alcotest.test_case "Pool.effective_jobs cap" `Quick effective_jobs_test ]
  @ [
      Alcotest.test_case "Cliscan flag-swallowing regression" `Quick
        cliscan_test;
      Alcotest.test_case "Cliscan rejects bad values" `Quick
        cliscan_bad_value_test;
      Alcotest.test_case "bench --filter scanning and Suite.matching" `Quick
        filter_flag_test;
    ]

let () = Alcotest.run "warden-parallel" [ ("parallel", suite) ]
