(* Sharded-engine determinism sweep.

   The sharded scheduler (Config.sim_domains > 1) claims the commit lane
   replays the single-queue execution exactly: the helper domains only
   warm host caches with pure probes, the per-shard run queues merge back
   into the global (cycle, sequence) order, and the per-shard statistics
   banks fold to the same integer totals. These tests hold every
   observable — cycles, stats, protocol counters, energy, verification —
   to bit-identity across sim_domains ∈ {1, 2, 4}, and across commit
   quantum (sim_quantum) values, on real benchmarks under both protocols.
   They also pin Pool.effective_jobs' capping arithmetic. *)

open Warden_machine
open Warden_harness

let cfg_d ?(quantum = 8192) d =
  { (Config.dual_socket ()) with Config.sim_domains = d; sim_quantum = quantum }

let protos = [ (`Mesi, "mesi"); (`Warden, "warden") ]
let domain_sweep = [ 1; 2; 4 ]

let check_result label (a : Exp.run_result) (b : Exp.run_result) =
  (* Headline fields first for a readable failure, then the whole record
     (which includes derived floats and the verified bit). *)
  Alcotest.(check bool) (label ^ ": verified") true b.Exp.verified;
  Alcotest.(check int) (label ^ ": cycles") a.Exp.cycles b.Exp.cycles;
  Alcotest.(check int)
    (label ^ ": instructions") a.Exp.instructions b.Exp.instructions;
  Alcotest.(check int) (label ^ ": loads") a.Exp.loads b.Exp.loads;
  Alcotest.(check int)
    (label ^ ": invalidations") a.Exp.invalidations b.Exp.invalidations;
  Alcotest.(check int) (label ^ ": messages") a.Exp.messages b.Exp.messages;
  Alcotest.(check (float 0.))
    (label ^ ": energy") a.Exp.energy_total_pj b.Exp.energy_total_pj;
  Alcotest.(check bool) (label ^ ": full result") true (a = b)

(* 1. Domain sweep: every benchmark/protocol pair is bit-identical for
   sim_domains 1, 2 and 4. *)
let domain_sweep_test name =
  Alcotest.test_case ("sim-domains sweep: " ^ name) `Quick (fun () ->
      let spec = Option.get (Warden_pbbs.Suite.find name) in
      List.iter
        (fun (proto, pname) ->
          let run d = Exp.run_bench ~quick:true ~config:(cfg_d d) ~proto spec in
          let sequential = run 1 in
          List.iter
            (fun d ->
              check_result
                (Printf.sprintf "%s/%s D=%d" name pname d)
                sequential (run d))
            (List.tl domain_sweep))
        protos)

(* 2. Commit-quantum sweep: barrier frequency must not be observable. *)
let quantum_sweep_test name =
  Alcotest.test_case ("sim-quantum sweep: " ^ name) `Quick (fun () ->
      let spec = Option.get (Warden_pbbs.Suite.find name) in
      List.iter
        (fun (proto, pname) ->
          let run q =
            Exp.run_bench ~quick:true ~config:(cfg_d ~quantum:q 2) ~proto spec
          in
          let base = run 8192 in
          List.iter
            (fun q ->
              check_result
                (Printf.sprintf "%s/%s quantum=%d" name pname q)
                base (run q))
            [ 1; 64 ])
        protos)

(* 3. Pool.effective_jobs: the cap formula, and its invariants. *)
let effective_jobs_test () =
  let budget = Domain.recommended_domain_count () in
  List.iter
    (fun (jobs, sd) ->
      let r = Pool.effective_jobs ~jobs ~sim_domains:sd in
      let label = Printf.sprintf "jobs=%d sim_domains=%d" jobs sd in
      Alcotest.(check bool) (label ^ ": at least one") true (r >= 1);
      Alcotest.(check bool) (label ^ ": never widens") true (r <= max 1 jobs);
      if jobs >= 1 && jobs * sd <= budget then
        Alcotest.(check int) (label ^ ": under budget unchanged") jobs r
      else if jobs >= 1 then
        Alcotest.(check int)
          (label ^ ": capped to budget/sim_domains")
          (max 1 (budget / max 1 sd))
          r)
    [ (1, 1); (1, 4); (2, 2); (4, 4); (16, 2); (64, 64); (0, 0); (3, 1) ]

(* 4. Cliscan: the bench harness's argv scanner. The regression it pins:
   a value flag (e.g. --jobs) followed immediately by another flag used
   to swallow that flag as its value, so
     bench.exe compare --jobs --sim-domains 2
   silently lost --sim-domains AND misread --jobs. A value flag must only
   consume a following non-flag token. *)
let cliscan_test () =
  let module C = Warden_util.Cliscan in
  let value_flags = [ [ "--jobs"; "-j" ]; [ "--sim-domains" ]; [ "--obs" ] ] in
  let scan args = C.create ~value_flags (Array.of_list ("bench.exe" :: args)) in
  (* the regression case *)
  let t = scan [ "compare"; "--jobs"; "--sim-domains"; "2" ] in
  Alcotest.(check (list string))
    "flag not swallowed as a value" [ "compare" ] (C.positionals t);
  Alcotest.(check bool) "--jobs still seen" true (C.has t "--jobs");
  Alcotest.(check int)
    "--sim-domains kept its value" 2
    (Option.get (C.int_flag t [ "--sim-domains" ]));
  Alcotest.check_raises "--jobs without a value is an error"
    (Invalid_argument "--jobs: missing value") (fun () ->
      ignore (C.int_flag t [ "--jobs"; "-j" ]));
  (* ordinary shapes keep working *)
  let t = scan [ "compare"; "a.json"; "b.json"; "--jobs"; "4" ] in
  Alcotest.(check (list string))
    "positionals in order"
    [ "compare"; "a.json"; "b.json" ]
    (C.positionals t);
  Alcotest.(check int) "--jobs value" 4 (Option.get (C.int_flag t [ "--jobs" ]));
  let t = scan [ "json"; "--jobs=8"; "--obs"; "counters" ] in
  Alcotest.(check int) "--jobs=8 form" 8 (Option.get (C.int_flag t [ "--jobs" ]));
  Alcotest.(check (option string))
    "--obs value" (Some "counters")
    (C.string_flag t [ "--obs" ]);
  Alcotest.(check (list string))
    "values never leak into positionals" [ "json" ] (C.positionals t);
  (* presence-only flags are dropped alone *)
  let t = scan [ "quick"; "--overhead"; "x.json" ] in
  Alcotest.(check bool) "presence flag seen" true (C.has t "--overhead");
  Alcotest.(check (list string))
    "presence flag takes no neighbor" [ "quick"; "x.json" ] (C.positionals t)

let cliscan_bad_value_test () =
  let module C = Warden_util.Cliscan in
  let t =
    C.create
      ~value_flags:[ [ "--jobs" ] ]
      [| "bench.exe"; "--jobs"; "zero" |]
  in
  Alcotest.check_raises "non-integer value is an error"
    (Invalid_argument "--jobs: expected a positive integer") (fun () ->
      ignore (C.int_flag t [ "--jobs" ]))

let suite =
  List.map domain_sweep_test [ "fib"; "msort"; "palindrome" ]
  @ [ quantum_sweep_test "fib" ]
  @ [ Alcotest.test_case "Pool.effective_jobs cap" `Quick effective_jobs_test ]
  @ [
      Alcotest.test_case "Cliscan flag-swallowing regression" `Quick
        cliscan_test;
      Alcotest.test_case "Cliscan rejects bad values" `Quick
        cliscan_bad_value_test;
    ]

let () = Alcotest.run "warden-parallel" [ ("parallel", suite) ]
