(* warden.serve: the serving-tier subsystem.

   1. Zipf sampler: bounds, determinism, distribution sanity (per-rank
      5-sigma bands against the exact pmf plus an aggregate chi-square
      bound — deterministic seeds, so the bands either hold forever or
      fail immediately).
   2. Traffic generator: seed determinism, stream/batch equivalence
      (request i is a pure function of (seed, i)), mix fractions.
   3. The serving tier end to end: verification under both protocols,
      schedule-independent result equality MESI = WARDen, strictly
      lower invalidation+downgrade traffic under WARDen, and full
      result bit-identity (latency histogram included) across
      sim_domains and speculation on/off. *)

open Warden_util
open Warden_machine
open Warden_serve
module Hist = Warden_obs.Hist

(* ---- 1. Zipf sampler ------------------------------------------------------ *)

let test_zipf_bounds () =
  List.iter
    (fun theta ->
      let z = Zipf.create ~n:16 ~theta in
      let rng = Splitmix.make 7L in
      let ok = ref true in
      for _ = 1 to 10_000 do
        let k = Zipf.sample z rng in
        if k < 0 || k >= 16 then ok := false
      done;
      Alcotest.(check bool)
        (Printf.sprintf "theta %g in range" theta)
        true !ok)
    [ 0.; 0.5; 0.99; 1.0 (* nudged *); 1.5 ];
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "negative theta rejected"
    (Invalid_argument "Zipf.create: theta must be finite and non-negative")
    (fun () -> ignore (Zipf.create ~n:4 ~theta:(-1.)));
  (* n = 1 always draws the only rank. *)
  let z1 = Zipf.create ~n:1 ~theta:0.99 in
  let rng = Splitmix.make 9L in
  for _ = 1 to 100 do
    Alcotest.(check int) "n=1 draws rank 0" 0 (Zipf.sample z1 rng)
  done

let test_zipf_distribution () =
  let check_shape ~theta =
    let n = 64 in
    let draws = 200_000 in
    let z = Zipf.create ~n ~theta in
    let rng = Splitmix.make 0xD15EA5EL in
    let counts = Array.make n 0 in
    for _ = 1 to draws do
      let k = Zipf.sample z rng in
      counts.(k) <- counts.(k) + 1
    done;
    (* Per-rank: observed within 5 sigma of expected wherever the
       expectation is large enough for the normal approximation. *)
    let chi2 = ref 0. and dof = ref 0 in
    for k = 0 to n - 1 do
      let e = float_of_int draws *. Zipf.pmf z k in
      if e >= 20. then begin
        let o = float_of_int counts.(k) in
        let sigma = sqrt e in
        Alcotest.(check bool)
          (Printf.sprintf "theta %g rank %d: %.0f within 5 sigma of %.0f"
             theta k o e)
          true
          (Float.abs (o -. e) <= 5. *. sigma);
        chi2 := !chi2 +. ((o -. e) *. (o -. e) /. e);
        incr dof
      end
    done;
    (* Aggregate chi-square: far beyond any plausible quantile of
       chi2(dof) — catches a systematically wrong formula, not noise. *)
    Alcotest.(check bool)
      (Printf.sprintf "theta %g chi-square %.1f within bound (dof %d)" theta
         !chi2 !dof)
      true
      (!chi2 <= (2. *. float_of_int !dof) +. 30.)
  in
  check_shape ~theta:0.;
  check_shape ~theta:0.99;
  (* Skew orders popularity: rank 0 beats rank 8 beats rank 63. *)
  let z = Zipf.create ~n:64 ~theta:0.99 in
  let rng = Splitmix.make 3L in
  let counts = Array.make 64 0 in
  for _ = 1 to 100_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(8));
  Alcotest.(check bool) "rank 8 beats rank 63" true (counts.(8) > counts.(63));
  (* pmf is a probability distribution. *)
  let total = ref 0. in
  for k = 0 to 63 do
    total := !total +. Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

(* ---- 2. traffic generator ------------------------------------------------- *)

let mk_workload ?(seed = 0xFEED5L) () =
  Workload.make ~keys:1024 ~theta:0.99 ~read_frac:0.8 ~scan_frac:0.1 ~seed

let test_zipf_memoized_across_curve () =
  (* A curve sweep builds one workload per core-count point with
     identical key-space parameters; the inverse-CDF table must be
     built once, not once per point. Distinctive parameters so earlier
     tests cannot have primed the memo slot. *)
  let mk ~theta () =
    Workload.make ~keys:4099 ~theta ~read_frac:0.8 ~scan_frac:0.05 ~seed:42L
  in
  let before = Zipf.constructions () in
  for _ = 1 to 8 do ignore (mk ~theta:0.83 () : Workload.t) done;
  Alcotest.(check int) "eight identical curve points build one table" 1
    (Zipf.constructions () - before);
  (* A parameter change must rebuild — the memo never serves stale
     tables — and repeat points at the new parameters share again. *)
  for _ = 1 to 3 do ignore (mk ~theta:0.91 () : Workload.t) done;
  Alcotest.(check int) "parameter change rebuilds exactly once" 2
    (Zipf.constructions () - before);
  (* Memoized samplers still sample identically to a fresh table. *)
  let z_memo = Zipf.create_memo ~n:4099 ~theta:0.91 in
  let z_fresh = Zipf.create ~n:4099 ~theta:0.91 in
  let r1 = Splitmix.make 9L and r2 = Splitmix.make 9L in
  let same = ref true in
  for _ = 1 to 1_000 do
    if Zipf.sample z_memo r1 <> Zipf.sample z_fresh r2 then same := false
  done;
  Alcotest.(check bool) "memoized table samples identically" true !same

let test_generator_determinism () =
  let w1 = mk_workload () and w2 = mk_workload () in
  let same = ref true in
  for i = 0 to 9_999 do
    if Workload.request w1 i <> Workload.request w2 i then same := false
  done;
  Alcotest.(check bool) "same seed, same stream" true !same;
  let w3 = mk_workload ~seed:0xBEEFL () in
  let differs = ref false in
  for i = 0 to 9_999 do
    if Workload.request w1 i <> Workload.request w3 i then differs := true
  done;
  Alcotest.(check bool) "different seed, different stream" true !differs;
  (* Requests decode to in-range keys and valid kinds. *)
  let ok = ref true in
  for i = 0 to 9_999 do
    let r = Workload.request w1 i in
    let k = Workload.key_of r in
    if k < 0 || k >= 1024 then ok := false;
    ignore (Workload.kind_of r)
  done;
  Alcotest.(check bool) "keys in range, kinds decode" true !ok

let test_stream_batch_equivalence () =
  let w = mk_workload () in
  let n = 5_000 in
  let reference = Array.init n (Workload.request w) in
  List.iter
    (fun batch ->
      let out = Array.make n 0 in
      let buf = Array.make batch 0 in
      let lo = ref 0 in
      while !lo < n do
        let m = min batch (n - !lo) in
        Workload.fill w buf ~lo:!lo ~n:m;
        Array.blit buf 0 out !lo m;
        lo := !lo + m
      done;
      Alcotest.(check bool)
        (Printf.sprintf "batch %d replays the stream" batch)
        true (out = reference))
    [ 1; 7; 64; 4_096; 5_000 ]

let test_mix_fractions () =
  let w = mk_workload () in
  let n = 50_000 in
  let reads, writes, scans = Workload.kind_counts w ~n in
  Alcotest.(check int) "counts partition the stream" n (reads + writes + scans);
  let near what frac count =
    let e = frac *. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "%s near %.0f (got %d)" what e count)
      true
      (Float.abs (float_of_int count -. e) <= 5. *. sqrt (e +. 1.))
  in
  near "reads" 0.8 reads;
  near "scans" 0.1 scans;
  near "writes" 0.1 writes;
  (* The write set the verifier recomputes matches a direct scan. *)
  let ws = Workload.write_set w ~n in
  let direct = ref 0 in
  for k = 0 to Workload.keys w - 1 do
    if Warden_util.Bitset.mem ws k then incr direct
  done;
  Alcotest.(check int) "write-set cardinality" (Warden_util.Bitset.cardinal ws)
    !direct

(* ---- 3. the serving tier end to end --------------------------------------- *)

let small =
  {
    Serve.default with
    Serve.requests = 4_000;
    keys = 2_048;
    batch = 512;
    grain = 32;
    shards = 4;
    scan_len = 8;
  }

let machine ?(domains = 1) ?(spec = true) () =
  { (Config.single_socket ()) with Config.sim_domains = domains; sim_spec = spec }

let run_small ?domains ?spec proto =
  Serve.run_proto ~params:small ~machine:(machine ?domains ?spec ()) ~proto ()

let test_serve_verified_and_traffic () =
  let rm = run_small `Mesi and rw = run_small `Warden in
  Alcotest.(check bool) "mesi verified" true rm.Serve.verified;
  Alcotest.(check bool) "warden verified" true rw.Serve.verified;
  Alcotest.(check int) "mesi: no read violations" 0 rm.Serve.violations;
  Alcotest.(check int) "warden: no read violations" 0 rw.Serve.violations;
  Alcotest.(check bool) "schedule-independent results equal" true
    (Serve.equal_results rm rw);
  Alcotest.(check int) "latency histogram counts every request"
    small.Serve.requests
    (Hist.count rm.Serve.lat ~cls:Serve.cls_all);
  (* The tentpole claim: the serving mix moves strictly less
     invalidation+downgrade traffic under WARDen at equal results. *)
  let coh r = r.Serve.invalidations + r.Serve.downgrades in
  Alcotest.(check bool)
    (Printf.sprintf "warden coh %d < mesi coh %d" (coh rw) (coh rm))
    true
    (coh rw < coh rm);
  (* Percentiles are ordered and positive. *)
  let p q = Hist.percentile rw.Serve.lat ~cls:Serve.cls_all q in
  Alcotest.(check bool) "p50 > 0" true (p 50. > 0.);
  Alcotest.(check bool) "p50 <= p95" true (p 50. <= p 95.);
  Alcotest.(check bool) "p95 <= p99" true (p 95. <= p 99.);
  Alcotest.(check bool) "p99 <= p99.9" true (p 99. <= p 99.9)

let test_serve_domain_identity () =
  List.iter
    (fun proto ->
      let base = run_small ~domains:1 proto in
      List.iter
        (fun (domains, spec, label) ->
          let r = run_small ~domains ~spec proto in
          Alcotest.(check bool)
            (Printf.sprintf "%s: full result (hist included) identical" label)
            true (base = r))
        [ (2, true, "D=2 spec on"); (2, false, "D=2 spec off") ])
    [ `Mesi; `Warden ]

let test_serve_json_deterministic () =
  let j1 = Serve.json_summary small (run_small ~domains:1 `Warden) in
  let j2 = Serve.json_summary small (run_small ~domains:2 `Warden) in
  Alcotest.(check string) "json bytes identical across sim_domains" j1 j2;
  Alcotest.(check bool) "json mentions p99.9" true
    (let needle = "lat_p999" in
     let rec find i =
       i + String.length needle <= String.length j1
       && (String.sub j1 i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let suite =
  [
    Alcotest.test_case "zipf bounds and edge cases" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf distribution sanity" `Quick test_zipf_distribution;
    Alcotest.test_case "zipf table memoized across curve points" `Quick
      test_zipf_memoized_across_curve;
    Alcotest.test_case "generator seed determinism" `Quick
      test_generator_determinism;
    Alcotest.test_case "stream/batch equivalence" `Quick
      test_stream_batch_equivalence;
    Alcotest.test_case "mix fractions and write set" `Quick test_mix_fractions;
    Alcotest.test_case "serve: verified, equal results, less traffic" `Quick
      test_serve_verified_and_traffic;
    Alcotest.test_case "serve: bit-identical across domains and spec" `Quick
      test_serve_domain_identity;
    Alcotest.test_case "serve: deterministic json summary" `Quick
      test_serve_json_deterministic;
  ]

let () = Alcotest.run "warden-serve" [ ("serve", suite) ]
