(* Tests for the warden.check model checker: exhaustive exploration of the
   small model (MESI, WARDen, and the MESI/WARDen lockstep equivalence),
   deterministic fuzzing, and mutation coverage — deliberately broken
   protocols must be caught with short, shrunk counterexamples. *)

open Warden_machine
open Warden_proto
open Warden_check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let pass name outcome =
  match outcome with
  | Check.Pass { states; transitions; complete } ->
      Alcotest.(check bool) (name ^ ": explored something") true
        (states > 0 && transitions > 0);
      (states, transitions, complete)
  | Check.Fail ce ->
      Alcotest.failf "%s: unexpected counterexample:\n%s" name ce.Check.trace

let fail name outcome =
  match outcome with
  | Check.Fail ce ->
      Alcotest.(check bool) (name ^ ": has violations") true
        (ce.Check.violations <> []);
      Alcotest.(check bool) (name ^ ": trace rendered") true
        (contains ce.Check.trace "violation:");
      ce
  | Check.Pass _ -> Alcotest.failf "%s: bug not caught" name

(* --- exhaustive exploration ------------------------------------------------ *)

(* The MESI small model (3 cores, 2 blocks, 2 regions, 1 store per core and
   block) is small enough to close: the exact counts double as a
   determinism regression net. *)
let test_mesi_closure () =
  let states, transitions, complete =
    pass "mesi" (Check.explore (Check.mesi ()) ~depth:64)
  in
  Alcotest.(check bool) "state space exhausted" true complete;
  Alcotest.(check int) "states" 43264 states;
  Alcotest.(check int) "transitions" 458432 transitions

let test_warden_depth8 () =
  let states, _, _ =
    pass "warden" (Check.explore (Check.warden ()) ~depth:8)
  in
  Alcotest.(check int) "states" 202032 states

let test_equivalence_depth8 () =
  let states, _, _ =
    pass "mesi=warden" (Check.explore (Check.equivalence ()) ~depth:8)
  in
  Alcotest.(check int) "states" 70916 states

(* The snooping-MSI small model also closes: no E state, so it is smaller
   than MESI's. *)
let test_msi_bus_closure () =
  let states, transitions, complete =
    pass "msi-bus" (Check.explore (Check.msi_bus ()) ~depth:64)
  in
  Alcotest.(check bool) "state space exhausted" true complete;
  Alcotest.(check int) "states" 20164 states;
  Alcotest.(check int) "transitions" 214988 transitions

(* SI/SD with the fence alphabet: the canonical key carries the per-core
   synced/fresh monitor bits. The two-core model closes; the three-core
   space is fence-blown (200k+ states at depth 8 alone) and is covered by
   the bounded CLI run and the fuzzer instead. *)
let test_sisd_closure () =
  let states, _, complete =
    pass "sisd" (Check.explore (Check.sisd ~cores:2 ()) ~depth:64)
  in
  Alcotest.(check bool) "state space exhausted" true complete;
  Alcotest.(check int) "states" 4263 states

(* Snooping MSI against directory MESI in data-only lockstep: every
   interleaving leaves identical residency, bytes, dirty masks and
   effective memory (grant states and costs are free to differ). *)
let test_msi_lockstep_depth8 () =
  let states, _, _ =
    pass "msi-bus=mesi" (Check.explore (Check.msi_lockstep ()) ~depth:8)
  in
  Alcotest.(check int) "states" 26283 states

(* --- region round trip ------------------------------------------------------ *)

let world_cfg ?(cores = 2) ?(blks = 1) mk =
  {
    World.cores;
    blks;
    regions = 1;
    store_cap = 0;
    region_cap = 1;
    region_base = 0;
    machine = Config.dual_socket ();
    mk;
  }

let test_region_roundtrip () =
  let w = World.create (world_cfg Warden_core.Warden.protocol) in
  let ops =
    [
      Op.Region_add 0;
      Op.Store { core = 0; blk = 0 };
      Op.Store { core = 1; blk = 0 };
      Op.Region_remove 0;
    ]
  in
  List.iter
    (fun op ->
      ignore (World.apply w op);
      Alcotest.(check (list string))
        (Op.to_string op ^ " leaves a clean state")
        [] (World.check w))
    ops;
  let v = Protocol.observe (World.proto w) ~blk:0 in
  Alcotest.(check bool) "no W state survives the region" true
    (v.Protocol.bv_state <> States.D_W);
  Alcotest.(check bool) "not ward" false
    (Protocol.is_ward (World.proto w) ~blk:0)

let test_world_dump_and_observe () =
  let w = World.create (world_cfg Warden_core.Warden.protocol) in
  ignore (World.apply w (Op.Region_add 0));
  ignore (World.apply w (Op.Store { core = 0; blk = 0 }));
  let v = Protocol.observe (World.proto w) ~blk:0 in
  Alcotest.(check bool) "store under a region grants W" true
    (v.Protocol.bv_state = States.D_W);
  Alcotest.(check (list int)) "sharer recorded" [ 0 ] v.Protocol.bv_sharers;
  let d = World.dump w in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dump mentions " ^ needle) true (contains d needle))
    [ "protocol warden"; "region ["; "core 0"; "llc"; "oracle" ]

(* --- fuzzing ---------------------------------------------------------------- *)

let test_fuzz_deterministic () =
  let run () =
    let cfg = { (Check.warden ()) with Check.store_cap = 0 } in
    match Check.fuzz cfg ~steps:2000 ~seed:42L with
    | Check.Pass { states; transitions; _ } -> (states, transitions)
    | Check.Fail ce -> Alcotest.failf "fuzz found:\n%s" ce.Check.trace
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "same walk twice" a b

(* --- mutations: injected protocol bugs must be caught ----------------------- *)

(* Broken MESI variants. The mutation must live in the protocol module and
   wrap the fabric at call time: the checker forks worlds before every
   transition, and [Protocol.copy] rebinds the protocol to the forked
   world's (unmutated) fabric — a wrapper baked into the fabric record at
   construction would be silently undone by the first fork. *)
module Mutant_mesi (M : sig
  val name : string
  val wrap : Fabric.t -> Fabric.t
end) =
struct
  type t = { fabric : Fabric.t; dir : Dirstate.t; scratch : Mesi.grant }

  let name = M.name
  let kind = `Directory

  let create fabric =
    let cfg = fabric.Fabric.config in
    {
      fabric;
      dir =
        Dirstate.create ~sockets:cfg.Config.sockets
          ~cores_per_socket:cfg.Config.cores_per_socket ();
      scratch = Mesi.fresh_grant ();
    }

  let fabric t = t.fabric

  let handle_request t ~core ~blk ~write ~holds_s =
    Mesi.handle_request (M.wrap t.fabric) t.dir t.scratch ~core ~blk ~write
      ~holds_s

  let handle_evict t ~core ~blk ~pstate ~data =
    Mesi.handle_evict (M.wrap t.fabric) t.dir ~core ~blk ~pstate ~data

  let region_add _ ~lo:_ ~hi:_ = false
  let is_ward _ ~blk:_ = false
  let region_remove _ ~lo:_ ~hi:_ = 0
  let acquire _ ~core:_ = 0
  let release _ ~core:_ = 0

  let flush_all t =
    let blocks = ref [] in
    Dirstate.iter t.dir (fun blk _ -> blocks := blk :: !blocks);
    List.iter (fun blk -> Mesi.flush_block t.fabric t.dir ~blk) !blocks

  let observe t ~blk = Protocol.view_of_dir t.dir ~blk
  let prefetch t ~blk = Dirstate.prefetch t.dir blk
  let dump t = "protocol " ^ M.name ^ "\n" ^ Protocol.dump_dir t.dir
  let copy t ~fabric =
    { fabric; dir = Dirstate.copy t.dir; scratch = Mesi.fresh_grant () }

  let save_state t w = Dirstate.save t.dir w
  let restore_state t r = Dirstate.restore t.dir r
end

(* MESI whose invalidations only read the victim's copy (a peek) instead
   of removing it: an upgrading or write-missing core is granted M while
   other cores keep stale copies. *)
module No_inval = Mutant_mesi (struct
  let name = "mesi-no-inval"

  let wrap f =
    { f with Fabric.invalidate_priv = (fun ~core ~blk -> f.Fabric.peek_priv ~core ~blk) }
end)

(* MESI whose dirty writebacks never reach the LLC. *)
module Lost_writeback = Mutant_mesi (struct
  let name = "mesi-lost-writeback"
  let wrap f = { f with Fabric.llc_merge = (fun ~blk:_ _ -> ()) }
end)

let no_inval fabric = Protocol.Packed ((module No_inval), No_inval.create fabric)

let lost_writeback fabric =
  Protocol.Packed ((module Lost_writeback), Lost_writeback.create fabric)

(* WARDen whose region removal drops the CAM entry without reconciling the
   region's blocks: W state (and stale data) survives the region. *)
module Lazy_reconcile = struct
  include Warden_core.Warden.P

  let name = "warden-lazy-reconcile"

  let region_remove t ~lo ~hi =
    ignore (Warden_core.Regions.remove (regions t) ~lo ~hi);
    0
end

let lazy_reconcile fabric =
  Protocol.Packed ((module Lazy_reconcile), Lazy_reconcile.create fabric)

(* Snooping MSI whose invalidations only peek the victim's copy. The wrap
   is re-applied in [create] and [copy], so it survives the checker's
   forking the same way the call-time wraps above do: a write upgrade or
   owner transfer leaves the other cores' stale copies resident. *)
module Bus_no_inval = struct
  include Msi_bus.P

  let name = "msi-bus-no-inval"

  let wrap f =
    {
      f with
      Fabric.invalidate_priv = (fun ~core ~blk -> f.Fabric.peek_priv ~core ~blk);
    }

  let create fabric = Msi_bus.P.create (wrap fabric)
  let copy t ~fabric = Msi_bus.P.copy t ~fabric:(wrap fabric)
end

let bus_no_inval fabric =
  Protocol.Packed ((module Bus_no_inval), Bus_no_inval.create fabric)

(* SI/SD whose release fence reports success without self-downgrading: the
   core's dirty lines never reach the LLC, so the written data is not
   published where the release contract promises it. *)
module Sisd_no_self_down = struct
  include Sisd.P

  let name = "sisd-no-self-down"
  let release _ ~core:_ = 1
end

let sisd_no_self_down fabric =
  Protocol.Packed ((module Sisd_no_self_down), Sisd_no_self_down.create fabric)

(* SI/SD whose acquire fence flushes dirty lines but keeps every resident
   copy: reads after the fence can return stale values another core
   published before it. *)
module Sisd_no_self_inv = struct
  include Sisd.P

  let name = "sisd-no-self-inv"
  let acquire _ ~core:_ = 1
end

let sisd_no_self_inv fabric =
  Protocol.Packed ((module Sisd_no_self_inv), Sisd_no_self_inv.create fabric)

let mutation name mk expect =
  let cfg = Check.of_protocol ~name ~mk () in
  let ce = fail name (Check.explore cfg ~depth:8) in
  let n = List.length ce.Check.ops in
  Alcotest.(check bool)
    (Printf.sprintf "%s: shrunk counterexample is short (%d ops)" name n)
    true
    (n >= 1 && n <= 10);
  Alcotest.(check bool)
    (Printf.sprintf "%s: violation mentions %S" name expect)
    true
    (List.exists (fun v -> contains v expect) ce.Check.violations)

let test_mutation_no_inval () = mutation "mesi-no-inval" no_inval "copies at"
let test_mutation_lost_writeback () =
  mutation "mesi-lost-writeback" lost_writeback "memory lost a write"

let test_mutation_lazy_reconcile () =
  mutation "warden-lazy-reconcile" lazy_reconcile "outside any active"

let test_mutation_bus_no_inval () =
  mutation "msi-bus-no-inval" bus_no_inval "copies at"

let test_mutation_sisd_no_self_down () =
  mutation "sisd-no-self-down" sisd_no_self_down "release fence"

let test_mutation_sisd_no_self_inv () =
  mutation "sisd-no-self-inv" sisd_no_self_inv "acquire fence"

(* The fuzzer must catch mutations too, and shrink deterministically. *)
let test_fuzz_catches_and_shrinks () =
  let cfg =
    {
      (Check.of_protocol ~name:"mesi-no-inval" ~mk:no_inval ()) with
      Check.store_cap = 0;
    }
  in
  let run () =
    match Check.fuzz cfg ~steps:1000 ~seed:7L with
    | Check.Fail ce -> ce.Check.ops
    | Check.Pass _ -> Alcotest.fail "fuzz missed the injected bug"
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "shrunk short" true (List.length a <= 10);
  Alcotest.(check bool) "deterministic shrink" true (a = b)

let suite =
  [
    Alcotest.test_case "mesi: full state space" `Slow test_mesi_closure;
    Alcotest.test_case "warden: all interleavings to depth 8" `Slow
      test_warden_depth8;
    Alcotest.test_case "mesi=warden lockstep to depth 8" `Slow
      test_equivalence_depth8;
    Alcotest.test_case "msi-bus: full state space" `Slow test_msi_bus_closure;
    Alcotest.test_case "sisd: full state space" `Slow test_sisd_closure;
    Alcotest.test_case "msi-bus=mesi data lockstep to depth 8" `Slow
      test_msi_lockstep_depth8;
    Alcotest.test_case "region add/remove round trip" `Quick
      test_region_roundtrip;
    Alcotest.test_case "dump and observe" `Quick test_world_dump_and_observe;
    Alcotest.test_case "fuzz is deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "mutation: dropped invalidations" `Quick
      test_mutation_no_inval;
    Alcotest.test_case "mutation: lost writebacks" `Quick
      test_mutation_lost_writeback;
    Alcotest.test_case "mutation: skipped reconciliation" `Quick
      test_mutation_lazy_reconcile;
    Alcotest.test_case "mutation: snoop kept stale sharers" `Quick
      test_mutation_bus_no_inval;
    Alcotest.test_case "mutation: dropped self-downgrade" `Quick
      test_mutation_sisd_no_self_down;
    Alcotest.test_case "mutation: dropped self-invalidate" `Quick
      test_mutation_sisd_no_self_inv;
    Alcotest.test_case "fuzz catches and shrinks" `Quick
      test_fuzz_catches_and_shrinks;
  ]

let () = Alcotest.run "warden-check" [ ("check", suite) ]
