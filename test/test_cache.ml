(* Unit and property tests for warden.mem and warden.cache: the backing
   store, address geometry, sectored line data and the set-associative
   arrays. *)

open Warden_mem
open Warden_cache

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Addr ------------------------------------------------------------------ *)

let test_addr_geometry () =
  Alcotest.(check int) "block size" 64 Addr.block_size;
  Alcotest.(check int) "block of 0" 0 (Addr.block_of 63);
  Alcotest.(check int) "block of 64" 1 (Addr.block_of 64);
  Alcotest.(check int) "offset" 63 (Addr.offset_in_block 127);
  Alcotest.(check int) "base" 64 (Addr.block_base 127);
  Alcotest.(check bool) "same block" true (Addr.same_block 64 127);
  Alcotest.(check bool) "diff block" false (Addr.same_block 63 64);
  Alcotest.(check (list int)) "span" [ 0; 1; 2 ] (Addr.blocks_spanning 32 100);
  Alcotest.(check (list int)) "empty span" [] (Addr.blocks_spanning 32 0)

(* --- Store ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let s = Store.create () in
  Store.store s 0x1000 ~size:8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Store.load s 0x1000 ~size:8);
  Alcotest.(check int64) "low u32" 0x55667788L (Store.load s 0x1000 ~size:4);
  Alcotest.(check int64) "byte 0 (little endian)" 0x88L (Store.load s 0x1000 ~size:1);
  Alcotest.(check int64) "byte 7" 0x11L (Store.load s 0x1007 ~size:1);
  Alcotest.(check int64) "unwritten reads zero" 0L (Store.load s 0x9000 ~size:8)

let test_store_alignment_rejected () =
  let s = Store.create () in
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Store: unaligned 8-byte access at 0x1001") (fun () ->
      ignore (Store.load s 0x1001 ~size:8));
  Alcotest.check_raises "bad size" (Invalid_argument "Store: size must be 1, 2, 4 or 8")
    (fun () -> ignore (Store.load s 0x1000 ~size:3))

let test_store_materialization () =
  let s = Store.create () in
  Alcotest.(check bool) "fresh not materialized" false
    (Store.materialized s (Addr.block_of 0x2000));
  Store.store s 0x2000 ~size:1 1L;
  Alcotest.(check bool) "written materialized" true
    (Store.materialized s (Addr.block_of 0x2000));
  Alcotest.(check bool) "neighbor block untouched" false
    (Store.materialized s (Addr.block_of 0x2040))

let test_store_masked_writeback () =
  let s = Store.create () in
  Store.store s 0 ~size:8 0x0101010101010101L;
  let data = Bytes.make 64 '\xFF' in
  (* Write back only bytes 0 and 2. *)
  Store.write_block_masked s 0 data ~mask:0b101L;
  Alcotest.(check int64) "byte 0 replaced" 0xFFL (Store.load s 0 ~size:1);
  Alcotest.(check int64) "byte 1 kept" 0x01L (Store.load s 1 ~size:1);
  Alcotest.(check int64) "byte 2 replaced" 0xFFL (Store.load s 2 ~size:1)

let store_model =
  qtest ~count:200 "store matches byte-array model"
    QCheck2.Gen.(list (pair (int_range 0 511) (int_range 0 255)))
    (fun writes ->
      let s = Store.create () in
      let model = Bytes.make 512 '\000' in
      List.iter
        (fun (off, v) ->
          Store.store s off ~size:1 (Int64.of_int v);
          Bytes.set model off (Char.chr v))
        writes;
      List.for_all
        (fun off ->
          Store.load s off ~size:1 = Int64.of_int (Char.code (Bytes.get model off)))
        (List.init 512 Fun.id))

(* --- Linedata ---------------------------------------------------------------- *)

let test_linedata_dirty_tracking () =
  let l = Linedata.create () in
  Alcotest.(check bool) "clean" false (Linedata.is_dirty l);
  Linedata.store l ~off:8 ~size:4 0xAABBCCDDL;
  Alcotest.(check int64) "mask covers bytes 8-11" 0xF00L (Linedata.dirty_mask l);
  Alcotest.(check int64) "readback" 0xAABBCCDDL (Linedata.load l ~off:8 ~size:4);
  Linedata.clear_dirty l;
  Alcotest.(check bool) "cleared" false (Linedata.is_dirty l);
  Alcotest.(check int64) "data survives clear" 0xAABBCCDDL
    (Linedata.load l ~off:8 ~size:4)

let test_linedata_fill_resets () =
  let l = Linedata.create () in
  Linedata.store l ~off:0 ~size:8 1L;
  Linedata.fill_from l (Bytes.make 64 '\x42');
  Alcotest.(check bool) "fill clears dirty" false (Linedata.is_dirty l);
  Alcotest.(check int64) "fill data visible" 0x4242424242424242L
    (Linedata.load l ~off:16 ~size:8)

let test_linedata_merge_masked () =
  (* Two copies with disjoint dirty bytes merge losslessly, the paper's
     false-sharing reconciliation. *)
  let base = Bytes.make 64 '\000' in
  let a = Linedata.of_bytes (Bytes.copy base) in
  let b = Linedata.of_bytes (Bytes.copy base) in
  Linedata.store a ~off:0 ~size:1 0x11L;
  Linedata.store b ~off:1 ~size:1 0x22L;
  let dst = Linedata.of_bytes (Bytes.copy base) in
  Linedata.merge_masked ~dst ~src:a;
  Linedata.merge_masked ~dst ~src:b;
  Alcotest.(check int64) "byte from a" 0x11L (Linedata.load dst ~off:0 ~size:1);
  Alcotest.(check int64) "byte from b" 0x22L (Linedata.load dst ~off:1 ~size:1);
  Alcotest.(check int64) "merged mask" 3L (Linedata.dirty_mask dst)

let test_range_mask () =
  Alcotest.(check int64) "one byte" 0x8L (Linedata.range_mask ~off:3 ~size:1);
  Alcotest.(check int64) "full line" (-1L) (Linedata.range_mask ~off:0 ~size:64)

let linedata_merge_model =
  qtest ~count:200 "sector merge = per-byte last-writer"
    QCheck2.Gen.(list (pair (int_range 0 1) (pair (int_range 0 63) (int_range 1 255))))
    (fun writes ->
      (* Replay single-byte writes by two "cores" into private copies, then
         merge in core order; compare against a flat model where merge
         order only matters for bytes both wrote. *)
      let base = Bytes.make 64 '\000' in
      let copies = [| Linedata.of_bytes (Bytes.copy base); Linedata.of_bytes (Bytes.copy base) |] in
      let model = Array.make 64 None in
      List.iter
        (fun (core, (off, v)) ->
          Linedata.store copies.(core) ~off ~size:1 (Int64.of_int v);
          (* core 1 merges after core 0, so it wins ties *)
          match model.(off) with
          | Some (c, _) when c > core -> ()
          | _ -> model.(off) <- Some (core, v))
        writes;
      let dst = Linedata.of_bytes (Bytes.copy base) in
      Linedata.merge_masked ~dst ~src:copies.(0);
      Linedata.merge_masked ~dst ~src:copies.(1);
      Array.for_all Fun.id
        (Array.init 64 (fun off ->
             match model.(off) with
             | None -> Linedata.load dst ~off ~size:1 = 0L
             | Some (_, v) -> Linedata.load dst ~off ~size:1 = Int64.of_int v)))

(* --- Sa (set-associative array) -------------------------------------------- *)

let test_sa_insert_find () =
  let c = Sa.create ~sets:4 ~ways:2 ~dummy:"?" in
  Alcotest.(check int) "capacity" 8 (Sa.capacity_blocks c);
  Alcotest.(check (option int)) "no eviction" None
    (Option.map fst (Sa.insert c 0 "a"));
  Alcotest.(check (option string)) "find" (Some "a") (Sa.find c 0);
  Alcotest.(check bool) "mem" true (Sa.mem c 0);
  Alcotest.(check (option string)) "absent" None (Sa.find c 4)

let test_sa_lru_eviction () =
  let c = Sa.create ~sets:1 ~ways:2 ~dummy:"?" in
  ignore (Sa.insert c 0 "a");
  ignore (Sa.insert c 1 "b");
  ignore (Sa.find c 0);
  (* touch a: now b is LRU *)
  (match Sa.insert c 2 "c" with
  | Some (1, "b") -> ()
  | _ -> Alcotest.fail "expected b evicted");
  Alcotest.(check bool) "a kept" true (Sa.mem c 0);
  Alcotest.(check bool) "c present" true (Sa.mem c 2)

let test_sa_would_evict () =
  let c = Sa.create ~sets:1 ~ways:1 ~dummy:"?" in
  ignore (Sa.insert c 7 "x");
  Alcotest.(check (option (pair int string))) "predicts victim" (Some (7, "x"))
    (Sa.would_evict c 9);
  Alcotest.(check (option (pair int string))) "resident: no eviction" None
    (Sa.would_evict c 7)

let test_sa_remove_and_iter () =
  let c = Sa.create ~sets:2 ~ways:2 ~dummy:0 in
  List.iter (fun b -> ignore (Sa.insert c b b)) [ 0; 1; 2; 3 ];
  Alcotest.(check int) "population" 4 (Sa.population c);
  ignore (Sa.remove c 2);
  Alcotest.(check int) "after remove" 3 (Sa.population c);
  let seen = ref [] in
  Sa.iter c (fun blk _ -> seen := blk :: !seen);
  Alcotest.(check (list int)) "iter all" [ 0; 1; 3 ] (List.sort compare !seen);
  let ranged = ref [] in
  Sa.iter_range c ~lo_block:1 ~hi_block:4 (fun blk _ -> ranged := blk :: !ranged);
  Alcotest.(check (list int)) "iter range" [ 1; 3 ] (List.sort compare !ranged)

(* The way-handle API: sentinel misses, MRU way-0 rotation that must not
   disturb LRU ordering, pure peeks, and handle-based touches. *)

let test_sa_way_sentinel () =
  let c = Sa.create ~sets:2 ~ways:2 ~dummy:"?" in
  ignore (Sa.insert c 0 "a");
  Alcotest.(check bool) "find_way hit" true (Sa.hit (Sa.find_way c 0));
  Alcotest.(check string) "value" "a" (Sa.value c (Sa.find_way c 0));
  Alcotest.(check bool) "find_way miss" false (Sa.hit (Sa.find_way c 2));
  Alcotest.(check bool) "peek_way miss" false (Sa.hit (Sa.peek_way c 2))

let test_sa_lru_correct_after_way_swap () =
  let c = Sa.create ~sets:1 ~ways:3 ~dummy:"?" in
  ignore (Sa.insert c 0 "a");
  ignore (Sa.insert c 1 "b");
  ignore (Sa.insert c 2 "c");
  (* Hitting block 2 rotates it into way 0; block 0 stays LRU. *)
  ignore (Sa.find_way c 2);
  (match Sa.insert c 3 "d" with
  | Some (0, "a") -> ()
  | _ -> Alcotest.fail "expected block 0 evicted after way swap");
  Alcotest.(check bool) "b kept" true (Sa.mem c 1);
  Alcotest.(check bool) "c kept" true (Sa.mem c 2)

let test_sa_peek_does_not_refresh () =
  let c = Sa.create ~sets:1 ~ways:2 ~dummy:"?" in
  ignore (Sa.insert c 0 "a");
  ignore (Sa.insert c 1 "b");
  ignore (Sa.peek_way c 0);
  ignore (Sa.peek c 0);
  (* Peeks left block 0 least-recently used. *)
  match Sa.insert c 2 "c" with
  | Some (0, "a") -> ()
  | _ -> Alcotest.fail "peek must not refresh recency"

let test_sa_touch_way_refreshes () =
  let c = Sa.create ~sets:1 ~ways:2 ~dummy:"?" in
  ignore (Sa.insert c 0 "a");
  ignore (Sa.insert c 1 "b");
  let w = Sa.peek_way c 0 in
  Sa.touch_way c w;
  match Sa.insert c 2 "c" with
  | Some (1, "b") -> ()
  | _ -> Alcotest.fail "touch_way must refresh recency"

let test_sa_conflict_roundtrip () =
  let c = Sa.create ~sets:1 ~ways:1 ~dummy:"?" in
  ignore (Sa.insert c 5 "x");
  (match Sa.insert c 9 "y" with
  | Some (5, "x") -> ()
  | _ -> Alcotest.fail "expected conflict eviction of 5");
  Alcotest.(check (option string)) "remove returns payload" (Some "y")
    (Sa.remove c 9);
  Alcotest.(check bool) "gone" false (Sa.mem c 9);
  Alcotest.(check (option int)) "reinsert into empty way" None
    (Option.map fst (Sa.insert c 5 "x2"));
  Alcotest.(check (option string)) "find after round trip" (Some "x2")
    (Sa.find c 5)

(* The cache never exceeds capacity and never loses a resident block
   without an eviction report. *)
let sa_accounting =
  qtest ~count:200 "insertions are fully accounted"
    QCheck2.Gen.(list (int_range 0 63))
    (fun blocks ->
      let c = Sa.create ~sets:4 ~ways:2 ~dummy:() in
      let resident = Hashtbl.create 16 in
      List.iter
        (fun blk ->
          (match Sa.insert c blk () with
          | Some (victim, ()) -> Hashtbl.remove resident victim
          | None -> ());
          Hashtbl.replace resident blk ())
        blocks;
      Sa.population c = Hashtbl.length resident
      && Hashtbl.fold (fun blk () acc -> acc && Sa.mem c blk) resident true)

let suite =
  [
    Alcotest.test_case "addr geometry" `Quick test_addr_geometry;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store alignment" `Quick test_store_alignment_rejected;
    Alcotest.test_case "store materialization" `Quick test_store_materialization;
    Alcotest.test_case "store masked writeback" `Quick test_store_masked_writeback;
    store_model;
    Alcotest.test_case "linedata dirty tracking" `Quick test_linedata_dirty_tracking;
    Alcotest.test_case "linedata fill" `Quick test_linedata_fill_resets;
    Alcotest.test_case "linedata merge" `Quick test_linedata_merge_masked;
    Alcotest.test_case "range mask" `Quick test_range_mask;
    linedata_merge_model;
    Alcotest.test_case "sa insert/find" `Quick test_sa_insert_find;
    Alcotest.test_case "sa lru" `Quick test_sa_lru_eviction;
    Alcotest.test_case "sa would_evict" `Quick test_sa_would_evict;
    Alcotest.test_case "sa remove/iter" `Quick test_sa_remove_and_iter;
    Alcotest.test_case "sa way sentinel" `Quick test_sa_way_sentinel;
    Alcotest.test_case "sa lru after way swap" `Quick
      test_sa_lru_correct_after_way_swap;
    Alcotest.test_case "sa peek is pure" `Quick test_sa_peek_does_not_refresh;
    Alcotest.test_case "sa touch_way refreshes" `Quick
      test_sa_touch_way_refreshes;
    Alcotest.test_case "sa conflict round trip" `Quick
      test_sa_conflict_roundtrip;
    sa_accounting;
  ]

let () = Alcotest.run "warden-cache" [ ("cache", suite) ]
