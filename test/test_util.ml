(* Unit and property tests for the warden.util substrate: RNG, deque,
   priority queue, bitset, stats and table rendering. *)

open Warden_util

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Splitmix ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Splitmix.make 42L and b = Splitmix.make 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_rng_copy_independent () =
  let a = Splitmix.make 7L in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix.next a)
    (Splitmix.next b)

let test_rng_split_diverges () =
  let a = Splitmix.make 7L in
  let child = Splitmix.split a in
  Alcotest.(check bool) "split stream differs" true
    (Splitmix.next a <> Splitmix.next child)

let rng_bounds =
  qtest "int64_in respects bound"
    QCheck2.Gen.(pair (int_range 1 1_000_000) int64)
    (fun (bound, seed) ->
      let rng = Splitmix.make seed in
      let v = Splitmix.int64_in rng (Int64.of_int bound) in
      Int64.compare v 0L >= 0 && Int64.compare v (Int64.of_int bound) < 0)

let test_rng_extreme_bound () =
  (* Regression: bound = Int64.max_int used to loop forever. *)
  let rng = Splitmix.make 1L in
  for _ = 1 to 1000 do
    let v = Splitmix.int64_in rng Int64.max_int in
    Alcotest.(check bool) "in range" true (Int64.compare v 0L >= 0)
  done

let test_rng_rough_uniformity () =
  let rng = Splitmix.make 3L in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let b = Splitmix.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket count %d near %d" c (n / 10))
        true
        (abs (c - (n / 10)) < n / 50))
    buckets

let test_shuffle_permutes () =
  let rng = Splitmix.make 9L in
  let a = Array.init 100 Fun.id in
  Splitmix.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

(* --- Deque ---------------------------------------------------------------- *)

let test_deque_lifo_owner () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop newest" (Some 3) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal_top d);
  Alcotest.(check (option int)) "pop remaining" (Some 2) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty" None (Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal_top d)

let test_deque_grows () =
  let d = Deque.create () in
  for i = 0 to 999 do
    Deque.push_bottom d i
  done;
  Alcotest.(check int) "length" 1000 (Deque.length d);
  Alcotest.(check (list int)) "order" (List.init 1000 Fun.id) (Deque.to_list d)

(* Random interleavings of push/pop/steal against a reference model. *)
let deque_model =
  qtest ~count:200 "deque matches a two-ended list model"
    QCheck2.Gen.(list (int_range 0 2))
    (fun ops ->
      let d = Deque.create () in
      (* model: head = top (oldest), tail = bottom (newest) *)
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Deque.push_bottom d !counter;
              model := !model @ [ !counter ];
              true
          | 1 -> (
              match List.rev !model with
              | [] -> Deque.pop_bottom d = None
              | x :: rest ->
                  model := List.rev rest;
                  Deque.pop_bottom d = Some x)
          | _ -> (
              match !model with
              | [] -> Deque.steal_top d = None
              | x :: rest ->
                  model := rest;
                  Deque.steal_top d = Some x))
        ops)

(* --- Pqueue ---------------------------------------------------------------- *)

let test_pqueue_orders () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q ~prio:p v) [ (5, "e"); (1, "a"); (3, "c") ];
  Alcotest.(check (option (pair int string))) "min" (Some (1, "a")) (Pqueue.pop q);
  Pqueue.add q ~prio:0 "z";
  Alcotest.(check (option (pair int string))) "new min" (Some (0, "z"))
    (Pqueue.pop q);
  Alcotest.(check (option int)) "peek prio" (Some 3) (Pqueue.min_prio q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q ~prio:7 v) [ "first"; "second"; "third" ];
  Alcotest.(check (option (pair int string)))
    "fifo 1" (Some (7, "first")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string)))
    "fifo 2"
    (Some (7, "second"))
    (Pqueue.pop q);
  Alcotest.(check (option (pair int string)))
    "fifo 3" (Some (7, "third")) (Pqueue.pop q)

let test_pqueue_clear_reuse () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.add q ~prio:p p) [ 9; 2; 5 ];
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  Alcotest.(check int) "min_prio_or default" 42 (Pqueue.min_prio_or q ~default:42);
  (* FIFO sequencing restarts cleanly after a clear. *)
  List.iter (fun v -> Pqueue.add q ~prio:1 v) [ 10; 20 ];
  Alcotest.(check int) "min_prio_or" 1 (Pqueue.min_prio_or q ~default:42);
  Alcotest.(check int) "pop_exn fifo 1" 10 (Pqueue.pop_exn q);
  Alcotest.(check int) "pop_exn fifo 2" 20 (Pqueue.pop_exn q);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Pqueue.pop_exn: empty") (fun () ->
      ignore (Pqueue.pop_exn q))

let pqueue_sorted =
  qtest ~count:200 "pqueue drains in priority order"
    QCheck2.Gen.(list (int_range 0 1000))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q ~prio:p p) prios;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

(* The sharded engine's invariant: several queues fed under one global
   sequence counter, popped by minimum (priority, sequence), replay a
   single [add]-driven queue's order exactly. *)
let test_pqueue_seq_merge () =
  let single = Pqueue.create () in
  let qa = Pqueue.create () and qb = Pqueue.create () in
  let n = 500 in
  for i = 0 to n - 1 do
    let prio = i * 7919 mod 32 in
    Pqueue.add single ~prio i;
    let q = if i * 104729 mod 3 < 2 then qa else qb in
    Pqueue.add_seq q ~prio ~seq:i i
  done;
  for _ = 1 to n do
    let expect = Pqueue.pop_exn single in
    let pa = Pqueue.min_prio_or qa ~default:max_int
    and sa = Pqueue.min_seq_or qa ~default:max_int
    and pb = Pqueue.min_prio_or qb ~default:max_int
    and sb = Pqueue.min_seq_or qb ~default:max_int in
    let got =
      if pa < pb || (pa = pb && sa < sb) then Pqueue.pop_exn qa
      else Pqueue.pop_exn qb
    in
    Alcotest.(check int) "merge replays single-queue order" expect got
  done;
  Alcotest.(check bool) "both drained" true
    (Pqueue.is_empty qa && Pqueue.is_empty qb)

(* --- Itab ----------------------------------------------------------------- *)

(* Differential test against a Hashtbl model: a random script of
   find_or_add / find_or / mem calls must agree on every result (and on
   the final size), including across growth/rehash. *)
let itab_model =
  qtest ~count:300 "itab matches hashtbl model"
    QCheck2.Gen.(
      list_size (int_range 1 400) (pair (int_range 0 2) (int_range 0 997)))
    (fun script ->
      let tab = Itab.create ~dummy:(-1) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let v = Itab.find_or_add tab key ~make:(fun k -> (k * 7) + 1) in
              let mv =
                match Hashtbl.find_opt model key with
                | Some mv -> mv
                | None ->
                    let mv = (key * 7) + 1 in
                    Hashtbl.add model key mv;
                    mv
              in
              v = mv
          | 1 ->
              Itab.find_or tab key ~default:(-1)
              = Option.value (Hashtbl.find_opt model key) ~default:(-1)
          | _ -> Itab.mem tab key = Hashtbl.mem model key)
        script
      && Itab.length tab = Hashtbl.length model
      && begin
           (* iter yields exactly the model's bindings. *)
           let seen = ref 0 in
           let ok = ref true in
           Itab.iter tab (fun k v ->
               incr seen;
               ok := !ok && Hashtbl.find_opt model k = Some v);
           !ok && !seen = Hashtbl.length model
         end)

(* --- Bitset ---------------------------------------------------------------- *)

let test_bitset_basic () =
  let b = Bitset.create () in
  Bitset.add b 3;
  Bitset.add b 100;
  Bitset.add b 3;
  Alcotest.(check int) "cardinal dedups" 2 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 100" true (Bitset.mem b 100);
  Alcotest.(check bool) "not mem 4" false (Bitset.mem b 4);
  Alcotest.(check (list int)) "elements sorted" [ 3; 100 ] (Bitset.elements b);
  Bitset.remove b 3;
  Alcotest.(check (option int)) "choose smallest" (Some 100) (Bitset.choose b);
  Bitset.remove b 100;
  Alcotest.(check bool) "empty" true (Bitset.is_empty b)

let bitset_model =
  qtest ~count:200 "bitset matches a set model"
    QCheck2.Gen.(list (pair bool (int_range 0 300)))
    (fun ops ->
      let b = Bitset.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.elements b))

(* --- Stats ---------------------------------------------------------------- *)

let test_stats_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Stats.speedup ~baseline:10. ~value:5.);
  Alcotest.(check (float 1e-9)) "percent" 50.
    (Stats.percent_change ~baseline:10. ~value:5.)

let test_stats_online () =
  let o = Stats.online () in
  List.iter (Stats.push o) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count o);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.omean o);
  Alcotest.(check (float 1e-6)) "stddev (sample)" (sqrt (32. /. 7.)) (Stats.stddev o);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.omin o);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.omax o)

(* --- Table ---------------------------------------------------------------- *)

let test_table_renders () =
  let out =
    Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "x"; "y" ]; [ "long"; "z" ] ]
  in
  Alcotest.(check int) "header + rule + 2 rows" 4
    (List.length (String.split_on_char '\n' (String.trim out)));
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Table.render ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ]))

let test_bar_chart () =
  let out = Table.bar_chart ~title:"t" () [ ("a", 1.0); ("b", 2.0) ] in
  Alcotest.(check bool) "three lines or more" true
    (List.length (String.split_on_char '\n' out) >= 3)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng split" `Quick test_rng_split_diverges;
    rng_bounds;
    Alcotest.test_case "rng max bound regression" `Quick test_rng_extreme_bound;
    Alcotest.test_case "rng uniformity" `Quick test_rng_rough_uniformity;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "deque lifo/fifo" `Quick test_deque_lifo_owner;
    Alcotest.test_case "deque grows" `Quick test_deque_grows;
    deque_model;
    Alcotest.test_case "pqueue orders" `Quick test_pqueue_orders;
    Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
    Alcotest.test_case "pqueue clear and reuse" `Quick test_pqueue_clear_reuse;
    pqueue_sorted;
    Alcotest.test_case "pqueue seq merge" `Quick test_pqueue_seq_merge;
    itab_model;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    bitset_model;
    Alcotest.test_case "stats means" `Quick test_stats_means;
    Alcotest.test_case "stats online" `Quick test_stats_online;
    Alcotest.test_case "table renders" `Quick test_table_renders;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
  ]

let () = Alcotest.run "warden-util" [ ("util", suite) ]
