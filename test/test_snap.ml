(* Snapshot/restore (DESIGN.md §15) and trace replay.

   1. Serialization primitives round-trip: Store's interval-table pages
      differentially against a rebuilt table, Csa's chunked LLC store
      preserving unallocated-chunk-is-miss, Dirstate on both sides of
      the 62-core flat/hierarchical sharer-layout boundary.
   2. Restore-then-run bit-identity: running phase A, snapshotting,
      restoring into a fresh engine and running phase B must leave the
      restored engine byte-identical (snapshot bytes and stats dump) to
      the engine that ran A then B cold — across machines, domain
      counts, spec on/off, and both protocols, plus one cross-domain
      restore (snapshots are D-portable).
   3. Replay: a recorded commit-order stream replayed through a fresh
      engine reproduces the recording run's memory-system stats byte
      for byte; cross-protocol replay consumes the same stream.
   4. Corruption: checksum damage, truncation, and fingerprint
      mismatches (wrong protocol) are detected, never silently
      restored. *)

open Warden_util
open Warden_machine
open Warden_sim
module Ops = Engine.Ops
module Snap = Warden_snap.Snap
module Stream = Warden_trace.Stream

let roundtrip save restore_into =
  let w = Bin.writer () in
  save w;
  restore_into (Bin.reader (Bin.contents w))

(* ---- 1. Serialization primitives ----------------------------------------- *)

let test_store_roundtrip () =
  (* Sparse writes across distant pages; the restored table must answer
     exactly like a table rebuilt by replaying the same writes. *)
  let writes =
    List.init 64 (fun i ->
        let addr = (i * 77773 * 64) + (8 * (i mod 7)) in
        (addr, Int64.of_int ((i * 0x9E3779B9) lxor 0x5EED)))
  in
  let original = Warden_mem.Store.create () in
  let rebuilt = Warden_mem.Store.create () in
  List.iter
    (fun (a, v) ->
      Warden_mem.Store.store original a ~size:8 v;
      Warden_mem.Store.store rebuilt a ~size:8 v)
    writes;
  let restored = Warden_mem.Store.create () in
  roundtrip
    (fun w -> Warden_mem.Store.save original w)
    (fun r -> Warden_mem.Store.restore restored r);
  List.iter
    (fun (a, _) ->
      Alcotest.(check int64)
        (Printf.sprintf "addr %#x restored = rebuilt" a)
        (Warden_mem.Store.load rebuilt a ~size:8)
        (Warden_mem.Store.load restored a ~size:8);
      (* Unwritten neighbours stay zero-filled on both. *)
      let hole = a + (613 * 64) in
      Alcotest.(check int64)
        (Printf.sprintf "hole %#x stays zero" hole)
        (Warden_mem.Store.load rebuilt hole ~size:8)
        (Warden_mem.Store.load restored hole ~size:8))
    writes;
  Alcotest.(check int) "footprint identical"
    (Warden_mem.Store.footprint_bytes rebuilt)
    (Warden_mem.Store.footprint_bytes restored)

let test_csa_roundtrip () =
  let open Warden_cache in
  let mk () = Csa.create ~sets:4096 ~ways:4 ~dummy:(-1) in
  let original = mk () in
  (* Touch a handful of widely-spaced sets so only a few chunks
     materialize. *)
  let blks = List.init 40 (fun i -> i * 131 * 13) in
  List.iter (fun b -> ignore (Csa.insert original b (b * 3) : _ option)) blks;
  let restored = mk () in
  roundtrip
    (fun w -> Csa.save original w ~elt:Bin.w_int)
    (fun r -> Csa.restore restored r ~elt:Bin.r_int);
  Alcotest.(check int) "chunk population preserved"
    (Csa.chunks_allocated original)
    (Csa.chunks_allocated restored);
  Alcotest.(check bool) "lazy: not all chunks allocated" true
    (Csa.chunks_allocated restored < Csa.chunks_total restored);
  List.iter
    (fun b ->
      match Csa.find restored b with
      | Some p -> Alcotest.(check int) "payload preserved" (b * 3) p
      | None -> Alcotest.failf "block %d lost across round trip" b)
    blks;
  (* Probing a set in a never-materialized chunk is still a miss and
     still does not materialize anything. *)
  let absent = 997 in
  let before = Csa.chunks_allocated restored in
  Alcotest.(check bool) "unallocated chunk probes as miss" true
    (Csa.find restored absent = None);
  Alcotest.(check bool) "pure probe answers dummy" true
    (Csa.peek_or_dummy restored absent == Csa.dummy restored);
  Alcotest.(check int) "miss probe materializes nothing" before
    (Csa.chunks_allocated restored)

let dirstate_equal_on dir dir' ~cores ~blks =
  List.iter
    (fun blk ->
      let s = Warden_proto.Dirstate.find dir blk in
      let s' = Warden_proto.Dirstate.find dir' blk in
      let open Warden_proto.Dirstate in
      Alcotest.(check bool)
        (Printf.sprintf "block %d presence" blk)
        (s = no_slot) (s' = no_slot);
      if s <> no_slot then begin
        Alcotest.(check bool)
          (Printf.sprintf "block %d state" blk)
          true
          (state dir s = state dir' s');
        Alcotest.(check int)
          (Printf.sprintf "block %d owner" blk)
          (owner dir s) (owner dir' s');
        for c = 0 to cores - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "block %d sharer %d" blk c)
            (sharer_mem dir s c) (sharer_mem dir' s' c)
        done
      end)
    blks

let test_dirstate_hier_boundary () =
  let open Warden_proto in
  (* 2x31 = 62 cores: last flat geometry; 2x32 = 64: first hierarchical. *)
  List.iter
    (fun (sockets, cps) ->
      let cores = sockets * cps in
      let dir = Dirstate.create ~sockets ~cores_per_socket:cps () in
      Alcotest.(check bool)
        (Printf.sprintf "%d cores layout" cores)
        (cores > 62)
        (Dirstate.hierarchical dir);
      let blks = List.init 200 (fun i -> i * 997) in
      List.iter
        (fun blk ->
          let s = Dirstate.entry dir blk in
          match blk mod 3 with
          | 0 ->
              Dirstate.set_state dir s States.D_S;
              (* Sharers straddling the socket boundary. *)
              Dirstate.sharer_add dir s (blk mod cores);
              Dirstate.sharer_add dir s ((blk + cps) mod cores)
          | 1 ->
              Dirstate.set_state dir s States.D_M;
              Dirstate.set_owner dir s (blk mod cores)
          | _ -> ())
        blks;
      let restored = Dirstate.create ~sockets ~cores_per_socket:cps () in
      roundtrip
        (fun w -> Dirstate.save dir w)
        (fun r -> Dirstate.restore restored r);
      dirstate_equal_on dir restored ~cores ~blks)
    [ (2, 31); (2, 32) ];
  (* Geometry mismatch is refused, not mangled. *)
  let dir = Dirstate.create ~sockets:2 ~cores_per_socket:31 () in
  ignore (Dirstate.entry dir 7 : Dirstate.slot);
  let w = Bin.writer () in
  Dirstate.save dir w;
  let other = Dirstate.create ~sockets:2 ~cores_per_socket:32 () in
  Alcotest.check_raises "geometry mismatch detected"
    (Bin.Corrupt "Bin: Dirstate: geometry mismatch") (fun () ->
      Dirstate.restore other (Bin.reader (Bin.contents w)))

(* ---- 2. Restore-then-run bit-identity ------------------------------------ *)

(* A small sharing-heavy workload: 4 threads walking overlapping block
   sets with a load/store/rmw mix, phase-dependent so A and B differ. *)
let phase_bodies ms ~round =
  let base = Memsys.alloc ms ~bytes:(64 * 64) ~align:64 in
  Array.init 4 (fun t () ->
      for i = 0 to 199 do
        let a = base + (64 * ((i * 7) + (t * 13) + round) mod (64 * 64)) in
        let a = a land lnot 7 in
        if i mod 5 = t mod 5 then Ops.store a ~size:8 (Int64.of_int (i + round))
        else if i mod 16 = 0 then
          ignore (Ops.rmw a ~size:8 (Int64.add 1L) : int64)
        else ignore (Ops.load a ~size:8 : int64);
        Ops.tick 1
      done)

let stats_and_bytes eng =
  (Stream.stats_text (Engine.memsys eng), Snap.to_bytes eng)

let test_restore_then_run () =
  let machines =
    [
      ("single", Config.single_socket ());
      ("dual", Config.dual_socket ());
      ("mesh4", Config.numa_mesh ~sockets:4 ());
    ]
  in
  List.iter
    (fun (mname, cfg) ->
      List.iter
        (fun (domains, spec) ->
          let cfg = { cfg with Config.sim_domains = domains; sim_spec = spec } in
          List.iter
            (fun proto ->
              let label =
                Printf.sprintf "%s D=%d spec=%b" mname domains spec
              in
              (* Cold: A then B on one engine. *)
              let cold = Engine.create cfg ~proto in
              let ms = Engine.memsys cold in
              ignore (Engine.run cold (phase_bodies ms ~round:0) : int);
              let mid = Snap.to_bytes cold in
              ignore (Engine.run cold (phase_bodies ms ~round:1) : int);
              let cold_stats, cold_bytes = stats_and_bytes cold in
              (* Restored: B on a fresh engine restored from A's end. *)
              let warm = Engine.create cfg ~proto in
              Snap.restore warm mid;
              ignore
                (Engine.run warm (phase_bodies (Engine.memsys warm) ~round:1)
                  : int);
              let warm_stats, warm_bytes = stats_and_bytes warm in
              Alcotest.(check string)
                (label ^ ": stats bit-identical")
                cold_stats warm_stats;
              Alcotest.(check bool)
                (label ^ ": snapshot bytes bit-identical")
                true
                (Bytes.equal cold_bytes warm_bytes))
            [ `Mesi; `Warden ])
        [ (1, false); (2, false); (2, true); (4, true) ])
    machines

let test_restore_cross_domains () =
  (* Snapshots are D-portable: the fingerprint excludes sim_domains, and
     stats are D-independent, so a D=1 snapshot restored into a D=2
     engine must finish with the D=2 cold stats. Scheduler internals may
     differ, so this compares the stats dump, not snapshot bytes. *)
  let cfg d =
    { (Config.dual_socket ()) with Config.sim_domains = d; sim_spec = d > 1 }
  in
  let cold = Engine.create (cfg 2) ~proto:`Warden in
  let ms = Engine.memsys cold in
  ignore (Engine.run cold (phase_bodies ms ~round:0) : int);
  ignore (Engine.run cold (phase_bodies ms ~round:1) : int);
  let narrow = Engine.create (cfg 1) ~proto:`Warden in
  let nms = Engine.memsys narrow in
  ignore (Engine.run narrow (phase_bodies nms ~round:0) : int);
  let mid = Snap.to_bytes narrow in
  let wide = Engine.create (cfg 2) ~proto:`Warden in
  Snap.restore wide mid;
  ignore (Engine.run wide (phase_bodies (Engine.memsys wide) ~round:1) : int);
  Alcotest.(check string) "D=1 snapshot -> D=2 run = D=2 cold"
    (Stream.stats_text (Engine.memsys cold))
    (Stream.stats_text (Engine.memsys wide))

(* ---- 3. Replay ------------------------------------------------------------ *)

let test_replay_stats_identical () =
  let cfg = Config.dual_socket () in
  let live = Engine.create cfg ~proto:`Warden in
  let stream =
    snd
      (Stream.record (Engine.memsys live) (fun () ->
           ignore (Engine.run live (phase_bodies (Engine.memsys live) ~round:0) : int)))
  in
  Alcotest.(check bool) "stream non-empty" true (Stream.events stream > 0);
  let replayed = Engine.create cfg ~proto:`Warden in
  let n = Stream.replay stream (Engine.memsys replayed) in
  Alcotest.(check int) "every event consumed" (Stream.events stream) n;
  Alcotest.(check string) "replayed stats = live stats"
    (Stream.stats_text (Engine.memsys live))
    (Stream.stats_text (Engine.memsys replayed));
  (* The same stream drives the other protocol (trace-driven A/B). *)
  let ab = Engine.create cfg ~proto:`Mesi in
  Alcotest.(check int) "cross-protocol replay consumes the stream"
    (Stream.events stream)
    (Stream.replay stream (Engine.memsys ab))

let test_stream_envelope_roundtrip () =
  let cfg = Config.single_socket () in
  let live = Engine.create cfg ~proto:`Mesi in
  let stream =
    snd
      (Stream.record (Engine.memsys live) (fun () ->
           ignore (Engine.run live (phase_bodies (Engine.memsys live) ~round:0) : int)))
  in
  let b = Stream.to_bytes stream in
  let back = Stream.of_bytes b in
  Alcotest.(check int) "event count survives" (Stream.events stream)
    (Stream.events back);
  Alcotest.(check string) "protocol name survives" (Stream.proto stream)
    (Stream.proto back);
  (* Corrupt one body byte: the checksum must catch it. *)
  let dam = Bytes.copy b in
  let i = Bytes.length dam / 2 in
  Bytes.set dam i (Char.chr (Char.code (Bytes.get dam i) lxor 0x20));
  Alcotest.(check bool) "stream corruption detected" true
    (match Stream.of_bytes dam with
    | exception Bin.Corrupt _ -> true
    | _ -> false)

(* ---- 4. Snapshot corruption and fingerprint ------------------------------- *)

let test_snapshot_corruption () =
  let cfg = Config.single_socket () in
  let eng = Engine.create cfg ~proto:`Warden in
  ignore (Engine.run eng (phase_bodies (Engine.memsys eng) ~round:0) : int);
  let b = Snap.to_bytes eng in
  (* Bit flip in the body: checksum. *)
  let dam = Bytes.copy b in
  let i = Bytes.length dam - 9 in
  Bytes.set dam i (Char.chr (Char.code (Bytes.get dam i) lxor 1));
  let fresh () = Engine.create cfg ~proto:`Warden in
  let raises what f =
    Alcotest.(check bool) what true
      (match f () with exception Bin.Corrupt _ -> true | _ -> false)
  in
  raises "checksum damage detected" (fun () -> Snap.restore (fresh ()) dam);
  (* Truncation. *)
  raises "truncation detected" (fun () ->
      Snap.restore (fresh ()) (Bytes.sub b 0 (Bytes.length b / 2)));
  (* Fingerprint: a different protocol refuses the snapshot, naming the
     field. *)
  let wrong = Engine.create cfg ~proto:`Mesi in
  Alcotest.(check bool) "protocol mismatch names the field" true
    (match Snap.restore wrong b with
    | exception Bin.Corrupt msg ->
        let rec contains i =
          i + 8 <= String.length msg
          && (String.sub msg i 8 = "protocol" || contains (i + 1))
        in
        contains 0
    | _ -> false);
  (* [describe] summarizes without an engine. *)
  let d = Snap.describe b in
  Alcotest.(check bool) "describe mentions the machine" true
    (String.length d > 0)

let suite =
  [
    Alcotest.test_case "store pages round-trip (differential)" `Quick
      test_store_roundtrip;
    Alcotest.test_case "csa chunked store round-trip" `Quick test_csa_roundtrip;
    Alcotest.test_case "dirstate across the 62-core boundary" `Quick
      test_dirstate_hier_boundary;
    Alcotest.test_case "restore-then-run bit-identical" `Quick
      test_restore_then_run;
    Alcotest.test_case "snapshot restores across domain counts" `Quick
      test_restore_cross_domains;
    Alcotest.test_case "replay reproduces stats byte for byte" `Quick
      test_replay_stats_identical;
    Alcotest.test_case "stream envelope round-trip and checksum" `Quick
      test_stream_envelope_roundtrip;
    Alcotest.test_case "snapshot corruption and fingerprint" `Quick
      test_snapshot_corruption;
  ]

let () = Alcotest.run "warden-snap" [ ("snap", suite) ]
