(* White-box protocol tests: a hand-rolled fabric with hashtable-backed
   private caches drives the MESI engine and the WARDen protocol directly,
   asserting directory states, event counts and grant kinds transition by
   transition (the Fig. 5 FSA). *)

open Warden_cache
open Warden_machine
open Warden_proto
open Warden_proto.States

(* A miniature fabric: [ncores] private caches of unbounded capacity, one
   LLC hashtable per socket slice (by home), and a store. *)
type mini = {
  fabric : Fabric.t;
  priv : (int * int, Linedata.t) Hashtbl.t;
  llc : (int, Linedata.t) Hashtbl.t;
  store : Warden_mem.Store.t;
}

(* Directory sized for the mini fabric's default dual-socket machine. *)
let mk_dir ?(sockets = 2) ?(cores_per_socket = 12) () =
  Dirstate.create ~sockets ~cores_per_socket ()

let mk_mini ?(cfg = Config.dual_socket ()) () =
  let priv = Hashtbl.create 64 in
  let llc = Hashtbl.create 64 in
  let store = Warden_mem.Store.create () in
  (* The mini caches don't track grant states; report M for dirty copies
     and S otherwise — all the probe consumers distinguish. *)
  let probe ~core ~blk =
    Option.map
      (fun data ->
        {
          Fabric.levels = 2;
          state = (if Linedata.is_dirty data then P_M else P_S);
          data;
        })
      (Hashtbl.find_opt priv (core, blk))
  in
  let fabric =
    {
      Fabric.config = cfg;
      energy = Energy.create ();
      stats = Pstats.create ();
      obs = Warden_obs.Obs.create cfg;
      peek_priv = probe;
      invalidate_priv =
        (fun ~core ~blk ->
          let p = probe ~core ~blk in
          Hashtbl.remove priv (core, blk);
          p);
      downgrade_priv = probe;
      iter_priv =
        (fun ~core f ->
          Hashtbl.iter (fun (c, blk) _ -> if c = core then f blk) priv);
      read_shared =
        (fun ~blk ->
          match Hashtbl.find_opt llc blk with
          | Some line -> (Linedata.bytes line, `L3)
          | None ->
              let line =
                Linedata.of_bytes (Warden_mem.Store.read_block store blk)
              in
              Hashtbl.add llc blk line;
              (Linedata.bytes line, `Dram));
      llc_merge =
        (fun ~blk src ->
          let line =
            match Hashtbl.find_opt llc blk with
            | Some l -> l
            | None ->
                let l =
                  Linedata.of_bytes (Warden_mem.Store.read_block store blk)
                in
                Hashtbl.add llc blk l;
                l
          in
          Linedata.merge_masked ~dst:line ~src);
      llc_put_full =
        (fun ~blk bytes ->
          let l = Linedata.of_bytes (Bytes.copy bytes) in
          Linedata.mark_all_dirty l;
          Hashtbl.replace llc blk l);
    }
  in
  { fabric; priv; llc; store }

(* Install a grant into the mini private cache, as the memory system
   would, and snapshot it: protocol grants arrive in a reusable scratch
   record whose fields the next request overwrites. *)
let accept m ~core ~blk (g : Mesi.grant) =
  if Mesi.has_fill g then begin
    let line = Linedata.create () in
    Linedata.fill_from line g.Mesi.fill;
    Hashtbl.replace m.priv (core, blk) line
  end;
  { Mesi.pstate = g.Mesi.pstate; fill = g.Mesi.fill; latency = g.Mesi.latency }

let request m dir ~core ~blk ~write ~holds_s =
  accept m ~core ~blk
    (Mesi.handle_request m.fabric dir (Mesi.fresh_grant ()) ~core ~blk ~write
       ~holds_s)

(* ---- MESI ------------------------------------------------------------------ *)

let test_mesi_read_grants_e () =
  let m = mk_mini () in
  let dir = mk_dir () in
  let g = request m dir ~core:0 ~blk:5 ~write:false ~holds_s:false in
  Alcotest.(check bool) "granted E" true (g.Mesi.pstate = P_E);
  let e = Dirstate.entry dir 5 in
  Alcotest.(check bool) "dir E" true (Dirstate.state dir e = D_E);
  Alcotest.(check int) "owner" 0 (Dirstate.owner dir e);
  Alcotest.(check int) "no invalidations" 0 m.fabric.Fabric.stats.Pstats.invalidations

let test_mesi_write_grants_m () =
  let m = mk_mini () in
  let dir = mk_dir () in
  let g = request m dir ~core:3 ~blk:9 ~write:true ~holds_s:false in
  Alcotest.(check bool) "granted M" true (g.Mesi.pstate = P_M);
  Alcotest.(check bool) "dir M" true
    (Dirstate.state dir (Dirstate.entry dir 9) = D_M)

let test_mesi_read_after_write_downgrades () =
  let m = mk_mini () in
  let dir = mk_dir () in
  ignore (request m dir ~core:0 ~blk:1 ~write:true ~holds_s:false);
  (* Core 0 writes a value into its private copy. *)
  Linedata.store (Hashtbl.find m.priv (0, 1)) ~off:0 ~size:8 77L;
  let g = request m dir ~core:1 ~blk:1 ~write:false ~holds_s:false in
  Alcotest.(check bool) "granted S" true (g.Mesi.pstate = P_S);
  Alcotest.(check int) "one owner downgraded (2 levels)" 2
    m.fabric.Fabric.stats.Pstats.downgrades;
  Alcotest.(check int) "one fwd" 1 m.fabric.Fabric.stats.Pstats.fwds;
  (* The reader received the writer's data, not stale memory. *)
  Alcotest.(check int64) "forwarded value" 77L
    (Linedata.load (Hashtbl.find m.priv (1, 1)) ~off:0 ~size:8);
  let e = Dirstate.entry dir 1 in
  Alcotest.(check bool) "dir S" true (Dirstate.state dir e = D_S);
  Alcotest.(check (list int)) "both sharers" [ 0; 1 ]
    (Dirstate.holders dir e)

let test_mesi_write_invalidates_sharers () =
  let m = mk_mini () in
  let dir = mk_dir () in
  ignore (request m dir ~core:0 ~blk:2 ~write:true ~holds_s:false);
  ignore (request m dir ~core:1 ~blk:2 ~write:false ~holds_s:false);
  ignore (request m dir ~core:2 ~blk:2 ~write:false ~holds_s:false);
  let before = m.fabric.Fabric.stats.Pstats.invalidations in
  (* Core 1 upgrades: cores 0 and 2 must lose their S copies. *)
  let g =
    Mesi.handle_request m.fabric dir (Mesi.fresh_grant ()) ~core:1 ~blk:2
      ~write:true ~holds_s:true
  in
  Alcotest.(check bool) "upgrade has no fill" false (Mesi.has_fill g);
  Alcotest.(check int) "two sharers invalidated (2 levels each)" 4
    (m.fabric.Fabric.stats.Pstats.invalidations - before);
  Alcotest.(check bool) "copy 0 gone" false (Hashtbl.mem m.priv (0, 2));
  Alcotest.(check bool) "dir M, owner 1" true
    (let e = Dirstate.entry dir 2 in
     Dirstate.state dir e = D_M && Dirstate.owner dir e = 1)

let test_mesi_write_write_transfer () =
  let m = mk_mini () in
  let dir = mk_dir () in
  ignore (request m dir ~core:0 ~blk:3 ~write:true ~holds_s:false);
  Linedata.store (Hashtbl.find m.priv (0, 3)) ~off:8 ~size:8 123L;
  let g = request m dir ~core:5 ~blk:3 ~write:true ~holds_s:false in
  Alcotest.(check bool) "granted M" true (g.Mesi.pstate = P_M);
  Alcotest.(check int64) "dirty data migrated" 123L
    (Linedata.load (Hashtbl.find m.priv (5, 3)) ~off:8 ~size:8);
  Alcotest.(check bool) "old owner invalidated" false (Hashtbl.mem m.priv (0, 3))

let test_mesi_cross_socket_latency_higher () =
  let m = mk_mini () in
  let dir = mk_dir () in
  (* Owner on socket 0 (core 0); compare requestors on both sockets.
     Choose a block homed on socket 0: home = blk mod 2. *)
  let blk = 4 in
  ignore (request m dir ~core:0 ~blk ~write:true ~holds_s:false);
  let near = request m dir ~core:1 ~blk ~write:false ~holds_s:false in
  (* Reset: new block, same geometry, remote requestor (core 12+). *)
  let blk2 = 6 in
  ignore (request m dir ~core:0 ~blk:blk2 ~write:true ~holds_s:false);
  let far = request m dir ~core:13 ~blk:blk2 ~write:false ~holds_s:false in
  Alcotest.(check bool)
    (Printf.sprintf "cross-socket read (%d) slower than local (%d)"
       far.Mesi.latency near.Mesi.latency)
    true
    (far.Mesi.latency > near.Mesi.latency)

let test_mesi_eviction_updates_directory () =
  let m = mk_mini () in
  let dir = mk_dir () in
  ignore (request m dir ~core:0 ~blk:7 ~write:true ~holds_s:false);
  let line = Hashtbl.find m.priv (0, 7) in
  Linedata.store line ~off:0 ~size:8 55L;
  Hashtbl.remove m.priv (0, 7);
  Mesi.handle_evict m.fabric dir ~core:0 ~blk:7 ~pstate:P_M ~data:line;
  Alcotest.(check bool) "dir invalid" true
    (Dirstate.state dir (Dirstate.entry dir 7) = D_I);
  Alcotest.(check int) "writeback counted" 1 m.fabric.Fabric.stats.Pstats.writebacks;
  (* Data reached the LLC: a fresh read returns it. *)
  let g = request m dir ~core:2 ~blk:7 ~write:false ~holds_s:false in
  ignore g;
  Alcotest.(check int64) "llc serves evicted data" 55L
    (Linedata.load (Hashtbl.find m.priv (2, 7)) ~off:0 ~size:8)

(* Past 62 cores the sharer set goes two-level: a coarse socket mask plus
   per-socket fine words in a flat array (DESIGN.md §14). The set must
   survive rehashes and copies with ascending iteration order intact. *)
let test_dirstate_sharer_hierarchy () =
  let dir = mk_dir ~sockets:8 ~cores_per_socket:12 () in
  Alcotest.(check bool) "96 cores use the two-level layout" true
    (Dirstate.hierarchical dir);
  let e = Dirstate.entry dir 11 in
  Dirstate.set_state dir e States.D_S;
  List.iter (Dirstate.sharer_add dir e) [ 3; 62; 63; 95 ];
  Alcotest.(check (list int)) "ascending across socket boundaries"
    [ 3; 62; 63; 95 ] (Dirstate.sharers dir e);
  Alcotest.(check int) "count" 4 (Dirstate.sharer_count dir e);
  Alcotest.(check bool) "mem high core" true (Dirstate.sharer_mem dir e 95);
  (* Force a rehash: fine words move with their slot. *)
  for b = 1000 to 1000 + 5000 do
    ignore (Dirstate.entry dir b)
  done;
  let e = Dirstate.entry dir 11 in
  Alcotest.(check (list int)) "sharers survive rehash" [ 3; 62; 63; 95 ]
    (Dirstate.sharers dir e);
  (* Copies must not share fine words with the original. *)
  let snap = Dirstate.copy dir in
  Dirstate.sharer_remove dir e 95;
  Dirstate.sharer_remove dir e 62;
  Alcotest.(check (list int)) "removal crosses socket boundaries" [ 3; 63 ]
    (Dirstate.sharers dir e);
  Alcotest.(check (list int)) "copy unaffected" [ 3; 62; 63; 95 ]
    (Dirstate.sharers snap (Dirstate.entry snap 11));
  Dirstate.sharers_clear dir e;
  Alcotest.(check bool) "empty after clear" true (Dirstate.sharers_empty dir e)

(* Differential sweep at the many-socket geometries the scaling study
   uses: deterministic add/remove/clear sequences against a naive
   reference set, checking membership, cardinality, emptiness and
   ascending iteration — with extra weight on socket-boundary cores. *)
let test_dirstate_sharer_sweep () =
  List.iter
    (fun (sockets, cps) ->
      let cores = sockets * cps in
      let dir = mk_dir ~sockets ~cores_per_socket:cps () in
      Alcotest.(check bool)
        (Printf.sprintf "%d cores hierarchical iff > 62" cores)
        (cores > 62) (Dirstate.hierarchical dir);
      let e = Dirstate.entry dir 7 in
      Dirstate.set_state dir e States.D_S;
      let model = Hashtbl.create 64 in
      let seed = ref 0x3779B97F4A7C15 in
      let rand bound =
        (* LCG mix; deterministic across runs. *)
        seed := (!seed * 0x2545F4914F6CDD1D) + 0x1234567;
        (!seed lsr 17) mod bound
      in
      for step = 1 to 2000 do
        (* Bias toward boundary cores: first/last lane of each socket. *)
        let core =
          match rand 4 with
          | 0 -> (rand sockets * cps) + cps - 1
          | 1 -> rand sockets * cps
          | _ -> rand cores
        in
        (match rand 10 with
        | 0 ->
            Dirstate.sharers_clear dir e;
            Hashtbl.reset model
        | 1 | 2 | 3 ->
            Dirstate.sharer_remove dir e core;
            Hashtbl.remove model core
        | _ ->
            Dirstate.sharer_add dir e core;
            Hashtbl.replace model core ());
        if Dirstate.sharer_mem dir e core <> Hashtbl.mem model core then
          Alcotest.failf "cores=%d step=%d: mem %d disagrees" cores step core;
        if Dirstate.sharer_count dir e <> Hashtbl.length model then
          Alcotest.failf "cores=%d step=%d: cardinality disagrees" cores step;
        if Dirstate.sharers_empty dir e <> (Hashtbl.length model = 0) then
          Alcotest.failf "cores=%d step=%d: emptiness disagrees" cores step;
        if step mod 100 = 0 then begin
          let reference =
            List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) model [])
          in
          if Dirstate.sharers dir e <> reference then
            Alcotest.failf "cores=%d step=%d: iteration order disagrees" cores
              step
        end
      done)
    [ (4, 16); (8, 16); (32, 16); (8, 12); (62, 8) ]

(* ---- WARDen ----------------------------------------------------------------- *)

let mk_warden ?cfg () =
  let m = mk_mini ?cfg () in
  (m, Warden_core.Warden.P.create m.fabric)

let wrequest m w ~core ~blk ~write ~holds_s =
  accept m ~core ~blk
    (Warden_core.Warden.P.handle_request w ~core ~blk ~write ~holds_s)

let dir_of w blk =
  let regions = Warden_core.Warden.P.regions w in
  ignore regions;
  blk

let test_warden_region_add_remove () =
  let _, w = mk_warden () in
  Alcotest.(check bool) "add ok" true
    (Warden_core.Warden.P.region_add w ~lo:0x1000 ~hi:0x2000);
  let r = Warden_core.Warden.P.regions w in
  Alcotest.(check int) "one region" 1 (Warden_core.Regions.count r);
  Alcotest.(check bool) "mem inside" true (Warden_core.Regions.mem r 0x1800);
  Alcotest.(check bool) "not outside" false (Warden_core.Regions.mem r 0x2000);
  ignore (Warden_core.Warden.P.region_remove w ~lo:0x1000 ~hi:0x2000);
  Alcotest.(check int) "removed" 0 (Warden_core.Regions.count r)

let test_warden_no_invalidation_inside_region () =
  let m, w = mk_warden () in
  ignore (Warden_core.Warden.P.region_add w ~lo:0x1000 ~hi:0x2000);
  let blk = Warden_mem.Addr.block_of 0x1000 in
  ignore (dir_of w blk);
  (* Two cores write the same WARD block: no invalidations, no downgrades,
     both keep exclusive-like copies. *)
  let g0 = wrequest m w ~core:0 ~blk ~write:true ~holds_s:false in
  let g1 = wrequest m w ~core:1 ~blk ~write:true ~holds_s:false in
  Alcotest.(check bool) "both granted M" true
    (g0.Mesi.pstate = P_M && g1.Mesi.pstate = P_M);
  Alcotest.(check int) "no invalidations" 0 m.fabric.Fabric.stats.Pstats.invalidations;
  Alcotest.(check int) "no downgrades" 0 m.fabric.Fabric.stats.Pstats.downgrades;
  Alcotest.(check bool) "core 0 keeps its copy" true (Hashtbl.mem m.priv (0, blk));
  Alcotest.(check int) "two ward grants" 2 m.fabric.Fabric.stats.Pstats.ward_grants

let test_warden_reconciliation_merges_sectors () =
  let m, w = mk_warden () in
  ignore (Warden_core.Warden.P.region_add w ~lo:0x4000 ~hi:0x5000);
  let blk = Warden_mem.Addr.block_of 0x4000 in
  ignore (wrequest m w ~core:0 ~blk ~write:true ~holds_s:false);
  ignore (wrequest m w ~core:1 ~blk ~write:true ~holds_s:false);
  (* False sharing: disjoint bytes of the same block. *)
  Linedata.store (Hashtbl.find m.priv (0, blk)) ~off:0 ~size:1 0xAAL;
  Linedata.store (Hashtbl.find m.priv (1, blk)) ~off:1 ~size:1 0xBBL;
  ignore (Warden_core.Warden.P.region_remove w ~lo:0x4000 ~hi:0x5000);
  (* Both copies flushed; merged line in LLC has both bytes. *)
  Alcotest.(check bool) "copies flushed" true
    ((not (Hashtbl.mem m.priv (0, blk))) && not (Hashtbl.mem m.priv (1, blk)));
  let llc_line = Hashtbl.find m.llc blk in
  Alcotest.(check int64) "byte from core 0" 0xAAL
    (Linedata.load llc_line ~off:0 ~size:1);
  Alcotest.(check int64) "byte from core 1" 0xBBL
    (Linedata.load llc_line ~off:1 ~size:1);
  Alcotest.(check bool) "recon events counted" true
    (m.fabric.Fabric.stats.Pstats.recon_blocks >= 1
    && m.fabric.Fabric.stats.Pstats.recon_flushes >= 2)

let test_warden_true_sharing_last_writer_wins () =
  let m, w = mk_warden () in
  ignore (Warden_core.Warden.P.region_add w ~lo:0x6000 ~hi:0x7000);
  let blk = Warden_mem.Addr.block_of 0x6000 in
  ignore (wrequest m w ~core:0 ~blk ~write:true ~holds_s:false);
  ignore (wrequest m w ~core:2 ~blk ~write:true ~holds_s:false);
  (* True sharing: same byte, different values; merge order is ascending
     core id, so core 2's value persists. *)
  Linedata.store (Hashtbl.find m.priv (0, blk)) ~off:4 ~size:1 0x11L;
  Linedata.store (Hashtbl.find m.priv (2, blk)) ~off:4 ~size:1 0x22L;
  ignore (Warden_core.Warden.P.region_remove w ~lo:0x6000 ~hi:0x7000);
  Alcotest.(check int64) "directory-order winner" 0x22L
    (Linedata.load (Hashtbl.find m.llc blk) ~off:4 ~size:1)

let test_warden_sole_holder_retains_shared () =
  let m, w = mk_warden () in
  ignore (Warden_core.Warden.P.region_add w ~lo:0x8000 ~hi:0x9000);
  let blk = Warden_mem.Addr.block_of 0x8000 in
  ignore (wrequest m w ~core:1 ~blk ~write:true ~holds_s:false);
  Linedata.store (Hashtbl.find m.priv (1, blk)) ~off:0 ~size:8 99L;
  ignore (Warden_core.Warden.P.region_remove w ~lo:0x8000 ~hi:0x9000);
  (* Sole holder: dirty bytes written back, copy retained as clean S. *)
  Alcotest.(check bool) "copy retained" true (Hashtbl.mem m.priv (1, blk));
  Alcotest.(check bool) "copy clean" false
    (Linedata.is_dirty (Hashtbl.find m.priv (1, blk)));
  Alcotest.(check int64) "llc has the data" 99L
    (Linedata.load (Hashtbl.find m.llc blk) ~off:0 ~size:8)

let test_warden_outside_region_is_mesi () =
  let m, w = mk_warden () in
  ignore (Warden_core.Warden.P.region_add w ~lo:0x1000 ~hi:0x2000);
  (* A block outside any region behaves exactly like MESI. *)
  let blk = Warden_mem.Addr.block_of 0xF000 in
  ignore (wrequest m w ~core:0 ~blk ~write:true ~holds_s:false);
  Linedata.store (Hashtbl.find m.priv (0, blk)) ~off:0 ~size:8 5L;
  ignore (wrequest m w ~core:1 ~blk ~write:false ~holds_s:false);
  Alcotest.(check int) "legacy downgrade still happens" 2
    m.fabric.Fabric.stats.Pstats.downgrades;
  Alcotest.(check int) "no ward grant" 0 m.fabric.Fabric.stats.Pstats.ward_grants

let test_warden_cam_capacity () =
  let cfg = { (Config.dual_socket ()) with Config.ward_region_capacity = 2 } in
  let _, w = mk_warden ~cfg () in
  Alcotest.(check bool) "1st" true (Warden_core.Warden.P.region_add w ~lo:0 ~hi:64);
  Alcotest.(check bool) "2nd" true
    (Warden_core.Warden.P.region_add w ~lo:128 ~hi:192);
  Alcotest.(check bool) "3rd rejected" false
    (Warden_core.Warden.P.region_add w ~lo:256 ~hi:320);
  ignore (Warden_core.Warden.P.region_remove w ~lo:0 ~hi:64);
  Alcotest.(check bool) "accepted after eviction" true
    (Warden_core.Warden.P.region_add w ~lo:256 ~hi:320)

let test_warden_remove_unknown_is_noop () =
  let _, w = mk_warden () in
  Alcotest.(check int) "latency 0" 0
    (Warden_core.Warden.P.region_remove w ~lo:0xA000 ~hi:0xB000)

(* ---- Regions (range CAM) ----------------------------------------------------- *)

let test_regions_overlap () =
  let r = Warden_core.Regions.create ~capacity:8 in
  ignore (Warden_core.Regions.add r ~lo:0 ~hi:100);
  ignore (Warden_core.Regions.add r ~lo:50 ~hi:200);
  Alcotest.(check bool) "in both" true (Warden_core.Regions.mem r 60);
  Alcotest.(check bool) "in first only" true (Warden_core.Regions.mem r 10);
  Alcotest.(check bool) "in second only" true (Warden_core.Regions.mem r 150);
  ignore (Warden_core.Regions.remove r ~lo:0 ~hi:100);
  Alcotest.(check bool) "10 no longer covered" false (Warden_core.Regions.mem r 10);
  Alcotest.(check bool) "60 still covered" true (Warden_core.Regions.mem r 60)

let regions_vs_naive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"range CAM lookup = naive interval scan"
       QCheck2.Gen.(
         pair
           (list (pair (int_range 0 1000) (int_range 1 100)))
           (list (int_range 0 1200)))
       (fun (intervals, queries) ->
         let r = Warden_core.Regions.create ~capacity:10_000 in
         List.iter
           (fun (lo, len) -> ignore (Warden_core.Regions.add r ~lo ~hi:(lo + len)))
           intervals;
         List.for_all
           (fun q ->
             let naive =
               List.exists (fun (lo, len) -> q >= lo && q < lo + len) intervals
             in
             Warden_core.Regions.mem r q = naive)
           queries))

let suite =
  [
    Alcotest.test_case "mesi read grants E" `Quick test_mesi_read_grants_e;
    Alcotest.test_case "mesi write grants M" `Quick test_mesi_write_grants_m;
    Alcotest.test_case "mesi RAW downgrades owner" `Quick
      test_mesi_read_after_write_downgrades;
    Alcotest.test_case "mesi upgrade invalidates sharers" `Quick
      test_mesi_write_invalidates_sharers;
    Alcotest.test_case "mesi M-to-M transfer" `Quick test_mesi_write_write_transfer;
    Alcotest.test_case "mesi cross-socket latency" `Quick
      test_mesi_cross_socket_latency_higher;
    Alcotest.test_case "mesi eviction" `Quick test_mesi_eviction_updates_directory;
    Alcotest.test_case "dirstate two-level sharers past 62 cores" `Quick
      test_dirstate_sharer_hierarchy;
    Alcotest.test_case "dirstate sharer sweep at 64/128/512 cores" `Quick
      test_dirstate_sharer_sweep;
    Alcotest.test_case "warden region add/remove" `Quick test_warden_region_add_remove;
    Alcotest.test_case "warden disables coherence in regions" `Quick
      test_warden_no_invalidation_inside_region;
    Alcotest.test_case "warden false-sharing reconciliation" `Quick
      test_warden_reconciliation_merges_sectors;
    Alcotest.test_case "warden true-sharing last writer" `Quick
      test_warden_true_sharing_last_writer_wins;
    Alcotest.test_case "warden sole holder retained" `Quick
      test_warden_sole_holder_retains_shared;
    Alcotest.test_case "warden legacy path is MESI" `Quick
      test_warden_outside_region_is_mesi;
    Alcotest.test_case "warden CAM capacity" `Quick test_warden_cam_capacity;
    Alcotest.test_case "warden remove unknown" `Quick test_warden_remove_unknown_is_noop;
    Alcotest.test_case "regions overlap" `Quick test_regions_overlap;
    regions_vs_naive;
  ]

let () = Alcotest.run "warden-proto" [ ("proto", suite) ]
