(* Tests for the experiment harness: the Table-1 microbenchmark, the
   derived metrics of Figures 7-12, and the experiment renderers. *)

open Warden_machine
open Warden_harness

let mk_result ?(cycles = 1000) ?(instructions = 2000) ?(inv = 100) ?(down = 50)
    ?(net = 1000.) ?(proc = 5000.) ?(verified = true) proto =
  {
    Exp.bench = "synthetic";
    proto;
    machine = "test";
    verified;
    cycles;
    instructions;
    ipc = float_of_int instructions /. float_of_int cycles;
    loads = 0;
    invalidations = inv;
    downgrades = down;
    self_invs = 0;
    self_downs = 0;
    messages = 0;
    ward_grants = 0;
    recon_blocks = 0;
    energy_network_pj = net;
    energy_processor_pj = proc;
    energy_total_pj = net +. proc;
  }

let test_metrics_math () =
  let pair =
    {
      Exp.mesi = mk_result ~cycles:2000 ~inv:120 ~down:80 ~net:2000. ~proc:8000. "mesi";
      warden = mk_result ~cycles:1000 ~inv:20 ~down:30 ~net:1000. ~proc:6000. "warden";
    }
  in
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Exp.speedup pair);
  Alcotest.(check (float 1e-9)) "interconnect savings" 50.
    (Exp.interconnect_savings_pct pair);
  Alcotest.(check (float 1e-9)) "processor savings" 25.
    (Exp.processor_savings_pct pair);
  (* (120+80) - (20+30) = 150 events over 2 kilo-instructions. *)
  Alcotest.(check (float 1e-9)) "events per kilo" 75.
    (Exp.inv_down_reduced_per_kilo pair);
  (* Downgrade share of the reduction: (80-30)/150. *)
  Alcotest.(check (float 1e-6)) "downgrade share" (50. /. 150. *. 100.)
    (Exp.downgrade_share_pct pair);
  Alcotest.(check (float 1e-6)) "shares sum to 100" 100.
    (Exp.downgrade_share_pct pair +. Exp.inv_share_pct pair);
  (* IPC: mesi 1.0, warden 2.0. *)
  Alcotest.(check (float 1e-6)) "ipc improvement" 100. (Exp.ipc_improvement_pct pair)

let test_scale_of () =
  let spec = Option.get (Warden_pbbs.Suite.find "msort") in
  Alcotest.(check bool) "quick smaller" true
    (Exp.scale_of ~quick:true spec < Exp.scale_of ~quick:false spec)

let test_microbench_ordering () =
  let rows = Microbench.table1 ~iters:300 () in
  Alcotest.(check int) "three scenarios" 3 (List.length rows);
  match List.map (fun r -> r.Microbench.cycles_per_iter) rows with
  | [ same_core; same_socket; cross ] ->
      Alcotest.(check bool) "same core fastest" true (same_core < same_socket);
      Alcotest.(check bool) "cross socket slowest" true (same_socket < cross);
      (* Within 2x of the paper's simulated latencies (Table 1). *)
      List.iter
        (fun r ->
          let ratio = r.Microbench.cycles_per_iter /. r.Microbench.paper_simulated in
          Alcotest.(check bool)
            (Printf.sprintf "%s within 2.5x of Sniper (%f)" r.Microbench.scenario
               ratio)
            true
            (ratio > 0.4 && ratio < 2.5))
        rows
  | _ -> Alcotest.fail "unexpected shape"

let test_run_pair_on_real_bench () =
  let spec = Option.get (Warden_pbbs.Suite.find "fib") in
  let pair = Exp.run_pair ~quick:true ~config:(Config.single_socket ()) spec in
  Alcotest.(check bool) "both verified" true
    (pair.Exp.mesi.Exp.verified && pair.Exp.warden.Exp.verified);
  Alcotest.(check bool) "cycles positive" true (pair.Exp.mesi.Exp.cycles > 0);
  Alcotest.(check string) "protos recorded" "mesi" pair.Exp.mesi.Exp.proto;
  Alcotest.(check bool) "warden within 15% either way" true
    (let s = Exp.speedup pair in
     s > 0.85 && s < 1.6)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_renderers_do_not_raise () =
  let sr =
    Experiments.run_suite ~quick:true ~names:[ "fib"; "make_array" ]
      ~config:(Config.single_socket ()) ()
  in
  let out = Experiments.render_perf_energy ~title:"test" sr in
  Alcotest.(check bool) "perf table mentions fib" true (contains out "fib");
  List.iter
    (fun render ->
      Alcotest.(check bool) "nonempty" true (String.length (render sr) > 0))
    [ Experiments.render_fig9; Experiments.render_fig10; Experiments.render_fig11 ];
  Alcotest.(check bool) "table2 nonempty" true
    (String.length (Experiments.render_table2 ()) > 0)

let test_pool_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) + 1 in
  let expect = List.map f xs in
  Alcotest.(check (list int)) "jobs=1 is List.map" expect (Pool.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=4 same order" expect (Pool.map ~jobs:4 f xs);
  Alcotest.(check (list int))
    "more jobs than items" expect
    (Pool.map ~jobs:64 f xs);
  Alcotest.check_raises "exceptions propagate" Exit (fun () ->
      ignore (Pool.map ~jobs:4 (fun x -> if x = 20 then raise Exit else x) xs))

let test_pool_runs_simulations () =
  (* Two full engine runs on separate domains agree with a serial run —
     the domain-local simulator state really is isolated. *)
  let spec = Option.get (Warden_pbbs.Suite.find "fib") in
  let serial = Exp.run_pair ~quick:true ~jobs:1 ~config:(Config.single_socket ()) spec in
  let pooled = Exp.run_pair ~quick:true ~jobs:2 ~config:(Config.single_socket ()) spec in
  Alcotest.(check bool) "pooled verified" true
    (pooled.Exp.mesi.Exp.verified && pooled.Exp.warden.Exp.verified);
  Alcotest.(check int) "mesi cycles agree" serial.Exp.mesi.Exp.cycles
    pooled.Exp.mesi.Exp.cycles;
  Alcotest.(check int) "warden cycles agree" serial.Exp.warden.Exp.cycles
    pooled.Exp.warden.Exp.cycles

let suite =
  [
    Alcotest.test_case "derived metrics math" `Quick test_metrics_math;
    Alcotest.test_case "pool map" `Quick test_pool_map;
    Alcotest.test_case "pool runs simulations" `Quick test_pool_runs_simulations;
    Alcotest.test_case "quick scales" `Quick test_scale_of;
    Alcotest.test_case "table1 ordering and band" `Quick test_microbench_ordering;
    Alcotest.test_case "run_pair on fib" `Quick test_run_pair_on_real_bench;
    Alcotest.test_case "renderers" `Quick test_renderers_do_not_raise;
  ]

let () = Alcotest.run "warden-harness" [ ("harness", suite) ]
