(* Tests for warden.machine: configuration derivations, topology maps and
   the energy accounting. *)

open Warden_machine

let test_table2_values () =
  let c = Config.dual_socket () in
  Alcotest.(check int) "cores" 24 (Config.num_cores c);
  Alcotest.(check int) "threads" 24 (Config.num_threads c);
  Alcotest.(check int) "l1 sets: 32KB/8way/64B" 64 (Config.l1_sets c);
  Alcotest.(check int) "l2 sets: 256KB/8way/64B" 512 (Config.l2_sets c);
  (* 2.5MB x 12 cores / 20 ways / 64B = 24576 lines/way, rounded down to a
     power of two. *)
  Alcotest.(check int) "l3 sets per socket" 16384 (Config.l3_sets_per_socket c);
  Alcotest.(check int) "latencies" 71 c.Config.l3_lat

let test_topology_maps () =
  let c = Config.dual_socket () in
  Alcotest.(check int) "thread->core" 5 (Config.core_of_thread c 5);
  Alcotest.(check int) "core->socket 0" 0 (Config.socket_of_core c 11);
  Alcotest.(check int) "core->socket 1" 1 (Config.socket_of_core c 12);
  Alcotest.(check int) "home interleave even" 0 (Config.home_socket c 4);
  Alcotest.(check int) "home interleave odd" 1 (Config.home_socket c 5);
  let smt = Config.single_socket ~threads_per_core:2 () in
  Alcotest.(check int) "smt siblings share a core" (Config.core_of_thread smt 0)
    (Config.core_of_thread smt 1);
  Alcotest.(check int) "24 threads on 12 cores" 24 (Config.num_threads smt)

let test_presets () =
  Alcotest.(check int) "single socket" 12 (Config.num_cores (Config.single_socket ()));
  Alcotest.(check int) "4 sockets" 48
    (Config.num_cores (Config.many_socket ~sockets:4 ()));
  let d = Config.disaggregated () in
  Alcotest.(check bool) "disagg home is remote" true d.Config.llc_remote;
  Alcotest.(check int) "1us at 3.3GHz" 3300 d.Config.inter_socket_lat

let test_with_cores () =
  let c = Config.with_cores (Config.dual_socket ()) 8 in
  Alcotest.(check int) "restricted" 8 (Config.num_cores c);
  Alcotest.check_raises "not divisible"
    (Invalid_argument "Config.with_cores: not divisible") (fun () ->
      ignore (Config.with_cores (Config.dual_socket ()) 7));
  Alcotest.check_raises "too many"
    (Invalid_argument "Config.with_cores: too many") (fun () ->
      ignore (Config.with_cores (Config.single_socket ()) 26))

let test_pp_mentions_key_fields () =
  let s = Format.asprintf "%a" Config.pp (Config.dual_socket ()) in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("pp mentions " ^ needle) true found)
    [ "dual-socket"; "32 KB"; "6-16-71"; "3.3 GHz" ]

(* --- Many-socket NUMA machines (the 64→512-core scaling study) ----------- *)

let test_many_socket_geometry () =
  let c = Config.many_socket ~sockets:32 ~cores_per_socket:16 () in
  Alcotest.(check int) "512 cores" 512 (Config.num_cores c);
  Alcotest.(check int) "core 511 on socket 31" 31 (Config.socket_of_core c 511);
  Alcotest.(check int) "uniform fabric without a matrix"
    c.Config.inter_socket_lat
    (Config.hop_lat c ~from_socket:0 ~to_socket:31);
  (* Default geometry is untouched: many_socket without the option is the
     Table-2 12-core socket the existing goldens pin. *)
  Alcotest.(check int) "default cores per socket" 12
    (Config.many_socket ~sockets:4 ()).Config.cores_per_socket

let test_numa_mesh_matrix () =
  List.iter
    (fun sockets ->
      let c = Config.numa_mesh ~sockets () in
      let n = Config.num_cores c in
      Alcotest.(check int)
        (Printf.sprintf "%d sockets x 16 cores" sockets)
        (sockets * 16) n;
      (* Hop-matrix laws: diagonal is the on-chip leg, off-diagonal legs
         are symmetric, at least one socket link, and bounded by the mesh
         diameter. *)
      for f = 0 to sockets - 1 do
        for g = 0 to sockets - 1 do
          let fg = Config.hop_lat c ~from_socket:f ~to_socket:g in
          let gf = Config.hop_lat c ~from_socket:g ~to_socket:f in
          if f = g then
            Alcotest.(check int) "diagonal" c.Config.intra_hop_lat fg
          else begin
            if fg <> gf then
              Alcotest.failf "asymmetric hop %d->%d: %d vs %d" f g fg gf;
            if fg < c.Config.inter_socket_lat then
              Alcotest.failf "hop %d->%d below one socket link" f g;
            if
              fg
              > c.Config.inter_socket_lat
                + (2 * sockets * c.Config.intra_hop_lat)
            then Alcotest.failf "hop %d->%d beyond mesh diameter" f g
          end
        done
      done)
    [ 2; 4; 8; 16; 32; 62 ];
  Alcotest.check_raises "63 sockets rejected"
    (Invalid_argument "Config.numa_mesh: sockets must be in 1..62") (fun () ->
      ignore (Config.numa_mesh ~sockets:63 ()))

let test_numa_mesh_adjacency_cheaper () =
  (* 32 sockets form an 4x8 mesh (rows x cols): neighbours pay one link,
     opposite corners pay the full Manhattan path. *)
  let c = Config.numa_mesh ~sockets:32 () in
  let near = Config.hop_lat c ~from_socket:0 ~to_socket:1 in
  let far = Config.hop_lat c ~from_socket:0 ~to_socket:31 in
  Alcotest.(check int) "adjacent = one socket link" c.Config.inter_socket_lat
    near;
  Alcotest.(check bool) "corner-to-corner costs more" true (far > near)

let test_pp_round_trip_many_socket () =
  (* pp must render every machine, including matrix configs, and mention
     the geometry and the NUMA matrix; rendering is also deterministic. *)
  let c = Config.numa_mesh ~sockets:32 () in
  let s = Format.asprintf "%a" Config.pp c in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("pp mentions " ^ needle) true (contains needle))
    [ "32-socket-mesh-16c"; "32 socket(s) x 16 cores"; "NUMA hop matrix" ];
  Alcotest.(check string) "pp deterministic" s
    (Format.asprintf "%a" Config.pp c)

(* --- Energy ------------------------------------------------------------- *)

let test_energy_buckets () =
  let e = Energy.create () in
  Energy.core_cycles e ~cores:2 ~cycles:100;
  Energy.l1_access e;
  Energy.l2_access e;
  Energy.l3_access e;
  Energy.dram_access e;
  let c = Energy.costs e in
  Alcotest.(check (float 1e-6)) "core bucket"
    (2. *. 100. *. c.Energy.core_cycle_pj)
    (Energy.core_pj e);
  Alcotest.(check (float 1e-6)) "cache bucket"
    (c.Energy.l1_pj +. c.Energy.l2_pj +. c.Energy.l3_pj)
    (Energy.cache_pj e);
  Alcotest.(check (float 1e-6)) "dram bucket" c.Energy.dram_pj (Energy.dram_pj e);
  Alcotest.(check (float 1e-6)) "processor = core+cache+dram"
    (Energy.core_pj e +. Energy.cache_pj e +. Energy.dram_pj e)
    (Energy.processor_pj e)

let test_energy_messages () =
  let e = Energy.create () in
  let c = Energy.costs e in
  Energy.message e ~inter_socket:false ~data:false;
  Alcotest.(check (float 1e-6)) "intra ctl" c.Energy.msg_intra_pj
    (Energy.network_pj e);
  Energy.message e ~inter_socket:true ~data:true;
  Alcotest.(check (float 1e-6)) "inter data = 5 flits"
    (c.Energy.msg_intra_pj +. (5. *. c.Energy.msg_inter_pj))
    (Energy.network_pj e);
  Alcotest.(check (float 1e-6)) "total = processor + network"
    (Energy.processor_pj e +. Energy.network_pj e)
    (Energy.total_pj e)

let test_energy_inter_dwarfs_intra () =
  let c = Energy.default_costs in
  Alcotest.(check bool) "inter-socket messages cost much more" true
    (c.Energy.msg_inter_pj > 5. *. c.Energy.msg_intra_pj)

let suite =
  [
    Alcotest.test_case "table 2 values" `Quick test_table2_values;
    Alcotest.test_case "topology maps" `Quick test_topology_maps;
    Alcotest.test_case "presets" `Quick test_presets;
    Alcotest.test_case "with_cores" `Quick test_with_cores;
    Alcotest.test_case "config printing" `Quick test_pp_mentions_key_fields;
    Alcotest.test_case "many-socket geometry" `Quick test_many_socket_geometry;
    Alcotest.test_case "numa mesh hop matrix" `Quick test_numa_mesh_matrix;
    Alcotest.test_case "numa mesh adjacency" `Quick
      test_numa_mesh_adjacency_cheaper;
    Alcotest.test_case "pp round-trip (mesh)" `Quick
      test_pp_round_trip_many_socket;
    Alcotest.test_case "energy buckets" `Quick test_energy_buckets;
    Alcotest.test_case "energy messages" `Quick test_energy_messages;
    Alcotest.test_case "energy cost ordering" `Quick test_energy_inter_dwarfs_intra;
  ]

let () = Alcotest.run "warden-machine" [ ("machine", suite) ]
