(* Engine-level tests: instruction/cycle accounting, store-buffer
   behaviour, SMT sharing, zero-fill, and scheduling determinism. *)

open Warden_machine
open Warden_sim
module Ops = Engine.Ops

let run cfg bodies =
  let eng = Engine.create cfg ~proto:`Mesi in
  let cycles = Engine.run eng bodies in
  (eng, Engine.memsys eng, cycles)

let test_tick_accounting () =
  let _, ms, cycles =
    run (Config.single_socket ()) [| (fun () -> Ops.tick 100) |]
  in
  Alcotest.(check int) "cycles = ticks" 100 cycles;
  Alcotest.(check int) "instructions = ticks" 100
    (Memsys.sstats ms).Sstats.instructions

let test_stall_is_not_instructions () =
  let _, ms, cycles =
    run (Config.single_socket ()) [| (fun () -> Ops.stall 50; Ops.tick 10) |]
  in
  Alcotest.(check int) "cycles include stall" 60 cycles;
  Alcotest.(check int) "instructions exclude stall" 10
    (Memsys.sstats ms).Sstats.instructions

let test_makespan_is_max () =
  let _, _, cycles =
    run (Config.single_socket ())
      [| (fun () -> Ops.tick 10); (fun () -> Ops.tick 500); (fun () -> ()) |]
  in
  Alcotest.(check int) "slowest thread defines makespan" 500 cycles

let test_store_buffer_hides_latency () =
  (* A store's miss latency overlaps with subsequent compute; a load's
     cannot. Both kernels end with the same 200 ticks. *)
  let kernel_time use_load =
    let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
    let ms = Engine.memsys eng in
    let a = Memsys.alloc ms ~bytes:8 ~align:8 in
    Engine.run eng
      [|
        (fun () ->
          if use_load then ignore (Ops.load a ~size:8)
          else Ops.store a ~size:8 1L;
          Ops.tick 200);
      |]
  in
  let store_time = kernel_time false and load_time = kernel_time true in
  Alcotest.(check bool)
    (Printf.sprintf "store overlaps compute (%d) vs load (%d)" store_time
       load_time)
    true
    (store_time < load_time)

let test_store_buffer_fills_up () =
  (* Issue far more stores than the buffer has entries, each to a distinct
     block (every one misses): the thread must eventually stall. *)
  let cfg = Config.single_socket () in
  let eng = Engine.create cfg ~proto:`Mesi in
  let ms = Engine.memsys eng in
  let n = 4 * cfg.Config.store_buffer_entries in
  let a = Memsys.alloc ms ~bytes:(64 * n) ~align:64 in
  ignore
    (Engine.run eng
       [|
         (fun () ->
           for i = 0 to n - 1 do
             Ops.store (a + (64 * i)) ~size:8 (Int64.of_int i)
           done);
       |]);
  Alcotest.(check bool) "sb stalls recorded" true
    ((Memsys.sstats ms).Sstats.sb_stalls > 0)

let test_rmw_drains_store_buffer () =
  (* An atomic acts as a fence: its completion time covers buffered
     stores. Verified by it being slower after a burst of store misses. *)
  let cfg = Config.single_socket () in
  let run_with_burst burst =
    let eng = Engine.create cfg ~proto:`Mesi in
    let ms = Engine.memsys eng in
    let a = Memsys.alloc ms ~bytes:4096 ~align:64 in
    let flag = Memsys.alloc ms ~bytes:8 ~align:64 in
    Engine.run eng
      [|
        (fun () ->
          if burst then
            for i = 0 to 20 do
              Ops.store (a + (64 * i)) ~size:8 1L
            done;
          ignore (Ops.fetch_add flag ~size:8 1L));
      |]
  in
  let quiet = run_with_burst false and busy = run_with_burst true in
  Alcotest.(check bool)
    (Printf.sprintf "fence waits for buffered stores (%d vs %d)" busy quiet)
    true (busy > quiet + 100)

let test_smt_threads_share_l1 () =
  (* Thread 1 reads what thread 0 wrote; on the same core the read must be
     an L1/L2 hit, on different cores it must not be. *)
  let cross tpc =
    let cfg = Config.single_socket ~threads_per_core:tpc () in
    let eng = Engine.create cfg ~proto:`Mesi in
    let ms = Engine.memsys eng in
    let a = Memsys.alloc ms ~bytes:8 ~align:64 in
    ignore
      (Engine.run eng
         [|
           (fun () -> Ops.store a ~size:8 9L);
           (fun () ->
             Ops.stall 2_000;
             ignore (Ops.load a ~size:8));
         |]);
    let s = Memsys.sstats ms in
    (s.Sstats.l1_hits, (Memsys.pstats ms).Warden_proto.Pstats.downgrades)
  in
  let _, down_smt = cross 2 in
  let _, down_sep = cross 1 in
  Alcotest.(check int) "same core: no downgrade" 0 down_smt;
  Alcotest.(check bool) "different cores: downgrade" true (down_sep > 0)

let test_zero_fill_counted () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  let ms = Engine.memsys eng in
  let a = Memsys.alloc ms ~bytes:64 ~align:64 in
  ignore (Engine.run eng [| (fun () -> ignore (Ops.load a ~size:8)) |]);
  let ps = Memsys.pstats ms in
  Alcotest.(check int) "fresh block zero-filled" 1 ps.Warden_proto.Pstats.zero_fills;
  Alcotest.(check int) "no dram read" 0 ps.Warden_proto.Pstats.dram_reads

let test_initialized_input_comes_from_dram () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  let ms = Engine.memsys eng in
  let a = Memsys.alloc ms ~bytes:64 ~align:64 in
  Memsys.poke ms a ~size:8 7L;
  ignore (Engine.run eng [| (fun () -> ignore (Ops.load a ~size:8)) |]);
  let ps = Memsys.pstats ms in
  Alcotest.(check int) "host-initialized data is in memory" 1
    ps.Warden_proto.Pstats.dram_reads

(* Two run phases continue one simulated timeline: clocks, instruction
   counts and cycle stats carry over, and the split run equals the fused
   run exactly (the snapshot machinery depends on this equivalence). *)
let test_engine_multi_phase () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  ignore (Engine.run eng [| (fun () -> Ops.tick 100) |]);
  let span = Engine.run eng [| (fun () -> Ops.tick 50) |] in
  Alcotest.(check int) "phase 2 continues the clock" 150 span;
  let st = Memsys.sstats (Engine.memsys eng) in
  Alcotest.(check int) "cycles accumulate" 150 st.Sstats.cycles;
  Alcotest.(check int) "instructions accumulate" 150 st.Sstats.instructions;
  (* a single-thread split run equals the fused run, memory traffic
     included (multi-thread splits may re-seed queue tie-breaking, so the
     exact split-vs-fused equivalence is claimed for one thread only) *)
  let go phases =
    let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
    let ms = Engine.memsys eng in
    let a = Memsys.alloc ms ~bytes:8 ~align:8 in
    List.iter
      (fun iters ->
        ignore
          (Engine.run eng
             [|
               (fun () ->
                 for _ = 1 to iters do
                   ignore (Ops.fetch_add a ~size:8 1L)
                 done);
             |]))
      phases;
    Memsys.flush_all ms;
    ( Memsys.peek ms a ~size:8,
      (Memsys.sstats ms).Sstats.cycles,
      (Memsys.sstats ms).Sstats.rmws )
  in
  Alcotest.(check bool) "split phases equal fused run" true
    (go [ 30; 20 ] = go [ 50 ])

let test_too_many_threads_rejected () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  Alcotest.check_raises "13 bodies on 12 threads"
    (Invalid_argument "Engine.run: too many threads") (fun () ->
      ignore (Engine.run eng (Array.make 13 (fun () -> ()))))

let test_deterministic_interleaving () =
  let go () =
    let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
    let ms = Engine.memsys eng in
    let a = Memsys.alloc ms ~bytes:8 ~align:8 in
    ignore
      (Engine.run eng
         (Array.init 8 (fun tid () ->
              for _ = 1 to 50 do
                ignore (Ops.fetch_add a ~size:8 (Int64.of_int (tid + 1)))
              done)));
    Memsys.flush_all ms;
    ( Memsys.peek ms a ~size:8,
      (Memsys.sstats ms).Sstats.cycles,
      (Memsys.pstats ms).Warden_proto.Pstats.invalidations )
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let suite =
  [
    Alcotest.test_case "tick accounting" `Quick test_tick_accounting;
    Alcotest.test_case "stall accounting" `Quick test_stall_is_not_instructions;
    Alcotest.test_case "makespan" `Quick test_makespan_is_max;
    Alcotest.test_case "store buffer hides latency" `Quick
      test_store_buffer_hides_latency;
    Alcotest.test_case "store buffer fills" `Quick test_store_buffer_fills_up;
    Alcotest.test_case "rmw is a fence" `Quick test_rmw_drains_store_buffer;
    Alcotest.test_case "smt shares the L1" `Quick test_smt_threads_share_l1;
    Alcotest.test_case "zero fill" `Quick test_zero_fill_counted;
    Alcotest.test_case "inputs come from dram" `Quick
      test_initialized_input_comes_from_dram;
    Alcotest.test_case "multi-phase runs" `Quick test_engine_multi_phase;
    Alcotest.test_case "thread limit" `Quick test_too_many_threads_rejected;
    Alcotest.test_case "deterministic interleaving" `Quick
      test_deterministic_interleaving;
  ]

let () = Alcotest.run "warden-engine" [ ("engine", suite) ]
