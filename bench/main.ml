(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (§7), runs the ablations called out in DESIGN.md,
   and times representative simulator kernels with Bechamel.

   Run with:  dune exec bench/main.exe            (full paper scales)
              dune exec bench/main.exe -- quick   (reduced scales)
              dune exec bench/main.exe -- json    (machine-readable timing
                                                   into BENCH_sim.json)
              dune exec bench/main.exe -- scale   (64->512-core hierarchical-
                                                   directory study into
                                                   BENCH_scale.json)
              dune exec bench/main.exe -- serve   (serving-tier MESI-vs-WARDen
                                                   gate into BENCH_serve.json)
              dune exec bench/main.exe -- replay  (trace-driven replay vs the
                                                   program model, into
                                                   BENCH_replay.json)
              dune exec bench/main.exe -- zoo     (fig7/8 kernels under every
                                                   protocol in the zoo, into
                                                   BENCH_zoo.json, with the
                                                   WARDen traffic gate)
   [--jobs N] (or WARDEN_JOBS) caps the domains used for independent
   simulations; the default is the machine's recommended domain count.
   [--filter SUBSTR] restricts the benchmark suites to matching kernels.
   [--snap-cache DIR] makes the scale mode snapshot each cell's post-run
   state into DIR and restore it on later sweeps (DESIGN.md §15). *)

open Warden_machine
open Warden_harness
open Warden_runtime

module Cliscan = Warden_util.Cliscan

(* All modes share one scanner, so a flag's value can never leak into the
   positionals (the old hand-rolled walker swallowed a following flag as a
   value — "compare --jobs --sim-domains 2" treated "2" as a snapshot
   path). Mode words are positionals; the rest are flags. *)
let cli =
  Cliscan.create
    ~value_flags:
      [
        [ "--jobs"; "-j" ];
        [ "--sim-domains" ];
        [ "--obs" ];
        [ "--sim-spec" ];
        [ "--filter" ];
        [ "--snap-cache" ];
      ]
    Sys.argv

let mode_words =
  [ "quick"; "json"; "compare"; "scaling"; "scale"; "serve"; "replay"; "zoo" ]
let has_mode w = List.mem w (Cliscan.positionals cli)
let quick = has_mode "quick"
let json_mode = has_mode "json"
let compare_mode = has_mode "compare"
let scaling_mode = has_mode "scaling"
let scale_mode = has_mode "scale"
let serve_mode = has_mode "serve"
let replay_mode = has_mode "replay"
let zoo_mode = has_mode "zoo"

(* [--snap-cache DIR]: the scale mode saves each cell's post-run engine
   state into DIR and restores it on later sweeps instead of re-simulating
   (DESIGN.md §15). *)
let snap_cache_dir = Cliscan.string_flag cli [ "--snap-cache" ]

(* Positionals that are not mode words: the compare mode's snapshot paths. *)
let snapshot_args =
  List.filter (fun a -> not (List.mem a mode_words)) (Cliscan.positionals cli)

(* [--sim-domains D] (or WARDEN_SIM_DOMAINS) shards every engine across D
   domains; results are bit-identical for every D (DESIGN.md §11). *)
let sim_domains =
  (match Cliscan.int_flag cli [ "--sim-domains" ] with
  | Some n -> Config.set_default_sim_domains n
  | None -> ());
  (Config.dual_socket ()).Config.sim_domains

(* [--sim-spec on|off] (or WARDEN_SIM_SPEC) toggles speculative shard
   execution; off leaves sharding but makes D > 1 lane-only. *)
let () =
  match Cliscan.string_flag cli [ "--sim-spec" ] with
  | Some s -> (
      match String.lowercase_ascii s with
      | "on" | "1" | "true" | "yes" -> Config.set_default_sim_spec true
      | "off" | "0" | "false" | "no" -> Config.set_default_sim_spec false
      | _ -> invalid_arg "--sim-spec: expected on or off")
  | None ->
      if Cliscan.has cli "--sim-spec" then
        invalid_arg "--sim-spec: expected on or off"

(* [--obs LEVEL] (or WARDEN_OBS) turns event recording on for every
   simulation in the run; the CI overhead gate benches off vs counters. *)
let obs_level =
  (match Cliscan.string_flag cli [ "--obs" ] with
  | Some s -> (
      match Config.obs_level_of_string s with
      | Some l -> Config.set_default_obs_level l
      | None -> invalid_arg "--obs: expected off, counters or full")
  | None ->
      if Cliscan.has cli "--obs" then
        invalid_arg "--obs: expected off, counters or full");
  Config.obs_level_to_string (Config.dual_socket ()).Config.obs_level

(* [--filter SUBSTR] restricts the benchmark suites (paper experiments
   and the quick-suite throughput measurement) to matching kernels, so
   one benchmark can be studied without editing the suite. *)
let filter_names =
  match Cliscan.string_flag cli [ "--filter" ] with
  | Some sub -> (
      match Warden_pbbs.Suite.matching sub with
      | [] -> invalid_arg (Printf.sprintf "--filter: %S matches no benchmark" sub)
      | names -> Some names)
  | None ->
      if Cliscan.has cli "--filter" then
        invalid_arg "--filter: expected a substring"
      else None

(* Each pool job spawns sim_domains - 1 helper domains of its own; cap the
   product at what the host can schedule. *)
let jobs =
  Pool.effective_jobs
    ~jobs:(match Cliscan.int_flag cli [ "--jobs"; "-j" ] with
          | Some n -> n
          | None -> Pool.default_jobs ())
    ~sim_domains

let section title =
  Printf.printf "\n%s\n%s\n\n%!" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_paper_experiments () =
  section "Part 1: paper experiments (Tables 1-2, Figures 7-12)";
  let ok = Experiments.run_all ~quick ?names:filter_names ~jobs () in
  Printf.printf "every benchmark verified: %b\n%!" ok;
  ok

(* ------------------------------------------------------------------ *)
(* Part 2: ablations of DESIGN.md                                      *)
(* ------------------------------------------------------------------ *)

let ablation_benches = [ "msort"; "palindrome"; "quickhull"; "fib" ]

let speedup_with ?params ?config name =
  let spec = Option.get (Warden_pbbs.Suite.find name) in
  let config = Option.value config ~default:(Config.dual_socket ()) in
  let pair = Exp.run_pair ~quick:true ?params ~jobs:1 ~config spec in
  Exp.speedup pair

(* variants: (label, params option, config option); every (bench, variant)
   cell is an independent pair of simulations, fanned across the pool. *)
let ablation_table title variants =
  let header = "Benchmark" :: List.map (fun (l, _, _) -> l) variants in
  let cells =
    Pool.map ~jobs
      (fun (bench, (_, params, config)) ->
        Printf.sprintf "%.2f" (speedup_with ?params ?config bench))
      (List.concat_map
         (fun bench -> List.map (fun v -> (bench, v)) variants)
         ablation_benches)
  in
  let nv = List.length variants in
  let rows =
    List.mapi
      (fun i bench ->
        bench :: List.filteri (fun j _ -> j / nv = i) cells)
      ablation_benches
  in
  print_string (title ^ "\n" ^ Warden_util.Table.render ~header ~rows ^ "\n");
  print_newline ()

let run_ablations () =
  section "Part 2: ablations (WARDen speedup over MESI, quick scales)";

  ablation_table "A1. Marking policy (the runtime side of the co-design)"
    [
      ("leaf-marking (paper)", None, None);
      ( "no marking",
        Some { Rtparams.default with Rtparams.mark_leaf_pages = false },
        None );
      ( "handoff outside heap",
        Some { Rtparams.default with Rtparams.handoff_in_heap = false },
        None );
    ];

  ablation_table "A2. Reconciliation of sole-holder blocks (5.2 vs 6.1 reading)"
    [
      ("flush+retain-S (default)", None, None);
      ( "in-place E/M (5.2 literal)",
        None,
        Some { (Config.dual_socket ()) with Config.recon_inplace_sole = true } );
    ];

  ablation_table "A3. WARD region CAM capacity (paper: 1024 regions)"
    [
      ("1024 (paper)", None, None);
      ( "64",
        None,
        Some { (Config.dual_socket ()) with Config.ward_region_capacity = 64 } );
      ( "8",
        None,
        Some { (Config.dual_socket ()) with Config.ward_region_capacity = 8 } );
      ( "0",
        None,
        Some { (Config.dual_socket ()) with Config.ward_region_capacity = 0 } );
    ];

  ablation_table "A4. Reconciliation cost per flushed block (cycles)"
    [
      ("6 (default)", None, None);
      ( "50",
        None,
        Some { (Config.dual_socket ()) with Config.reconcile_per_block = 50 } );
      ( "200",
        None,
        Some { (Config.dual_socket ()) with Config.reconcile_per_block = 200 } );
    ];

  (* A5: sector granularity. Byte sectoring (the paper's choice, §6.1)
     tracks writes exactly; coarser sectors over-approximate the written
     range, so reconciling two cores' copies that falsely share a word
     lets the later merge clobber the earlier core's byte with a stale
     neighbor. The kernel: two hardware threads write adjacent bytes of
     one WARD block, then the region is reconciled. *)
  Printf.printf "A5. Sector granularity (byte = paper, 8-byte = ablation)\n";
  let sub_word_false_sharing sector =
    Warden_cache.Linedata.set_sector_bytes sector;
    Fun.protect
      ~finally:(fun () -> Warden_cache.Linedata.set_sector_bytes 1)
      (fun () ->
        let eng =
          Warden_sim.Engine.create (Config.dual_socket ()) ~proto:`Warden
        in
        let ms = Warden_sim.Engine.memsys eng in
        let a = Warden_sim.Memsys.alloc ms ~bytes:64 ~align:64 in
        let open Warden_sim.Engine.Ops in
        let writer off v () =
          if off = 0 then ignore (region_add ~lo:a ~hi:(a + 64));
          stall 50;
          store (a + off) ~size:1 v;
          stall 200;
          if off = 0 then region_remove ~lo:a ~hi:(a + 64)
        in
        ignore
          (Warden_sim.Engine.run eng [| writer 0 0xAAL; writer 1 0xBBL |]);
        Warden_sim.Memsys.flush_all ms;
        Warden_sim.Memsys.peek ms a ~size:1 = 0xAAL
        && Warden_sim.Memsys.peek ms (a + 1) ~size:1 = 0xBBL)
  in
  print_string
    (Warden_util.Table.render
       ~header:[ "Kernel"; "byte sectors"; "8-byte sectors" ]
       ~rows:
         [
           [
             "adjacent-byte WAW in one WARD block";
             (if sub_word_false_sharing 1 then "both bytes survive"
              else "CORRUPTED");
             (if sub_word_false_sharing 8 then "both bytes survive"
              else "CORRUPTED");
           ];
         ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2b: scaling studies (the 7.3 forward-looking claims)           *)
(* ------------------------------------------------------------------ *)

let run_scaling_studies () =
  section "Part 2b: scaling studies (7.3)";
  let names = [ "dmm"; "msort"; "palindrome"; "quickhull" ] in
  print_string (Experiments.render_worker_scaling ~quick:true ~jobs ~names ());
  print_newline ();
  print_string (Experiments.render_socket_scaling ~quick:true ~jobs ~names ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel timing of the simulator itself                     *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let bench_pair name scale config =
    Staged.stage (fun () ->
        let spec = Option.get (Warden_pbbs.Suite.find name) in
        List.iter
          (fun proto ->
            let eng = Warden_sim.Engine.create config ~proto in
            ignore (spec.Warden_pbbs.Spec.run ~scale ~seed:1L eng))
          [ `Mesi; `Warden ])
  in
  let table1 = Staged.stage (fun () -> ignore (Microbench.table1 ~iters:200 ())) in
  Test.make_grouped ~name:"warden-sim"
    [
      (* One timed kernel per reproduced experiment. *)
      Test.make ~name:"table1:pingpong-validation" table1;
      Test.make ~name:"fig7:single-socket(fib)"
        (bench_pair "fib" 16 (Config.single_socket ()));
      Test.make ~name:"fig8:dual-socket(msort)"
        (bench_pair "msort" 3_000 (Config.dual_socket ()));
      Test.make ~name:"fig9-11:analysis(palindrome)"
        (bench_pair "palindrome" 3_000 (Config.dual_socket ()));
      Test.make ~name:"fig12:disaggregated(dmm)"
        (bench_pair "dmm" 32 (Config.disaggregated ()));
    ]

(* Returns (kernel, ms/run) estimates so the json mode can persist them. *)
let measure_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let names = ref [] in
  Hashtbl.iter (fun name _ -> names := name :: !names) results;
  List.filter_map
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some (est :: _) -> Some (name, est /. 1e6)
      | _ -> None)
    (List.sort compare !names)

let run_bechamel () =
  section "Part 3: Bechamel timing of the simulator kernels (host time)";
  List.iter
    (fun (name, ms) -> Printf.printf "%-45s %12.2f ms/run\n" name ms)
    (measure_bechamel ())

(* ------------------------------------------------------------------ *)
(* json mode: machine-readable simulator-performance snapshot          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Simulator throughput: wall-clock the quick dual-socket suite and count
   the simulated instructions it retires. *)
let measure_sim_throughput ?(jobs = jobs) () =
  let t0 = Unix.gettimeofday () in
  let sr =
    Experiments.run_suite ~quick:true ?names:filter_names ~jobs
      ~config:(Config.dual_socket ()) ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let instrs =
    List.fold_left
      (fun acc (_, p) ->
        acc + p.Exp.mesi.Exp.instructions + p.Exp.warden.Exp.instructions)
      0 sr
  in
  let cycles =
    List.fold_left
      (fun acc (_, p) -> acc + p.Exp.mesi.Exp.cycles + p.Exp.warden.Exp.cycles)
      0 sr
  in
  (wall, instrs, cycles)

(* One line per bench-json run, appended forever: the repo's performance
   trajectory. Kept separate from BENCH_sim.json (a snapshot that each run
   overwrites) so regressions are visible across history, not just against
   the committed baseline. *)
let append_history ?(jobs = jobs) ?(sim_domains = sim_domains) ~wall ~instrs
    ~cycles ~mips () =
  let line =
    Printf.sprintf
      "{\"unix_time\": %.0f, \"jobs\": %d, \"sim_domains\": %d, \
       \"obs_level\": \"%s\", \"quick_suite_wall_s\": %.3f, \
       \"quick_suite_sim_instructions\": %d, \"quick_suite_sim_cycles\": %d, \
       \"sim_mips\": %.3f}\n"
      (Unix.time ()) jobs sim_domains obs_level wall instrs cycles mips
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_history.jsonl"
  in
  output_string oc line;
  close_out oc

(* The flat snapshot format shared by json mode (BENCH_sim.json) and the
   scaling gate (BENCH_scaling_dN.json). *)
let render_snapshot ~jobs ~sim_domains ~kernels ~wall ~instrs ~cycles =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"sim_domains\": %d,\n" sim_domains);
  Buffer.add_string buf
    (Printf.sprintf "  \"obs_level\": \"%s\",\n" obs_level);
  Buffer.add_string buf "  \"kernels_ms_per_run\": {\n";
  List.iteri
    (fun i (name, ms) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.3f%s\n" (json_escape name) ms
           (if i = List.length kernels - 1 then "" else ",")))
    kernels;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick_suite_wall_s\": %.3f,\n" wall);
  Buffer.add_string buf
    (Printf.sprintf "  \"quick_suite_sim_instructions\": %d,\n" instrs);
  Buffer.add_string buf
    (Printf.sprintf "  \"quick_suite_sim_cycles\": %d,\n" cycles);
  Buffer.add_string buf
    (Printf.sprintf "  \"sim_mips\": %.3f\n"
       (if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0.));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run_json () =
  let kernels = measure_bechamel () in
  let wall, instrs, cycles = measure_sim_throughput () in
  let s = render_snapshot ~jobs ~sim_domains ~kernels ~wall ~instrs ~cycles in
  let oc = open_out "BENCH_sim.json" in
  output_string oc s;
  close_out oc;
  append_history ~wall ~instrs ~cycles
    ~mips:(if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0.)
    ();
  print_string s;
  Printf.printf "wrote BENCH_sim.json (and appended BENCH_history.jsonl)\n%!"

(* ------------------------------------------------------------------ *)
(* compare mode: regression gate against the committed baseline        *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON number extraction — enough for the flat snapshots this
   harness writes itself, keeping the gate dependency-free. *)

(* Every character a JSON number can contain, scientific notation
   included (Printf's %g writes "1.5e+06" and some writers upcase the
   exponent marker). *)
let json_num_char = function
  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
  | _ -> false

(* Read a snapshot whole; a missing file ends the gate immediately — with
   nothing to scan there is nothing to accumulate. *)
let slurp file =
  let ic =
    try open_in file
    with Sys_error m -> Printf.eprintf "bench compare: %s\n" m; exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The number after ["key":] in [s], when present and numeric. Returning
   an option instead of exiting lets the gates accumulate every missing
   key and report them all before going non-zero. *)
let scan_number s key =
  let needle = "\"" ^ key ^ "\"" in
  let nl = String.length needle and sl = String.length s in
  let rec find i =
    if i + nl > sl then None
    else if String.sub s i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < sl && (s.[!i] = ':' || s.[!i] = ' ') do incr i done;
      let j = ref !i in
      while !j < sl && json_num_char s.[!j] do incr j done;
      float_of_string_opt (String.sub s !i (!j - !i))

let json_number file key =
  match scan_number (slurp file) key with
  | Some f -> f
  | None ->
      Printf.eprintf "bench compare: no numeric \"%s\" in %s\n" key file;
      exit 2

(* Like {!json_number} but [default] when the key is absent (older
   snapshots predate some fields). *)
let json_number_or file key ~default =
  match scan_number (slurp file) key with Some f -> f | None -> default

(* The ("kernel", ms) pairs of a snapshot's kernels_ms_per_run object.
   Same minimal-scanner spirit as {!json_number}: the harness wrote the
   file itself, names never contain quotes. *)
let json_kernels file =
  let s = slurp file in
  let needle = "\"kernels_ms_per_run\"" in
  let nl = String.length needle and sl = String.length s in
  let rec find i =
    if i + nl > sl then
      (Printf.eprintf "bench compare: no %s in %s\n" needle file; exit 2)
    else if String.sub s i nl = needle then i + nl
    else find (i + 1)
  in
  let i = ref (find 0) in
  while !i < sl && s.[!i] <> '{' do incr i done;
  incr i;
  let pairs = ref [] in
  let stop = ref false in
  while not !stop do
    while !i < sl && (match s.[!i] with ' ' | '\n' | ',' -> true | _ -> false) do
      incr i
    done;
    if !i >= sl || s.[!i] = '}' then stop := true
    else begin
      if s.[!i] <> '"' then begin
        Printf.eprintf
          "bench compare: malformed kernels_ms_per_run in %s (expected a \
           quoted key at byte %d)\n"
          file !i;
        exit 2
      end;
      incr i;
      let k0 = !i in
      while !i < sl && s.[!i] <> '"' do incr i done;
      let key = String.sub s k0 (!i - k0) in
      incr i;
      while !i < sl && (s.[!i] = ':' || s.[!i] = ' ') do incr i done;
      let v0 = !i in
      while !i < sl && json_num_char s.[!i] do incr i done;
      match float_of_string_opt (String.sub s v0 (!i - v0)) with
      | Some v -> pairs := (key, v) :: !pairs
      | None ->
          Printf.eprintf
            "bench compare: value of kernel %S in %s is not a number (got %S)\n"
            key file
            (String.sub s v0 (min 20 (sl - v0)));
          exit 2
    end
  done;
  List.rev !pairs

(* Best-effort string field of a flat snapshot ("obs_level": "counters");
   [default] when absent or oddly shaped. *)
let json_string_or file key ~default =
  match
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error _ -> default
  | s -> (
      let needle = "\"" ^ key ^ "\"" in
      let nl = String.length needle and sl = String.length s in
      let rec find i =
        if i + nl > sl then None
        else if String.sub s i nl = needle then Some (i + nl)
        else find (i + 1)
      in
      match find 0 with
      | None -> default
      | Some i -> (
          let i = ref i in
          while !i < sl && s.[!i] <> '"' && s.[!i] <> '\n' do incr i done;
          if !i >= sl || s.[!i] <> '"' then default
          else begin
            incr i;
            let v0 = !i in
            while !i < sl && s.[!i] <> '"' do incr i done;
            if !i >= sl then default else String.sub s v0 (!i - v0)
          end))

(* [compare --overhead [OFF [ON]]]: the tracing-overhead gate. Both files
   are bench-json snapshots of the same machine and sim_domains, one taken
   with WARDEN_OBS=off and one with counters; fail (exit 1) when counters
   cost more than 3%% of simulation throughput. Defaults:
   BENCH_obs_off.json vs BENCH_sim.json. *)
let run_overhead () =
  let off_file, on_file =
    match snapshot_args with
    | [] -> ("BENCH_obs_off.json", "BENCH_sim.json")
    | [ o ] -> (o, "BENCH_sim.json")
    | o :: c :: _ -> (o, c)
  in
  let off = json_number off_file "sim_mips" in
  let on_ = json_number on_file "sim_mips" in
  let off_lvl = json_string_or off_file "obs_level" ~default:"off" in
  let on_lvl = json_string_or on_file "obs_level" ~default:"?" in
  let overhead = if off > 0. then 100. *. (off -. on_) /. off else 0. in
  Printf.printf
    "bench overhead: %.3f sim MIPS at obs=%s (%s) vs %.3f at obs=%s (%s): \
     %+.2f%% (budget 3%%)\n"
    off off_lvl off_file on_ on_lvl on_file overhead;
  if off_lvl = on_lvl then
    Printf.printf
      "warning: both snapshots report obs_level=%s — this is not measuring \
       tracing overhead\n"
      off_lvl;
  if overhead > 3.0 then begin
    Printf.printf "REGRESSION: obs=%s costs %.2f%% sim throughput (budget 3%%)\n"
      on_lvl overhead;
    exit 1
  end
  else Printf.printf "ok: observability overhead within the 3%% budget\n"

(* [compare [BASELINE [CURRENT]]]: fail (exit 1) when the current
   sim_mips drops more than 10%% below the committed baseline, or when any
   kernel's host ms/run regresses more than 15%% over its baseline. *)
let run_compare () =
  let base_file, cur_file =
    match snapshot_args with
    | [] -> ("BENCH_baseline.json", "BENCH_sim.json")
    | [ b ] -> (b, "BENCH_sim.json")
    | b :: c :: _ -> (b, c)
  in
  let base = json_number base_file "sim_mips" in
  let cur = json_number cur_file "sim_mips" in
  let floor = 0.9 *. base in
  Printf.printf
    "bench compare: baseline %.3f sim MIPS (%s), current %.3f (%s), floor %.3f\n"
    base base_file cur cur_file floor;
  (* Host-time budgets are only meaningful like for like: a snapshot taken
     with a different sim_domains (e.g. the CI 2-domain determinism job on
     a sequential baseline) reports but does not gate. *)
  let base_d = json_number_or base_file "sim_domains" ~default:1. in
  let cur_d = json_number_or cur_file "sim_domains" ~default:1. in
  let advisory = base_d <> cur_d in
  if advisory then
    Printf.printf
      "note: sim_domains differ (baseline %.0f, current %.0f); host-time \
       regressions reported but not gated\n"
      base_d cur_d;
  let failed = ref false in
  if cur < floor then begin
    Printf.printf "REGRESSION: current sim_mips is %.1f%% of baseline\n"
      (100. *. cur /. base);
    failed := true
  end;
  (* Per-kernel gate: aggregate throughput can hide one kernel regressing
     behind another improving. *)
  let base_kernels = json_kernels base_file in
  let cur_kernels = json_kernels cur_file in
  List.iter
    (fun (name, bms) ->
      match List.assoc_opt name cur_kernels with
      | None ->
          Printf.printf "warning: kernel %s in %s but not in %s\n" name
            base_file cur_file
      | Some cms ->
          let budget = 1.15 *. bms in
          if cms > budget then begin
            Printf.printf
              "REGRESSION: kernel %s: %.3f ms/run vs baseline %.3f (budget \
               %.3f, +%.1f%%)\n"
              name cms bms budget
              (100. *. (cms -. bms) /. bms);
            failed := true
          end
          else
            Printf.printf "ok: kernel %-45s %8.3f ms/run (baseline %8.3f)\n"
              name cms bms)
    base_kernels;
  if !failed && not advisory then exit 1
  else if !failed then
    Printf.printf "advisory only (sim_domains mismatch): not failing\n"
  else Printf.printf "ok: within the 10%% MIPS / 15%% per-kernel budgets\n"

(* ------------------------------------------------------------------ *)
(* scaling mode: does --sim-domains deliver real parallel speedup?     *)
(* ------------------------------------------------------------------ *)

(* The gate the speculative shard engine must clear: the quick suite's
   simulation throughput at D=4 must be at least [scaling_floor] times the
   D=1 throughput on the same host, and no kernel may regress at D=1
   against the committed baseline. *)
let scaling_floor = 1.7

(* One leg of the scaling run: quick-suite throughput plus the Bechamel
   kernels at [d] domains, snapshotted to BENCH_scaling_d<d>.json and
   appended to the history. [jobs] is forced to 1: the gate measures one
   engine's shard scaling, so fanning independent simulations across the
   pool would oversubscribe the very cores the helpers need. *)
let scaling_leg d =
  Config.set_default_sim_domains d;
  let kernels = measure_bechamel () in
  let wall, instrs, cycles = measure_sim_throughput ~jobs:1 () in
  let mips = if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0. in
  let file = Printf.sprintf "BENCH_scaling_d%d.json" d in
  let s =
    render_snapshot ~jobs:1 ~sim_domains:d ~kernels ~wall ~instrs ~cycles
  in
  let oc = open_out file in
  output_string oc s;
  close_out oc;
  append_history ~jobs:1 ~sim_domains:d ~wall ~instrs ~cycles ~mips ();
  Printf.printf "scaling: D=%d: %.3f sim MIPS (%.3f s wall) -> %s\n%!" d mips
    wall file;
  (mips, kernels)

(* Shared by the scaling run and [compare --scaling]. *)
let scaling_verdict ~d1 ~d4 =
  let ratio = if d1 > 0. then d4 /. d1 else 0. in
  Printf.printf
    "scaling: sim MIPS %.3f at D=1, %.3f at D=4: %.2fx (floor %.2fx)\n" d1 d4
    ratio scaling_floor;
  if ratio < scaling_floor then begin
    Printf.printf "REGRESSION: D=4 delivers only %.2fx over D=1 (floor %.2fx)\n"
      ratio scaling_floor;
    false
  end
  else begin
    Printf.printf "ok: sharded speedup clears the %.2fx floor\n" scaling_floor;
    true
  end

let run_sim_scaling () =
  let cores = Domain.recommended_domain_count () in
  if cores < 4 then begin
    (* Not a failure: the gate needs 3 helper domains plus the lane to
       actually run in parallel. CI enforces it on >= 4-core runners. *)
    Printf.printf
      "scaling: SKIPPED — host reports %d core(s); the D=4 vs D=1 gate \
       needs at least 4 to measure real parallelism\n"
      cores;
    exit 0
  end;
  section "Scaling gate: quick suite at sim_domains 1 vs 4";
  let d1, d1_kernels = scaling_leg 1 in
  let d4, _ = scaling_leg 4 in
  let failed = ref (not (scaling_verdict ~d1 ~d4)) in
  (* D=1 must not pay for the machinery: per-kernel host time against the
     committed baseline, same budget as [compare]. *)
  if Sys.file_exists "BENCH_baseline.json" then
    List.iter
      (fun (name, bms) ->
        match List.assoc_opt name d1_kernels with
        | None -> ()
        | Some cms ->
            let budget = 1.15 *. bms in
            if cms > budget then begin
              Printf.printf
                "REGRESSION: kernel %s at D=1: %.3f ms/run vs baseline %.3f \
                 (budget %.3f)\n"
                name cms bms budget;
              failed := true
            end
            else
              Printf.printf "ok: kernel %-45s %8.3f ms/run at D=1 (baseline \
                             %8.3f)\n"
                name cms bms)
      (json_kernels "BENCH_baseline.json")
  else
    Printf.printf
      "note: no BENCH_baseline.json; skipping the D=1 per-kernel check\n";
  if !failed then exit 1
  else Printf.printf "ok: scaling gate passed\n"

(* [compare --scaling [D1 [D4]]]: re-run the ratio gate over existing
   snapshots (defaults: BENCH_scaling_d1.json vs BENCH_scaling_d4.json). *)
let run_compare_scaling () =
  let d1_file, d4_file =
    match snapshot_args with
    | [] -> ("BENCH_scaling_d1.json", "BENCH_scaling_d4.json")
    | [ a ] -> (a, "BENCH_scaling_d4.json")
    | a :: b :: _ -> (a, b)
  in
  let d1 = json_number d1_file "sim_mips" in
  let d4 = json_number d4_file "sim_mips" in
  let dd1 = json_number_or d1_file "sim_domains" ~default:1. in
  let dd4 = json_number_or d4_file "sim_domains" ~default:4. in
  if dd1 <> 1. || dd4 <> 4. then
    Printf.printf
      "warning: snapshots report sim_domains %.0f and %.0f (expected 1 and 4)\n"
      dd1 dd4;
  if not (scaling_verdict ~d1 ~d4) then exit 1

(* ------------------------------------------------------------------ *)
(* scale mode: 64 -> 512 cores on the hierarchical directory          *)
(* ------------------------------------------------------------------ *)

(* The socket-scaling study past the paper's testbeds (DESIGN.md §14):
   quick kernels on [Config.numa_mesh] machines from 64 to 512 cores
   under both protocols, sequentially (no pool fan-out — the wall clocks
   are the measurement). Each cell is timed end to end, engine creation
   included, because the lazily-chunked LLC slices are half the point.
   BENCH_scale.json uses the flat snapshot format, so the ordinary
   [compare] gate budgets its cells like any other kernel. The run fails
   unless WARDen's invalidation+downgrade traffic grows strictly slower
   than MESI's from the smallest machine to the largest: the traffic
   *added* by going from 64 to 512 cores must be smaller under WARDen.
   (A relative-factor gate would be vacuous the other way: WARDen's
   absolute traffic is 2-3x lower throughout, so any common growth term
   looms larger against its smaller base.) *)

let scale_sockets = [ 4; 8; 16; 32 ]
let scale_kernels = [ "msort"; "quickhull"; "fib" ]

type scale_cell = {
  sc_wall : float;
  sc_instrs : int;
  sc_inv : int;
  sc_down : int;
  sc_chunks_alloc : int;
  sc_chunks_total : int;
  sc_verified : bool;
}

let scale_proto_str = function
  | `Mesi -> "mesi"
  | `Warden -> "warden"
  | `Msi_bus -> "msi-bus"
  | `Sisd -> "sisd"

(* The snapshot sidecar: the two per-cell facts the engine state cannot
   carry — the verification verdict and the cold run's wall clock. The
   wall is printed with %.17g so it round-trips exactly and a warm
   sweep's BENCH_scale.json stays byte-identical to the cold one. *)
let write_scale_meta path ~verified ~wall =
  let oc = open_out path in
  Printf.fprintf oc "verified %d\nwall %.17g\n" (if verified then 1 else 0)
    wall;
  close_out oc

let read_scale_meta path =
  try
    let ic = open_in path in
    let l1 = input_line ic in
    let l2 = input_line ic in
    close_in ic;
    Scanf.sscanf l1 "verified %d" (fun v ->
        Scanf.sscanf l2 "wall %g" (fun w -> Some (v = 1, w)))
  with _ -> None

(* One (kernel, machine, protocol) cell. With [--snap-cache DIR], the
   first (cold) sweep snapshots the post-run engine state into DIR; later
   sweeps restore it instead of re-simulating. Every statistic the cell
   reports lives in the restored state (plus the sidecar above), so a
   warm sweep reproduces the cold sweep's numbers byte for byte while
   skipping the simulation itself. A missing, stale or mismatched
   snapshot — the fingerprint checks protocol, geometry and every
   result-affecting parameter — falls back to a live run and re-saves.
   Returns the accumulated statistics and how many of the cells were
   served warm. *)
let run_scale_spec ~config ~sockets ~proto spec =
  let live () =
    let t0 = Unix.gettimeofday () in
    let eng = Warden_sim.Engine.create config ~proto in
    let verified =
      spec.Warden_pbbs.Spec.run
        ~scale:(Exp.scale_of ~quick:true spec)
        ~seed:0x5EEDF00DL eng
    in
    (eng, verified, Unix.gettimeofday () -. t0)
  in
  match snap_cache_dir with
  | None ->
      let eng, verified, wall = live () in
      (eng, verified, wall, false)
  | Some dir ->
      let path =
        Filename.concat dir
          (Printf.sprintf "scale_%s_%ds_%s.wsnap" spec.Warden_pbbs.Spec.name
             sockets (scale_proto_str proto))
      in
      let meta = path ^ ".meta" in
      let restored =
        if not (Sys.file_exists path && Sys.file_exists meta) then None
        else
          match read_scale_meta meta with
          | None -> None
          | Some (verified, wall) -> (
              let eng = Warden_sim.Engine.create config ~proto in
              match Warden_snap.Snap.load_file eng path with
              | () -> Some (eng, verified, wall)
              | exception Warden_util.Bin.Corrupt msg ->
                  Printf.printf "scale: stale snapshot %s (%s); re-running\n%!"
                    path msg;
                  None)
      in
      (match restored with
      | Some (eng, verified, wall) -> (eng, verified, wall, true)
      | None ->
          let eng, verified, wall = live () in
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Warden_snap.Snap.save_file eng path;
          write_scale_meta meta ~verified ~wall;
          (eng, verified, wall, false))

let run_scale_cell ~sockets ~proto specs =
  let config = Config.numa_mesh ~sockets () in
  List.fold_left
    (fun (acc, warm_n) spec ->
      let eng, verified, wall, warm =
        run_scale_spec ~config ~sockets ~proto spec
      in
      let ms = Warden_sim.Engine.memsys eng in
      let ss = Warden_sim.Memsys.sstats ms in
      let ps = Warden_sim.Memsys.pstats ms in
      let ca, ct =
        Warden_sim.Llc.chunks_stats (Warden_sim.Memsys.llc ms)
      in
      ( {
          sc_wall = acc.sc_wall +. wall;
          sc_instrs = acc.sc_instrs + ss.Warden_sim.Sstats.instructions;
          sc_inv = acc.sc_inv + ps.Warden_proto.Pstats.invalidations;
          sc_down = acc.sc_down + ps.Warden_proto.Pstats.downgrades;
          sc_chunks_alloc = acc.sc_chunks_alloc + ca;
          sc_chunks_total = acc.sc_chunks_total + ct;
          sc_verified = acc.sc_verified && verified;
        },
        warm_n + if warm then 1 else 0 ))
    ( {
        sc_wall = 0.;
        sc_instrs = 0;
        sc_inv = 0;
        sc_down = 0;
        sc_chunks_alloc = 0;
        sc_chunks_total = 0;
        sc_verified = true;
      },
      0 )
    specs

let run_scale () =
  section "Scale study: 64 -> 512 cores on the hierarchical directory";
  let names =
    match filter_names with
    | None -> scale_kernels
    | Some ns -> (
        match List.filter (fun n -> List.mem n ns) scale_kernels with
        | [] -> scale_kernels
        | picked -> picked)
  in
  let specs =
    List.map
      (fun n ->
        match Warden_pbbs.Suite.find n with
        | Some s -> s
        | None -> invalid_arg ("scale: unknown kernel " ^ n))
      names
  in
  Printf.printf "kernels: %s (quick scales); machines: %s\n%!"
    (String.concat ", " names)
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "%d sockets x 16c" s)
          scale_sockets));
  let sweep_t0 = Unix.gettimeofday () in
  let warm_cells = ref 0 in
  let total_cells = ref 0 in
  let cells =
    List.map
      (fun sockets ->
        let cores = sockets * 16 in
        let m, warm_m = run_scale_cell ~sockets ~proto:`Mesi specs in
        let w, warm_w = run_scale_cell ~sockets ~proto:`Warden specs in
        warm_cells := !warm_cells + warm_m + warm_w;
        total_cells := !total_cells + (2 * List.length specs);
        let mips c =
          if c.sc_wall > 0. then float_of_int c.sc_instrs /. c.sc_wall /. 1e6
          else 0.
        in
        Printf.printf
          "%4d cores: mesi %6.3f s (%5.2f sim MIPS, inv+down %7d)  warden \
           %6.3f s (%5.2f sim MIPS, inv+down %7d)  llc chunks %d/%d\n%!"
          cores m.sc_wall (mips m) (m.sc_inv + m.sc_down) w.sc_wall (mips w)
          (w.sc_inv + w.sc_down) w.sc_chunks_alloc w.sc_chunks_total;
        (cores, m, w))
      scale_sockets
  in
  let sweep_elapsed = Unix.gettimeofday () -. sweep_t0 in
  let verified =
    List.for_all (fun (_, m, w) -> m.sc_verified && w.sc_verified) cells
  in
  (* The traffic gate, endpoint to endpoint: the inv+down traffic each
     protocol *adds* between the smallest and the largest machine.
     WARDen must pay strictly less for the same growth in sharing width
     — the downgrades MESI keeps issuing on every join line are the ones
     WARD reconciliation spares, so the absolute gap must widen as the
     machine grows. Intermediate sizes are printed for the figure but
     not gated: per-step increments are small differences of small
     counts and too noisy to promise monotonicity on. *)
  let traffic c = c.sc_inv + c.sc_down in
  let base_cores, base_m, base_w = List.hd cells in
  let last_cores, last_m, last_w =
    List.fold_left (fun _ c -> c) (List.hd cells) cells
  in
  List.iter
    (fun (cores, m, w) ->
      if cores <> base_cores then
        Printf.printf
          "traffic added %d -> %d cores: mesi +%d, warden +%d\n" base_cores
          cores
          (traffic m - traffic base_m)
          (traffic w - traffic base_w))
    cells;
  let grow_m = traffic last_m - traffic base_m in
  let grow_w = traffic last_w - traffic base_w in
  let traffic_ok = grow_w < grow_m in
  Printf.printf
    "traffic growth %d -> %d cores: mesi +%d, warden +%d -> %s\n" base_cores
    last_cores grow_m grow_w
    (if traffic_ok then "warden grows strictly slower"
     else "NOT SLOWER");
  (* Flat snapshot: one pseudo-kernel per (size, protocol) cell plus the
     aggregate sim MIPS, so `bench compare BENCH_scale_baseline.json
     BENCH_scale.json` applies the ordinary budgets. *)
  let kernels =
    List.concat_map
      (fun (cores, m, w) ->
        [
          (Printf.sprintf "scale:%dc:mesi" cores, m.sc_wall *. 1e3);
          (Printf.sprintf "scale:%dc:warden" cores, w.sc_wall *. 1e3);
        ])
      cells
  in
  let wall =
    List.fold_left (fun a (_, m, w) -> a +. m.sc_wall +. w.sc_wall) 0. cells
  in
  let instrs =
    List.fold_left (fun a (_, m, w) -> a + m.sc_instrs + w.sc_instrs) 0 cells
  in
  let mips = if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0. in
  let s =
    render_snapshot ~jobs:1 ~sim_domains ~kernels ~wall ~instrs ~cycles:0
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc s;
  close_out oc;
  append_history ~jobs:1 ~wall ~instrs ~cycles:0 ~mips ();
  Printf.printf "suite: %.3f s wall, %.2f sim MIPS -> BENCH_scale.json\n" wall
    mips;
  (* The snapshot-cache gate: a fully warm sweep must cut the sweep's own
     wall clock by at least 30% against the cold walls it reproduced —
     otherwise restoring is not buying the iteration speed it exists for.
     [wall] is the sum of sidecar cold walls, so the comparison is against
     exactly the simulations the restores skipped. *)
  let warm_ok =
    if snap_cache_dir = None || !warm_cells = 0 then true
    else if !warm_cells < !total_cells then begin
      Printf.printf
        "snap-cache: %d/%d cells warm (mixed sweep; the >=30%% gate needs \
         all cells warm)\n"
        !warm_cells !total_cells;
      true
    end
    else begin
      let saved = 100. *. (1. -. (sweep_elapsed /. wall)) in
      Printf.printf
        "snap-cache: warm sweep %.3f s vs cold %.3f s: %.0f%% saved (floor \
         30%%)\n"
        sweep_elapsed wall saved;
      if sweep_elapsed > 0.7 *. wall then begin
        Printf.printf
          "REGRESSION: warm sweep saved only %.0f%% of the cold wall clock \
           (floor 30%%)\n"
          saved;
        false
      end
      else true
    end
  in
  if not (verified && traffic_ok && warm_ok) then begin
    Printf.printf "SCALE GATE FAILED: verified %b, warden traffic growth \
                   strictly slower %b, warm-sweep saving %b\n"
      verified traffic_ok warm_ok;
    exit 1
  end
  else
    Printf.printf
      "ok: scale gate passed (WARDen traffic grows strictly slower than \
       MESI from %d to %d cores)\n"
      base_cores last_cores

(* ------------------------------------------------------------------ *)
(* replay mode: trace-driven replay vs the program model               *)
(* ------------------------------------------------------------------ *)

module Stream = Warden_trace.Stream

(* The replay gate (DESIGN.md §15): replaying a recorded commit-order
   stream straight through the memory system must beat re-running the
   program model by at least [replay_floor]x on this host, while
   reproducing the recording run's memory-system statistics byte for
   byte. Three passes: live (timed), record (untimed — the sink is on,
   so its cost never pollutes the live number), replay (timed).

   The floor is bounded by Amdahl, not by the frontend: decoding the
   stream costs ~17 ns/event (35x faster than the ~600 ns/event of a
   live program-model run), but the memory-system transition work —
   which replay executes bit for bit identically to live, or the stats
   would not match — is ~135 ns/event and is paid by both sides. That
   caps the end-to-end ratio near (600 + 135)/(17 + 135) ~ 3.5x on this
   workload; measured 3.1-3.8x across scales (EXPERIMENTS.md "Replay
   speedup"). 2.5 is the largest floor that holds under shared-runner
   noise. The order-of-magnitude iteration win the snapshot work targets
   comes from scale-mode snapshot caching (--snap-cache), which skips
   re-simulation entirely rather than re-running it faster. *)
let replay_floor = 2.5
let replay_kernel = "msort"

let run_replay () =
  section "Replay gate: trace-driven replay vs the program model";
  let spec = Option.get (Warden_pbbs.Suite.find replay_kernel) in
  let scale = Exp.scale_of ~quick spec in
  let config = Config.dual_socket () in
  let eng_live = Warden_sim.Engine.create config ~proto:`Warden in
  let t0 = Unix.gettimeofday () in
  let ok_live =
    spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng_live
  in
  let wall_live = Unix.gettimeofday () -. t0 in
  let ms_live = Warden_sim.Engine.memsys eng_live in
  let stats_live = Stream.stats_text ms_live in
  let eng_rec = Warden_sim.Engine.create config ~proto:`Warden in
  let ok_rec, stream =
    Stream.record (Warden_sim.Engine.memsys eng_rec) (fun () ->
        spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng_rec)
  in
  let eng_rep = Warden_sim.Engine.create config ~proto:`Warden in
  let ms_rep = Warden_sim.Engine.memsys eng_rep in
  let t0 = Unix.gettimeofday () in
  ignore (Stream.replay stream ms_rep);
  let wall_replay = Unix.gettimeofday () -. t0 in
  let stats_equal = String.equal stats_live (Stream.stats_text ms_rep) in
  let speedup = if wall_replay > 0. then wall_live /. wall_replay else 0. in
  Printf.printf
    "replay: %s (scale %d), %d events: live %.4f s, replay %.4f s -> %.1fx \
     (floor %.1fx); stats byte-identical: %b\n"
    replay_kernel scale (Stream.events stream) wall_live wall_replay speedup
    replay_floor stats_equal;
  (* The same stream through MESI: the trace-driven A/B comparison,
     reported but not gated. *)
  let eng_ab = Warden_sim.Engine.create config ~proto:`Mesi in
  let ms_ab = Warden_sim.Engine.memsys eng_ab in
  ignore (Stream.replay stream ms_ab);
  let coh ms =
    let p = Warden_sim.Memsys.pstats ms in
    p.Warden_proto.Pstats.invalidations + p.Warden_proto.Pstats.downgrades
  in
  Printf.printf
    "replay A/B on the same stream: inv+down %d (warden) vs %d (mesi)\n"
    (coh ms_rep) (coh ms_ab);
  let instrs =
    (Warden_sim.Memsys.sstats ms_live).Warden_sim.Sstats.instructions
  in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n";
  addf "  \"jobs\": 1,\n";
  addf "  \"sim_domains\": %d,\n" sim_domains;
  addf "  \"obs_level\": \"%s\",\n" obs_level;
  addf "  \"kernels_ms_per_run\": {\n";
  addf "    \"replay:live:%s\": %.3f,\n" replay_kernel (wall_live *. 1e3);
  addf "    \"replay:replay:%s\": %.3f\n" replay_kernel (wall_replay *. 1e3);
  addf "  },\n";
  addf "  \"replay_kernel\": \"%s\",\n" replay_kernel;
  addf "  \"replay_scale\": %d,\n" scale;
  addf "  \"replay_events\": %d,\n" (Stream.events stream);
  addf "  \"replay_speedup\": %.2f,\n" speedup;
  addf "  \"replay_floor\": %.2f,\n" replay_floor;
  addf "  \"replay_stats_equal\": %d,\n" (if stats_equal then 1 else 0);
  addf "  \"replay_ab_warden_invdown\": %d,\n" (coh ms_rep);
  addf "  \"replay_ab_mesi_invdown\": %d,\n" (coh ms_ab);
  addf "  \"quick_suite_wall_s\": %.3f,\n" wall_live;
  addf "  \"quick_suite_sim_instructions\": %d,\n" instrs;
  addf "  \"quick_suite_sim_cycles\": %d,\n"
    (Warden_sim.Memsys.sstats ms_live).Warden_sim.Sstats.cycles;
  addf "  \"sim_mips\": %.3f\n"
    (if wall_live > 0. then float_of_int instrs /. wall_live /. 1e6 else 0.);
  addf "}\n";
  let oc = open_out "BENCH_replay.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote BENCH_replay.json\n%!";
  if not (ok_live && ok_rec && stats_equal && speedup >= replay_floor) then begin
    Printf.printf
      "REPLAY GATE FAILED: verified %b/%b, stats byte-identical %b, \
       speedup %.1fx (floor %.1fx)\n"
      ok_live ok_rec stats_equal speedup replay_floor;
    exit 1
  end
  else
    Printf.printf "ok: replay gate passed (%.1fx over the program model)\n"
      speedup

(* ------------------------------------------------------------------ *)
(* serve mode: the serving-tier MESI-vs-WARDen gate                    *)
(* ------------------------------------------------------------------ *)

module Serve = Warden_serve.Serve
module Hist = Warden_obs.Hist

let serve_params =
  if quick then
    { Serve.default with Serve.requests = 50_000; keys = 16_384 }
  else { Serve.default with Serve.requests = 200_000 }

(* A flat snapshot in the same shape as BENCH_sim.json — sim_mips and
   kernels_ms_per_run up front so `bench compare BENCH_serve_baseline.json
   BENCH_serve.json` gates it unchanged — followed by the serving-mix
   comparison fields (all simulated quantities except the wall times). *)
let render_serve_snapshot (p : Serve.params) (rm : Serve.result)
    (rw : Serve.result) ~wall_m ~wall_w =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let instrs = rm.Serve.instructions + rw.Serve.instructions in
  let wall = wall_m +. wall_w in
  addf "{\n";
  addf "  \"jobs\": %d,\n" jobs;
  addf "  \"sim_domains\": %d,\n" sim_domains;
  addf "  \"obs_level\": \"%s\",\n" obs_level;
  addf "  \"kernels_ms_per_run\": {\n";
  addf "    \"serve:mesi\": %.3f,\n" (wall_m *. 1e3);
  addf "    \"serve:warden\": %.3f\n" (wall_w *. 1e3);
  addf "  },\n";
  addf "  \"serve_requests\": %d,\n" p.Serve.requests;
  addf "  \"serve_keys\": %d,\n" p.Serve.keys;
  addf "  \"serve_theta\": %g,\n" p.Serve.theta;
  addf "  \"serve_read_frac\": %g,\n" p.Serve.read_frac;
  addf "  \"serve_scan_frac\": %g,\n" p.Serve.scan_frac;
  addf "  \"serve_verified\": %d,\n"
    (if rm.Serve.verified && rw.Serve.verified then 1 else 0);
  addf "  \"serve_equal_results\": %d,\n"
    (if Serve.equal_results rm rw then 1 else 0);
  addf "  \"serve_checksum\": \"%Lx\",\n" rw.Serve.checksum;
  addf "  \"serve_mesi_inv\": %d,\n" rm.Serve.invalidations;
  addf "  \"serve_mesi_down\": %d,\n" rm.Serve.downgrades;
  addf "  \"serve_warden_inv\": %d,\n" rw.Serve.invalidations;
  addf "  \"serve_warden_down\": %d,\n" rw.Serve.downgrades;
  let coh r = r.Serve.invalidations + r.Serve.downgrades in
  addf "  \"serve_traffic_reduction_pct\": %.2f,\n"
    (100.
    *. float_of_int (coh rm - coh rw)
    /. float_of_int (max 1 (coh rm)));
  addf "  \"serve_mesi_cycles\": %d,\n" rm.Serve.cycles;
  addf "  \"serve_warden_cycles\": %d,\n" rw.Serve.cycles;
  addf "  \"serve_mesi_rps\": %.1f,\n" rm.Serve.rps;
  addf "  \"serve_warden_rps\": %.1f,\n" rw.Serve.rps;
  addf "  \"serve_mesi_energy_pj\": %.1f,\n" rm.Serve.energy_pj;
  addf "  \"serve_warden_energy_pj\": %.1f,\n" rw.Serve.energy_pj;
  List.iter
    (fun (proto, (r : Serve.result)) ->
      List.iter
        (fun (nm, q) ->
          addf "  \"serve_%s_lat_p%s\": %.3f,\n" proto nm
            (Hist.percentile r.Serve.lat ~cls:Serve.cls_all q))
        [ ("50", 50.); ("95", 95.); ("99", 99.); ("999", 99.9) ])
    [ ("mesi", rm); ("warden", rw) ];
  addf "  \"quick_suite_wall_s\": %.3f,\n" wall;
  addf "  \"quick_suite_sim_instructions\": %d,\n" instrs;
  addf "  \"quick_suite_sim_cycles\": %d,\n"
    (rm.Serve.cycles + rw.Serve.cycles);
  addf "  \"sim_mips\": %.3f\n"
    (if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0.);
  addf "}\n";
  Buffer.contents buf

let run_serve () =
  section
    (Printf.sprintf "Serve mode: %d-request serving mix, MESI vs WARDen"
       serve_params.Serve.requests);
  let timed proto =
    let t0 = Unix.gettimeofday () in
    let r =
      Serve.run_proto ~params:serve_params ~machine:(Config.dual_socket ())
        ~proto ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let rm, wall_m, rw, wall_w =
    match Pool.map ~jobs timed [ `Mesi; `Warden ] with
    | [ (rm, wm); (rw, ww) ] -> (rm, wm, rw, ww)
    | _ -> assert false
  in
  print_string (Serve.summary rm);
  print_string (Serve.summary rw);
  let coh (r : Serve.result) = r.Serve.invalidations + r.Serve.downgrades in
  let equal = Serve.equal_results rm rw in
  let win = coh rw < coh rm in
  Printf.printf
    "equal results: %b; inv+down %d (mesi) vs %d (warden): %s\n" equal
    (coh rm) (coh rw)
    (if win then
       Printf.sprintf "-%.1f%%"
         (100. *. float_of_int (coh rm - coh rw) /. float_of_int (max 1 (coh rm)))
     else "NO REDUCTION");
  let s = render_serve_snapshot serve_params rm rw ~wall_m ~wall_w in
  let oc = open_out "BENCH_serve.json" in
  output_string oc s;
  close_out oc;
  print_string s;
  Printf.printf "wrote BENCH_serve.json\n%!";
  if not (rm.Serve.verified && rw.Serve.verified && equal && win) then begin
    Printf.printf
      "SERVE GATE FAILED: verified %b/%b, equal results %b, warden \
       traffic win %b\n"
      rm.Serve.verified rw.Serve.verified equal win;
    exit 1
  end
  else Printf.printf "ok: serve gate passed\n"

(* ------------------------------------------------------------------ *)
(* zoo mode: the four-protocol comparison and its traffic gate         *)
(* ------------------------------------------------------------------ *)

(* The fig7/8 kernel set under every protocol in the zoo (DESIGN.md §16):
   runtime, coherence-maintenance traffic and energy, side by side on the
   dual-socket machine. The gate extends the paper's central claim across
   the zoo: on [zoo_gate_kernel] WARDen's inv+down traffic must sit
   strictly below directory MESI's eager invalidations *and* below SI/SD's
   fence-driven self-invalidation sweeps — cheaper than both the eager and
   the lazy extreme, not merely different. *)
let zoo_kernels = [ "fib"; "msort"; "quickhull"; "palindrome" ]
let zoo_gate_kernel = "msort"

(* JSON key fragment for a protocol ("msi-bus" -> "msi_bus"). *)
let zoo_key_proto p =
  String.map (fun c -> if c = '-' then '_' else c) (Exp.proto_name p)

(* Every violated traffic comparison on the gate kernel — all of them, so
   one CI log diagnoses the whole four-protocol failure. *)
let zoo_gate_failures ~traffic =
  List.filter_map
    (fun rival ->
      let w = traffic `Warden and r = traffic rival in
      Printf.printf "zoo gate: %s inv+down: warden %d vs %s %d -> %s\n"
        zoo_gate_kernel w (Exp.proto_name rival) r
        (if w < r then "strictly below" else "NOT BELOW");
      if w < r then None
      else
        Some
          (Printf.sprintf
             "warden inv+down (%d) is not strictly below %s's (%d) on %s" w
             (Exp.proto_name rival) r zoo_gate_kernel))
    [ `Mesi; `Sisd ]

let run_zoo_mode () =
  section "Protocol zoo: fig7/8 kernels under every coherence protocol";
  let names =
    match filter_names with
    | None -> zoo_kernels
    | Some ns -> (
        match List.filter (fun n -> List.mem n ns) zoo_kernels with
        | [] -> zoo_kernels
        | picked -> picked)
  in
  let config = Config.dual_socket () in
  let cells =
    List.map
      (fun n ->
        let spec = Option.get (Warden_pbbs.Suite.find n) in
        let t0 = Unix.gettimeofday () in
        let rs = Exp.run_zoo ~quick ~jobs ~config spec in
        (n, (List.combine Exp.zoo rs, Unix.gettimeofday () -. t0)))
      names
  in
  List.iter
    (fun (n, (rs, _)) ->
      let base = List.assoc `Mesi rs in
      Printf.printf "%s:\n  %-8s %12s %9s %10s %9s %14s\n" n "proto" "cycles"
        "vs-mesi" "inv+down" "vs-mesi" "energy (pJ)";
      List.iter
        (fun (p, r) ->
          Printf.printf "  %-8s %12d %8.3fx %10d %8.2fx %14.1f\n"
            (Exp.proto_name p) r.Exp.cycles
            (float_of_int base.Exp.cycles /. float_of_int (max 1 r.Exp.cycles))
            (Exp.inv_down r)
            (float_of_int (Exp.inv_down r)
            /. float_of_int (max 1 (Exp.inv_down base)))
            r.Exp.energy_total_pj)
        rs)
    cells;
  let verified =
    List.for_all
      (fun (_, (rs, _)) -> List.for_all (fun (_, r) -> r.Exp.verified) rs)
      cells
  in
  let failures = ref (if verified then [] else [ "a zoo run failed result \
                                                 verification" ]) in
  let gated = List.mem_assoc zoo_gate_kernel cells in
  (if not gated then
     Printf.printf
       "note: gate kernel %s filtered out; the traffic gate did not run\n"
       zoo_gate_kernel
   else
     let rs, _ = List.assoc zoo_gate_kernel cells in
     let traffic p = Exp.inv_down (List.assoc p rs) in
     failures := !failures @ zoo_gate_failures ~traffic);
  (* Flat snapshot: per-kernel host walls gate under the ordinary
     [compare] budgets; the per-cell traffic/cycles/energy keys feed
     [compare --zoo] and the EXPERIMENTS.md figure. *)
  let wall = List.fold_left (fun a (_, (_, w)) -> a +. w) 0. cells in
  let instrs =
    List.fold_left
      (fun a (_, (rs, _)) ->
        List.fold_left (fun a (_, r) -> a + r.Exp.instructions) a rs)
      0 cells
  in
  let cycles =
    List.fold_left
      (fun a (_, (rs, _)) ->
        List.fold_left (fun a (_, r) -> a + r.Exp.cycles) a rs)
      0 cells
  in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n";
  addf "  \"jobs\": %d,\n" jobs;
  addf "  \"sim_domains\": %d,\n" sim_domains;
  addf "  \"obs_level\": \"%s\",\n" obs_level;
  addf "  \"kernels_ms_per_run\": {\n";
  List.iteri
    (fun i (n, (_, w)) ->
      addf "    \"zoo:%s\": %.3f%s\n" n (w *. 1e3)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  addf "  },\n";
  addf "  \"zoo_gate_kernel\": \"%s\",\n" zoo_gate_kernel;
  addf "  \"zoo_gated\": %d,\n" (if gated then 1 else 0);
  addf "  \"zoo_verified\": %d,\n" (if verified then 1 else 0);
  List.iter
    (fun (n, (rs, _)) ->
      List.iter
        (fun (p, r) ->
          let kp = zoo_key_proto p in
          addf "  \"zoo_%s_%s_invdown\": %d,\n" n kp (Exp.inv_down r);
          addf "  \"zoo_%s_%s_cycles\": %d,\n" n kp r.Exp.cycles;
          addf "  \"zoo_%s_%s_energy_pj\": %.1f,\n" n kp r.Exp.energy_total_pj)
        rs)
    cells;
  addf "  \"quick_suite_wall_s\": %.3f,\n" wall;
  addf "  \"quick_suite_sim_instructions\": %d,\n" instrs;
  addf "  \"quick_suite_sim_cycles\": %d,\n" cycles;
  addf "  \"sim_mips\": %.3f\n"
    (if wall > 0. then float_of_int instrs /. wall /. 1e6 else 0.);
  addf "}\n";
  let oc = open_out "BENCH_zoo.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote BENCH_zoo.json\n%!";
  match !failures with
  | [] -> Printf.printf "ok: zoo gate passed\n"
  | fs ->
      List.iter (fun f -> Printf.printf "REGRESSION: %s\n" f) fs;
      Printf.printf "ZOO GATE FAILED (%d problem(s) above)\n" (List.length fs);
      exit 1

(* [compare --zoo [FILE]]: re-run the traffic gate over an existing
   BENCH_zoo.json. Missing keys and violated comparisons are all
   accumulated and reported before the non-zero exit. *)
let run_compare_zoo () =
  let file = match snapshot_args with [] -> "BENCH_zoo.json" | f :: _ -> f in
  let s = slurp file in
  let problems = ref [] in
  let number key =
    match scan_number s key with
    | Some f -> Some f
    | None ->
        problems := Printf.sprintf "no numeric \"%s\" in %s" key file
                    :: !problems;
        None
  in
  (match number "zoo_verified" with
  | Some 1. | None -> ()
  | Some _ -> problems := "snapshot reports zoo_verified = 0" :: !problems);
  (match number "zoo_gated" with
  | Some 0. ->
      problems :=
        "snapshot was taken with the gate kernel filtered out" :: !problems
  | _ -> ());
  let traffic p =
    number
      (Printf.sprintf "zoo_%s_%s_invdown" zoo_gate_kernel (zoo_key_proto p))
  in
  let w = traffic `Warden in
  List.iter
    (fun rival ->
      match (w, traffic rival) with
      | Some w, Some r ->
          Printf.printf "zoo gate: %s inv+down: warden %.0f vs %s %.0f -> %s\n"
            zoo_gate_kernel w (Exp.proto_name rival) r
            (if w < r then "strictly below" else "NOT BELOW");
          if not (w < r) then
            problems :=
              Printf.sprintf
                "warden inv+down (%.0f) is not strictly below %s's (%.0f) on \
                 %s"
                w (Exp.proto_name rival) r zoo_gate_kernel
              :: !problems
      | _ -> ())
    [ `Mesi; `Sisd ];
  match List.rev !problems with
  | [] -> Printf.printf "ok: zoo gate passed (%s)\n" file
  | ps ->
      List.iter (fun p -> Printf.printf "REGRESSION: %s\n" p) ps;
      Printf.printf "ZOO GATE FAILED (%d problem(s) above)\n" (List.length ps);
      exit 1

let () =
  if compare_mode && Cliscan.has cli "--overhead" then run_overhead ()
  else if compare_mode && Cliscan.has cli "--scaling" then run_compare_scaling ()
  else if compare_mode && Cliscan.has cli "--zoo" then run_compare_zoo ()
  else if compare_mode then run_compare ()
  else if scaling_mode then run_sim_scaling ()
  else if scale_mode then run_scale ()
  else if serve_mode then run_serve ()
  else if replay_mode then run_replay ()
  else if zoo_mode then run_zoo_mode ()
  else if json_mode then run_json ()
  else begin
    Printf.printf
      "WARDen reproduction bench harness (%s scales, %d job(s))\n\
       Every run simulates the full machine: caches, directory, protocol, \
       runtime.\n"
      (if quick then "quick" else "paper")
      jobs;
    let ok = run_paper_experiments () in
    run_ablations ();
    run_scaling_studies ();
    run_bechamel ();
    Printf.printf "\nDONE. all benchmark runs verified: %b\n" ok;
    exit (if ok then 0 else 1)
  end
