(* Quickstart: write a fork-join program against the Par DSL, run it on the
   simulated machine under MESI and under WARDen, and compare.

   Run with:  dune exec examples/quickstart.exe *)

open Warden_machine
open Warden_sim
open Warden_runtime

(* A little parallel program: build a vector of squares functionally (each
   task allocates its piece in its own heap, where fresh pages are WARD
   regions), then sum it. Every memory access below goes through the
   simulated cache hierarchy and coherence protocol; the consuming sum
   phase is where WARDen's reconciliation pays off — the producers' lines
   are already in the shared cache, so no cross-core downgrades happen. *)
let rec build lo hi =
  if hi - lo <= 256 then begin
    let piece = Sarray.create ~len:(hi - lo) ~elt_bytes:8 in
    for i = lo to hi - 1 do
      Par.tick 1 (* the multiply *);
      Sarray.set_i piece (i - lo) (i * i)
    done;
    piece
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let l, r = Par.par2 (fun () -> build lo mid) (fun () -> build mid hi) in
    let out = Sarray.create ~len:(hi - lo) ~elt_bytes:8 in
    for i = 0 to Sarray.length l - 1 do
      Sarray.set out i (Sarray.get l i)
    done;
    for i = 0 to Sarray.length r - 1 do
      Sarray.set out (Sarray.length l + i) (Sarray.get r i)
    done;
    out
  end

let program n () =
  let squares = build 0 n in
  Par.parreduce ~grain:256 0 n
    ~map:(fun i -> Sarray.get_i squares i)
    ~combine:( + ) ~init:0

let run_under proto =
  let eng = Engine.create (Config.dual_socket ()) ~proto in
  let total, rstats = Par.run eng (program 50_000) in
  let ms = Engine.memsys eng in
  let ss = Memsys.sstats ms in
  let ps = Memsys.pstats ms in
  Printf.printf
    "%-6s: sum=%d  cycles=%d  instructions=%d  IPC=%.2f\n\
    \        forks=%d steals=%d | invalidations=%d downgrades=%d ward-grants=%d\n"
    (match proto with
    | `Mesi -> "MESI"
    | `Warden -> "WARDen"
    | `Msi_bus -> "MSI-bus"
    | `Sisd -> "SI/SD")
    total ss.Sstats.cycles ss.Sstats.instructions (Sstats.ipc ss)
    rstats.Par.forks rstats.Par.steals ps.Warden_proto.Pstats.invalidations
    ps.Warden_proto.Pstats.downgrades ps.Warden_proto.Pstats.ward_grants;
  ss.Sstats.cycles

let () =
  print_endline "Quickstart: 50k squares, summed, on 24 simulated cores.\n";
  let mesi = run_under `Mesi in
  let warden = run_under `Warden in
  Printf.printf "\nWARDen speedup over MESI: %.2fx\n"
    (float_of_int mesi /. float_of_int warden)
