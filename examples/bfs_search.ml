(* The paper's second benign-race example (§2.1): a parallel breadth-first
   search with inexact criteria. Threads race to write an acceptable vertex
   into a shared cell allocated by the ancestor that started the search; it
   does not matter who wins, because every candidate meets the criteria —
   a write-after-write race with *different* values that is still
   disentangled (though not WARD, so the runtime correctly never marks the
   shared cell's page as a region once the search forks).

   Run with:  dune exec examples/bfs_search.exe *)

open Warden_machine
open Warden_sim
open Warden_runtime

(* A random graph in simulated memory, in CSR form. *)
let build_graph ms ~seed ~vertices ~degree =
  let rng = Warden_util.Splitmix.make seed in
  let offsets = Sarray.create ~len:(vertices + 1) ~elt_bytes:8 in
  let edges = Sarray.create ~len:(vertices * degree) ~elt_bytes:8 in
  Sarray.init_host ms offsets (fun i -> Int64.of_int (i * degree));
  Sarray.init_host ms edges (fun _ ->
      Int64.of_int (Warden_util.Splitmix.int rng vertices));
  (offsets, edges)

(* Parallel search for any vertex whose id satisfies [accept], frontier by
   frontier from [root]. Accepted hits race to publish into [found]. *)
let search (offsets, edges) ~vertices ~root ~accept ~found =
  let visited = Sarray.create ~len:vertices ~elt_bytes:1 in
  let rec expand frontier =
    if Sarray.length frontier > 0 && Par.read found ~size:8 = -1L then begin
      (* Collect the next frontier functionally: each chunk of the current
         frontier builds its own successor list in its leaf heap. *)
      let next =
        Par.parreduce ~grain:64 0 (Sarray.length frontier)
          ~map:(fun i ->
            let v = Sarray.get_i frontier i in
            if accept v then begin
              (* Benign WAW: any acceptable vertex may win. *)
              Par.write found ~size:8 (Int64.of_int v);
              []
            end
            else begin
              let lo = Sarray.get_i offsets v and hi = Sarray.get_i offsets (v + 1) in
              let out = ref [] in
              for e = lo to hi - 1 do
                let w = Sarray.get_i edges e in
                (* Benign same-value WAW on the visited flags, as in the
                   prime sieve. *)
                if Sarray.get visited w = 0L then begin
                  Sarray.set visited w 1L;
                  out := w :: !out
                end
              done;
              !out
            end)
          ~combine:( @ ) ~init:[]
      in
      let next_arr = Sarray.create ~len:(List.length next) ~elt_bytes:8 in
      List.iteri (fun i v -> Sarray.set_i next_arr i v) next;
      expand next_arr
    end
  in
  let f0 = Sarray.create ~len:1 ~elt_bytes:8 in
  Sarray.set_i f0 0 root;
  Sarray.set visited root 1L;
  expand f0

let () =
  let vertices = 20_000 and degree = 8 in
  let run proto =
    let eng = Engine.create (Config.dual_socket ()) ~proto in
    let ms = Engine.memsys eng in
    let hit, _ =
      Par.run eng (fun () ->
          let g = build_graph ms ~seed:11L ~vertices ~degree in
          let found = Par.alloc ~bytes:8 in
          Par.write found ~size:8 (-1L);
          (* Accept any vertex divisible by 4999 (several candidates). *)
          search g ~vertices ~root:0
            ~accept:(fun v -> v > 0 && v mod 4999 = 0)
            ~found;
          Int64.to_int (Par.read found ~size:8))
    in
    let cycles = (Memsys.sstats ms).Sstats.cycles in
    Printf.printf "%-6s: found vertex %d in %d cycles\n"
      (match proto with
      | `Mesi -> "MESI"
      | `Warden -> "WARDen"
      | `Msi_bus -> "MSI-bus"
      | `Sisd -> "SI/SD")
      hit cycles;
    (hit, cycles)
  in
  print_endline
    "Parallel BFS with an inexact target: threads race (benignly) to publish a hit.\n";
  let hit_m, cy_m = run `Mesi in
  let hit_w, cy_w = run `Warden in
  Printf.printf "\nboth protocols found acceptable vertices: %b\n"
    (hit_m mod 4999 = 0 && hit_w mod 4999 = 0);
  Printf.printf "WARDen speedup: %.2fx\n" (float_of_int cy_m /. float_of_int cy_w)
