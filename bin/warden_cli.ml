(* warden-cli: run the paper's experiments and individual benchmarks. *)

open Cmdliner
open Warden_machine
open Warden_sim
open Warden_harness

let machine_of = function
  | "single" -> Config.single_socket ()
  | "dual" -> Config.dual_socket ()
  | "disagg" | "disaggregated" -> Config.disaggregated ()
  | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Config.many_socket ~sockets:n ()
      | _ -> invalid_arg ("unknown machine: " ^ s))

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use reduced problem sizes.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for running independent simulations in parallel \
           (default: $(b,WARDEN_JOBS) or the recommended domain count).")

let machine_arg =
  Arg.(
    value
    & opt string "dual"
    & info [ "machine"; "m" ] ~docv:"MACHINE"
        ~doc:"Machine: single, dual, disagg, or a socket count.")

let sim_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sim-domains" ] ~docv:"D"
        ~doc:
          "Shard each simulation across $(docv) domains: one commit lane \
           plus $(docv)-1 cache-warming helpers (default: \
           $(b,WARDEN_SIM_DOMAINS) or 1). Statistics are bit-identical for \
           every value.")

(* The flag retargets the config default, so every Config.* constructor
   called afterwards — including inside Experiments — picks it up. *)
let apply_sim_domains = function
  | Some d -> Config.set_default_sim_domains d
  | None -> ()

let obs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs" ] ~docv:"LEVEL"
        ~doc:
          "Observability level: $(b,off), $(b,counters) or $(b,full) \
           (default: $(b,WARDEN_OBS) or off). Recording never perturbs \
           simulated cycles, statistics or energy.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out"; "o" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the run's coherence \
           events (open in about://tracing or ui.perfetto.dev). Implies at \
           least $(b,--obs full) for the traced runs.")

(* --trace-out upgrades to full even past an explicit lower --obs:
   asking for a trace is asking for ring recording, and a silently empty
   trace file would be worse than overriding the flag. *)
let apply_obs ~obs ~trace_out =
  (match obs with
  | Some s -> (
      match Config.obs_level_of_string s with
      | Some l -> Config.set_default_obs_level l
      | None -> invalid_arg ("unknown obs level: " ^ s))
  | None -> ());
  if trace_out <> None then Config.set_default_obs_level Config.Obs_full

(* Accept "bench/fib" for "fib": people tab-complete paths. *)
let strip_bench_prefix name =
  match Warden_pbbs.Suite.find name with
  | Some _ -> name
  | None ->
      let base = Filename.basename name in
      if base <> name && Warden_pbbs.Suite.find base <> None then base
      else name

let write_chrome_trace file runs =
  let buf = Buffer.create (1 lsl 16) in
  Warden_obs.Sink_chrome.write buf ~runs;
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  let events, dropped =
    List.fold_left
      (fun (e, d) (_, _, sink) ->
        ( e + Warden_obs.Sink_chrome.length sink,
          d + Warden_obs.Sink_chrome.dropped sink ))
      (0, 0) runs
  in
  Printf.printf "wrote %s: %d events across %d run(s)%s\n" file events
    (List.length runs)
    (if dropped > 0 then Printf.sprintf " (%d dropped at capacity)" dropped
     else "")

(* Each simulation spawns sim_domains - 1 helper domains, so cap the pool
   width at what the host can schedule. *)
let cap_jobs jobs =
  Option.map
    (fun j ->
      Pool.effective_jobs ~jobs:j
        ~sim_domains:(Config.dual_socket ()).Config.sim_domains)
    jobs

let exit_of_bool ok = if ok then 0 else 1
let proto_name = Exp.proto_name

let proto_of_string = function
  | "mesi" -> `Mesi
  | "warden" -> `Warden
  | "msi-bus" | "msibus" | "msi_bus" -> `Msi_bus
  | "sisd" -> `Sisd
  | p -> failwith ("unknown protocol " ^ p)

(* --- snapshots (DESIGN.md §15) ------------------------------------------- *)

let snapshot_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"FILE"
        ~doc:
          "After the run, save the full simulator state as a snapshot \
           (restore with $(b,--snapshot-in)). Requires a single $(b,--proto). \
           Snapshots are portable across $(b,--sim-domains) and speculation \
           settings; anything that changes simulated results is fingerprinted \
           and checked on restore.")

let snapshot_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-in" ] ~docv:"FILE"
        ~doc:
          "Before the run, restore the simulator state from a snapshot taken \
           on an identical machine and protocol, so the run continues from \
           the saved point instead of cold state. Requires a single \
           $(b,--proto).")

let require_single_proto ~snap_in ~snap_out proto =
  if (snap_in <> None || snap_out <> None) && (proto = "both" || proto = "all")
  then
    failwith "--snapshot-in/--snapshot-out need a single --proto"

let apply_snapshot_in eng = function
  | None -> ()
  | Some file ->
      Warden_snap.Snap.load_file eng file;
      Printf.printf "restored snapshot %s\n" file

let apply_snapshot_out eng = function
  | None -> ()
  | Some file ->
      Warden_snap.Snap.save_file eng file;
      Printf.printf "wrote snapshot %s\n" file

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Warden_pbbs.Spec.t) ->
        Printf.printf "%-14s (default scale %8d)  %s\n" s.Warden_pbbs.Spec.name
          s.Warden_pbbs.Spec.default_scale s.Warden_pbbs.Spec.descr)
      Warden_pbbs.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the PBBS-like benchmarks.")
    Term.(const run $ const ())

(* --- bench --------------------------------------------------------------- *)

let bench_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,list)).")
  in
  let proto_arg =
    Arg.(
      value
      & opt string "both"
      & info [ "proto"; "p" ]
          ~doc:
            "Protocol: mesi, warden, msi-bus, sisd, both (mesi+warden), or \
             all (the whole zoo, with a cross-protocol comparison).")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N" ~doc:"Problem size (default: paper scale).")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers"; "w" ] ~doc:"Worker threads (default: all).")
  in
  let run name proto machine scale workers quick sim_domains obs trace_out
      snap_in snap_out =
    apply_sim_domains sim_domains;
    apply_obs ~obs ~trace_out;
    require_single_proto ~snap_in ~snap_out proto;
    let name = strip_bench_prefix name in
    let spec =
      match Warden_pbbs.Suite.find name with
      | Some s -> s
      | None -> failwith ("unknown benchmark " ^ name)
    in
    let config = machine_of machine in
    let one proto =
      let eng = Engine.create config ~proto in
      apply_snapshot_in eng snap_in;
      let scale =
        match scale with Some s -> s | None -> Exp.scale_of ~quick spec
      in
      let t0 = Unix.gettimeofday () in
      let ok = spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL ?workers eng in
      let host = Unix.gettimeofday () -. t0 in
      apply_snapshot_out eng snap_out;
      let ms = Engine.memsys eng in
      let ss = Memsys.sstats ms in
      let ps = Memsys.pstats ms in
      let en = Memsys.energy ms in
      Printf.printf
        "%s/%s on %s: %s in %d cycles (%.2fs host)\n\
        \  instrs %d  IPC %.3f  l1-hits %d  l2-hits %d  misses %d\n\
        \  inv %d  down %d  self-inv %d  self-down %d  msgs %d  \
         ward-grants %d  reconciled %d\n\
        \  energy: processor %.3f mJ, network %.3f mJ\n"
        name (proto_name proto) config.Config.name
        (if ok then "verified" else "FAILED VERIFICATION")
        ss.Sstats.cycles host ss.Sstats.instructions (Sstats.ipc ss)
        ss.Sstats.l1_hits ss.Sstats.l2_hits ss.Sstats.priv_misses
        ps.Warden_proto.Pstats.invalidations ps.Warden_proto.Pstats.downgrades
        ps.Warden_proto.Pstats.self_invs ps.Warden_proto.Pstats.self_downs
        (Warden_proto.Pstats.total_msgs ps)
        ps.Warden_proto.Pstats.ward_grants ps.Warden_proto.Pstats.recon_blocks
        (Energy.processor_pj en /. 1e9)
        (Energy.network_pj en /. 1e9);
      let coh =
        ps.Warden_proto.Pstats.invalidations
        + ps.Warden_proto.Pstats.downgrades
        + ps.Warden_proto.Pstats.self_invs
        + ps.Warden_proto.Pstats.self_downs
      in
      (ok, ss.Sstats.cycles, coh, (proto_name proto, Memsys.obs ms))
    in
    let emit_trace runs =
      match trace_out with
      | None -> ()
      | Some file ->
          write_chrome_trace file
            (List.mapi
               (fun pid (pname, obs) -> (pid, pname, Warden_obs.Obs.chrome obs))
               runs)
    in
    match proto with
    | "both" ->
        let ok_m, cy_m, _, run_m = one `Mesi in
        let ok_w, cy_w, _, run_w = one `Warden in
        Printf.printf "speedup (mesi/warden): %.3fx\n"
          (float_of_int cy_m /. float_of_int cy_w);
        emit_trace [ run_m; run_w ];
        exit_of_bool (ok_m && ok_w)
    | "all" | "zoo" ->
        (* The cross-protocol comparison: every protocol runs the same
           benchmark; cycles and coherence-maintenance traffic (inv+down,
           with the SI/SD self-events on the same axis) line up against
           the MESI baseline. *)
        let rs = List.map (fun p -> (p, one p)) Exp.zoo in
        (match rs with
        | (_, (_, cy_m, coh_m, _)) :: _ ->
            Printf.printf "\n%-8s %12s %10s %12s %10s\n" "proto" "cycles"
              "vs mesi" "inv+down" "vs mesi";
            List.iter
              (fun (p, (_, cy, coh, _)) ->
                Printf.printf "%-8s %12d %9.3fx %12d %9.2fx\n" (proto_name p)
                  cy
                  (float_of_int cy_m /. float_of_int (max 1 cy))
                  coh
                  (float_of_int coh /. float_of_int (max 1 coh_m)))
              rs
        | [] -> ());
        emit_trace (List.map (fun (_, (_, _, _, run)) -> run) rs);
        exit_of_bool (List.for_all (fun (_, (ok, _, _, _)) -> ok) rs)
    | p ->
        let ok, _, _, run = one (proto_of_string p) in
        emit_trace [ run ];
        exit_of_bool ok
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one benchmark and print its statistics.")
    Term.(
      const run $ name_arg $ proto_arg $ machine_arg $ scale_arg $ workers_arg
      $ quick_arg $ sim_domains_arg $ obs_arg $ trace_out_arg $ snapshot_in_arg
      $ snapshot_out_arg)

(* --- serve --------------------------------------------------------------- *)

module Serve = Warden_serve.Serve

(* [--quick] shrinks the default problem, but explicit flags always win. *)
let serve_params ~quick ~requests ~keys ~zipf ~read_frac ~scan_frac ~scan_len
    ~batch ~grain ~shards ~seed : Serve.params =
  let d = Serve.default in
  let requests =
    match requests with
    | Some n -> n
    | None -> if quick then 50_000 else d.Serve.requests
  in
  let keys =
    match keys with Some k -> k | None -> if quick then 16_384 else d.Serve.keys
  in
  {
    requests;
    keys;
    theta = zipf;
    read_frac;
    scan_frac;
    scan_len;
    batch;
    grain;
    shards;
    seed;
  }

let host_heap_mb () =
  float_of_int ((Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8))
  /. 1e6

let serve_cmd =
  let d = Serve.default in
  let requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests"; "n" ] ~docv:"N"
          ~doc:
            "Requests to push through the store (default: 1000000, or 50000 \
             with $(b,--quick)). Generation is streamed batch by batch, so \
             host memory stays flat however large $(docv) is.")
  in
  let keys_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keys" ] ~docv:"K"
          ~doc:
            "Distinct keys preloaded into the store (default: 65536, or \
             16384 with $(b,--quick)).")
  in
  let zipf_arg =
    Arg.(
      value & opt float d.Serve.theta
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:"Zipf skew of key popularity (0 = uniform).")
  in
  let read_frac_arg =
    Arg.(
      value
      & opt float d.Serve.read_frac
      & info [ "read-frac" ] ~docv:"F" ~doc:"Fraction of requests that are reads.")
  in
  let scan_frac_arg =
    Arg.(
      value
      & opt float d.Serve.scan_frac
      & info [ "scan-frac" ] ~docv:"F"
          ~doc:"Fraction of requests that are short range scans.")
  in
  let scan_len_arg =
    Arg.(
      value & opt int d.Serve.scan_len
      & info [ "scan-len" ] ~docv:"L" ~doc:"Slots read by one scan.")
  in
  let batch_arg =
    Arg.(
      value & opt int d.Serve.batch
      & info [ "batch" ] ~docv:"B"
          ~doc:"Open-loop admission batch; generator memory is O($(docv)).")
  in
  let grain_arg =
    Arg.(
      value & opt int d.Serve.grain
      & info [ "grain" ] ~docv:"G"
          ~doc:"Requests per leaf task of the fork-join handler tree.")
  in
  let shards_arg =
    Arg.(
      value & opt int d.Serve.shards
      & info [ "shards" ] ~docv:"S" ~doc:"Hash shards of the store.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 d.Serve.seed
      & info [ "seed" ] ~docv:"X" ~doc:"Workload seed (deterministic).")
  in
  let cores_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"C" ~doc:"Override the machine's core count.")
  in
  let proto_arg =
    Arg.(
      value
      & opt string "both"
      & info [ "proto"; "p" ] ~doc:"Protocol: mesi, warden, msi-bus, sisd, both, or all.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the run's summary (simulated quantities only, so the \
             bytes are identical for every $(b,--sim-domains)) as JSON.")
  in
  let curve_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "curve" ] ~docv:"C1,C2,.."
          ~doc:
            "Sweep core counts and print the requests/sec curve instead of \
             a single run.")
  in
  let run requests keys zipf read_frac scan_frac scan_len batch grain shards
      seed cores proto machine quick sim_domains obs json curve snap_in
      snap_out =
    apply_sim_domains sim_domains;
    apply_obs ~obs ~trace_out:None;
    require_single_proto ~snap_in ~snap_out proto;
    if (snap_in <> None || snap_out <> None) && curve <> None then
      failwith "--snapshot-in/--snapshot-out do not combine with --curve";
    let config = machine_of machine in
    let config =
      match cores with Some c -> Config.with_cores config c | None -> config
    in
    let p =
      serve_params ~quick ~requests ~keys ~zipf ~read_frac ~scan_frac ~scan_len
        ~batch ~grain ~shards ~seed
    in
    let protos =
      match proto with
      | "both" -> [ `Mesi; `Warden ]
      | "all" | "zoo" -> (Exp.zoo :> [ `Mesi | `Warden | `Msi_bus | `Sisd ] list)
      | pr -> [ proto_of_string pr ]
    in
    match curve with
    | Some cores ->
        List.iter
          (fun proto ->
            Printf.printf "requests/sec vs cores [%s] on %s:\n"
              (proto_name proto) config.Config.name;
            List.iter
              (fun (c, rps) ->
                Printf.printf "  %3d cores: %10.0f req/s (%.2f Mreq/s)\n" c rps
                  (rps /. 1e6))
              (Serve.curve ~params:p ~machine:config ~proto cores))
          protos;
        0
    | None ->
        let results =
          List.map
            (fun proto ->
              let r =
                if snap_in = None && snap_out = None then
                  Serve.run_proto ~params:p ~machine:config ~proto ()
                else begin
                  (* Snapshot paths need the engine in hand; the single-proto
                     guard above makes this branch unambiguous. *)
                  let eng = Engine.create config ~proto in
                  apply_snapshot_in eng snap_in;
                  let r = Serve.run ~params:p eng in
                  apply_snapshot_out eng snap_out;
                  r
                end
              in
              print_string (Serve.summary r);
              r)
            protos
        in
        (match results with
        | [ rm; rw ] ->
            let coh (r : Serve.result) =
              r.Serve.invalidations + r.Serve.downgrades
            in
            Printf.printf
              "mesi vs warden: speedup %.3fx, inv+down %d -> %d (%+.2f%%), \
               equal results: %b\n"
              (float_of_int rm.Serve.cycles /. float_of_int rw.Serve.cycles)
              (coh rm) (coh rw)
              (100.
              *. (float_of_int (coh rw) -. float_of_int (coh rm))
              /. float_of_int (max 1 (coh rm)))
              (Serve.equal_results rm rw)
        | _ -> ());
        Printf.printf "host heap after run(s): %.1f MB\n" (host_heap_mb ());
        (match json with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            (match results with
            | [ r ] -> output_string oc (Serve.json_summary p r)
            | rs ->
                output_string oc "[\n";
                List.iteri
                  (fun i r ->
                    if i > 0 then output_string oc ",\n";
                    output_string oc (Serve.json_summary p r))
                  rs;
                output_string oc "\n]")
            ;
            output_string oc "\n";
            close_out oc;
            Printf.printf "wrote %s\n" file);
        let ok =
          List.for_all (fun (r : Serve.result) -> r.Serve.verified) results
          && match results with
             | [ rm; rw ] -> Serve.equal_results rm rw
             | _ -> true
        in
        exit_of_bool ok
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulate a server-scale KV serving tier: a deterministic open-loop \
          Zipf workload against a sharded in-memory store on the fork-join \
          runtime, reporting tail latency (p50/p95/p99/p99.9), throughput \
          and the MESI vs WARDen coherence-traffic comparison.")
    Term.(
      const run $ requests_arg $ keys_arg $ zipf_arg $ read_frac_arg
      $ scan_frac_arg $ scan_len_arg $ batch_arg $ grain_arg $ shards_arg
      $ seed_arg $ cores_arg $ proto_arg $ machine_arg $ quick_arg
      $ sim_domains_arg $ obs_arg $ json_arg $ curve_arg $ snapshot_in_arg
      $ snapshot_out_arg)

(* --- profile ------------------------------------------------------------- *)

(* [profile serve] gets the serving tier rather than a Suite benchmark:
   the per-class latency report plus the coherence-event summary. *)
let profile_serve ~config ~proto ~scale ~workers ~quick ~trace_out =
  let p : Serve.params =
    let d = Serve.default in
    let requests =
      match scale with Some s -> s | None -> if quick then 50_000 else 200_000
    in
    { d with Serve.requests; keys = (if quick then 16_384 else d.Serve.keys) }
  in
  let one proto =
    let eng = Engine.create config ~proto in
    let r = Serve.run ~params:p ?workers eng in
    let ms = Engine.memsys eng in
    Printf.printf "== serve/%s on %s: %s in %d cycles ==\n\n" (proto_name proto)
      config.Config.name
      (if r.Serve.verified then "verified" else "FAILED VERIFICATION")
      r.Serve.cycles;
    print_string (Serve.summary r);
    print_newline ();
    print_string (Warden_obs.Obs.render_summary (Memsys.obs ms));
    print_newline ();
    (r.Serve.verified, (proto_name proto, Memsys.obs ms))
  in
  let emit_trace runs =
    match trace_out with
    | None -> ()
    | Some file ->
        write_chrome_trace file
          (List.mapi
             (fun pid (pname, obs) -> (pid, pname, Warden_obs.Obs.chrome obs))
             runs)
  in
  match proto with
  | "both" ->
      let ok_m, run_m = one `Mesi in
      let ok_w, run_w = one `Warden in
      emit_trace [ run_m; run_w ];
      exit_of_bool (ok_m && ok_w)
  | p ->
      let ok, run = one (proto_of_string p) in
      emit_trace [ run ];
      exit_of_bool ok

let profile_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Benchmark to profile (a $(b,bench/) prefix is accepted).")
  in
  let proto_arg =
    Arg.(
      value
      & opt string "both"
      & info [ "proto"; "p" ] ~doc:"Protocol: mesi, warden, msi-bus, sisd, both, or all.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N" ~doc:"Problem size (default: paper scale).")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers"; "w" ] ~doc:"Worker threads (default: all).")
  in
  let run name proto machine scale workers quick sim_domains obs trace_out =
    apply_sim_domains sim_domains;
    (* profile records at full level unless the user asks for less. *)
    apply_obs ~obs:(Some (Option.value obs ~default:"full")) ~trace_out;
    let config = machine_of machine in
    if Filename.basename name = "serve" then
      profile_serve ~config ~proto ~scale ~workers ~quick ~trace_out
    else begin
    let name = strip_bench_prefix name in
    let spec =
      match Warden_pbbs.Suite.find name with
      | Some s -> s
      | None -> failwith ("unknown benchmark " ^ name)
    in
    let one proto =
      let eng = Engine.create config ~proto in
      let scale =
        match scale with Some s -> s | None -> Exp.scale_of ~quick spec
      in
      let ok = spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL ?workers eng in
      let ms = Engine.memsys eng in
      let ss = Memsys.sstats ms in
      Printf.printf "== %s/%s on %s: %s in %d cycles ==\n\n" name
        (proto_name proto) config.Config.name
        (if ok then "verified" else "FAILED VERIFICATION")
        ss.Sstats.cycles;
      print_string (Warden_obs.Obs.render_summary (Memsys.obs ms));
      print_newline ();
      (ok, (proto_name proto, Memsys.obs ms))
    in
    let emit_trace runs =
      match trace_out with
      | None -> ()
      | Some file ->
          write_chrome_trace file
            (List.mapi
               (fun pid (pname, obs) -> (pid, pname, Warden_obs.Obs.chrome obs))
               runs)
    in
    match proto with
    | "both" ->
        let ok_m, run_m = one `Mesi in
        let ok_w, run_w = one `Warden in
        emit_trace [ run_m; run_w ];
        exit_of_bool (ok_m && ok_w)
    | p ->
        let ok, run = one (proto_of_string p) in
        emit_trace [ run ];
        exit_of_bool ok
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one benchmark with the coherence-event recorder at $(b,full) \
          level and print event counts, latency histograms, the hottest \
          blocks and the WARD region table; optionally dump a Chrome trace \
          with $(b,--trace-out).")
    Term.(
      const run $ name_arg $ proto_arg $ machine_arg $ scale_arg $ workers_arg
      $ quick_arg $ sim_domains_arg $ obs_arg $ trace_out_arg)

(* --- experiments --------------------------------------------------------- *)

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let table1_cmd =
  simple "table1" "Reproduce Table 1 (simulator latency validation)." (fun () ->
      print_string (Experiments.render_table1 ());
      0)

let table2_cmd =
  simple "table2" "Print the simulated system specifications (Table 2)."
    (fun () ->
      print_string (Experiments.render_table2 ());
      0)

let fig_cmd name doc config title =
  let run quick jobs sim_domains =
    apply_sim_domains sim_domains;
    let sr =
      Experiments.run_suite ~quick ?jobs:(cap_jobs jobs) ~config:(config ()) ()
    in
    print_string (Experiments.render_perf_energy ~title sr);
    0
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ quick_arg $ jobs_arg $ sim_domains_arg)

let fig7_cmd =
  fig_cmd "fig7" "Reproduce Figure 7 (single socket)." Config.single_socket
    "Figure 7: performance and energy gains, single socket"

let fig8_cmd =
  fig_cmd "fig8" "Reproduce Figure 8 (dual socket)." Config.dual_socket
    "Figure 8: performance and energy gains, dual socket"

let analysis_cmd =
  let run quick jobs sim_domains =
    apply_sim_domains sim_domains;
    let sr =
      Experiments.run_suite ~quick ?jobs:(cap_jobs jobs)
        ~config:(Config.dual_socket ()) ()
    in
    print_string (Experiments.render_fig9 sr);
    print_newline ();
    print_string (Experiments.render_fig10 sr);
    print_newline ();
    print_string (Experiments.render_fig11 sr);
    0
  in
  Cmd.v
    (Cmd.info "analysis"
       ~doc:"Reproduce Figures 9-11 (dual-socket coherence-event analysis).")
    Term.(const run $ quick_arg $ jobs_arg $ sim_domains_arg)

let fig12_cmd =
  let run quick jobs sim_domains =
    apply_sim_domains sim_domains;
    let sr =
      Experiments.run_suite ~quick ?jobs:(cap_jobs jobs)
        ~names:Warden_pbbs.Suite.disaggregated_subset
        ~config:(Config.disaggregated ()) ()
    in
    print_string
      (Experiments.render_perf_energy
         ~title:"Figure 12: disaggregated (1 us remote)" sr);
    0
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Reproduce Figure 12 (disaggregated system).")
    Term.(const run $ quick_arg $ jobs_arg $ sim_domains_arg)

let scaling_cmd =
  let run quick jobs sim_domains =
    apply_sim_domains sim_domains;
    let jobs = cap_jobs jobs in
    let names = [ "dmm"; "msort"; "palindrome"; "quickhull" ] in
    print_string (Experiments.render_worker_scaling ~quick ?jobs ~names ());
    print_newline ();
    print_string (Experiments.render_socket_scaling ~quick ?jobs ~names ());
    0
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Worker-count and socket-count scaling studies (7.3).")
    Term.(const run $ quick_arg $ jobs_arg $ sim_domains_arg)

let trace_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark to trace.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N" ~doc:"Problem size (default: quick).")
  in
  let run name machine scale snap_in snap_out =
    let spec =
      match Warden_pbbs.Suite.find name with
      | Some s -> s
      | None -> failwith ("unknown benchmark " ^ name)
    in
    let config = machine_of machine in
    let scale =
      match scale with Some s -> s | None -> Exp.scale_of ~quick:true spec
    in
    let eng = Engine.create config ~proto:`Warden in
    apply_snapshot_in eng snap_in;
    let ok, _events, summary =
      Warden_trace.Recorder.record (fun () ->
          spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng)
    in
    apply_snapshot_out eng snap_out;
    Format.printf "%s (scale %d) under WARDen: %s@.%a@." name scale
      (if ok then "verified" else "FAILED VERIFICATION")
      Warden_trace.Recorder.pp_summary summary;
    (* The recorder and the live oracle share the runtime's hook slots, so
       the oracle gets its own pass; its verdict gates the exit code. *)
    let oracle_ok, oreport =
      let eng = Engine.create config ~proto:`Warden in
      let ok, report =
        Warden_trace.Oracle.with_oracle (fun () ->
            spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng)
      in
      match Warden_trace.Oracle.check_clean report with
      | Ok () -> (ok, report)
      | Error msg ->
          Format.printf "oracle: %s@." msg;
          (false, report)
    in
    Format.printf "oracle: %d accesses, %.1f%% under WARD, %s@."
      oreport.Warden_trace.Oracle.accesses
      (100. *. Warden_trace.Oracle.ward_fraction oreport)
      (if oracle_ok then "clean" else "VIOLATIONS");
    exit_of_bool (ok && oracle_ok)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a benchmark's access trace and report WARD coverage and \
          the offline region classification.")
    Term.(
      const run $ name_arg $ machine_arg $ scale_arg $ snapshot_in_arg
      $ snapshot_out_arg)

(* --- replay -------------------------------------------------------------- *)

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Commit-order trace file to replay — or to create, with \
             $(b,--record).")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"NAME"
          ~doc:
            "Record benchmark $(docv)'s commit-order access stream into \
             $(i,FILE) instead of replaying.")
  in
  let proto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "proto"; "p" ]
          ~doc:
            "Protocol: mesi, warden, msi-bus or sisd. Recording defaults to \
             warden; replay defaults to the protocol the trace was recorded \
             under. Replaying onto another protocol is the trace-driven A/B \
             comparison.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N"
          ~doc:"Problem size when recording (default: quick scale).")
  in
  let stats_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"OUT"
          ~doc:
            "Write the canonical memory-system statistics dump to $(docv). \
             The bytes are identical between a recording run and its \
             same-protocol replay, so two dumps can be checked with \
             $(b,cmp).")
  in
  let run file record proto machine scale stats_out =
    let config = machine_of machine in
    let proto_of = proto_of_string in
    let write_stats ms =
      match stats_out with
      | None -> ()
      | Some out ->
          let oc = open_out out in
          output_string oc (Warden_trace.Stream.stats_text ms);
          close_out oc;
          Printf.printf "wrote %s\n" out
    in
    match record with
    | Some name ->
        let name = strip_bench_prefix name in
        let spec =
          match Warden_pbbs.Suite.find name with
          | Some s -> s
          | None -> failwith ("unknown benchmark " ^ name)
        in
        let proto = proto_of (Option.value proto ~default:"warden") in
        let scale =
          match scale with
          | Some s -> s
          | None -> Exp.scale_of ~quick:true spec
        in
        let eng = Engine.create config ~proto in
        let t0 = Unix.gettimeofday () in
        let ok, stream =
          Warden_trace.Stream.record (Engine.memsys eng) (fun () ->
              spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng)
        in
        let host = Unix.gettimeofday () -. t0 in
        Warden_trace.Stream.save_file stream file;
        Printf.printf
          "recorded %s (scale %d) under %s: %s, %d events -> %s (%.2fs host)\n"
          name scale (proto_name proto)
          (if ok then "verified" else "FAILED VERIFICATION")
          (Warden_trace.Stream.events stream)
          file host;
        write_stats (Engine.memsys eng);
        exit_of_bool ok
    | None ->
        let stream = Warden_trace.Stream.load_file file in
        let proto =
          proto_of
            (match proto with
            | Some p -> p
            | None -> Warden_trace.Stream.proto stream)
        in
        let eng = Engine.create config ~proto in
        let t0 = Unix.gettimeofday () in
        let n = Warden_trace.Stream.replay stream (Engine.memsys eng) in
        let host = Unix.gettimeofday () -. t0 in
        Printf.printf
          "replayed %d events (recorded under %s) onto %s in %.2fs host \
           (%.1f Mevents/s)\n"
          n
          (Warden_trace.Stream.proto stream)
          (proto_name proto) host
          (float_of_int n /. 1e6 /. max 1e-9 host);
        write_stats (Engine.memsys eng);
        0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded commit-order access stream straight through the \
          memory system — no program model, no scheduler — reproducing the \
          recording run's memory-system statistics bit-for-bit on the same \
          protocol, or A/B-ing the stream against the other protocol. \
          Record the stream first with $(b,--record).")
    Term.(
      const run $ file_arg $ record_arg $ proto_arg $ machine_arg $ scale_arg
      $ stats_out_arg)

(* --- check --------------------------------------------------------------- *)

let check_cmd =
  let cores_arg =
    Arg.(
      value & opt int 3
      & info [ "cores" ] ~docv:"N" ~doc:"Cores in the small model (1-8).")
  in
  let blocks_arg =
    Arg.(
      value & opt int 2
      & info [ "blocks" ] ~docv:"K" ~doc:"Cache blocks in the small model.")
  in
  let regions_arg =
    Arg.(
      value & opt int 2
      & info [ "regions" ] ~docv:"R" ~doc:"Predefined WARD region menu size.")
  in
  let depth_arg =
    Arg.(
      value & opt int 8
      & info [ "depth" ] ~docv:"D"
          ~doc:"Exhaustive-exploration depth bound (operations).")
  in
  let store_cap_arg =
    Arg.(
      value & opt int 1
      & info [ "store-cap" ] ~docv:"C"
          ~doc:
            "Stores per (core, block) during exploration; keeps the state \
             space finite.")
  in
  let fuzz_steps_arg =
    Arg.(
      value & opt int 3000
      & info [ "fuzz-steps" ] ~docv:"S"
          ~doc:"Length of the random walk (0 disables fuzzing).")
  in
  let seed_arg =
    Arg.(
      value & opt int64 0x5EEDF00DL
      & info [ "seed" ] ~docv:"X" ~doc:"Random-walk seed (deterministic).")
  in
  let proto_arg =
    Arg.(
      value & opt string "all"
      & info [ "proto"; "p" ]
          ~doc:
            "Configuration: mesi, warden, msi-bus, sisd, equiv (MESI=WARDen \
             lockstep), msi-lockstep (snooping-MSI=MESI data lockstep), or \
             all.")
  in
  let machine_arg =
    Arg.(
      value & opt string "dual"
      & info [ "machine"; "m" ]
          ~doc:
            "Small-model machine: dual (24 cores, the default), single, or \
             mesh (a 32-socket NUMA mesh with 2 cores per socket — 64 cores, \
             so the checker cores span sockets and the directory runs its \
             hierarchical two-level sharer paths).")
  in
  let run cores blocks regions depth store_cap fuzz_steps seed proto machine =
    let open Warden_check in
    let machine =
      match machine with
      | "dual" -> Warden_machine.Config.dual_socket ()
      | "single" -> Warden_machine.Config.single_socket ()
      | "mesh" ->
          Warden_machine.Config.numa_mesh ~sockets:32 ~cores_per_socket:2 ()
      | m -> failwith ("unknown check machine " ^ m)
    in
    let cfgs =
      let mk (f :
               ?cores:int ->
               ?blks:int ->
               ?regions:int ->
               ?store_cap:int ->
               ?machine:Warden_machine.Config.t ->
               unit ->
               Check.cfg) =
        f ~cores ~blks:blocks ~regions ~store_cap ~machine ()
      in
      match proto with
      | "mesi" -> [ mk Check.mesi ]
      | "warden" -> [ mk Check.warden ]
      | "msi-bus" | "msibus" | "msi_bus" -> [ mk Check.msi_bus ]
      | "sisd" -> [ mk Check.sisd ]
      | "equiv" | "equivalence" -> [ mk Check.equivalence ]
      | "msi-lockstep" | "msi_lockstep" -> [ mk Check.msi_lockstep ]
      | "all" ->
          [
            mk Check.mesi;
            mk Check.warden;
            mk Check.msi_bus;
            mk Check.sisd;
            mk Check.equivalence;
            mk Check.msi_lockstep;
          ]
      | p -> failwith ("unknown check configuration " ^ p)
    in
    let one (cfg : Check.cfg) =
      let report engine outcome =
        Format.printf "%-12s %-6s %a@." cfg.Check.name engine Check.pp_outcome
          outcome;
        match outcome with Check.Pass _ -> true | Check.Fail _ -> false
      in
      let ok_bfs = report "explore" (Check.explore cfg ~depth) in
      let ok_fuzz =
        fuzz_steps <= 0
        || report "fuzz"
             (Check.fuzz { cfg with Check.store_cap = 0 } ~steps:fuzz_steps
                ~seed)
      in
      ok_bfs && ok_fuzz
    in
    exit_of_bool (List.for_all one cfgs)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check the coherence protocols: exhaustively explore a small \
          model (and a MESI/WARDen lockstep equivalence mode), then fuzz it \
          with a deterministic random walk. Exits non-zero on any invariant \
          violation, printing a shrunk counterexample trace.")
    Term.(
      const run $ cores_arg $ blocks_arg $ regions_arg $ depth_arg
      $ store_cap_arg $ fuzz_steps_arg $ seed_arg $ proto_arg $ machine_arg)

let all_cmd =
  let run quick jobs sim_domains =
    apply_sim_domains sim_domains;
    exit_of_bool (Experiments.run_all ~quick ?jobs:(cap_jobs jobs) ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table and figure of the evaluation.")
    Term.(const run $ quick_arg $ jobs_arg $ sim_domains_arg)

let main =
  Cmd.group
    (Cmd.info "warden-cli" ~version:"1.0.0"
       ~doc:
         "WARDen (CGO 2023) reproduction: specialized cache coherence for \
          high-level parallel languages.")
    [
      list_cmd;
      bench_cmd;
      serve_cmd;
      profile_cmd;
      table1_cmd;
      table2_cmd;
      fig7_cmd;
      fig8_cmd;
      analysis_cmd;
      fig12_cmd;
      scaling_cmd;
      trace_cmd;
      replay_cmd;
      check_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval' main)
