(* warden-cli: run the paper's experiments and individual benchmarks. *)

open Cmdliner
open Warden_machine
open Warden_sim
open Warden_harness

let machine_of = function
  | "single" -> Config.single_socket ()
  | "dual" -> Config.dual_socket ()
  | "disagg" | "disaggregated" -> Config.disaggregated ()
  | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Config.many_socket ~sockets:n ()
      | _ -> invalid_arg ("unknown machine: " ^ s))

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use reduced problem sizes.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for running independent simulations in parallel \
           (default: $(b,WARDEN_JOBS) or the recommended domain count).")

let machine_arg =
  Arg.(
    value
    & opt string "dual"
    & info [ "machine"; "m" ] ~docv:"MACHINE"
        ~doc:"Machine: single, dual, disagg, or a socket count.")

let exit_of_bool ok = if ok then 0 else 1

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Warden_pbbs.Spec.t) ->
        Printf.printf "%-14s (default scale %8d)  %s\n" s.Warden_pbbs.Spec.name
          s.Warden_pbbs.Spec.default_scale s.Warden_pbbs.Spec.descr)
      Warden_pbbs.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the PBBS-like benchmarks.")
    Term.(const run $ const ())

(* --- bench --------------------------------------------------------------- *)

let bench_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,list)).")
  in
  let proto_arg =
    Arg.(
      value
      & opt string "both"
      & info [ "proto"; "p" ] ~doc:"Protocol: mesi, warden or both.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N" ~doc:"Problem size (default: paper scale).")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers"; "w" ] ~doc:"Worker threads (default: all).")
  in
  let run name proto machine scale workers quick =
    let spec =
      match Warden_pbbs.Suite.find name with
      | Some s -> s
      | None -> failwith ("unknown benchmark " ^ name)
    in
    let config = machine_of machine in
    let one proto =
      let eng = Engine.create config ~proto in
      let scale =
        match scale with Some s -> s | None -> Exp.scale_of ~quick spec
      in
      let t0 = Unix.gettimeofday () in
      let ok = spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL ?workers eng in
      let host = Unix.gettimeofday () -. t0 in
      let ms = Engine.memsys eng in
      let ss = Memsys.sstats ms in
      let ps = Memsys.pstats ms in
      let en = Memsys.energy ms in
      Printf.printf
        "%s/%s on %s: %s in %d cycles (%.2fs host)\n\
        \  instrs %d  IPC %.3f  l1-hits %d  l2-hits %d  misses %d\n\
        \  inv %d  down %d  msgs %d  ward-grants %d  reconciled %d\n\
        \  energy: processor %.3f mJ, network %.3f mJ\n"
        name
        (match proto with `Mesi -> "mesi" | `Warden -> "warden")
        config.Config.name
        (if ok then "verified" else "FAILED VERIFICATION")
        ss.Sstats.cycles host ss.Sstats.instructions (Sstats.ipc ss)
        ss.Sstats.l1_hits ss.Sstats.l2_hits ss.Sstats.priv_misses
        ps.Warden_proto.Pstats.invalidations ps.Warden_proto.Pstats.downgrades
        (Warden_proto.Pstats.total_msgs ps)
        ps.Warden_proto.Pstats.ward_grants ps.Warden_proto.Pstats.recon_blocks
        (Energy.processor_pj en /. 1e9)
        (Energy.network_pj en /. 1e9);
      (ok, ss.Sstats.cycles)
    in
    match proto with
    | "mesi" -> exit_of_bool (fst (one `Mesi))
    | "warden" -> exit_of_bool (fst (one `Warden))
    | "both" ->
        let ok_m, cy_m = one `Mesi in
        let ok_w, cy_w = one `Warden in
        Printf.printf "speedup (mesi/warden): %.3fx\n"
          (float_of_int cy_m /. float_of_int cy_w);
        exit_of_bool (ok_m && ok_w)
    | p -> failwith ("unknown protocol " ^ p)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one benchmark and print its statistics.")
    Term.(
      const run $ name_arg $ proto_arg $ machine_arg $ scale_arg $ workers_arg
      $ quick_arg)

(* --- experiments --------------------------------------------------------- *)

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let table1_cmd =
  simple "table1" "Reproduce Table 1 (simulator latency validation)." (fun () ->
      print_string (Experiments.render_table1 ());
      0)

let table2_cmd =
  simple "table2" "Print the simulated system specifications (Table 2)."
    (fun () ->
      print_string (Experiments.render_table2 ());
      0)

let fig_cmd name doc config title =
  let run quick jobs =
    let sr = Experiments.run_suite ~quick ?jobs ~config:(config ()) () in
    print_string (Experiments.render_perf_energy ~title sr);
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ quick_arg $ jobs_arg)

let fig7_cmd =
  fig_cmd "fig7" "Reproduce Figure 7 (single socket)." Config.single_socket
    "Figure 7: performance and energy gains, single socket"

let fig8_cmd =
  fig_cmd "fig8" "Reproduce Figure 8 (dual socket)." Config.dual_socket
    "Figure 8: performance and energy gains, dual socket"

let analysis_cmd =
  let run quick jobs =
    let sr =
      Experiments.run_suite ~quick ?jobs ~config:(Config.dual_socket ()) ()
    in
    print_string (Experiments.render_fig9 sr);
    print_newline ();
    print_string (Experiments.render_fig10 sr);
    print_newline ();
    print_string (Experiments.render_fig11 sr);
    0
  in
  Cmd.v
    (Cmd.info "analysis"
       ~doc:"Reproduce Figures 9-11 (dual-socket coherence-event analysis).")
    Term.(const run $ quick_arg $ jobs_arg)

let fig12_cmd =
  let run quick jobs =
    let sr =
      Experiments.run_suite ~quick ?jobs
        ~names:Warden_pbbs.Suite.disaggregated_subset
        ~config:(Config.disaggregated ()) ()
    in
    print_string
      (Experiments.render_perf_energy
         ~title:"Figure 12: disaggregated (1 us remote)" sr);
    0
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Reproduce Figure 12 (disaggregated system).")
    Term.(const run $ quick_arg $ jobs_arg)

let scaling_cmd =
  let run quick jobs =
    let names = [ "dmm"; "msort"; "palindrome"; "quickhull" ] in
    print_string (Experiments.render_worker_scaling ~quick ?jobs ~names ());
    print_newline ();
    print_string (Experiments.render_socket_scaling ~quick ?jobs ~names ());
    0
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Worker-count and socket-count scaling studies (7.3).")
    Term.(const run $ quick_arg $ jobs_arg)

let trace_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark to trace.")
  in
  let scale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale"; "s" ] ~docv:"N" ~doc:"Problem size (default: quick).")
  in
  let run name machine scale =
    let spec =
      match Warden_pbbs.Suite.find name with
      | Some s -> s
      | None -> failwith ("unknown benchmark " ^ name)
    in
    let config = machine_of machine in
    let scale =
      match scale with Some s -> s | None -> Exp.scale_of ~quick:true spec
    in
    let eng = Engine.create config ~proto:`Warden in
    let ok, _events, summary =
      Warden_trace.Recorder.record (fun () ->
          spec.Warden_pbbs.Spec.run ~scale ~seed:0x5EEDF00DL eng)
    in
    Format.printf "%s (scale %d) under WARDen: %s@.%a@." name scale
      (if ok then "verified" else "FAILED VERIFICATION")
      Warden_trace.Recorder.pp_summary summary;
    exit_of_bool ok
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a benchmark's access trace and report WARD coverage and \
          the offline region classification.")
    Term.(const run $ name_arg $ machine_arg $ scale_arg)

let all_cmd =
  let run quick jobs = exit_of_bool (Experiments.run_all ~quick ?jobs ()) in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table and figure of the evaluation.")
    Term.(const run $ quick_arg $ jobs_arg)

let main =
  Cmd.group
    (Cmd.info "warden-cli" ~version:"1.0.0"
       ~doc:
         "WARDen (CGO 2023) reproduction: specialized cache coherence for \
          high-level parallel languages.")
    [
      list_cmd;
      bench_cmd;
      table1_cmd;
      table2_cmd;
      fig7_cmd;
      fig8_cmd;
      analysis_cmd;
      fig12_cmd;
      scaling_cmd;
      trace_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval' main)
