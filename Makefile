# Convenience targets mirroring the paper's artifact workflow (Appendix A.5):
#   make all_pbbs                      - every benchmark, both protocols
#   make single_pbbs BENCH=fib         - one benchmark, both protocols
#   make activate_one_socket           - select the single-socket machine
#   make activate_two_socket           - select the dual-socket machine
# The machine selection is a file the other targets read, as in the VM.

BENCH ?= fib
MACHINE_FILE := .machine
MACHINE := $(shell cat $(MACHINE_FILE) 2>/dev/null || echo dual)

.PHONY: all build test check fmt bench bench-quick bench-json bench-compare \
        bench-overhead bench-scaling bench-scale bench-serve bench-replay \
        bench-zoo snap-check serve profile \
        all_pbbs single_pbbs activate_one_socket activate_two_socket \
        examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Deep model-checking sweep across the protocol zoo. MESI, snooping MSI
# and the 2-core SI/SD model close their full reachable state spaces
# (depth 64 far exceeds their closure diameters); WARDen's W states and
# the 3-core SI/SD fence alphabet blow the space up, so those — and the
# two lockstep pairs — run depth-bounded and lean on the long fuzz walk
# for depth. `dune runtest` already runs a faster bounded configuration.
check: build
	dune exec bin/warden_cli.exe -- check -p mesi --depth 64 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p msi-bus --depth 64 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p sisd --cores 2 --depth 64 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p sisd --depth 8 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p warden --depth 8 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p equiv --depth 8 --fuzz-steps 20000
	dune exec bin/warden_cli.exe -- check -p msi-lockstep --depth 8 --fuzz-steps 20000

bench:
	dune exec bench/main.exe

# Reduced-scale pass over every experiment (minutes instead of hours).
bench-quick:
	dune exec bench/main.exe -- quick

# Machine-readable simulator-performance snapshot into BENCH_sim.json
# (host ms/run per kernel plus simulated MIPS); every run also appends a
# one-line record to BENCH_history.jsonl.
bench-json:
	dune exec bench/main.exe -- json

# Regression gate: fail if BENCH_sim.json's sim_mips fell more than 10%
# below the committed BENCH_baseline.json. Run bench-json first.
bench-compare:
	dune exec bench/main.exe -- compare

# Sharded-speedup gate: run the quick suite at sim_domains 1 and 4 and
# fail unless D=4 delivers at least 1.7x the D=1 simulated MIPS with no
# per-kernel regression at D=1. Self-skips (exit 0, with a notice) on
# hosts with fewer than 4 cores, where the gate cannot measure real
# parallelism; CI enforces it on >= 4-core runners.
bench-scaling:
	dune exec bench/main.exe -- scaling

# Many-socket scale study (README "Scaling to 512 cores"): quick kernels
# on 64- to 512-core numa_mesh machines under both protocols. Writes the
# compare-compatible BENCH_scale.json and fails unless WARDen's
# invalidation+downgrade traffic grows strictly slower than MESI's as
# the machine grows.
bench-scale:
	dune exec bench/main.exe -- scale

# Observability overhead gate: snapshot the suite with the event recorder
# off and again at counters level, then fail if counters cost more than
# 3% of simulator throughput (DESIGN.md §12).
bench-overhead:
	dune exec bench/main.exe -- json --obs off
	cp BENCH_sim.json BENCH_obs_off.json
	dune exec bench/main.exe -- json --obs counters
	dune exec bench/main.exe -- compare --overhead BENCH_obs_off.json BENCH_sim.json

# Trace-driven replay gate (README "Snapshotting and replaying a run",
# DESIGN.md §15): record msort's paper-scale commit-order stream, replay
# it with no program model, and fail unless the replayed memory-system
# statistics are byte-identical to the live run's and the replay runs at
# least 2.5x faster end to end. Writes BENCH_replay.json.
bench-replay:
	dune exec bench/main.exe -- replay

# Snapshot bit-identity end to end: snapshot fib's end state, restore it
# into a 1-domain and a 2-domain engine, run one more benchmark round in
# each, and require the resulting snapshots to be byte-identical —
# restore-then-run matches the cold continuation and snapshots are
# D-portable (execution strategy is not simulated state).
snap-check: build
	dune exec bin/warden_cli.exe -- bench fib -m single -p warden \
	  --snapshot-out .snap_base.wsnap
	WARDEN_SIM_DOMAINS=1 dune exec bin/warden_cli.exe -- bench fib -m single \
	  -p warden --snapshot-in .snap_base.wsnap --snapshot-out .snap_d1.wsnap
	WARDEN_SIM_DOMAINS=2 dune exec bin/warden_cli.exe -- bench fib -m single \
	  -p warden --snapshot-in .snap_base.wsnap --snapshot-out .snap_d2.wsnap
	cmp .snap_d1.wsnap .snap_d2.wsnap
	@echo "snap-check: restored D=1 and D=2 continuations are bit-identical"
	@rm -f .snap_base.wsnap .snap_d1.wsnap .snap_d2.wsnap

# Protocol-zoo gate (README "Protocol zoo"): the fig7/8 kernels under
# all four protocols at quick scales into BENCH_zoo.json, failing unless
# WARDen's inv+down traffic on msort is strictly below both MESI's and
# SI/SD's. `bench compare --zoo` re-runs the gate over the snapshot.
bench-zoo:
	dune exec bench/main.exe -- quick zoo

# The serving tier (README "Simulating a serving tier"): an open-loop
# Zipf KV workload against both protocols with the tail-latency report
# and the MESI-vs-WARDen traffic comparison.
serve: build
	dune exec bin/warden_cli.exe -- serve -m $(MACHINE)

# Serving-tier gate: verified results, bit-equal MESI/WARDen outcomes,
# and strictly lower invalidation+downgrade traffic under WARDen; writes
# the compare-compatible BENCH_serve.json snapshot.
bench-serve:
	dune exec bench/main.exe -- serve

# Coherence-event profile of one benchmark (see README "Profiling a
# benchmark"): counts, latency histograms, hottest blocks, WARD regions,
# plus a Chrome trace_event dump.
profile: build
	dune exec bin/warden_cli.exe -- profile $(BENCH) -m $(MACHINE) \
	  --trace-out $(BENCH).trace.json

# Enforce the committed .ocamlformat (requires ocamlformat; CI installs it).
fmt:
	dune build @fmt

activate_one_socket:
	echo single > $(MACHINE_FILE)

activate_two_socket:
	echo dual > $(MACHINE_FILE)

single_pbbs: build
	dune exec bin/warden_cli.exe -- bench $(BENCH) -m $(MACHINE) -p both

all_pbbs: build
	dune exec bin/warden_cli.exe -- $(if $(filter single,$(MACHINE)),fig7,fig8)

examples: build
	dune exec examples/quickstart.exe
	dune exec examples/prime_sieve.exe
	dune exec examples/bfs_search.exe
	dune exec examples/custom_machine.exe

clean:
	dune clean
	rm -f $(MACHINE_FILE)
