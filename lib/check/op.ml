type t =
  | Load of { core : int; blk : int }
  | Store of { core : int; blk : int }
  | Evict of { core : int; blk : int }
  | Region_add of int
  | Region_remove of int
  | Acquire of int
  | Release of int

let to_string = function
  | Load { core; blk } -> Printf.sprintf "load c%d b%d" core blk
  | Store { core; blk } -> Printf.sprintf "store c%d b%d" core blk
  | Evict { core; blk } -> Printf.sprintf "evict c%d b%d" core blk
  | Region_add r -> Printf.sprintf "region-add r%d" r
  | Region_remove r -> Printf.sprintf "region-remove r%d" r
  | Acquire c -> Printf.sprintf "acquire c%d" c
  | Release c -> Printf.sprintf "release c%d" c

let pp fmt op = Format.pp_print_string fmt (to_string op)

(* Region 0 covers the whole checked space; 1 and 2 the two halves, made to
   overlap on one block when [blks] is odd so that a block can sit inside
   two live regions (it must stay W until the last one is removed). Higher
   indices slide a half-width window across the space. *)
let region_blocks ~blks r =
  match r with
  | 0 -> (0, blks)
  | 1 -> (0, (blks + 1) / 2)
  | 2 -> (blks / 2, blks)
  | _ ->
      let w = max 1 (blks / 2) in
      let lo = (r - 3) mod (max 1 (blks - w + 1)) in
      (lo, min blks (lo + w))

let all ~cores ~blks ~regions =
  let acc = ref [] in
  for r = regions - 1 downto 0 do
    acc := Region_add r :: Region_remove r :: !acc
  done;
  for core = cores - 1 downto 0 do
    for blk = blks - 1 downto 0 do
      acc := Load { core; blk } :: Store { core; blk } :: Evict { core; blk } :: !acc
    done
  done;
  !acc

(* The fence alphabet — only [`Self] protocols give acquire/release an
   architectural effect, so the world appends these for those alone (the
   directory and snooping state spaces, and their pinned closure sizes,
   are untouched). *)
let sync ~cores =
  let acc = ref [] in
  for core = cores - 1 downto 0 do
    acc := Acquire core :: Release core :: !acc
  done;
  !acc
