open Warden_mem
open Warden_cache
open Warden_machine
open Warden_proto

type cfg = {
  cores : int;
  blks : int;
  regions : int;
  store_cap : int;
  region_cap : int;
  region_base : int;
  machine : Config.t;
  mk : Fabric.t -> Protocol.t;
}

type line = { mutable pstate : States.pstate; data : Linedata.t }

(* The LLC hashtable is the terminal storage of the small model: lines are
   zero-filled on first touch (`Zero`) and never evicted to a DRAM layer —
   the protocols under test reach memory only through the fabric
   callbacks, so an extra backing level would add latency classification
   without adding checking power. *)
type t = {
  cfg : cfg;
  proto : Protocol.t;
  priv : (int, line) Hashtbl.t array;
  llc : (int, Linedata.t) Hashtbl.t;
  counts : int array array; (* [core].(blk): committed stores *)
  active : int array; (* per region index: live activations *)
  (* Fence monitor for [`Self] protocols: [synced.(c)] — every write core
     [c] has committed is published in the LLC and none of its lines are
     dirty (set by acquire/release, cleared by a store); [fresh.(c)] — the
     core holds no lines at all (set by acquire, cleared by any access).
     Untouched (and excluded from [key]) for other protocol kinds. *)
  synced : bool array;
  fresh : bool array;
  mutable nsteps : int;
}

type result = { latency : int; value : int64 option; accepted : bool }

let cfg t = t.cfg
let proto t = t.proto
let steps t = t.nsteps

(* Interleaving-independent store values: the k-th store by a core to a
   block writes the same value on every path that reaches the same
   per-(core, block) store counts, so canonical states converge across
   reorderings. The encoding is also decodable, which gives the W-block
   containment check its "no out-of-thin-air values" test. *)
let encode ~core ~blk k =
  if k = 0 then 0L
  else Int64.of_int (((((core + 1) * 256) + blk) * 65536) + k)

let decode v =
  if Int64.compare v 0L < 0 || Int64.compare v 0x7FFFFFFFFFFFL > 0 then None
  else
    let v = Int64.to_int v in
    let k = v land 0xFFFF in
    let rest = v lsr 16 in
    let blk = rest land 0xFF in
    let core = (rest lsr 8) - 1 in
    if core < 0 || k = 0 then None else Some (core, blk, k)

let slot_off core = (core land 7) * 8

let probe_of line =
  { Fabric.levels = 2; state = line.pstate; data = line.data }

let mk_fabric ~machine ~(priv : (int, line) Hashtbl.t array)
    ~(llc : (int, Linedata.t) Hashtbl.t) =
  (* Snooping protocols broadcast over every core of the [machine], which
     may be wider than the model's [cores] — absent cores simply hold
     nothing. *)
  let find_priv ~core ~blk =
    if core >= Array.length priv then None
    else Hashtbl.find_opt priv.(core) blk
  in
  let llc_line blk =
    match Hashtbl.find_opt llc blk with
    | Some l -> l
    | None ->
        let l = Linedata.create () in
        Hashtbl.add llc blk l;
        l
  in
  {
    Fabric.config = machine;
    energy = Energy.create ();
    stats = Pstats.create ();
    obs = Warden_obs.Obs.create machine;
    peek_priv = (fun ~core ~blk -> Option.map probe_of (find_priv ~core ~blk));
    invalidate_priv =
      (fun ~core ~blk ->
        match find_priv ~core ~blk with
        | None -> None
        | Some line ->
            Hashtbl.remove priv.(core) blk;
            Some (probe_of line));
    downgrade_priv =
      (fun ~core ~blk ->
        match find_priv ~core ~blk with
        | None -> None
        | Some line ->
            line.pstate <- States.P_S;
            Some (probe_of line));
    iter_priv =
      (fun ~core f ->
        if core < Array.length priv then
          Hashtbl.iter (fun blk _ -> f blk) priv.(core));
    read_shared =
      (fun ~blk ->
        match Hashtbl.find_opt llc blk with
        | Some l -> (Linedata.bytes l, `L3)
        | None -> (Linedata.bytes (llc_line blk), `Zero));
    llc_merge = (fun ~blk src -> Linedata.merge_masked ~dst:(llc_line blk) ~src);
    llc_put_full =
      (fun ~blk bytes ->
        let l = Linedata.of_bytes (Bytes.copy bytes) in
        Linedata.mark_all_dirty l;
        Hashtbl.replace llc blk l);
  }

let create cfg =
  if cfg.cores < 1 || cfg.cores > 8 then
    invalid_arg "World.create: cores must be in 1..8";
  if cfg.blks < 1 || cfg.blks > 256 then
    invalid_arg "World.create: blks must be in 1..256";
  let priv = Array.init cfg.cores (fun _ -> Hashtbl.create 16) in
  let llc = Hashtbl.create 64 in
  let fabric = mk_fabric ~machine:cfg.machine ~priv ~llc in
  {
    cfg;
    proto = cfg.mk fabric;
    priv;
    llc;
    counts = Array.make_matrix cfg.cores cfg.blks 0;
    active = Array.make (max 1 cfg.regions) 0;
    synced = Array.make cfg.cores true;
    fresh = Array.make cfg.cores true;
    nsteps = 0;
  }

let copy t =
  let priv =
    Array.map
      (fun tbl ->
        let fresh = Hashtbl.create 16 in
        Hashtbl.iter
          (fun blk line ->
            Hashtbl.add fresh blk
              { pstate = line.pstate; data = Linedata.copy line.data })
          tbl;
        fresh)
      t.priv
  in
  let llc = Hashtbl.create 16 in
  Hashtbl.iter (fun blk l -> Hashtbl.add llc blk (Linedata.copy l)) t.llc;
  let fabric = mk_fabric ~machine:t.cfg.machine ~priv ~llc in
  {
    cfg = t.cfg;
    proto = Protocol.copy t.proto ~fabric;
    priv;
    llc;
    counts = Array.map Array.copy t.counts;
    active = Array.copy t.active;
    synced = Array.copy t.synced;
    fresh = Array.copy t.fresh;
    nsteps = t.nsteps;
  }

let region_range t r =
  let lo_b, hi_b = Op.region_blocks ~blks:t.cfg.blks r in
  ( Addr.base_of_block (t.cfg.region_base + lo_b),
    Addr.base_of_block (t.cfg.region_base + hi_b) )

let is_self t = Protocol.kind t.proto = `Self

let enabled t =
  let base = Op.all ~cores:t.cfg.cores ~blks:t.cfg.blks ~regions:t.cfg.regions in
  let alphabet =
    if is_self t then base @ Op.sync ~cores:t.cfg.cores else base
  in
  List.filter
    (fun op ->
      match op with
      | Op.Load { core; blk } -> not (Hashtbl.mem t.priv.(core) blk)
      | Op.Store { core; blk } ->
          t.cfg.store_cap <= 0 || t.counts.(core).(blk) < t.cfg.store_cap
      | Op.Evict { core; blk } -> Hashtbl.mem t.priv.(core) blk
      | Op.Region_add r -> t.active.(r) < t.cfg.region_cap
      | Op.Region_remove r -> t.active.(r) > 0
      (* Fences are idempotent; only explore ones that can change state. *)
      | Op.Acquire c -> not t.fresh.(c)
      | Op.Release c -> not t.synced.(c))
    alphabet

let install t ~core ~blk (g : Mesi.grant) =
  if not (Mesi.has_fill g) then
    failwith "Check.World: miss grant carried no data";
  let line = { pstate = g.Mesi.pstate; data = Linedata.create () } in
  Linedata.fill_from line.data g.Mesi.fill;
  Hashtbl.replace t.priv.(core) blk line;
  line

let apply t op =
  t.nsteps <- t.nsteps + 1;
  let self = is_self t in
  match op with
  | Op.Load { core; blk } ->
      if self then t.fresh.(core) <- false;
      let line, latency =
        match Hashtbl.find_opt t.priv.(core) blk with
        | Some line -> (line, 0) (* every pstate permits a read *)
        | None ->
            let g =
              Protocol.handle_request t.proto ~core ~blk ~write:false
                ~holds_s:false
            in
            (install t ~core ~blk g, g.Mesi.latency)
      in
      let v = Linedata.load line.data ~off:(slot_off core) ~size:8 in
      { latency; value = Some v; accepted = true }
  | Op.Store { core; blk } ->
      if self then begin
        t.fresh.(core) <- false;
        t.synced.(core) <- false
      end;
      let line, latency =
        match Hashtbl.find_opt t.priv.(core) blk with
        | Some line -> (
            match line.pstate with
            | States.P_M -> (line, 0)
            | States.P_E ->
                (* silent E->M upgrade, as in the simulator *)
                line.pstate <- States.P_M;
                (line, 0)
            | States.P_S ->
                let g =
                  Protocol.handle_request t.proto ~core ~blk ~write:true
                    ~holds_s:true
                in
                if Mesi.has_fill g then
                  Linedata.fill_from line.data g.Mesi.fill;
                line.pstate <- g.Mesi.pstate;
                (line, g.Mesi.latency))
        | None ->
            let g =
              Protocol.handle_request t.proto ~core ~blk ~write:true
                ~holds_s:false
            in
            (install t ~core ~blk g, g.Mesi.latency)
      in
      t.counts.(core).(blk) <- t.counts.(core).(blk) + 1;
      let v = encode ~core ~blk t.counts.(core).(blk) in
      Linedata.store line.data ~off:(slot_off core) ~size:8 v;
      (match line.pstate with
      | States.P_M -> ()
      | States.P_E -> line.pstate <- States.P_M
      | States.P_S -> failwith "Check.World: store granted only S");
      { latency; value = Some v; accepted = true }
  | Op.Evict { core; blk } -> (
      match Hashtbl.find_opt t.priv.(core) blk with
      | None -> { latency = 0; value = None; accepted = false }
      | Some line ->
          Hashtbl.remove t.priv.(core) blk;
          Protocol.handle_evict t.proto ~core ~blk ~pstate:line.pstate
            ~data:line.data;
          { latency = 0; value = None; accepted = true })
  | Op.Region_add r ->
      let lo, hi = region_range t r in
      let ok = Protocol.region_add t.proto ~lo ~hi in
      if ok then t.active.(r) <- t.active.(r) + 1;
      { latency = 0; value = None; accepted = ok }
  | Op.Region_remove r ->
      let lo, hi = region_range t r in
      let latency = Protocol.region_remove t.proto ~lo ~hi in
      if t.active.(r) > 0 then t.active.(r) <- t.active.(r) - 1;
      { latency; value = None; accepted = true }
  | Op.Acquire core ->
      let latency = Protocol.acquire t.proto ~core in
      if self then begin
        t.fresh.(core) <- true;
        t.synced.(core) <- true
      end;
      { latency; value = None; accepted = true }
  | Op.Release core ->
      let latency = Protocol.release t.proto ~core in
      if self then t.synced.(core) <- true;
      { latency; value = None; accepted = true }

(* ---- invariants ---------------------------------------------------------- *)

let holders t blk =
  let acc = ref [] in
  for core = t.cfg.cores - 1 downto 0 do
    if Hashtbl.mem t.priv.(core) blk then acc := core :: !acc
  done;
  !acc

let oracle t ~blk ~slot = encode ~core:slot ~blk t.counts.(slot).(blk)

(* The value a fresh miss would observe for one slot: the LLC line if
   present, zero otherwise (untouched lines are known all-zero). *)
let effective_slot t ~blk ~slot =
  match Hashtbl.find_opt t.llc blk with
  | Some l -> Linedata.load l ~off:(slot_off slot) ~size:8
  | None -> 0L

(* May value [v] legitimately sit in slot [slot] of block [blk]? Inside a
   WARD region, a stale copy may lag, but any value it shows must be a
   historical oracle value of that very slot. *)
let in_history t ~blk ~slot v =
  if Int64.equal v 0L then true
  else
    match decode v with
    | Some (core, b, k) ->
        core = slot && b = blk && k >= 1 && k <= t.counts.(slot).(blk)
    | None -> false

let pstate_name = function
  | States.P_S -> "S"
  | States.P_E -> "E"
  | States.P_M -> "M"

let check t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let self = is_self t in
  for blk = 0 to t.cfg.blks - 1 do
    let v = Protocol.observe t.proto ~blk in
    let ward = Protocol.is_ward t.proto ~blk in
    let hs = holders t blk in
    let show_cores cs = String.concat "," (List.map string_of_int cs) in
    (* 1. directory / private-cache agreement. A [`Self] protocol has no
       directory — its [observe] is reconstructed from the very caches we
       would compare it against, so the check is vacuous there. *)
    (if not self then
    match v.Protocol.bv_state with
    | States.D_I ->
        if hs <> [] then
          err "blk %d: directory I but copies at [%s]" blk (show_cores hs)
    | States.D_E | States.D_M ->
        let s = if v.Protocol.bv_state = States.D_E then "E" else "M" in
        if v.Protocol.bv_owner < 0 then
          err "blk %d: directory %s without an owner" blk s;
        if hs <> [ v.Protocol.bv_owner ] then
          err "blk %d: directory %s owner %d but copies at [%s]" blk s
            v.Protocol.bv_owner (show_cores hs)
        else begin
          let line = Hashtbl.find t.priv.(v.Protocol.bv_owner) blk in
          match (v.Protocol.bv_state, line.pstate) with
          | _, States.P_S ->
              err "blk %d: directory %s but owner %d holds S" blk s
                v.Protocol.bv_owner
          | States.D_M, States.P_E ->
              err "blk %d: directory M but owner %d holds E" blk
                v.Protocol.bv_owner
          | _ -> ()
        end;
        if v.Protocol.bv_sharers <> [] then
          err "blk %d: directory %s with sharer list [%s]" blk s
            (show_cores v.Protocol.bv_sharers)
    | States.D_S ->
        if hs <> v.Protocol.bv_sharers then
          err "blk %d: directory S sharers [%s] but copies at [%s]" blk
            (show_cores v.Protocol.bv_sharers) (show_cores hs);
        List.iter
          (fun c ->
            match Hashtbl.find_opt t.priv.(c) blk with
            | Some { pstate = States.P_S; _ } | None -> ()
            | Some line ->
                err "blk %d: directory S but core %d holds %s" blk c
                  (pstate_name line.pstate))
          hs
    | States.D_W ->
        if not ward then
          err "blk %d: directory W outside any active WARD region" blk;
        if hs <> v.Protocol.bv_sharers then
          err "blk %d: directory W sharers [%s] but copies at [%s]" blk
            (show_cores v.Protocol.bv_sharers) (show_cores hs);
        List.iter
          (fun c ->
            match Hashtbl.find_opt t.priv.(c) blk with
            | Some { pstate = States.P_S; _ } ->
                err
                  "blk %d: W copy at core %d is S (W grants are \
                   exclusive-like)"
                  blk c
            | _ -> ())
          hs);
    if v.Protocol.bv_state <> States.D_W && v.Protocol.bv_wmulti then
      err "blk %d: w_multi flag survives outside the W state" blk;
    (* 2. SWMR among private copies — exempting W blocks and [`Self]
       protocols wholesale (multiple concurrent writers of disjoint
       sectors are the point of SI/SD). Dirty-S stays in force for
       everyone: an S copy always postdates a flush. *)
    if not (ward || self) then begin
      let exclusive =
        List.filter
          (fun c ->
            match (Hashtbl.find t.priv.(c) blk).pstate with
            | States.P_E | States.P_M -> true
            | States.P_S -> false)
          hs
      in
      match exclusive with
      | [] -> ()
      | [ c ] ->
          if List.length hs > 1 then
            err "blk %d: SWMR violated: exclusive at core %d but copies at [%s]"
              blk c (show_cores hs)
      | cs ->
          err "blk %d: SWMR violated: exclusive copies at [%s]" blk
            (show_cores cs)
    end;
    List.iter
      (fun c ->
        let line = Hashtbl.find t.priv.(c) blk in
        if line.pstate = States.P_S && Linedata.is_dirty line.data then
          err "blk %d: dirty S copy at core %d" blk c)
      hs;
    (* 3. data values against the sequential oracle. W blocks and [`Self]
       protocols share the relaxed regime: a copy must still read its own
       writes, and anything else it shows must be some historical value of
       that slot (no out-of-thin-air data). *)
    let relaxed = ward || self in
    let who = if ward then "W copy" else "SI/SD copy" in
    for slot = 0 to t.cfg.cores - 1 do
      let expect = oracle t ~blk ~slot in
      List.iter
        (fun c ->
          let line = Hashtbl.find t.priv.(c) blk in
          let got = Linedata.load line.data ~off:(slot_off slot) ~size:8 in
          if not relaxed then begin
            if not (Int64.equal got expect) then
              err
                "blk %d: stale data outside WARD: core %d sees %Ld in slot %d, \
                 oracle says %Ld"
                blk c got slot expect
          end
          else if c = slot then begin
            (* read-your-writes inside the region *)
            if not (Int64.equal got expect) then
              err
                "blk %d: %s at core %d lost its own write: slot %d has \
                 %Ld, oracle says %Ld"
                blk who c slot got expect
          end
          else if not (in_history t ~blk ~slot got) then
            err
              "blk %d: %s at core %d holds out-of-thin-air value %Ld in \
               slot %d"
              blk who c got slot)
        hs;
      if self then begin
        (* The LLC is the publication point. Whenever core [slot] holds no
           unflushed (dirty) copy of the block, everything it ever wrote
           there has been merged — the LLC slot must equal the oracle. A
           release fence makes that unconditional ([synced]): this is the
           observable that catches a dropped self-downgrade. *)
        let slot_dirty =
          match Hashtbl.find_opt t.priv.(slot) blk with
          | Some line -> Linedata.is_dirty line.data
          | None -> false
        in
        if (not slot_dirty) || t.synced.(slot) then begin
          let got = effective_slot t ~blk ~slot in
          if not (Int64.equal got expect) then
            err
              "blk %d: LLC lost core %d's write: slot reads %Ld, oracle \
               says %Ld"
              blk slot got expect
        end;
        if t.synced.(slot) && slot_dirty then
          err "blk %d: core %d still dirty after its release fence" blk slot
      end
      else if
        (* With no exclusive owner, the next miss is served from the LLC:
           outside WARD regions that must already be the oracle value. *)
        (not ward)
        && (v.Protocol.bv_state = States.D_I || v.Protocol.bv_state = States.D_S)
      then begin
        let got = effective_slot t ~blk ~slot in
        if not (Int64.equal got expect) then
          err
            "blk %d: memory lost a write: slot %d reads %Ld from the LLC, \
             oracle says %Ld"
            blk slot got expect
      end
    done
  done;
  (* 4. fence postconditions ([`Self] only): an acquire leaves the core
     holding nothing until its next access. *)
  if self then
    for c = 0 to t.cfg.cores - 1 do
      if t.fresh.(c) && Hashtbl.length t.priv.(c) > 0 then
        err "core %d holds lines despite a fresh acquire fence" c
    done;
  List.rev !errs

(* ---- canonical fingerprint ------------------------------------------------ *)

let key t =
  let b = Buffer.create 512 in
  let add_i64 = Buffer.add_int64_le b in
  for blk = 0 to t.cfg.blks - 1 do
    let v = Protocol.observe t.proto ~blk in
    Buffer.add_uint8 b
      (match v.Protocol.bv_state with
      | States.D_I -> 0
      | States.D_S -> 1
      | States.D_E -> 2
      | States.D_M -> 3
      | States.D_W -> 4);
    Buffer.add_uint8 b (v.Protocol.bv_owner + 1);
    Buffer.add_uint8 b
      (List.fold_left (fun m c -> m lor (1 lsl c)) 0 v.Protocol.bv_sharers);
    Buffer.add_uint8 b
      ((if v.Protocol.bv_wmulti then 1 else 0)
      lor if Protocol.is_ward t.proto ~blk then 2 else 0);
    for core = 0 to t.cfg.cores - 1 do
      match Hashtbl.find_opt t.priv.(core) blk with
      | None -> Buffer.add_uint8 b 0
      | Some line ->
          Buffer.add_uint8 b
            (match line.pstate with
            | States.P_S -> 1
            | States.P_E -> 2
            | States.P_M -> 3);
          add_i64 (Linedata.dirty_mask line.data);
          for slot = 0 to t.cfg.cores - 1 do
            add_i64 (Linedata.load line.data ~off:(slot_off slot) ~size:8)
          done
    done;
    (match Hashtbl.find_opt t.llc blk with
    | None -> Buffer.add_uint8 b 0
    | Some l ->
        Buffer.add_uint8 b 1;
        add_i64 (Linedata.dirty_mask l);
        for slot = 0 to t.cfg.cores - 1 do
          add_i64 (Linedata.load l ~off:(slot_off slot) ~size:8)
        done);
    for core = 0 to t.cfg.cores - 1 do
      Buffer.add_uint8 b (min 255 t.counts.(core).(blk))
    done
  done;
  Array.iter (fun a -> Buffer.add_uint8 b (min 255 a)) t.active;
  (* The fence monitor is part of the [`Self] state: two worlds that
     differ only in pending-publication status have different futures. *)
  if is_self t then
    for c = 0 to t.cfg.cores - 1 do
      Buffer.add_uint8 b
        ((if t.synced.(c) then 1 else 0) lor if t.fresh.(c) then 2 else 0)
    done;
  Buffer.contents b

(* ---- equivalence ---------------------------------------------------------- *)

let compare_states a b =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let blks = min a.cfg.blks b.cfg.blks in
  let cores = min a.cfg.cores b.cfg.cores in
  for blk = 0 to blks - 1 do
    let va = Protocol.observe a.proto ~blk
    and vb = Protocol.observe b.proto ~blk in
    if va <> vb then
      err "blk %d: directory views diverge: %s [%s] vs %s [%s]" blk
        (Format.asprintf "%a" Protocol.pp_block_view va)
        (Protocol.name a.proto)
        (Format.asprintf "%a" Protocol.pp_block_view vb)
        (Protocol.name b.proto);
    if Protocol.is_ward a.proto ~blk <> Protocol.is_ward b.proto ~blk then
      err "blk %d: wardness diverges on a checked block" blk;
    for core = 0 to cores - 1 do
      match
        (Hashtbl.find_opt a.priv.(core) blk, Hashtbl.find_opt b.priv.(core) blk)
      with
      | None, None -> ()
      | Some _, None | None, Some _ ->
          err "blk %d: core %d holds a copy under %s only" blk core
            (Protocol.name
               (if Hashtbl.mem a.priv.(core) blk then a.proto else b.proto))
      | Some la, Some lb ->
          if la.pstate <> lb.pstate then
            err "blk %d: core %d state diverges: %s vs %s" blk core
              (pstate_name la.pstate) (pstate_name lb.pstate);
          if not (Bytes.equal (Linedata.bytes la.data) (Linedata.bytes lb.data))
          then err "blk %d: core %d data diverges" blk core;
          if
            not
              (Int64.equal (Linedata.dirty_mask la.data)
                 (Linedata.dirty_mask lb.data))
          then err "blk %d: core %d dirty mask diverges" blk core
    done
  done;
  List.rev !errs

(* Data-only equivalence, for protocols that must agree on memory contents
   but are architecturally free to differ in grant states and costs:
   snooping MSI grants S where directory MESI grants E (both clean, both
   silently upgradeable on this world's store path), and its directory
   view is a reconstruction. Compared: residency, the M-vs-clean state
   class, line bytes, dirty masks, and the effective memory image. *)
let compare_data a b =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let blks = min a.cfg.blks b.cfg.blks in
  let cores = min a.cfg.cores b.cfg.cores in
  let cls = function
    | States.P_M -> "M"
    | States.P_E | States.P_S -> "clean"
  in
  for blk = 0 to blks - 1 do
    for core = 0 to cores - 1 do
      match
        (Hashtbl.find_opt a.priv.(core) blk, Hashtbl.find_opt b.priv.(core) blk)
      with
      | None, None -> ()
      | Some _, None | None, Some _ ->
          err "blk %d: core %d holds a copy under %s only" blk core
            (Protocol.name
               (if Hashtbl.mem a.priv.(core) blk then a.proto else b.proto))
      | Some la, Some lb ->
          if cls la.pstate <> cls lb.pstate then
            err "blk %d: core %d state class diverges: %s vs %s" blk core
              (pstate_name la.pstate) (pstate_name lb.pstate);
          if not (Bytes.equal (Linedata.bytes la.data) (Linedata.bytes lb.data))
          then err "blk %d: core %d data diverges" blk core;
          if
            not
              (Int64.equal (Linedata.dirty_mask la.data)
                 (Linedata.dirty_mask lb.data))
          then err "blk %d: core %d dirty mask diverges" blk core
    done;
    for slot = 0 to cores - 1 do
      let va = effective_slot a ~blk ~slot
      and vb = effective_slot b ~blk ~slot in
      if not (Int64.equal va vb) then
        err "blk %d: effective memory diverges in slot %d: %Ld vs %Ld" blk
          slot va vb
    done
  done;
  List.rev !errs

(* ---- pretty printing ------------------------------------------------------ *)

let dump t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Protocol.dump t.proto);
  let slots line =
    String.concat ","
      (List.init t.cfg.cores (fun s ->
           Printf.sprintf "%Lx" (Linedata.load line ~off:(slot_off s) ~size:8)))
  in
  for core = 0 to t.cfg.cores - 1 do
    Buffer.add_string b (Printf.sprintf "  core %d:" core);
    let entries = ref [] in
    Hashtbl.iter
      (fun blk line -> entries := (blk, line) :: !entries)
      t.priv.(core);
    if !entries = [] then Buffer.add_string b " (empty)";
    List.iter
      (fun (blk, line) ->
        Buffer.add_string b
          (Printf.sprintf " b%d:%s[%s]%s" blk (pstate_name line.pstate)
             (slots line.data)
             (if Linedata.is_dirty line.data then "*" else "")))
      (List.sort compare !entries);
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b "  llc:";
  let lines = ref [] in
  Hashtbl.iter (fun blk l -> lines := (blk, l) :: !lines) t.llc;
  if !lines = [] then Buffer.add_string b " (empty)";
  List.iter
    (fun (blk, l) ->
      Buffer.add_string b
        (Printf.sprintf " b%d:[%s]%s" blk (slots l)
           (if Linedata.is_dirty l then "*" else "")))
    (List.sort compare !lines);
  Buffer.add_char b '\n';
  Buffer.add_string b "  oracle:";
  for blk = 0 to t.cfg.blks - 1 do
    Buffer.add_string b
      (Printf.sprintf " b%d:[%s]" blk
         (String.concat ","
            (List.init t.cfg.cores (fun s ->
                 Printf.sprintf "%Lx" (oracle t ~blk ~slot:s)))))
  done;
  Buffer.add_char b '\n';
  Buffer.contents b
