(** The model checker's small world: a concrete memory system of [cores]
    unbounded private caches and one shared LLC (the terminal storage,
    zero-filled on first touch), driving one packed
    {!Warden_proto.Protocol.t} exactly the way the simulator's memory
    system does (fill on miss, upgrade on an S-held store, silent E→M,
    evict callbacks, region instructions).

    Stores are given deterministic, interleaving-independent values:
    core [c]'s [k]-th store to block [b] always writes [encode c b k] into
    the core's private 8-byte slot of the block (slot [c] at byte offset
    [8c]). Slots make every write single-writer at byte granularity — the
    discipline WARD requires of software — so a sequential oracle (the
    per-slot store counts) pins the expected value of every byte of the
    world at every step, for both protocols, through reconciliation merges.

    {!check} audits, after every operation:
    - directory/private-cache agreement ({!Warden_proto.Protocol.S.observe}
      vs the actual copies), including sharer sets, owner, and the
      [w_multi] flag's scope;
    - SWMR among private copies, exempting blocks inside an active WARD
      region (the documented W-block exemption), and S-copy cleanliness;
    - the data-value invariant: outside WARD regions every private copy
      and (for I/S blocks) the effective memory must equal the oracle;
      inside a WARD region a core must still read its own writes, and any
      other slot it observes must be {e some} historical oracle value
      (no out-of-thin-air data);
    - that a retired region leaves no W state behind (region add/remove
      round-trips restore a reconciled, MESI-consistent state).

    Protocols whose {!Warden_proto.Protocol.S.kind} is [`Self] (SI/SD) are
    driven with the fence operations {!Op.Acquire}/{!Op.Release} appended
    to the alphabet and an acquire/release-aware oracle in place of the
    directory-agreement and SWMR invariants: every copy still reads its
    own writes and shows only historical values of other slots, the LLC
    slot of any core without an unflushed copy equals the oracle, a
    release fence leaves the core clean and fully published, and an
    acquire fence leaves it holding nothing. *)

open Warden_machine
open Warden_proto

type cfg = {
  cores : int;  (** 1..8 (each core owns one 8-byte slot of a 64 B block) *)
  blks : int;  (** blocks 0..blks-1 are loaded/stored and checked *)
  regions : int;  (** size of the predefined region menu (see {!Op}) *)
  store_cap : int;
      (** max stores per (core, block); bounds the canonical state space.
          [<= 0] means unlimited (fuzzing). *)
  region_cap : int;  (** max simultaneous activations per region index *)
  region_base : int;
      (** block offset of the region menu. [0] puts regions over the
          checked blocks; the equivalence mode sets [blks] so that region
          instructions execute but never cover an accessed block. *)
  machine : Config.t;
  mk : Fabric.t -> Protocol.t;  (** the protocol under test *)
}

type t

type result = { latency : int; value : int64 option; accepted : bool }
(** Outcome of one operation: the grant/reconcile latency, the 64-bit
    value a load observed (or a store wrote), and whether a region add
    was accepted by the CAM. *)

val create : cfg -> t
val cfg : t -> cfg
val proto : t -> Protocol.t
val steps : t -> int

val copy : t -> t
(** Fork the whole memory system — caches, LLC, oracle counts, and the
    protocol state (via {!Warden_proto.Protocol.copy}, rebound to the
    fork's fabric). The explorer forks a world per successor instead of
    replaying operation prefixes. *)

val encode : core:int -> blk:int -> int -> int64
(** [encode ~core ~blk k] is the value of core [core]'s [k]-th store to
    block [blk] ([k >= 1]); [0L] is the initial memory value. *)

val enabled : t -> Op.t list
(** The operations worth exploring from the current state: loads that
    miss, stores under the cap, evictions of held lines, region ops within
    their activation bounds. (Pure cache hits and no-op evictions are
    excluded — they cannot change the canonical state.) *)

val apply : t -> Op.t -> result
(** Execute one operation against the protocol, updating the world. *)

val check : t -> string list
(** Audit every invariant; [[]] means the state is clean. *)

val key : t -> string
(** Canonical fingerprint of the complete state (directory views,
    wardness, private copies with data and dirty masks, effective memory,
    store counts, live regions) for BFS memoization. Two states with equal
    keys are indistinguishable to any future operation sequence. *)

val compare_states : t -> t -> string list
(** Differences between two worlds that equivalent protocols must not
    show: per-block directory views, holder sets, private-copy states,
    data, dirty masks, and wardness. Used by the MESI≡WARDen lockstep
    mode on region-free block ranges. *)

val compare_data : t -> t -> string list
(** Data-only divergence between two worlds: residency, the M-vs-clean
    state class, line bytes, dirty masks, and the effective memory image —
    but not exact grant states, directory views, or costs. Used by the
    snooping-MSI ≡ directory-MESI lockstep mode, where MSI grants S on
    paths MESI grants E and both are architecturally correct. *)

val dump : t -> string
(** Pretty-print the full state: protocol dump (directory + region CAM),
    per-core cache contents, LLC lines, effective memory, and the
    oracle's expected values. *)
