(** The model checker's operation alphabet.

    A checking run drives a protocol with sequences of these operations
    over a small model: [cores] cores issuing loads and stores to [blks]
    cache blocks, spontaneous evictions, and WARD region add/remove
    "instructions" over a fixed menu of [regions] predefined block ranges.
    Stores carry no value — the world assigns a deterministic,
    interleaving-independent value (see {!World}), which keeps the
    canonical state space small. *)

type t =
  | Load of { core : int; blk : int }
  | Store of { core : int; blk : int }
  | Evict of { core : int; blk : int }
  | Region_add of int  (** add predefined region range [r] *)
  | Region_remove of int  (** remove predefined region range [r] *)
  | Acquire of int  (** acquire fence by core [c] (self-invalidation) *)
  | Release of int  (** release fence by core [c] (self-downgrade) *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val region_blocks : blks:int -> int -> int * int
(** [region_blocks ~blks r] is the block range [\[lo, hi)] of predefined
    region [r]: region 0 spans all [blks] blocks, regions 1 and 2 the two
    halves (overlapping on an odd block count, which exercises a block
    belonging to several live regions at once). *)

val all : cores:int -> blks:int -> regions:int -> t list
(** Every memory/region operation of the alphabet, in a fixed enumeration
    order. Fence operations are separate ({!sync}) — the world appends
    them only for protocols whose {!Warden_proto.Protocol.S.kind} is
    [`Self], keeping the directory and snooping state spaces (and their
    pinned closure sizes) unchanged. *)

val sync : cores:int -> t list
(** [Acquire c] and [Release c] for every core, in core order. *)
