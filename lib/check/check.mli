(** Model checking and fuzzing for coherence protocols.

    Two engines drive a {!World} (or a lockstep pair of worlds) over the
    {!Op} alphabet:

    - {!explore} enumerates {e every} interleaving of requests, evictions
      and region operations breadth-first up to a depth bound, with
      canonical-state memoization ({!World.key}) so that converging
      interleavings are explored once. Each frontier node carries a forked
      world ({!World.copy}), so a successor costs one fork plus one
      operation — no prefix replay. With a store cap the reachable state
      space is finite; when it closes before the depth bound the report
      says so ([complete = true]) — the small model has been verified
      exhaustively.
    - {!fuzz} takes a long deterministic random walk
      ({!Warden_util.Splitmix}) with unbounded stores, reaching depths BFS
      cannot.

    Both check every invariant after every operation and, on a violation,
    shrink the failing operation sequence to a locally-minimal one
    (prefix truncation, then delta-debugging-style chunk removal to a
    fixpoint) and render a step-by-step trace ending in the full world
    state. *)

open Warden_machine
open Warden_proto

type cfg = {
  name : string;
  cores : int;
  blks : int;
  regions : int;
  store_cap : int;  (** per-(core, block) store bound; [<= 0] = unlimited *)
  region_cap : int;
  machine : Config.t;
  mk : Fabric.t -> Protocol.t;
  lockstep : (Fabric.t -> Protocol.t) option;
      (** When set, a second world runs the same operations and the two are
          compared per-op (latency and observed value of loads/stores) and
          per-state ({!World.compare_states}). Region operations are
          shifted past the accessed blocks so neither protocol puts a
          checked block under WARD — this is the MESI ≡ WARDen
          equivalence mode. *)
  data_only : bool;
      (** Relax a lockstep pair to data equivalence: skip the latency
          comparison and use {!World.compare_data} (residency, state
          class, bytes, memory image) instead of exact state equality.
          The snooping-MSI ≡ MESI mode needs this — bus arbitration costs
          differently than directory hops, and MSI grants S where MESI
          grants E. *)
}

val mesi :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** The MESI baseline alone. Defaults: 3 cores, 2 blocks, 2 regions,
    store cap 1, dual-socket machine. Pass [machine] to close the state
    space on another topology — the scale-smoke model runs the checker
    cores spread across a many-socket machine so the hierarchical
    directory paths (DESIGN.md §14) are the ones explored. *)

val warden :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** WARDen alone, regions over the checked blocks (W states exercised). *)

val msi_bus :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** The snooping shared-bus MSI protocol alone (region instructions retire
    as no-ops, so the explored alphabet matches {!mesi}'s). *)

val sisd :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** SI/SD alone. The world appends {!Op.Acquire}/{!Op.Release} to the
    alphabet and swaps the SWMR/directory invariants for the
    acquire/release-aware oracle (see {!World}). *)

val equivalence :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** MESI and WARDen in lockstep on region-free blocks: both must produce
    identical latencies, values, and cache/directory states. *)

val msi_lockstep :
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** Snooping MSI and directory MESI in lockstep, [data_only]: every
    interleaving must leave both with the same copies, bytes, dirty masks
    and effective memory — the flush-on-snoop discipline keeping the MSI
    LLC exactly where MESI's directory puts it. *)

val of_protocol :
  name:string ->
  mk:(Fabric.t -> Protocol.t) ->
  ?cores:int ->
  ?blks:int ->
  ?regions:int ->
  ?store_cap:int ->
  ?machine:Config.t ->
  unit ->
  cfg
(** A config for an arbitrary protocol constructor — used by the mutation
    tests to check deliberately-broken implementations. *)

type counterexample = {
  ops : Op.t list;  (** shrunk to a locally-minimal failing sequence *)
  violations : string list;  (** invariant failures at the final op *)
  trace : string;  (** step-by-step rendering ending in a full dump *)
}

type outcome =
  | Pass of { states : int; transitions : int; complete : bool }
      (** [states] distinct canonical states, [transitions] edges checked.
          [complete] means the state space closed before the depth bound:
          the whole reachable space was covered. (Always false for
          {!fuzz}, which samples rather than enumerates.) *)
  | Fail of counterexample

val explore : cfg -> depth:int -> outcome
(** Exhaustive exploration of every interleaving up to [depth]
    operations. *)

val fuzz : cfg -> steps:int -> seed:int64 -> outcome
(** One deterministic random walk of [steps] operations. *)

val pp_outcome : Format.formatter -> outcome -> unit
