open Warden_util
open Warden_machine
open Warden_proto

type cfg = {
  name : string;
  cores : int;
  blks : int;
  regions : int;
  store_cap : int;
  region_cap : int;
  machine : Config.t;
  mk : Fabric.t -> Protocol.t;
  lockstep : (Fabric.t -> Protocol.t) option;
  data_only : bool;
}

let base ~name ~mk ~lockstep ?(cores = 3) ?(blks = 2) ?(regions = 2)
    ?(store_cap = 1) ?(machine = Config.dual_socket ()) () =
  {
    name;
    cores;
    blks;
    regions;
    store_cap;
    region_cap = 1;
    machine;
    mk;
    lockstep;
    data_only = false;
  }

let mesi = base ~name:"mesi" ~mk:Protocol.mesi ~lockstep:None

let warden =
  base ~name:"warden" ~mk:Warden_core.Warden.protocol ~lockstep:None

let msi_bus = base ~name:"msi-bus" ~mk:Msi_bus.protocol ~lockstep:None
let sisd = base ~name:"sisd" ~mk:Sisd.protocol ~lockstep:None

let equivalence =
  base ~name:"mesi=warden" ~mk:Warden_core.Warden.protocol
    ~lockstep:(Some Protocol.mesi)

(* Snooping MSI against directory MESI, data-only: the contents they agree
   on are the coherence contract; grant states (S where MESI grants E) and
   costs (bus arbitration vs hop latency) are architecturally free. *)
let msi_lockstep ?cores ?blks ?regions ?store_cap ?machine () =
  {
    (base ~name:"msi-bus=mesi" ~mk:Msi_bus.protocol
       ~lockstep:(Some Protocol.mesi) ?cores ?blks ?regions ?store_cap
       ?machine ())
    with
    data_only = true;
  }

let of_protocol ~name ~mk = base ~name ~mk ~lockstep:None

(* ---- one system under test: a world, or a lockstep pair ------------------ *)

type sys = One of World.t | Two of World.t * World.t

let copy_sys = function
  | One w -> One (World.copy w)
  | Two (a, b) -> Two (World.copy a, World.copy b)

let make cfg =
  let world mk region_base =
    World.create
      {
        World.cores = cfg.cores;
        blks = cfg.blks;
        regions = cfg.regions;
        store_cap = cfg.store_cap;
        region_cap = cfg.region_cap;
        region_base;
        machine = cfg.machine;
        mk;
      }
  in
  match cfg.lockstep with
  | None -> One (world cfg.mk 0)
  (* Lockstep shifts the region menu past the accessed blocks: region
     instructions still execute on both protocols, but no checked block is
     ever under WARD, so the two must agree exactly. The primary (WARDen)
     world drives [enabled] — its region CAM is the one that fills up. *)
  | Some mk2 -> Two (world cfg.mk cfg.blks, world mk2 cfg.blks)

let enabled = function One w | Two (w, _) -> World.enabled w

let describe op (r : World.result) =
  match op with
  | Op.Load _ | Op.Store _ ->
      Printf.sprintf "lat=%d val=%Ld" r.World.latency
        (Option.value ~default:0L r.World.value)
  | Op.Evict _ -> if r.World.accepted then "ok" else "no copy"
  | Op.Region_add _ -> if r.World.accepted then "accepted" else "rejected"
  | Op.Region_remove _ | Op.Acquire _ | Op.Release _ ->
      Printf.sprintf "lat=%d" r.World.latency

(* Apply one op; returns a rendering of the result(s) plus any per-op
   lockstep divergence (cost-and-value equivalence, checked only for the
   memory operations — region instructions and fences are architecturally
   free to differ in cost between the two protocols; [data_only] configs
   skip the latency comparison too). *)
let step cfg sys op =
  match sys with
  | One w -> (describe op (World.apply w op), [])
  | Two (a, b) ->
      let ra = World.apply a op in
      let rb = World.apply b op in
      let errs = ref [] in
      (match op with
      | Op.Load _ | Op.Store _ ->
          if (not cfg.data_only) && ra.World.latency <> rb.World.latency then
            errs :=
              Printf.sprintf "%s: latency diverges: %d (%s) vs %d (%s)"
                (Op.to_string op) ra.World.latency
                (Protocol.name (World.proto a))
                rb.World.latency
                (Protocol.name (World.proto b))
              :: !errs;
          if ra.World.value <> rb.World.value then
            errs :=
              Printf.sprintf "%s: value diverges: %Ld vs %Ld" (Op.to_string op)
                (Option.value ~default:(-1L) ra.World.value)
                (Option.value ~default:(-1L) rb.World.value)
              :: !errs
      | Op.Evict _ | Op.Region_add _ | Op.Region_remove _ | Op.Acquire _
      | Op.Release _ ->
          ());
      ( Printf.sprintf "%s | %s" (describe op ra) (describe op rb),
        List.rev !errs )

let audit cfg = function
  | One w -> World.check w
  | Two (a, b) ->
      World.check a @ World.check b
      @
      if cfg.data_only then World.compare_data a b
      else World.compare_states a b

let key = function One w -> World.key w | Two (a, b) -> World.key a ^ World.key b

let dump = function
  | One w -> World.dump w
  | Two (a, b) ->
      Printf.sprintf "--- %s ---\n%s--- %s ---\n%s"
        (Protocol.name (World.proto a))
        (World.dump a)
        (Protocol.name (World.proto b))
        (World.dump b)

(* ---- counterexamples and shrinking --------------------------------------- *)

type counterexample = {
  ops : Op.t list;
  violations : string list;
  trace : string;
}

type outcome =
  | Pass of { states : int; transitions : int; complete : bool }
  | Fail of counterexample

(* Replay [ops] from scratch; [Some errs] if some step violates an
   invariant (errors of the first failing step), [None] if clean. *)
let run_fails cfg ops =
  let sys = make cfg in
  let rec go = function
    | [] -> None
    | op :: rest -> (
        let _, step_errs = step cfg sys op in
        match step_errs @ audit cfg sys with [] -> go rest | errs -> Some errs)
  in
  go ops

let failing_prefix cfg ops =
  let sys = make cfg in
  let rec go acc = function
    | [] -> None
    | op :: rest ->
        let _, step_errs = step cfg sys op in
        if step_errs @ audit cfg sys <> [] then Some (List.rev (op :: acc))
        else go (op :: acc) rest
  in
  go [] ops

let remove_slice l i n = List.filteri (fun j _ -> j < i || j >= i + n) l

(* Truncate to the first failing prefix, then delta-debug: try removing
   chunks of halving sizes until no single-chunk removal still fails. *)
let shrink cfg ops0 =
  let truncate ops = Option.value (failing_prefix cfg ops) ~default:ops in
  let fails = function [] -> false | ops -> run_fails cfg ops <> None in
  let rec pass ops chunk i =
    if chunk < 1 then ops
    else if i >= List.length ops then pass ops (chunk / 2) 0
    else
      let cand = remove_slice ops i chunk in
      if fails cand then pass (truncate cand) chunk 0
      else pass ops chunk (i + 1)
  in
  let ops0 = truncate ops0 in
  pass ops0 (max 1 (List.length ops0 / 2)) 0

let render cfg ops violations =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "counterexample for %s (%d ops):\n" cfg.name
       (List.length ops));
  let sys = make cfg in
  List.iteri
    (fun i op ->
      let desc, step_errs = step cfg sys op in
      Buffer.add_string b
        (Printf.sprintf "  %2d. %-18s %s\n" (i + 1) (Op.to_string op) desc);
      List.iter
        (fun e -> Buffer.add_string b ("      step: " ^ e ^ "\n"))
        step_errs)
    ops;
  List.iter
    (fun v -> Buffer.add_string b ("  violation: " ^ v ^ "\n"))
    violations;
  Buffer.add_string b "final state:\n";
  Buffer.add_string b (dump sys);
  Buffer.contents b

let counterexample cfg ops =
  let ops = shrink cfg ops in
  let violations = Option.value (run_fails cfg ops) ~default:[] in
  Fail { ops; violations; trace = render cfg ops violations }

(* ---- engines -------------------------------------------------------------- *)

exception Found of Op.t list

(* Breadth-first exploration with canonical-state memoization. Each node
   carries its forked world ({!World.copy}) so successors cost one fork
   plus one operation — no prefix replay — and every state is expanded
   exactly once; peak memory is the two largest consecutive BFS levels.
   Successors discovered at the depth bound are still invariant-checked,
   they just aren't expanded (and clear the [complete] flag). *)
let explore cfg ~depth =
  let init = make cfg in
  match audit cfg init with
  | _ :: _ as errs ->
      Fail { ops = []; violations = errs; trace = render cfg [] errs }
  | [] -> (
      let visited = Hashtbl.create 65536 in
      let q = Queue.create () in
      let transitions = ref 0 in
      let truncated = ref false in
      Hashtbl.replace visited (key init) ();
      Queue.push (init, [], 0) q;
      try
        while not (Queue.is_empty q) do
          let sys, path, d = Queue.pop q in
          if d >= depth then truncated := true
          else
            List.iter
              (fun op ->
                incr transitions;
                let child = copy_sys sys in
                let _, step_errs = step cfg child op in
                let errs = step_errs @ audit cfg child in
                if errs <> [] then raise (Found (List.rev (op :: path)));
                let k = key child in
                if not (Hashtbl.mem visited k) then begin
                  Hashtbl.replace visited k ();
                  Queue.push (child, op :: path, d + 1) q
                end)
              (enabled sys)
        done;
        Pass
          {
            states = Hashtbl.length visited;
            transitions = !transitions;
            complete = not !truncated;
          }
      with Found ops -> counterexample cfg ops)

let fuzz cfg ~steps ~seed =
  let sys = make cfg in
  let rng = Splitmix.make seed in
  let seen = Hashtbl.create 1024 in
  Hashtbl.replace seen (key sys) ();
  let ops_rev = ref [] in
  let executed = ref 0 in
  try
    for _ = 1 to steps do
      match enabled sys with
      | [] -> raise Exit
      | en ->
          let op = List.nth en (Splitmix.int rng (List.length en)) in
          ops_rev := op :: !ops_rev;
          incr executed;
          let _, step_errs = step cfg sys op in
          if step_errs @ audit cfg sys <> [] then
            raise (Found (List.rev !ops_rev));
          Hashtbl.replace seen (key sys) ()
    done;
    Pass
      { states = Hashtbl.length seen; transitions = !executed; complete = false }
  with
  | Found ops -> counterexample cfg ops
  | Exit ->
      Pass
        {
          states = Hashtbl.length seen;
          transitions = !executed;
          complete = false;
        }

let pp_outcome fmt = function
  | Pass { states; transitions; complete } ->
      Format.fprintf fmt "pass: %d states, %d transitions%s" states transitions
        (if complete then ", state space exhausted" else "")
  | Fail { ops; violations = _; trace } ->
      Format.fprintf fmt "FAIL (%d-op counterexample)@.%s" (List.length ops)
        trace
