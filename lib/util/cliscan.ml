type t = {
  positionals : string list;
  flags : (string * string option) list; (* in argv order *)
}

let is_flag tok = String.length tok > 1 && tok.[0] = '-'

let create ?(value_flags = []) argv =
  let takes_value tok = List.exists (List.mem tok) value_flags in
  let rec scan i pos flags =
    if i >= Array.length argv then (List.rev pos, List.rev flags)
    else
      let tok = argv.(i) in
      if not (is_flag tok) then scan (i + 1) (tok :: pos) flags
      else
        match String.index_opt tok '=' with
        | Some eq ->
            let name = String.sub tok 0 eq in
            let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
            scan (i + 1) pos ((name, Some v) :: flags)
        | None ->
            if
              takes_value tok
              && i + 1 < Array.length argv
              && not (is_flag argv.(i + 1))
            then scan (i + 2) pos ((tok, Some argv.(i + 1)) :: flags)
            else scan (i + 1) pos ((tok, None) :: flags)
  in
  let positionals, flags = scan 1 [] [] in
  { positionals; flags }

let positionals t = t.positionals
let has t name = List.mem_assoc name t.flags

let string_flag t aliases =
  List.find_map
    (fun (name, v) -> if List.mem name aliases then v else None)
    t.flags

let int_flag t aliases =
  if not (List.exists (has t) aliases) then None
  else
    match string_flag t aliases with
    | None -> invalid_arg (List.hd aliases ^ ": missing value")
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | _ -> invalid_arg (List.hd aliases ^ ": expected a positive integer"))
