type t = { mutable words : int array; mutable card : int }

let word_bits = 62

let create () = { words = Array.make 1 0; card = 0 }

let ensure t w =
  let n = Array.length t.words in
  if w >= n then begin
    let fresh = Array.make (max (w + 1) (2 * n)) 0 in
    Array.blit t.words 0 fresh 0 n;
    t.words <- fresh
  end

let mem t i =
  let w = i / word_bits in
  w < Array.length t.words && t.words.(w) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  if i < 0 then invalid_arg "Bitset.add";
  if not (mem t i) then begin
    let w = i / word_bits in
    ensure t w;
    t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits));
    t.card <- t.card + 1
  end

let remove t i =
  if mem t i then begin
    let w = i / word_bits in
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits));
    t.card <- t.card - 1
  end

let cardinal t = t.card
let is_empty t = t.card = 0

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let iter t f =
  Array.iteri
    (fun w bits ->
      if bits <> 0 then
        for b = 0 to word_bits - 1 do
          if bits land (1 lsl b) <> 0 then f ((w * word_bits) + b)
        done)
    t.words

let elements t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc

let choose t =
  let found = ref None in
  (try
     iter t (fun i ->
         found := Some i;
         raise Exit)
   with Exit -> ());
  !found

let copy t = { words = Array.copy t.words; card = t.card }

(* Snapshot as the raw word array: [card] is derived but cheap to carry,
   and writing both lets [load] skip a popcount pass. *)
let save t w =
  Bin.w_int_array w t.words;
  Bin.w_int w t.card

let load r =
  let words = Bin.r_int_array r in
  let card = Bin.r_int r in
  if Array.length words = 0 || card < 0 then Bin.corrupt "Bitset: bad snapshot";
  { words; card }
