(* Open-addressing table keyed by non-negative ints, with no deletion:
   linear probing terminates at the first empty slot. Built for hot
   find-or-add lookups (one probe, no closure, no option) where Hashtbl
   would hash twice and walk bucket lists. *)

type 'a t = {
  mutable keys : int array; (* -1 = empty *)
  mutable vals : 'a array;
  mutable used : int;
  mutable shift : int; (* 63 - log2 capacity *)
  dummy : 'a;
}

let initial_lg = 6

(* Odd 63-bit multiplier (SplitMix finalizer constant). *)
let factor = 0x2545F4914F6CDD1D

let create ~dummy () =
  {
    keys = Array.make (1 lsl initial_lg) (-1);
    vals = Array.make (1 lsl initial_lg) dummy;
    used = 0;
    shift = 63 - initial_lg;
    dummy;
  }

let probe t id =
  let keys = t.keys in
  let m = Array.length keys - 1 in
  let i = ref ((id * factor) lsr t.shift) in
  while
    let k = Array.unsafe_get keys !i in
    k <> id && k <> -1
  do
    i := (!i + 1) land m
  done;
  !i

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = Array.length old_keys * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap t.dummy;
  t.shift <- t.shift - 1;
  for i = 0 to Array.length old_keys - 1 do
    let id = old_keys.(i) in
    if id >= 0 then begin
      let j = probe t id in
      t.keys.(j) <- id;
      t.vals.(j) <- old_vals.(i)
    end
  done

let rec find_or_add t id ~make =
  let i = probe t id in
  if Array.unsafe_get t.keys i = id then Array.unsafe_get t.vals i
  else if 2 * (t.used + 1) > Array.length t.keys then begin
    grow t;
    find_or_add t id ~make
  end
  else begin
    let v = make id in
    t.keys.(i) <- id;
    t.vals.(i) <- v;
    t.used <- t.used + 1;
    v
  end

(* Pure probe: no insertion, no growth, no mutation — safe to race with
   a concurrent [find_or_add] from the owning domain (the speculative
   helper domains only ever use the result as a hint). Unlike [probe] it snapshots the
   key array once and masks the start index against that snapshot, so a
   concurrent [grow] swapping the arrays can yield a stale answer but
   never an out-of-bounds access. *)
let find_or t id ~default =
  let keys = t.keys and vals = t.vals in
  let m = Array.length keys - 1 in
  let i = ref ((id * factor) lsr t.shift land m) in
  while
    let k = Array.unsafe_get keys !i in
    k <> id && k <> -1
  do
    i := (!i + 1) land m
  done;
  if Array.unsafe_get keys !i = id && !i < Array.length vals then
    Array.unsafe_get vals !i
  else default

let mem t id = t.keys.(probe t id) = id

let length t = t.used

let iter t f =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let id = Array.unsafe_get keys i in
    if id >= 0 then f id t.vals.(i)
  done

(* Snapshot as (key, value) pairs sorted by key: the host-side slot
   layout (capacity, probe displacements) is reconstructed by reinserting,
   so the byte stream is canonical — two tables holding the same bindings
   snapshot identically regardless of their insertion histories. *)
let save t w ~elt =
  let pairs = ref [] in
  iter t (fun id v -> pairs := (id, v) :: !pairs);
  let pairs =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !pairs
  in
  Bin.w_int w (List.length pairs);
  List.iter
    (fun (id, v) ->
      Bin.w_int w id;
      elt w v)
    pairs

let load r ~dummy ~elt =
  let n = Bin.r_int r in
  if n < 0 then Bin.corrupt "Itab: negative binding count";
  let t = create ~dummy () in
  for _ = 1 to n do
    let id = Bin.r_int r in
    if id < 0 then Bin.corrupt "Itab: negative key";
    let v = elt r in
    ignore (find_or_add t id ~make:(fun _ -> v))
  done;
  t
