(* Flat little-endian binary writer/reader for simulator snapshots and
   recorded access streams (DESIGN.md §15). Everything the simulator
   snapshots is already immediate ints, int64 words, floats or Bytes, so
   the format is fixed-width words plus length-prefixed blobs — bulk
   blits, no tags, no varints. Robustness against truncated or corrupt
   input lives one layer up (Snap's header carries a version and a
   checksum of the payload); the reader here only bounds-checks. *)

type w = { mutable buf : Bytes.t; mutable len : int }

let writer ?(capacity = 4096) () = { buf = Bytes.create (max 16 capacity); len = 0 }

let ensure w extra =
  let need = w.len + extra in
  if need > Bytes.length w.buf then begin
    let cap = ref (2 * Bytes.length w.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let nb = Bytes.create !cap in
    Bytes.blit w.buf 0 nb 0 w.len;
    w.buf <- nb
  end

let w_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xFF));
  w.len <- w.len + 1

let w_i64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let w_int w v = w_i64 w (Int64.of_int v)
let w_float w v = w_i64 w (Int64.bits_of_float v)
let w_bool w b = w_u8 w (if b then 1 else 0)

let w_bytes w b =
  let n = Bytes.length b in
  w_int w n;
  ensure w n;
  Bytes.blit b 0 w.buf w.len n;
  w.len <- w.len + n

let w_string w s = w_bytes w (Bytes.unsafe_of_string s)

let w_int_array w a =
  w_int w (Array.length a);
  ensure w (8 * Array.length a);
  for i = 0 to Array.length a - 1 do
    Bytes.set_int64_le w.buf (w.len + (8 * i)) (Int64.of_int a.(i))
  done;
  w.len <- w.len + (8 * Array.length a)

let w_float_array w a =
  w_int w (Array.length a);
  Array.iter (w_float w) a

let contents w = Bytes.sub w.buf 0 w.len
let length w = w.len

(* --- reader ---------------------------------------------------------------- *)

type r = { data : Bytes.t; mutable pos : int }

exception Corrupt of string

let corrupt what = raise (Corrupt ("Bin: " ^ what))
let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > Bytes.length r.data then corrupt "truncated input"

let r_u8 r =
  need r 1;
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  need r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r = Int64.to_int (r_i64 r)
let r_float r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with 0 -> false | 1 -> true | _ -> corrupt "bad bool"

let r_bytes r =
  let n = r_int r in
  if n < 0 then corrupt "negative blob length";
  need r n;
  let b = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  b

let r_string r = Bytes.unsafe_to_string (r_bytes r)

let r_int_array r =
  let n = r_int r in
  if n < 0 then corrupt "negative array length";
  need r (8 * n);
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- Int64.to_int (Bytes.get_int64_le r.data (r.pos + (8 * i)))
  done;
  r.pos <- r.pos + (8 * n);
  a

let r_float_array r =
  let n = r_int r in
  if n < 0 then corrupt "negative array length";
  Array.init n (fun _ -> r_float r)

let r_pos r = r.pos
let r_left r = Bytes.length r.data - r.pos

(* 63-bit rolling checksum over a byte range: SplitMix64's finalizer
   applied per byte. Cheap, order-sensitive, and catches the single-word
   corruptions a torn snapshot write would produce. *)
let checksum data ~pos ~len =
  let h = ref 0x9E3779B97F4A7C15L in
  for i = pos to pos + len - 1 do
    let x = Int64.add !h (Int64.of_int (Char.code (Bytes.unsafe_get data i))) in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
    h := Int64.logxor x (Int64.shift_right_logical x 31)
  done;
  Int64.to_int (Int64.logand !h 0x7FFFFFFFFFFFFFFFL)
