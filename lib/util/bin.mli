(** Flat little-endian binary writer/reader underlying simulator
    snapshots ([warden.snap]) and recorded access streams
    ([warden.trace]). Fixed-width 64-bit words plus length-prefixed
    blobs: every structure the simulator serializes is already flat
    ints/floats/Bytes, so encoding is bulk blits with no per-element
    dispatch. See DESIGN.md §15. *)

type w
(** Growable write buffer. *)

val writer : ?capacity:int -> unit -> w
val w_u8 : w -> int -> unit
val w_int : w -> int -> unit
val w_i64 : w -> int64 -> unit
val w_float : w -> float -> unit
val w_bool : w -> bool -> unit
val w_bytes : w -> Bytes.t -> unit
val w_string : w -> string -> unit
val w_int_array : w -> int array -> unit
val w_float_array : w -> float array -> unit

val contents : w -> Bytes.t
(** Copy of the bytes written so far. *)

val length : w -> int

type r
(** Bounds-checked reader over an immutable byte buffer. *)

exception Corrupt of string
(** Raised on truncated input, bad lengths, or (one layer up) a failed
    checksum or version mismatch. *)

val reader : Bytes.t -> r
val r_u8 : r -> int
val r_int : r -> int
val r_i64 : r -> int64
val r_float : r -> float
val r_bool : r -> bool
val r_bytes : r -> Bytes.t
val r_string : r -> string
val r_int_array : r -> int array
val r_float_array : r -> float array
val r_pos : r -> int
val r_left : r -> int

val corrupt : string -> 'a
(** [corrupt what] raises {!Corrupt} with a ["Bin: "] prefix. *)

val checksum : Bytes.t -> pos:int -> len:int -> int
(** 63-bit rolling checksum of a byte range (SplitMix64 finalizer per
    byte): order-sensitive, cheap, catches torn-write corruption. *)
