(* Structure-of-arrays binary heap: priorities and insertion sequence
   numbers live in unboxed int arrays, payloads in a parallel option
   array. Compared with an array-of-records heap this avoids one record
   allocation per [add], keeps sift swaps on unboxed ints, and lets
   vacated slots be reset to [None] so popped or cleared payloads are
   never retained by the backing storage. *)

type 'a t = {
  mutable prio : int array;
  mutable seq : int array;
  mutable data : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prio = [||]; seq = [||]; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Entry [i] comes before entry [j] if its priority is smaller, FIFO on
   ties. *)
let before t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let ensure_capacity t =
  let cap = Array.length t.prio in
  if t.size = cap then begin
    let fresh_cap = max 16 (2 * cap) in
    let grow_int a =
      let fresh = Array.make fresh_cap 0 in
      Array.blit a 0 fresh 0 cap;
      fresh
    in
    t.prio <- grow_int t.prio;
    t.seq <- grow_int t.seq;
    (* Fresh slots hold [None]: growing never retains stale payloads. *)
    let fresh = Array.make fresh_cap None in
    Array.blit t.data 0 fresh 0 cap;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~prio payload =
  ensure_capacity t;
  let i = t.size in
  t.prio.(i) <- prio;
  t.seq.(i) <- t.next_seq;
  t.data.(i) <- Some payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

(* Insertion with a caller-supplied sequence number, for sharded run
   queues: the engine hands every enqueue a globally increasing sequence,
   so popping the minimum (prio, seq) across several queues reproduces the
   exact FIFO tie-break order of one shared queue. *)
let add_seq t ~prio ~seq payload =
  ensure_capacity t;
  let i = t.size in
  t.prio.(i) <- prio;
  t.seq.(i) <- seq;
  t.data.(i) <- Some payload;
  t.size <- t.size + 1;
  sift_up t i

let min_prio_or t ~default = if t.size = 0 then default else t.prio.(0)

let min_seq_or t ~default = if t.size = 0 then default else t.seq.(0)

let min_prio t = if t.size = 0 then None else Some t.prio.(0)

let peek t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Some v -> Some (t.prio.(0), v)
    | None -> assert false

let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.prio.(0) <- t.prio.(t.size);
    t.seq.(0) <- t.seq.(t.size);
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    sift_down t 0
  end
  else t.data.(0) <- None

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prio.(0) in
    let payload = t.data.(0) in
    remove_top t;
    match payload with Some v -> Some (prio, v) | None -> assert false
  end

let pop_exn t =
  if t.size = 0 then invalid_arg "Pqueue.pop_exn: empty";
  let payload = t.data.(0) in
  remove_top t;
  match payload with Some v -> v | None -> assert false

let clear t =
  (* Reset the payload slots so cleared entries are unreachable. *)
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0;
  t.next_seq <- 0
