(** Binary min-heap priority queue keyed by integer priorities.

    Drives the discrete-event engine: priorities are cycle timestamps.
    Ties are broken by insertion order (FIFO), which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> prio:int -> 'a -> unit

val add_seq : 'a t -> prio:int -> seq:int -> 'a -> unit
(** Like {!add} but with a caller-supplied tie-break sequence instead of
    the queue's own counter. Sharded consumers (the engine's per-shard run
    queues) pass a globally increasing sequence so that popping the
    minimum [(prio, seq)] across queues reproduces one shared queue's
    FIFO order exactly. Do not mix with {!add} on the same queue unless
    the supplied sequences and the internal counter are kept coherent. *)

val min_prio : 'a t -> int option
(** Priority of the front element without removing it. *)

val min_prio_or : 'a t -> default:int -> int
(** Like {!min_prio} but allocation-free: returns [default] when empty.
    Used on the simulation engine's per-access fast path. *)

val min_seq_or : 'a t -> default:int -> int
(** Tie-break sequence of the front element ([default] when empty). *)

val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option
(** Remove and return the element with the smallest priority (FIFO among
    equal priorities). *)

val pop_exn : 'a t -> 'a
(** Allocation-free {!pop} returning only the payload.
    @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit
(** Empty the queue. Payload slots are reset, so cleared elements are not
    retained by the backing storage. *)
