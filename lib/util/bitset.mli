(** Growable set of small non-negative integers (core ids, sharer sets). *)

type t

val create : unit -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val iter : t -> (int -> unit) -> unit
(** Ascending order. *)

val elements : t -> int list
(** Ascending order. *)

val choose : t -> int option
(** Smallest element. *)

val copy : t -> t

val save : t -> Bin.w -> unit
val load : Bin.r -> t
(** Binary snapshot round trip (DESIGN.md §15). *)
