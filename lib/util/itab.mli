(** Open-addressing hash table keyed by non-negative ints, without
    deletion. One linear probe per lookup; grows at 50% load.

    [dummy] fills empty value slots and is never returned from a hit. *)

type 'a t

val create : dummy:'a -> unit -> 'a t

val find_or_add : 'a t -> int -> make:(int -> 'a) -> 'a
(** [find_or_add t id ~make] returns the value bound to [id], binding
    [make id] first if absent. [id] must be non-negative. *)

val find_or : 'a t -> int -> default:'a -> 'a
(** Pure, allocation-free probe: the value bound to [id], or [default] if
    absent. Mutates nothing, so it is safe as a cross-domain hint probe
    (the caller must treat a possibly stale result as advisory). *)

val mem : 'a t -> int -> bool

val length : 'a t -> int

val iter : 'a t -> (int -> 'a -> unit) -> unit

val save : 'a t -> Bin.w -> elt:(Bin.w -> 'a -> unit) -> unit
(** Write the bindings as (key, value) pairs sorted by key — canonical
    bytes independent of the table's insertion history. *)

val load : Bin.r -> dummy:'a -> elt:(Bin.r -> 'a) -> 'a t
(** Rebuild a table from {!save} output by reinserting each binding. *)
