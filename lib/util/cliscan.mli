(** A small, predictable argv scanner for the bench harness's hand-rolled
    modes (the main CLI uses cmdliner; the harness cannot, because its
    modes predate it and CI scripts depend on their exact shape).

    The scanner fixes a classic hand-rolled-parser bug: a value flag must
    not swallow a following {e flag} as its value. Here a value flag
    consumes the next token only when one exists and does not start with
    ['-']; [--flag=value] is always accepted. Tokens consumed as values
    never appear among the positionals, and unknown or value-less flags
    are dropped alone rather than taking a neighbor with them. *)

type t

val create : ?value_flags:string list list -> string array -> t
(** [create ~value_flags argv] scans [argv] (element 0, the program name,
    is ignored). [value_flags] groups aliases of flags that expect one
    value, e.g. [[["--jobs"; "-j"]; ["--obs"]]]; all other ['-']-prefixed
    tokens are presence-only. *)

val positionals : t -> string list
(** Non-flag tokens that were not consumed as a flag's value, in order. *)

val has : t -> string -> bool
(** Whether a flag (by any single spelling) appeared at all. *)

val string_flag : t -> string list -> string option
(** Value of the first occurrence of any alias in the list, if a value
    was supplied ([--flag value] or [--flag=value]). *)

val int_flag : t -> string list -> int option
(** Like {!string_flag}, parsed as a positive integer. Raises
    [Invalid_argument] when the flag appears with a missing or
    non-positive-integer value — a flag the user typed must not be
    silently ignored. *)
