(** Fixed-capacity event ring: stride-6 records in one flat int array.

    The hot-path recorder for full-mode tracing. [push] writes six ints
    and allocates nothing; when the ring is full the new record is
    rejected (the caller drains into a sink and retries, so records are
    only ever lost once the sink itself is saturated). Draining replays
    records oldest-first and empties the ring. *)

type t

val create : capacity:int -> t
(** Ring holding up to [capacity] records (at least 16). *)

val push :
  t -> code:int -> cycle:int -> core:int -> blk:int -> arg:int -> seq:int ->
  bool
(** Append one record; [false] iff the ring is full (nothing written). *)

val length : t -> int

val drain :
  t ->
  (code:int -> cycle:int -> core:int -> blk:int -> arg:int -> seq:int -> unit) ->
  unit
(** Replay every record oldest-first, then clear the ring. *)
