(* One flat int array, six ints per record: code, cycle, core, blk, arg,
   seq. The sharded engine owns one ring per shard; all pushes happen on
   the commit lane, so no synchronization is needed — the per-shard split
   exists to keep fold order (and therefore sink contents) deterministic
   and documented, not for parallelism. *)

let stride = 6

type t = {
  buf : int array;
  cap : int; (* records *)
  mutable head : int; (* record index of the oldest record *)
  mutable len : int;
}

let create ~capacity =
  let cap = max 16 capacity in
  { buf = Array.make (cap * stride) 0; cap; head = 0; len = 0 }

let push t ~code ~cycle ~core ~blk ~arg ~seq =
  if t.len >= t.cap then false
  else begin
    let i = t.head + t.len in
    let i = if i >= t.cap then i - t.cap else i in
    let o = i * stride in
    let b = t.buf in
    Array.unsafe_set b o code;
    Array.unsafe_set b (o + 1) cycle;
    Array.unsafe_set b (o + 2) core;
    Array.unsafe_set b (o + 3) blk;
    Array.unsafe_set b (o + 4) arg;
    Array.unsafe_set b (o + 5) seq;
    t.len <- t.len + 1;
    true
  end

let length t = t.len

let drain t f =
  for k = 0 to t.len - 1 do
    let i = t.head + k in
    let i = if i >= t.cap then i - t.cap else i in
    let o = i * stride in
    let b = t.buf in
    f ~code:(Array.unsafe_get b o)
      ~cycle:(Array.unsafe_get b (o + 1))
      ~core:(Array.unsafe_get b (o + 2))
      ~blk:(Array.unsafe_get b (o + 3))
      ~arg:(Array.unsafe_get b (o + 4))
      ~seq:(Array.unsafe_get b (o + 5))
  done;
  t.head <- 0;
  t.len <- 0
