(** The coherence-event vocabulary of [warden.obs].

    Every event is identified by a small integer code so recorders and
    sinks can store events in flat int arrays (no per-event allocation on
    the simulator's hot path). The codes form two families:

    - {e access classes} ([l1_hit] .. [upgrade]): one per simulated memory
      access, classified by the level that served it; their value is the
      access latency in simulated cycles.
    - {e coherence events} ([invalidation] .. [recon]): the protocol
      traffic the paper's §7 analysis is built on; their value is
      event-specific (cache levels touched, stall cycles, flushed blocks —
      see {!val-name}'s docstrings below). *)

val l1_hit : int
(** Access served by the L1; value = L1 hit latency. *)

val l2_hit : int
(** Access served by the L2; value = L2 hit latency. *)

val miss : int
(** Private-cache miss served by the directory; value = total latency. *)

val upgrade : int
(** Write to an S copy (permission miss); value = total latency. *)

val invalidation : int
(** A private copy invalidated by the protocol; value = cache levels. *)

val downgrade : int
(** A private copy downgraded to S; value = cache levels. *)

val ward_grant : int
(** A request served in WARD mode (Fig. 5); value = grant latency. *)

val ward_enter : int
(** A WARD region activated ([region_add]); value = blocks spanned. *)

val ward_exit : int
(** A WARD region deactivated; value = blocks flushed by reconciliation. *)

val sb_stall : int
(** Store issued into a full store buffer; value = stall cycles. *)

val recon : int
(** One private copy flushed/merged by reconciliation; value = levels. *)

val count : int
(** Number of event codes; codes are dense in [0, count). *)

val name : int -> string
(** Short stable name ("l1-hit", "inv", ...). Raises on bad codes. *)

val traced : int -> bool
(** Whether full-mode recording stores individual records of this code in
    the ring buffers (hits are summarized only — tracing every hit would
    swamp the rings and the Chrome trace for no analytical value). *)

val duration_event : int -> bool
(** Whether the event's value is a latency, i.e. it renders as a Chrome
    duration ("ph":"X") rather than an instant ("ph":"i"). *)

val heat_class : int -> int
(** Column of the per-block heatmap this event lands in, or [-1] if it is
    not attributed to a block ({!Sink_heatmap} has [heat_classes] columns). *)

val heat_classes : int
val heat_class_name : int -> string
