open Warden_machine

type t = {
  cfg_level : Config.obs_level;
  lvl : int; (* 0 off / 1 counters / 2 full: branch on an int, not a sum *)
  rings : Ring.t array; (* one per shard *)
  shard_of_core : int array;
  counts : int array; (* indexed by event code *)
  sums : int array; (* arg-weighted totals, same indexing *)
  hist : Hist.t;
  heat : Sink_heatmap.t;
  chrome : Sink_chrome.t;
  spec_counts : int array; (* commit / squash / nospec *)
  spec_hist : Hist.t; (* commit depth, one class *)
  mutable now : int;
  mutable seq : int;
}

let ring_capacity = 8192

let create (cfg : Config.t) =
  let lvl =
    match cfg.obs_level with Obs_off -> 0 | Obs_counters -> 1 | Obs_full -> 2
  in
  let shards = Config.num_shards cfg in
  {
    cfg_level = cfg.obs_level;
    lvl;
    rings =
      Array.init shards (fun _ ->
          Ring.create ~capacity:(if lvl >= 2 then ring_capacity else 16));
    shard_of_core =
      Array.init (Config.num_cores cfg) (Config.shard_of_core cfg);
    counts = Array.make Events.count 0;
    sums = Array.make Events.count 0;
    hist = Hist.create ~classes:Events.count;
    heat = Sink_heatmap.create ();
    chrome = Sink_chrome.create ();
    spec_counts = Array.make 3 0;
    spec_hist = Hist.create ~classes:1;
    now = 0;
    seq = 0;
  }

let enabled t = t.lvl >= 1
let full t = t.lvl >= 2
let level t = t.cfg_level
let set_now t now = t.now <- now

let fold t =
  let chrome = t.chrome in
  Array.iter
    (fun ring ->
      Ring.drain ring (fun ~code ~cycle ~core ~blk ~arg ~seq ->
          Sink_chrome.add chrome ~code ~cycle ~core ~blk ~arg ~seq))
    t.rings

(* Ring full: fold everything into the Chrome sink and retry — records are
   only ever lost once the (million-record) Chrome sink itself caps out,
   and then they are counted as dropped there. *)
let push_record t ~code ~core ~blk ~arg =
  let seq = t.seq in
  t.seq <- seq + 1;
  let ring = t.rings.(Array.unsafe_get t.shard_of_core core) in
  if not (Ring.push ring ~code ~cycle:t.now ~core ~blk ~arg ~seq) then begin
    fold t;
    ignore (Ring.push ring ~code ~cycle:t.now ~core ~blk ~arg ~seq)
  end

let bump t code arg =
  Array.unsafe_set t.counts code (Array.unsafe_get t.counts code + 1);
  Array.unsafe_set t.sums code (Array.unsafe_get t.sums code + arg)

let access t ~cls ~core ~blk ~lat =
  if t.lvl >= 1 then begin
    bump t cls lat;
    Hist.add t.hist ~cls lat;
    let hc = Events.heat_class cls in
    if hc >= 0 then Sink_heatmap.touch_block t.heat ~blk ~cls:hc;
    if t.lvl >= 2 && Events.traced cls then
      push_record t ~code:cls ~core ~blk ~arg:lat
  end

let event t ~code ~core ~blk ~arg =
  if t.lvl >= 1 then begin
    bump t code arg;
    if Events.duration_event code then Hist.add t.hist ~cls:code arg;
    let hc = Events.heat_class code in
    if hc >= 0 then begin
      Sink_heatmap.touch_block t.heat ~blk ~cls:hc;
      if code = Events.ward_grant then Sink_heatmap.mark_ward t.heat ~blk
    end;
    if t.lvl >= 2 then push_record t ~code ~core ~blk ~arg
  end

let region t ~core ~lo ~hi ~exit ~flushed =
  if t.lvl >= 1 then begin
    let code = if exit then Events.ward_exit else Events.ward_enter in
    bump t code (if exit then flushed else 0);
    Sink_heatmap.touch_region t.heat ~lo ~hi ~exit ~flushed;
    if t.lvl >= 2 then
      let blk = Warden_mem.Addr.block_of lo in
      let arg =
        if exit then flushed
        else List.length (Warden_mem.Addr.blocks_spanning lo (hi - lo))
      in
      push_record t ~code ~core ~blk ~arg
  end

(* Host-side speculation outcomes (engine commit lane only). Kept apart
   from the deterministic counts/sums/rings above: which accesses get
   speculated depends on host timing, so these may differ run to run and
   must never leak into traces or simulated statistics. *)
let spec t ~outcome ~depth =
  if t.lvl >= 1 then begin
    Array.unsafe_set t.spec_counts outcome
      (Array.unsafe_get t.spec_counts outcome + 1);
    if outcome = 0 then Hist.add t.spec_hist ~cls:0 depth
  end

let spec_count t outcome =
  if outcome < 0 || outcome > 2 then invalid_arg "Obs.spec_count: bad outcome"
  else t.spec_counts.(outcome)

let count t code =
  if code < 0 || code >= Events.count then invalid_arg "Obs.count: bad code"
  else t.counts.(code)

let sum t code =
  if code < 0 || code >= Events.count then invalid_arg "Obs.sum: bad code"
  else t.sums.(code)

let hist t = t.hist
let heat t = t.heat
let chrome t = t.chrome

let render_summary t =
  let buf = Buffer.create 1024 in
  let rows =
    List.filter_map
      (fun code ->
        if t.counts.(code) = 0 then None
        else Some [ Events.name code; string_of_int t.counts.(code) ])
      (List.init Events.count Fun.id)
  in
  Buffer.add_string buf "Event counts\n";
  if rows = [] then Buffer.add_string buf "(no events recorded)\n"
  else Buffer.add_string buf (Warden_util.Table.render ~header:[ "event"; "count" ] ~rows);
  List.iter
    (fun code ->
      let s = Hist.render t.hist ~cls:code ~title:(Events.name code) in
      if s <> "" then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf s
      end)
    [ Events.l1_hit; Events.l2_hit; Events.miss; Events.upgrade;
      Events.ward_grant; Events.sb_stall ];
  Buffer.add_string buf "\nHottest blocks\n";
  Buffer.add_string buf (Sink_heatmap.render_blocks t.heat ~n:16);
  Buffer.add_string buf "\nWARD regions\n";
  Buffer.add_string buf (Sink_heatmap.render_regions t.heat);
  let spec_total = t.spec_counts.(0) + t.spec_counts.(1) + t.spec_counts.(2) in
  if spec_total > 0 then begin
    Buffer.add_string buf
      "\nSpeculation (host-side; not part of the deterministic observables)\n";
    Buffer.add_string buf
      (Warden_util.Table.render
         ~header:[ "outcome"; "count" ]
         ~rows:
           [
             [ "commit"; string_of_int t.spec_counts.(0) ];
             [ "squash"; string_of_int t.spec_counts.(1) ];
             [ "no-spec"; string_of_int t.spec_counts.(2) ];
           ]);
    let s = Hist.render t.spec_hist ~cls:0 ~title:"commit depth (lane pops)" in
    if s <> "" then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf s
    end
  end;
  Buffer.contents buf
