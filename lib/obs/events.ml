(* Event codes are dense small ints so every recorder structure is a flat
   array indexed by code. Keep [count] and the tables below in sync when
   adding codes; test_obs pins the vocabulary. *)

let l1_hit = 0
let l2_hit = 1
let miss = 2
let upgrade = 3
let invalidation = 4
let downgrade = 5
let ward_grant = 6
let ward_enter = 7
let ward_exit = 8
let sb_stall = 9
let recon = 10
let count = 11

let names =
  [|
    "l1-hit";
    "l2-hit";
    "miss";
    "upgrade";
    "inv";
    "down";
    "ward-grant";
    "ward-enter";
    "ward-exit";
    "sb-stall";
    "recon";
  |]

let name code =
  if code < 0 || code >= count then invalid_arg "Events.name: bad code"
  else names.(code)

(* Hits are counted and histogrammed but never stored as individual
   records: they are ~95% of accesses and carry no per-event information
   beyond their (constant) latency. *)
let traced code = code >= miss

let duration_event code =
  code = miss || code = upgrade || code = ward_grant || code = sb_stall

(* Per-block heatmap columns. Misses and upgrades share a column: both are
   "the directory was consulted for this block". *)
let heat_classes = 5

let heat_class code =
  if code = miss || code = upgrade then 0
  else if code = invalidation then 1
  else if code = downgrade then 2
  else if code = ward_grant then 3
  else if code = recon then 4
  else -1

let heat_class_names = [| "misses"; "inv"; "down"; "ward-grant"; "recon" |]

let heat_class_name c =
  if c < 0 || c >= heat_classes then invalid_arg "Events.heat_class_name"
  else heat_class_names.(c)
