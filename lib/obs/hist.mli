(** Log2-bucketed value histograms, one per event class.

    Bucket [b] covers values in [[2^b, 2^(b+1))] (bucket 0 covers
    [[0, 2)]); values beyond the last bucket saturate into it. Updates
    are flat-array increments, so recording a value is allocation-free
    and cheap enough for the per-access hot path. Counts and sums are
    integers: merging or reading at any moment yields the same totals,
    which is what lets the sharded engine fold at commit-quantum
    barriers without perturbing anything observable. *)

type t

val nbuckets : int
(** Buckets per class (32: values up to [2^31] keep full resolution). *)

val create : classes:int -> t

val add : t -> cls:int -> int -> unit
(** Record one value for a class. *)

val bucket_of : int -> int
(** The bucket a value lands in. *)

val get : t -> cls:int -> bucket:int -> int
val count : t -> cls:int -> int
val sum : t -> cls:int -> int

val mean : t -> cls:int -> float
(** Mean recorded value, or 0 when the class is empty. *)

val percentile : t -> cls:int -> float -> float
(** [percentile t ~cls p] estimates the [p]-th percentile ([0. <= p <=
    100.], else [Invalid_argument]) of a class's recorded values by
    linear interpolation within the covering log2 bucket. Returns [0.]
    for an empty class. The estimate is bounded below by the covering
    bucket's lower edge and above by its upper edge, so the relative
    error never exceeds the bucket width — sufficient for p50/p95/p99
    tail reporting. *)

val render : t -> cls:int -> title:string -> string
(** ASCII histogram of a class's non-empty buckets (empty string when the
    class has no samples). *)
