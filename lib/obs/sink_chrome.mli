(** Chrome [trace_event] JSON sink.

    Collects folded ring records into one growable flat array and writes
    them as a [traceEvents] document loadable in [about://tracing] /
    Perfetto. One simulated cycle maps to one trace microsecond.

    Records are sorted by full content — (cycle, code, core, block, arg)
    — before writing, and the emission sequence number is used only as a
    final tiebreaker and never printed. The simulation produces the same
    multiset of events for every [sim_domains], so the written bytes are
    identical across domain counts even though emission order is not. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained records (default [1 lsl 20]); records past
    it are counted in {!dropped} instead of retained. *)

val add :
  t -> code:int -> cycle:int -> core:int -> blk:int -> arg:int -> seq:int ->
  unit

val length : t -> int
(** Retained records. *)

val dropped : t -> int
(** Records discarded because the sink was full. *)

val write : Buffer.t -> runs:(int * string * t) list -> unit
(** [write buf ~runs] appends a complete well-formed trace document for
    [runs = [(pid, process_name, sink); ...]] — one Chrome "process" per
    simulated run, so a MESI and a WARDen run of the same benchmark can
    sit side by side in one trace. *)
