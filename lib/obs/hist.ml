let nbuckets = 32

type t = {
  buckets : int array; (* classes * nbuckets, flat *)
  counts : int array;
  sums : int array;
  classes : int;
}

let create ~classes =
  {
    buckets = Array.make (classes * nbuckets) 0;
    counts = Array.make classes 0;
    sums = Array.make classes 0;
    classes;
  }

let bucket_of v =
  if v < 2 then 0
  else begin
    (* floor(log2 v); latencies are small so the loop is a handful of
       shifts — no float conversion, no allocation. *)
    let b = ref 0 and v = ref v in
    while !v > 1 do
      incr b;
      v := !v lsr 1
    done;
    if !b >= nbuckets then nbuckets - 1 else !b
  end

let add t ~cls v =
  let b = bucket_of v in
  let i = (cls * nbuckets) + b in
  Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1);
  Array.unsafe_set t.counts cls (Array.unsafe_get t.counts cls + 1);
  Array.unsafe_set t.sums cls (Array.unsafe_get t.sums cls + v)

let check_cls t cls =
  if cls < 0 || cls >= t.classes then invalid_arg "Hist: bad class"

let get t ~cls ~bucket =
  check_cls t cls;
  if bucket < 0 || bucket >= nbuckets then invalid_arg "Hist: bad bucket";
  t.buckets.((cls * nbuckets) + bucket)

let count t ~cls =
  check_cls t cls;
  t.counts.(cls)

let sum t ~cls =
  check_cls t cls;
  t.sums.(cls)

let mean t ~cls =
  check_cls t cls;
  if t.counts.(cls) = 0 then 0.
  else float_of_int t.sums.(cls) /. float_of_int t.counts.(cls)

let percentile t ~cls p =
  check_cls t cls;
  if not (p >= 0. && p <= 100.) then invalid_arg "Hist: bad percentile";
  let n = t.counts.(cls) in
  if n = 0 then 0.
  else begin
    (* Walk buckets until the cumulative count covers the target rank,
       then interpolate linearly inside the covering bucket. Exact when
       a class has a single occupied bucket of identical values only up
       to the bucket's width; the log2 layout bounds the relative error
       by the bucket resolution, which is all the tail reporter needs. *)
    let rank = p /. 100. *. float_of_int n in
    let rec go b cum =
      if b >= nbuckets then float_of_int (1 lsl nbuckets)
      else
        let c = t.buckets.((cls * nbuckets) + b) in
        if c = 0 || float_of_int (cum + c) < rank then go (b + 1) (cum + c)
        else begin
          let lo = if b = 0 then 0. else float_of_int (1 lsl b) in
          let hi = float_of_int (1 lsl (b + 1)) in
          let frac = (rank -. float_of_int cum) /. float_of_int c in
          let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
          lo +. (frac *. (hi -. lo))
        end
    in
    go 0 0
  end

let render t ~cls ~title =
  check_cls t cls;
  if t.counts.(cls) = 0 then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "%s (%d samples, mean %.1f)\n" title t.counts.(cls)
         (mean t ~cls));
    let max_count = ref 1 in
    for b = 0 to nbuckets - 1 do
      max_count := max !max_count t.buckets.((cls * nbuckets) + b)
    done;
    for b = 0 to nbuckets - 1 do
      let c = t.buckets.((cls * nbuckets) + b) in
      if c > 0 then begin
        let lo = if b = 0 then 0 else 1 lsl b in
        let hi = 1 lsl (b + 1) in
        let bar = String.make (max 1 (c * 40 / !max_count)) '#' in
        Buffer.add_string buf
          (Printf.sprintf "  [%7d,%8d) %8d %s\n" lo hi c bar)
      end
    done;
    Buffer.contents buf
  end
