(** Per-block and per-region aggregation sink.

    Blocks accumulate one counter per {!Events.heat_class} column (misses,
    invalidations, downgrades, WARD grants, reconciliations); regions —
    keyed by their low address — accumulate activations, deactivations and
    reconciliation-flushed blocks. Rows are dense indices into growable
    flat arrays behind an {!Warden_util.Itab}, so steady-state updates are
    one probe plus one increment and the iteration order used by
    {!render_blocks} is deterministic (sorted). *)

type t

val create : unit -> t

val touch_block : t -> blk:int -> cls:int -> unit
(** Bump block [blk]'s column [cls] (a {!Events.heat_class}). *)

val mark_ward : t -> blk:int -> unit
(** Record that [blk] was covered by a WARD region at some point. *)

val touch_region : t -> lo:int -> hi:int -> exit:bool -> flushed:int -> unit
(** Record a region activation ([exit = false]) or deactivation (with the
    number of blocks reconciliation flushed). *)

val blocks : t -> int
(** Distinct blocks with at least one event. *)

val block_count : t -> blk:int -> cls:int -> int

val top_blocks : t -> n:int -> (int * int array * bool) list
(** The [n] hottest blocks as [(blk, per-class counts, ever-warded)],
    sorted by total event count descending (ties by block number). *)

val regions : t -> (int * int * int * int * int) list
(** Region rows [(lo, hi, enters, exits, flushed_blocks)] sorted by [lo]. *)

val render_blocks : t -> n:int -> string
(** ASCII table of the [n] hottest blocks. *)

val render_regions : t -> string
(** ASCII table of every WARD region seen. *)
