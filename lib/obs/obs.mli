(** Observability facade: the one object the simulator layers talk to.

    An [Obs.t] owns one {!Ring} per engine shard, the shared {!Hist},
    {!Sink_heatmap} and {!Sink_chrome} sinks, and the current simulated
    cycle. All recording happens on the engine's commit lane, which
    drains events in global simulated order for every [sim_domains] — the
    per-shard rings exist so the fold order into the Chrome sink is a
    documented deterministic function of the configuration, not so that
    recording can race.

    Recording never feeds back: no call here mutates simulated state, so
    cycles, statistics and energy are bit-identical across levels. At
    [Obs_off] every entry point is one load + one branch. *)

type t

val create : Warden_machine.Config.t -> t
(** Sized from the config: one ring per {!Warden_machine.Config.num_shards}. *)

val enabled : t -> bool
(** Counters level or above. *)

val full : t -> bool
(** Ring/trace recording active. *)

val level : t -> Warden_machine.Config.obs_level

val set_now : t -> int -> unit
(** Advance the recorder's view of simulated time. The engine calls this
    when the commit lane adopts an event's timestamp; only ring records
    consume it, so paths that cannot ring (plain hits) may skip it. *)

val access : t -> cls:int -> core:int -> blk:int -> lat:int -> unit
(** Record one memory access of class [cls] ({!Events.l1_hit} ..
    {!Events.upgrade}) with its total latency. *)

val event : t -> code:int -> core:int -> blk:int -> arg:int -> unit
(** Record one coherence event ({!Events.invalidation} .. {!Events.recon},
    except the region pair — see {!region}). *)

val region : t -> core:int -> lo:int -> hi:int -> exit:bool -> flushed:int -> unit
(** Record a WARD region activation or deactivation over byte range
    [\[lo, hi)]; [flushed] is the reconciliation flush count (exit only). *)

val spec : t -> outcome:int -> depth:int -> unit
(** Record one speculation outcome from the engine's commit lane:
    [0] committed (with [depth] = lane pops between the speculation's
    publication and its commit, log2-bucketed), [1] squashed and
    re-executed, [2] not speculated (miss/upgrade, or the helper had not
    finished). Off the simulated path entirely: these counters depend on
    host timing, so they live apart from the deterministic counts, sums
    and rings and never appear in traces. At [Obs_off] this is one load
    and one branch. *)

val spec_count : t -> int -> int
(** Occurrences of a speculation outcome (same indexing as {!spec}). *)

val fold : t -> unit
(** Drain every shard ring into the Chrome sink, in shard order. The
    engine calls this at commit-quantum barriers and at the end of a run;
    it is idempotent on empty rings. *)

(** {2 Reading the sinks} *)

val count : t -> int -> int
(** Occurrences of an event code. *)

val sum : t -> int -> int
(** Arg-weighted total of an event code: total latency cycles for access
    classes, total cache levels for invalidations / downgrades — the
    quantity the protocol statistics banks accumulate, so e.g.
    [sum obs Events.invalidation = Pstats.invalidations] exactly. *)

val hist : t -> Hist.t
(** Per-event-class value histograms (class = event code). *)

val heat : t -> Sink_heatmap.t
val chrome : t -> Sink_chrome.t

val render_summary : t -> string
(** Human-readable profile: event counts, latency histograms, hottest
    blocks, WARD region table. *)
