let stride = 6
let default_capacity = 1 lsl 20

type t = {
  mutable buf : int array;
  cap : int; (* records *)
  mutable len : int; (* records *)
  mutable dropped : int;
}

let create ?(capacity = default_capacity) () =
  { buf = Array.make (256 * stride) 0; cap = max 16 capacity; len = 0;
    dropped = 0 }

let add t ~code ~cycle ~core ~blk ~arg ~seq =
  if t.len >= t.cap then t.dropped <- t.dropped + 1
  else begin
    let o = t.len * stride in
    if o >= Array.length t.buf then
      t.buf <- Array.append t.buf (Array.make (Array.length t.buf) 0);
    let b = t.buf in
    b.(o) <- code;
    b.(o + 1) <- cycle;
    b.(o + 2) <- core;
    b.(o + 3) <- blk;
    b.(o + 4) <- arg;
    b.(o + 5) <- seq;
    t.len <- t.len + 1
  end

let length t = t.len
let dropped t = t.dropped

(* Content-first sort key: emission order (seq) differs across
   sim_domains, so it only breaks ties between bit-identical records,
   where the tie is harmless. *)
let compare_records b oa ob =
  let cmp_at off =
    compare (Array.unsafe_get b (oa + off)) (Array.unsafe_get b (ob + off))
  in
  let c = cmp_at 1 in (* cycle *)
  if c <> 0 then c
  else
    let c = cmp_at 0 in (* code *)
    if c <> 0 then c
    else
      let c = cmp_at 2 in (* core *)
      if c <> 0 then c
      else
        let c = cmp_at 3 in (* blk *)
        if c <> 0 then c
        else
          let c = cmp_at 4 in (* arg *)
          if c <> 0 then c else cmp_at 5

let sorted_order t =
  let idx = Array.init t.len (fun i -> i * stride) in
  Array.sort (compare_records t.buf) idx;
  idx

let write_record buf ~pid b o =
  let code = b.(o)
  and cycle = b.(o + 1)
  and core = b.(o + 2)
  and blk = b.(o + 3)
  and arg = b.(o + 4) in
  let name = Events.name code in
  if Events.duration_event code then
    (* [ts, ts+dur): latency-carrying events render as slices. *)
    Buffer.add_string buf
      (Printf.sprintf
         {|,
{"name":"%s","cat":"coh","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"blk":%d}}|}
         name cycle (max 1 arg) pid core blk)
  else
    Buffer.add_string buf
      (Printf.sprintf
         {|,
{"name":"%s","cat":"coh","ph":"i","ts":%d,"s":"t","pid":%d,"tid":%d,"args":{"blk":%d,"n":%d}}|}
         name cycle pid core blk arg)

let write buf ~runs =
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[
{"name":"clock_sync","ph":"M","pid":0,"tid":0,"args":{"unit":"1 cycle = 1 us"}}|};
  List.iter
    (fun (pid, pname, t) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|,
{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}|}
           pid pname);
      let idx = sorted_order t in
      Array.iter (fun o -> write_record buf ~pid t.buf o) idx)
    runs;
  Buffer.add_string buf "\n]}\n"
