open Warden_util

(* Rows live in growable flat arrays; the Itab maps a block (or a region's
   lo address) to its row index. Growth doubles and only happens on the
   first touch of a new block — never on the steady-state path. *)

type t = {
  slots : int ref Itab.t; (* blk -> row; ref shared with nothing else *)
  mutable blks : int array; (* row -> blk *)
  mutable cells : int array; (* row * heat_classes + cls *)
  warded : Bitset.t; (* rows ever covered by a WARD region *)
  mutable rows : int;
  (* regions, keyed by lo *)
  rslots : int ref Itab.t;
  mutable rlo : int array;
  mutable rhi : int array;
  mutable renters : int array;
  mutable rexits : int array;
  mutable rflushed : int array;
  mutable rrows : int;
}

let ncls = Events.heat_classes
let no_row = ref (-1)

let create () =
  {
    slots = Itab.create ~dummy:no_row ();
    blks = Array.make 64 0;
    cells = Array.make (64 * ncls) 0;
    warded = Bitset.create ();
    rows = 0;
    rslots = Itab.create ~dummy:no_row ();
    rlo = Array.make 8 0;
    rhi = Array.make 8 0;
    renters = Array.make 8 0;
    rexits = Array.make 8 0;
    rflushed = Array.make 8 0;
    rrows = 0;
  }

let grow a = Array.append a (Array.make (Array.length a) 0)

let row_of t blk =
  let r = !(Itab.find_or t.slots blk ~default:no_row) in
  if r >= 0 then r
  else begin
    let row = t.rows in
    if row >= Array.length t.blks then begin
      t.blks <- grow t.blks;
      t.cells <- grow t.cells
    end;
    t.blks.(row) <- blk;
    t.rows <- row + 1;
    ignore (Itab.find_or_add t.slots blk ~make:(fun _ -> ref row));
    row
  end

let touch_block t ~blk ~cls =
  let row = row_of t blk in
  let i = (row * ncls) + cls in
  t.cells.(i) <- t.cells.(i) + 1

let mark_ward t ~blk = Bitset.add t.warded (row_of t blk)

let rrow_of t lo =
  let r = !(Itab.find_or t.rslots lo ~default:no_row) in
  if r >= 0 then r
  else begin
    let row = t.rrows in
    if row >= Array.length t.rlo then begin
      t.rlo <- grow t.rlo;
      t.rhi <- grow t.rhi;
      t.renters <- grow t.renters;
      t.rexits <- grow t.rexits;
      t.rflushed <- grow t.rflushed
    end;
    t.rlo.(row) <- lo;
    t.rrows <- row + 1;
    ignore (Itab.find_or_add t.rslots lo ~make:(fun _ -> ref row));
    row
  end

let touch_region t ~lo ~hi ~exit ~flushed =
  let row = rrow_of t lo in
  t.rhi.(row) <- max t.rhi.(row) hi;
  if exit then begin
    t.rexits.(row) <- t.rexits.(row) + 1;
    t.rflushed.(row) <- t.rflushed.(row) + flushed
  end
  else t.renters.(row) <- t.renters.(row) + 1

let blocks t = t.rows

let block_count t ~blk ~cls =
  let r = !(Itab.find_or t.slots blk ~default:no_row) in
  if r < 0 then 0 else t.cells.((r * ncls) + cls)

let row_total t row =
  let s = ref 0 in
  for c = 0 to ncls - 1 do
    s := !s + t.cells.((row * ncls) + c)
  done;
  !s

let top_blocks t ~n =
  let rows = Array.init t.rows Fun.id in
  Array.sort
    (fun a b ->
      let ta = row_total t a and tb = row_total t b in
      if ta <> tb then compare tb ta else compare t.blks.(a) t.blks.(b))
    rows;
  let n = min n t.rows in
  List.init n (fun i ->
      let row = rows.(i) in
      ( t.blks.(row),
        Array.init ncls (fun c -> t.cells.((row * ncls) + c)),
        Bitset.mem t.warded row ))

let regions t =
  List.sort compare
    (List.init t.rrows (fun row ->
         (t.rlo.(row), t.rhi.(row), t.renters.(row), t.rexits.(row),
          t.rflushed.(row))))

let render_blocks t ~n =
  let header =
    "block" :: List.init ncls Events.heat_class_name @ [ "ward?" ]
  in
  let rows =
    List.map
      (fun (blk, cells, ward) ->
        Printf.sprintf "0x%x" blk
        :: List.map string_of_int (Array.to_list cells)
        @ [ (if ward then "yes" else "") ])
      (top_blocks t ~n)
  in
  if rows = [] then "(no block events recorded)\n"
  else Table.render ~header ~rows

let render_regions t =
  let rows =
    List.map
      (fun (lo, hi, enters, exits, flushed) ->
        [
          Printf.sprintf "[0x%x,0x%x)" lo hi;
          string_of_int enters;
          string_of_int exits;
          string_of_int flushed;
        ])
      (regions t)
  in
  if rows = [] then "(no WARD regions recorded)\n"
  else
    Table.render
      ~header:[ "region"; "enters"; "exits"; "flushed blocks" ]
      ~rows
