(** Chunked set-associative cache for the LLC slices.

    Identical per-set semantics to {!Sa} (one LRU clock, MRU-first
    rotation on hits, first-empty-then-LRU victims), but the backing
    arrays are split into fixed-size chunks of sets allocated on first
    insert. Probing an unallocated chunk is a miss — exactly what the
    eager arrays would answer — so simulated results are bit-identical
    while engine construction stops paying for hundreds of megabytes of
    ways the run never touches (the 512-core machines have ~20M LLC
    ways), and a sparse working set stays host-cache resident.

    Only the LLC's operation set is provided; private caches use {!Sa}
    directly. *)

type 'a t

val create : sets:int -> ways:int -> dummy:'a -> 'a t
(** [sets] must be a power of two. [dummy] fills absent ways and is the
    {!peek_or_dummy} miss answer. *)

val sets : 'a t -> int
val ways : 'a t -> int
val set_index : 'a t -> int -> int

val find : 'a t -> int -> 'a option
(** Hit probe with LRU refresh and MRU rotation, as {!Sa.find}. *)

val peek_or_dummy : 'a t -> int -> 'a
(** Pure probe for helper domains: the resident payload, or the cache's
    [dummy] when absent (compare physically against {!dummy}). No
    allocation, no mutation; safe to race with the owning lane — a torn
    view yields a stale payload, never an out-of-bounds access. *)

val dummy : 'a t -> 'a

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** As {!Sa.insert}: refresh in place on hit, else fill/evict and return
    the displaced [(block, payload)]. Materializes the chunk. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Resident blocks in ascending (set, way) order. *)

val population : 'a t -> int

val chunks_allocated : 'a t -> int
(** Chunks materialized so far (the lazy-allocation story, for bench and
    tests). *)

val chunks_total : 'a t -> int

val save : 'a t -> Warden_util.Bin.w -> elt:(Warden_util.Bin.w -> 'a -> unit) -> unit
(** Snapshot only the materialized chunks (tags, recency, resident
    payloads) plus the LRU clock. *)

val restore : 'a t -> Warden_util.Bin.r -> elt:(Warden_util.Bin.r -> 'a) -> unit
(** Overwrite a cache of identical geometry from {!save} output,
    re-materializing exactly the chunks that were allocated at save time
    (unallocated chunks stay misses). Raises [Warden_util.Bin.Corrupt]
    on a geometry mismatch. *)
