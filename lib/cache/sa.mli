(** Generic set-associative cache array with LRU replacement.

    Tracks which blocks are resident and carries an arbitrary payload per
    line (coherence state, data, ...). Used for the private L1/L2 tag
    arrays and the shared L3 slices. Block numbers index the simulated
    physical space ({!Warden_mem.Addr.block_of}).

    Ways live in flat parallel arrays (three [Array.make] calls per
    cache, no per-way records), so creating even a multi-megabyte LLC
    slice is cheap. Payloads are stored unboxed; absent ways hold the
    [dummy] payload supplied at creation. The [way] handle API
    ({!find_way}, {!peek_way}, {!hit}, {!value}) probes without
    allocating: misses return the {!hit}-false sentinel rather than
    [None]. Hits via {!find_way} are rotated to way 0 of their set
    (MRU-first scan order); LRU ordering itself lives in per-way
    timestamps and is unaffected. *)

type 'a t

type way
(** Handle to one way of one set (a flat index). Valid until the set is
    restructured by an {!insert}/{!remove}/{!clear}, or until another
    {!find_way} on the same set rotates its contents. *)

val no_way : way
(** The {!hit}-false sentinel, for initializing stored way fields. *)

val create : sets:int -> ways:int -> dummy:'a -> 'a t
(** [sets] must be a power of two. [dummy] fills absent ways; it is never
    returned from a hit. *)

val sets : 'a t -> int
val ways : 'a t -> int
val capacity_blocks : 'a t -> int

val find_way : 'a t -> int -> way
(** Allocation-free hit probe: refreshes the block's LRU position and
    rotates it to way 0. {!hit} is false on the returned way iff absent. *)

val peek_way : 'a t -> int -> way
(** Pure probe: no LRU refresh, no rotation. *)

val touch_way : 'a t -> way -> unit
(** Refresh the LRU position of a way obtained from {!find_way} or
    {!peek_way} (which must have hit). Does not rotate — safe while other
    way handles into the same set are live. *)

val promote_way : 'a t -> int -> way -> way
(** [promote_way t blk w] replays {!find_way} with the hit way supplied:
    identical LRU-clock tick, rotation to way 0 and recency write, and
    the same returned way. [w] must currently hold [blk]. The sharded
    engine's commit lane uses this to apply a validated speculation whose
    helper already walked the set with {!peek_way}. *)

val peek_victim_way : 'a t -> int -> way
(** The way {!insert} of this (absent) block would fill: the first empty
    way of its set, else the LRU way. Pure — reads only tags and recency,
    so helper domains may race it against the owning lane; a stale answer
    is caught by version validation. *)

val insert_at : 'a t -> int -> way -> 'a -> unit
(** [insert_at t blk w payload] replays {!insert} of a block verified
    absent, with the victim way supplied ({!peek_victim_way},
    revalidated): identical LRU-clock tick and way writes. Whatever
    occupied [w] is overwritten without an eviction callback — matching
    {!insert} call sites that ignore the displaced payload. *)

val hit : way -> bool

val value : 'a t -> way -> 'a
(** Payload of a way that {!hit}. Only valid on a hit. *)

val find : 'a t -> int -> 'a option
(** [find t blk] returns the payload if resident and refreshes its LRU
    position. Allocating wrapper over {!find_way} for cold paths. *)

val peek : 'a t -> int -> 'a option
(** [peek t blk] returns the payload if resident {e without} refreshing its
    LRU position — a pure probe, for fast-path hit tests that must not
    commit any state change. *)

val touch : 'a t -> int -> bool
(** Residency test that refreshes the block's LRU position exactly like
    {!find}, without allocating. *)

val mem : 'a t -> int -> bool
(** Residency test without touching LRU state. *)

val set_index : 'a t -> int -> int
(** The set a block maps to. *)

val would_evict : 'a t -> int -> (int * 'a) option
(** The (block, payload) that {!insert} of this block would displace, if
    the set is full and the block is not already resident. *)

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** [insert t blk payload] makes [blk] resident (replacing the payload if
    already present) and returns the victim evicted to make room, if any. *)

val insert_absent : 'a t -> int -> 'a -> unit
(** {!insert} for a block the caller has just probed absent, discarding
    any eviction: skips the re-probe and the option allocation, with
    identical tick consumption and way writes. *)

val remove : 'a t -> int -> 'a option
(** Invalidate a block, returning its payload if it was resident. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every resident block (no particular order; hit rotation means
    way order is not insertion order). *)

val iter_range : 'a t -> lo_block:int -> hi_block:int -> (int -> 'a -> unit) -> unit
(** Visit resident blocks with number in [\[lo_block, hi_block)]. *)

val population : 'a t -> int

val clear : 'a t -> unit

val save : 'a t -> Warden_util.Bin.w -> elt:(Warden_util.Bin.w -> 'a -> unit) -> unit
(** Snapshot tags, recency and resident payloads exactly — way positions
    included, so a restored cache replays probes bit-identically. *)

val restore : 'a t -> Warden_util.Bin.r -> elt:(Warden_util.Bin.r -> 'a) -> unit
(** Overwrite a cache of identical geometry from {!save} output.
    Raises [Warden_util.Bin.Corrupt] on a geometry mismatch. *)
