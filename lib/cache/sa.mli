(** Generic set-associative cache array with LRU replacement.

    Tracks which blocks are resident and carries an arbitrary payload per
    line (coherence state, data, ...). Used for the private L1/L2 tag
    arrays and the shared L3 slices. Block numbers index the simulated
    physical space ({!Warden_mem.Addr.block_of}). *)

type 'a t

val create : sets:int -> ways:int -> 'a t
(** [sets] must be a power of two. *)

val sets : 'a t -> int
val ways : 'a t -> int
val capacity_blocks : 'a t -> int

val find : 'a t -> int -> 'a option
(** [find t blk] returns the payload if resident and refreshes its LRU
    position. *)

val peek : 'a t -> int -> 'a option
(** [peek t blk] returns the payload if resident {e without} refreshing its
    LRU position — a pure probe, for fast-path hit tests that must not
    commit any state change. *)

val touch : 'a t -> int -> bool
(** Residency test that refreshes the block's LRU position exactly like
    {!find}, without allocating. *)

val mem : 'a t -> int -> bool
(** Residency test without touching LRU state. *)

val set_index : 'a t -> int -> int
(** The set a block maps to. *)

val would_evict : 'a t -> int -> (int * 'a) option
(** The (block, payload) that {!insert} of this block would displace, if
    the set is full and the block is not already resident. *)

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** [insert t blk payload] makes [blk] resident (replacing the payload if
    already present) and returns the victim evicted to make room, if any. *)

val remove : 'a t -> int -> 'a option
(** Invalidate a block, returning its payload if it was resident. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every resident block. *)

val iter_range : 'a t -> lo_block:int -> hi_block:int -> (int -> 'a -> unit) -> unit
(** Visit resident blocks with number in [\[lo_block, hi_block)]. *)

val population : 'a t -> int

val clear : 'a t -> unit
