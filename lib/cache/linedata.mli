(** Data payload of one cache line: 64 bytes plus a byte-granular dirty
    mask (the "byte sectoring" of WARDen §6.1, one mask bit per data byte).

    The mask records which bytes this copy has written since it was filled;
    WARDen's reconciliation merges concurrent copies of a line by writing
    back exactly the masked bytes of each copy. *)

type t

val create : unit -> t
(** All-zero data, clean. *)

val of_bytes : Bytes.t -> t
(** Takes ownership of a 64-byte buffer; clean. *)

val bytes : t -> Bytes.t
(** The underlying buffer (not a copy). *)

val copy : t -> t

val dirty_mask : t -> int64

val is_dirty : t -> bool

val clear_dirty : t -> unit

val mark_all_dirty : t -> unit
(** Set every mask bit (full-line dirty writeback, M-state semantics). *)

val load : t -> off:int -> size:int -> int64
(** Little-endian read of [size] ∈ {1,2,4,8} bytes at byte offset [off]. *)

val store : t -> off:int -> size:int -> int64 -> unit
(** Little-endian write; marks the written bytes dirty. *)

val fill_from : t -> Bytes.t -> unit
(** Overwrite the data with a fresh 64-byte copy and clear the dirty mask
    (a cache fill). *)

val merge_into : t -> Bytes.t -> unit
(** [merge_into t dst] copies [t]'s dirty bytes into [dst]
    (reconciliation / writeback merge at the shared cache). *)

val merge_masked : dst:t -> src:t -> unit
(** Copy [src]'s dirty bytes into [dst]'s data and union the masks
    (merging a flushed private copy into a shared-cache line). *)

val range_mask : off:int -> size:int -> int64
(** Mask with bits [off .. off+size-1] set, expanded outward to the current
    sector granularity. *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot: the 64 data bytes plus the dirty mask (DESIGN.md §15). *)

val load_snap : Warden_util.Bin.r -> t
(** Fresh line from {!save} output. *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite an existing line in place from {!save} output. *)

val set_sector_bytes : int -> unit
(** Set the write-tracking granularity (1, 2, 4 or 8 bytes; default 1).
    The paper uses byte sectoring "to match the smallest granularity in
    software" (§6.1); coarser sectors over-approximate the written range,
    which corrupts reconciliation merges of sub-sector false sharing —
    exposed as an ablation. Global; affects subsequently created masks. *)

val sector_bytes : unit -> int
