open Warden_mem

type t = { mutable data : Bytes.t; mutable dirty : int64 }

let create () = { data = Bytes.make Addr.block_size '\000'; dirty = 0L }

let of_bytes b =
  if Bytes.length b <> Addr.block_size then invalid_arg "Linedata.of_bytes";
  { data = b; dirty = 0L }

let bytes t = t.data

let copy t = { data = Bytes.copy t.data; dirty = t.dirty }

let dirty_mask t = t.dirty
let is_dirty t = t.dirty <> 0L
let clear_dirty t = t.dirty <- 0L
let mark_all_dirty t = t.dirty <- -1L

let sector = ref 1

let set_sector_bytes n =
  match n with
  | 1 | 2 | 4 | 8 -> sector := n
  | _ -> invalid_arg "Linedata.set_sector_bytes"

let sector_bytes () = !sector

let range_mask ~off ~size =
  (* Expand to sector boundaries: coarse sectoring marks every byte of each
     touched sector as written. *)
  let g = !sector in
  let off = off land lnot (g - 1) in
  let size = (size + g - 1) land lnot (g - 1) in
  (* size = 64 would overflow the shift; the block size is 64 so a full-line
     mask only arises from size = block_size. *)
  if size >= 64 then -1L
  else Int64.shift_left (Int64.sub (Int64.shift_left 1L size) 1L) off

let check off size =
  match size with
  | 1 | 2 | 4 | 8 ->
      if off < 0 || off + size > Addr.block_size || off land (size - 1) <> 0
      then invalid_arg "Linedata: bad offset"
  | _ -> invalid_arg "Linedata: bad size"

let load t ~off ~size =
  check off size;
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get t.data off))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data off)) 0xFFFFFFFFL
  | _ -> Bytes.get_int64_le t.data off

let store t ~off ~size v =
  check off size;
  (match size with
  | 1 -> Bytes.set t.data off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le t.data off (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le t.data off v);
  t.dirty <- Int64.logor t.dirty (range_mask ~off ~size)

let fill_from t src =
  Bytes.blit src 0 t.data 0 Addr.block_size;
  t.dirty <- 0L

let merge_into t dst =
  for i = 0 to Addr.block_size - 1 do
    if Int64.logand (Int64.shift_right_logical t.dirty i) 1L = 1L then
      Bytes.set dst i (Bytes.get t.data i)
  done

let save t w =
  Warden_util.Bin.w_bytes w t.data;
  Warden_util.Bin.w_i64 w t.dirty

let load_snap r =
  let data = Warden_util.Bin.r_bytes r in
  if Bytes.length data <> Addr.block_size then
    Warden_util.Bin.corrupt "Linedata: bad line size";
  { data; dirty = Warden_util.Bin.r_i64 r }

let restore t r =
  let data = Warden_util.Bin.r_bytes r in
  if Bytes.length data <> Addr.block_size then
    Warden_util.Bin.corrupt "Linedata: bad line size";
  Bytes.blit data 0 t.data 0 Addr.block_size;
  t.dirty <- Warden_util.Bin.r_i64 r

let merge_masked ~dst ~src =
  for i = 0 to Addr.block_size - 1 do
    if Int64.logand (Int64.shift_right_logical src.dirty i) 1L = 1L then
      Bytes.set dst.data i (Bytes.get src.data i)
  done;
  dst.dirty <- Int64.logor dst.dirty src.dirty
