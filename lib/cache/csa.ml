(* Chunked set-associative cache: Sa's exact per-set semantics (same LRU
   clock, same MRU-first rotation, same victim tie-breaks) over lazily
   allocated chunks of sets. An engine's LLC at the 512-core scaling
   topologies is ~20M ways; materializing those arrays eagerly cost more
   host time than short runs, and the untouched sets also dragged every
   probe through hundreds of megabytes of cold host memory. A chunk is
   allocated on the first insert into any of its sets; a probe of an
   unallocated chunk is a miss, which is exactly what the eager arrays
   would have answered (every way empty) — simulated results are
   bit-identical by construction.

   Only the operations the LLC needs exist here; private caches stay on
   the flat [Sa] arrays, whose single-indirection probes are cheaper and
   whose footprint is small. *)

type 'a chunk = {
  blks : int array; (* -1 = empty *)
  payloads : 'a array;
  last_use : int array;
}

type 'a t = {
  nsets : int;
  nways : int;
  chunk_sets : int; (* sets per chunk, a power of two *)
  chunks : 'a chunk option array;
  dummy : 'a;
  mutable tick : int; (* monotonically increasing LRU clock, whole cache *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* 32 sets per chunk: at 20 ways that is ~15 KB of arrays — big enough to
   amortize the option indirection, small enough that a sparse working
   set touches a few chunks, not the whole slice. *)
let default_chunk_sets = 32

let create ~sets ~ways ~dummy =
  if not (is_pow2 sets) then invalid_arg "Csa.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Csa.create: ways";
  let chunk_sets = min sets default_chunk_sets in
  {
    nsets = sets;
    nways = ways;
    chunk_sets;
    chunks = Array.make (sets / chunk_sets) None;
    dummy;
    tick = 0;
  }

let sets t = t.nsets
let ways t = t.nways
let set_index t blk = blk land (t.nsets - 1)

let chunk_of t set = Array.unsafe_get t.chunks (set / t.chunk_sets)

let materialize t set =
  let ci = set / t.chunk_sets in
  match Array.unsafe_get t.chunks ci with
  | Some c -> c
  | None ->
      let cap = t.chunk_sets * t.nways in
      let c =
        {
          blks = Array.make cap (-1);
          payloads = Array.make cap t.dummy;
          last_use = Array.make cap 0;
        }
      in
      t.chunks.(ci) <- Some c;
      c

(* Base index of [set]'s ways inside its chunk. *)
let base_of t set = set land (t.chunk_sets - 1) * t.nways

(* Pure probe: way offset within the set's chunk, -1 on miss (including
   the unallocated-chunk case — every way of a fresh chunk is empty). *)
let peek_pos c base nways blk =
  let blks = c.blks in
  let last = base + nways in
  let i = ref base in
  while !i < last && Array.unsafe_get blks !i <> blk do
    incr i
  done;
  if !i < last then !i else -1

let swap_ways c a b =
  if a <> b then begin
    let blk = c.blks.(a) and payload = c.payloads.(a) and lu = c.last_use.(a) in
    c.blks.(a) <- c.blks.(b);
    c.payloads.(a) <- c.payloads.(b);
    c.last_use.(a) <- c.last_use.(b);
    c.blks.(b) <- blk;
    c.payloads.(b) <- payload;
    c.last_use.(b) <- lu
  end

(* Hit probe with Sa.find's exact bookkeeping: tick, MRU rotation into
   way 0, recency refresh. *)
let find t blk =
  let set = set_index t blk in
  match chunk_of t set with
  | None -> None
  | Some c ->
      let base = base_of t set in
      let w = peek_pos c base t.nways blk in
      if w < 0 then None
      else begin
        t.tick <- t.tick + 1;
        if w > base then swap_ways c base w;
        Array.unsafe_set c.last_use base t.tick;
        Some (Array.unsafe_get c.payloads base)
      end

(* Pure probe for helper domains: the resident payload, or [dummy] when
   absent — no allocation, no mutation, and safe to race with the owning
   lane (a torn view yields a stale payload, never an out-of-bounds
   access). Compare against [dummy] physically to detect a miss. *)
let peek_or_dummy t blk =
  let set = set_index t blk in
  match chunk_of t set with
  | None -> t.dummy
  | Some c ->
      let base = base_of t set in
      let w = peek_pos c base t.nways blk in
      if w < 0 then t.dummy else Array.unsafe_get c.payloads w

let dummy t = t.dummy

(* Sa.insert's exact semantics: refresh in place on hit; otherwise fill
   the first empty way, or evict the least-recently-used one (first index
   wins ties) and return the displaced entry. *)
let insert t blk payload =
  let set = set_index t blk in
  let c = materialize t set in
  t.tick <- t.tick + 1;
  let base = base_of t set in
  let w = peek_pos c base t.nways blk in
  if w >= 0 then begin
    c.payloads.(w) <- payload;
    c.last_use.(w) <- t.tick;
    None
  end
  else begin
    let best = ref base in
    (try
       for i = base to base + t.nways - 1 do
         if c.blks.(i) = -1 then begin
           best := i;
           raise Exit
         end
         else if c.last_use.(i) < c.last_use.(!best) then best := i
       done
     with Exit -> ());
    let w = !best in
    let evicted =
      if c.blks.(w) = -1 then None else Some (c.blks.(w), c.payloads.(w))
    in
    c.blks.(w) <- blk;
    c.payloads.(w) <- payload;
    c.last_use.(w) <- t.tick;
    evicted
  end

(* Ascending (set, way) over resident blocks — the order Sa.iter visits
   a flat slice in; unallocated chunks hold nothing. *)
let iter t f =
  Array.iter
    (function
      | None -> ()
      | Some c ->
          for i = 0 to Array.length c.blks - 1 do
            let blk = Array.unsafe_get c.blks i in
            if blk <> -1 then f blk c.payloads.(i)
          done)
    t.chunks

let population t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

(* Chunks actually materialized — the host-memory story the lazy layout
   exists for; bench and tests read it. *)
let chunks_allocated t =
  Array.fold_left (fun n c -> match c with Some _ -> n + 1 | None -> n) 0 t.chunks

let chunks_total t = Array.length t.chunks

(* Snapshot: geometry, the LRU clock, then only the materialized chunks
   (index, tags, recency, resident payloads). Restore re-materializes
   exactly those chunks, so the unallocated-chunk-is-miss behaviour — and
   the host-memory footprint — of the original survives the round trip. *)
let save t w ~elt =
  let module B = Warden_util.Bin in
  B.w_int w t.nsets;
  B.w_int w t.nways;
  B.w_int w t.tick;
  B.w_int w (chunks_allocated t);
  Array.iteri
    (fun ci c ->
      match c with
      | None -> ()
      | Some c ->
          B.w_int w ci;
          B.w_int_array w c.blks;
          B.w_int_array w c.last_use;
          for i = 0 to Array.length c.blks - 1 do
            if Array.unsafe_get c.blks i <> -1 then elt w c.payloads.(i)
          done)
    t.chunks

let restore t r ~elt =
  let module B = Warden_util.Bin in
  let sets = B.r_int r and ways = B.r_int r in
  if sets <> t.nsets || ways <> t.nways then B.corrupt "Csa: geometry mismatch";
  t.tick <- B.r_int r;
  Array.fill t.chunks 0 (Array.length t.chunks) None;
  let n = B.r_int r in
  if n < 0 || n > Array.length t.chunks then B.corrupt "Csa: bad chunk count";
  let cap = t.chunk_sets * t.nways in
  for _ = 1 to n do
    let ci = B.r_int r in
    if ci < 0 || ci >= Array.length t.chunks then B.corrupt "Csa: bad chunk index";
    let blks = B.r_int_array r in
    let last_use = B.r_int_array r in
    if Array.length blks <> cap || Array.length last_use <> cap then
      B.corrupt "Csa: bad chunk arrays";
    let payloads = Array.make cap t.dummy in
    for i = 0 to cap - 1 do
      if Array.unsafe_get blks i <> -1 then payloads.(i) <- elt r
    done;
    t.chunks.(ci) <- Some { blks; payloads; last_use }
  done
