(* Ways live in flat parallel arrays (blks / payloads / last_use indexed
   by set * nways + way): creating a cache is three [Array.make] calls,
   not one record per way — an engine's LLC alone has ~half a million
   ways, so per-way records made simulator construction cost as much as
   short runs. Absent ways hold the [dummy] payload supplied at [create];
   no ['a option] boxing anywhere. A hit returns the way's flat index
   ([no_way] = -1 on miss) and rotates the hit into way 0 so the next
   probe of a hot block succeeds on the first comparison. *)

type way = int

let no_way = -1

type 'a t = {
  nsets : int;
  nways : int;
  blks : int array; (* -1 = empty; set s occupies [s*nways, (s+1)*nways) *)
  payloads : 'a array;
  last_use : int array;
  dummy : 'a;
  mutable tick : int; (* monotonically increasing LRU clock *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~sets ~ways ~dummy =
  if not (is_pow2 sets) then invalid_arg "Sa.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Sa.create: ways";
  let cap = sets * ways in
  {
    nsets = sets;
    nways = ways;
    blks = Array.make cap (-1);
    payloads = Array.make cap dummy;
    last_use = Array.make cap 0;
    dummy;
    tick = 0;
  }

let sets t = t.nsets
let ways t = t.nways
let capacity_blocks t = t.nsets * t.nways
let set_index t blk = blk land (t.nsets - 1)
let hit w = w >= 0
let value t w = Array.unsafe_get t.payloads w

(* Pure probe: no LRU refresh, no MRU rotation. Scans with a local loop —
   an inner recursive function here would allocate a closure per probe. *)
let peek_way t blk =
  let base = set_index t blk * t.nways in
  let blks = t.blks in
  let last = base + t.nways in
  let i = ref base in
  while !i < last && Array.unsafe_get blks !i <> blk do incr i done;
  if !i < last then !i else no_way

(* Swap the full contents of two ways. *)
let swap_ways t a b =
  if a <> b then begin
    let blk = t.blks.(a) and payload = t.payloads.(a) and lu = t.last_use.(a) in
    t.blks.(a) <- t.blks.(b);
    t.payloads.(a) <- t.payloads.(b);
    t.last_use.(a) <- t.last_use.(b);
    t.blks.(b) <- blk;
    t.payloads.(b) <- payload;
    t.last_use.(b) <- lu
  end

(* Hit probe: refreshes LRU and rotates the hit into way 0 (MRU-first
   layout), so a re-probe of the same hot block exits on the first
   comparison. LRU ordering is untouched: recency lives in [last_use],
   not in position. *)
let find_way t blk =
  let w = peek_way t blk in
  if w < 0 then no_way
  else begin
    t.tick <- t.tick + 1;
    let base = set_index t blk * t.nways in
    if w > base then swap_ways t base w;
    Array.unsafe_set t.last_use base t.tick;
    base
  end

let touch_way t w =
  t.tick <- t.tick + 1;
  Array.unsafe_set t.last_use w t.tick

(* Known-way replay of [find_way]: identical tick, rotation and recency
   writes, but with the hit way supplied by the caller instead of walked
   for. The sharded engine's commit lane uses this to apply a validated
   speculation — the helper already did the walk with [peek_way], and
   validation guarantees the way is still where the helper saw it. *)
let promote_way t blk w =
  t.tick <- t.tick + 1;
  let base = set_index t blk * t.nways in
  if w > base then swap_ways t base w;
  Array.unsafe_set t.last_use base t.tick;
  base

let find t blk =
  let w = find_way t blk in
  if hit w then Some t.payloads.(w) else None

let peek t blk =
  let w = peek_way t blk in
  if hit w then Some t.payloads.(w) else None

let touch t blk = hit (find_way t blk)
let mem t blk = hit (peek_way t blk)

(* The LRU victim among occupied ways, or the first empty way. *)
let victim_way t set =
  let base = set * t.nways in
  let best = ref base in
  (try
     for i = base to base + t.nways - 1 do
       if t.blks.(i) = -1 then begin
         best := i;
         raise Exit
       end
       else if t.last_use.(i) < t.last_use.(!best) then best := i
     done
   with Exit -> ());
  !best

(* Pure victim probe by block: the way [insert] would fill if the block
   is absent. Reads only [blks]/[last_use], so it is safe for helper
   domains racing the owning lane — a concurrent mutation can make the
   answer stale, which version validation turns into a squash. *)
let peek_victim_way t blk = victim_way t (set_index t blk)

(* Known-way replay of [insert] for a block verified absent: identical
   tick and way writes, with the victim way supplied by the caller
   (normally from [peek_victim_way], revalidated). Any displaced payload
   is simply overwritten, matching [insert] callers that ignore the
   eviction (the L1 promote path — the line stays valid in L2). *)
let insert_at t blk w payload =
  t.tick <- t.tick + 1;
  t.blks.(w) <- blk;
  t.payloads.(w) <- payload;
  t.last_use.(w) <- t.tick

let would_evict t blk =
  if hit (peek_way t blk) then None
  else
    let w = victim_way t (set_index t blk) in
    if t.blks.(w) = -1 then None else Some (t.blks.(w), t.payloads.(w))

let insert t blk payload =
  t.tick <- t.tick + 1;
  let w = peek_way t blk in
  if hit w then begin
    t.payloads.(w) <- payload;
    t.last_use.(w) <- t.tick;
    None
  end
  else begin
    let w = victim_way t (set_index t blk) in
    let evicted =
      if t.blks.(w) = -1 then None else Some (t.blks.(w), t.payloads.(w))
    in
    t.blks.(w) <- blk;
    t.payloads.(w) <- payload;
    t.last_use.(w) <- t.tick;
    evicted
  end

(* [insert] for a block the caller just probed absent, discarding the
   eviction: one victim scan, no re-probe, no option allocation. Same
   tick consumption and way writes as [insert] on the absent path, so
   cache state evolves identically. *)
let insert_absent t blk payload =
  t.tick <- t.tick + 1;
  let w = victim_way t (set_index t blk) in
  t.blks.(w) <- blk;
  t.payloads.(w) <- payload;
  t.last_use.(w) <- t.tick

let remove t blk =
  let w = peek_way t blk in
  if not (hit w) then None
  else begin
    let p = t.payloads.(w) in
    t.blks.(w) <- -1;
    t.payloads.(w) <- t.dummy;
    t.last_use.(w) <- 0;
    Some p
  end

let iter t f =
  for i = 0 to Array.length t.blks - 1 do
    let blk = Array.unsafe_get t.blks i in
    if blk <> -1 then f blk t.payloads.(i)
  done

let iter_range t ~lo_block ~hi_block f =
  iter t (fun blk p -> if blk >= lo_block && blk < hi_block then f blk p)

let population t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let clear t =
  Array.fill t.blks 0 (Array.length t.blks) (-1);
  Array.fill t.payloads 0 (Array.length t.payloads) t.dummy;
  Array.fill t.last_use 0 (Array.length t.last_use) 0;
  t.tick <- 0

(* Snapshot: geometry (validated on restore), the LRU clock, the tag and
   recency arrays wholesale, then the payload of every resident way in
   flat ascending order. The layout (way positions, rotation state) is
   saved exactly, so a restored cache replays subsequent probes — hits,
   victims, LRU decisions — bit-identically. *)
let save t w ~elt =
  let module B = Warden_util.Bin in
  B.w_int w t.nsets;
  B.w_int w t.nways;
  B.w_int w t.tick;
  B.w_int_array w t.blks;
  B.w_int_array w t.last_use;
  for i = 0 to Array.length t.blks - 1 do
    if Array.unsafe_get t.blks i <> -1 then elt w t.payloads.(i)
  done

let restore t r ~elt =
  let module B = Warden_util.Bin in
  let sets = B.r_int r and ways = B.r_int r in
  if sets <> t.nsets || ways <> t.nways then
    B.corrupt "Sa: geometry mismatch";
  t.tick <- B.r_int r;
  let blks = B.r_int_array r in
  let last_use = B.r_int_array r in
  if Array.length blks <> Array.length t.blks then B.corrupt "Sa: bad tags";
  Array.blit blks 0 t.blks 0 (Array.length blks);
  Array.blit last_use 0 t.last_use 0 (Array.length last_use);
  Array.fill t.payloads 0 (Array.length t.payloads) t.dummy;
  for i = 0 to Array.length t.blks - 1 do
    if Array.unsafe_get t.blks i <> -1 then t.payloads.(i) <- elt r
  done
