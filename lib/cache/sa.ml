type 'a way = { mutable blk : int; mutable payload : 'a option; mutable last_use : int }

type 'a t = {
  nsets : int;
  nways : int;
  lines : 'a way array array; (* lines.(set).(way) *)
  mutable tick : int; (* monotonically increasing LRU clock *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~sets ~ways =
  if not (is_pow2 sets) then invalid_arg "Sa.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Sa.create: ways";
  {
    nsets = sets;
    nways = ways;
    lines =
      Array.init sets (fun _ ->
          Array.init ways (fun _ -> { blk = -1; payload = None; last_use = 0 }));
    tick = 0;
  }

let sets t = t.nsets
let ways t = t.nways
let capacity_blocks t = t.nsets * t.nways

let set_index t blk = blk land (t.nsets - 1)

let find_way t blk =
  let set = t.lines.(set_index t blk) in
  let rec go i =
    if i >= t.nways then None
    else if set.(i).blk = blk then Some set.(i)
    else go (i + 1)
  in
  go 0

let find t blk =
  match find_way t blk with
  | None -> None
  | Some w ->
      t.tick <- t.tick + 1;
      w.last_use <- t.tick;
      w.payload

let peek t blk =
  match find_way t blk with None -> None | Some w -> w.payload

let touch t blk =
  match find_way t blk with
  | None -> false
  | Some w ->
      t.tick <- t.tick + 1;
      w.last_use <- t.tick;
      true

let mem t blk = find_way t blk <> None

(* The LRU victim among occupied ways, or the first empty way. *)
let victim_way t set =
  let ways = t.lines.(set) in
  let best = ref ways.(0) in
  (try
     for i = 0 to t.nways - 1 do
       if ways.(i).blk = -1 then begin
         best := ways.(i);
         raise Exit
       end
       else if ways.(i).last_use < !best.last_use then best := ways.(i)
     done
   with Exit -> ());
  !best

let would_evict t blk =
  match find_way t blk with
  | Some _ -> None
  | None ->
      let w = victim_way t (set_index t blk) in
      if w.blk = -1 then None
      else
        match w.payload with
        | Some p -> Some (w.blk, p)
        | None -> None

let insert t blk payload =
  t.tick <- t.tick + 1;
  match find_way t blk with
  | Some w ->
      w.payload <- Some payload;
      w.last_use <- t.tick;
      None
  | None ->
      let w = victim_way t (set_index t blk) in
      let evicted =
        if w.blk = -1 then None
        else match w.payload with Some p -> Some (w.blk, p) | None -> None
      in
      w.blk <- blk;
      w.payload <- Some payload;
      w.last_use <- t.tick;
      evicted

let remove t blk =
  match find_way t blk with
  | None -> None
  | Some w ->
      let p = w.payload in
      w.blk <- -1;
      w.payload <- None;
      w.last_use <- 0;
      p

let iter t f =
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          match w.payload with
          | Some p when w.blk <> -1 -> f w.blk p
          | _ -> ())
        set)
    t.lines

let iter_range t ~lo_block ~hi_block f =
  iter t (fun blk p -> if blk >= lo_block && blk < hi_block then f blk p)

let population t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let clear t =
  Array.iter
    (Array.iter (fun w ->
         w.blk <- -1;
         w.payload <- None;
         w.last_use <- 0))
    t.lines;
  t.tick <- 0
