open Warden_mem
open Warden_cache
open Warden_machine
open Warden_proto
open States
module Obs = Warden_obs.Obs
module Oev = Warden_obs.Events

module P = struct
  type t = {
    fabric : Fabric.t;
    dir : Dirstate.t;
    regions : Regions.t;
    scratch : Mesi.grant;
  }

  let name = "warden"
  let kind = `Directory

  let create fabric =
    let cfg = fabric.Fabric.config in
    {
      fabric;
      dir =
        Dirstate.create ~sockets:cfg.Config.sockets
          ~cores_per_socket:cfg.Config.cores_per_socket ();
      regions =
        Regions.create
          ~capacity:fabric.Fabric.config.Config.ward_region_capacity;
      scratch = Mesi.fresh_grant ();
    }

  let fabric t = t.fabric
  let regions t = t.regions

  let blocks_of_range ~lo ~hi f =
    if hi > lo then
      for blk = Addr.block_of lo to Addr.block_of (hi - 1) do
        f blk
      done

  (* Serve a request for a block inside an active WARD region: furnish an
     exclusive-like copy from the shared cache and leave every other copy
     untouched (Fig. 5's GetM-or-GetS (WARD region) transitions). *)
  let ward_request t ~core ~blk ~write ~holds_s =
    let f = t.fabric in
    let dir = t.dir in
    let e = Dirstate.entry dir blk in
    let cs = Fabric.socket_of_core f core in
    Fabric.dir_access f;
    Fabric.dir_msg f ~socket:cs ~blk ~data:false;
    f.Fabric.stats.Pstats.ward_grants <- f.Fabric.stats.Pstats.ward_grants + 1;
    (* A previous E/M owner silently becomes one of the W copies. *)
    (match Dirstate.state dir e with
    | D_E | D_M ->
        let o = Dirstate.owner dir e in
        if o >= 0 then Dirstate.sharer_add dir e o
    | D_I | D_S | D_W -> ());
    Dirstate.set_state dir e D_W;
    Dirstate.set_owner dir e (-1);
    Dirstate.sharer_add dir e core;
    if Dirstate.sharer_count dir e > 1 then Dirstate.set_w_multi dir e true;
    let to_home = Fabric.dir_leg f ~socket:cs ~blk in
    let from_home = to_home in
    let g = t.scratch in
    if holds_s then begin
      (* Upgrade of a copy already held: permission only, no data. *)
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      g.Mesi.pstate <- grant_pstate ~write;
      g.Mesi.fill <- Mesi.no_fill;
      g.Mesi.latency <- to_home + f.Fabric.config.Config.l3_lat + from_home
    end
    else begin
      let data, where = f.Fabric.read_shared ~blk in
      let shared_lat = Fabric.shared_read_latency f where in
      Fabric.dir_msg f ~socket:cs ~blk ~data:true;
      g.Mesi.pstate <- grant_pstate ~write;
      g.Mesi.fill <- data;
      g.Mesi.latency <- to_home + shared_lat + from_home
    end;
    Obs.event f.Fabric.obs ~code:Oev.ward_grant ~core ~blk ~arg:g.Mesi.latency;
    g

  let handle_request t ~core ~blk ~write ~holds_s =
    Energy.cam_lookup t.fabric.Fabric.energy;
    if Regions.block_in t.regions blk then
      ward_request t ~core ~blk ~write ~holds_s
    else
      Mesi.handle_request t.fabric t.dir t.scratch ~core ~blk ~write ~holds_s

  let handle_evict t ~core ~blk ~pstate ~data =
    let dir = t.dir in
    let e = Dirstate.entry dir blk in
    if Dirstate.state dir e = D_W then begin
      (* Sectored writeback: merge this copy's written bytes into the LLC
         ("reconciling blocks on eviction overlaps with computation"). *)
      let f = t.fabric in
      let cs = Fabric.socket_of_core f core in
      Fabric.dir_access f;
      let dirty = Linedata.is_dirty data in
      Fabric.dir_msg f ~socket:cs ~blk ~data:dirty;
      if dirty then begin
        f.Fabric.llc_merge ~blk data;
        f.Fabric.stats.Pstats.writebacks <- f.Fabric.stats.Pstats.writebacks + 1
      end;
      Dirstate.sharer_remove dir e core
    end
    else Mesi.handle_evict t.fabric t.dir ~core ~blk ~pstate ~data

  let region_add t ~lo ~hi =
    let stats = t.fabric.Fabric.stats in
    stats.Pstats.ward_adds <- stats.Pstats.ward_adds + 1;
    if not (Regions.add t.regions ~lo ~hi) then begin
      stats.Pstats.ward_rejects <- stats.Pstats.ward_rejects + 1;
      false
    end
    else begin
      (* Fold any live MESI copies of these blocks into the LLC so that
         stale data cannot later win a reconciliation merge. With the
         runtime's fresh-address allocation this loop finds nothing. *)
      let dir = t.dir in
      blocks_of_range ~lo ~hi (fun blk ->
          let e = Dirstate.find dir blk in
          if
            e <> Dirstate.no_slot
            && Dirstate.state dir e <> D_I
            && Dirstate.state dir e <> D_W
          then begin
            let holders = Dirstate.holders dir e in
            stats.Pstats.recon_flushes <-
              stats.Pstats.recon_flushes + List.length holders;
            List.iter
              (fun c ->
                Obs.event t.fabric.Fabric.obs ~code:Oev.recon ~core:c ~blk
                  ~arg:1)
              holders;
            Mesi.flush_block t.fabric t.dir ~blk
          end);
      true
    end

  let is_ward t ~blk = Regions.block_in t.regions blk

  (* Eagerly coherent outside W regions, reconciled inside them: the
     runtime's acquire/release fences need no architectural effect. *)
  let acquire _ ~core:_ = 0
  let release _ ~core:_ = 0

  (* Reconciliation of one W block at region removal (§5.2). Returns true
     if the block required a flush (and therefore costs latency). *)
  let reconcile_block t blk (e : Dirstate.slot) =
    let f = t.fabric in
    let dir = t.dir in
    let stats = f.Fabric.stats in
    stats.Pstats.recon_blocks <- stats.Pstats.recon_blocks + 1;
    match Dirstate.holders dir e with
    | [] ->
        Dirstate.set_invalid dir e;
        false
    | [ s ] when (not (Dirstate.w_multi dir e))
                 && f.Fabric.config.Config.recon_inplace_sole -> (
        (* No sharing, §5.2 literal variant (ablation): convert the sole
           copy to E/M in place. This forfeits the §5.3 proactive flush —
           later remote readers still downgrade the holder. *)
        match f.Fabric.peek_priv ~core:s ~blk with
        | None ->
            Dirstate.set_invalid dir e;
            false
        | Some p ->
            Dirstate.set_state dir e
              (if Linedata.is_dirty p.Fabric.data then D_M else D_E);
            Dirstate.set_owner dir e s;
            Dirstate.set_w_multi dir e false;
            Dirstate.sharers_clear dir e;
            false)
    | [ s ] when not (Dirstate.w_multi dir e) -> (
        (* No sharing (default): write the copy's dirty sectors back and
           retain it as a clean shared copy. Remote consumers are then
           served by the LLC with no downgrade (the §5.3 benefit), while
           the holder keeps hitting in its own cache — flushing the sole
           holder outright would make it refetch its own fresh data. *)
        match f.Fabric.downgrade_priv ~core:s ~blk with
        | None ->
            Dirstate.set_invalid dir e;
            false
        | Some p ->
            let dirty = Linedata.is_dirty p.Fabric.data in
            if dirty then begin
              stats.Pstats.recon_flushes <-
                stats.Pstats.recon_flushes + p.Fabric.levels;
              Obs.event f.Fabric.obs ~code:Oev.recon ~core:s ~blk
                ~arg:p.Fabric.levels;
              (* One data message per dirty block; the flush command itself
                 is per-region, not per-block. *)
              let ss = Fabric.socket_of_core f s in
              Fabric.dir_msg f ~socket:ss ~blk ~data:true;
              f.Fabric.llc_merge ~blk p.Fabric.data;
              Linedata.clear_dirty p.Fabric.data
            end;
            Dirstate.set_state dir e D_S;
            Dirstate.set_owner dir e (-1);
            Dirstate.set_w_multi dir e false;
            Dirstate.sharers_clear dir e;
            Dirstate.sharer_add dir e s;
            dirty)
    | holders ->
        (* False or true sharing: flush every copy and merge dirty sectors
           in directory processing order (ascending core id); the WARD
           property makes any order correct. *)
        List.iter
          (fun s ->
            match f.Fabric.invalidate_priv ~core:s ~blk with
            | None -> ()
            | Some p ->
                stats.Pstats.recon_flushes <-
                  stats.Pstats.recon_flushes + p.Fabric.levels;
                Obs.event f.Fabric.obs ~code:Oev.recon ~core:s ~blk
                  ~arg:p.Fabric.levels;
                let ss = Fabric.socket_of_core f s in
                let dirty = Linedata.is_dirty p.Fabric.data in
                if dirty then begin
                  Fabric.dir_msg f ~socket:ss ~blk ~data:true;
                  f.Fabric.llc_merge ~blk p.Fabric.data
                end)
          holders;
        Dirstate.set_invalid dir e;
        true

  let region_remove t ~lo ~hi =
    let stats = t.fabric.Fabric.stats in
    stats.Pstats.ward_removes <- stats.Pstats.ward_removes + 1;
    if not (Regions.remove t.regions ~lo ~hi) then 0
    else begin
      let flushed = ref 0 in
      let dir = t.dir in
      blocks_of_range ~lo ~hi (fun blk ->
          (* A block of two overlapping regions stays W until the last one
             is removed. *)
          if not (Regions.block_in t.regions blk) then begin
            let e = Dirstate.find dir blk in
            if e <> Dirstate.no_slot && Dirstate.state dir e = D_W then
              if reconcile_block t blk e then incr flushed
          end);
      !flushed * t.fabric.Fabric.config.Config.reconcile_per_block
    end

  let flush_all t =
    let f = t.fabric in
    let dir = t.dir in
    let pending = ref [] in
    Dirstate.iter dir (fun blk e -> pending := (blk, e) :: !pending);
    List.iter
      (fun (blk, e) ->
        if Dirstate.state dir e = D_W then begin
          List.iter
            (fun s ->
              match f.Fabric.invalidate_priv ~core:s ~blk with
              | Some p when Linedata.is_dirty p.Fabric.data ->
                  Fabric.dir_msg f ~socket:(Fabric.socket_of_core f s) ~blk
                    ~data:true;
                  f.Fabric.stats.Pstats.writebacks <-
                    f.Fabric.stats.Pstats.writebacks + 1;
                  f.Fabric.llc_merge ~blk p.Fabric.data
              | _ -> ())
            (Dirstate.holders dir e);
          Dirstate.set_invalid dir e
        end
        else Mesi.flush_block f t.dir ~blk)
      !pending

  let observe t ~blk = Protocol.view_of_dir t.dir ~blk
  let prefetch t ~blk = Dirstate.prefetch t.dir blk

  let dump t =
    let b = Buffer.create 256 in
    Buffer.add_string b "protocol warden\n";
    Buffer.add_string b (Protocol.dump_dir t.dir);
    let ranges = ref [] in
    Regions.iter t.regions (fun ~lo ~hi -> ranges := (lo, hi) :: !ranges);
    List.iter
      (fun (lo, hi) ->
        Buffer.add_string b (Printf.sprintf "  region [0x%x,0x%x)\n" lo hi))
      (List.sort compare !ranges);
    Buffer.contents b

  let copy t ~fabric =
    {
      fabric;
      dir = Dirstate.copy t.dir;
      regions = Regions.copy t.regions;
      scratch = Mesi.fresh_grant ();
    }

  (* WARDen's protocol state is the directory plus the region CAM. *)
  let save_state t w =
    Dirstate.save t.dir w;
    Regions.save t.regions w

  let restore_state t r =
    Dirstate.restore t.dir r;
    Regions.restore t.regions r
end

let protocol fabric = Protocol.Packed ((module P), P.create fabric)
