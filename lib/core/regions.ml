open Warden_mem

module Imap = Map.Make (Int)

(* Intervals are stored in a map keyed by lower bound; each key carries the
   list of upper bounds registered at it (duplicates allowed). [max_len]
   tracks the longest interval ever added so membership tests know how far
   below the query address an enclosing interval could start. With the
   page-granular regions the runtime produces, a lookup scans one key. *)
type t = {
  mutable by_lo : int list Imap.t;
  mutable n : int;
  mutable max_len : int;
  capacity : int;
}

let create ~capacity = { by_lo = Imap.empty; n = 0; max_len = 0; capacity }

let capacity t = t.capacity
let count t = t.n

let copy t =
  { by_lo = t.by_lo; n = t.n; max_len = t.max_len; capacity = t.capacity }

let add t ~lo ~hi =
  if hi <= lo || t.n >= t.capacity then false
  else begin
    let existing = Option.value ~default:[] (Imap.find_opt lo t.by_lo) in
    t.by_lo <- Imap.add lo (hi :: existing) t.by_lo;
    t.n <- t.n + 1;
    t.max_len <- max t.max_len (hi - lo);
    true
  end

let remove t ~lo ~hi =
  match Imap.find_opt lo t.by_lo with
  | None -> false
  | Some his ->
      if List.mem hi his then begin
        let rec drop_one = function
          | [] -> []
          | x :: rest -> if x = hi then rest else x :: drop_one rest
        in
        (match drop_one his with
        | [] -> t.by_lo <- Imap.remove lo t.by_lo
        | rest -> t.by_lo <- Imap.add lo rest t.by_lo);
        t.n <- t.n - 1;
        true
      end
      else false

let mem t addr =
  if t.n = 0 then false
  else begin
    (* Scan keys in (addr - max_len, addr], newest-start first. *)
    let exception Found in
    try
      let floor = addr - t.max_len in
      let rec go upper =
        match Imap.find_last_opt (fun lo -> lo <= upper) t.by_lo with
        | None -> ()
        | Some (lo, his) ->
            if lo <= floor then ()
            else begin
              if List.exists (fun hi -> addr < hi) his then raise Found;
              go (lo - 1)
            end
      in
      go addr;
      false
    with Found -> true
  end

let block_in t blk =
  if t.n = 0 then false
  else begin
    let base = Addr.base_of_block blk in
    (* A region overlaps the block iff it contains some byte of it; since
       runtime regions are block-aligned, testing the base plus any region
       that starts inside the block suffices. *)
    mem t base
    ||
    match Imap.find_first_opt (fun lo -> lo > base) t.by_lo with
    | Some (lo, _ :: _) -> lo < base + Addr.block_size
    | _ -> false
  end

let iter t f = Imap.iter (fun lo his -> List.iter (fun hi -> f ~lo ~hi) his) t.by_lo

let clear t =
  t.by_lo <- Imap.empty;
  t.n <- 0;
  t.max_len <- 0

(* Snapshot the interval map structurally (per lower bound, its upper
   bounds in list order) plus [max_len], which tracks the longest region
   ever added — not derivable from the live intervals. *)
let save t w =
  let module B = Warden_util.Bin in
  B.w_int w t.n;
  B.w_int w t.max_len;
  B.w_int w (Imap.cardinal t.by_lo);
  Imap.iter
    (fun lo his ->
      B.w_int w lo;
      B.w_int w (List.length his);
      List.iter (B.w_int w) his)
    t.by_lo

let restore t r =
  let module B = Warden_util.Bin in
  let n = B.r_int r in
  let max_len = B.r_int r in
  let nkeys = B.r_int r in
  if n < 0 || max_len < 0 || nkeys < 0 then B.corrupt "Regions: bad snapshot";
  let map = ref Imap.empty in
  let total = ref 0 in
  for _ = 1 to nkeys do
    let lo = B.r_int r in
    let len = B.r_int r in
    if len <= 0 then B.corrupt "Regions: empty upper-bound list";
    let his = List.init len (fun _ -> B.r_int r) in
    total := !total + len;
    map := Imap.add lo his !map
  done;
  if !total <> n then B.corrupt "Regions: count mismatch";
  t.by_lo <- !map;
  t.n <- n;
  t.max_len <- max_len
