(** The WARD region table: the directory-side storage of active WARD
    regions (§6.1).

    The paper models this as a CAM-like fully-associative structure holding
    up to a fixed number of [(lo, hi)] address pairs (16 bytes each; 1024
    entries cost <0.05% chip area). We reproduce the capacity limit —
    [add] refuses new regions when full, and the software simply forgoes
    marking — and provide the membership test the directory performs on
    every request.

    Regions may overlap; an address inside any region is WARD ("if an
    address is somehow found in more than one region, we just mark it as
    WARD"). *)

type t

val create : capacity:int -> t

val capacity : t -> int
val count : t -> int

val copy : t -> t
(** Independent copy (the interval map is persistent, so this is cheap). *)

val add : t -> lo:int -> hi:int -> bool
(** Register [\[lo, hi)]. Returns false (and stores nothing) when the table
    is full or the interval is empty. *)

val remove : t -> lo:int -> hi:int -> bool
(** Remove one exact occurrence of [\[lo, hi)]; false if not present. *)

val mem : t -> int -> bool
(** Is this address inside any active region? *)

val block_in : t -> int -> bool
(** Is any byte of cache block [blk] inside an active region? This is the
    lookup the directory performs per request. *)

val iter : t -> (lo:int -> hi:int -> unit) -> unit

val clear : t -> unit

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot the interval map plus the historical [max_len] bound. *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite this table's intervals from {!save} output (the capacity
    stays the creating machine's). *)
