open Warden_runtime

type event = {
  cycle : int;
  thread : int;
  kind : Par.access_kind;
  addr : int;
  size : int;
  value : int64;
  in_ward : bool;
}

type summary = {
  events : int;
  dropped : int;
  ward_events : int;
  reads : int;
  writes : int;
  rmws : int;
  distinct_blocks : int;
  shared_blocks : int;
  ward_verdict : [ `Ward | `Violations of int ];
}

type epoch = { mutable evs : Wardprop.event list (* newest first *) }

type state = {
  mutable buf : event list; (* newest first *)
  mutable kept : int;
  capacity : int;
  mutable dropped : int;
  mutable ward_events : int;
  mutable reads : int;
  mutable writes : int;
  mutable rmws : int;
  block_threads : (int, int) Hashtbl.t;
      (* block -> thread id, or -2 once touched by several threads *)
  epochs : (int, epoch) Hashtbl.t; (* 4 KiB chunk -> live epoch *)
  mutable violations : int;
}

let chunk_of addr = addr lsr 12

let on_region st which ~lo ~hi =
  match which with
  | `Add ->
      let e = { evs = [] } in
      let c = ref (chunk_of lo) in
      while !c lsl 12 < hi do
        Hashtbl.replace st.epochs !c e;
        incr c
      done
  | `Remove ->
      (match Hashtbl.find_opt st.epochs (chunk_of lo) with
      | Some e ->
          if Wardprop.classify (List.rev e.evs) <> Wardprop.Ward then
            st.violations <- st.violations + 1
      | None -> ());
      let c = ref (chunk_of lo) in
      while !c lsl 12 < hi do
        Hashtbl.remove st.epochs !c;
        incr c
      done

let on_access st kind ~addr ~size ~value =
  let thread = Warden_sim.Engine.Ops.tid () in
  let cycle = Warden_sim.Engine.Ops.now () in
  let epoch = Hashtbl.find_opt st.epochs (chunk_of addr) in
  let in_ward = epoch <> None in
  (match kind with
  | Par.R -> st.reads <- st.reads + 1
  | Par.W -> st.writes <- st.writes + 1
  | Par.RMW -> st.rmws <- st.rmws + 1);
  if in_ward then st.ward_events <- st.ward_events + 1;
  (match epoch with
  | Some e ->
      e.evs <-
        { Wardprop.thread; write = kind <> Par.R; addr; value } :: e.evs
  | None -> ());
  let blk = Warden_mem.Addr.block_of addr in
  (match Hashtbl.find_opt st.block_threads blk with
  | None -> Hashtbl.add st.block_threads blk thread
  | Some t when t = thread || t = -2 -> ()
  | Some _ -> Hashtbl.replace st.block_threads blk (-2));
  if st.kept >= st.capacity then st.dropped <- st.dropped + 1
  else begin
    st.buf <- { cycle; thread; kind; addr; size; value; in_ward } :: st.buf;
    st.kept <- st.kept + 1
  end

let record ?(capacity = 200_000) f =
  let st =
    {
      buf = [];
      kept = 0;
      capacity;
      dropped = 0;
      ward_events = 0;
      reads = 0;
      writes = 0;
      rmws = 0;
      block_threads = Hashtbl.create 4096;
      epochs = Hashtbl.create 256;
      violations = 0;
    }
  in
  Par.set_access_hook (fun kind ~addr ~size ~value ->
      on_access st kind ~addr ~size ~value);
  Heap.set_region_hook (Some (fun which ~lo ~hi -> on_region st which ~lo ~hi));
  let finish () =
    Par.clear_access_hook ();
    Heap.set_region_hook None
  in
  let v = Fun.protect ~finally:finish f in
  (* Classify epochs still live at the end (e.g., the root heap). *)
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ e ->
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        if Wardprop.classify (List.rev e.evs) <> Wardprop.Ward then
          st.violations <- st.violations + 1
      end)
    st.epochs;
  let shared =
    Hashtbl.fold (fun _ t acc -> if t = -2 then acc + 1 else acc)
      st.block_threads 0
  in
  let summary =
    {
      events = st.reads + st.writes + st.rmws;
      dropped = st.dropped;
      ward_events = st.ward_events;
      reads = st.reads;
      writes = st.writes;
      rmws = st.rmws;
      distinct_blocks = Hashtbl.length st.block_threads;
      shared_blocks = shared;
      ward_verdict =
        (if st.violations = 0 then `Ward else `Violations st.violations);
    }
  in
  (v, List.rev st.buf, summary)

let ward_coverage s =
  if s.events = 0 then 0. else float_of_int s.ward_events /. float_of_int s.events

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>accesses: %d (%d reads, %d writes, %d atomics)%s@,\
     WARD coverage: %.1f%% of accesses in marked regions@,\
     footprint: %d blocks touched, %d shared across threads@,\
     offline WARD classification: %s@]"
    s.events s.reads s.writes s.rmws
    (if s.dropped > 0 then Printf.sprintf " [%d beyond buffer]" s.dropped else "")
    (100. *. ward_coverage s)
    s.distinct_blocks s.shared_blocks
    (match s.ward_verdict with
    | `Ward -> "every marked region was WARD"
    | `Violations n -> Printf.sprintf "%d region epochs violated WARD" n)
