open Warden_runtime
module Regions = Warden_core.Regions

type report = {
  accesses : int;
  ward_accesses : int;
  disentanglement_violations : string list;
  ward_violations : string list;
}

let ward_fraction r =
  if r.accesses = 0 then 0.
  else float_of_int r.ward_accesses /. float_of_int r.accesses

let max_reported = 16

type cell = { mutable tid : int; mutable value : int64; mutable size : int }

type state = {
  mutable accesses : int;
  mutable ward_accesses : int;
  mutable dis_violations : string list;
  mutable dis_count : int;
  mutable ward_violations : string list;
  mutable ward_count : int;
  regions : Regions.t;
  cells : (int, (int, cell) Hashtbl.t) Hashtbl.t;
      (** last write per exact address while marked, sharded by 4 KiB chunk
          so that region removal can drop a whole shard *)
}

let chunk_of addr = addr lsr 12

let find_cell st addr =
  match Hashtbl.find_opt st.cells (chunk_of addr) with
  | None -> None
  | Some shard -> Hashtbl.find_opt shard addr

let put_cell st addr cell =
  let shard =
    match Hashtbl.find_opt st.cells (chunk_of addr) with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.add st.cells (chunk_of addr) s;
        s
  in
  Hashtbl.replace shard addr cell

let add_dis st msg =
  st.dis_count <- st.dis_count + 1;
  if List.length st.dis_violations < max_reported then
    st.dis_violations <- msg :: st.dis_violations

let add_ward st msg =
  st.ward_count <- st.ward_count + 1;
  if List.length st.ward_violations < max_reported then
    st.ward_violations <- msg :: st.ward_violations

let on_access st kind ~addr ~size ~value =
  st.accesses <- st.accesses + 1;
  (* Disentanglement: the owner heap must lie on the current root path. *)
  (match (Heap.owner_of addr, Par.current_heap ()) with
  | Some owner, Some mine ->
      if not (Heap.is_ancestor_or_self owner ~of_:mine) then
        add_dis st
          (Printf.sprintf "access to 0x%x: owner heap %d not on root path of %d"
             addr owner.Heap.heap_id mine.Heap.heap_id)
  | _ -> ());
  (* WARD: race discipline inside marked pages. *)
  if Regions.mem st.regions addr then begin
    st.ward_accesses <- st.ward_accesses + 1;
    let tid = Warden_sim.Engine.Ops.tid () in
    match kind with
    | Par.RMW ->
        add_ward st
          (Printf.sprintf "atomic at 0x%x inside a WARD region (thread %d)" addr
             tid)
    | Par.W -> (
        match find_cell st addr with
        | None -> put_cell st addr { tid; value; size }
        | Some c ->
            if c.tid <> tid && (c.value <> value || c.size <> size) then
              add_ward st
                (Printf.sprintf
                   "ordered WAW at 0x%x: thread %d wrote %Ld, thread %d wrote %Ld"
                   addr c.tid c.value tid value);
            c.tid <- tid;
            c.value <- value;
            c.size <- size)
    | Par.R -> (
        match find_cell st addr with
        | None -> ()
        | Some c ->
            if c.tid <> tid then
              add_ward st
                (Printf.sprintf
                   "cross-thread RAW at 0x%x: thread %d wrote, thread %d read"
                   addr c.tid tid))
  end

let on_region st which ~lo ~hi =
  match which with
  | `Add -> ignore (Regions.add st.regions ~lo ~hi)
  | `Remove ->
      ignore (Regions.remove st.regions ~lo ~hi);
      (* Drop write-tracking state for the region's addresses. *)
      let c = ref (chunk_of lo) in
      while !c lsl 12 < hi do
        Hashtbl.remove st.cells !c;
        incr c
      done

let with_oracle f =
  let st =
    {
      accesses = 0;
      ward_accesses = 0;
      dis_violations = [];
      dis_count = 0;
      ward_violations = [];
      ward_count = 0;
      regions = Regions.create ~capacity:max_int;
      cells = Hashtbl.create 4096;
    }
  in
  Par.set_access_hook (fun kind ~addr ~size ~value ->
      on_access st kind ~addr ~size ~value);
  Heap.set_region_hook (Some (fun which ~lo ~hi -> on_region st which ~lo ~hi));
  let finish () =
    Par.clear_access_hook ();
    Heap.set_region_hook None
  in
  let v = Fun.protect ~finally:finish f in
  ( v,
    {
      accesses = st.accesses;
      ward_accesses = st.ward_accesses;
      disentanglement_violations = List.rev st.dis_violations;
      ward_violations = List.rev st.ward_violations;
    } )

let check_clean r =
  match (r.disentanglement_violations, r.ward_violations) with
  | [], [] -> Ok ()
  | d, w ->
      Error
        (String.concat "\n"
           (List.map (fun m -> "disentanglement: " ^ m) d
           @ List.map (fun m -> "ward: " ^ m) w))
