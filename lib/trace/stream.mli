(** Commit-order access streams: record once, replay many (DESIGN.md §15).

    Recording installs the {!Warden_sim.Memsys} trace sink for the
    duration of a run, capturing every committed memory-system transition
    — loads, stores (with values), RMWs (with their committed new value),
    region add/remove, flushes and host pokes — in commit order, 33 bytes
    per event. Replaying feeds the stream back through the memory-system
    entry points against a {e fresh} same-geometry memory system, with no
    program model: on the same protocol the final memory-system
    statistics are bit-identical to the recording run's; on the other
    protocol the replay is a trace-driven A/B comparison.

    Streams are protocol-dependent (the commit order embeds the recorded
    protocol's latencies), so cross-protocol replay answers "what would
    this access stream cost under the other protocol", not "what would
    this program do" — the paper's trace-driven methodology. *)

type t

val record : Warden_sim.Memsys.t -> (unit -> 'a) -> 'a * t
(** [record ms f] runs [f] with the commit-order sink installed on [ms]
    (removed afterwards, also on exceptions). Install before poking
    inputs so the replay reproduces them. Not composable with another
    simultaneous sink. *)

val replay : t -> Warden_sim.Memsys.t -> int
(** Replay into a freshly created memory system of identical geometry
    (any protocol); returns the number of events replayed. Raises
    [Warden_util.Bin.Corrupt] on a geometry mismatch or a corrupt
    stream. *)

val events : t -> int

val proto : t -> string
(** Protocol name the stream was recorded under. *)

val to_bytes : t -> Bytes.t
val of_bytes : Bytes.t -> t
(** Versioned envelope: magic, geometry, protocol, event count,
    checksum. *)

val save_file : t -> string -> unit
val load_file : string -> t

val stats_text : Warden_sim.Memsys.t -> string
(** Canonical dump of the memory-system statistics a replay reproduces
    (engine-owned values excluded), one [key value] per line — byte-equal
    between a recording run and its same-protocol replay. *)
