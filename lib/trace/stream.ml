open Warden_util
module Memsys = Warden_sim.Memsys
module Config = Warden_machine.Config
module Sstats = Warden_sim.Sstats
module Pstats = Warden_proto.Pstats

(* A recorded commit-order event stream ([Memsys] trace sink), flat in one
   byte buffer: 33 bytes per event (kind, thread, addr, size, value), with
   the recording machine's geometry and protocol as metadata. Unlike
   {!Recorder} — which keeps initiation-order program events for offline
   analysis — this stream is in memory-system commit order, so feeding it
   back through the access entry points replays the exact transition
   sequence with no program model. *)
type t = {
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  proto : string;
  events : int;
  body : Bytes.t;
}

let magic = "WOBS"
let version = 1
let event_bytes = 33 (* u8 kind + 4 x i64: thread, addr, size, value *)
let proto t = t.proto
let events t = t.events

let record ms f =
  let w = Bin.writer ~capacity:(1 lsl 20) () in
  let count = ref 0 in
  Memsys.set_trace_sink ms
    (Some
       (fun kind thread addr size v ->
         Bin.w_u8 w kind;
         Bin.w_int w thread;
         Bin.w_int w addr;
         Bin.w_int w size;
         Bin.w_i64 w v;
         incr count));
  let result =
    Fun.protect ~finally:(fun () -> Memsys.set_trace_sink ms None) f
  in
  let cfg = Memsys.config ms in
  ( result,
    {
      sockets = cfg.Config.sockets;
      cores_per_socket = cfg.Config.cores_per_socket;
      threads_per_core = cfg.Config.threads_per_core;
      proto = Warden_proto.Protocol.name (Memsys.protocol ms);
      events = !count;
      body = Bin.contents w;
    } )

(* Drive the memory system through the recorded commit sequence. Each
   access first tries the allocation-free fast path and falls back to the
   scheduled entry point for misses and upgrades — by induction the
   target's state matches the recording run's state at the same stream
   position (same protocol), so each event takes the same transition with
   the same accounting, and the final memory-system statistics are
   bit-identical to the recording run's. Replaying onto the {e other}
   protocol is the A/B use: the stream drives its transitions instead,
   and the stats diff is the protocols' delta on this workload. *)
let replay t ms =
  let cfg = Memsys.config ms in
  if
    cfg.Config.sockets <> t.sockets
    || cfg.Config.cores_per_socket <> t.cores_per_socket
    || cfg.Config.threads_per_core <> t.threads_per_core
  then Bin.corrupt "Stream: machine geometry mismatch";
  (* The hot loop decodes the fixed 33-byte records inline with one
     bounds check per event, rather than through [Bin.r_int] (whose
     [int64] return boxes on every field without flambda), and skips
     decoding the value word when the event kind does not need it —
     loads, the bulk of any stream, touch only 25 of the 33 bytes. *)
  let body = t.body in
  let len = Bytes.length body in
  let pos = ref 0 in
  for _ = 1 to t.events do
    let p = !pos in
    if p + event_bytes > len then Bin.corrupt "Stream: truncated event";
    pos := p + event_bytes;
    let kind = Char.code (Bytes.unsafe_get body p) in
    let thread = Int64.to_int (Bytes.get_int64_le body (p + 1)) in
    let addr = Int64.to_int (Bytes.get_int64_le body (p + 9)) in
    let size = Int64.to_int (Bytes.get_int64_le body (p + 17)) in
    if kind = Memsys.k_load then Memsys.replay_load ms ~thread addr ~size
    else if kind = Memsys.k_store then
      Memsys.replay_store ms ~thread addr ~size (Bytes.get_int64_le body (p + 25))
    else if kind = Memsys.k_rmw then
      Memsys.replay_rmw ms ~thread addr ~size (Bytes.get_int64_le body (p + 25))
    else if kind = Memsys.k_region_add then
      ignore (Memsys.region_add ms ~thread ~lo:addr ~hi:size : bool)
    else if kind = Memsys.k_region_remove then
      ignore (Memsys.region_remove ms ~thread ~lo:addr ~hi:size : int)
    else if kind = Memsys.k_flush then Memsys.flush_all ms
    else if kind = Memsys.k_poke then
      Memsys.poke ms addr ~size (Bytes.get_int64_le body (p + 25))
    else if kind = Memsys.k_acquire then
      ignore (Memsys.acquire ms ~thread : int)
    else if kind = Memsys.k_release then
      ignore (Memsys.release ms ~thread : int)
    else Bin.corrupt "Stream: unknown event kind"
  done;
  t.events

let to_bytes t =
  let out = Bin.writer ~capacity:(Bytes.length t.body + 128) () in
  Bin.w_string out magic;
  Bin.w_int out version;
  Bin.w_int out t.sockets;
  Bin.w_int out t.cores_per_socket;
  Bin.w_int out t.threads_per_core;
  Bin.w_string out t.proto;
  Bin.w_int out t.events;
  Bin.w_bytes out t.body;
  Bin.w_int out (Bin.checksum t.body ~pos:0 ~len:(Bytes.length t.body));
  Bin.contents out

let of_bytes bytes =
  let r = Bin.reader bytes in
  let m = try Bin.r_string r with Bin.Corrupt _ -> "" in
  if m <> magic then Bin.corrupt "Stream: not a warden trace (bad magic)";
  let v = Bin.r_int r in
  if v <> version then
    Bin.corrupt
      (Printf.sprintf "Stream: trace version %d, this build reads %d" v
         version);
  let sockets = Bin.r_int r in
  let cores_per_socket = Bin.r_int r in
  let threads_per_core = Bin.r_int r in
  let proto = Bin.r_string r in
  let events = Bin.r_int r in
  let body = Bin.r_bytes r in
  let ck = Bin.r_int r in
  if ck <> Bin.checksum body ~pos:0 ~len:(Bytes.length body) then
    Bin.corrupt "Stream: checksum mismatch (truncated or corrupt trace)";
  { sockets; cores_per_socket; threads_per_core; proto; events; body }

let save_file t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_bytes oc (to_bytes t))

let load_file path =
  let ic = open_in_bin path in
  let bytes =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  in
  of_bytes bytes

(* Canonical memory-system statistics dump, for byte-comparing a replay
   against its recording run (CI). Engine-owned values — instructions,
   cycles, store-buffer stalls, core energy — are excluded: a replay has
   no program model, so only memory-system transitions reproduce. *)
let stats_text ms =
  let ss = Memsys.sstats ms in
  let ps = Memsys.pstats ms in
  let en = Memsys.energy ms in
  let b = Buffer.create 512 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s %d\n" k v) in
  line "loads" ss.Sstats.loads;
  line "stores" ss.Sstats.stores;
  line "rmws" ss.Sstats.rmws;
  line "l1_hits" ss.Sstats.l1_hits;
  line "l2_hits" ss.Sstats.l2_hits;
  line "priv_misses" ss.Sstats.priv_misses;
  line "dir_accesses" ps.Pstats.dir_accesses;
  line "invalidations" ps.Pstats.invalidations;
  line "downgrades" ps.Pstats.downgrades;
  line "fwds" ps.Pstats.fwds;
  line "msgs_ctl_intra" ps.Pstats.msgs_ctl_intra;
  line "msgs_ctl_inter" ps.Pstats.msgs_ctl_inter;
  line "msgs_data_intra" ps.Pstats.msgs_data_intra;
  line "msgs_data_inter" ps.Pstats.msgs_data_inter;
  line "writebacks" ps.Pstats.writebacks;
  line "l3_hits" ps.Pstats.l3_hits;
  line "l3_misses" ps.Pstats.l3_misses;
  line "dram_reads" ps.Pstats.dram_reads;
  line "dram_writes" ps.Pstats.dram_writes;
  line "zero_fills" ps.Pstats.zero_fills;
  line "ward_grants" ps.Pstats.ward_grants;
  line "ward_adds" ps.Pstats.ward_adds;
  line "ward_removes" ps.Pstats.ward_removes;
  line "ward_rejects" ps.Pstats.ward_rejects;
  line "recon_blocks" ps.Pstats.recon_blocks;
  line "recon_flushes" ps.Pstats.recon_flushes;
  line "bus_txns" ps.Pstats.bus_txns;
  line "bus_arb_cycles" ps.Pstats.bus_arb_cycles;
  line "bus_busy_cycles" ps.Pstats.bus_busy_cycles;
  line "snoops" ps.Pstats.snoops;
  line "c2c_transfers" ps.Pstats.c2c_transfers;
  line "self_invs" ps.Pstats.self_invs;
  line "self_downs" ps.Pstats.self_downs;
  line "acquires" ps.Pstats.acquires;
  line "releases" ps.Pstats.releases;
  Buffer.add_string b
    (Printf.sprintf "cache_pj %.0f\ndram_pj %.0f\nnetwork_pj %.0f\n"
       (Warden_machine.Energy.cache_pj en)
       (Warden_machine.Energy.dram_pj en)
       (Warden_machine.Energy.network_pj en));
  Buffer.contents b
