open Warden_util
open Warden_machine
open Warden_proto
open Warden_sim
open Warden_runtime
open Warden_obs

type params = {
  requests : int;
  keys : int;
  theta : float;
  read_frac : float;
  scan_frac : float;
  scan_len : int;
  batch : int;
  grain : int;
  shards : int;
  seed : int64;
}

let default =
  {
    requests = 1_000_000;
    keys = 65_536;
    theta = 0.99;
    read_frac = 0.85;
    scan_frac = 0.05;
    scan_len = 16;
    batch = 8_192;
    grain = 64;
    shards = 8;
    seed = 0x5EED_CAFEL;
  }

type result = {
  proto : string;
  verified : bool;
  violations : int;
  requests : int;
  reads : int;
  writes : int;
  scans : int;
  distinct_written : int;
  checksum : int64;
  dynamic_sum : int64;
  cycles : int;
  instructions : int;
  invalidations : int;
  downgrades : int;
  msgs : int;
  energy_pj : float;
  rps : float;
  lat : Hist.t;
}

let cls_all = 3

let mix64 v =
  Int64.mul
    (Int64.logxor v (Int64.shift_right_logical v 29))
    0x9E3779B97F4A7C15L

(* Digest layout: one small Sarray per task, allocated in the task's own
   heap — fresh WARD pages under WARDen, downgrade fodder under MESI when
   the parent reads them at the join. Four cache lines: accounting words
   plus a 24-bucket log2 latency histogram, merged up the tree the way a
   real serving tier aggregates tail latency across workers. *)
let d_sum = 0 (* mix of every value reads and scans returned *)
let d_reqs = 1 (* requests this subtree served *)
let d_writes = 2 (* writes this subtree performed *)
let d_maxlat = 3 (* worst sojourn this subtree saw *)
let d_kind0 = 4 (* per-kind request counts, indexed by kind code (3) *)
let d_violations = 7 (* reads that returned neither generation *)
let d_hist0 = 8 (* log2 sojourn histogram, saturating at the top *)
let d_hist_buckets = 24
let digest_len = d_hist0 + d_hist_buckets

let run ?(params = default) ?workers eng =
  let p = params in
  if p.requests <= 0 then invalid_arg "Serve.run: requests must be positive";
  if p.batch <= 0 || p.grain <= 0 then
    invalid_arg "Serve.run: batch and grain must be positive";
  if p.scan_len <= 0 then invalid_arg "Serve.run: scan_len must be positive";
  let w =
    Workload.make ~keys:p.keys ~theta:p.theta ~read_frac:p.read_frac
      ~scan_frac:p.scan_frac ~seed:p.seed
  in
  let cfg = Engine.config eng in
  let ms = Engine.memsys eng in
  let proto = Protocol.name (Memsys.protocol ms) in
  let lat = Hist.create ~classes:4 in
  (* Host-side accumulators. Program code only ever executes on the
     commit lane (helpers pre-execute the memory system, never the
     program), so these are race-free and updated in the deterministic
     global event order — the histogram is bit-identical across
     [sim_domains] like everything else. *)
  let violations = ref 0 in
  let dynamic_sum = ref 0L in
  let served = ref 0 in
  let writes_done = ref 0 in
  let sim_violations = ref 0 in
  let sim_kinds = Array.make 3 0 in
  let sim_hist = Array.make d_hist_buckets 0 in
  (* The request buffer is reused batch after batch: host memory for
     generation stays O(batch) no matter how many requests run. *)
  let buf = Array.make (min p.batch p.requests) 0 in
  let kv, _rstats =
    Par.run ?workers eng (fun () ->
        let kv = Kv.create ~keys:p.keys ~shards:p.shards in
        let serve_one admit r =
          let key = Workload.key_of r in
          let kind = Workload.kind_of r in
          let code = Workload.kind_code kind in
          Par.tick 2;
          (* decode + dispatch *)
          let contrib, violated =
            match kind with
            | Workload.Read ->
                let v = Kv.read kv key in
                let bad =
                  v <> Workload.preload_value key
                  && v <> Workload.written_value key
                in
                if bad then incr violations;
                (mix64 v, bad)
            | Workload.Write ->
                Kv.write kv key (Workload.written_value key);
                (0L, false)
            | Workload.Scan -> (mix64 (Kv.scan kv key ~len:p.scan_len), false)
          in
          Kv.bump kv code;
          let sojourn = Engine.Ops.now () - admit in
          Hist.add lat ~cls:code sojourn;
          Hist.add lat ~cls:cls_all sojourn;
          (contrib, code, sojourn, violated)
        in
        let rec go admit lo hi =
          if hi - lo <= p.grain then begin
            let digest = Sarray.create ~len:digest_len ~elt_bytes:8 in
            let sum = ref 0L and maxlat = ref 0 and viol = ref 0 in
            let kinds = Array.make 3 0 in
            let hbuckets = Array.make d_hist_buckets 0 in
            for k = lo to hi - 1 do
              let contrib, code, sojourn, violated =
                serve_one admit buf.(k)
              in
              sum := Int64.add !sum contrib;
              kinds.(code) <- kinds.(code) + 1;
              if violated then incr viol;
              if sojourn > !maxlat then maxlat := sojourn;
              let hb = min (Hist.bucket_of sojourn) (d_hist_buckets - 1) in
              hbuckets.(hb) <- hbuckets.(hb) + 1
            done;
            Sarray.set digest d_sum !sum;
            Sarray.set_i digest d_reqs (hi - lo);
            Sarray.set_i digest d_writes kinds.(1);
            Sarray.set_i digest d_maxlat !maxlat;
            for c = 0 to 2 do
              Sarray.set_i digest (d_kind0 + c) kinds.(c)
            done;
            Sarray.set_i digest d_violations !viol;
            for hb = 0 to d_hist_buckets - 1 do
              Sarray.set_i digest (d_hist0 + hb) hbuckets.(hb)
            done;
            digest
          end
          else begin
            let mid = lo + ((hi - lo) / 2) in
            let l, r =
              Par.par2 (fun () -> go admit lo mid) (fun () -> go admit mid hi)
            in
            (* Rejoined: merge the children's digests — histogram
               included — into a fresh one in this task's (leaf-again)
               heap, the way a serving tier folds per-worker latency
               histograms up its aggregation tree. *)
            let digest = Sarray.create ~len:digest_len ~elt_bytes:8 in
            Sarray.set digest d_sum
              (Int64.add (Sarray.get l d_sum) (Sarray.get r d_sum));
            Sarray.set_i digest d_maxlat
              (max (Sarray.get_i l d_maxlat) (Sarray.get_i r d_maxlat));
            for f = 0 to digest_len - 1 do
              if f <> d_sum && f <> d_maxlat then
                Sarray.set_i digest f (Sarray.get_i l f + Sarray.get_i r f)
            done;
            digest
          end
        in
        let nbatches = (p.requests + p.batch - 1) / p.batch in
        for b = 0 to nbatches - 1 do
          let lo = b * p.batch in
          let n = min p.batch (p.requests - lo) in
          Workload.fill w buf ~lo ~n;
          let admit = Engine.Ops.now () in
          let digest = go admit 0 n in
          dynamic_sum := Int64.add !dynamic_sum (Sarray.get digest d_sum);
          served := !served + Sarray.get_i digest d_reqs;
          writes_done := !writes_done + Sarray.get_i digest d_writes;
          sim_violations := !sim_violations + Sarray.get_i digest d_violations;
          for c = 0 to 2 do
            sim_kinds.(c) <- sim_kinds.(c) + Sarray.get_i digest (d_kind0 + c)
          done;
          for hb = 0 to d_hist_buckets - 1 do
            sim_hist.(hb) <- sim_hist.(hb) + Sarray.get_i digest (d_hist0 + hb)
          done
        done;
        kv)
  in
  Memsys.flush_all ms;
  (* Schedule-independent verification: recompute the write-key set
     host-side and require the flushed table to be exactly the image
     those idempotent writes produce, whatever order they ran in. *)
  let ws = Workload.write_set w ~n:p.requests in
  let reads, writes, scans = Workload.kind_counts w ~n:p.requests in
  let image_ok = ref true in
  let checksum = ref 0L in
  for k = 0 to p.keys - 1 do
    let v = Kv.host_value ms kv k in
    let expect =
      if Bitset.mem ws k then Workload.written_value k
      else Workload.preload_value k
    in
    if v <> expect then image_ok := false;
    checksum := Int64.add !checksum (mix64 v)
  done;
  let meta_ok =
    Kv.host_meta ms kv (Workload.kind_code Workload.Read) = reads
    && Kv.host_meta ms kv (Workload.kind_code Workload.Write) = writes
    && Kv.host_meta ms kv (Workload.kind_code Workload.Scan) = scans
  in
  (* The digest tree carried its own latency histogram through simulated
     memory; it must agree bucket-for-bucket with the host-side one (the
     digest's top bucket absorbs the host histogram's tail). *)
  let hist_ok = ref true in
  for hb = 0 to d_hist_buckets - 1 do
    let host =
      if hb < d_hist_buckets - 1 then Hist.get lat ~cls:cls_all ~bucket:hb
      else begin
        let tail = ref 0 in
        for b = hb to Hist.nbuckets - 1 do
          tail := !tail + Hist.get lat ~cls:cls_all ~bucket:b
        done;
        !tail
      end
    in
    if sim_hist.(hb) <> host then hist_ok := false
  done;
  let verified =
    !image_ok && meta_ok && !violations = 0 && !served = p.requests
    && !writes_done = writes
    && !sim_violations = !violations
    && sim_kinds.(0) = reads
    && sim_kinds.(1) = writes
    && sim_kinds.(2) = scans
    && !hist_ok
    && Hist.count lat ~cls:cls_all = p.requests
  in
  let ss = Memsys.sstats ms in
  let ps = Memsys.pstats ms in
  let cycles = ss.Sstats.cycles in
  let rps =
    if cycles = 0 then 0.
    else
      float_of_int p.requests
      /. (float_of_int cycles /. (cfg.Config.freq_ghz *. 1e9))
  in
  {
    proto;
    verified;
    violations = !violations;
    requests = p.requests;
    reads;
    writes;
    scans;
    distinct_written = Bitset.cardinal ws;
    checksum = !checksum;
    dynamic_sum = !dynamic_sum;
    cycles;
    instructions = ss.Sstats.instructions;
    invalidations = ps.Pstats.invalidations;
    downgrades = ps.Pstats.downgrades;
    msgs = Pstats.total_msgs ps;
    energy_pj = Energy.total_pj (Memsys.energy ms);
    rps;
    lat;
  }

let run_proto ?params ?workers ~machine ~proto () =
  let eng = Engine.create machine ~proto in
  run ?params ?workers eng

let equal_results a b =
  a.verified = b.verified
  && a.requests = b.requests
  && a.reads = b.reads
  && a.writes = b.writes
  && a.scans = b.scans
  && a.distinct_written = b.distinct_written
  && a.checksum = b.checksum

let percentile_points = [ ("p50", 50.); ("p95", 95.); ("p99", 99.); ("p99.9", 99.9) ]

let percentiles r =
  List.map
    (fun (nm, p) -> (nm, Hist.percentile r.lat ~cls:cls_all p))
    percentile_points

let cls_name = function
  | 0 -> "read"
  | 1 -> "write"
  | 2 -> "scan"
  | _ -> "all"

let summary r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "serve [%s]: %d requests in %d cycles (%.2f Mreq/s simulated)%s\n"
       r.proto r.requests r.cycles (r.rps /. 1e6)
       (if r.verified then "" else "  ** VERIFICATION FAILED **"));
  Buffer.add_string buf
    (Printf.sprintf
       "  mix: %d reads / %d writes / %d scans; %d distinct keys written\n"
       r.reads r.writes r.scans r.distinct_written);
  Buffer.add_string buf
    (Printf.sprintf "  traffic: %d invalidations, %d downgrades, %d msgs; %.1f uJ\n"
       r.invalidations r.downgrades r.msgs (r.energy_pj /. 1e6));
  for cls = 0 to cls_all do
    if Hist.count r.lat ~cls > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "  %-5s latency (cycles): p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f  mean %.0f  (%d reqs)\n"
           (cls_name cls)
           (Hist.percentile r.lat ~cls 50.)
           (Hist.percentile r.lat ~cls 95.)
           (Hist.percentile r.lat ~cls 99.)
           (Hist.percentile r.lat ~cls 99.9)
           (Hist.mean r.lat ~cls) (Hist.count r.lat ~cls))
  done;
  Buffer.contents buf

let json_summary p r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  let field ?(last = false) k v =
    Buffer.add_string b (Printf.sprintf "\"%s\": %s" k v);
    if not last then Buffer.add_string b ", "
  in
  field "workload" "\"serve\"";
  field "proto" (Printf.sprintf "\"%s\"" r.proto);
  field "requests" (string_of_int r.requests);
  field "keys" (string_of_int p.keys);
  field "theta" (Printf.sprintf "%g" p.theta);
  field "read_frac" (Printf.sprintf "%g" p.read_frac);
  field "scan_frac" (Printf.sprintf "%g" p.scan_frac);
  field "shards" (string_of_int p.shards);
  field "verified" (string_of_bool r.verified);
  field "violations" (string_of_int r.violations);
  field "reads" (string_of_int r.reads);
  field "writes" (string_of_int r.writes);
  field "scans" (string_of_int r.scans);
  field "distinct_written" (string_of_int r.distinct_written);
  field "checksum" (Printf.sprintf "\"%Lx\"" r.checksum);
  field "cycles" (string_of_int r.cycles);
  field "instructions" (string_of_int r.instructions);
  field "invalidations" (string_of_int r.invalidations);
  field "downgrades" (string_of_int r.downgrades);
  field "msgs" (string_of_int r.msgs);
  field "energy_pj" (Printf.sprintf "%.1f" r.energy_pj);
  field "rps" (Printf.sprintf "%.1f" r.rps);
  List.iter
    (fun (nm, p) ->
      let key =
        "lat_" ^ String.concat "" (String.split_on_char '.' nm)
      in
      field key (Printf.sprintf "%.3f" (Hist.percentile r.lat ~cls:cls_all p)))
    percentile_points;
  field "lat_mean" (Printf.sprintf "%.3f" (Hist.mean r.lat ~cls:cls_all));
  field ~last:true "lat_count" (string_of_int (Hist.count r.lat ~cls:cls_all));
  Buffer.add_string b "}";
  Buffer.contents b

let curve ?params ~machine ~proto cores =
  List.map
    (fun c ->
      let r = run_proto ?params ~machine:(Config.with_cores machine c) ~proto () in
      (c, r.rps))
    cores
