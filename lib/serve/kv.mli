(** Sharded in-simulator KV table: the "server" side of the serving
    tier.

    One flat open-addressing hash table per shard (linear probing,
    stored key + 1 so 0 means empty), all shards packed into two
    [Sarray]s in the creating task's heap, at most half full. The table
    is {e fully preloaded} host-side before any simulated access: every
    generated key is already present, so request handlers never insert
    — reads always hit, writes are pure updates — and the final memory
    image is a schedule-independent function of the set of written
    keys.

    Two deliberately contended structures ride along: [meta], a single
    cache line of per-kind request counters every handler bumps with a
    fetch-add (the shared-metadata hot spot the issue asks for), and a
    read-mostly routing directory each request consults. *)

type t

val create : keys:int -> shards:int -> t
(** Allocate and preload. Must be called inside a run, before any
    simulated access to the table (it fills the backing store
    directly, like a benchmark input generator). *)

val shards : t -> int
val capacity : t -> int
(** Slots per shard (a power of two, at least twice the per-shard key
    count). *)

val read : t -> int -> int64
(** Route (directory read), probe the shard, load the value. *)

val write : t -> int -> int64 -> unit
(** Route, probe, store the value. *)

val scan : t -> int -> len:int -> int64
(** Route, probe to the key's slot, then sum the values of [len]
    consecutive in-shard slots (wrapping; empty slots contribute 0). *)

val bump : t -> int -> unit
(** Fetch-add the [meta] counter for a request-kind code — every
    handler serializes on this line. *)

val host_value : Warden_sim.Memsys.t -> t -> int -> int64
(** Final value of a key, read from the backing store (call
    {!Warden_sim.Memsys.flush_all} first). *)

val host_meta : Warden_sim.Memsys.t -> t -> int -> int
(** Final value of a [meta] counter (flush first). *)
