open Warden_runtime

type t = {
  tab_keys : Sarray.t;  (* shards * cap; stored key + 1, 0 = empty *)
  tab_vals : Sarray.t;
  meta : Sarray.t;  (* request-kind counters sharing one cache line *)
  dir : Sarray.t;  (* read-mostly routing entries, one per shard *)
  nshards : int;
  cap : int;
  mask : int;
}

(* Multiplicative hash over the within-shard bits; the constant fits
   OCaml's 63-bit immediates. Must stay in lockstep with the host-side
   preloader and verifier probes below. *)
let hash k = (k * 0x2545F4914F6CDD1D) lsr 17

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~keys ~shards =
  if keys <= 0 then invalid_arg "Kv.create: keys must be positive";
  if shards <= 0 then invalid_arg "Kv.create: shards must be positive";
  let per_shard = (keys + shards - 1) / shards in
  let cap = pow2_at_least (2 * per_shard) 8 in
  let mask = cap - 1 in
  let tab_keys = Sarray.create ~len:(shards * cap) ~elt_bytes:8 in
  let tab_vals = Sarray.create ~len:(shards * cap) ~elt_bytes:8 in
  let meta = Sarray.create ~len:8 ~elt_bytes:8 in
  let dir = Sarray.create ~len:shards ~elt_bytes:8 in
  (* Preload every key host-side, exactly like a benchmark input file:
     the probe logic here mirrors the simulated [slot_of] so lookups
     find what insertion placed. *)
  let hkeys = Array.make (shards * cap) 0 in
  for k = 0 to keys - 1 do
    let base = k mod shards * cap in
    let i = ref (hash k land mask) in
    while hkeys.(base + !i) <> 0 do
      i := (!i + 1) land mask
    done;
    hkeys.(base + !i) <- k + 1
  done;
  let ms = Par.memsys () in
  Sarray.init_host ms tab_keys (fun j -> Int64.of_int hkeys.(j));
  Sarray.init_host ms tab_vals (fun j ->
      if hkeys.(j) = 0 then 0L else Workload.preload_value (hkeys.(j) - 1));
  Sarray.init_host ms dir (fun s -> Int64.of_int (s + 1));
  { tab_keys; tab_vals; meta; dir; nshards = shards; cap; mask }

let shards t = t.nshards
let capacity t = t.cap

(* Probe to the key's slot. The table never inserts or deletes after
   preload and every generated key is present, so the linear probe is
   guaranteed to terminate at the key. *)
let slot_of t key =
  let base = key mod t.nshards * t.cap in
  let stored = key + 1 in
  let i = ref (hash key land t.mask) in
  Par.tick 2;
  while Sarray.get_i t.tab_keys (base + !i) <> stored do
    i := (!i + 1) land t.mask;
    Par.tick 2
  done;
  base + !i

let route t key =
  let s = key mod t.nshards in
  ignore (Sarray.get_i t.dir s);
  Par.tick 1

let read t key =
  route t key;
  Sarray.get t.tab_vals (slot_of t key)

let write t key v =
  route t key;
  Sarray.set t.tab_vals (slot_of t key) v

let scan t key ~len =
  route t key;
  let slot = slot_of t key in
  let base = slot - (slot land t.mask) in
  let acc = ref 0L in
  for d = 0 to len - 1 do
    let j = base + ((slot + d) land t.mask) in
    if Sarray.get_i t.tab_keys j <> 0 then
      acc := Int64.add !acc (Sarray.get t.tab_vals j);
    Par.tick 1
  done;
  !acc

let bump t code = ignore (Sarray.fetch_add_i t.meta code 1)

let host_value ms t key =
  let base = key mod t.nshards * t.cap in
  let stored = key + 1 in
  let i = ref (hash key land t.mask) in
  while Int64.to_int (Sarray.peek_host ms t.tab_keys (base + !i)) <> stored do
    i := (!i + 1) land t.mask
  done;
  Sarray.peek_host ms t.tab_vals (base + !i)

let host_meta ms t code = Int64.to_int (Sarray.peek_host ms t.meta code)
