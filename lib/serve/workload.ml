open Warden_util

type kind = Read | Write | Scan

let kind_code = function Read -> 0 | Write -> 1 | Scan -> 2

type t = {
  keys : int;
  zipf : Zipf.t;
  read_frac : float;
  scan_frac : float;
  seed : int64;
}

let make ~keys ~theta ~read_frac ~scan_frac ~seed =
  if keys <= 0 then invalid_arg "Workload.make: keys must be positive";
  let frac_ok f = Float.is_finite f && f >= 0. && f <= 1. in
  if
    (not (frac_ok read_frac))
    || (not (frac_ok scan_frac))
    || read_frac +. scan_frac > 1.
  then invalid_arg "Workload.make: bad read/scan mix";
  (* Memoized: a curve sweep makes one workload per core-count point
     with identical key-space parameters, and the table is the only
     O(keys) part of construction. *)
  { keys; zipf = Zipf.create_memo ~n:keys ~theta; read_frac; scan_frac; seed }

let keys t = t.keys

(* Fixed-point golden ratio; the same counter-mixing constant SplitMix64
   itself advances by, so per-request generators are decorrelated. *)
let gamma = 0x9E3779B97F4A7C15L

let rng_of t i =
  Splitmix.make (Int64.logxor t.seed (Int64.mul (Int64.of_int (i + 1)) gamma))

let key_bits = 60
let key_mask = (1 lsl key_bits) - 1
let pack kind key = (kind_code kind lsl key_bits) lor key

let kind_of r =
  match r lsr key_bits with
  | 0 -> Read
  | 1 -> Write
  | 2 -> Scan
  | _ -> invalid_arg "Workload.kind_of: not a packed request"

let key_of r = r land key_mask

let request t i =
  let rng = rng_of t i in
  let u = Splitmix.float rng 1.0 in
  let kind =
    if u < t.read_frac then Read
    else if u < t.read_frac +. t.scan_frac then Scan
    else Write
  in
  pack kind (Zipf.sample t.zipf rng)

let fill t buf ~lo ~n =
  if n > Array.length buf then invalid_arg "Workload.fill: buffer too small";
  for k = 0 to n - 1 do
    buf.(k) <- request t (lo + k)
  done

(* Values are injective per key and disjoint between the preloaded and
   written generations, so a read can always be classified. *)
let preload_value k = Int64.of_int ((2 * k) + 1)
let written_value k = Int64.of_int ((2 * k) + 2)

let write_set t ~n =
  let s = Bitset.create () in
  for i = 0 to n - 1 do
    let r = request t i in
    match kind_of r with Write -> Bitset.add s (key_of r) | Read | Scan -> ()
  done;
  s

let kind_counts t ~n =
  let reads = ref 0 and writes = ref 0 and scans = ref 0 in
  for i = 0 to n - 1 do
    match kind_of (request t i) with
    | Read -> incr reads
    | Write -> incr writes
    | Scan -> incr scans
  done;
  (!reads, !writes, !scans)
