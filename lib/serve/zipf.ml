open Warden_util

type t = { n : int; theta : float; zetan : float; cdf : float array }

(* Total inverse-CDF tables ever built (every [create], memoized or
   not): the curve-sweep memoization test pins its delta to one. *)
let built = Atomic.make 0

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if not (Float.is_finite theta) || theta < 0. then
    invalid_arg "Zipf.create: theta must be finite and non-negative";
  (* One pass accumulates the harmonic weights into the (unnormalized)
     cumulative distribution; a second normalizes. *)
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  let zetan = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. zetan
  done;
  (* Pin the top against floating-point drift so every u < 1 maps. *)
  cdf.(n - 1) <- 1.;
  Atomic.incr built;
  { n; theta; zetan; cdf }

(* One-slot memo for curve sweeps, which rebuild the same table at every
   [Config.with_cores] point (identical [~n]/[~theta]). A [t] is
   immutable after [create] and the slot is atomic, so hits are safe to
   share across pool domains. *)
let memo : t option Atomic.t = Atomic.make None

let create_memo ~n ~theta =
  match Atomic.get memo with
  | Some t when t.n = n && Float.equal t.theta theta -> t
  | _ ->
      let t = create ~n ~theta in
      Atomic.set memo (Some t);
      t

let constructions () = Atomic.get built

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Splitmix.float rng 1.0 in
  (* Smallest rank whose cumulative probability exceeds u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  1. /. (Float.pow (float_of_int (k + 1)) t.theta *. t.zetan)
