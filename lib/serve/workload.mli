(** Deterministic open-loop traffic generator for the serving tier.

    Request [i] of a workload is a {e pure function} of [(seed, i)]:
    each request derives its own SplitMix64 generator from a
    counter-mixed seed, draws a kind from the configured mix and a key
    from the Zipfian popularity distribution, and packs both into one
    immediate int. Random access means streaming and materialized
    generation are trivially equivalent — the host can produce requests
    batch by batch into a reused buffer (O(batch) memory however many
    requests the simulation serves), and a verifier can recompute any
    prefix's statistics without storing the stream. *)

type kind = Read | Write | Scan

val kind_code : kind -> int
(** [Read] = 0, [Write] = 1, [Scan] = 2 — histogram class indices. *)

type t

val make :
  keys:int -> theta:float -> read_frac:float -> scan_frac:float ->
  seed:int64 -> t
(** Keys are Zipf ranks: key 0 is the hottest. [read_frac] and
    [scan_frac] are probabilities (the remainder writes); raises
    [Invalid_argument] unless both are in [0, 1] with a sum at most 1,
    and [keys > 0]. *)

val keys : t -> int

val request : t -> int -> int
(** The [i]-th request, packed; pure in [(t, i)]. *)

val fill : t -> int array -> lo:int -> n:int -> unit
(** [fill t buf ~lo ~n] stores requests [lo .. lo+n-1] into
    [buf.(0 .. n-1)] — the streaming producer. Identical to [n] calls
    of {!request} by construction. *)

val kind_of : int -> kind
val key_of : int -> int
(** Unpack a request. *)

val preload_value : int -> int64
(** Value key [k] holds before any request runs. *)

val written_value : int -> int64
(** Value every write stores for key [k]. Idempotent by design: the
    final KV image depends only on {e which} keys were written, never
    on write order, so verification is schedule-independent. *)

val write_set : t -> n:int -> Warden_util.Bitset.t
(** Keys written by the first [n] requests (host-side recomputation). *)

val kind_counts : t -> n:int -> int * int * int
(** [(reads, writes, scans)] among the first [n] requests. *)
