(** Bounded Zipfian rank sampler: rank [k] (0-based) is drawn with
    probability proportional to [1 / (k+1)^theta].

    [create] pays one O(n) pass to precompute the exact cumulative
    distribution; [sample] inverts it with an allocation-free binary
    search — O(log n) host work per request, exact to the pmf (unlike
    the YCSB closed-form approximation, whose head-rank bias would be
    visible at the generator's scale). The sampler is a pure function
    of its parameters and the supplied generator state, so request
    streams are reproducible bit-for-bit from a seed. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0 .. n-1] with
    skew [theta >= 0.]; [theta = 0.] degenerates to uniform and the
    classical [theta = 1.] needs no special-casing. Raises
    [Invalid_argument] if [n <= 0] or [theta] is negative or not
    finite. *)

val create_memo : n:int -> theta:float -> t
(** Like {!create}, but a one-slot memo keyed on [(n, theta)]: curve
    sweeps rebuild the identical table at every [Config.with_cores]
    point, and a sampler is immutable after construction, so repeat
    points share one table (safe across pool domains — the slot is
    atomic). A parameter change rebuilds and replaces the slot. *)

val constructions : unit -> int
(** Total inverse-CDF tables built by this process so far (every
    {!create}, memoized or not) — lets tests assert that a sweep of
    identical-parameter points builds exactly one. *)

val n : t -> int
val theta : t -> float

val sample : t -> Warden_util.Splitmix.t -> int
(** Draw a rank in [0 .. n-1]; rank 0 is the most popular. Advances the
    generator by exactly one [float] draw. *)

val pmf : t -> int -> float
(** Exact probability of rank [k] under the distribution —
    [1 / ((k+1)^theta * zeta(n, theta))] — for distribution tests. *)
