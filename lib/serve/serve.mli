(** The serving-tier driver: generate traffic, serve it on the [Par]
    runtime against the sharded {!Kv} table, measure per-request
    latency, verify, and report.

    One batch at a time, the root task streams requests from the
    {!Workload} generator into a reused host buffer (so host memory
    stays O(batch) however many requests run), stamps the batch's
    admission cycle, and serves it with a fork-join digest tree:
    leaves of [grain] requests execute the KV operations and write a
    small digest into their own (WARD-marked) heap; combiners read
    their children's digests and merge. Per-request sojourn latency —
    completion cycle minus batch admission — lands in a host-side
    {!Warden_obs.Hist} keyed by request kind.

    Everything recorded is a function of simulated time and the
    deterministic engine, so results — including the latency histogram
    — are bit-identical for every [sim_domains] value and speculation
    mode. Verification is schedule-{e independent}: writes store an
    idempotent per-key value, so the final table image must equal a
    host recomputation from the write-key set alone, whichever order
    the scheduler picked. *)

type params = {
  requests : int;
  keys : int;
  theta : float;  (** Zipf skew of key popularity. *)
  read_frac : float;
  scan_frac : float;  (** Remainder of the mix writes. *)
  scan_len : int;
  batch : int;  (** Requests admitted per open-loop burst. *)
  grain : int;  (** Requests per leaf handler task. *)
  shards : int;
  seed : int64;
}

val default : params
(** 1M requests over 64Ki keys, theta 0.99, 85/10/5 read/write/scan,
    batch 8192, grain 64, 8 shards. *)

type result = {
  proto : string;
  verified : bool;  (** Final image, meta counters, digests all check. *)
  violations : int;  (** Reads that returned neither generation. *)
  requests : int;
  reads : int;
  writes : int;
  scans : int;
  distinct_written : int;  (** Cardinality of the write-key set. *)
  checksum : int64;  (** Order-insensitive hash of the final image. *)
  dynamic_sum : int64;
      (** Digest of the values reads and scans returned. Deterministic
          per engine, but schedule-{e dependent}: protocols time reads
          differently, so this is reported, never compared across
          runs. *)
  cycles : int;
  instructions : int;
  invalidations : int;
  downgrades : int;
  msgs : int;
  energy_pj : float;
  rps : float;  (** Requests per simulated second. *)
  lat : Warden_obs.Hist.t;  (** Classes: read, write, scan, 3 = all. *)
}

val cls_all : int
(** Histogram class aggregating every request kind. *)

val run :
  ?params:params -> ?workers:int -> Warden_sim.Engine.t -> result
(** Serve [params.requests] requests on the engine (consuming it, as
    always — one run per engine). *)

val run_proto :
  ?params:params ->
  ?workers:int ->
  machine:Warden_machine.Config.t ->
  proto:[ `Mesi | `Warden | `Msi_bus | `Sisd ] ->
  unit ->
  result
(** Create an engine and {!run} it. *)

val equal_results : result -> result -> bool
(** Agreement on every schedule-independent field (verification flag,
    request counts, write set, final-image checksum) — what "equal
    results" means when comparing protocols. *)

val percentiles : result -> (string * float) list
(** [("p50", _); ("p95", _); ("p99", _); ("p99.9", _)] over all
    requests, in cycles. *)

val summary : result -> string
(** Human-readable report: throughput, per-kind latency percentiles,
    traffic and energy. *)

val json_summary : params -> result -> string
(** One JSON object of simulated quantities only (no host wall-clock),
    so byte-identical output across [sim_domains] is the CI gate. *)

val curve :
  ?params:params ->
  machine:Warden_machine.Config.t ->
  proto:[ `Mesi | `Warden | `Msi_bus | `Sisd ] ->
  int list ->
  (int * float) list
(** Requests/sec at each core count (restricting the machine with
    [Config.with_cores]); the scaling curve of the report. *)
