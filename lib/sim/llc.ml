open Warden_cache
open Warden_machine
open Warden_mem

(* Slices are chunked set-associative arrays (Csa): identical simulated
   behavior to the flat Sa arrays, but chunk storage materializes on
   first insert. At the many-socket scaling topologies the LLC is by far
   the largest simulator structure (~20M ways at 512 cores); eager
   allocation dominated engine construction and spread probes over
   hundreds of megabytes of cold host memory. *)
type t = { slices : Linedata.t Csa.t array; store : Store.t }

let create (cfg : Config.t) store =
  {
    slices =
      Array.init cfg.Config.sockets (fun _ ->
          Csa.create ~sets:(Config.l3_sets_per_socket cfg)
            ~ways:cfg.Config.l3_ways ~dummy:(Linedata.create ()));
    store;
  }

let store t = t.store

let writeback t blk (line : Linedata.t) =
  if Linedata.is_dirty line then
    Store.write_block_masked t.store blk (Linedata.bytes line)
      ~mask:(Linedata.dirty_mask line)

let insert t ~socket ~blk line =
  match Csa.insert t.slices.(socket) blk line with
  | None -> ()
  | Some (vblk, vline) -> writeback t vblk vline

let get_or_fetch t ~socket ~blk =
  match Csa.find t.slices.(socket) blk with
  | Some line -> (line, `L3)
  | None ->
      if Store.materialized t.store blk then begin
        let line = Linedata.of_bytes (Store.read_block t.store blk) in
        insert t ~socket ~blk line;
        (line, `Dram)
      end
      else begin
        (* Never-written memory is known zero: synthesize the line at the
           LLC without touching DRAM (zero-fill, as an OS does for fresh
           pages). *)
        let line = Linedata.create () in
        insert t ~socket ~blk line;
        (line, `Zero)
      end

let read t ~socket ~blk =
  let line, where = get_or_fetch t ~socket ~blk in
  (Linedata.bytes line, where)

(* Pure hint probe for the sharded engine's helper domains: touch the
   slice's tag set and, when resident, the line's first payload byte —
   never fetching or mutating ([peek_or_dummy] is pure). Racy reads may
   see a stale snapshot; the result is advisory and feeds a sink only. *)
let prefetch t ~socket ~blk =
  let slice = t.slices.(socket) in
  let line = Csa.peek_or_dummy slice blk in
  if line == Csa.dummy slice then 0
  else Char.code (Bytes.unsafe_get (Linedata.bytes line) 0)

let merge t ~socket ~blk src =
  let line, _ = get_or_fetch t ~socket ~blk in
  Linedata.merge_masked ~dst:line ~src

let put_full t ~socket ~blk bytes =
  let line = Linedata.of_bytes (Bytes.copy bytes) in
  Linedata.mark_all_dirty line;
  insert t ~socket ~blk line

let flush_to_store t =
  Array.iter
    (fun slice ->
      Csa.iter slice (fun blk line ->
          writeback t blk line;
          Linedata.clear_dirty line))
    t.slices

let save t w =
  Warden_util.Bin.w_int w (Array.length t.slices);
  Array.iter
    (fun slice -> Csa.save slice w ~elt:(fun w ld -> Linedata.save ld w))
    t.slices

let restore t r =
  let n = Warden_util.Bin.r_int r in
  if n <> Array.length t.slices then
    Warden_util.Bin.corrupt "Llc: socket count mismatch";
  Array.iter (fun slice -> Csa.restore slice r ~elt:Linedata.load_snap) t.slices

(* Host-side footprint of the lazy slices, for the scale bench report. *)
let chunks_stats t =
  Array.fold_left
    (fun (alloc, total) slice ->
      (alloc + Csa.chunks_allocated slice, total + Csa.chunks_total slice))
    (0, 0) t.slices
