(** One core's private cache hierarchy: an L1 tag array inclusive in an L2
    that holds the data and coherence state.

    The directory tracks private hierarchies as single coherent units (the
    usual simplification: L1/L2 are latency levels of one private copy).
    Coherence events against a line are counted per level holding it, as
    the paper counts them. *)

type line = {
  mutable state : Warden_proto.States.pstate;
  data : Warden_cache.Linedata.t;
}

val no_line : line
(** Miss sentinel returned by {!fast_hit}; compare with [(==)]. Never
    resident in any cache. *)

type t

val create :
  Warden_machine.Config.t ->
  evict:(blk:int -> Warden_proto.States.pstate -> Warden_cache.Linedata.t -> unit) ->
  t
(** [evict] is called with each line displaced from L2 (the private
    hierarchy's writeback/PutX path into the protocol). *)

type lookup =
  | Hit of { line : line; lat : int; level : [ `L1 | `L2 ] }
      (** Permission sufficient; for writes the state is E or M (an E hit
          is the silent E→M upgrade — the caller flips the state). *)
  | Upgrade of line  (** Line held in S but the access needs to write. *)
  | Miss

val lookup : t -> blk:int -> write:bool -> lookup
(** Probe the hierarchy, promoting L2 hits into L1 and refreshing LRU. *)

val fast_hit : t -> blk:int -> write:bool -> line
(** Allocation-free fast-path split of {!lookup}: the line iff the access
    is a plain hit with sufficient permission — committing exactly the
    mutations {!lookup}'s [Hit] branch would (LRU refresh, L1 promotion)
    and recording the serving level in {!last_l1}. Returns {!no_line} —
    having mutated {e nothing} — when the access would miss or needs an
    S→M upgrade, so the caller can fall back to the scheduled {!lookup}
    path without double-counting. *)

val last_l1 : t -> bool
(** Whether the last successful {!fast_hit} was served by the L1. *)

val prefetch : t -> blk:int -> int
(** Hint probe for the sharded engine's helper domains: warm the host
    cache behind a pending access (L2 tag set, resident payload bytes)
    without mutating LRU or any other simulator state. Safe to call from
    a helper domain while the commit lane runs; the result is advisory
    and must only feed a sink. *)

val fill : t -> blk:int -> Warden_proto.States.pstate -> Bytes.t -> line
(** Install a granted line into L2 and L1, evicting victims as needed. *)

val iter_resident : t -> (int -> line -> unit) -> unit
(** Visit every block resident in the hierarchy (i.e., in L2). *)

val check_inclusion : t -> (unit, string) result
(** Verify L1 ⊆ L2. *)

val peek : t -> blk:int -> Warden_proto.Fabric.probe option
val invalidate : t -> blk:int -> Warden_proto.Fabric.probe option
val downgrade : t -> blk:int -> Warden_proto.Fabric.probe option
(** Fabric probes; see {!Warden_proto.Fabric}. [downgrade] leaves the line
    in S with its dirty mask intact — the protocol merges then clears it. *)
