(** One core's private cache hierarchy: an L1 tag array inclusive in an L2
    that holds the data and coherence state.

    The directory tracks private hierarchies as single coherent units (the
    usual simplification: L1/L2 are latency levels of one private copy).
    Coherence events against a line are counted per level holding it, as
    the paper counts them. *)

type line = {
  mutable state : Warden_proto.States.pstate;
  data : Warden_cache.Linedata.t;
}

val no_line : line
(** Miss sentinel returned by {!fast_hit}; compare with [(==)]. Never
    resident in any cache. *)

type t

val create :
  Warden_machine.Config.t ->
  evict:(blk:int -> Warden_proto.States.pstate -> Warden_cache.Linedata.t -> unit) ->
  t
(** [evict] is called with each line displaced from L2 (the private
    hierarchy's writeback/PutX path into the protocol). *)

type lookup =
  | Hit of { line : line; lat : int; level : [ `L1 | `L2 ] }
      (** Permission sufficient; for writes the state is E or M (an E hit
          is the silent E→M upgrade — the caller flips the state). *)
  | Upgrade of line  (** Line held in S but the access needs to write. *)
  | Miss

val lookup : t -> blk:int -> write:bool -> lookup
(** Probe the hierarchy, promoting L2 hits into L1 and refreshing LRU. *)

val fast_hit : t -> blk:int -> write:bool -> line
(** Allocation-free fast-path split of {!lookup}: the line iff the access
    is a plain hit with sufficient permission — committing exactly the
    mutations {!lookup}'s [Hit] branch would (LRU refresh, L1 promotion)
    and recording the serving level in {!last_l1}. Returns {!no_line} —
    having mutated {e nothing} — when the access would miss or needs an
    S→M upgrade, so the caller can fall back to the scheduled {!lookup}
    path without double-counting. *)

val last_l1 : t -> bool
(** Whether the last successful {!fast_hit} was served by the L1. *)

(** {2 Speculative shard execution (DESIGN.md §11)}

    The hierarchy carries a version counter, bumped by the owning commit
    lane after every mutation of state a helper-domain probe consumes.
    Helpers record the version before their racy reads; the lane applies
    a speculation only when the recorded version is still current, which
    proves the helper observed exactly that version's state. *)

val version : t -> int
(** Current speculation version (acquire read; callable from helpers).
    Constant 0 when speculation is inactive for this configuration. *)

val bump : t -> unit
(** Invalidate outstanding speculations against this hierarchy. Lane
    only. Called internally by every mutating operation; exposed for the
    memory system's own line mutations (stores into a held line, upgrade
    fills) and for tests forcing the squash path. A spurious bump costs
    at most a squash. *)

type spec_result = {
  mutable ok : bool;  (** Plain permission-sufficient hit recorded. *)
  mutable sr_ver : int;  (** {!version} observed before the reads. *)
  mutable l2w : Warden_cache.Sa.way;
  mutable l1w : Warden_cache.Sa.way;
      (** L1 way; no-hit if not L1-resident. *)
  mutable l1victim : Warden_cache.Sa.way;
      (** L1 way an insert would fill, iff L1-absent. *)
  mutable value : int64;  (** Bytes at (off, size), iff [size > 0]. *)
}
(** A speculation's recorded inputs and outputs. Preallocated per engine
    slot; written in place by the owning helper, read by the lane only
    after the slot's publication handshake. *)

val spec_result : unit -> spec_result

val spec_read : t -> blk:int -> off:int -> size:int -> write:bool -> spec_result -> unit
(** Helper-domain probe: classify a pending access against a racy
    snapshot, recording way positions, the prospective L1 victim and the
    loaded value ([size > 0] only — pass [size:0] for stores). Leaves
    [ok = false] for misses and S→M upgrades, whose transitions stay on
    the lane. Memory-safe under any race with the lane; a stale snapshot
    records a version the lane will reject. Doubles as the host-cache
    warming probe the removed [prefetch] used to provide. *)

val commit_hit : t -> blk:int -> spec_result -> line
(** Lane-side replay of {!lookup}'s Hit-branch mutations at the recorded
    way positions. The caller must have validated [sr_ver] against
    {!version} (and not mutated the hierarchy since); then the result is
    bit-identical to the walked path. Returns the hit line. *)

val fill : t -> blk:int -> Warden_proto.States.pstate -> Bytes.t -> line
(** Install a granted line into L2 and L1, evicting victims as needed. *)

val iter_resident : t -> (int -> line -> unit) -> unit
(** Visit every block resident in the hierarchy (i.e., in L2). *)

val check_inclusion : t -> (unit, string) result
(** Verify L1 ⊆ L2. *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot both tag arrays (way positions, recency), every resident
    line's state and data, and the last-hit level. The speculation
    version is host scheduling state and is not serialized. *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite a hierarchy of identical geometry from {!save} output.
    Raises [Warden_util.Bin.Corrupt] on a geometry mismatch. *)

val peek : t -> blk:int -> Warden_proto.Fabric.probe option
val invalidate : t -> blk:int -> Warden_proto.Fabric.probe option
val downgrade : t -> blk:int -> Warden_proto.Fabric.probe option
(** Fabric probes; see {!Warden_proto.Fabric}. [downgrade] leaves the line
    in S with its dirty mask intact — the protocol merges then clears it. *)
