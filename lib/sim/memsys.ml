open Warden_mem
open Warden_cache
open Warden_machine
open Warden_proto
module Obs = Warden_obs.Obs
module Oev = Warden_obs.Events

(* Per-shard accounting accumulator. Access-path counters (and the L1/L2
   energy events they imply) are banked per shard so the commit lane can
   bump a shard-local record with no cross-shard traffic; the banks are
   folded into the global [Sstats.t]/[Energy.t] — in shard order, so the
   result is independent of when folds happen — by [fold_accts]. All
   counters are integers (and energy costs integer-valued floats), so any
   fold grouping yields bit-identical totals for every [sim_domains]. *)
type acct = {
  mutable a_loads : int;
  mutable a_stores : int;
  mutable a_rmws : int;
  mutable a_l1_hits : int;
  mutable a_l2_hits : int;
  mutable a_priv_misses : int;
  mutable a_l1_evts : int; (* pending Energy.l1_access deposits *)
  mutable a_l2_evts : int; (* pending Energy.l2_access deposits *)
}

let acct_create () =
  {
    a_loads = 0;
    a_stores = 0;
    a_rmws = 0;
    a_l1_hits = 0;
    a_l2_hits = 0;
    a_priv_misses = 0;
    a_l1_evts = 0;
    a_l2_evts = 0;
  }

(* Commit-order trace sink (DESIGN.md §15). A flat callback — (kind,
   thread, addr, size, value) — invoked at the point each access commits
   its memory-system transition, on whichever path served it (scheduled,
   inline fast, or speculative commit). Unlike the initiation-order
   recorder in [Warden_trace.Recorder], this stream is in commit order,
   so feeding it back through the access entry points replays the exact
   transition sequence with no program model. Flat ints avoid a circular
   dependency on the trace library. *)
let k_load = 0
let k_store = 1
let k_rmw = 2 (* value = the committed new value, not the RMW function *)
let k_region_add = 3 (* addr = lo, size = hi *)
let k_region_remove = 4 (* addr = lo, size = hi *)
let k_flush = 5
let k_poke = 6
let k_acquire = 7 (* addr = size = 0 *)
let k_release = 8 (* addr = size = 0 *)

let no_sink _ _ _ _ _ = ()

type t = {
  cfg : Config.t;
  energy : Energy.t;
  pstats : Pstats.t;
  sstats : Sstats.t;
  accts : acct array; (* one per shard, Config.num_shards *)
  core_shard : int array; (* shard of each core, precomputed *)
  obs : Obs.t;
  obs_on : bool; (* cached [Obs.enabled]: keeps the off path to one branch *)
  store : Store.t;
  llc : Llc.t;
  mutable priv : Privcache.t array;
  mutable proto : Protocol.t option;
  mutable self_sync : bool;
      (* cached [Protocol.kind = `Self]: such protocols take their
         coherence from the runtime's acquire/release fences, and their
         atomics must be pinned to the coherent scheduled path *)
  mutable bump : int;
  mutable fast_value : int64; (* value of the last fast load/rmw hit *)
  mutable sink : int -> int -> int -> int -> int64 -> unit;
  mutable sink_on : bool; (* cached [sink != no_sink], one-branch off path *)
}

let the_proto t =
  match t.proto with Some p -> p | None -> failwith "Memsys: not initialized"

let config t = t.cfg
let llc t = t.llc
let protocol t = the_proto t
let pstats t = t.pstats

(* Drain every shard bank into the global records. Shard order is fixed
   and all deferred quantities are counts, so folding at any moment — a
   commit-lane quantum barrier, a stats getter, end of run — produces the
   same totals for every [sim_domains]. *)
let fold_accts t =
  for s = 0 to Array.length t.accts - 1 do
    let a = t.accts.(s) in
    let ss = t.sstats in
    ss.Sstats.loads <- ss.Sstats.loads + a.a_loads;
    ss.Sstats.stores <- ss.Sstats.stores + a.a_stores;
    ss.Sstats.rmws <- ss.Sstats.rmws + a.a_rmws;
    ss.Sstats.l1_hits <- ss.Sstats.l1_hits + a.a_l1_hits;
    ss.Sstats.l2_hits <- ss.Sstats.l2_hits + a.a_l2_hits;
    ss.Sstats.priv_misses <- ss.Sstats.priv_misses + a.a_priv_misses;
    Energy.l1_accesses t.energy a.a_l1_evts;
    Energy.l2_accesses t.energy a.a_l2_evts;
    a.a_loads <- 0;
    a.a_stores <- 0;
    a.a_rmws <- 0;
    a.a_l1_hits <- 0;
    a.a_l2_hits <- 0;
    a.a_priv_misses <- 0;
    a.a_l1_evts <- 0;
    a.a_l2_evts <- 0
  done

(* The getters fold first so external readers always see merged totals.
   The engine caches the returned records once at creation for its own
   lane-owned counters (instructions, cycles, sb_stalls), which no fold
   touches. *)
let sstats t =
  fold_accts t;
  t.sstats

let energy t =
  fold_accts t;
  t.energy

let acct_of_core t core = t.accts.(Array.unsafe_get t.core_shard core)
let obs t = t.obs

let set_trace_sink t s =
  match s with
  | None ->
      t.sink <- no_sink;
      t.sink_on <- false
  | Some f ->
      t.sink <- f;
      t.sink_on <- true

let create cfg ~proto =
  let energy = Energy.create () in
  let pstats = Pstats.create () in
  let sstats = Sstats.create ~threads:(Config.num_threads cfg) in
  let store = Store.create () in
  let llc = Llc.create cfg store in
  let obs = Obs.create cfg in
  let t =
    {
      cfg;
      energy;
      pstats;
      sstats;
      obs;
      obs_on = Obs.enabled obs;
      accts = Array.init (Config.num_shards cfg) (fun _ -> acct_create ());
      core_shard =
        Array.init (Config.num_cores cfg) (Config.shard_of_core cfg);
      store;
      llc;
      priv = [||];
      proto = None;
      self_sync = false;
      fast_value = 0L;
      (* Leave page zero unmapped so address 0 can act as a null. *)
      bump = 1 lsl 16;
      sink = no_sink;
      sink_on = false;
    }
  in
  t.priv <-
    Array.init (Config.num_cores cfg) (fun core ->
        Privcache.create cfg ~evict:(fun ~blk pstate data ->
            Protocol.handle_evict (the_proto t) ~core ~blk ~pstate ~data));
  let fabric =
    {
      Fabric.config = cfg;
      energy;
      stats = pstats;
      obs;
      peek_priv = (fun ~core ~blk -> Privcache.peek t.priv.(core) ~blk);
      invalidate_priv = (fun ~core ~blk -> Privcache.invalidate t.priv.(core) ~blk);
      downgrade_priv = (fun ~core ~blk -> Privcache.downgrade t.priv.(core) ~blk);
      iter_priv =
        (fun ~core f ->
          Privcache.iter_resident t.priv.(core) (fun blk _ -> f blk));
      read_shared =
        (fun ~blk -> Llc.read llc ~socket:(Config.home_socket cfg blk) ~blk);
      llc_merge =
        (fun ~blk src -> Llc.merge llc ~socket:(Config.home_socket cfg blk) ~blk src);
      llc_put_full =
        (fun ~blk bytes ->
          Llc.put_full llc ~socket:(Config.home_socket cfg blk) ~blk bytes);
    }
  in
  t.proto <-
    Some
      (match proto with
      | `Mesi -> Protocol.mesi fabric
      | `Warden -> Warden_core.Warden.protocol fabric
      | `Msi_bus -> Msi_bus.protocol fabric
      | `Sisd -> Sisd.protocol fabric);
  t.self_sync <- Protocol.kind (the_proto t) = `Self;
  t

(* Obtain a line with sufficient permission, returning it and the access
   latency up to the point the data is available to the core. *)
let access_line t ~thread ~blk ~write =
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let a = acct_of_core t core in
  a.a_l1_evts <- a.a_l1_evts + 1;
  match Privcache.lookup pc ~blk ~write with
  | Privcache.Hit { line; lat; level } ->
      (match level with
      | `L1 ->
          a.a_l1_hits <- a.a_l1_hits + 1;
          if t.obs_on then Obs.access t.obs ~cls:Oev.l1_hit ~core ~blk ~lat
      | `L2 ->
          a.a_l2_hits <- a.a_l2_hits + 1;
          a.a_l2_evts <- a.a_l2_evts + 1;
          if t.obs_on then Obs.access t.obs ~cls:Oev.l2_hit ~core ~blk ~lat);
      (line, lat)
  | Privcache.Upgrade line ->
      a.a_priv_misses <- a.a_priv_misses + 1;
      a.a_l2_evts <- a.a_l2_evts + 1;
      let g =
        Protocol.handle_request (the_proto t) ~core ~blk ~write:true ~holds_s:true
      in
      (* A WARD grant may re-fill even on upgrade paths; accept it. *)
      if Mesi.has_fill g then
        Linedata.fill_from line.Privcache.data g.Mesi.fill;
      line.Privcache.state <- g.Mesi.pstate;
      (* The state/data writes above bypass Privcache's own bumps. *)
      Privcache.bump pc;
      let lat = t.cfg.Config.l2_lat + g.Mesi.latency in
      if t.obs_on then Obs.access t.obs ~cls:Oev.upgrade ~core ~blk ~lat;
      (line, lat)
  | Privcache.Miss ->
      a.a_priv_misses <- a.a_priv_misses + 1;
      a.a_l2_evts <- a.a_l2_evts + 1;
      let g =
        Protocol.handle_request (the_proto t) ~core ~blk ~write ~holds_s:false
      in
      assert (Mesi.has_fill g);
      let line = Privcache.fill pc ~blk g.Mesi.pstate g.Mesi.fill in
      let lat = t.cfg.Config.l2_lat + g.Mesi.latency in
      if t.obs_on then Obs.access t.obs ~cls:Oev.miss ~core ~blk ~lat;
      (line, lat)

let load t ~thread addr ~size =
  let a = acct_of_core t (Config.core_of_thread t.cfg thread) in
  a.a_loads <- a.a_loads + 1;
  let blk = Addr.block_of addr in
  let line, lat = access_line t ~thread ~blk ~write:false in
  let v =
    Linedata.load line.Privcache.data ~off:(Addr.offset_in_block addr) ~size
  in
  if t.sink_on then t.sink k_load thread addr size v;
  (v, lat)

(* [pc] is the hierarchy holding [line]: the state/data writes invalidate
   any speculation reading them, so the mutation ends with a bump. *)
let write_line pc line ~off ~size v =
  (match line.Privcache.state with
  | States.P_E -> line.Privcache.state <- States.P_M (* silent E->M upgrade *)
  | States.P_M -> ()
  | States.P_S -> assert false);
  Linedata.store line.Privcache.data ~off ~size v;
  Privcache.bump pc

let pc_of_thread t thread = t.priv.(Config.core_of_thread t.cfg thread)

let store t ~thread addr ~size v =
  let a = acct_of_core t (Config.core_of_thread t.cfg thread) in
  a.a_stores <- a.a_stores + 1;
  let blk = Addr.block_of addr in
  let line, lat = access_line t ~thread ~blk ~write:true in
  write_line (pc_of_thread t thread) line ~off:(Addr.offset_in_block addr) ~size v;
  if t.sink_on then t.sink k_store thread addr size v;
  lat

(* Atomics under a self-invalidation protocol. The plain access paths may
   serve stale bytes by design, but an RMW is a synchronization primitive
   (locks, join counters): it must read the globally latest value and
   publish its result. Model the standard SI/SD answer — perform atomics
   at the shared level: drop any local copy (flushing its dirty sectors),
   miss-fill the current bytes through the ordinary request path, apply
   the operation, and write the result straight back through, keeping a
   clean S copy. *)
let rmw_coherent t ~thread addr ~size f =
  let core = Config.core_of_thread t.cfg thread in
  let a = acct_of_core t core in
  a.a_rmws <- a.a_rmws + 1;
  let blk = Addr.block_of addr in
  let pc = t.priv.(core) in
  let fab = Protocol.fabric (the_proto t) in
  let cs = Config.socket_of_core t.cfg core in
  (match Privcache.invalidate pc ~blk with
  | None -> ()
  | Some p ->
      t.pstats.Pstats.self_invs <-
        t.pstats.Pstats.self_invs + p.Fabric.levels;
      if Linedata.is_dirty p.Fabric.data then begin
        Fabric.dir_msg fab ~socket:cs ~blk ~data:true;
        t.pstats.Pstats.writebacks <- t.pstats.Pstats.writebacks + 1;
        fab.Fabric.llc_merge ~blk p.Fabric.data
      end);
  let line, lat = access_line t ~thread ~blk ~write:true in
  let off = Addr.offset_in_block addr in
  let old = Linedata.load line.Privcache.data ~off ~size in
  let nv = f old in
  write_line pc line ~off ~size nv;
  (* Write-through of the result; the copy left behind is clean S. *)
  Fabric.dir_msg fab ~socket:cs ~blk ~data:true;
  fab.Fabric.llc_merge ~blk line.Privcache.data;
  Linedata.clear_dirty line.Privcache.data;
  line.Privcache.state <- States.P_S;
  t.pstats.Pstats.self_downs <- t.pstats.Pstats.self_downs + 1;
  Privcache.bump pc;
  if t.sink_on then t.sink k_rmw thread addr size nv;
  (old, lat)

let rmw t ~thread addr ~size f =
  if t.self_sync then rmw_coherent t ~thread addr ~size f
  else begin
    let a = acct_of_core t (Config.core_of_thread t.cfg thread) in
    a.a_rmws <- a.a_rmws + 1;
    let blk = Addr.block_of addr in
    let line, lat = access_line t ~thread ~blk ~write:true in
    let off = Addr.offset_in_block addr in
    let old = Linedata.load line.Privcache.data ~off ~size in
    let nv = f old in
    write_line (pc_of_thread t thread) line ~off ~size nv;
    if t.sink_on then t.sink k_rmw thread addr size nv;
    (old, lat)
  end

(* Runtime sync points (fork/join edges in the Par runtime). Only [`Self]
   protocols do work here; the engine does not even raise the effect for
   the eagerly-coherent ones, keeping their schedules untouched. *)
let acquire t ~thread =
  if t.sink_on then t.sink k_acquire thread 0 0 0L;
  t.pstats.Pstats.acquires <- t.pstats.Pstats.acquires + 1;
  Protocol.acquire (the_proto t)
    ~core:(Config.core_of_thread t.cfg thread)

let release t ~thread =
  if t.sink_on then t.sink k_release thread 0 0 0L;
  t.pstats.Pstats.releases <- t.pstats.Pstats.releases + 1;
  Protocol.release (the_proto t)
    ~core:(Config.core_of_thread t.cfg thread)

(* Fast-path accessors: commit iff the access is a private-cache hit
   needing no protocol transition, with event/energy accounting identical
   to the scheduled [load]/[store]/[rmw] paths; return the latency on a
   hit and [-1] — with no state change — otherwise. The engine uses these
   to satisfy accesses inline, without suspending the thread into the run
   queue. They allocate nothing: the loaded value of a fast load/rmw is
   left in [fast_value] rather than returned in a tuple.

   Returns the serving level's latency and counts its events. *)

let fast_hit_accounting t (a : acct) ~core ~blk (l1 : bool) =
  a.a_l1_evts <- a.a_l1_evts + 1;
  if l1 then begin
    a.a_l1_hits <- a.a_l1_hits + 1;
    let lat = t.cfg.Config.l1_lat in
    if t.obs_on then Obs.access t.obs ~cls:Oev.l1_hit ~core ~blk ~lat;
    lat
  end
  else begin
    a.a_l2_hits <- a.a_l2_hits + 1;
    a.a_l2_evts <- a.a_l2_evts + 1;
    let lat = t.cfg.Config.l2_lat in
    if t.obs_on then Obs.access t.obs ~cls:Oev.l2_hit ~core ~blk ~lat;
    lat
  end

let fast_value t = t.fast_value

let try_fast_load t ~thread addr ~size =
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:false in
  if line == Privcache.no_line then -1
  else begin
    let a = acct_of_core t core in
    a.a_loads <- a.a_loads + 1;
    t.fast_value <-
      Linedata.load line.Privcache.data ~off:(Addr.offset_in_block addr) ~size;
    if t.sink_on then t.sink k_load thread addr size t.fast_value;
    fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc)
  end

let try_fast_store t ~thread addr ~size v =
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:true in
  if line == Privcache.no_line then -1
  else begin
    let a = acct_of_core t core in
    a.a_stores <- a.a_stores + 1;
    write_line pc line ~off:(Addr.offset_in_block addr) ~size v;
    if t.sink_on then t.sink k_store thread addr size v;
    fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc)
  end

let try_fast_rmw t ~thread addr ~size f =
  if t.self_sync then -1 (* atomics take the coherent scheduled path *)
  else
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:true in
  if line == Privcache.no_line then -1
  else begin
    let a = acct_of_core t core in
    a.a_rmws <- a.a_rmws + 1;
    let off = Addr.offset_in_block addr in
    let old = Linedata.load line.Privcache.data ~off ~size in
    let nv = f old in
    write_line pc line ~off ~size nv;
    if t.sink_on then t.sink k_rmw thread addr size nv;
    t.fast_value <- old;
    fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc)
  end

(* --- trace replay (DESIGN.md §15) ---------------------------------------- *)

(* Replay entry points: the per-event work of [try_fast_*] with the
   scheduled fallback fused in, minus work a replayed stream never
   observes. A replayed load's value is already in the recording and a
   load mutates neither the line data nor anything [fast_value] feeds
   (it is reset across quiescent points and never snapshotted), so the
   fast hit skips [Linedata.load] and the [fast_value] write — about a
   third of the fast-load cost, most of it Int64 boxing. A replayed
   RMW's new value is recorded, so the hit path skips loading the old
   value. No sink fires: recording during replay is unsupported (the
   stream itself is the recording). Every state mutation and every
   stats/energy/obs account is identical to the live paths, which is
   what makes replayed final stats bit-identical to the recorded run. *)

let replay_load t ~thread addr ~size =
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:false in
  if line == Privcache.no_line then
    ignore (load t ~thread addr ~size : int64 * int)
  else begin
    let a = acct_of_core t core in
    a.a_loads <- a.a_loads + 1;
    ignore (fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc) : int)
  end

let replay_store t ~thread addr ~size v =
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:true in
  if line == Privcache.no_line then
    ignore (store t ~thread addr ~size v : int)
  else begin
    let a = acct_of_core t core in
    a.a_stores <- a.a_stores + 1;
    write_line pc line ~off:(Addr.offset_in_block addr) ~size v;
    ignore (fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc) : int)
  end

let replay_rmw t ~thread addr ~size nv =
  if t.self_sync then
    (* Atomics never took the fast path live, so replay them scheduled. *)
    ignore (rmw t ~thread addr ~size (fun _ -> nv) : int64 * int)
  else
  let blk = Addr.block_of addr in
  let core = Config.core_of_thread t.cfg thread in
  let pc = t.priv.(core) in
  let line = Privcache.fast_hit pc ~blk ~write:true in
  if line == Privcache.no_line then
    let f = fun (_ : int64) -> nv in
    ignore (rmw t ~thread addr ~size f : int64 * int)
  else begin
    let a = acct_of_core t core in
    a.a_rmws <- a.a_rmws + 1;
    write_line pc line ~off:(Addr.offset_in_block addr) ~size nv;
    ignore (fast_hit_accounting t a ~core ~blk (Privcache.last_l1 pc) : int)
  end

(* --- speculative shard execution (DESIGN.md §11) ------------------------- *)

(* Helper-domain side. Classify the pending access against the owning
   core's hierarchy ({!Privcache.spec_read}: racy but memory-safe, with
   the observed version recorded for the lane's validation). A plain hit
   records a committable speculation; for misses and upgrades — whose
   protocol transition must run on the lane — warm the host cache behind
   the structures the lane will walk instead: the block's directory word,
   its home LLC slice, and the backing-store page (each probe pure and
   torn-read-safe; see Dirstate.prefetch, Llc.prefetch, Store.prefetch).
   The returned int is advisory and must only feed a sink. *)
let spec_read t ~thread addr ~size ~write (r : Privcache.spec_result) =
  let core = Config.core_of_thread t.cfg thread in
  let blk = Addr.block_of addr in
  Privcache.spec_read t.priv.(core) ~blk
    ~off:(Addr.offset_in_block addr) ~size ~write r;
  if r.Privcache.ok then 0
  else
    Protocol.prefetch (the_proto t) ~blk
    + Llc.prefetch t.llc ~socket:(Config.home_socket t.cfg blk) ~blk
    + Store.prefetch t.store (Addr.base_of_block blk)

(* Commit-lane side. Validate a speculation — its recorded version must
   still be current, proving the helper observed exactly that state — and
   apply it: replay the Hit-branch mutations at the recorded ways and
   account events/energy/obs identically to the scheduled paths. Return
   the latency, or [-1] — having changed nothing — on a squash, where the
   caller re-executes the access inline. [sim_spec_torture] forces the
   squash by bumping the version first (spurious bumps are always safe). *)

let spec_validate t ~core (r : Privcache.spec_result) =
  let pc = t.priv.(core) in
  if t.cfg.Config.sim_spec_torture then Privcache.bump pc;
  Privcache.version pc = r.Privcache.sr_ver

let try_commit_load t ~thread addr ~size (r : Privcache.spec_result) =
  let core = Config.core_of_thread t.cfg thread in
  if not (spec_validate t ~core r) then -1
  else begin
    let blk = Addr.block_of addr in
    let a = acct_of_core t core in
    a.a_loads <- a.a_loads + 1;
    ignore (Privcache.commit_hit t.priv.(core) ~blk r : Privcache.line);
    t.fast_value <- r.Privcache.value;
    if t.sink_on then t.sink k_load thread addr size t.fast_value;
    fast_hit_accounting t a ~core ~blk (Sa.hit r.Privcache.l1w)
  end

let try_commit_store t ~thread addr ~size v (r : Privcache.spec_result) =
  let core = Config.core_of_thread t.cfg thread in
  if not (spec_validate t ~core r) then -1
  else begin
    let blk = Addr.block_of addr in
    let a = acct_of_core t core in
    a.a_stores <- a.a_stores + 1;
    let pc = t.priv.(core) in
    let line = Privcache.commit_hit pc ~blk r in
    write_line pc line ~off:(Addr.offset_in_block addr) ~size v;
    if t.sink_on then t.sink k_store thread addr size v;
    fast_hit_accounting t a ~core ~blk (Sa.hit r.Privcache.l1w)
  end

(* [nv] is the helper's application of the RMW function to the recorded
   old value; validation makes the old value exact and the function is
   pure, so storing [nv] matches the scheduled path's [f old]. *)
let try_commit_rmw t ~thread addr ~size ~nv (r : Privcache.spec_result) =
  if t.self_sync then -1 (* atomics take the coherent scheduled path *)
  else
  let core = Config.core_of_thread t.cfg thread in
  if not (spec_validate t ~core r) then -1
  else begin
    let blk = Addr.block_of addr in
    let a = acct_of_core t core in
    a.a_rmws <- a.a_rmws + 1;
    let pc = t.priv.(core) in
    let line = Privcache.commit_hit pc ~blk r in
    write_line pc line ~off:(Addr.offset_in_block addr) ~size nv;
    if t.sink_on then t.sink k_rmw thread addr size nv;
    t.fast_value <- r.Privcache.value;
    fast_hit_accounting t a ~core ~blk (Sa.hit r.Privcache.l1w)
  end

(* Region activity is recorded here — not in the protocols — so the trace
   reflects the runtime's annotations under MESI too, where the protocol
   itself ignores them. [flushed] is recovered from the charged latency
   (exactly [flushed * reconcile_per_block] by construction). *)
let region_add t ~thread ~lo ~hi =
  if t.sink_on then t.sink k_region_add thread lo hi 0L;
  let ok = Protocol.region_add (the_proto t) ~lo ~hi in
  (* Even a rejected attempt (always, under MESI) is an annotation the
     profile should show, and the stats banks count it. *)
  if t.obs_on then
    Obs.region t.obs
      ~core:(Config.core_of_thread t.cfg thread)
      ~lo ~hi ~exit:false ~flushed:0;
  ok

let region_remove t ~thread ~lo ~hi =
  if t.sink_on then t.sink k_region_remove thread lo hi 0L;
  let lat = Protocol.region_remove (the_proto t) ~lo ~hi in
  if t.obs_on then
    Obs.region t.obs
      ~core:(Config.core_of_thread t.cfg thread)
      ~lo ~hi ~exit:true
      ~flushed:(lat / max 1 t.cfg.Config.reconcile_per_block);
  lat

let alloc t ~bytes ~align =
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Memsys.alloc: align";
  let addr = (t.bump + align - 1) land lnot (align - 1) in
  t.bump <- addr + bytes;
  addr

let flush_all t =
  if t.sink_on then t.sink k_flush (-1) 0 0 0L;
  Protocol.flush_all (the_proto t);
  Llc.flush_to_store t.llc

let peek t addr ~size = Store.load t.store addr ~size

let poke t addr ~size v =
  if t.sink_on then t.sink k_poke (-1) addr size v;
  Store.store t.store addr ~size v

let footprint_bytes t = Store.footprint_bytes t.store

(* --- snapshot (DESIGN.md §15) -------------------------------------------- *)

(* Only meaningful at quiescent points (between [Engine.run]s): no
   continuation holds unretired accesses, so the full simulated state is
   the flat structures below. Banks are folded first so the saved
   [Sstats]/[Energy] carry complete totals and a restored system starts
   with empty banks either way. *)
let save_state t w =
  fold_accts t;
  Store.save t.store w;
  Llc.save t.llc w;
  Warden_util.Bin.w_int w (Array.length t.priv);
  Array.iter (fun pc -> Privcache.save pc w) t.priv;
  Protocol.save_state (the_proto t) w;
  Pstats.save t.pstats w;
  Sstats.save t.sstats w;
  Energy.save t.energy w;
  Warden_util.Bin.w_int w t.bump

let restore_state t r =
  (* Zero the banks (the folded residue lands in records we overwrite). *)
  fold_accts t;
  Store.restore t.store r;
  Llc.restore t.llc r;
  let n = Warden_util.Bin.r_int r in
  if n <> Array.length t.priv then
    Warden_util.Bin.corrupt "Memsys: core count mismatch";
  Array.iter (fun pc -> Privcache.restore pc r) t.priv;
  Protocol.restore_state (the_proto t) r;
  Pstats.restore t.pstats r;
  Sstats.restore t.sstats r;
  Energy.restore t.energy r;
  t.bump <- Warden_util.Bin.r_int r;
  (* Valid only between a successful fast access and its consumer, never
     across a quiescent point. *)
  t.fast_value <- 0L

(* The directory is reachable only through the protocol's handlers, so the
   audit walks the private caches and cross-checks with fabric peeks. *)
let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let ncores = Config.num_cores t.cfg in
  let holders_of blk =
    List.filter
      (fun c -> Privcache.peek t.priv.(c) ~blk <> None)
      (List.init ncores Fun.id)
  in
  let proto = the_proto t in
  (* SWMR among private copies — except for blocks in an active WARD
     region, where multiple exclusive-like copies are the design, and
     except under [`Self] protocols, where concurrent writers of disjoint
     sectors are the whole point. *)
  let self = Protocol.kind proto = `Self in
  for core = 0 to ncores - 1 do
    Privcache.iter_resident t.priv.(core) (fun blk line ->
        if not (Protocol.is_ward proto ~blk) then
          match line.Privcache.state with
          | States.P_M | States.P_E ->
              if not self then
                List.iter
                  (fun other ->
                    if other <> core then
                      err
                        "SWMR violated: block %d exclusive at core %d but held by %d"
                        blk core other)
                  (holders_of blk)
          | States.P_S ->
              (* S means clean with respect to the LLC. *)
              if Warden_cache.Linedata.is_dirty line.Privcache.data then
                err "dirty S copy of block %d at core %d" blk core)
  done;
  (* L1 inclusion is checked inside each private cache. *)
  for core = 0 to ncores - 1 do
    match Privcache.check_inclusion t.priv.(core) with
    | Ok () -> ()
    | Error m -> err "core %d: %s" core m
  done;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "\n" (List.rev es))

