(* One speculation slot per hardware thread (DESIGN.md §11). The commit
   lane is the only descriptor writer and [pub]/[fin] carry the ordering:
   the lane writes the [d_*] fields plainly and then release-publishes
   the access's global sequence number into [pub]; the owning helper
   acquire-reads [pub] (so the descriptor is fully visible), writes [res]
   and [r_new] plainly, and release-publishes the same number into [fin].
   The lane adopts [res] only after acquire-reading [fin = pub], which
   happens-after every helper write. Sequence numbers are globally
   monotonic, so a stale completion can never alias a fresh one. *)

type slot = {
  mutable d_kind : int;
  mutable d_addr : int; (* Addr.t is int *)
  mutable d_size : int;
  mutable d_value : int64; (* store operand (unused by load/rmw) *)
  mutable d_f : int64 -> int64; (* rmw function (unused by load/store) *)
  mutable pops : int; (* lane pop count at publish, for commit depth *)
  pub : int Atomic.t; (* last published access's sequence, -1 = none *)
  res : Privcache.spec_result; (* helper-owned between pub and fin *)
  mutable r_new : int64; (* helper: [d_f] applied to the speculated old *)
  fin : int Atomic.t; (* = pub once res/r_new are valid for it *)
}

let load = 0
let store = 1
let rmw = 2

let create () =
  {
    d_kind = load;
    d_addr = 0;
    d_size = 0;
    d_value = 0L;
    d_f = Fun.id;
    pops = 0;
    pub = Atomic.make (-1);
    res = Privcache.spec_result ();
    r_new = 0L;
    fin = Atomic.make (-1);
  }
