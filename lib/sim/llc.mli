(** The shared last-level cache: one set-associative slice per socket,
    address-interleaved, backed by the simulated DRAM ({!Warden_mem.Store}).

    Lines carry byte-granular dirty masks so that WARDen's sectored
    writebacks and reconciliation merges can land here before reaching
    memory. Dirty evictions write the masked bytes back to the store. *)

type t

val create : Warden_machine.Config.t -> Warden_mem.Store.t -> t

val store : t -> Warden_mem.Store.t

val read : t -> socket:int -> blk:int -> Bytes.t * [ `L3 | `Dram | `Zero ]
(** Data of [blk] from the slice, filling from memory on a miss; reports
    the source ([`Zero]: the block was never written, so it is zero-filled
    at the LLC without a DRAM access). The returned bytes alias the
    resident line — callers copy them into private lines via
    [Linedata.fill_from]. *)

val merge : t -> socket:int -> blk:int -> Warden_cache.Linedata.t -> unit
(** Merge a private copy's dirty bytes into the resident line (fetching the
    base from memory first if absent). *)

val put_full : t -> socket:int -> blk:int -> Bytes.t -> unit
(** Full-line dirty install (M-state writeback). *)

val prefetch : t -> socket:int -> blk:int -> int
(** Pure hint probe for the sharded engine's helper domains: warm the
    host cache behind the slice's tag set and resident payload without
    fetching or mutating. Safe to race with the owning lane; the result
    is advisory and feeds a sink only. *)

val flush_to_store : t -> unit
(** Write every dirty line back to memory (end-of-run drain). *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot every slice's materialized chunks (the backing store is
    serialized separately by its owner). *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite slices of identical geometry from {!save} output. Raises
    [Warden_util.Bin.Corrupt] on a geometry mismatch. *)

val chunks_stats : t -> int * int
(** [(allocated, total)] slice chunks across all sockets: the lazy
    storage actually materialized versus the eager-array equivalent (the
    scale bench reports this). *)
