open Warden_cache
open Warden_proto
open Warden_machine

type line = { mutable state : States.pstate; data : Linedata.t }

(* Miss sentinel for the allocation-free fast path (and the Sa dummy
   payload). Never installed in a cache; compare with (==). *)
let no_line = { state = States.P_S; data = Linedata.create () }

type t = {
  l1 : unit Sa.t;
  l2 : line Sa.t;
  l1_lat : int;
  l2_lat : int;
  mutable last_l1 : bool; (* level of the last fast_hit: true = L1 *)
  evict : blk:int -> States.pstate -> Linedata.t -> unit;
  (* Speculation version (DESIGN.md §11). The owning commit lane bumps it
     after every mutation of state a helper's [spec_read] consumes (tags,
     recency, line states, line bytes): mutate, then bump. Helpers read
     it (acquire) before their data reads; the lane validates a recorded
     version against the current one before applying a speculation, so a
     match proves the helper saw exactly the version's state. A spurious
     bump only costs a squash; a missing bump would be unsound — bump
     conservatively. [spec] gates the bumps so an unsharded run pays one
     predicted branch per mutation. *)
  ver : int Atomic.t;
  spec : bool;
}

let create (cfg : Config.t) ~evict =
  {
    l1 = Sa.create ~sets:(Config.l1_sets cfg) ~ways:cfg.Config.l1_ways ~dummy:();
    l2 =
      Sa.create ~sets:(Config.l2_sets cfg) ~ways:cfg.Config.l2_ways
        ~dummy:no_line;
    l1_lat = cfg.Config.l1_lat;
    l2_lat = cfg.Config.l2_lat;
    last_l1 = false;
    evict;
    ver = Atomic.make 0;
    spec = Config.num_shards cfg > 1 && cfg.Config.sim_spec;
  }

let bump t = if t.spec then Atomic.incr t.ver
let version t = Atomic.get t.ver

type lookup =
  | Hit of { line : line; lat : int; level : [ `L1 | `L2 ] }
  | Upgrade of line
  | Miss

let lookup t ~blk ~write =
  let in_l1 = Sa.touch t.l1 blk in
  let w2 = Sa.find_way t.l2 blk in
  if not (Sa.hit w2) then begin
    (* Inclusion: nothing in L1 without L2. *)
    assert (not in_l1);
    Miss
  end
  else begin
    let line = Sa.value t.l2 w2 in
    if not in_l1 then
      (* Promote into L1; the displaced L1 line stays valid in L2. *)
      ignore (Sa.insert t.l1 blk ());
    bump t;
    match (line.state, write) with
    | States.P_S, true -> Upgrade line
    | _ ->
        Hit
          {
            line;
            lat = (if in_l1 then t.l1_lat else t.l2_lat);
            level = (if in_l1 then `L1 else `L2);
          }
  end

(* Fast-path split of [lookup]: succeed only when the access is a plain
   permission-sufficient hit, committing exactly the state changes
   [lookup]'s [Hit] branch would make (LRU refresh in both levels plus L1
   promotion). On an upgrade or miss, return [no_line] having mutated
   nothing — the caller falls back to the scheduled [lookup] path, which
   then performs those mutations at the same point of the run. *)
let fast_hit t ~blk ~write =
  let w2 = Sa.peek_way t.l2 blk in
  if not (Sa.hit w2) then no_line
  else
    let line = Sa.value t.l2 w2 in
    (* [match] rather than [=]: pstate equality would go through the
       polymorphic comparator on every access. *)
    if write && (match line.state with States.P_S -> true | _ -> false) then
      no_line
    else begin
      let in_l1 = Sa.touch t.l1 blk in
      (* Rotate the hit to the MRU-first way, exactly as the slow path's
         [Sa.find_way] and the spec commit lane's [Sa.promote_way] do: a
         re-probe of the hot block then exits on the first comparison.
         Way position carries no simulated meaning (recency lives in
         [last_use], victim choice reads only that), so this changes no
         observable behavior. *)
      ignore (Sa.promote_way t.l2 blk w2 : Sa.way);
      if not in_l1 then Sa.insert_absent t.l1 blk ();
      t.last_l1 <- in_l1;
      bump t;
      line
    end

let last_l1 t = t.last_l1

(* --- speculative shard execution (DESIGN.md §11) ------------------------- *)

(* One preallocated result record per engine speculation slot: the helper
   writes fields in place so the probe loop allocates nothing but the
   boxed value. *)
type spec_result = {
  mutable ok : bool;
  mutable sr_ver : int; (* [version] observed before the reads *)
  mutable l2w : Sa.way;
  mutable l1w : Sa.way; (* no-hit when the block is not L1-resident *)
  mutable l1victim : Sa.way; (* L1 way an insert would fill, iff L1-absent *)
  mutable value : int64; (* bytes at (off, size), iff [size > 0] *)
}

let spec_result () =
  {
    ok = false;
    sr_ver = 0;
    l2w = Sa.no_way;
    l1w = Sa.no_way;
    l1victim = Sa.no_way;
    value = 0L;
  }

(* Helper-domain probe: classify a pending access against a racy snapshot
   of the hierarchy, recording everything the lane needs to replay the
   Hit path without walking — way positions, the L1 victim, the loaded
   value — plus the version the snapshot belongs to. Every read here is
   memory-safe under a race (fixed-size arrays, masked indices, torn
   values at worst); a torn or stale snapshot records a version the lane
   will find outdated, which squashes the speculation. The walk doubles
   as the host-cache warming the old pure-prefetch path provided.
   Accesses that would miss or upgrade are left [ok = false]: their
   transitions run protocol code on the lane (see Memsys.spec_read, which
   warms the directory/LLC/store behind them instead). *)
let spec_read t ~blk ~off ~size ~write (r : spec_result) =
  r.ok <- false;
  let v = Atomic.get t.ver in
  (* acquire first: reads below see at least version [v]'s writes *)
  let w2 = Sa.peek_way t.l2 blk in
  if Sa.hit w2 then begin
    let line = Sa.value t.l2 w2 in
    if not (write && match line.state with States.P_S -> true | _ -> false)
    then begin
      let w1 = Sa.peek_way t.l1 blk in
      r.l1victim <-
        (if Sa.hit w1 then Sa.no_way else Sa.peek_victim_way t.l1 blk);
      if size > 0 then r.value <- Linedata.load line.data ~off ~size;
      r.sr_ver <- v;
      r.l2w <- w2;
      r.l1w <- w1;
      r.ok <- true
    end
  end

(* Commit-lane replay of [lookup]'s Hit-branch mutations using the
   speculatively recorded way positions — version validation (the caller's
   job, via [version]) guarantees they are still exact, so the known-way
   applies produce bit-identical tags, rotation, recency and LRU clock to
   the walked path. Returns the hit line. *)
let commit_hit t ~blk (r : spec_result) =
  let in_l1 = Sa.hit r.l1w in
  if in_l1 then ignore (Sa.promote_way t.l1 blk r.l1w : Sa.way)
  else Sa.insert_at t.l1 blk r.l1victim ();
  let w2 = Sa.promote_way t.l2 blk r.l2w in
  t.last_l1 <- in_l1;
  bump t;
  Sa.value t.l2 w2

let fill t ~blk pstate bytes =
  let line = { state = pstate; data = Linedata.create () } in
  Linedata.fill_from line.data bytes;
  (match Sa.insert t.l2 blk line with
  | None -> ()
  | Some (vblk, vline) ->
      ignore (Sa.remove t.l1 vblk);
      t.evict ~blk:vblk vline.state vline.data);
  ignore (Sa.insert t.l1 blk ());
  bump t;
  line

let iter_resident t f = Sa.iter t.l2 f

let check_inclusion t =
  let bad = ref None in
  Sa.iter t.l1 (fun blk () ->
      if (not (Sa.mem t.l2 blk)) && !bad = None then
        bad := Some (Printf.sprintf "block %d in L1 but not in L2" blk));
  match !bad with None -> Ok () | Some m -> Error m

(* --- snapshot (DESIGN.md §15) -------------------------------------------- *)

let pstate_code = function States.P_S -> 0 | States.P_E -> 1 | States.P_M -> 2

let pstate_of_code = function
  | 0 -> States.P_S
  | 1 -> States.P_E
  | 2 -> States.P_M
  | _ -> Warden_util.Bin.corrupt "Privcache: bad line state"

(* The speculation version and [spec] gate are host-side scheduling state,
   not simulated state: they are not serialized (a restored hierarchy
   starts a fresh speculation epoch). *)
let save t w =
  let module B = Warden_util.Bin in
  Sa.save t.l1 w ~elt:(fun _ () -> ());
  Sa.save t.l2 w ~elt:(fun w ln ->
      B.w_u8 w (pstate_code ln.state);
      Linedata.save ln.data w);
  B.w_bool w t.last_l1

let restore t r =
  let module B = Warden_util.Bin in
  Sa.restore t.l1 r ~elt:(fun _ -> ());
  Sa.restore t.l2 r ~elt:(fun r ->
      let state = pstate_of_code (B.r_u8 r) in
      { state; data = Linedata.load_snap r });
  t.last_l1 <- B.r_bool r;
  bump t

let probe_of t blk line =
  let levels = if Sa.mem t.l1 blk then 2 else 1 in
  { Fabric.levels; state = line.state; data = line.data }

(* The fabric probes below mutate on a hit ([find_way] refreshes recency
   and rotates; invalidation and downgrade change residency and state),
   so each hit path ends in a [bump]. *)

let peek t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None
  else begin
    let p = probe_of t blk (Sa.value t.l2 w) in
    bump t;
    Some p
  end

let invalidate t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None
  else begin
    let p = probe_of t blk (Sa.value t.l2 w) in
    ignore (Sa.remove t.l1 blk);
    ignore (Sa.remove t.l2 blk);
    bump t;
    Some p
  end

let downgrade t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None
  else begin
    let line = Sa.value t.l2 w in
    let p = probe_of t blk line in
    line.state <- States.P_S;
    bump t;
    Some p
  end
