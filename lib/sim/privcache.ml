open Warden_cache
open Warden_proto
open Warden_machine

type line = { mutable state : States.pstate; data : Linedata.t }

type t = {
  l1 : unit Sa.t;
  l2 : line Sa.t;
  l1_lat : int;
  l2_lat : int;
  evict : blk:int -> States.pstate -> Linedata.t -> unit;
}

let create (cfg : Config.t) ~evict =
  {
    l1 = Sa.create ~sets:(Config.l1_sets cfg) ~ways:cfg.Config.l1_ways;
    l2 = Sa.create ~sets:(Config.l2_sets cfg) ~ways:cfg.Config.l2_ways;
    l1_lat = cfg.Config.l1_lat;
    l2_lat = cfg.Config.l2_lat;
    evict;
  }

type lookup =
  | Hit of { line : line; lat : int; level : [ `L1 | `L2 ] }
  | Upgrade of line
  | Miss

let classify line ~write =
  match (line.state, write) with
  | States.P_S, true -> Upgrade line
  | _, _ -> Hit { line; lat = 0; level = `L2 }

let lookup t ~blk ~write =
  let in_l1 = Sa.find t.l1 blk <> None in
  match Sa.find t.l2 blk with
  | None ->
      (* Inclusion: nothing in L1 without L2. *)
      assert (not in_l1);
      Miss
  | Some line -> (
      if not in_l1 then
        (* Promote into L1; the displaced L1 line stays valid in L2. *)
        ignore (Sa.insert t.l1 blk ());
      match classify line ~write with
      | Hit h ->
          Hit
            {
              h with
              lat = (if in_l1 then t.l1_lat else t.l2_lat);
              level = (if in_l1 then `L1 else `L2);
            }
      | other -> other)

(* Fast-path split of [lookup]: succeed only when the access is a plain
   permission-sufficient hit, committing exactly the state changes
   [lookup]'s [Hit] branch would make (LRU refresh in both levels plus L1
   promotion). On an upgrade or miss, return [None] having mutated
   nothing — the caller falls back to the scheduled [lookup] path, which
   then performs those mutations at the same point of the run. *)
let try_hit t ~blk ~write =
  match Sa.peek t.l2 blk with
  | None -> None
  | Some line ->
      if write && line.state = States.P_S then None
      else begin
        let in_l1 = Sa.touch t.l1 blk in
        ignore (Sa.touch t.l2 blk);
        if in_l1 then Some (line, t.l1_lat, `L1)
        else begin
          ignore (Sa.insert t.l1 blk ());
          Some (line, t.l2_lat, `L2)
        end
      end

let fill t ~blk pstate bytes =
  let line = { state = pstate; data = Linedata.create () } in
  Linedata.fill_from line.data bytes;
  (match Sa.insert t.l2 blk line with
  | None -> ()
  | Some (vblk, vline) ->
      ignore (Sa.remove t.l1 vblk);
      t.evict ~blk:vblk vline.state vline.data);
  ignore (Sa.insert t.l1 blk ());
  line

let iter_resident t f = Sa.iter t.l2 f

let check_inclusion t =
  let bad = ref None in
  Sa.iter t.l1 (fun blk () ->
      if (not (Sa.mem t.l2 blk)) && !bad = None then
        bad := Some (Printf.sprintf "block %d in L1 but not in L2" blk));
  match !bad with None -> Ok () | Some m -> Error m

let probe_of t blk line =
  let levels = if Sa.mem t.l1 blk then 2 else 1 in
  { Fabric.levels; data = line.data }

let peek t ~blk =
  match Sa.find t.l2 blk with
  | None -> None
  | Some line -> Some (probe_of t blk line)

let invalidate t ~blk =
  match Sa.find t.l2 blk with
  | None -> None
  | Some line ->
      let p = probe_of t blk line in
      ignore (Sa.remove t.l1 blk);
      ignore (Sa.remove t.l2 blk);
      Some p

let downgrade t ~blk =
  match Sa.find t.l2 blk with
  | None -> None
  | Some line ->
      let p = probe_of t blk line in
      line.state <- States.P_S;
      Some p
