open Warden_cache
open Warden_proto
open Warden_machine

type line = { mutable state : States.pstate; data : Linedata.t }

(* Miss sentinel for the allocation-free fast path (and the Sa dummy
   payload). Never installed in a cache; compare with (==). *)
let no_line = { state = States.P_S; data = Linedata.create () }

type t = {
  l1 : unit Sa.t;
  l2 : line Sa.t;
  l1_lat : int;
  l2_lat : int;
  mutable last_l1 : bool; (* level of the last fast_hit: true = L1 *)
  evict : blk:int -> States.pstate -> Linedata.t -> unit;
}

let create (cfg : Config.t) ~evict =
  {
    l1 = Sa.create ~sets:(Config.l1_sets cfg) ~ways:cfg.Config.l1_ways ~dummy:();
    l2 =
      Sa.create ~sets:(Config.l2_sets cfg) ~ways:cfg.Config.l2_ways
        ~dummy:no_line;
    l1_lat = cfg.Config.l1_lat;
    l2_lat = cfg.Config.l2_lat;
    last_l1 = false;
    evict;
  }

type lookup =
  | Hit of { line : line; lat : int; level : [ `L1 | `L2 ] }
  | Upgrade of line
  | Miss

let lookup t ~blk ~write =
  let in_l1 = Sa.touch t.l1 blk in
  let w2 = Sa.find_way t.l2 blk in
  if not (Sa.hit w2) then begin
    (* Inclusion: nothing in L1 without L2. *)
    assert (not in_l1);
    Miss
  end
  else begin
    let line = Sa.value t.l2 w2 in
    if not in_l1 then
      (* Promote into L1; the displaced L1 line stays valid in L2. *)
      ignore (Sa.insert t.l1 blk ());
    match (line.state, write) with
    | States.P_S, true -> Upgrade line
    | _ ->
        Hit
          {
            line;
            lat = (if in_l1 then t.l1_lat else t.l2_lat);
            level = (if in_l1 then `L1 else `L2);
          }
  end

(* Fast-path split of [lookup]: succeed only when the access is a plain
   permission-sufficient hit, committing exactly the state changes
   [lookup]'s [Hit] branch would make (LRU refresh in both levels plus L1
   promotion). On an upgrade or miss, return [no_line] having mutated
   nothing — the caller falls back to the scheduled [lookup] path, which
   then performs those mutations at the same point of the run. *)
let fast_hit t ~blk ~write =
  let w2 = Sa.peek_way t.l2 blk in
  if not (Sa.hit w2) then no_line
  else
    let line = Sa.value t.l2 w2 in
    (* [match] rather than [=]: pstate equality would go through the
       polymorphic comparator on every access. *)
    if write && (match line.state with States.P_S -> true | _ -> false) then
      no_line
    else begin
      let in_l1 = Sa.touch t.l1 blk in
      Sa.touch_way t.l2 w2;
      if not in_l1 then ignore (Sa.insert t.l1 blk ());
      t.last_l1 <- in_l1;
      line
    end

let last_l1 t = t.last_l1

(* Hint probe for the sharded engine's helper domains: warm the host
   cache behind a pending access — the L2 tag set and, when resident, the
   line's payload bytes — without mutating LRU state or anything else the
   commit lane owns ([peek_way] is pure). Cross-domain reads may observe
   a stale snapshot; the return value feeds a sink only. *)
let prefetch t ~blk =
  let w = Sa.peek_way t.l2 blk in
  if not (Sa.hit w) then 0
  else
    Char.code (Bytes.unsafe_get (Linedata.bytes (Sa.value t.l2 w).data) 0)

let fill t ~blk pstate bytes =
  let line = { state = pstate; data = Linedata.create () } in
  Linedata.fill_from line.data bytes;
  (match Sa.insert t.l2 blk line with
  | None -> ()
  | Some (vblk, vline) ->
      ignore (Sa.remove t.l1 vblk);
      t.evict ~blk:vblk vline.state vline.data);
  ignore (Sa.insert t.l1 blk ());
  line

let iter_resident t f = Sa.iter t.l2 f

let check_inclusion t =
  let bad = ref None in
  Sa.iter t.l1 (fun blk () ->
      if (not (Sa.mem t.l2 blk)) && !bad = None then
        bad := Some (Printf.sprintf "block %d in L1 but not in L2" blk));
  match !bad with None -> Ok () | Some m -> Error m

let probe_of t blk line =
  let levels = if Sa.mem t.l1 blk then 2 else 1 in
  { Fabric.levels; data = line.data }

let peek t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None else Some (probe_of t blk (Sa.value t.l2 w))

let invalidate t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None
  else begin
    let p = probe_of t blk (Sa.value t.l2 w) in
    ignore (Sa.remove t.l1 blk);
    ignore (Sa.remove t.l2 blk);
    Some p
  end

let downgrade t ~blk =
  let w = Sa.find_way t.l2 blk in
  if not (Sa.hit w) then None
  else begin
    let line = Sa.value t.l2 w in
    let p = probe_of t blk line in
    line.state <- States.P_S;
    Some p
  end
