(** Per-thread speculation slots for the sharded engine (DESIGN.md §11).

    A slot is a single-producer / single-consumer exchange between the
    commit lane (which publishes the pending access's descriptor under
    [pub] and later validates/adopts the result) and the one helper
    domain owning the thread (which pre-executes the access's
    memory-system half and publishes the outcome under [fin]). All
    ordering flows through the two atomics; every other field is plain
    and protected by them. *)

type slot = {
  mutable d_kind : int;  (** {!load}, {!store} or {!rmw} *)
  mutable d_addr : int;
  mutable d_size : int;
  mutable d_value : int64;  (** store operand *)
  mutable d_f : int64 -> int64;  (** rmw function (must be pure) *)
  mutable pops : int;  (** lane pop count at publish (commit depth base) *)
  pub : int Atomic.t;  (** published access sequence; -1 = none yet *)
  res : Privcache.spec_result;
  mutable r_new : int64;  (** helper's [d_f] of the speculated old value *)
  fin : int Atomic.t;  (** = [pub] once [res]/[r_new] are valid for it *)
}

val load : int
val store : int
val rmw : int

val create : unit -> slot
