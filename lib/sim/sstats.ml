type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable priv_misses : int;
  mutable sb_stalls : int;
  mutable cycles : int;
  per_thread_instructions : int array;
}

let create ~threads =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    rmws = 0;
    l1_hits = 0;
    l2_hits = 0;
    priv_misses = 0;
    sb_stalls = 0;
    cycles = 0;
    per_thread_instructions = Array.make threads 0;
  }

let save t w =
  let module B = Warden_util.Bin in
  B.w_int w t.instructions;
  B.w_int w t.loads;
  B.w_int w t.stores;
  B.w_int w t.rmws;
  B.w_int w t.l1_hits;
  B.w_int w t.l2_hits;
  B.w_int w t.priv_misses;
  B.w_int w t.sb_stalls;
  B.w_int w t.cycles;
  B.w_int_array w t.per_thread_instructions

let restore t r =
  let module B = Warden_util.Bin in
  t.instructions <- B.r_int r;
  t.loads <- B.r_int r;
  t.stores <- B.r_int r;
  t.rmws <- B.r_int r;
  t.l1_hits <- B.r_int r;
  t.l2_hits <- B.r_int r;
  t.priv_misses <- B.r_int r;
  t.sb_stalls <- B.r_int r;
  t.cycles <- B.r_int r;
  let pti = B.r_int_array r in
  if Array.length pti <> Array.length t.per_thread_instructions then
    B.corrupt "Sstats: thread count mismatch";
  Array.blit pti 0 t.per_thread_instructions 0 (Array.length pti)

let ipc t =
  if t.cycles = 0 then 0.
  else float_of_int t.instructions /. float_of_int t.cycles

let kilo_instructions t = float_of_int t.instructions /. 1000.
