open Warden_util
open Warden_mem
open Warden_machine
module Obs = Warden_obs.Obs
module Oev = Warden_obs.Events

type _ Effect.t +=
  | E_load : (Addr.t * int) -> int64 Effect.t
  | E_store : (Addr.t * int * int64) -> unit Effect.t
  | E_rmw : (Addr.t * int * (int64 -> int64)) -> int64 Effect.t
  | E_tick : int -> unit Effect.t
  | E_stall : int -> unit Effect.t
  | E_now : int Effect.t
  | E_tid : int Effect.t
  | E_region_add : (int * int) -> bool Effect.t
  | E_region_remove : (int * int) -> unit Effect.t
  | E_acquire : unit Effect.t
  | E_release : unit Effect.t
  | E_yield : unit Effect.t

type tstate = {
  tid : int;
  mutable time : int;
  mutable qlimit : int; (* inline fast path allowed while time < qlimit *)
  (* Store buffer: a ring of completion times, oldest first. Fixed size
     (capacity entries + 1), so the per-store path allocates nothing. *)
  sb : int array;
  mutable sb_head : int;
  mutable sb_len : int;
}

(* Sharded scheduler with speculative shard execution. Cores are
   partitioned into [Config.num_shards] shards; each shard owns a run
   queue, and enqueues draw sequence numbers from one global counter, so
   popping the minimum (priority, sequence) across all queues replays the
   single-queue FIFO order exactly. The commit lane — the domain that
   called [run] — executes every program segment in that order: program
   state is host-shared (the fork-join runtime's deques and counters live
   in OCaml heap words), so segments cannot run concurrently without
   changing observable interleavings, and OCaml's one-shot continuations
   rule out rolling a segment back. What the extra domains parallelize is
   the memory-system half of each access: when the lane enqueues a load,
   store or RMW it also publishes the access's descriptor into the
   thread's {!Spec.slot}, and the helper domain owning that thread
   pre-executes the cache lookup against versioned views of the core's
   hierarchy ({!Memsys.spec_read}). When the lane pops the access it
   validates the speculation — the recorded version must still be current
   — and either commits it (replaying the identical mutations and
   accounting, {!Memsys.try_commit_load} etc.) or squashes and re-executes
   inline, so results are bit-identical for every [sim_domains] whether
   speculations hit, miss or lose the race. Misses and upgrades stay on
   the lane (their protocol transitions touch shared directory state);
   for those the helper warms the host cache behind the structures the
   lane will walk. Stats are banked per shard inside [Memsys] and folded
   at quantum barriers; all deferred quantities are integer counts, so
   totals are bit-identical for every [sim_domains]. See DESIGN.md §11. *)
type t = {
  ms : Memsys.t;
  cfg : Config.t;
  obs : Obs.t; (* cached from [Memsys.obs] *)
  obs_on : bool;
  obs_full : bool;
  stats : Sstats.t; (* cached: lane-owned fields, untouched by folds *)
  quantum : int; (* inline quantum, Config.sched_quantum *)
  cquantum : int; (* commit quantum (cycles), Config.sim_quantum *)
  shards : int;
  spec_on : bool; (* helpers speculate: shards > 1 && cfg.sim_spec *)
  sync_on : bool;
      (* the protocol is [`Self]: runtime acquire/release fences must
         reach the memory system. When false, [Ops.acquire]/[Ops.release]
         are literal no-ops — no effect performed, no event enqueued — so
         eagerly-coherent protocols keep their exact schedules. *)
  runqs : (unit -> unit) Pqueue.t array; (* one per shard *)
  thread_shard : int array; (* shard of each hardware thread *)
  slots : Spec.slot array; (* one speculation slot per hardware thread *)
  threads : tstate array;
  mutable next_seq : int; (* global enqueue sequence across all shards *)
  mutable next_window : int; (* first cycle of the next commit quantum *)
  mutable pops : int; (* lane pops so far (speculation depth metric) *)
  mutable cur_st : tstate; (* thread currently executing, for Ops *)
  mutable used_threads : int;
  mutable spec_sink : int; (* keeps helper warming probes observable *)
}

(* The engine currently executing on this domain, so that [Ops] can reach
   simulator state without performing an effect. One engine runs at a time
   per domain; [run] saves and restores the slot, and domain-local storage
   keeps engines on parallel harness workers independent. *)
let cur_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create cfg ~proto =
  let sb_cap = cfg.Config.store_buffer_entries + 1 in
  let threads =
    Array.init (Config.num_threads cfg) (fun tid ->
        { tid; time = 0; qlimit = 0; sb = Array.make sb_cap 0; sb_head = 0; sb_len = 0 })
  in
  let cur0 =
    if Array.length threads > 0 then threads.(0)
    else { tid = -1; time = 0; qlimit = 0; sb = [||]; sb_head = 0; sb_len = 0 }
  in
  let shards = Config.num_shards cfg in
  let ms = Memsys.create cfg ~proto in
  let obs = Memsys.obs ms in
  {
    ms;
    cfg;
    obs;
    obs_on = Obs.enabled obs;
    obs_full = Obs.full obs;
    stats = Memsys.sstats ms;
    quantum = cfg.Config.sched_quantum;
    cquantum = max 1 cfg.Config.sim_quantum;
    shards;
    runqs = Array.init shards (fun _ -> Pqueue.create ());
    spec_on = shards > 1 && cfg.Config.sim_spec;
    sync_on = Warden_proto.Protocol.kind (Memsys.protocol ms) = `Self;
    thread_shard =
      Array.init (Config.num_threads cfg) (fun tid ->
          Config.shard_of_core cfg (Config.core_of_thread cfg tid));
    slots = Array.init (Config.num_threads cfg) (fun _ -> Spec.create ());
    threads;
    next_seq = 0;
    next_window = max 1 cfg.Config.sim_quantum;
    pops = 0;
    cur_st = cur0;
    used_threads = 0;
    spec_sink = 0;
  }

let memsys t = t.ms
let config t = t.cfg

let retire t (st : tstate) n =
  let s = t.stats in
  s.Sstats.instructions <- s.Sstats.instructions + n;
  s.Sstats.per_thread_instructions.(st.tid) <-
    s.Sstats.per_thread_instructions.(st.tid) + n

let sb_pop st =
  let v = Array.unsafe_get st.sb st.sb_head in
  let h = st.sb_head + 1 in
  st.sb_head <- (if h >= Array.length st.sb then 0 else h);
  st.sb_len <- st.sb_len - 1;
  v

let sb_push st v =
  let cap = Array.length st.sb in
  let i = st.sb_head + st.sb_len in
  Array.unsafe_set st.sb (if i >= cap then i - cap else i) v;
  st.sb_len <- st.sb_len + 1

let drain_ready st =
  while st.sb_len > 0 && Array.unsafe_get st.sb st.sb_head <= st.time do
    ignore (sb_pop st)
  done

(* A TSO fence: wait for every buffered store to complete. *)
let drain_all st =
  while st.sb_len > 0 do
    st.time <- max st.time (sb_pop st)
  done

(* Store-buffer bookkeeping shared by the scheduled and inline store
   paths: free ready slots, stall on a full buffer, enqueue the new
   store's completion, retire in one cycle. *)
let commit_store t st lat =
  drain_ready st;
  if st.sb_len >= t.cfg.Config.store_buffer_entries then begin
    t.stats.Sstats.sb_stalls <- t.stats.Sstats.sb_stalls + 1;
    let ready = sb_pop st in
    if t.obs_on then begin
      (* Explicit [set_now]: the inline fast path reaches here without
         passing through a scheduled closure. No block is at fault for a
         full buffer, so the record carries none. *)
      Obs.set_now t.obs st.time;
      Obs.event t.obs ~code:Oev.sb_stall
        ~core:(Config.core_of_thread t.cfg st.tid)
        ~blk:(-1)
        ~arg:(max 0 (ready - st.time))
    end;
    st.time <- max st.time ready
  end;
  sb_push st (st.time + lat);
  st.time <- st.time + 1;
  retire t st 1

(* Every closure entering a run queue re-establishes the ambient thread
   and opens a fresh inline quantum; with [sched_quantum = 0] the budget
   is empty and every access goes through the queue (legacy behavior). *)
let resume t (st : tstate) =
  t.cur_st <- st;
  st.qlimit <- st.time + t.quantum;
  (* The recorder timestamps ring records with the resumed event's issue
     time; only full mode rings, so off/counters skip the store. *)
  if t.obs_full then Obs.set_now t.obs st.time

(* Enqueue into the thread's shard queue under the global sequence
   counter. Assignment order is identical for every shard count — all
   enqueues happen on the commit lane — so the multi-queue min-merge
   reproduces the single-queue pop order bit for bit. *)
let enqueue t (st : tstate) fn =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.add_seq
    (Array.unsafe_get t.runqs (Array.unsafe_get t.thread_shard st.tid))
    ~prio:st.time ~seq fn

(* Memory accesses additionally publish their descriptor into the
   thread's speculation slot so the owning helper domain can pre-execute
   the memory-system half while the access waits in the queue. The plain
   descriptor writes are release-published by the [pub] store; the thread
   is suspended until the closure pops, so no second publication for the
   same slot can race with the helper. *)
let enqueue_access t (st : tstate) ~kind ~addr ~size ~v ~f fn =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.spec_on then begin
    let sl = Array.unsafe_get t.slots st.tid in
    sl.Spec.d_kind <- kind;
    sl.Spec.d_addr <- addr;
    sl.Spec.d_size <- size;
    sl.Spec.d_value <- v;
    sl.Spec.d_f <- f;
    sl.Spec.pops <- t.pops;
    Atomic.set sl.Spec.pub seq
  end;
  Pqueue.add_seq
    (Array.unsafe_get t.runqs (Array.unsafe_get t.thread_shard st.tid))
    ~prio:st.time ~seq fn

let min_prio_all t =
  if t.shards = 1 then Pqueue.min_prio_or t.runqs.(0) ~default:max_int
  else begin
    let m = ref max_int in
    for s = 0 to t.shards - 1 do
      let p = Pqueue.min_prio_or t.runqs.(s) ~default:max_int in
      if p < !m then m := p
    done;
    !m
  end

(* An access may run inline — without suspending into the run queue — iff
   it is provably the event the scheduled path would pop next: the
   thread's clock must be strictly below every queued priority (a tie
   loses, since the queued entry was inserted earlier and FIFO order puts
   it first). The quantum bounds how long one thread may monopolize the
   host before taking the queue path anyway. Under this gate the fast
   path replays exactly the legacy pop order, so simulated cycles, stats
   and memory images are bit-identical for every quantum value. *)
let can_inline t (st : tstate) =
  st.time < st.qlimit && st.time < min_prio_all t

(* The shard whose queue head is the global minimum (priority, sequence),
   or -1 when every queue is empty. *)
let select t =
  if t.shards = 1 then (if Pqueue.is_empty t.runqs.(0) then -1 else 0)
  else begin
    let best = ref (-1) and bp = ref max_int and bs = ref max_int in
    for s = 0 to t.shards - 1 do
      let q = t.runqs.(s) in
      if not (Pqueue.is_empty q) then begin
        let p = Pqueue.min_prio_or q ~default:max_int in
        let sq = Pqueue.min_seq_or q ~default:max_int in
        if p < !bp || (p = !bp && sq < !bs) then begin
          best := s;
          bp := p;
          bs := sq
        end
      end
    done;
    !best
  end

(* Quantum barrier: fold the per-shard stat banks (deterministic at any
   point — integer counts, fixed shard order). [p] is the event priority
   that crossed the boundary. *)
let barrier t p =
  ignore (Memsys.sstats t.ms : Sstats.t);
  ignore (Memsys.energy t.ms : Energy.t);
  if t.obs_full then Obs.fold t.obs;
  t.next_window <- ((p / t.cquantum) + 1) * t.cquantum

(* Helper-domain body: speculative executor [h] of [nh = shards - 1].
   Each helper owns the hardware threads whose shard is congruent to [h]
   modulo [nh]; for every fresh slot publication it pre-executes the
   access's memory-system half against versioned views of the owning
   core's hierarchy ({!Memsys.spec_read}) and release-publishes the
   outcome via [fin]. For misses/upgrades — which must transition on the
   lane — the call instead warms the host cache behind the structures the
   lane will walk; the probe sum is returned as a sink. [memo] stops a
   helper from re-executing a publication it already answered (the lane
   would ignore the identical rewrite, but the spin would steal host
   cycles). Defensive catch-all: the racy reads are memory-safe by
   construction, so any exception just demotes the slot to no-spec. The
   loop never allocates once [mine]/[memo] are built, so idle helpers
   cannot trigger the stop-the-world minor GCs that would stall the
   lane. *)
let spec_loop t h nh stop =
  let mine = ref [] in
  for tid = Array.length t.slots - 1 downto 0 do
    if Array.unsafe_get t.thread_shard tid mod nh = h then mine := tid :: !mine
  done;
  let mine = Array.of_list !mine in
  let memo = Array.map (fun _ -> -1) mine in
  let sink = ref 0 in
  while not (Atomic.get stop) do
    for i = 0 to Array.length mine - 1 do
      let tid = Array.unsafe_get mine i in
      let sl = Array.unsafe_get t.slots tid in
      let pub = Atomic.get sl.Spec.pub in
      if pub >= 0 && pub <> Array.unsafe_get memo i then begin
        Array.unsafe_set memo i pub;
        let r = sl.Spec.res in
        (try
           sink :=
             !sink
             + Memsys.spec_read t.ms ~thread:tid sl.Spec.d_addr
                 ~size:sl.Spec.d_size
                 ~write:(sl.Spec.d_kind <> Spec.load)
                 r;
           if r.Privcache.ok && sl.Spec.d_kind = Spec.rmw then
             sl.Spec.r_new <- sl.Spec.d_f r.Privcache.value
         with _ -> r.Privcache.ok <- false);
        Atomic.set sl.Spec.fin pub
      end
    done;
    Domain.cpu_relax ()
  done;
  !sink

(* Commit one pending access on the lane: adopt the helper's speculation
   when it is finished ([fin] caught up to [pub]) and validates against
   the current version; otherwise run the scheduled path inline. The
   outcome counters are host-side observability only ({!Obs.spec}). *)

let spec_load t (st : tstate) addr ~size =
  let sl = Array.unsafe_get t.slots st.tid in
  if Atomic.get sl.Spec.fin = Atomic.get sl.Spec.pub && sl.Spec.res.Privcache.ok
  then begin
    let lat =
      Memsys.try_commit_load t.ms ~thread:st.tid addr ~size sl.Spec.res
    in
    if lat >= 0 then begin
      if t.obs_on then
        Obs.spec t.obs ~outcome:0 ~depth:(t.pops - sl.Spec.pops);
      (Memsys.fast_value t.ms, lat)
    end
    else begin
      if t.obs_on then Obs.spec t.obs ~outcome:1 ~depth:0;
      Memsys.load t.ms ~thread:st.tid addr ~size
    end
  end
  else begin
    if t.obs_on then Obs.spec t.obs ~outcome:2 ~depth:0;
    Memsys.load t.ms ~thread:st.tid addr ~size
  end

let spec_store t (st : tstate) addr ~size v =
  let sl = Array.unsafe_get t.slots st.tid in
  if Atomic.get sl.Spec.fin = Atomic.get sl.Spec.pub && sl.Spec.res.Privcache.ok
  then begin
    let lat =
      Memsys.try_commit_store t.ms ~thread:st.tid addr ~size v sl.Spec.res
    in
    if lat >= 0 then begin
      if t.obs_on then
        Obs.spec t.obs ~outcome:0 ~depth:(t.pops - sl.Spec.pops);
      lat
    end
    else begin
      if t.obs_on then Obs.spec t.obs ~outcome:1 ~depth:0;
      Memsys.store t.ms ~thread:st.tid addr ~size v
    end
  end
  else begin
    if t.obs_on then Obs.spec t.obs ~outcome:2 ~depth:0;
    Memsys.store t.ms ~thread:st.tid addr ~size v
  end

let spec_rmw t (st : tstate) addr ~size f =
  let sl = Array.unsafe_get t.slots st.tid in
  if Atomic.get sl.Spec.fin = Atomic.get sl.Spec.pub && sl.Spec.res.Privcache.ok
  then begin
    let lat =
      Memsys.try_commit_rmw t.ms ~thread:st.tid addr ~size ~nv:sl.Spec.r_new
        sl.Spec.res
    in
    if lat >= 0 then begin
      if t.obs_on then
        Obs.spec t.obs ~outcome:0 ~depth:(t.pops - sl.Spec.pops);
      (Memsys.fast_value t.ms, lat)
    end
    else begin
      if t.obs_on then Obs.spec t.obs ~outcome:1 ~depth:0;
      Memsys.rmw t.ms ~thread:st.tid addr ~size f
    end
  end
  else begin
    if t.obs_on then Obs.spec t.obs ~outcome:2 ~depth:0;
    Memsys.rmw t.ms ~thread:st.tid addr ~size f
  end

let handler t st =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_tick n ->
            Some
              (fun (k : (a, unit) continuation) ->
                st.time <- st.time + n;
                retire t st n;
                continue k ())
        | E_stall n ->
            Some
              (fun k ->
                st.time <- st.time + n;
                continue k ())
        | E_now -> Some (fun k -> continue k st.time)
        | E_tid -> Some (fun k -> continue k st.tid)
        | E_yield ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    continue k ()))
        | E_load (addr, size) ->
            Some
              (fun k ->
                enqueue_access t st ~kind:Spec.load ~addr ~size ~v:0L ~f:Fun.id
                  (fun () ->
                    resume t st;
                    let v, lat =
                      if t.spec_on then spec_load t st addr ~size
                      else Memsys.load t.ms ~thread:st.tid addr ~size
                    in
                    st.time <- st.time + lat;
                    retire t st 1;
                    continue k v))
        | E_store (addr, size, v) ->
            Some
              (fun k ->
                enqueue_access t st ~kind:Spec.store ~addr ~size ~v ~f:Fun.id
                  (fun () ->
                    resume t st;
                    let lat =
                      if t.spec_on then spec_store t st addr ~size v
                      else Memsys.store t.ms ~thread:st.tid addr ~size v
                    in
                    commit_store t st lat;
                    continue k ()))
        | E_rmw (addr, size, f) ->
            Some
              (fun k ->
                enqueue_access t st ~kind:Spec.rmw ~addr ~size ~v:0L ~f
                  (fun () ->
                    resume t st;
                    drain_all st;
                    let old, lat =
                      if t.spec_on then spec_rmw t st addr ~size f
                      else Memsys.rmw t.ms ~thread:st.tid addr ~size f
                    in
                    st.time <- st.time + lat + 2;
                    retire t st 1;
                    continue k old))
        | E_region_add (lo, hi) ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    st.time <- st.time + 1;
                    retire t st 1;
                    continue k (Memsys.region_add t.ms ~thread:st.tid ~lo ~hi)))
        | E_region_remove (lo, hi) ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    let lat = Memsys.region_remove t.ms ~thread:st.tid ~lo ~hi in
                    st.time <- st.time + 1 + lat;
                    retire t st 1;
                    continue k ()))
        | E_acquire ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    drain_all st;
                    let lat = Memsys.acquire t.ms ~thread:st.tid in
                    st.time <- st.time + 1 + lat;
                    retire t st 1;
                    continue k ()))
        | E_release ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    (* A release is a fence: buffered stores complete
                       before the self-downgrade publishes them. *)
                    drain_all st;
                    let lat = Memsys.release t.ms ~thread:st.tid in
                    st.time <- st.time + 1 + lat;
                    retire t st 1;
                    continue k ()))
        | _ -> None)
  }

(* [run] may be called repeatedly on one engine: each call is a phase, and
   thread clocks, the enqueue sequence and the stat records carry over, so
   phase N+1 continues the simulated timeline where phase N stopped. The
   boundary between phases is the engine's only quiescent point — queues
   empty, store buffers drained, no live continuation — which is exactly
   where {!snapshot}/{!restore} are legal. *)
let run t bodies =
  let n = Array.length bodies in
  if n > Array.length t.threads then invalid_arg "Engine.run: too many threads";
  t.used_threads <- max t.used_threads n;
  let cycles_at_start = t.stats.Sstats.cycles in
  Array.iteri
    (fun tid body ->
      let st = t.threads.(tid) in
      enqueue t st (fun () ->
          resume t st;
          Effect.Deep.match_with body () (handler t st)))
    bodies;
  let prev = Domain.DLS.get cur_key in
  Domain.DLS.set cur_key (Some t);
  let stop = Atomic.make false in
  let nh = t.shards - 1 in
  let helpers =
    if not t.spec_on then [||]
    else Array.init nh (fun h -> Domain.spawn (fun () -> spec_loop t h nh stop))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Array.iter (fun d -> t.spec_sink <- t.spec_sink + Domain.join d) helpers;
      Domain.DLS.set cur_key prev)
    (fun () ->
      let rec loop () =
        let s = select t in
        if s >= 0 then begin
          let q = Array.unsafe_get t.runqs s in
          if Pqueue.min_prio_or q ~default:0 >= t.next_window then
            barrier t (Pqueue.min_prio_or q ~default:0);
          t.pops <- t.pops + 1;
          (Pqueue.pop_exn q) ();
          loop ()
        end
      in
      loop ());
  if t.obs_full then Obs.fold t.obs;
  let makespan = ref 0 in
  for tid = 0 to n - 1 do
    drain_all t.threads.(tid);
    makespan := max !makespan t.threads.(tid).time
  done;
  t.stats.Sstats.cycles <- max cycles_at_start !makespan;
  let cores_used =
    min (Config.num_cores t.cfg)
      ((n + t.cfg.Config.threads_per_core - 1) / t.cfg.Config.threads_per_core)
  in
  (* Charge only this phase's cycle delta: a single-phase run starts at
     cycle 0 and pays the full makespan, unchanged. *)
  Energy.core_cycles (Memsys.energy t.ms) ~cores:cores_used
    ~cycles:(max 0 (!makespan - cycles_at_start));
  !makespan

(* --- snapshot/restore (DESIGN.md §15) ------------------------------------ *)

(* Engine-level scheduler state that survives across phases. Effects-based
   continuations cannot serialize, so snapshots are only legal between
   [run]s — which is also the only time there is nothing unserializable
   alive: queues empty, store buffers drained, speculation slots dead. *)
let snapshot t w =
  Array.iter
    (fun q ->
      if not (Pqueue.is_empty q) then
        invalid_arg "Engine.snapshot: run in progress")
    t.runqs;
  Bin.w_int w (Array.length t.threads);
  Array.iter
    (fun st ->
      assert (st.sb_len = 0);
      Bin.w_int w st.time;
      Bin.w_int w st.qlimit)
    t.threads;
  Bin.w_int w t.next_seq;
  Bin.w_int w t.next_window;
  Bin.w_int w t.pops;
  Bin.w_int w t.used_threads;
  Memsys.save_state t.ms w

let restore t r =
  let n = Bin.r_int r in
  if n <> Array.length t.threads then
    Bin.corrupt "Engine: thread count mismatch";
  Array.iter
    (fun st ->
      st.time <- Bin.r_int r;
      st.qlimit <- Bin.r_int r;
      st.sb_head <- 0;
      st.sb_len <- 0)
    t.threads;
  t.next_seq <- Bin.r_int r;
  t.next_window <- Bin.r_int r;
  t.pops <- Bin.r_int r;
  t.used_threads <- Bin.r_int r;
  Memsys.restore_state t.ms r

module Ops = struct
  (* Each operation first tries to run inline on the ambient engine —
     no effect performed, no continuation captured — and falls back to
     the effect (and thus the run queue) when the access needs a
     coherence transition, loses the [can_inline] gate, or no engine is
     running on this domain (preserving [Effect.Unhandled] semantics). *)

  let load addr ~size =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        let lat = Memsys.try_fast_load t.ms ~thread:st.tid addr ~size in
        if lat >= 0 then begin
          st.time <- st.time + lat;
          retire t st 1;
          Memsys.fast_value t.ms
        end
        else Effect.perform (E_load (addr, size)))
    | _ -> Effect.perform (E_load (addr, size))

  let store addr ~size v =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        let lat = Memsys.try_fast_store t.ms ~thread:st.tid addr ~size v in
        if lat >= 0 then commit_store t st lat
        else Effect.perform (E_store (addr, size, v)))
    | _ -> Effect.perform (E_store (addr, size, v))

  let rmw addr ~size f =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        (* [f] must be pure (all call sites are arithmetic on the old
           value), so committing the RMW before the fence drain below is
           indistinguishable from the scheduled path's order. *)
        let lat = Memsys.try_fast_rmw t.ms ~thread:st.tid addr ~size f in
        if lat >= 0 then begin
          drain_all st;
          st.time <- st.time + lat + 2;
          retire t st 1;
          Memsys.fast_value t.ms
        end
        else Effect.perform (E_rmw (addr, size, f)))
    | _ -> Effect.perform (E_rmw (addr, size, f))

  let cas addr ~size ~expected ~desired =
    let old = rmw addr ~size (fun v -> if v = expected then desired else v) in
    old = expected

  let fetch_add addr ~size delta = rmw addr ~size (Int64.add delta)

  let tick n =
    match Domain.DLS.get cur_key with
    | Some t ->
        let st = t.cur_st in
        st.time <- st.time + n;
        retire t st n
    | None -> Effect.perform (E_tick n)

  let stall n =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.time <- t.cur_st.time + n
    | None -> Effect.perform (E_stall n)

  let now () =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.time
    | None -> Effect.perform E_now

  let tid () =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.tid
    | None -> Effect.perform E_tid

  let region_add ~lo ~hi = Effect.perform (E_region_add (lo, hi))
  let region_remove ~lo ~hi = Effect.perform (E_region_remove (lo, hi))

  (* Runtime sync-point fences. On eagerly-coherent protocols these are
     literal no-ops — no effect, no enqueue, no time — so the runtime can
     annotate its fork/join edges unconditionally without perturbing the
     MESI/WARDen schedules at all. *)
  let acquire () =
    match Domain.DLS.get cur_key with
    | Some t when not t.sync_on -> ()
    | _ -> Effect.perform E_acquire

  let release () =
    match Domain.DLS.get cur_key with
    | Some t when not t.sync_on -> ()
    | _ -> Effect.perform E_release

  let yield () = Effect.perform E_yield
end
