open Warden_util
open Warden_mem
open Warden_machine
module Obs = Warden_obs.Obs
module Oev = Warden_obs.Events

type _ Effect.t +=
  | E_load : (Addr.t * int) -> int64 Effect.t
  | E_store : (Addr.t * int * int64) -> unit Effect.t
  | E_rmw : (Addr.t * int * (int64 -> int64)) -> int64 Effect.t
  | E_tick : int -> unit Effect.t
  | E_stall : int -> unit Effect.t
  | E_now : int Effect.t
  | E_tid : int Effect.t
  | E_region_add : (int * int) -> bool Effect.t
  | E_region_remove : (int * int) -> unit Effect.t
  | E_yield : unit Effect.t

type tstate = {
  tid : int;
  mutable time : int;
  mutable qlimit : int; (* inline fast path allowed while time < qlimit *)
  (* Store buffer: a ring of completion times, oldest first. Fixed size
     (capacity entries + 1), so the per-store path allocates nothing. *)
  sb : int array;
  mutable sb_head : int;
  mutable sb_len : int;
}

(* Sharded scheduler. Cores are partitioned into [Config.num_shards]
   shards; each shard owns a run queue, and enqueues draw sequence numbers
   from one global counter, so popping the minimum (priority, sequence)
   across all queues replays the single-queue FIFO order exactly. The
   commit lane — the domain that called [run] — executes every program
   segment in that order: program state is host-shared (the fork-join
   runtime's deques and counters live in OCaml heap words), so segments
   cannot run concurrently without changing observable interleavings, and
   OCaml's one-shot continuations rule out speculate-and-roll-back. What
   the extra domains buy instead is the memory wall: helper domains
   continuously replay each shard's pending access as a {e pure} probe
   ({!Memsys.prefetch}), pulling simulator metadata (tag sets, line
   payloads, store pages) into the host cache ahead of the lane. Stats are
   banked per shard inside [Memsys] and folded at quantum barriers; all
   deferred quantities are integer counts, so totals are bit-identical for
   every [sim_domains]. See DESIGN.md §11. *)
type t = {
  ms : Memsys.t;
  cfg : Config.t;
  obs : Obs.t; (* cached from [Memsys.obs] *)
  obs_on : bool;
  obs_full : bool;
  stats : Sstats.t; (* cached: lane-owned fields, untouched by folds *)
  quantum : int; (* inline quantum, Config.sched_quantum *)
  cquantum : int; (* commit quantum (cycles), Config.sim_quantum *)
  shards : int;
  runqs : (unit -> unit) Pqueue.t array; (* one per shard *)
  thread_shard : int array; (* shard of each hardware thread *)
  pend_core : int array; (* per shard: core of the last queued access *)
  pend_blk : int array; (* per shard: its block; -1 = none. Hints only. *)
  window : int Atomic.t; (* quantum barriers crossed, published to helpers *)
  threads : tstate array;
  mutable next_seq : int; (* global enqueue sequence across all shards *)
  mutable next_window : int; (* first cycle of the next commit quantum *)
  mutable cur_st : tstate; (* thread currently executing, for Ops *)
  mutable used_threads : int;
  mutable hint_sink : int; (* keeps helper probes observable *)
  mutable ran : bool;
}

(* The engine currently executing on this domain, so that [Ops] can reach
   simulator state without performing an effect. One engine runs at a time
   per domain; [run] saves and restores the slot, and domain-local storage
   keeps engines on parallel harness workers independent. *)
let cur_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create cfg ~proto =
  let sb_cap = cfg.Config.store_buffer_entries + 1 in
  let threads =
    Array.init (Config.num_threads cfg) (fun tid ->
        { tid; time = 0; qlimit = 0; sb = Array.make sb_cap 0; sb_head = 0; sb_len = 0 })
  in
  let cur0 =
    if Array.length threads > 0 then threads.(0)
    else { tid = -1; time = 0; qlimit = 0; sb = [||]; sb_head = 0; sb_len = 0 }
  in
  let shards = Config.num_shards cfg in
  let ms = Memsys.create cfg ~proto in
  let obs = Memsys.obs ms in
  {
    ms;
    cfg;
    obs;
    obs_on = Obs.enabled obs;
    obs_full = Obs.full obs;
    stats = Memsys.sstats ms;
    quantum = cfg.Config.sched_quantum;
    cquantum = max 1 cfg.Config.sim_quantum;
    shards;
    runqs = Array.init shards (fun _ -> Pqueue.create ());
    thread_shard =
      Array.init (Config.num_threads cfg) (fun tid ->
          Config.shard_of_core cfg (Config.core_of_thread cfg tid));
    pend_core = Array.make shards 0;
    pend_blk = Array.make shards (-1);
    window = Atomic.make 0;
    threads;
    next_seq = 0;
    next_window = max 1 cfg.Config.sim_quantum;
    cur_st = cur0;
    used_threads = 0;
    hint_sink = 0;
    ran = false;
  }

let memsys t = t.ms
let config t = t.cfg

let retire t (st : tstate) n =
  let s = t.stats in
  s.Sstats.instructions <- s.Sstats.instructions + n;
  s.Sstats.per_thread_instructions.(st.tid) <-
    s.Sstats.per_thread_instructions.(st.tid) + n

let sb_pop st =
  let v = Array.unsafe_get st.sb st.sb_head in
  let h = st.sb_head + 1 in
  st.sb_head <- (if h >= Array.length st.sb then 0 else h);
  st.sb_len <- st.sb_len - 1;
  v

let sb_push st v =
  let cap = Array.length st.sb in
  let i = st.sb_head + st.sb_len in
  Array.unsafe_set st.sb (if i >= cap then i - cap else i) v;
  st.sb_len <- st.sb_len + 1

let drain_ready st =
  while st.sb_len > 0 && Array.unsafe_get st.sb st.sb_head <= st.time do
    ignore (sb_pop st)
  done

(* A TSO fence: wait for every buffered store to complete. *)
let drain_all st =
  while st.sb_len > 0 do
    st.time <- max st.time (sb_pop st)
  done

(* Store-buffer bookkeeping shared by the scheduled and inline store
   paths: free ready slots, stall on a full buffer, enqueue the new
   store's completion, retire in one cycle. *)
let commit_store t st lat =
  drain_ready st;
  if st.sb_len >= t.cfg.Config.store_buffer_entries then begin
    t.stats.Sstats.sb_stalls <- t.stats.Sstats.sb_stalls + 1;
    let ready = sb_pop st in
    if t.obs_on then begin
      (* Explicit [set_now]: the inline fast path reaches here without
         passing through a scheduled closure. No block is at fault for a
         full buffer, so the record carries none. *)
      Obs.set_now t.obs st.time;
      Obs.event t.obs ~code:Oev.sb_stall
        ~core:(Config.core_of_thread t.cfg st.tid)
        ~blk:(-1)
        ~arg:(max 0 (ready - st.time))
    end;
    st.time <- max st.time ready
  end;
  sb_push st (st.time + lat);
  st.time <- st.time + 1;
  retire t st 1

(* Every closure entering a run queue re-establishes the ambient thread
   and opens a fresh inline quantum; with [sched_quantum = 0] the budget
   is empty and every access goes through the queue (legacy behavior). *)
let resume t (st : tstate) =
  t.cur_st <- st;
  st.qlimit <- st.time + t.quantum;
  (* The recorder timestamps ring records with the resumed event's issue
     time; only full mode rings, so off/counters skip the store. *)
  if t.obs_full then Obs.set_now t.obs st.time

(* Enqueue into the thread's shard queue under the global sequence
   counter. Assignment order is identical for every shard count — all
   enqueues happen on the commit lane — so the multi-queue min-merge
   reproduces the single-queue pop order bit for bit. *)
let enqueue t (st : tstate) fn =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.add_seq
    (Array.unsafe_get t.runqs (Array.unsafe_get t.thread_shard st.tid))
    ~prio:st.time ~seq fn

(* Memory accesses additionally publish a (core, block) hint for the
   helper domains. Plain (racy) int writes: a helper pairing a stale core
   with a fresh block merely warms the wrong set — hints cannot affect
   simulated state. *)
let enqueue_access t (st : tstate) ~blk fn =
  let sh = Array.unsafe_get t.thread_shard st.tid in
  Array.unsafe_set t.pend_core sh (Config.core_of_thread t.cfg st.tid);
  Array.unsafe_set t.pend_blk sh blk;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.add_seq (Array.unsafe_get t.runqs sh) ~prio:st.time ~seq fn

let min_prio_all t =
  if t.shards = 1 then Pqueue.min_prio_or t.runqs.(0) ~default:max_int
  else begin
    let m = ref max_int in
    for s = 0 to t.shards - 1 do
      let p = Pqueue.min_prio_or t.runqs.(s) ~default:max_int in
      if p < !m then m := p
    done;
    !m
  end

(* An access may run inline — without suspending into the run queue — iff
   it is provably the event the scheduled path would pop next: the
   thread's clock must be strictly below every queued priority (a tie
   loses, since the queued entry was inserted earlier and FIFO order puts
   it first). The quantum bounds how long one thread may monopolize the
   host before taking the queue path anyway. Under this gate the fast
   path replays exactly the legacy pop order, so simulated cycles, stats
   and memory images are bit-identical for every quantum value. *)
let can_inline t (st : tstate) =
  st.time < st.qlimit && st.time < min_prio_all t

(* The shard whose queue head is the global minimum (priority, sequence),
   or -1 when every queue is empty. *)
let select t =
  if t.shards = 1 then (if Pqueue.is_empty t.runqs.(0) then -1 else 0)
  else begin
    let best = ref (-1) and bp = ref max_int and bs = ref max_int in
    for s = 0 to t.shards - 1 do
      let q = t.runqs.(s) in
      if not (Pqueue.is_empty q) then begin
        let p = Pqueue.min_prio_or q ~default:max_int in
        let sq = Pqueue.min_seq_or q ~default:max_int in
        if p < !bp || (p = !bp && sq < !bs) then begin
          best := s;
          bp := p;
          bs := sq
        end
      end
    done;
    !best
  end

(* Quantum barrier: fold the per-shard stat banks (deterministic at any
   point — integer counts, fixed shard order) and publish the window so
   helpers can observe progress. [p] is the event priority that crossed
   the boundary. *)
let barrier t p =
  ignore (Memsys.sstats t.ms : Sstats.t);
  ignore (Memsys.energy t.ms : Energy.t);
  if t.obs_full then Obs.fold t.obs;
  Atomic.incr t.window;
  t.next_window <- ((p / t.cquantum) + 1) * t.cquantum

(* Helper-domain body: replay each shard's pending access as a pure probe
   so the metadata behind it (tag sets, payload bytes, store pages) is
   host-cache-resident when the commit lane gets there. Reads of the hint
   arrays race with the lane; every observable value is a value some
   enqueue wrote, and probes mutate nothing, so any interleaving yields
   the same simulation. The probe sum is returned as a sink. *)
let helper_loop t stop =
  let sink = ref 0 in
  while not (Atomic.get stop) do
    for sh = 0 to t.shards - 1 do
      let blk = Array.unsafe_get t.pend_blk sh in
      if blk >= 0 then
        sink :=
          !sink
          + Memsys.prefetch t.ms ~core:(Array.unsafe_get t.pend_core sh) ~blk
    done;
    Domain.cpu_relax ()
  done;
  !sink

let handler t st =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_tick n ->
            Some
              (fun (k : (a, unit) continuation) ->
                st.time <- st.time + n;
                retire t st n;
                continue k ())
        | E_stall n ->
            Some
              (fun k ->
                st.time <- st.time + n;
                continue k ())
        | E_now -> Some (fun k -> continue k st.time)
        | E_tid -> Some (fun k -> continue k st.tid)
        | E_yield ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    continue k ()))
        | E_load (addr, size) ->
            Some
              (fun k ->
                enqueue_access t st ~blk:(Addr.block_of addr) (fun () ->
                    resume t st;
                    let v, lat = Memsys.load t.ms ~thread:st.tid addr ~size in
                    st.time <- st.time + lat;
                    retire t st 1;
                    continue k v))
        | E_store (addr, size, v) ->
            Some
              (fun k ->
                enqueue_access t st ~blk:(Addr.block_of addr) (fun () ->
                    resume t st;
                    let lat = Memsys.store t.ms ~thread:st.tid addr ~size v in
                    commit_store t st lat;
                    continue k ()))
        | E_rmw (addr, size, f) ->
            Some
              (fun k ->
                enqueue_access t st ~blk:(Addr.block_of addr) (fun () ->
                    resume t st;
                    drain_all st;
                    let old, lat = Memsys.rmw t.ms ~thread:st.tid addr ~size f in
                    st.time <- st.time + lat + 2;
                    retire t st 1;
                    continue k old))
        | E_region_add (lo, hi) ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    st.time <- st.time + 1;
                    retire t st 1;
                    continue k (Memsys.region_add t.ms ~thread:st.tid ~lo ~hi)))
        | E_region_remove (lo, hi) ->
            Some
              (fun k ->
                enqueue t st (fun () ->
                    resume t st;
                    let lat = Memsys.region_remove t.ms ~thread:st.tid ~lo ~hi in
                    st.time <- st.time + 1 + lat;
                    retire t st 1;
                    continue k ()))
        | _ -> None)
  }

let run t bodies =
  if t.ran then invalid_arg "Engine.run: engine already used";
  t.ran <- true;
  let n = Array.length bodies in
  if n > Array.length t.threads then invalid_arg "Engine.run: too many threads";
  t.used_threads <- n;
  Array.iteri
    (fun tid body ->
      let st = t.threads.(tid) in
      enqueue t st (fun () ->
          resume t st;
          Effect.Deep.match_with body () (handler t st)))
    bodies;
  let prev = Domain.DLS.get cur_key in
  Domain.DLS.set cur_key (Some t);
  let stop = Atomic.make false in
  let helpers =
    if t.shards <= 1 then [||]
    else Array.init (t.shards - 1) (fun _ -> Domain.spawn (fun () -> helper_loop t stop))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Array.iter (fun d -> t.hint_sink <- t.hint_sink + Domain.join d) helpers;
      Domain.DLS.set cur_key prev)
    (fun () ->
      let rec loop () =
        let s = select t in
        if s >= 0 then begin
          let q = Array.unsafe_get t.runqs s in
          if Pqueue.min_prio_or q ~default:0 >= t.next_window then
            barrier t (Pqueue.min_prio_or q ~default:0);
          (Pqueue.pop_exn q) ();
          loop ()
        end
      in
      loop ());
  if t.obs_full then Obs.fold t.obs;
  let makespan = ref 0 in
  for tid = 0 to n - 1 do
    drain_all t.threads.(tid);
    makespan := max !makespan t.threads.(tid).time
  done;
  t.stats.Sstats.cycles <- !makespan;
  let cores_used =
    min (Config.num_cores t.cfg)
      ((n + t.cfg.Config.threads_per_core - 1) / t.cfg.Config.threads_per_core)
  in
  Energy.core_cycles (Memsys.energy t.ms) ~cores:cores_used ~cycles:!makespan;
  !makespan

module Ops = struct
  (* Each operation first tries to run inline on the ambient engine —
     no effect performed, no continuation captured — and falls back to
     the effect (and thus the run queue) when the access needs a
     coherence transition, loses the [can_inline] gate, or no engine is
     running on this domain (preserving [Effect.Unhandled] semantics). *)

  let load addr ~size =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        let lat = Memsys.try_fast_load t.ms ~thread:st.tid addr ~size in
        if lat >= 0 then begin
          st.time <- st.time + lat;
          retire t st 1;
          Memsys.fast_value t.ms
        end
        else Effect.perform (E_load (addr, size)))
    | _ -> Effect.perform (E_load (addr, size))

  let store addr ~size v =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        let lat = Memsys.try_fast_store t.ms ~thread:st.tid addr ~size v in
        if lat >= 0 then commit_store t st lat
        else Effect.perform (E_store (addr, size, v)))
    | _ -> Effect.perform (E_store (addr, size, v))

  let rmw addr ~size f =
    match Domain.DLS.get cur_key with
    | Some t when can_inline t t.cur_st -> (
        let st = t.cur_st in
        (* [f] must be pure (all call sites are arithmetic on the old
           value), so committing the RMW before the fence drain below is
           indistinguishable from the scheduled path's order. *)
        let lat = Memsys.try_fast_rmw t.ms ~thread:st.tid addr ~size f in
        if lat >= 0 then begin
          drain_all st;
          st.time <- st.time + lat + 2;
          retire t st 1;
          Memsys.fast_value t.ms
        end
        else Effect.perform (E_rmw (addr, size, f)))
    | _ -> Effect.perform (E_rmw (addr, size, f))

  let cas addr ~size ~expected ~desired =
    let old = rmw addr ~size (fun v -> if v = expected then desired else v) in
    old = expected

  let fetch_add addr ~size delta = rmw addr ~size (Int64.add delta)

  let tick n =
    match Domain.DLS.get cur_key with
    | Some t ->
        let st = t.cur_st in
        st.time <- st.time + n;
        retire t st n
    | None -> Effect.perform (E_tick n)

  let stall n =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.time <- t.cur_st.time + n
    | None -> Effect.perform (E_stall n)

  let now () =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.time
    | None -> Effect.perform E_now

  let tid () =
    match Domain.DLS.get cur_key with
    | Some t -> t.cur_st.tid
    | None -> Effect.perform E_tid

  let region_add ~lo ~hi = Effect.perform (E_region_add (lo, hi))
  let region_remove ~lo ~hi = Effect.perform (E_region_remove (lo, hi))
  let yield () = Effect.perform E_yield
end
