(** The discrete-event simulation engine.

    Each hardware thread is an OCaml computation that performs {!Ops}
    effects; the engine suspends it at every memory operation, interleaves
    all threads in global cycle order (FIFO among equal timestamps, so runs
    are deterministic), and charges latencies from the memory system.

    Timing model:
    - [tick n] retires [n] single-cycle instructions;
    - loads and RMWs block the thread for their full memory latency
      (RMWs additionally drain the store buffer, like a TSO fence);
    - stores retire in one cycle through a bounded store buffer and only
      stall when it is full — the asymmetry the paper's Figure 10 analysis
      relies on.

    Accesses that hit in the private cache without needing a coherence
    transition can be satisfied inline, without suspending the thread
    into the run queue, whenever the thread's clock is strictly below
    every queued timestamp and within the current scheduling quantum
    ({!Warden_machine.Config.t.sched_quantum}). The gate makes the inline
    event exactly the event the queue would have popped next, so results
    are bit-identical to the fully scheduled execution ([sched_quantum =
    0]); see DESIGN.md §8.

    With [sim_domains > 1] ({!Warden_machine.Config.t.sim_domains}) the
    engine runs sharded with speculative shard execution: simulated cores
    are partitioned into shards, each with its own run queue; one commit
    lane pops the global minimum (cycle, sequence) across the queues —
    replaying the single-queue order exactly — while helper domains
    speculatively pre-execute the memory-system half of each queued
    access (the cache lookup, classification and loaded value) against
    versioned views of the owning core's private hierarchy. At the pop,
    the lane validates each speculation in global order — the versions it
    read must still be current — and either commits it, replaying the
    identical mutations and accounting, or squashes and re-executes the
    access inline; misses and upgrades always transition on the lane,
    with helpers warming the host cache behind the directory word, home
    LLC slice and store page instead. Per-shard statistics banks are
    folded at commit-quantum barriers
    ({!Warden_machine.Config.t.sim_quantum}). Results — cycles, stats,
    energy, memory images, traces — are bit-identical for every
    [sim_domains] value and for speculation on/off/torture
    ({!Warden_machine.Config.t.sim_spec}); see DESIGN.md §11. *)

type t

val create :
  Warden_machine.Config.t ->
  proto:[ `Mesi | `Warden | `Msi_bus | `Sisd ] ->
  t

val memsys : t -> Memsys.t
val config : t -> Warden_machine.Config.t

val run : t -> (unit -> unit) array -> int
(** [run t bodies] runs [bodies.(tid)] on hardware thread [tid] (at most
    {!Warden_machine.Config.num_threads}) until every thread finishes.
    Returns the makespan in cycles, also recorded in the stats and charged
    to the energy model.

    May be called repeatedly: each call is a phase continuing the same
    simulated timeline (thread clocks, stats and energy carry over; each
    phase's energy charge is its cycle delta). The boundary between
    phases is the engine's only quiescent point — run queues empty, store
    buffers drained, no live continuation — which is exactly where
    {!snapshot} and {!restore} are legal. *)

val snapshot : t -> Warden_util.Bin.w -> unit
(** Serialize the complete simulator state — scheduler clocks plus the
    whole memory system ({!Memsys.save_state}) — at a quiescent point.
    Raises [Invalid_argument] if called while a run is in progress
    (effects-based continuations cannot serialize). Raw payload; the
    [warden.snap] library adds the versioned header, config fingerprint
    and checksum (DESIGN.md §15). *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite a freshly created engine of identical geometry and protocol
    from {!snapshot} output. Subsequent {!run} phases are bit-identical
    to running them on the snapshotted engine. Raises
    [Warden_util.Bin.Corrupt] on a mismatch. *)

(** Ambient operations for code running inside {!run}. Calling them
    outside a run raises [Effect.Unhandled]. *)
module Ops : sig
  val load : Warden_mem.Addr.t -> size:int -> int64
  val store : Warden_mem.Addr.t -> size:int -> int64 -> unit
  val rmw : Warden_mem.Addr.t -> size:int -> (int64 -> int64) -> int64
  (** Returns the pre-update value. *)

  val cas : Warden_mem.Addr.t -> size:int -> expected:int64 -> desired:int64 -> bool
  val fetch_add : Warden_mem.Addr.t -> size:int -> int64 -> int64

  val tick : int -> unit
  (** Retire [n] ordinary instructions ([n] cycles of compute). *)

  val stall : int -> unit
  (** Advance time without retiring instructions (scheduler overheads). *)

  val now : unit -> int
  val tid : unit -> int

  val region_add : lo:int -> hi:int -> bool
  val region_remove : lo:int -> hi:int -> unit
  (** The paper's Add/Remove-Region instructions; each retires as one
      instruction, and removal charges the reconciliation latency. *)

  val acquire : unit -> unit
  (** Acquire fence at a runtime sync point (start of stolen/forked work,
      lock acquisition). Under a [`Self] protocol this drains the store
      buffer and self-invalidates the core's cache ({!Memsys.acquire});
      under eagerly-coherent protocols it is a literal no-op — no effect
      performed — so schedules and stats are untouched. *)

  val release : unit -> unit
  (** Release fence (publishing forked work, lock release, task
      completion): the [`Self] dual of {!acquire}, self-downgrading the
      core's dirty lines. No-op under eagerly-coherent protocols. *)

  val yield : unit -> unit
  (** Let other threads scheduled at the same cycle run first. *)
end
