(** The complete simulated memory system: per-core private hierarchies, the
    socket-interleaved shared LLC, the directory-based protocol (MESI or
    WARDen) and the backing store, with unified latency, event and energy
    accounting.

    All simulated data lives in the cache lines and the store — a load's
    value really comes from the copy coherence delivered, so protocol bugs
    corrupt program output rather than hiding. *)

type t

val create :
  Warden_machine.Config.t ->
  proto:[ `Mesi | `Warden | `Msi_bus | `Sisd ] ->
  t

val config : t -> Warden_machine.Config.t
val protocol : t -> Warden_proto.Protocol.t
val pstats : t -> Warden_proto.Pstats.t

val llc : t -> Llc.t
(** The shared LLC — the scale bench reads {!Llc.chunks_stats} off it to
    report how much of the lazily-chunked slice storage materialized. *)

val sstats : t -> Sstats.t
(** Merged access statistics. Access-path counters are banked per shard
    (see {!Warden_machine.Config.num_shards}); this getter folds the banks
    into the returned record first, so callers always observe totals. The
    fold is deterministic for every [sim_domains] value: shard order is
    fixed and all deferred quantities are integer counts. *)

val energy : t -> Warden_machine.Energy.t
(** Merged energy model; folds shard banks like {!sstats}. *)

val obs : t -> Warden_obs.Obs.t
(** The run's event recorder (DESIGN.md §12). The same instance is exposed
    to the protocols through the fabric; at [Obs_off] it records nothing. *)

val load : t -> thread:int -> Warden_mem.Addr.t -> size:int -> int64 * int
(** Value and latency (cycles). *)

val store : t -> thread:int -> Warden_mem.Addr.t -> size:int -> int64 -> int
(** Latency of the store's memory-system transaction (the engine hides it
    behind the store buffer). *)

val rmw :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  (int64 -> int64) ->
  int64 * int
(** Atomic read-modify-write: applies the function to the current value,
    stores the result, and returns the {e old} value and the latency.
    Under a [`Self] protocol (see {!Warden_proto.Protocol.S.kind}) the
    RMW is performed coherently at the shared level: the core's copy is
    dropped (dirty sectors flushed), the current bytes are re-fetched,
    and the result is written straight through, leaving a clean S copy —
    so atomics synchronize even though plain accesses may be stale. *)

val acquire : t -> thread:int -> int
(** Acquire fence at a runtime sync point: the [`Self] protocol flushes
    and self-invalidates everything [thread]'s core holds. Returns the
    cycles charged (0 for eagerly-coherent protocols, which do nothing). *)

val release : t -> thread:int -> int
(** Release fence: the [`Self] protocol self-downgrades the core's dirty
    copies into the LLC. Returns the cycles charged. *)

val try_fast_load :
  t -> thread:int -> Warden_mem.Addr.t -> size:int -> int
(** Fast-path load: the latency (>= 0) iff the access is a private-cache
    hit needing no protocol transition, with accounting identical to
    {!load} and the loaded value left in {!fast_value}; [-1] — having
    changed nothing — otherwise, so the caller can fall back to the
    scheduled {!load} without double-counting. Allocation-free. *)

val try_fast_store :
  t -> thread:int -> Warden_mem.Addr.t -> size:int -> int64 -> int
(** Fast-path store (needs E/M permission); same contract as
    {!try_fast_load}. *)

val try_fast_rmw :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  (int64 -> int64) ->
  int
(** Fast-path read-modify-write; same contract as {!try_fast_load}. The
    {e old} value is left in {!fast_value}. *)

val fast_value : t -> int64
(** Value delivered by the last successful {!try_fast_load} or
    {!try_fast_rmw}. *)

val replay_load : t -> thread:int -> Warden_mem.Addr.t -> size:int -> unit
(** Trace-replay load: {!try_fast_load} with the scheduled {!load}
    fallback fused in, minus the value materialization a replayed
    stream never observes ([fast_value] is left stale — it is never
    snapshotted and is reset across quiescent points). State mutations
    and stats/energy/obs accounting are identical to the live paths, so
    replaying a recorded stream reproduces the recorded run's final
    memory-system stats bit for bit. No trace sink fires. *)

val replay_store : t -> thread:int -> Warden_mem.Addr.t -> size:int -> int64 -> unit
(** Trace-replay store; same contract as {!replay_load}. *)

val replay_rmw : t -> thread:int -> Warden_mem.Addr.t -> size:int -> int64 -> unit
(** Trace-replay read-modify-write. The [int64] is the {e committed new}
    value from the recording (the trace sink records it precisely so
    replay needs no modify function); same contract as {!replay_load}. *)

(** {2 Speculative shard execution (DESIGN.md §11)}

    Helper domains pre-execute the memory-system half of pending accesses
    against racy-but-versioned views of the owning core's private
    hierarchy; the commit lane validates each speculation against the
    current version and either applies it (bit-identical to the scheduled
    path) or squashes and re-executes inline. *)

val spec_read :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  write:bool ->
  Privcache.spec_result ->
  int
(** Helper-domain side: classify the access against [thread]'s core
    ({!Privcache.spec_read}). On a plain hit the
    result records a committable speculation; otherwise the transition
    must run on the lane, and this call instead warms the host cache
    behind the structures the lane will walk (directory word, home LLC
    slice, backing-store page). Mutates no simulator state; safe to race
    with the commit lane. The returned int is advisory and must only
    feed a sink. *)

val try_commit_load :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  Privcache.spec_result ->
  int
(** Commit-lane side: validate the speculation (recorded version still
    current) and apply it, with accounting identical to {!load} and the
    value left in {!fast_value}; returns the latency, or [-1] — having
    changed nothing — on a squash (caller re-executes inline). Under
    [sim_spec_torture] the version is bumped first, forcing the squash. *)

val try_commit_store :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  int64 ->
  Privcache.spec_result ->
  int
(** {!try_commit_load} for stores (the speculation already proved E/M
    permission at its recorded version). *)

val try_commit_rmw :
  t ->
  thread:int ->
  Warden_mem.Addr.t ->
  size:int ->
  nv:int64 ->
  Privcache.spec_result ->
  int
(** {!try_commit_load} for read-modify-writes. [nv] is the helper's
    application of the RMW function to the speculated old value; the old
    value is left in {!fast_value}. *)

val region_add : t -> thread:int -> lo:int -> hi:int -> bool
(** Activate a WARD region, recording the activation against [thread]'s
    core (observability only — the protocol sees just the range). *)

val region_remove : t -> thread:int -> lo:int -> hi:int -> int

val alloc : t -> bytes:int -> align:int -> Warden_mem.Addr.t
(** Fresh simulated memory from a global bump allocator. Addresses are
    never reused; [align] must be a power of two. *)

val flush_all : t -> unit
(** Drain every cache to the store so that {!peek} observes the final
    coherent memory image (used by tests and verifiers at end of run). *)

val peek : t -> Warden_mem.Addr.t -> size:int -> int64
(** Read the backing store directly (bypassing caches; see {!flush_all}). *)

val poke : t -> Warden_mem.Addr.t -> size:int -> int64 -> unit
(** Write the backing store directly. Only meaningful before any cache has
    a copy (pre-run initialization of inputs). *)

val footprint_bytes : t -> int

(** {2 Commit-order trace sink (DESIGN.md §15)}

    A flat callback invoked at the instant each access commits its
    memory-system transition, on whichever path served it (scheduled,
    inline fast, or speculative commit) — so the recorded stream is in
    commit order, and feeding it back through {!load}/{!store}/{!rmw}
    (or the fast paths) replays the exact transition sequence with no
    program model. Arguments: [kind thread addr size value]; for
    {!k_rmw} the value is the committed {e new} value (replay with
    [fun _ -> v]), for region events [addr]/[size] carry [lo]/[hi].
    Lane-only, like the access paths themselves. *)

val k_load : int
val k_store : int
val k_rmw : int
val k_region_add : int
val k_region_remove : int
val k_flush : int
val k_poke : int

val k_acquire : int
(** Runtime acquire/release fences ([addr] and [size] are 0). Recorded so
    a stream captured under a [`Self] protocol replays its fences; on
    other protocols the fences are free no-ops both live and replayed. *)

val k_release : int

val set_trace_sink :
  t -> (int -> int -> int -> int -> int64 -> unit) option -> unit
(** Install (or with [None] remove) the commit-order sink. The off path
    costs one predicted branch per access. *)

(** {2 Snapshots (DESIGN.md §15)} *)

val save_state : t -> Warden_util.Bin.w -> unit
(** Serialize the complete simulated memory-system state — store pages,
    LLC slices, private hierarchies, protocol state (directory + region
    CAM), stats, energy, and the bump allocator — after folding the
    per-shard banks. Only meaningful at quiescent points (between
    {!Engine.run}s). *)

val restore_state : t -> Warden_util.Bin.r -> unit
(** Overwrite a same-geometry, same-protocol memory system from
    {!save_state} output. Raises [Warden_util.Bin.Corrupt] on a
    mismatch. The target should be freshly created: directory and page
    tables have no deletion, so restoring into a used system is
    unsupported. *)

val check_invariants : t -> (unit, string) result
(** Audit the private caches against the coherence rules:

    - SWMR: a block held E/M by one core is held by nobody else — except
      blocks inside an active WARD region, where multiple exclusive-like
      copies are WARDen's design, and except under [`Self] protocols,
      where concurrent writers of disjoint sectors are legal;
    - every S copy is clean with respect to the LLC;
    - inclusion: every L1-resident block is L2-resident.

    O(total cache capacity); meant for tests and debugging, not for the
    simulation fast path. *)
