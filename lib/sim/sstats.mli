(** Per-run execution statistics kept by the simulation engine (the
    counters behind Figures 9-11: instructions, IPC, cache hit levels). *)

type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable priv_misses : int;  (** Accesses that left the private hierarchy. *)
  mutable sb_stalls : int;  (** Stores that found the store buffer full. *)
  mutable cycles : int;  (** Makespan; set when the run finishes. *)
  per_thread_instructions : int array;
}

val create : threads:int -> t

val save : t -> Warden_util.Bin.w -> unit
val restore : t -> Warden_util.Bin.r -> unit
(** Binary snapshot round trip; restore requires an equal thread count. *)

val ipc : t -> float
(** Aggregate instructions per cycle across all hardware threads
    ([instructions / cycles]). *)

val kilo_instructions : t -> float
