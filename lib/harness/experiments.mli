(** The paper's evaluation, experiment by experiment (§7).

    Each [render_*] returns plain text shaped like the corresponding table
    or figure; [run_all] regenerates every one of them. Dual-socket runs
    are shared between Figures 8-11, as in the paper's workflow. *)

open Warden_machine

type suite_run = (string * Exp.pair) list

val run_suite :
  ?quick:bool ->
  ?names:string list ->
  ?params:Warden_runtime.Rtparams.t ->
  ?jobs:int ->
  config:Config.t ->
  unit ->
  suite_run
(** Run (benchmark x {MESI, WARDen}) for the named benchmarks (default:
    all 14). Each (benchmark, protocol) simulation is an independent pool
    job fanned across up to [jobs] domains (default
    {!Pool.default_jobs}). *)

val render_table1 : ?iters:int -> unit -> string
val render_table2 : unit -> string

val render_perf_energy : title:string -> suite_run -> string
(** Speedup and energy-savings columns (Figures 7, 8 and 12 a+b). *)

val render_fig9 : suite_run -> string
val render_fig10 : suite_run -> string
val render_fig11 : suite_run -> string

val render_worker_scaling :
  ?quick:bool -> ?jobs:int -> names:string list -> unit -> string
(** §7.3 "many sockets" forward-looking study, part 1: WARDen speedup as a
    function of active worker threads on the dual-socket machine. Grid
    cells are independent simulations fanned across the pool. *)

val render_socket_scaling :
  ?quick:bool -> ?jobs:int -> names:string list -> unit -> string
(** Part 2: WARDen speedup across 1/2/4/8-socket machines (full workers),
    the "benefits of WARDen scale with machine size" claim. *)

val run_all :
  ?quick:bool ->
  ?names:string list ->
  ?jobs:int ->
  ?out:out_channel ->
  unit ->
  bool
(** Regenerate Table 1-2 and Figures 7-12, printing to [out] (default
    stdout). [names] restricts the suites to the named benchmarks (the
    Figure-12 run intersects them with its disaggregated subset, and is
    skipped when that intersection is empty). Returns whether every
    benchmark run verified. *)
