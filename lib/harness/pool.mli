(** A minimal domain pool for running independent simulations in
    parallel (no external dependency; stdlib [Domain] + [Atomic] only).

    Each simulation is single-threaded host code; parallelism comes from
    running {e different} engine instances on different domains. All
    previously global simulator state is domain-local, so concurrent runs
    are isolated. *)

val default_jobs : unit -> int
(** The [WARDEN_JOBS] environment variable if set (must be ≥ 1), else
    {!Domain.recommended_domain_count}. *)

val effective_jobs : jobs:int -> sim_domains:int -> int
(** Cap [jobs] so that [jobs * sim_domains] — each pool job runs a
    sharded engine that spawns [sim_domains - 1] helper domains — does
    not exceed {!Domain.recommended_domain_count}. Returns the capped
    width (≥ 1) and warns on stderr when it had to shrink. Determinism
    never depends on the width; this is purely a scheduling guard. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element, fanning work across up
    to [jobs] domains (default {!default_jobs}), and returns results in
    input order. With [jobs <= 1] (or fewer than two items) this is plain
    [List.map] on the calling domain — no domains spawned, no overhead.
    If any application raises, one of the raised exceptions is re-raised
    after all workers finish. *)
