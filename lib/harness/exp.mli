(** Running benchmarks under a protocol/machine pair and deriving the
    paper's metrics from MESI-vs-WARDen result pairs. *)

open Warden_machine

type run_result = {
  bench : string;
  proto : string;
  machine : string;
  verified : bool;
  cycles : int;
  instructions : int;
  ipc : float;
  loads : int;
  invalidations : int;
  downgrades : int;
  self_invs : int;
  self_downs : int;
  messages : int;
  ward_grants : int;
  recon_blocks : int;
  energy_network_pj : float;
  energy_processor_pj : float;
  energy_total_pj : float;
}

val scale_of : quick:bool -> Warden_pbbs.Spec.t -> int
(** The benchmark's default scale, or a reduced scale for quick runs. *)

val proto_name : [ `Mesi | `Warden | `Msi_bus | `Sisd ] -> string
(** Canonical CLI/JSON name of a protocol: ["mesi"], ["warden"],
    ["msi-bus"], ["sisd"]. *)

val zoo : [ `Mesi | `Warden | `Msi_bus | `Sisd ] list
(** Every protocol in the zoo, in canonical order. *)

val inv_down : run_result -> int
(** Coherence maintenance traffic comparable across protocol kinds:
    directory/snoop invalidations + downgrades plus SI/SD
    self-invalidations + self-downgrades (each side's counters are zero on
    the other side). *)

val run_bench :
  ?quick:bool ->
  ?seed:int64 ->
  ?params:Warden_runtime.Rtparams.t ->
  ?workers:int ->
  config:Config.t ->
  proto:[ `Mesi | `Warden | `Msi_bus | `Sisd ] ->
  Warden_pbbs.Spec.t ->
  run_result

type pair = { mesi : run_result; warden : run_result }

val run_pair :
  ?quick:bool ->
  ?seed:int64 ->
  ?params:Warden_runtime.Rtparams.t ->
  ?workers:int ->
  ?jobs:int ->
  config:Config.t ->
  Warden_pbbs.Spec.t ->
  pair
(** Run the benchmark under MESI and under WARDen. The two simulations are
    independent, so with [jobs > 1] (default {!Pool.default_jobs}) they
    run on separate domains. *)

val run_zoo :
  ?quick:bool ->
  ?seed:int64 ->
  ?params:Warden_runtime.Rtparams.t ->
  ?workers:int ->
  ?jobs:int ->
  config:Config.t ->
  Warden_pbbs.Spec.t ->
  run_result list
(** Run the benchmark under every protocol in {!zoo}, in parallel;
    results in zoo order. *)

(* Derived metrics, matching the paper's figures. *)

val speedup : pair -> float
(** MESI cycles / WARDen cycles (Figs. 7a, 8a, 12a). *)

val interconnect_savings_pct : pair -> float
(** Percent network energy saved by WARDen (Figs. 7b, 8b). *)

val processor_savings_pct : pair -> float
(** Percent total-processor energy saved (Figs. 7b, 8b). *)

val inv_down_reduced_per_kilo : pair -> float
(** Invalidations + downgrades avoided per 1000 instructions (Fig. 9),
    normalized by the MESI run's instruction count. *)

val downgrade_share_pct : pair -> float
(** Share of the avoided events that were downgrades (Fig. 10). *)

val inv_share_pct : pair -> float

val ipc_improvement_pct : pair -> float
(** Percent IPC improvement (Fig. 11) — can be negative even with a
    speedup when WARDen also removes busy-wait instructions. *)
