open Warden_util
open Warden_machine
open Warden_pbbs

type suite_run = (string * Exp.pair) list

let specs_of_names = function
  | None -> Suite.all
  | Some names ->
      List.map
        (fun n ->
          match Suite.find n with
          | Some s -> s
          | None -> invalid_arg ("unknown benchmark: " ^ n))
        names

(* One pool job per (benchmark, protocol) — the finest independent grain —
   then reassemble MESI/WARDen pairs in order. *)
let run_suite ?quick ?names ?params ?jobs ~config () =
  let specs = specs_of_names names in
  let runs =
    Pool.map ?jobs
      (fun ((spec : Spec.t), proto) ->
        Exp.run_bench ?quick ?params ~config ~proto spec)
      (List.concat_map (fun s -> [ (s, `Mesi); (s, `Warden) ]) specs)
  in
  let rec pair_up specs runs =
    match (specs, runs) with
    | [], [] -> []
    | (s : Spec.t) :: ss, m :: w :: rest ->
        (s.Spec.name, { Exp.mesi = m; Exp.warden = w }) :: pair_up ss rest
    | _ -> assert false
  in
  pair_up specs runs

let f2 = Table.fmt_f ~decimals:2
let f1 = Table.fmt_f ~decimals:1

let render_table1 ?iters () =
  let rows = Microbench.table1 ?iters () in
  "Table 1: validation of the simulator's data-movement latencies\n"
  ^ "(cycles per ping-pong iteration, Figure 6 kernel)\n"
  ^ Table.render
      ~header:[ "Scenario"; "Paper real HW"; "Paper Sniper"; "This simulator" ]
      ~rows:
        (List.map
           (fun r ->
             [
               r.Microbench.scenario;
               f2 r.Microbench.paper_real_hw;
               f2 r.Microbench.paper_simulated;
               f2 r.Microbench.cycles_per_iter;
             ])
           rows)

let render_table2 () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 2: simulated system specifications\n";
  List.iter
    (fun cfg ->
      Buffer.add_string buf (Format.asprintf "%a@." Config.pp cfg))
    [ Config.single_socket (); Config.dual_socket (); Config.disaggregated () ];
  Buffer.contents buf

let check_verified (sr : suite_run) =
  List.for_all
    (fun (_, p) -> p.Exp.mesi.Exp.verified && p.Exp.warden.Exp.verified)
    sr

let render_perf_energy ~title (sr : suite_run) =
  let rows =
    List.map
      (fun (name, p) ->
        [
          name;
          f2 (Exp.speedup p);
          f1 (Exp.interconnect_savings_pct p);
          f1 (Exp.processor_savings_pct p);
          (if p.Exp.mesi.Exp.verified && p.Exp.warden.Exp.verified then "yes"
           else "NO");
        ])
      sr
  in
  let speedups = List.map (fun (_, p) -> Exp.speedup p) sr in
  let inter = List.map (fun (_, p) -> Exp.interconnect_savings_pct p) sr in
  let proc = List.map (fun (_, p) -> Exp.processor_savings_pct p) sr in
  let mean_row =
    [
      "MEAN";
      f2 (Stats.mean speedups);
      f1 (Stats.mean inter);
      f1 (Stats.mean proc);
      "";
    ]
  in
  title ^ "\n"
  ^ Table.render
      ~header:
        [ "Benchmark"; "Speedup"; "Interconnect sav. %"; "Total proc. sav. %"; "Verified" ]
      ~rows:(rows @ [ mean_row ])
  ^ "\n"
  ^ Table.bar_chart ~title:"Speedup (normalized to MESI)" ()
      (List.map (fun (n, p) -> (n, Exp.speedup p)) sr)

let render_fig9 (sr : suite_run) =
  "Figure 9: speedup vs. reduction in invalidations + downgrades\n"
  ^ Table.render
      ~header:[ "Benchmark"; "Inv+Down reduced /kilo-instr"; "Speedup" ]
      ~rows:
        (List.map
           (fun (name, p) ->
             [ name; f2 (Exp.inv_down_reduced_per_kilo p); f2 (Exp.speedup p) ])
           sr)

let render_fig10 (sr : suite_run) =
  "Figure 10: share of the reduction due to downgrades vs invalidations\n"
  ^ Table.render
      ~header:[ "Benchmark"; "Downgrade %"; "Invalidation %" ]
      ~rows:
        (List.map
           (fun (name, p) ->
             [ name; f1 (Exp.downgrade_share_pct p); f1 (Exp.inv_share_pct p) ])
           sr)

let render_fig11 (sr : suite_run) =
  "Figure 11: percentage IPC improvement\n"
  ^ Table.render
      ~header:[ "Benchmark"; "IPC improvement %" ]
      ~rows:
        (List.map
           (fun (name, p) -> [ name; f1 (Exp.ipc_improvement_pct p) ])
           sr)

(* [~jobs:1] below: the cell itself is the unit of pool parallelism, so
   the pair inside must not spawn a nested pool. *)
let speedup_cell ?quick ?workers ~config name =
  match Suite.find name with
  | None -> invalid_arg ("unknown benchmark: " ^ name)
  | Some spec ->
      let pair = Exp.run_pair ?quick ?workers ~jobs:1 ~config spec in
      f2 (Exp.speedup pair)

(* Fan a whole scaling grid (rows x columns of independent simulations)
   across the pool, then cut the flat result list back into rows. *)
let grid_rows ?jobs ~names ~cols cell =
  let flat =
    Pool.map ?jobs
      (fun (name, c) -> cell name c)
      (List.concat_map (fun name -> List.map (fun c -> (name, c)) cols) names)
  in
  let rec rows names flat =
    match names with
    | [] -> []
    | name :: rest ->
        let n = List.length cols in
        let mine = List.filteri (fun i _ -> i < n) flat in
        let others = List.filteri (fun i _ -> i >= n) flat in
        (name :: mine) :: rows rest others
  in
  rows names flat

let render_worker_scaling ?(quick = false) ?jobs ~names () =
  let workers = [ 2; 4; 8; 16; 24 ] in
  let header =
    "Benchmark" :: List.map (fun w -> Printf.sprintf "%d workers" w) workers
  in
  let rows =
    grid_rows ?jobs ~names ~cols:workers (fun name w ->
        speedup_cell ~quick ~workers:w ~config:(Config.dual_socket ()) name)
  in
  "WARDen speedup vs active workers (dual socket)\n"
  ^ Table.render ~header ~rows

let render_socket_scaling ?(quick = false) ?jobs ~names () =
  let sockets = [ 1; 2; 4; 8 ] in
  let header =
    "Benchmark" :: List.map (fun s -> Printf.sprintf "%d socket(s)" s) sockets
  in
  let rows =
    grid_rows ?jobs ~names ~cols:sockets (fun name s ->
        speedup_cell ~quick ~config:(Config.many_socket ~sockets:s ()) name)
  in
  "WARDen speedup vs machine size (full workers per machine)\n"
  ^ Table.render ~header ~rows

let run_all ?(quick = false) ?names ?jobs ?(out = stdout) () =
  let p s =
    output_string out s;
    output_string out "\n";
    flush out
  in
  p (render_table2 ());
  p (render_table1 ());
  p "Running the PBBS suite on the single-socket machine (Figure 7)...";
  let fig7 = run_suite ~quick ?names ?jobs ~config:(Config.single_socket ()) () in
  p
    (render_perf_energy
       ~title:"Figure 7: performance and energy gains, single socket" fig7);
  p "Running the PBBS suite on the dual-socket machine (Figures 8-11)...";
  let fig8 = run_suite ~quick ?names ?jobs ~config:(Config.dual_socket ()) () in
  p
    (render_perf_energy
       ~title:"Figure 8: performance and energy gains, dual socket" fig8);
  p (render_fig9 fig8);
  p (render_fig10 fig8);
  p (render_fig11 fig8);
  (* Figure 12 carries only its four-benchmark subset; a caller's filter
     intersects with it. *)
  let fig12_names =
    match names with
    | None -> Suite.disaggregated_subset
    | Some ns ->
        List.filter (fun n -> List.mem n Suite.disaggregated_subset) ns
  in
  let fig12 =
    if fig12_names = [] then begin
      p "Skipping the disaggregated subset (Figure 12): filtered out.";
      []
    end
    else begin
      p "Running the disaggregated subset (Figure 12)...";
      let r =
        run_suite ~quick ?jobs ~names:fig12_names
          ~config:(Config.disaggregated ()) ()
      in
      p
        (render_perf_energy
           ~title:
             "Figure 12: performance and energy gains, disaggregated (1 us \
              remote)"
           r);
      r
    end
  in
  check_verified fig7 && check_verified fig8 && check_verified fig12
