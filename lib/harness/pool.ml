(* A dependency-free domain pool for fanning independent simulations
   across cores. Simulator state that used to be global (heap registry,
   scheduler slot, trace hooks, engine slot) is domain-local, so runs on
   different domains cannot interfere; results come back in input order. *)

let default_jobs () =
  match Sys.getenv_opt "WARDEN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "WARDEN_JOBS: expected a positive integer")
  | None -> Domain.recommended_domain_count ()

(* With the sharded engine, every job spawns [sim_domains - 1] helper
   domains of its own, so the true domain demand of a run is the product.
   Cap the pool width so the product stays within what the host can
   schedule; oversubscription would not be wrong (determinism never
   depends on timing), just slow. *)
let effective_jobs ~jobs ~sim_domains =
  let jobs = max 1 jobs and sim_domains = max 1 sim_domains in
  let budget = Domain.recommended_domain_count () in
  if jobs * sim_domains <= budget then jobs
  else begin
    let capped = max 1 (budget / sim_domains) in
    if capped < jobs then
      Printf.eprintf
        "warden: capping --jobs %d to %d: %d jobs x %d sim domains exceeds \
         the %d domains this host can schedule\n%!"
        jobs capped jobs sim_domains budget;
    capped
  end

type 'b outcome = Done of 'b | Failed of exn | Pending

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | y -> Done y
             | exception e -> Failed e));
          go ()
        end
      in
      go ()
    in
    let workers =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    (* The calling domain is a worker too. *)
    worker ();
    Array.iter Domain.join workers;
    Array.to_list
      (Array.map
         (function
           | Done y -> y
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end
