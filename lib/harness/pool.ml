(* A dependency-free domain pool for fanning independent simulations
   across cores. Simulator state that used to be global (heap registry,
   scheduler slot, trace hooks, engine slot) is domain-local, so runs on
   different domains cannot interfere; results come back in input order. *)

let default_jobs () =
  match Sys.getenv_opt "WARDEN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "WARDEN_JOBS: expected a positive integer")
  | None -> Domain.recommended_domain_count ()

type 'b outcome = Done of 'b | Failed of exn | Pending

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | y -> Done y
             | exception e -> Failed e));
          go ()
        end
      in
      go ()
    in
    let workers =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    (* The calling domain is a worker too. *)
    worker ();
    Array.iter Domain.join workers;
    Array.to_list
      (Array.map
         (function
           | Done y -> y
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end
