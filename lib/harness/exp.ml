open Warden_machine
open Warden_sim
open Warden_proto
open Warden_pbbs

type run_result = {
  bench : string;
  proto : string;
  machine : string;
  verified : bool;
  cycles : int;
  instructions : int;
  ipc : float;
  loads : int;
  invalidations : int;
  downgrades : int;
  self_invs : int;
  self_downs : int;
  messages : int;
  ward_grants : int;
  recon_blocks : int;
  energy_network_pj : float;
  energy_processor_pj : float;
  energy_total_pj : float;
}

let proto_name = function
  | `Mesi -> "mesi"
  | `Warden -> "warden"
  | `Msi_bus -> "msi-bus"
  | `Sisd -> "sisd"

let zoo = [ `Mesi; `Warden; `Msi_bus; `Sisd ]

(* Total coherence maintenance traffic, comparable across protocol kinds:
   directory/snoop protocols pay directory-initiated invalidations and
   downgrades, SI/SD pays self-invalidations and self-downgrades instead
   (each side's counters are zero on the other side). *)
let inv_down r = r.invalidations + r.downgrades + r.self_invs + r.self_downs

let quick_scale (spec : Spec.t) =
  match spec.Spec.name with
  | "fib" -> 16
  | "make_array" -> 40_000
  | "primes" -> 12_000
  | "msort" -> 6_000
  | "dedup" -> 8_000
  | "dmm" -> 32
  | "nqueens" -> 8
  | "grep" -> 40_000
  | "tokens" -> 40_000
  | "palindrome" -> 8_000
  | "quickhull" -> 6_000
  | "ray" -> 32
  | "suffix_array" -> 1_000
  | "nn" -> 3_000
  | _ -> max 1 (spec.Spec.default_scale / 8)

let scale_of ~quick spec =
  if quick then quick_scale spec else spec.Spec.default_scale

let run_bench ?(quick = false) ?(seed = 0x5EEDF00DL) ?params ?workers ~config
    ~proto (spec : Spec.t) =
  let eng = Engine.create config ~proto in
  let verified =
    spec.Spec.run ~scale:(scale_of ~quick spec) ~seed ?params ?workers eng
  in
  let ms = Engine.memsys eng in
  let ss = Memsys.sstats ms in
  let ps = Memsys.pstats ms in
  let en = Memsys.energy ms in
  {
    bench = spec.Spec.name;
    proto = proto_name proto;
    machine = config.Config.name;
    verified;
    cycles = ss.Sstats.cycles;
    instructions = ss.Sstats.instructions;
    ipc = Sstats.ipc ss;
    loads = ss.Sstats.loads;
    invalidations = ps.Pstats.invalidations;
    downgrades = ps.Pstats.downgrades;
    self_invs = ps.Pstats.self_invs;
    self_downs = ps.Pstats.self_downs;
    messages = Pstats.total_msgs ps;
    ward_grants = ps.Pstats.ward_grants;
    recon_blocks = ps.Pstats.recon_blocks;
    energy_network_pj = Energy.network_pj en;
    energy_processor_pj = Energy.processor_pj en;
    energy_total_pj = Energy.total_pj en;
  }

type pair = { mesi : run_result; warden : run_result }

let run_pair ?quick ?seed ?params ?workers ?jobs ~config spec =
  match
    Pool.map ?jobs
      (fun proto -> run_bench ?quick ?seed ?params ?workers ~config ~proto spec)
      [ `Mesi; `Warden ]
  with
  | [ mesi; warden ] -> { mesi; warden }
  | _ -> assert false

(* The cross-protocol comparison: one run per zoo protocol, in parallel
   (independent simulations), results in zoo order. *)
let run_zoo ?quick ?seed ?params ?workers ?jobs ~config spec =
  Pool.map ?jobs
    (fun proto -> run_bench ?quick ?seed ?params ?workers ~config ~proto spec)
    zoo

let speedup p = float_of_int p.mesi.cycles /. float_of_int p.warden.cycles

let savings_pct baseline value =
  if baseline = 0. then 0. else (baseline -. value) /. baseline *. 100.

let interconnect_savings_pct p =
  savings_pct p.mesi.energy_network_pj p.warden.energy_network_pj

let processor_savings_pct p =
  savings_pct p.mesi.energy_processor_pj p.warden.energy_processor_pj

let reduced_events p =
  p.mesi.invalidations + p.mesi.downgrades
  - (p.warden.invalidations + p.warden.downgrades)

let inv_down_reduced_per_kilo p =
  if p.mesi.instructions = 0 then 0.
  else float_of_int (reduced_events p) /. (float_of_int p.mesi.instructions /. 1000.)

let downgrade_share_pct p =
  let total = reduced_events p in
  if total = 0 then 0.
  else
    float_of_int (p.mesi.downgrades - p.warden.downgrades)
    /. float_of_int total *. 100.

let inv_share_pct p =
  let total = reduced_events p in
  if total = 0 then 0. else 100. -. downgrade_share_pct p

let ipc_improvement_pct p =
  if p.mesi.ipc = 0. then 0. else (p.warden.ipc -. p.mesi.ipc) /. p.mesi.ipc *. 100.
