(** Event-based energy accounting, standing in for the McPAT power model
    the paper uses (§7).

    Every memory-system event deposits a fixed energy cost into one of four
    buckets. The paper's reported categories map as:
    - "Total Processor" = core + cache + DRAM buckets;
    - "Interconnect" / "Network" = the network bucket.

    Costs default to published McPAT/CACTI ballparks for a 22 nm Xeon-class
    part; their absolute scale is irrelevant to the reproduced results,
    which are all relative (percent savings). *)

type costs = {
  core_cycle_pj : float;  (** Per core per cycle (dynamic + leakage share). *)
  l1_pj : float;
  l2_pj : float;
  l3_pj : float;
  dir_pj : float;  (** Directory lookup/update. *)
  dram_pj : float;
  msg_intra_pj : float;  (** Coherence message staying within a socket. *)
  msg_inter_pj : float;  (** Coherence message crossing sockets. *)
  cam_pj : float;  (** WARD range-CAM lookup. *)
  bus_cycle_pj : float;
      (** One cycle of shared-bus occupancy (arbitration or transfer) on a
          snooping machine; deposits into the network bucket. *)
}

val default_costs : costs

type t

val create : ?costs:costs -> unit -> t

val costs : t -> costs

(* Deposit events. *)
val core_cycles : t -> cores:int -> cycles:int -> unit
val l1_access : t -> unit
val l2_access : t -> unit

val l1_accesses : t -> int -> unit
(** [n] L1 accesses paid at once. With integer-valued costs (the default
    table) this is bit-identical to [n] calls of {!l1_access}; the sharded
    engine's deferred per-shard accounting depends on that. *)

val l2_accesses : t -> int -> unit
val l3_access : t -> unit
val dir_access : t -> unit
val dram_access : t -> unit

val message : t -> inter_socket:bool -> data:bool -> unit
(** Control messages cost one flit; [data] messages carry a 64-byte block
    and cost five. *)

val cam_lookup : t -> unit

val bus_cycles : t -> int -> unit
(** [n] cycles of shared-bus occupancy, deposited into the network bucket
    (the bus is the snooping machine's interconnect). Integer-valued, so
    bulk deposits are bit-identical to repeated single-cycle deposits. *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot the four accumulators as raw float bits (exact). *)

val restore : t -> Warden_util.Bin.r -> unit

(* Read accumulated energy, in picojoules. *)
val core_pj : t -> float
val cache_pj : t -> float
val dram_pj : t -> float
val network_pj : t -> float

val processor_pj : t -> float
(** core + cache + DRAM: the paper's "Total Processor". *)

val total_pj : t -> float
