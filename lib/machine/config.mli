(** Machine configurations.

    Default values follow Table 2 of the paper: 32 KB / 8-way L1,
    256 KB / 8-way L2, 2.5 MB-per-core / 20-way shared L3, 64 B blocks,
    12 cores per socket, L1/L2/L3 latencies of 6/16/71 cycles, 3.3 GHz.
    Interconnect latencies are calibrated against the paper's Table 1
    ping-pong measurements (see [bench/main.ml], Table 1). *)

type obs_level =
  | Obs_off  (** No observability work at all (the default). *)
  | Obs_counters
      (** Histograms, heatmaps and event counters only — cheap enough for
          benchmarking (CI enforces < 3% simulation-throughput cost). *)
  | Obs_full  (** Counters plus per-event ring buffers for Chrome traces. *)

val obs_level_of_string : string -> obs_level option
(** Accepts [off]/[counters]/[full] (also [0]/[1]/[2], [none], [trace]). *)

val obs_level_to_string : obs_level -> string

type t = {
  name : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;  (** SMT contexts sharing a core's private caches. *)
  l1_bytes : int;
  l1_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l3_bytes_per_core : int;
  l3_ways : int;
  l1_lat : int;  (** L1 hit latency (cycles). *)
  l2_lat : int;  (** L2 hit latency. *)
  l3_lat : int;  (** Shared-L3 / directory access latency, same socket. *)
  dram_lat : int;  (** Additional DRAM latency beyond the L3 access. *)
  intra_hop_lat : int;
      (** One on-chip interconnect leg (directory→owner or owner→requestor)
          within a socket. *)
  inter_socket_lat : int;  (** One crossing of the socket interconnect. *)
  hop_matrix : int array option;
      (** Per-socket-pair interconnect leg latencies, flattened
          [from * sockets + to], for NUMA topologies where sockets are not
          equidistant (the many-socket scaling machines). [None] — every
          pre-existing topology — means a uniform [inter_socket_lat] for
          any cross-socket leg, reproducing the original fabric exactly.
          Entries must be symmetric; the diagonal is ignored in favour of
          [intra_hop_lat]. *)
  llc_remote : bool;
      (** Disaggregation (§7.3): the shared cache / directory / memory
          complex sits across the fabric, so every leg between a core and
          the home complex costs [inter_socket_lat]. *)
  dram_remote : bool;
      (** Memory even further than the home complex: every DRAM access
          also pays [inter_socket_lat] each way. *)
  freq_ghz : float;
  ward_region_capacity : int;
      (** Simultaneous WARD regions the range CAM can hold (paper: 1024). *)
  reconcile_per_block : int;
      (** Cycles charged per cache block flushed by reconciliation. *)
  recon_inplace_sole : bool;
      (** §5.2's "no sharing" case: convert a sole holder's block to E/M in
          place instead of flushing it. The paper's implementation (§6.1)
          flushes {e all} WARD blocks — which is what produces the §5.3
          proactive-flush benefit — so this defaults to [false]; enabling
          it is an ablation. *)
  store_buffer_entries : int;
      (** Store-buffer slots per hardware thread; stores only stall the
          thread when the buffer is full (§7.2 analysis). *)
  sched_quantum : int;
      (** Engine scheduling quantum, in simulated cycles: a thread whose
          access hits in its private cache without needing a coherence
          transition may keep executing inline for up to this many cycles
          before yielding to the run queue. Purely a host-side performance
          knob — the engine only runs an access inline when it is provably
          the next event the scheduled path would have popped, so results
          are bit-identical for every value. [0] disables the fast path
          entirely (every access schedules through the run queue, the
          legacy behavior); see DESIGN.md §8. *)
  sim_domains : int;
      (** Host domains driving one simulation: the simulated cores are
          partitioned into this many shards, each with its own run queue
          and statistics accumulators; shards above the first get a helper
          domain that speculatively pre-executes the memory-system
          transition of its shards' pending accesses (see [sim_spec])
          while the commit lane drains events in global order. Results are
          bit-identical for every value (the commit lane preserves the
          sequential event order exactly, validating or squashing every
          speculation); see DESIGN.md §11. Clamped to the core count.
          Default [1], or [WARDEN_SIM_DOMAINS] when set. *)
  sim_quantum : int;
      (** Commit-lane quantum, in simulated cycles: the lane folds every
          shard's statistics deltas into its accumulators each time
          committed time crosses a quantum boundary. Purely a cadence
          knob — results are bit-identical for every positive value. *)
  sim_spec : bool;
      (** Speculative shard execution (DESIGN.md §11): when [sim_domains >
          1], helper domains pre-execute the private-cache transition of
          queued accesses against versioned views; the commit lane applies
          a speculation only after validating that the version it read is
          still current, re-executing inline otherwise, so results stay
          bit-identical whether speculation is on, off, right or wrong.
          Purely a host-side performance knob. Default [true], or
          [WARDEN_SIM_SPEC] when set ([0]/[off] disables). *)
  sim_spec_torture : bool;
      (** Test hook: force every speculation validation to fail, driving
          each one down the squash/re-execute path. Results must remain
          bit-identical — tests use this to pin the squash path against
          the [sim_domains = 1] golden run. Default [false]; no
          environment override. *)
  obs_level : obs_level;
      (** Coherence-event observability (DESIGN.md §12). Recording never
          feeds back into the simulation: simulated cycles, statistics and
          energy are bit-identical across all three levels. Default
          [Obs_off], or [WARDEN_OBS] when set. *)
}

val num_cores : t -> int
val num_threads : t -> int
val core_of_thread : t -> int -> int
val socket_of_core : t -> int -> int
val socket_of_thread : t -> int -> int

val home_socket : t -> int -> int
(** Home socket of a block: directory entries and L3 slices are interleaved
    across sockets by block number. *)

val set_default_sim_domains : int -> unit
(** Default [sim_domains] for configs built after this call (the
    [--sim-domains] flags route here). Initialized from
    [WARDEN_SIM_DOMAINS], else [1]. *)

val set_default_obs_level : obs_level -> unit
(** Default [obs_level] for configs built after this call (the [--obs]
    flags route here). Initialized from [WARDEN_OBS], else [Obs_off]. *)

val set_default_sim_spec : bool -> unit
(** Default [sim_spec] for configs built after this call (the [--sim-spec]
    flags route here). Initialized from [WARDEN_SIM_SPEC], else [true]. *)

val num_shards : t -> int
(** [sim_domains] clamped to the core count: every shard owns a core. *)

val shard_of_core : t -> int -> int
(** Which shard a core belongs to (contiguous partition, so same-socket
    cores tend to share a shard). *)

val shard_cores : t -> int -> int * int
(** [(lo, hi)] half-open core range of a shard; inverse of
    {!shard_of_core}. *)

val l1_sets : t -> int
val l2_sets : t -> int

val l3_sets_per_socket : t -> int
(** Sets of one socket's L3 slice ([l3_bytes_per_core * cores_per_socket]
    capacity). *)

val single_socket : ?threads_per_core:int -> unit -> t
(** 12 cores, one socket (§7.2 "Single socket"). *)

val dual_socket : ?threads_per_core:int -> unit -> t
(** 24 cores across two sockets (§7.2 "Dual socket"). *)

val many_socket : ?cores_per_socket:int -> sockets:int -> unit -> t
(** §7.3 "Many Sockets": same per-socket structure, more sockets. The
    default 12 cores per socket matches Table 2; pass [cores_per_socket]
    for the larger scaling geometries. *)

val hop_lat : t -> from_socket:int -> to_socket:int -> int
(** One interconnect leg between two sockets: [intra_hop_lat] on the
    diagonal, the {!field-hop_matrix} entry across sockets, or the uniform
    [inter_socket_lat] when no matrix is configured. *)

val numa_mesh : ?cores_per_socket:int -> sockets:int -> unit -> t
(** Many-socket NUMA machine for the 64→512-core scaling study (DiSquawk's
    "512 cores, 512 memories" regime): sockets in a near-square 2D mesh,
    adjacent sockets one [inter_socket_lat] apart plus one router step of
    [intra_hop_lat] per extra Manhattan hop, recorded in
    {!field-hop_matrix}. Default 16 cores per socket, so
    [numa_mesh ~sockets:32 ()] is the 512-core machine. Sockets and
    cores-per-socket are both capped at 62 (the directory's two-level
    sharer words, DESIGN.md §14). *)

val disaggregated : unit -> t
(** §7.3 "Disaggregated": two nodes, 1 µs remote access
    (= 3300 cycles at 3.3 GHz) on every inter-node leg and on memory. *)

val with_cores : t -> int -> t
(** Restrict to the first [n] hardware threads (scaling studies). Raises if
    [n] exceeds the configured thread count or is not positive. *)

val pp : Format.formatter -> t -> unit
(** Render the configuration as a Table-2-style listing. *)
