type costs = {
  core_cycle_pj : float;
  l1_pj : float;
  l2_pj : float;
  l3_pj : float;
  dir_pj : float;
  dram_pj : float;
  msg_intra_pj : float;
  msg_inter_pj : float;
  cam_pj : float;
  bus_cycle_pj : float;
}

let default_costs =
  {
    core_cycle_pj = 900.0;
    l1_pj = 15.0;
    l2_pj = 45.0;
    l3_pj = 240.0;
    dir_pj = 60.0;
    dram_pj = 15_000.0;
    msg_intra_pj = 300.0;
    msg_inter_pj = 6_000.0;
    cam_pj = 8.0;
    bus_cycle_pj = 120.0;
  }

(* Accumulators live in a float array: OCaml stores float arrays flat, so
   a deposit updates in place instead of boxing a fresh float per event
   (mixed records box their float fields on every assignment, and deposits
   happen on every simulated memory access). *)
let core_i = 0
let cache_i = 1
let dram_i = 2
let network_i = 3

type t = { c : costs; acc : float array }

let create ?(costs = default_costs) () = { c = costs; acc = Array.make 4 0. }
let costs t = t.c
let deposit t i x = Array.unsafe_set t.acc i (Array.unsafe_get t.acc i +. x)

let core_cycles t ~cores ~cycles =
  deposit t core_i (float_of_int cores *. float_of_int cycles *. t.c.core_cycle_pj)

let l1_access t = deposit t cache_i t.c.l1_pj
let l2_access t = deposit t cache_i t.c.l2_pj

(* Bulk deposits for deferred per-shard accounting: n events paid at once.
   Every default cost is an integer-valued float, so count * cost is
   bit-identical to n repeated additions (integer-valued partial sums are
   exact well past 2^53 pJ); the sharded engine relies on this to merge
   per-shard counters without perturbing energy totals. *)
let l1_accesses t n = deposit t cache_i (float_of_int n *. t.c.l1_pj)
let l2_accesses t n = deposit t cache_i (float_of_int n *. t.c.l2_pj)
let l3_access t = deposit t cache_i t.c.l3_pj
let dir_access t = deposit t cache_i t.c.dir_pj
let dram_access t = deposit t dram_i t.c.dram_pj

let message t ~inter_socket ~data =
  let base = if inter_socket then t.c.msg_inter_pj else t.c.msg_intra_pj in
  deposit t network_i (if data then 5. *. base else base)

let cam_lookup t = deposit t cache_i t.c.cam_pj

(* A shared snooping bus is interconnect: occupancy cycles (arbitration
   plus transfer) deposit into the network bucket, exactly as hop-counted
   messages do on the switched fabrics. Integer-valued like every other
   cost, so bulk deposits fold bit-identically. *)
let bus_cycles t n = deposit t network_i (float_of_int n *. t.c.bus_cycle_pj)

(* Snapshot the four accumulators as raw float bits (exact round trip). *)
let save t w = Warden_util.Bin.w_float_array w t.acc

let restore t r =
  let acc = Warden_util.Bin.r_float_array r in
  if Array.length acc <> 4 then Warden_util.Bin.corrupt "Energy: bad snapshot";
  Array.blit acc 0 t.acc 0 4

let core_pj t = t.acc.(core_i)
let cache_pj t = t.acc.(cache_i)
let dram_pj t = t.acc.(dram_i)
let network_pj t = t.acc.(network_i)
let processor_pj t = core_pj t +. cache_pj t +. dram_pj t
let total_pj t = processor_pj t +. network_pj t
