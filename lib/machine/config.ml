open Warden_mem

type obs_level = Obs_off | Obs_counters | Obs_full

let obs_level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" | "none" -> Some Obs_off
  | "counters" | "1" -> Some Obs_counters
  | "full" | "trace" | "2" -> Some Obs_full
  | _ -> None

let obs_level_to_string = function
  | Obs_off -> "off"
  | Obs_counters -> "counters"
  | Obs_full -> "full"

type t = {
  name : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  l1_bytes : int;
  l1_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l3_bytes_per_core : int;
  l3_ways : int;
  l1_lat : int;
  l2_lat : int;
  l3_lat : int;
  dram_lat : int;
  intra_hop_lat : int;
  inter_socket_lat : int;
  hop_matrix : int array option;
  llc_remote : bool;
  dram_remote : bool;
  freq_ghz : float;
  ward_region_capacity : int;
  reconcile_per_block : int;
  recon_inplace_sole : bool;
  store_buffer_entries : int;
  sched_quantum : int;
  sim_domains : int;
  sim_quantum : int;
  sim_spec : bool;
  sim_spec_torture : bool;
  obs_level : obs_level;
}

(* Default shard count for newly built configs. Initialized from
   WARDEN_SIM_DOMAINS so a whole test or bench run can be switched into
   parallel mode from the environment (the CI 2-domain job relies on
   this); [set_default_sim_domains] backs the --sim-domains flags. *)
let default_sim_domains =
  ref
    (match Sys.getenv_opt "WARDEN_SIM_DOMAINS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> invalid_arg "WARDEN_SIM_DOMAINS: expected a positive integer"))

let set_default_sim_domains n =
  if n < 1 then invalid_arg "Config.set_default_sim_domains: nonpositive";
  default_sim_domains := n

(* Speculative shard execution (DESIGN.md §11). On by default — it only
   engages when [num_shards > 1] — with WARDEN_SIM_SPEC=0 as the kill
   switch for A/B comparisons; [set_default_sim_spec] backs --sim-spec. *)
let default_sim_spec =
  ref
    (match Sys.getenv_opt "WARDEN_SIM_SPEC" with
    | None -> true
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "0" | "off" | "false" | "no" -> false
        | "1" | "on" | "true" | "yes" -> true
        | _ -> invalid_arg "WARDEN_SIM_SPEC: expected on/1 or off/0"))

let set_default_sim_spec b = default_sim_spec := b

(* Same pattern for observability: WARDEN_OBS switches a whole run (the
   CI overhead job sets it), --obs flags route to [set_default_obs_level]. *)
let default_obs_level =
  ref
    (match Sys.getenv_opt "WARDEN_OBS" with
    | None -> Obs_off
    | Some s -> (
        match obs_level_of_string s with
        | Some l -> l
        | None -> invalid_arg "WARDEN_OBS: expected off, counters or full"))

let set_default_obs_level l = default_obs_level := l

let num_cores t = t.sockets * t.cores_per_socket
let num_threads t = num_cores t * t.threads_per_core
(* Called on every memory access; dodge the hardware divide for the
   common one-thread-per-core machines. *)
let core_of_thread t tid =
  if t.threads_per_core = 1 then tid else tid / t.threads_per_core
let socket_of_core t core = core / t.cores_per_socket
let socket_of_thread t tid = socket_of_core t (core_of_thread t tid)
let home_socket t blk = blk mod t.sockets

(* Shards partition the cores into [sim_domains] contiguous groups (so
   same-socket cores tend to share a shard). The count is clamped to the
   core count, never rounded up: every shard owns at least one core. *)
let num_shards t = min (max 1 t.sim_domains) (num_cores t)

let shard_of_core t core = core * num_shards t / num_cores t

let shard_cores t shard =
  let d = num_shards t and n = num_cores t in
  let lo = (shard * n + d - 1) / d in
  let hi = ((shard + 1) * n + d - 1) / d in
  (lo, hi)

let sets_of ~bytes ~ways =
  let lines = bytes / Addr.block_size in
  let sets = lines / ways in
  (* Round down to a power of two so set indexing stays a mask. *)
  let rec pow2 p = if 2 * p <= sets then pow2 (2 * p) else p in
  if sets <= 0 then 1 else pow2 1

let l1_sets t = sets_of ~bytes:t.l1_bytes ~ways:t.l1_ways
let l2_sets t = sets_of ~bytes:t.l2_bytes ~ways:t.l2_ways

let l3_sets_per_socket t =
  sets_of ~bytes:(t.l3_bytes_per_core * t.cores_per_socket) ~ways:t.l3_ways

(* Table 2 parameters; interconnect legs calibrated against Table 1. *)
let base ~name ~sockets ~threads_per_core =
  {
    name;
    sockets;
    cores_per_socket = 12;
    threads_per_core;
    l1_bytes = 32 * 1024;
    l1_ways = 8;
    l2_bytes = 256 * 1024;
    l2_ways = 8;
    l3_bytes_per_core = 2_560 * 1024;
    l3_ways = 20;
    l1_lat = 6;
    l2_lat = 16;
    l3_lat = 71;
    dram_lat = 140;
    intra_hop_lat = 60;
    inter_socket_lat = 230;
    hop_matrix = None;
    llc_remote = false;
    dram_remote = false;
    freq_ghz = 3.3;
    ward_region_capacity = 1024;
    reconcile_per_block = 6;
    recon_inplace_sole = false;
    store_buffer_entries = 56;
    sched_quantum = 4096;
    sim_domains = !default_sim_domains;
    sim_quantum = 8192;
    sim_spec = !default_sim_spec;
    sim_spec_torture = false;
    obs_level = !default_obs_level;
  }

let single_socket ?(threads_per_core = 1) () =
  base ~name:"single-socket" ~sockets:1 ~threads_per_core

let dual_socket ?(threads_per_core = 1) () =
  base ~name:"dual-socket" ~sockets:2 ~threads_per_core

let many_socket ?cores_per_socket ~sockets () =
  let t = base ~name:(Printf.sprintf "%d-socket" sockets) ~sockets ~threads_per_core:1 in
  match cores_per_socket with
  | None -> t
  | Some per ->
      if per <= 0 then invalid_arg "Config.many_socket: nonpositive cores";
      {
        t with
        cores_per_socket = per;
        name = Printf.sprintf "%d-socket-%dc" sockets per;
      }

(* One cross-socket interconnect leg between two sockets of the hop
   matrix, falling back to the uniform [inter_socket_lat] when no matrix
   is configured (every pre-existing topology — results there are
   bit-identical by construction). The diagonal is the on-chip leg. *)
let hop_lat t ~from_socket ~to_socket =
  if from_socket = to_socket then t.intra_hop_lat
  else
    match t.hop_matrix with
    | None -> t.inter_socket_lat
    | Some m -> m.((from_socket * t.sockets) + to_socket)

(* Many-socket NUMA machine for the 64→512-core scaling study: sockets
   arranged in a 2D mesh (rows x cols as square as the count allows), one
   [inter_socket_lat] for adjacent sockets plus one [intra_hop_lat]-sized
   router step per additional Manhattan hop. Symmetric by construction;
   [inter_socket_lat] remains the 1-hop base, so at 2 sockets the matrix
   degenerates to the uniform dual-socket fabric. *)
let numa_mesh ?(cores_per_socket = 16) ~sockets () =
  if sockets < 1 || sockets > 62 then
    invalid_arg "Config.numa_mesh: sockets must be in 1..62";
  if cores_per_socket <= 0 || cores_per_socket > 62 then
    invalid_arg "Config.numa_mesh: cores_per_socket must be in 1..62";
  let rec divisor r = if sockets mod r = 0 then r else divisor (r - 1) in
  let rows = divisor (max 1 (int_of_float (sqrt (float_of_int sockets)))) in
  let cols = sockets / rows in
  let t =
    base
      ~name:(Printf.sprintf "%d-socket-mesh-%dc" sockets cores_per_socket)
      ~sockets ~threads_per_core:1
  in
  let m = Array.make (sockets * sockets) t.intra_hop_lat in
  for f = 0 to sockets - 1 do
    for g = 0 to sockets - 1 do
      if f <> g then begin
        let dist =
          abs ((f / cols) - (g / cols)) + abs ((f mod cols) - (g mod cols))
        in
        m.((f * sockets) + g) <-
          t.inter_socket_lat + ((dist - 1) * t.intra_hop_lat)
      end
    done
  done;
  { t with cores_per_socket; hop_matrix = Some m }

let disaggregated () =
  (* 1 us remote access at 3.3 GHz = 3300 cycles per fabric crossing. The
     processors are disaggregated from their shared memory hierarchy: the
     shared cache, directory and memory all sit across the fabric, so
     every leg to or from the home complex is a crossing. *)
  {
    (base ~name:"disaggregated" ~sockets:2 ~threads_per_core:1) with
    inter_socket_lat = 3300;
    llc_remote = true;
    dram_remote = false;
  }

let with_cores t n =
  if n <= 0 then invalid_arg "Config.with_cores: nonpositive";
  if n mod t.sockets <> 0 then invalid_arg "Config.with_cores: not divisible";
  let per = n / t.sockets in
  if per > t.cores_per_socket then invalid_arg "Config.with_cores: too many";
  { t with cores_per_socket = per; name = Printf.sprintf "%s/%dc" t.name n }

let pp fmt t =
  let kb n = Printf.sprintf "%d KB" (n / 1024) in
  Format.fprintf fmt
    "@[<v>%s: %d socket(s) x %d cores x %d thread(s)@,\
     L1 %s/%d-way  L2 %s/%d-way  L3 %s-per-core/%d-way@,\
     latencies L1/L2/L3 %d-%d-%d cycles, DRAM +%d, hop %d, socket link %d%s%s@,\
     %.1f GHz, %d WARD regions, reconcile %d cyc/block, store buffer %d@,\
     scheduler quantum %d, %d sim domain(s), commit quantum %d, spec %s, obs %s@]"
    t.name t.sockets t.cores_per_socket t.threads_per_core (kb t.l1_bytes)
    t.l1_ways (kb t.l2_bytes) t.l2_ways (kb t.l3_bytes_per_core) t.l3_ways
    t.l1_lat t.l2_lat t.l3_lat t.dram_lat t.intra_hop_lat t.inter_socket_lat
    (match t.hop_matrix with
    | None -> ""
    | Some m ->
        Printf.sprintf " (NUMA hop matrix, worst leg %d)"
          (Array.fold_left max 0 m))
    (if t.dram_remote then " (remote memory)" else "")
    t.freq_ghz t.ward_region_capacity t.reconcile_per_block
    t.store_buffer_entries t.sched_quantum t.sim_domains t.sim_quantum
    (if t.sim_spec then "on" else "off")
    (obs_level_to_string t.obs_level)
