open Warden_util
open Warden_machine
module Engine = Warden_sim.Engine
module Memsys = Warden_sim.Memsys
module Protocol = Warden_proto.Protocol

let magic = "WSNP"
let version = 1

(* The fingerprint is every configuration value the simulated results
   depend on, written as actual values (not a hash) so a mismatch names
   the offending field. Host-parallelism and observability knobs —
   sim_domains, sim_spec, sim_spec_torture, sched_quantum, sim_quantum,
   obs_level — are deliberately excluded: results are bit-identical
   across them by the engine's determinism invariant, so a snapshot taken
   at D=1 restores into a D=4 run and vice versa. *)
let fingerprint_fields (cfg : Config.t) ~proto_name =
  [
    ("protocol", `S proto_name);
    ("sockets", `I cfg.Config.sockets);
    ("cores_per_socket", `I cfg.Config.cores_per_socket);
    ("threads_per_core", `I cfg.Config.threads_per_core);
    ("l1_bytes", `I cfg.Config.l1_bytes);
    ("l1_ways", `I cfg.Config.l1_ways);
    ("l2_bytes", `I cfg.Config.l2_bytes);
    ("l2_ways", `I cfg.Config.l2_ways);
    ("l3_bytes_per_core", `I cfg.Config.l3_bytes_per_core);
    ("l3_ways", `I cfg.Config.l3_ways);
    ("l1_lat", `I cfg.Config.l1_lat);
    ("l2_lat", `I cfg.Config.l2_lat);
    ("l3_lat", `I cfg.Config.l3_lat);
    ("dram_lat", `I cfg.Config.dram_lat);
    ("intra_hop_lat", `I cfg.Config.intra_hop_lat);
    ("inter_socket_lat", `I cfg.Config.inter_socket_lat);
    ( "hop_matrix",
      `A (match cfg.Config.hop_matrix with None -> [||] | Some m -> m) );
    ("llc_remote", `B cfg.Config.llc_remote);
    ("dram_remote", `B cfg.Config.dram_remote);
    ("freq_ghz", `F cfg.Config.freq_ghz);
    ("ward_region_capacity", `I cfg.Config.ward_region_capacity);
    ("reconcile_per_block", `I cfg.Config.reconcile_per_block);
    ("recon_inplace_sole", `B cfg.Config.recon_inplace_sole);
    ("store_buffer_entries", `I cfg.Config.store_buffer_entries);
    ("sector_bytes", `I (Warden_cache.Linedata.sector_bytes ()));
  ]

let w_field w = function
  | `S s -> Bin.w_string w s
  | `I i -> Bin.w_int w i
  | `B b -> Bin.w_bool w b
  | `F f -> Bin.w_float w f
  | `A a -> Bin.w_int_array w a

let field_to_string = function
  | `S s -> s
  | `I i -> string_of_int i
  | `B b -> string_of_bool b
  | `F f -> string_of_float f
  | `A a ->
      "["
      ^ String.concat "," (Array.to_list (Array.map string_of_int a))
      ^ "]"

let r_field r = function
  | `S _ -> `S (Bin.r_string r)
  | `I _ -> `I (Bin.r_int r)
  | `B _ -> `B (Bin.r_bool r)
  | `F _ -> `F (Bin.r_float r)
  | `A _ -> `A (Bin.r_int_array r)

let write_fingerprint w cfg ~proto_name =
  let fields = fingerprint_fields cfg ~proto_name in
  Bin.w_int w (List.length fields);
  List.iter (fun (name, v) -> Bin.w_string w name; w_field w v) fields

let check_fingerprint r cfg ~proto_name =
  let fields = fingerprint_fields cfg ~proto_name in
  let n = Bin.r_int r in
  if n <> List.length fields then
    Bin.corrupt
      (Printf.sprintf "Snap: %d fingerprint fields, expected %d" n
         (List.length fields));
  List.iter
    (fun (name, expect) ->
      let got_name = Bin.r_string r in
      if got_name <> name then
        Bin.corrupt
          (Printf.sprintf "Snap: fingerprint field %S, expected %S" got_name
             name);
      let got = r_field r expect in
      if got <> expect then
        Bin.corrupt
          (Printf.sprintf
             "Snap: %s mismatch: snapshot has %s, this machine has %s" name
             (field_to_string got) (field_to_string expect)))
    fields

let proto_name eng = Protocol.name (Memsys.protocol (Engine.memsys eng))

let to_bytes eng =
  let w = Bin.writer ~capacity:(1 lsl 16) () in
  write_fingerprint w (Engine.config eng) ~proto_name:(proto_name eng);
  Engine.snapshot eng w;
  let body = Bin.contents w in
  let out = Bin.writer ~capacity:(Bytes.length body + 64) () in
  Bin.w_string out magic;
  Bin.w_int out version;
  Bin.w_bytes out body;
  Bin.w_int out (Bin.checksum body ~pos:0 ~len:(Bytes.length body));
  Bin.contents out

(* Validate the envelope (magic, version, checksum) and return a reader
   positioned at the fingerprint. *)
let open_body bytes =
  let r = Bin.reader bytes in
  let m = try Bin.r_string r with Bin.Corrupt _ -> "" in
  if m <> magic then Bin.corrupt "Snap: not a warden snapshot (bad magic)";
  let v = Bin.r_int r in
  if v <> version then
    Bin.corrupt
      (Printf.sprintf "Snap: snapshot version %d, this build reads %d" v
         version);
  let body = Bin.r_bytes r in
  let ck = Bin.r_int r in
  if ck <> Bin.checksum body ~pos:0 ~len:(Bytes.length body) then
    Bin.corrupt "Snap: checksum mismatch (truncated or corrupt snapshot)";
  Bin.reader body

let restore eng bytes =
  let r = open_body bytes in
  check_fingerprint r (Engine.config eng) ~proto_name:(proto_name eng);
  Engine.restore eng r

let describe bytes =
  let r = open_body bytes in
  let n = Bin.r_int r in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "warden snapshot v%d, %d bytes\n" version
       (Bytes.length bytes));
  (* Render the stored fingerprint without needing a matching machine:
     field kinds are recovered from a reference default config. *)
  let reference =
    fingerprint_fields (Config.single_socket ()) ~proto_name:""
  in
  if n = List.length reference then
    List.iter
      (fun (_, kind) ->
        let name = Bin.r_string r in
        let v = r_field r kind in
        Buffer.add_string b
          (Printf.sprintf "  %-22s %s\n" name (field_to_string v)))
      reference
  else Buffer.add_string b "  (unknown fingerprint layout)\n";
  Buffer.contents b

let save_file eng path =
  let bytes = to_bytes eng in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_bytes oc bytes)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      let bytes = Bytes.create len in
      really_input ic bytes 0 len;
      bytes)

let load_file eng path = restore eng (read_file path)
