(** Snapshot/restore of the full simulator state (DESIGN.md §15).

    A snapshot is the engine's flat serialized state
    ({!Warden_sim.Engine.snapshot}) wrapped in a versioned envelope: a
    magic tag, a format version, a configuration fingerprint (every
    config value the simulated results depend on, stored as actual
    values so mismatches name the offending field) and a checksum over
    the body.

    Snapshots are only legal at quiescent points — between
    {!Warden_sim.Engine.run} phases — because effects-based
    continuations cannot serialize; that boundary is also the only time
    the simulated state is entirely flat structures.

    Host-parallelism and observability knobs ([sim_domains], [sim_spec],
    [sim_spec_torture], [sched_quantum], [sim_quantum], [obs_level]) are
    excluded from the fingerprint: the engine's determinism invariant
    makes results bit-identical across them, so one snapshot serves any
    of those settings. Restore targets a {e freshly created} engine of
    matching geometry and protocol (directory and page tables have no
    deletion, so restoring into a used engine is unsupported). *)

val to_bytes : Warden_sim.Engine.t -> Bytes.t
(** Serialize at a quiescent point. Raises [Invalid_argument] if a run
    is in progress. *)

val restore : Warden_sim.Engine.t -> Bytes.t -> unit
(** Restore into a freshly created engine of identical configuration and
    protocol. Subsequent runs are bit-identical to running them on the
    snapshotted engine. Raises [Warden_util.Bin.Corrupt] on bad magic,
    version or checksum, or any fingerprint mismatch. *)

val describe : Bytes.t -> string
(** Render the envelope and stored fingerprint (validates the checksum
    first). *)

val save_file : Warden_sim.Engine.t -> string -> unit
val load_file : Warden_sim.Engine.t -> string -> unit

val read_file : string -> Bytes.t
(** Raw snapshot bytes from disk (for {!describe} or {!restore}). *)
