(* 64 KiB pages keep the hashtable small while avoiding huge allocations for
   sparse address ranges. *)
let page_bits = 16
let page_size = 1 lsl page_bits

let no_page = Bytes.create 0

type t = {
  mutable pages : Bytes.t Warden_util.Itab.t;
  written_blocks : Warden_util.Bitset.t;
  (* One-entry cache of the last page touched: simulated accesses are
     heavily clustered (stacks, sequential arrays), so most lookups skip
     even the single Itab probe. *)
  mutable last_id : int;
  mutable last_page : Bytes.t;
}

let create () =
  {
    pages = Warden_util.Itab.create ~dummy:no_page ();
    written_blocks = Warden_util.Bitset.create ();
    last_id = -1;
    last_page = no_page;
  }

(* Hot path (once per simulated store): no list, and accesses almost never
   straddle a block boundary. *)
let mark_written t addr len =
  let first = Addr.block_of addr in
  let last = Addr.block_of (addr + len - 1) in
  Warden_util.Bitset.add t.written_blocks first;
  for blk = first + 1 to last do
    Warden_util.Bitset.add t.written_blocks blk
  done

let materialized t blk = Warden_util.Bitset.mem t.written_blocks blk

let new_page _ = Bytes.make page_size '\000'

let page t addr =
  let id = addr lsr page_bits in
  if id = t.last_id then t.last_page
  else begin
    let p = Warden_util.Itab.find_or_add t.pages id ~make:new_page in
    (* Page before id: a cross-domain reader that checks [last_id] first
       can then never pick up the previous page's bytes for the new id.
       Only the owning (commit-lane) domain allocates pages; helper
       domains probe through [prefetch] below, which never mutates. *)
    t.last_page <- p;
    t.last_id <- id;
    p
  end

(* Warming probe for the sharded engine's speculative helper domains
   (Memsys.spec_read's miss path): pull the bytes backing [addr] toward
   the calling core's host cache without touching the page table or the
   one-entry cache (both owned by the commit lane). Returns 0 for
   unmaterialized pages; the result is advisory only. *)
let prefetch t addr =
  let id = addr lsr page_bits in
  let p = Warden_util.Itab.find_or t.pages id ~default:no_page in
  if p == no_page then 0
  else Char.code (Bytes.unsafe_get p (addr land (page_size - 1)))

let check_access addr size =
  (match size with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg "Store: size must be 1, 2, 4 or 8");
  if addr land (size - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Store: unaligned %d-byte access at 0x%x" size addr)

let load t addr ~size =
  check_access addr size;
  let p = page t addr in
  let off = addr land (page_size - 1) in
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get p off))
  | 2 -> Int64.of_int (Bytes.get_uint16_le p off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFFFFFFL
  | _ -> Bytes.get_int64_le p off

let store t addr ~size v =
  check_access addr size;
  mark_written t addr size;
  let p = page t addr in
  let off = addr land (page_size - 1) in
  match size with
  | 1 -> Bytes.set p off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le p off (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le p off v

let read_block t blk =
  let base = Addr.base_of_block blk in
  let p = page t base in
  let off = base land (page_size - 1) in
  (* Blocks never straddle pages: page size is a multiple of block size. *)
  Bytes.sub p off Addr.block_size

let write_block_masked t blk data ~mask =
  if mask <> 0L then Warden_util.Bitset.add t.written_blocks blk;
  let base = Addr.base_of_block blk in
  let p = page t base in
  let off = base land (page_size - 1) in
  for i = 0 to Addr.block_size - 1 do
    if Int64.logand (Int64.shift_right_logical mask i) 1L = 1L then
      Bytes.set p (off + i) (Bytes.get data i)
  done

let footprint_bytes t = Warden_util.Itab.length t.pages * page_size

(* Snapshot: the page table (sorted by page id — canonical bytes) and the
   written-block set. The one-entry page cache is host-side and resets. *)
let save t w =
  Warden_util.Itab.save t.pages w ~elt:Warden_util.Bin.w_bytes;
  Warden_util.Bitset.save t.written_blocks w

let restore t r =
  t.pages <-
    Warden_util.Itab.load r ~dummy:no_page ~elt:(fun r ->
        let p = Warden_util.Bin.r_bytes r in
        if Bytes.length p <> page_size then
          Warden_util.Bin.corrupt "Store: bad page size";
        p);
  let written = Warden_util.Bitset.load r in
  Warden_util.Bitset.clear t.written_blocks;
  Warden_util.Bitset.iter written (Warden_util.Bitset.add t.written_blocks);
  t.last_id <- -1;
  t.last_page <- no_page
