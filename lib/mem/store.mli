(** Backing store for the simulated physical address space.

    This is the "DRAM" of the simulation: a sparse, paged byte store.
    Caches fill from and write back to it; the fork-join runtime's bump
    allocator hands out fresh addresses within it.

    Values are little-endian. Accesses of 1, 2, 4 or 8 bytes must not
    straddle an 8-byte boundary (the runtime's allocator guarantees natural
    alignment, and the simulator rejects anything else before it gets
    here). *)

type t

val create : unit -> t

val load : t -> Addr.t -> size:int -> int64
(** [load t addr ~size] reads [size] ∈ {1,2,4,8} bytes, zero-extended.
    Unwritten memory reads as zero. *)

val store : t -> Addr.t -> size:int -> int64 -> unit
(** [store t addr ~size v] writes the low [size] bytes of [v]. *)

val read_block : t -> int -> Bytes.t
(** [read_block t blk] copies the 64 bytes of block [blk] into a fresh
    buffer. *)

val write_block_masked : t -> int -> Bytes.t -> mask:int64 -> unit
(** [write_block_masked t blk data ~mask] writes back byte [i] of [data]
    into block [blk] for every bit [i] set in [mask]. This is how dirty
    sectors reach memory. *)

val materialized : t -> int -> bool
(** Has cache block [blk] ever been written in memory (by a program
    writeback or host initialization)? Blocks that never were are known
    all-zero: the memory controller can zero-fill them without a DRAM
    access, the way an OS zero-fills fresh pages. *)

val footprint_bytes : t -> int
(** Number of bytes of simulated memory materialized so far. *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot the page table (sorted by page id) and the written-block
    set; the one-entry page cache is host-side and resets on restore. *)

val restore : t -> Warden_util.Bin.r -> unit
(** Replace this store's contents with {!save} output. *)

val prefetch : t -> Addr.t -> int
(** Hint probe for the sharded engine's helper domains: pull the byte
    backing [addr] toward the calling core's host cache without mutating
    the page table or the one-entry page cache (both owned by the commit
    lane). Safe to call from another domain while the owner runs; the
    result (0 for unmaterialized pages) is advisory only. *)
