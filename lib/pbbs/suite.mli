(** Registry of the 14 PBBS-like benchmarks the paper evaluates (§7.1). *)

val all : Spec.t list
(** In the paper's figure order: dedup, dmm, fib, grep, make_array, msort,
    nn, nqueens, palindrome, primes, quickhull, ray, suffix_array,
    tokens. *)

val find : string -> Spec.t option

val names : unit -> string list

val matching : string -> string list
(** Benchmark names containing the given substring, in suite order (the
    bench harness's [--filter]). The empty string matches everything. *)

val disaggregated_subset : string list
(** The four benchmarks the paper carries into the disaggregated study
    (Fig. 12): dmm, grep, nn, palindrome. *)
