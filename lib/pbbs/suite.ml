let all =
  [
    Bm_dedup.spec;
    Bm_dmm.spec;
    Bm_fib.spec;
    Bm_grep.spec;
    Bm_make_array.spec;
    Bm_msort.spec;
    Bm_nn.spec;
    Bm_nqueens.spec;
    Bm_palindrome.spec;
    Bm_primes.spec;
    Bm_quickhull.spec;
    Bm_ray.spec;
    Bm_suffix_array.spec;
    Bm_tokens.spec;
  ]

let find name = List.find_opt (fun s -> s.Spec.name = name) all

let names () = List.map (fun s -> s.Spec.name) all

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let matching sub =
  List.filter_map
    (fun s -> if contains ~sub s.Spec.name then Some s.Spec.name else None)
    all

let disaggregated_subset = [ "dmm"; "grep"; "nn"; "palindrome" ]
