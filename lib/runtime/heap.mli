(** The heap hierarchy (§2.1, Fig. 2): a dynamic tree of heaps mirroring
    the spawn tree, each a list of pages filled by bump allocation.

    Fresh pages allocated by a leaf task are announced to the hardware as
    WARD regions; a heap's marked pages are unmarked (reconciled) at forks,
    and a child's remaining marked pages are unmarked when the child's heap
    merges into its parent at a join (see DESIGN.md on join-time
    reconciliation). *)

type page = {
  base : int;
  bytes : int;
  mutable ward : bool;  (** Currently registered as a WARD region. *)
  mutable owner : t;  (** Heap the page currently belongs to. *)
}

and t = {
  heap_id : int;
  parent : t option;
  depth : int;
  mutable pages : page list;
  mutable marked : page list;  (** Subset of [pages] currently WARD. *)
  mutable cur : page option;  (** Bump target. *)
  mutable cur_off : int;
}

val fresh :
  Warden_sim.Memsys.t -> Rtparams.t -> parent:t option -> t
(** A new empty heap (pages materialize on first allocation). *)

val alloc : Warden_sim.Memsys.t -> Rtparams.t -> t -> bytes:int -> int
(** Bump-allocate naturally-aligned zeroed space in the heap, taking a new
    page (and marking it WARD when the policy says so) as needed. Charges
    allocation instructions through the engine; must be called inside a
    run. Allocations larger than the page size get a dedicated page. *)

val unmark_all : t -> unit
(** Remove every WARD region of this heap (performed at forks and when the
    heap merges into its parent); charges reconciliation latency. *)

val merge_into : child:t -> parent:t -> unit
(** Move the child's pages into the parent (join). Pages still marked WARD
    stay marked and join the parent's marked set (the last-finisher
    optimization: the parent resumes on the same hardware thread, so the
    WARD property is preserved; see DESIGN.md). *)

val owner_of : int -> t option
(** Heap currently owning the page containing this address, if it was heap
    memory (global lookup used by the disentanglement oracle). *)

val is_ancestor_or_self : t -> of_:t -> bool
(** [is_ancestor_or_self h ~of_:leaf]: is [h] on [leaf]'s root path? *)

val reset_registry : unit -> unit
(** Clear this domain's page registry (between runs). The registry, heap id
    counter and region hook are all domain-local, so simulations on
    parallel harness domains do not interfere. *)

val set_region_hook :
  ([ `Add | `Remove ] -> lo:int -> hi:int -> unit) option -> unit
(** Install (or with [None] remove) this domain's observer of the runtime's
    region marking/unmarking (fires even when the hardware rejects a mark);
    used by the trace oracles. *)
