open Warden_util
open Warden_sim
module Ops = Engine.Ops

type rstats = {
  mutable forks : int;
  mutable tasks : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable allocs : int;
  mutable heap_pages : int;
}

type tcb = { task_id : int; heap : Heap.t }

type task = { exec : unit -> unit }

type sched = {
  eng : Engine.t;
  ms : Memsys.t;
  params : Rtparams.t;
  nworkers : int;
  deques : task Deque.t array;
  lock_addr : int array; (* simulated per-deque lock word *)
  rngs : Splitmix.t array;
  ctx : tcb option array;
  stats : rstats;
  mutable scratch : int; (* bump pointer for never-marked handoff space *)
  mutable scratch_end : int;
  mutable next_task : int;
  mutable finished : bool;
}

(* Both the active scheduler and the trace hook are domain-local, so the
   harness can run independent simulations on parallel domains. *)
let cur_sched : sched option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let sched () =
  match Domain.DLS.get cur_sched with
  | Some s -> s
  | None -> failwith "Par: no active run"

type access_kind = R | W | RMW

let access_hook :
    (access_kind -> addr:int -> size:int -> value:int64 -> unit) option
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_access_hook f = Domain.DLS.set access_hook (Some f)
let clear_access_hook () = Domain.DLS.set access_hook None

let hook kind ~addr ~size ~value =
  match Domain.DLS.get access_hook with
  | None -> ()
  | Some f -> f kind ~addr ~size ~value

(* --- user-facing memory operations ------------------------------------ *)

let read addr ~size =
  hook R ~addr ~size ~value:0L;
  Ops.load addr ~size

let write addr ~size v =
  hook W ~addr ~size ~value:v;
  Ops.store addr ~size v

let cas addr ~size ~expected ~desired =
  hook RMW ~addr ~size ~value:desired;
  Ops.cas addr ~size ~expected ~desired

let fetch_add addr ~size delta =
  hook RMW ~addr ~size ~value:0L;
  Ops.fetch_add addr ~size delta

let tick = Ops.tick

let current_tcb () =
  match Domain.DLS.get cur_sched with
  | None -> None
  | Some s -> s.ctx.(Ops.tid ())

let current_heap () = Option.map (fun t -> t.heap) (current_tcb ())

let memsys () = (sched ()).ms

let alloc ~bytes =
  let s = sched () in
  match s.ctx.(Ops.tid ()) with
  | None -> failwith "Par.alloc: no current task"
  | Some tcb ->
      s.stats.allocs <- s.stats.allocs + 1;
      Heap.alloc s.ms s.params tcb.heap ~bytes

(* Never-marked allocation for fork metadata when the ablation disables
   heap-resident handoff. *)
let scratch_alloc s bytes =
  let size = (bytes + 63) land lnot 63 in
  if s.scratch + size > s.scratch_end then begin
    s.scratch <- Memsys.alloc s.ms ~bytes:65536 ~align:4096;
    s.scratch_end <- s.scratch + 65536
  end;
  let a = s.scratch in
  s.scratch <- s.scratch + size;
  a

(* --- fork-join machinery ----------------------------------------------- *)

type _ Effect.t += Par2 : (unit -> 'a) * (unit -> 'b) -> ('a * 'b) Effect.t

let par2 fa fb = Effect.perform (Par2 (fa, fb))

let new_task_id s =
  s.next_task <- s.next_task + 1;
  s.next_task

(* Run [f] in a fresh task context (fresh heap child of [parent_heap]);
   returns through [finish]. The descriptor reads model the child fetching
   its closure from the forking task's memory. *)
let child_body s ~parent_heap ~desc ~join_ctr ~slot ~finish f () =
  (* Acquire: the task may have been stolen, so everything the forking
     thread published (descriptor, heap data) must be re-observed. Under
     eagerly-coherent protocols this is a free no-op. *)
  Ops.acquire ();
  let tid = Ops.tid () in
  let heap = Heap.fresh s.ms s.params ~parent:(Some parent_heap) in
  let tcb = { task_id = new_task_id s; heap } in
  s.stats.tasks <- s.stats.tasks + 1;
  s.ctx.(tid) <- Some tcb;
  (* Prologue: fetch the function pointer, environment and join info. *)
  for i = 0 to 3 do
    ignore (Ops.load (desc + (8 * i)) ~size:8)
  done;
  let v = f () in
  (* Publish the result in the parent's join frame (as MPL does: results
     are pointers written into the suspended parent's frame), then join. *)
  Ops.store slot ~size:8 1L;
  Ops.tick s.params.Rtparams.join_cost;
  (* Join-time reconciliation: a non-last child's WARD data will be read
     by the parent from another hardware thread, so it must be unmarked
     (flushed) now. The last finisher keeps its pages marked — the parent
     resumes on this very hardware thread, so no cross-thread RAW arises
     (§3.1 is a hardware-thread property) and the pages stay WARD until
     the parent's own next fork or join. The pre-read of the counter is a
     heuristic: racing siblings may both flush, which is merely the
     conservative outcome. *)
  if Ops.load join_ctr ~size:8 > 1L then Heap.unmark_all heap;
  Heap.merge_into ~child:heap ~parent:parent_heap;
  finish v;
  (* Release before the join decrement: the result slot and the task's
     writes must be published before the sibling (or parent) can observe
     the counter reaching zero. *)
  Ops.release ();
  let old = Ops.fetch_add join_ctr ~size:8 (-1L) in
  old = 1L (* true when this child is the last to finish *)

let rec task_handler : sched -> (unit, unit) Effect.Deep.handler =
 fun s ->
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Par2 (fa, fb) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let tid = Ops.tid () in
                let parent =
                  match s.ctx.(tid) with
                  | Some t -> t
                  | None -> assert false
                in
                s.stats.forks <- s.stats.forks + 1;
                Ops.tick s.params.Rtparams.fork_cost;
                let halloc bytes =
                  if s.params.Rtparams.handoff_in_heap then
                    Heap.alloc s.ms s.params parent.heap ~bytes
                  else scratch_alloc s bytes
                in
                (* Fork-time handoff: the descriptor the stolen child will
                   read lives in the forking task's heap, written before
                   the fork point so the unmark below flushes it to the
                   shared cache (the §5.3 software optimization). The join
                   counter and result slots are scheduler state (as in
                   MPL): they are write-shared synchronization words, so
                   they live in never-marked runtime memory. *)
                let desc = halloc 32 in
                (* Padded to a cache line so unrelated forks' sync words
                   never share a block. *)
                let sync = scratch_alloc s 64 in
                let join_ctr = sync in
                let slot_a = sync + 8 in
                let slot_b = sync + 16 in
                for i = 0 to 3 do
                  Ops.store (desc + (8 * i)) ~size:8 (Int64.of_int (desc + i))
                done;
                Ops.store join_ctr ~size:8 2L;
                (* The fork makes this heap internal: unmark its pages. *)
                Heap.unmark_all parent.heap;
                (* Release: publish the descriptor, sync words and heap
                   before the right child becomes visible to thieves. *)
                Ops.release ();
                let ra = ref None and rb = ref None in
                let resume () =
                  (* The resuming thread is the last finisher, which may
                     not be the thread that observed the other child's
                     release: acquire before touching the results. *)
                  Ops.acquire ();
                  let ftid = Ops.tid () in
                  (* The parent resumes on the last finisher's core and
                     touches both children's results. *)
                  ignore (Ops.load slot_a ~size:8);
                  ignore (Ops.load slot_b ~size:8);
                  s.ctx.(ftid) <- Some parent;
                  match (!ra, !rb) with
                  | Some va, Some vb -> continue k (va, vb)
                  | _ -> assert false
                in
                let right =
                  {
                    exec =
                      (fun () ->
                        if
                          child_body s ~parent_heap:parent.heap ~desc ~join_ctr
                            ~slot:slot_b
                            ~finish:(fun v -> rb := Some v)
                            fb ()
                        then resume ());
                  }
                in
                Deque.push_bottom s.deques.(tid) right;
                (* Run the left child inline, as its own task. *)
                let left_body () =
                  if
                    child_body s ~parent_heap:parent.heap ~desc ~join_ctr
                      ~slot:slot_a
                      ~finish:(fun v -> ra := Some v)
                      fa ()
                  then resume ()
                in
                match_with left_body () (task_handler s))
        | _ -> None)
  }

let run_task s task = Effect.Deep.match_with task.exec () (task_handler s)

(* One steal attempt, Chase-Lev style: read the victim's published top
   pointer first (a cheap shared load that stays cached while the victim's
   deque is quiet), and only contend with a CAS when there appears to be
   work. Returns true if a task was executed. *)
let try_steal s tid rng =
  s.stats.steal_attempts <- s.stats.steal_attempts + 1;
  Ops.stall s.params.Rtparams.steal_probe_cost;
  let victim =
    let v = Splitmix.int rng (s.nworkers - 1) in
    if v >= tid then v + 1 else v
  in
  (* The lock word doubles as the victim's "age" publication: loading it
     is the thief's peek. *)
  ignore (Ops.load s.lock_addr.(victim) ~size:8);
  if Deque.is_empty s.deques.(victim) then false
  else if Ops.cas s.lock_addr.(victim) ~size:8 ~expected:0L ~desired:1L then begin
    let stolen = Deque.steal_top s.deques.(victim) in
    Ops.store s.lock_addr.(victim) ~size:8 0L;
    (* Publish the unlock: without this a [`Self] protocol would leave
       the cleared lock word dirty in the thief's cache, and the next
       contender's coherent CAS would read a stale locked value from the
       LLC. *)
    Ops.release ();
    match stolen with
    | Some task ->
        s.stats.steals <- s.stats.steals + 1;
        Ops.stall s.params.Rtparams.steal_move_cost;
        run_task s task;
        true
    | None -> false
  end
  else false

let worker s tid () =
  let rng = s.rngs.(tid) in
  let base = s.params.Rtparams.idle_backoff in
  let backoff = ref base in
  let rec loop () =
    if not s.finished then begin
      (match Deque.pop_bottom s.deques.(tid) with
      | Some task ->
          backoff := base;
          run_task s task
      | None ->
          if try_steal s tid rng then backoff := base
          else begin
            (* Exponential backoff keeps idle workers from flooding the
               interconnect with probe traffic. *)
            Ops.stall !backoff;
            backoff := min (16 * base) (2 * !backoff)
          end);
      loop ()
    end
  in
  loop ()

(* --- derived combinators ------------------------------------------------ *)

let default_grain () = (sched ()).params.Rtparams.default_grain

let rec parfor ?grain lo hi f =
  let g = match grain with Some g -> max 1 g | None -> default_grain () in
  if hi - lo <= g then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let mid = lo + ((hi - lo) / 2) in
    ignore (par2 (fun () -> parfor ~grain:g lo mid f) (fun () -> parfor ~grain:g mid hi f))
  end

let rec parreduce ?grain lo hi ~map ~combine ~init =
  let g = match grain with Some g -> max 1 g | None -> default_grain () in
  if hi <= lo then init
  else if hi - lo <= g then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (map i)
    done;
    !acc
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let a, b =
      par2
        (fun () -> parreduce ~grain:g lo mid ~map ~combine ~init)
        (fun () -> parreduce ~grain:g mid hi ~map ~combine ~init)
    in
    combine a b
  end

(* --- top level ----------------------------------------------------------- *)

let run ?(params = Rtparams.default) ?workers eng main =
  if Domain.DLS.get cur_sched <> None then failwith "Par.run: already running";
  let cfg = Engine.config eng in
  let nthreads = Warden_machine.Config.num_threads cfg in
  let nworkers =
    match workers with
    | None -> nthreads
    | Some w ->
        if w < 1 || w > nthreads then invalid_arg "Par.run: workers";
        w
  in
  let ms = Engine.memsys eng in
  Heap.reset_registry ();
  let s =
    {
      eng;
      ms;
      params;
      nworkers;
      deques = Array.init nworkers (fun _ -> Deque.create ());
      lock_addr =
        Array.init nworkers (fun _ -> Memsys.alloc ms ~bytes:64 ~align:64);
      rngs =
        Array.init nworkers (fun i ->
            Splitmix.make (Int64.add params.Rtparams.seed (Int64.of_int i)));
      ctx = Array.make nthreads None;
      stats =
        {
          forks = 0;
          tasks = 0;
          steals = 0;
          steal_attempts = 0;
          allocs = 0;
          heap_pages = 0;
        };
      scratch = 0;
      scratch_end = 0;
      next_task = 0;
      finished = false;
    }
  in
  Domain.DLS.set cur_sched (Some s);
  let result = ref None in
  let root =
    {
      exec =
        (fun () ->
          let tid = Ops.tid () in
          let heap = Heap.fresh ms params ~parent:None in
          s.ctx.(tid) <- Some { task_id = new_task_id s; heap };
          s.stats.tasks <- s.stats.tasks + 1;
          let v = main () in
          Heap.unmark_all heap;
          result := Some v;
          s.finished <- true);
    }
  in
  Deque.push_bottom s.deques.(0) root;
  let bodies = Array.init nworkers (fun tid -> worker s tid) in
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set cur_sched None)
    (fun () -> ignore (Engine.run eng bodies));
  match !result with
  | Some v -> (v, s.stats)
  | None -> failwith "Par.run: root task did not complete"
