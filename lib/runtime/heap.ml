open Warden_sim

type page = {
  base : int;
  bytes : int;
  mutable ward : bool;
  mutable owner : t;
}

and t = {
  heap_id : int;
  parent : t option;
  depth : int;
  mutable pages : page list;
  mutable marked : page list;
  mutable cur : page option;
  mutable cur_off : int;
}

(* Page registry: maps page-size-aligned chunks of the simulated address
   space to the heap page occupying them. One simulation at a time {e per
   domain} — the state is domain-local so the harness can run independent
   simulations on parallel domains. *)
let chunk_bits = 12

type dstate = {
  registry : (int, page) Hashtbl.t;
  mutable next_id : int;
  mutable region_hook : ([ `Add | `Remove ] -> lo:int -> hi:int -> unit) option;
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { registry = Hashtbl.create 4096; next_id = 0; region_hook = None })

let ds () = Domain.DLS.get dls

let set_region_hook f = (ds ()).region_hook <- f

let notify_region which ~lo ~hi =
  match (ds ()).region_hook with None -> () | Some f -> f which ~lo ~hi

let reset_registry () =
  let d = ds () in
  Hashtbl.reset d.registry;
  d.next_id <- 0

let fresh _ms _params ~parent =
  let d = ds () in
  d.next_id <- d.next_id + 1;
  {
    heap_id = d.next_id;
    parent;
    depth = (match parent with None -> 0 | Some p -> p.depth + 1);
    pages = [];
    marked = [];
    cur = None;
    cur_off = 0;
  }

let register_page page =
  let d = ds () in
  let lo = page.base lsr chunk_bits in
  let hi = (page.base + page.bytes - 1) lsr chunk_bits in
  for c = lo to hi do
    Hashtbl.replace d.registry c page
  done

let round_up n align = (n + align - 1) land lnot (align - 1)

let new_page ms (params : Rtparams.t) heap ~bytes =
  let size = round_up (max bytes params.Rtparams.page_bytes) 4096 in
  let base = Memsys.alloc ms ~bytes:size ~align:4096 in
  Engine.Ops.tick params.Rtparams.page_cost;
  let page = { base; bytes = size; ward = false; owner = heap } in
  heap.pages <- page :: heap.pages;
  register_page page;
  if params.Rtparams.mark_leaf_pages then begin
    (* The Add-Region instruction. The runtime tracks its marking intent
       whether or not the hardware accepted (a full CAM, or a machine
       without WARDen support, refuses); the later Remove-Region is
       idempotent on unregistered regions. *)
    ignore (Engine.Ops.region_add ~lo:base ~hi:(base + size));
    notify_region `Add ~lo:base ~hi:(base + size);
    page.ward <- true;
    heap.marked <- page :: heap.marked
  end;
  page

let alloc ms params heap ~bytes =
  if bytes <= 0 then invalid_arg "Heap.alloc";
  Engine.Ops.tick params.Rtparams.alloc_cost;
  let size = round_up bytes 8 in
  let fits =
    match heap.cur with
    | Some p -> heap.cur_off + size <= p.bytes
    | None -> false
  in
  if (not fits) || size > params.Rtparams.page_bytes then begin
    if size > params.Rtparams.page_bytes then begin
      (* Dedicated page for a large object; keep bumping in the old page. *)
      let p = new_page ms params heap ~bytes:size in
      p.base
    end
    else begin
      let p = new_page ms params heap ~bytes:size in
      heap.cur <- Some p;
      heap.cur_off <- size;
      p.base
    end
  end
  else begin
    match heap.cur with
    | Some p ->
        let addr = p.base + heap.cur_off in
        heap.cur_off <- heap.cur_off + size;
        addr
    | None -> assert false
  end

let unmark_all heap =
  List.iter
    (fun page ->
      if page.ward then begin
        page.ward <- false;
        (* Remove-Region instruction: triggers reconciliation. *)
        Engine.Ops.region_remove ~lo:page.base ~hi:(page.base + page.bytes);
        notify_region `Remove ~lo:page.base ~hi:(page.base + page.bytes)
      end)
    heap.marked;
  heap.marked <- []

let merge_into ~child ~parent =
  List.iter
    (fun page ->
      page.owner <- parent;
      Engine.Ops.tick 1)
    child.pages;
  parent.pages <- List.rev_append child.pages parent.pages;
  parent.marked <- List.rev_append child.marked parent.marked;
  child.pages <- [];
  child.marked <- [];
  child.cur <- None

let owner_of addr =
  match Hashtbl.find_opt (ds ()).registry (addr lsr chunk_bits) with
  | Some page when addr >= page.base && addr < page.base + page.bytes ->
      Some page.owner
  | _ -> None

let rec is_ancestor_or_self h ~of_ =
  h == of_
  || match of_.parent with None -> false | Some p -> is_ancestor_or_self h ~of_:p
