open Warden_cache
open States

(* Grants are written into a reusable per-protocol scratch record: the hot
   path allocates neither the grant nor a [Some bytes] box. [fill] either
   aliases the source line's bytes (LLC line or transferring owner's copy)
   or is the [no_fill] sentinel; every consumer copies the bytes into its
   own Linedata before triggering further protocol activity, so the alias
   is never live across a mutation (the same discipline Llc.read already
   relies on). *)
type grant = {
  mutable pstate : States.pstate;
  mutable fill : Bytes.t;
  mutable latency : int;
}

let no_fill = Bytes.create 0
let has_fill g = Bytes.length g.fill > 0
let fresh_grant () = { pstate = P_S; fill = no_fill; latency = 0 }

(* Invalidate [target]'s copy, counting one invalidation per cache level
   holding the line (the paper counts coherence events per cache). Returns
   the extracted copy. *)
let invalidate_counted (f : Fabric.t) ~core ~blk probe_result =
  match probe_result with
  | None -> None
  | Some p ->
      f.Fabric.stats.Pstats.invalidations <-
        f.Fabric.stats.Pstats.invalidations + p.Fabric.levels;
      Warden_obs.Obs.event f.Fabric.obs ~code:Warden_obs.Events.invalidation
        ~core ~blk ~arg:p.Fabric.levels;
      Some p

let downgrade_counted (f : Fabric.t) ~core ~blk probe_result =
  match probe_result with
  | None -> None
  | Some p ->
      f.Fabric.stats.Pstats.downgrades <-
        f.Fabric.stats.Pstats.downgrades + p.Fabric.levels;
      Warden_obs.Obs.event f.Fabric.obs ~code:Warden_obs.Events.downgrade
        ~core ~blk ~arg:p.Fabric.levels;
      Some p

let handle_request (f : Fabric.t) dir (g : grant) ~core ~blk ~write ~holds_s =
  let e = Dirstate.entry dir blk in
  let cs = Fabric.socket_of_core f core in
  Fabric.dir_access f;
  Fabric.dir_msg f ~socket:cs ~blk ~data:false;
  let to_home = Fabric.dir_leg f ~socket:cs ~blk in
  let from_home = to_home in
  let fetch_shared () =
    let data, where = f.Fabric.read_shared ~blk in
    let lat = Fabric.shared_read_latency f where in
    Fabric.dir_msg f ~socket:cs ~blk ~data:true;
    (data, lat)
  in
  (match (Dirstate.state dir e, write) with
  | D_W, _ -> assert false (* peeled off by the WARDen front end *)
  | D_I, _ ->
      let data, shared_lat = fetch_shared () in
      Dirstate.set_state dir e (if write then D_M else D_E);
      Dirstate.set_owner dir e core;
      g.pstate <- grant_pstate ~write;
      g.fill <- data;
      g.latency <- to_home + shared_lat + from_home
  | D_S, false ->
      assert (not (Dirstate.sharer_mem dir e core));
      let data, shared_lat = fetch_shared () in
      Dirstate.sharer_add dir e core;
      g.pstate <- P_S;
      g.fill <- data;
      g.latency <- to_home + shared_lat + from_home
  | D_S, true ->
      (* Upgrade (or write miss to a shared block): invalidate every other
         sharer; acks flow to the requestor. *)
      let inv_lat = ref 0 in
      Dirstate.sharer_iter dir e (fun s ->
          if s <> core then begin
            let ss = Fabric.socket_of_core f s in
            Fabric.dir_msg f ~socket:ss ~blk ~data:false;
            Fabric.msg f ~from_socket:ss ~to_socket:cs ~data:false;
            ignore
              (invalidate_counted f ~core:s ~blk
                 (f.Fabric.invalidate_priv ~core:s ~blk));
            inv_lat :=
              max !inv_lat
                (Fabric.dir_hop f ~socket:ss ~blk
                + Fabric.hop f ~from_socket:ss ~to_socket:cs)
          end);
      let data, shared_lat =
        if holds_s then (no_fill, f.Fabric.config.Warden_machine.Config.l3_lat)
        else fetch_shared ()
      in
      if not holds_s then
        (* grant message already counted by fetch_shared *)
        ()
      else Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      Dirstate.set_state dir e D_M;
      Dirstate.set_owner dir e core;
      Dirstate.sharers_clear dir e;
      g.pstate <- P_M;
      g.fill <- data;
      g.latency <- to_home + max shared_lat !inv_lat + from_home
  | (D_E | D_M), _ ->
      (* Fwd-GetS / Fwd-GetM to the owner. The owner may have silently
         upgraded E to M, so its data is fetched either way. *)
      let o = Dirstate.owner dir e in
      assert (o >= 0 && o <> core);
      let os = Fabric.socket_of_core f o in
      f.Fabric.stats.Pstats.fwds <- f.Fabric.stats.Pstats.fwds + 1;
      Fabric.dir_msg f ~socket:os ~blk ~data:false;
      Fabric.msg f ~from_socket:os ~to_socket:cs ~data:true;
      let probe =
        if write then
          invalidate_counted f ~core:o ~blk
            (f.Fabric.invalidate_priv ~core:o ~blk)
        else downgrade_counted f ~core:o ~blk (f.Fabric.downgrade_priv ~core:o ~blk)
      in
      let owner_line =
        match probe with
        | Some p -> p.Fabric.data
        | None -> assert false (* directory is precise: owner must hold it *)
      in
      (* A dirty copy must reach the home on a downgrade so later S readers
         can be served from the LLC: a real writeback data message. *)
      if Linedata.is_dirty owner_line then begin
        if not write then begin
          Fabric.dir_msg f ~socket:os ~blk ~data:true;
          f.Fabric.stats.Pstats.writebacks <-
            f.Fabric.stats.Pstats.writebacks + 1
        end;
        f.Fabric.llc_merge ~blk owner_line;
        Linedata.clear_dirty owner_line
      end;
      (* Fill straight from the owner's line: the requester copies the
         bytes into its own Linedata before anything can mutate them. *)
      let data = Linedata.bytes owner_line in
      let latency =
        to_home
        + f.Fabric.config.Warden_machine.Config.l3_lat
        + Fabric.dir_hop f ~socket:os ~blk
        + f.Fabric.config.Warden_machine.Config.l2_lat
        + Fabric.hop f ~from_socket:os ~to_socket:cs
      in
      if write then begin
        Dirstate.set_state dir e D_M;
        Dirstate.set_owner dir e core;
        Dirstate.sharers_clear dir e;
        g.pstate <- P_M
      end
      else begin
        Dirstate.set_state dir e D_S;
        Dirstate.set_owner dir e (-1);
        Dirstate.sharers_clear dir e;
        Dirstate.sharer_add dir e o;
        Dirstate.sharer_add dir e core;
        g.pstate <- P_S
      end;
      g.fill <- data;
      g.latency <- latency);
  g

let handle_evict (f : Fabric.t) dir ~core ~blk ~pstate ~data =
  let e = Dirstate.entry dir blk in
  let cs = Fabric.socket_of_core f core in
  Fabric.dir_access f;
  match pstate with
  | P_M ->
      (* Dir may still believe E after a silent E->M upgrade. *)
      assert (Dirstate.state dir e = D_M || Dirstate.state dir e = D_E);
      assert (Dirstate.owner dir e = core);
      Fabric.dir_msg f ~socket:cs ~blk ~data:true;
      f.Fabric.stats.Pstats.writebacks <- f.Fabric.stats.Pstats.writebacks + 1;
      f.Fabric.llc_put_full ~blk (Linedata.bytes data);
      Dirstate.set_invalid dir e
  | P_E ->
      assert (Dirstate.state dir e = D_E && Dirstate.owner dir e = core);
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      Dirstate.set_invalid dir e
  | P_S ->
      assert (Dirstate.state dir e = D_S);
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      Dirstate.sharer_remove dir e core;
      if Dirstate.sharers_empty dir e then Dirstate.set_invalid dir e

let flush_block (f : Fabric.t) dir ~blk =
  let e = Dirstate.find dir blk in
  if e <> Dirstate.no_slot then
    match Dirstate.state dir e with
    | D_I -> ()
    | D_W -> assert false
    | D_S ->
        List.iter
          (fun c -> ignore (f.Fabric.invalidate_priv ~core:c ~blk))
          (Dirstate.holders dir e);
        Dirstate.set_invalid dir e
    | D_E | D_M -> (
        let o = Dirstate.owner dir e in
        match f.Fabric.invalidate_priv ~core:o ~blk with
        | None -> Dirstate.set_invalid dir e
        | Some p ->
            (* A silently-upgraded E line is dirty; a true E line is not.
               An M line must be written back whether or not its mask is
               set (its fill base may predate memory). The writeback is
               traffic the program owes no matter when it drains, so it
               is counted. *)
            if Dirstate.state dir e = D_M || Linedata.is_dirty p.Fabric.data
            then begin
              Fabric.dir_msg f ~socket:(Fabric.socket_of_core f o) ~blk
                ~data:true;
              f.Fabric.stats.Pstats.writebacks <-
                f.Fabric.stats.Pstats.writebacks + 1;
              f.Fabric.llc_put_full ~blk (Linedata.bytes p.Fabric.data)
            end;
            Dirstate.set_invalid dir e)
