(** Mutable counters maintained by the coherence protocols.

    The evaluation figures are all computed from differences of these
    counters between a MESI run and a WARDen run of the same program. *)

type t = {
  mutable dir_accesses : int;
  mutable invalidations : int;
      (** Private cache copies invalidated by coherence actions, counted per
          cache level holding the line (the paper counts "per cache"). *)
  mutable downgrades : int;
      (** Private cache copies downgraded M/E→S by Fwd-GetS, counted per
          cache level. *)
  mutable fwds : int;  (** Fwd-GetS/GetM transactions sent to an owner. *)
  mutable msgs_ctl_intra : int;
  mutable msgs_ctl_inter : int;
  mutable msgs_data_intra : int;
  mutable msgs_data_inter : int;
  mutable writebacks : int;  (** Dirty private lines written to the LLC. *)
  mutable l3_hits : int;
  mutable l3_misses : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable zero_fills : int;
      (** LLC misses satisfied by zero-filling never-written memory. *)
  mutable ward_grants : int;  (** Requests satisfied in the W state. *)
  mutable ward_adds : int;
  mutable ward_removes : int;
  mutable ward_rejects : int;  (** Region adds refused by a full CAM. *)
  mutable recon_blocks : int;  (** Blocks processed by reconciliation. *)
  mutable recon_flushes : int;  (** Private copies flushed by reconciliation. *)
  mutable bus_txns : int;  (** Shared-bus transactions (snooping fabrics). *)
  mutable bus_arb_cycles : int;
      (** Cycles spent waiting for the round-robin bus arbiter. *)
  mutable bus_busy_cycles : int;
      (** Cycles the bus was occupied by granted transactions. *)
  mutable snoops : int;  (** Private caches probed by bus broadcasts. *)
  mutable c2c_transfers : int;
      (** Fills supplied cache-to-cache by a snooped owner. *)
  mutable self_invs : int;
      (** Private copies self-invalidated at acquires (SI/SD), per level. *)
  mutable self_downs : int;
      (** Dirty private copies self-downgraded at releases (SI/SD), per
          level. *)
  mutable acquires : int;  (** Acquire fences performed by the protocol. *)
  mutable releases : int;  (** Release fences performed by the protocol. *)
}

val create : unit -> t

val save : t -> Warden_util.Bin.w -> unit
val restore : t -> Warden_util.Bin.r -> unit
(** Binary snapshot round trip over every counter, in declaration order. *)

val total_msgs : t -> int

val copy : t -> t

val diff : baseline:t -> t -> t
(** Field-wise [baseline - t]: how many events the run under test avoided. *)
