open Warden_cache
open States

(* Snooping shared-bus MSI.

   There is no directory: every request arbitrates for the one bus
   ({!Bus}), broadcasts its command, and discovers copies by snooping the
   other private caches through the fabric probes. States are S and M only
   (no E — a bus protocol cannot grant silent-upgrade exclusivity without
   an owner tracker), a dirty owner flushes to the LLC the moment it is
   snooped (flush-on-snoop, on reads and writes alike, so the LLC carries
   exactly the bytes a directory MESI would — the lockstep differential in
   warden.check leans on that), and the snooped owner supplies the block
   cache-to-cache in the same bus transfer that performs the flush.

   The request/grant shape is the one {!Protocol.S} prescribes; what
   changed to admit this protocol is the fabric: probes expose the copy's
   state (ownership is discovered, not recorded) and the bus's arbitration
   and occupancy cycles flow into {!Pstats}/{!Energy} through
   {!Fabric.bus_txn} exactly as hop latency does on switched fabrics. *)

module P = struct
  type t = { fabric : Fabric.t; bus : Bus.t; scratch : Mesi.grant }

  let name = "msi-bus"
  let kind = `Snoop

  let create fabric =
    {
      fabric;
      bus = Bus.create ~cores:(Fabric.num_cores fabric);
      scratch = Mesi.fresh_grant ();
    }

  let fabric t = t.fabric

  (* Broadcast one command: every other cache snoops its tags. Returns the
     M owner (if any) discovered by the snoop — SWMR means at most one. *)
  let snoop_owner t ~core ~blk =
    let f = t.fabric in
    let n = Fabric.num_cores f in
    Fabric.bus_msg f ~data:false;
    Fabric.snoops f (n - 1);
    let owner = ref (-1) in
    for c = 0 to n - 1 do
      if c <> core && !owner < 0 then
        match f.Fabric.peek_priv ~core:c ~blk with
        | Some p when (match p.Fabric.state with P_M -> true | _ -> false) ->
            owner := c
        | _ -> ()
    done;
    !owner

  let handle_request t ~core ~blk ~write ~holds_s =
    let f = t.fabric in
    let g = t.scratch in
    let arb = Bus.acquire t.bus ~core in
    let owner = snoop_owner t ~core ~blk in
    if write && holds_s then begin
      (* BusUpgr: permission only. The broadcast invalidates every other
         S copy in place; no data moves. *)
      assert (owner < 0);
      for c = 0 to Fabric.num_cores f - 1 do
        if c <> core then
          ignore
            (Mesi.invalidate_counted f ~core:c ~blk
               (f.Fabric.invalidate_priv ~core:c ~blk)
              : Fabric.probe option)
      done;
      Fabric.bus_txn f ~arb ~busy:Bus.ctl_cycles;
      g.Mesi.pstate <- P_M;
      g.Mesi.fill <- Mesi.no_fill;
      g.Mesi.latency <- arb + Bus.ctl_cycles
    end
    else begin
      let busy = Bus.ctl_cycles + Bus.data_cycles in
      Fabric.bus_txn f ~arb ~busy;
      if owner >= 0 then begin
        (* Flush-on-snoop: demote or evict the owner, merge its dirty
           bytes into the LLC, and fill cache-to-cache. *)
        let probe =
          if write then
            Mesi.invalidate_counted f ~core:owner ~blk
              (f.Fabric.invalidate_priv ~core:owner ~blk)
          else
            Mesi.downgrade_counted f ~core:owner ~blk
              (f.Fabric.downgrade_priv ~core:owner ~blk)
        in
        let p = match probe with Some p -> p | None -> assert false in
        Fabric.bus_msg f ~data:true;
        f.Fabric.stats.Pstats.c2c_transfers <-
          f.Fabric.stats.Pstats.c2c_transfers + 1;
        if Linedata.is_dirty p.Fabric.data then begin
          if not write then
            f.Fabric.stats.Pstats.writebacks <-
              f.Fabric.stats.Pstats.writebacks + 1;
          f.Fabric.llc_merge ~blk p.Fabric.data;
          Linedata.clear_dirty p.Fabric.data
        end;
        g.Mesi.pstate <- (if write then P_M else P_S);
        g.Mesi.fill <- Linedata.bytes p.Fabric.data;
        g.Mesi.latency <- arb + busy + f.Fabric.config.Warden_machine.Config.l2_lat
      end
      else begin
        (* No owner: on a write the broadcast invalidates the S copies in
           place; either way the LLC (or memory behind it) supplies. *)
        if write then
          for c = 0 to Fabric.num_cores f - 1 do
            if c <> core then
              ignore
                (Mesi.invalidate_counted f ~core:c ~blk
                   (f.Fabric.invalidate_priv ~core:c ~blk)
                  : Fabric.probe option)
          done;
        let data, where = f.Fabric.read_shared ~blk in
        let mem_lat = Fabric.shared_read_latency f where in
        Fabric.bus_msg f ~data:true;
        g.Mesi.pstate <- (if write then P_M else P_S);
        g.Mesi.fill <- data;
        g.Mesi.latency <- arb + busy + mem_lat
      end
    end;
    g

  let handle_evict t ~core ~blk ~pstate ~data =
    let f = t.fabric in
    match pstate with
    | P_M ->
        (* Dirty writeback takes a bus transaction of its own. *)
        let arb = Bus.acquire t.bus ~core in
        Fabric.bus_txn f ~arb ~busy:(Bus.ctl_cycles + Bus.data_cycles);
        Fabric.bus_msg f ~data:true;
        f.Fabric.stats.Pstats.writebacks <-
          f.Fabric.stats.Pstats.writebacks + 1;
        f.Fabric.llc_put_full ~blk (Linedata.bytes data)
    | P_S ->
        (* Silent drop: no directory to tell, and the snoop finds truth. *)
        ()
    | P_E -> assert false (* MSI never grants E *)

  (* The region instructions retire with no architectural effect, exactly
     as on the MESI baseline (the attempt is still counted). *)
  let region_add t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_adds <-
      t.fabric.Fabric.stats.Pstats.ward_adds + 1;
    t.fabric.Fabric.stats.Pstats.ward_rejects <-
      t.fabric.Fabric.stats.Pstats.ward_rejects + 1;
    false

  let is_ward _ ~blk:_ = false

  let region_remove t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_removes <-
      t.fabric.Fabric.stats.Pstats.ward_removes + 1;
    0

  let acquire _ ~core:_ = 0
  let release _ ~core:_ = 0

  let resident_blocks t =
    let f = t.fabric in
    let blks = ref [] in
    for c = 0 to Fabric.num_cores f - 1 do
      f.Fabric.iter_priv ~core:c (fun blk ->
          if not (List.mem blk !blks) then blks := blk :: !blks)
    done;
    List.sort compare !blks

  (* End-of-run drain: invalidate every copy, writing M lines back in
     full, as the directory protocols do (the writeback is traffic the
     program owes no matter when it drains). *)
  let flush_all t =
    let f = t.fabric in
    List.iter
      (fun blk ->
        for c = 0 to Fabric.num_cores f - 1 do
          match f.Fabric.invalidate_priv ~core:c ~blk with
          | None -> ()
          | Some p ->
              if
                (match p.Fabric.state with P_M -> true | _ -> false)
                || Linedata.is_dirty p.Fabric.data
              then begin
                Fabric.bus_msg f ~data:true;
                f.Fabric.stats.Pstats.writebacks <-
                  f.Fabric.stats.Pstats.writebacks + 1;
                f.Fabric.llc_put_full ~blk (Linedata.bytes p.Fabric.data)
              end
        done)
      (resident_blocks t)

  (* A snooping protocol has no bookkeeping: the caches are the truth, so
     the view is what a snoop would discover. *)
  let observe t ~blk =
    let f = t.fabric in
    let owner = ref (-1) in
    let sharers = ref [] in
    for c = Fabric.num_cores f - 1 downto 0 do
      match f.Fabric.peek_priv ~core:c ~blk with
      | Some p -> (
          match p.Fabric.state with
          | P_M | P_E -> owner := c
          | P_S -> sharers := c :: !sharers)
      | None -> ()
    done;
    if !owner >= 0 then
      {
        Protocol.bv_state = D_M;
        bv_owner = !owner;
        bv_sharers = [];
        bv_wmulti = false;
      }
    else if !sharers <> [] then
      {
        Protocol.bv_state = D_S;
        bv_owner = -1;
        bv_sharers = !sharers;
        bv_wmulti = false;
      }
    else Protocol.invalid_view

  let prefetch _ ~blk:_ = 0

  let dump t =
    let b = Buffer.create 256 in
    Buffer.add_string b "protocol msi-bus\n";
    List.iter
      (fun blk ->
        Buffer.add_string b
          (Format.asprintf "  blk %d: %a@." blk Protocol.pp_block_view
             (observe t ~blk)))
      (resident_blocks t);
    Buffer.contents b

  let copy t ~fabric =
    { fabric; bus = Bus.copy t.bus; scratch = Mesi.fresh_grant () }

  (* The only protocol state beyond the caches is the arbiter token. *)
  let save_state t w = Bus.save t.bus w
  let restore_state t r = Bus.restore t.bus r
end

let protocol fabric = Protocol.Packed ((module P), P.create fabric)
