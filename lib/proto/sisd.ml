open Warden_cache
open Warden_machine
open States

(* Self-invalidation / self-downgrade (SI/SD) coherence.

   There is no directory and no snooping: nobody ever initiates a remote
   invalidation. Cores cache whatever they touch; a release fence
   self-downgrades the core's dirty lines into the LLC (sector-merged, so
   concurrent writers of disjoint bytes compose), and an acquire fence
   flushes then self-invalidates everything the core holds, so the next
   reads refetch whatever earlier releases published. Correctness is a
   DRF contract: racy programs see stale data, exactly as in the
   VIPS-style protocols this models — which is why the model checker
   drives [`Self] protocols with an acquire/release-aware oracle instead
   of the SWMR invariant.

   Multiple cores may therefore hold the same block in M simultaneously
   (writing disjoint sectors); dirty bits and sector masks in
   {!Warden_cache.Linedata} carry exactly the write-merge machinery the
   WARDen W state already relies on. *)

module P = struct
  type t = { fabric : Fabric.t; scratch : Mesi.grant }

  let name = "sisd"
  let kind = `Self
  let create fabric = { fabric; scratch = Mesi.fresh_grant () }
  let fabric t = t.fabric

  (* Misses are a plain LLC fetch: no directory lookup, no forwarding,
     nothing to invalidate. A write upgrade asks the home for nothing but
     still traverses the fabric (the fence machinery, not the write, is
     what keeps SI/SD cheap). *)
  let handle_request t ~core ~blk ~write ~holds_s =
    let f = t.fabric in
    let g = t.scratch in
    let cs = Fabric.socket_of_core f core in
    Fabric.dir_msg f ~socket:cs ~blk ~data:false;
    let to_home = Fabric.dir_leg f ~socket:cs ~blk in
    let from_home = to_home in
    if write && holds_s then begin
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      g.Mesi.pstate <- P_M;
      g.Mesi.fill <- Mesi.no_fill;
      g.Mesi.latency <- to_home + f.Fabric.config.Config.l3_lat + from_home
    end
    else begin
      let data, where = f.Fabric.read_shared ~blk in
      let shared_lat = Fabric.shared_read_latency f where in
      Fabric.dir_msg f ~socket:cs ~blk ~data:true;
      g.Mesi.pstate <- (if write then P_M else P_S);
      g.Mesi.fill <- data;
      g.Mesi.latency <- to_home + shared_lat + from_home
    end;
    g

  (* Evictions merge dirty sectors into the LLC ([llc_merge], never
     [llc_put_full]: another core may own other sectors of the block).
     Clean copies drop silently — there is no bookkeeping to update. *)
  let handle_evict t ~core ~blk ~pstate:_ ~data =
    let f = t.fabric in
    if Linedata.is_dirty data then begin
      Fabric.dir_msg f ~socket:(Fabric.socket_of_core f core) ~blk ~data:true;
      f.Fabric.stats.Pstats.writebacks <- f.Fabric.stats.Pstats.writebacks + 1;
      f.Fabric.llc_merge ~blk data
    end

  (* Region instructions retire with no architectural effect, as on the
     MESI baseline. *)
  let region_add t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_adds <-
      t.fabric.Fabric.stats.Pstats.ward_adds + 1;
    t.fabric.Fabric.stats.Pstats.ward_rejects <-
      t.fabric.Fabric.stats.Pstats.ward_rejects + 1;
    false

  let is_ward _ ~blk:_ = false

  let region_remove t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_removes <-
      t.fabric.Fabric.stats.Pstats.ward_removes + 1;
    0

  (* Snapshot the core's resident blocks before touching anything: the
     per-block callbacks below mutate the cache mid-walk. *)
  let resident_of t ~core =
    let blks = ref [] in
    t.fabric.Fabric.iter_priv ~core (fun blk -> blks := blk :: !blks);
    List.sort compare !blks

  (* Acquire: flush the core's dirty sectors, then drop every copy it
     holds. Self-invalidations are bulk tag operations (one fence), so the
     latency charged is one cycle plus the per-block reconcile cost of the
     lines that actually carried data out. *)
  let acquire t ~core =
    let f = t.fabric in
    let cs = Fabric.socket_of_core f core in
    let flushed = ref 0 in
    List.iter
      (fun blk ->
        match f.Fabric.invalidate_priv ~core ~blk with
        | None -> ()
        | Some p ->
            f.Fabric.stats.Pstats.self_invs <-
              f.Fabric.stats.Pstats.self_invs + p.Fabric.levels;
            if Linedata.is_dirty p.Fabric.data then begin
              incr flushed;
              Fabric.dir_msg f ~socket:cs ~blk ~data:true;
              f.Fabric.stats.Pstats.writebacks <-
                f.Fabric.stats.Pstats.writebacks + 1;
              f.Fabric.llc_merge ~blk p.Fabric.data
            end)
      (resident_of t ~core);
    1 + (!flushed * f.Fabric.config.Config.reconcile_per_block)

  (* Release: self-downgrade — merge the core's dirty sectors into the LLC
     and keep the copies, now clean and shared. Clean lines are untouched
     (they cost nothing and stay warm). *)
  let release t ~core =
    let f = t.fabric in
    let cs = Fabric.socket_of_core f core in
    let flushed = ref 0 in
    List.iter
      (fun blk ->
        match f.Fabric.peek_priv ~core ~blk with
        | Some p when Linedata.is_dirty p.Fabric.data -> (
            match f.Fabric.downgrade_priv ~core ~blk with
            | None -> ()
            | Some p ->
                f.Fabric.stats.Pstats.self_downs <-
                  f.Fabric.stats.Pstats.self_downs + p.Fabric.levels;
                incr flushed;
                Fabric.dir_msg f ~socket:cs ~blk ~data:true;
                f.Fabric.stats.Pstats.writebacks <-
                  f.Fabric.stats.Pstats.writebacks + 1;
                f.Fabric.llc_merge ~blk p.Fabric.data;
                Linedata.clear_dirty p.Fabric.data)
        | _ -> ())
      (resident_of t ~core);
    1 + (!flushed * f.Fabric.config.Config.reconcile_per_block)

  let flush_all t =
    let f = t.fabric in
    for c = 0 to Fabric.num_cores f - 1 do
      List.iter
        (fun blk ->
          match f.Fabric.invalidate_priv ~core:c ~blk with
          | Some p when Linedata.is_dirty p.Fabric.data ->
              Fabric.dir_msg f ~socket:(Fabric.socket_of_core f c) ~blk
                ~data:true;
              f.Fabric.stats.Pstats.writebacks <-
                f.Fabric.stats.Pstats.writebacks + 1;
              f.Fabric.llc_merge ~blk p.Fabric.data
          | _ -> ())
        (resident_of t ~core:c)
    done

  (* SI/SD keeps no global bookkeeping, so the view is reconstructed from
     the caches. A sole modified holder reads as M; any other occupancy is
     "shared" — including multiple concurrent writers, which is legal
     here and which the checker's Self-aware oracle expects. *)
  let observe t ~blk =
    let f = t.fabric in
    let owners = ref [] in
    let holders = ref [] in
    for c = Fabric.num_cores f - 1 downto 0 do
      match f.Fabric.peek_priv ~core:c ~blk with
      | Some p ->
          holders := c :: !holders;
          if (match p.Fabric.state with P_M -> true | _ -> false) then
            owners := c :: !owners
      | None -> ()
    done;
    match (!owners, !holders) with
    | [], [] -> Protocol.invalid_view
    | [ o ], [ h ] when o = h ->
        { Protocol.bv_state = D_M; bv_owner = o; bv_sharers = []; bv_wmulti = false }
    | _ ->
        {
          Protocol.bv_state = D_S;
          bv_owner = -1;
          bv_sharers = !holders;
          bv_wmulti = false;
        }

  let prefetch _ ~blk:_ = 0

  let dump t =
    let f = t.fabric in
    let b = Buffer.create 256 in
    Buffer.add_string b "protocol sisd\n";
    let blks = ref [] in
    for c = 0 to Fabric.num_cores f - 1 do
      List.iter
        (fun blk -> if not (List.mem blk !blks) then blks := blk :: !blks)
        (resident_of t ~core:c)
    done;
    List.iter
      (fun blk ->
        Buffer.add_string b
          (Format.asprintf "  blk %d: %a@." blk Protocol.pp_block_view
             (observe t ~blk)))
      (List.sort compare !blks);
    Buffer.contents b

  let copy _ ~fabric = { fabric; scratch = Mesi.fresh_grant () }

  (* All SI/SD state lives in the caches, which snapshot separately. *)
  let save_state _ _ = ()
  let restore_state _ _ = ()
end

let protocol fabric = Protocol.Packed ((module P), P.create fabric)
