(** The baseline directory-based MESI protocol (Nagarajan et al. [63]).

    Requests are processed atomically at the directory: each transaction
    runs to completion (probes, forwards, invalidations and all) and
    reports a total latency computed from the message legs it needed. This
    "atomic transaction" simplification preserves the event counts and
    latencies that drive the paper's evaluation while avoiding transient
    states.

    The WARDen protocol ({!Warden_core.Warden}) delegates to these entry
    points for every block outside a WARD region, so the two protocols
    charge identical costs on the common path. *)

type grant = {
  mutable pstate : States.pstate;
      (** State to install in the requestor's cache. *)
  mutable fill : Bytes.t;
      (** Block data to install; {!no_fill} for upgrades, which keep the
          data already held. May alias the source line's bytes — consumers
          must copy before triggering further protocol activity. *)
  mutable latency : int;  (** Cycles until the requestor has its answer. *)
}
(** Grants are delivered through a reusable scratch record owned by the
    protocol instance: the fields are only valid until the next request on
    the same protocol. Snapshot them if you need two grants at once. *)

val no_fill : Bytes.t
(** Zero-length sentinel marking a grant that carries no data. *)

val has_fill : grant -> bool

val fresh_grant : unit -> grant
(** A new scratch record (initially [P_S] / {!no_fill} / 0). *)

val invalidate_counted :
  Fabric.t -> core:int -> blk:int -> Fabric.probe option -> Fabric.probe option
(** Pass-through for the result of an [invalidate_priv] probe that counts
    one invalidation per cache level holding the line (the paper counts
    coherence events per cache) and records the observability event.
    Shared by every protocol that invalidates remote copies. *)

val downgrade_counted :
  Fabric.t -> core:int -> blk:int -> Fabric.probe option -> Fabric.probe option
(** {!invalidate_counted} for downgrades. *)

val handle_request :
  Fabric.t ->
  Dirstate.t ->
  grant ->
  core:int ->
  blk:int ->
  write:bool ->
  holds_s:bool ->
  grant
(** An L2 miss (or S-upgrade when [holds_s]) arriving at the directory.
    Fills and returns the scratch [grant] (all three fields are set on
    every path). Precondition: the directory entry is not [D_W] (callers
    peel that case off first) and the requestor does not already have
    sufficient permission. *)

val handle_evict :
  Fabric.t ->
  Dirstate.t ->
  core:int ->
  blk:int ->
  pstate:States.pstate ->
  data:Warden_cache.Linedata.t ->
  unit
(** A private hierarchy evicted its copy: PutM (full-line dirty writeback),
    PutE or PutS. Off the critical path — no latency is charged to the
    thread, but messages and energy are counted. Precondition: the
    directory entry is not [D_W]. *)

val flush_block : Fabric.t -> Dirstate.t -> blk:int -> unit
(** End-of-run drain used before comparing simulated memory against a
    reference: silently pull every private copy of [blk] into the LLC and
    invalidate the entry. Not counted as traffic. Handles MESI states only;
    precondition: not [D_W]. *)
