(** The directory: per-block coherence state, owner and sharer set.

    Modeled as an "ideal" (unbounded) directory: entries are never evicted,
    mirroring full-map directory studies. The paper's protocol is described
    against such a directory FSA (Fig. 5). *)

type entry = {
  mutable state : States.dstate;
  mutable owner : int;  (** Core id for E/M; [-1] otherwise. *)
  sharers : Warden_util.Bitset.t;
      (** Cores holding a copy: used in S, and in W to remember every core
          granted a copy for later reconciliation. *)
  mutable w_multi : bool;
      (** While in W: true once the block has ever had a second concurrent
          copy or absorbed an eviction merge. Reconciliation may only
          convert a sole holder in place ("no sharing" case, §5.2) when
          this is false; otherwise the LLC may hold merged bytes newer than
          the holder's fill base and the copy must be flushed and merged by
          its dirty mask. *)
}

type t

val create : unit -> t

val entry : t -> int -> entry
(** [entry t blk] returns the entry for block [blk], creating it in [D_I]
    if absent. *)

val find : t -> int -> entry option
(** Like {!entry} but without materializing absent (hence invalid)
    blocks. *)

val iter : t -> (int -> entry -> unit) -> unit

val copy : t -> t
(** Deep copy (fresh entries and sharer sets); the model checker forks
    directory state when exploring alternative interleavings. *)

val set_invalid : entry -> unit
(** Reset to [D_I] with no owner and no sharers. *)

val holders : entry -> int list
(** All cores with a copy according to the directory: the owner in E/M, the
    sharer set in S/W, ascending. *)
