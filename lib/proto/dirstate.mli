(** The directory: per-block coherence state, owner and sharer set.

    Modeled as an "ideal" (unbounded) directory: entries are never evicted,
    mirroring full-map directory studies. The paper's protocol is described
    against such a directory FSA (Fig. 5).

    Stored as a flat open-addressing table (no deletion, so linear probing
    never meets a tombstone). An entry is immediate ints in parallel arrays:
    a packed state/owner/w_multi word plus the sharer set, which is a plain
    core bitmask on machines of up to 62 cores and a two-level
    socket-hierarchical scheme beyond that — a coarse socket-presence word
    per slot plus per-socket fine words in a parallel flat array (DESIGN.md
    §14). No hash table or boxed set exists on any directory path at any
    supported topology. Entries are addressed by {!slot} handles; a slot
    stays valid until the next {!entry} call that inserts a new block
    (which may rehash), and no protocol path inserts between obtaining a
    slot and using it. *)

type t

type slot = int
(** Handle to one directory entry. Do not store across insertions. *)

val no_slot : slot
(** Returned by {!find} when the block has no entry ([-1]). *)

val create : sockets:int -> cores_per_socket:int -> unit -> t
(** [create ~sockets ~cores_per_socket ()] sizes the sharer layout for the
    machine: one flat word per entry when [sockets * cores_per_socket <=
    62], else the hierarchical coarse/fine layout. Raises [Invalid_argument]
    beyond 62 sockets or 62 cores per socket — no supported topology needs
    a third level. *)

val hierarchical : t -> bool
(** True when the two-level layout is active (more than 62 cores). *)

val entry : t -> int -> slot
(** [entry t blk] returns the slot for block [blk], creating it in [D_I]
    if absent — a single probe either way. *)

val find : t -> int -> slot
(** Like {!entry} but without materializing absent (hence invalid)
    blocks: {!no_slot} if untracked. *)

val prefetch : t -> int -> int
(** Pure probe for the sharded engine's helper domains: warm the host
    cache behind a block's directory word (its packed meta, or 0 if
    untracked) without inserting or mutating. Safe to race with the
    owning lane — a torn snapshot yields a stale answer, never an
    out-of-bounds access. Advisory only; feed the result to a sink. *)

val block : t -> slot -> int
(** The block id a slot tracks. *)

val state : t -> slot -> States.dstate
val set_state : t -> slot -> States.dstate -> unit

val owner : t -> slot -> int
(** Core id for E/M; [-1] otherwise. *)

val set_owner : t -> slot -> int -> unit

val w_multi : t -> slot -> bool
(** While in W: true once the block has ever had a second concurrent copy
    or absorbed an eviction merge. Reconciliation may only convert a sole
    holder in place ("no sharing" case, §5.2) when this is false;
    otherwise the LLC may hold merged bytes newer than the holder's fill
    base and the copy must be flushed and merged by its dirty mask. *)

val set_w_multi : t -> slot -> bool -> unit

(** Sharer set: cores holding a copy — used in S, and in W to remember
    every core granted a copy for later reconciliation. *)

val sharer_add : t -> slot -> int -> unit
val sharer_remove : t -> slot -> int -> unit
val sharer_mem : t -> slot -> int -> bool
val sharers_clear : t -> slot -> unit
val sharers_empty : t -> slot -> bool
val sharer_count : t -> slot -> int

val sharer_iter : t -> slot -> (int -> unit) -> unit
(** Ascending core id. In the hierarchical layout this walks the coarse
    socket mask and visits only non-empty sockets, so the cost of an
    invalidation sweep scales with the sockets that actually hold copies,
    not the machine size. *)

val sharers : t -> slot -> int list
(** Ascending core id. *)

val set_invalid : t -> slot -> unit
(** Reset to [D_I] with no owner and no sharers. *)

val holders : t -> slot -> int list
(** All cores with a copy according to the directory: the owner in E/M, the
    sharer set in S/W, ascending. *)

val iter : t -> (int -> slot -> unit) -> unit
(** Visit every entry (including [D_I] ones) as [(blk, slot)]. Must not
    insert entries during iteration. *)

val copy : t -> t
(** Deep copy (fresh arrays, both levels); the model checker forks
    directory state when exploring alternative interleavings. *)

val save : t -> Warden_util.Bin.w -> unit
(** Snapshot every slot array wholesale — both flat and hierarchical
    sharer layouts are plain int arrays (DESIGN.md §15). *)

val restore : t -> Warden_util.Bin.r -> unit
(** Overwrite a directory created for the same geometry from {!save}
    output. Raises [Warden_util.Bin.Corrupt] on a geometry mismatch. *)
