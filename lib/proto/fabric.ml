open Warden_machine

type probe = {
  levels : int;
  state : States.pstate;
  data : Warden_cache.Linedata.t;
}

type t = {
  config : Config.t;
  energy : Energy.t;
  stats : Pstats.t;
  obs : Warden_obs.Obs.t;
  peek_priv : core:int -> blk:int -> probe option;
  invalidate_priv : core:int -> blk:int -> probe option;
  downgrade_priv : core:int -> blk:int -> probe option;
  iter_priv : core:int -> (int -> unit) -> unit;
  read_shared : blk:int -> Bytes.t * [ `L3 | `Dram | `Zero ];
  llc_merge : blk:int -> Warden_cache.Linedata.t -> unit;
  llc_put_full : blk:int -> Bytes.t -> unit;
}

let num_cores t = Config.num_cores t.config

let socket_of_core t core = Config.socket_of_core t.config core
let home_socket t ~blk = Config.home_socket t.config blk

let hop t ~from_socket ~to_socket = Config.hop_lat t.config ~from_socket ~to_socket

let req_leg t ~from_socket ~to_socket =
  if t.config.Config.llc_remote then t.config.Config.inter_socket_lat
  else if from_socket = to_socket then 0
  else Config.hop_lat t.config ~from_socket ~to_socket

let dir_leg t ~socket ~blk =
  req_leg t ~from_socket:socket ~to_socket:(Config.home_socket t.config blk)

let dir_hop t ~socket ~blk =
  if t.config.Config.llc_remote then t.config.Config.inter_socket_lat
  else hop t ~from_socket:(Config.home_socket t.config blk) ~to_socket:socket

let msg t ~from_socket ~to_socket ~data =
  let inter = from_socket <> to_socket in
  (if data then
     if inter then t.stats.Pstats.msgs_data_inter <- t.stats.Pstats.msgs_data_inter + 1
     else t.stats.Pstats.msgs_data_intra <- t.stats.Pstats.msgs_data_intra + 1
   else if inter then t.stats.Pstats.msgs_ctl_inter <- t.stats.Pstats.msgs_ctl_inter + 1
   else t.stats.Pstats.msgs_ctl_intra <- t.stats.Pstats.msgs_ctl_intra + 1);
  Energy.message t.energy ~inter_socket:inter ~data

let dir_msg t ~socket ~blk ~data =
  let inter =
    t.config.Config.llc_remote || socket <> Config.home_socket t.config blk
  in
  (if data then
     if inter then t.stats.Pstats.msgs_data_inter <- t.stats.Pstats.msgs_data_inter + 1
     else t.stats.Pstats.msgs_data_intra <- t.stats.Pstats.msgs_data_intra + 1
   else if inter then t.stats.Pstats.msgs_ctl_inter <- t.stats.Pstats.msgs_ctl_inter + 1
   else t.stats.Pstats.msgs_ctl_intra <- t.stats.Pstats.msgs_ctl_intra + 1);
  Energy.message t.energy ~inter_socket:inter ~data

let dir_access t =
  t.stats.Pstats.dir_accesses <- t.stats.Pstats.dir_accesses + 1;
  Energy.dir_access t.energy

(* Shared-bus accounting (snooping fabrics). The bus is the machine's
   interconnect, so its occupancy deposits network energy the same way
   hop-counted messages do on the switched fabrics; arbitration and
   transfer cycles are kept distinct in the stats so the bench can report
   contention separately from bandwidth. *)
let bus_txn t ~arb ~busy =
  t.stats.Pstats.bus_txns <- t.stats.Pstats.bus_txns + 1;
  t.stats.Pstats.bus_arb_cycles <- t.stats.Pstats.bus_arb_cycles + arb;
  t.stats.Pstats.bus_busy_cycles <- t.stats.Pstats.bus_busy_cycles + busy;
  Energy.bus_cycles t.energy (arb + busy)

(* One message on the broadcast bus. Every snooper observes it, but it is
   a single wire transaction: counted once, as an intra-complex message. *)
let bus_msg t ~data =
  (if data then
     t.stats.Pstats.msgs_data_intra <- t.stats.Pstats.msgs_data_intra + 1
   else t.stats.Pstats.msgs_ctl_intra <- t.stats.Pstats.msgs_ctl_intra + 1);
  Energy.message t.energy ~inter_socket:false ~data

let snoops t n = t.stats.Pstats.snoops <- t.stats.Pstats.snoops + n

let shared_read_latency t where =
  Energy.l3_access t.energy;
  match where with
  | `L3 ->
      t.stats.Pstats.l3_hits <- t.stats.Pstats.l3_hits + 1;
      t.config.Config.l3_lat
  | `Zero ->
      t.stats.Pstats.zero_fills <- t.stats.Pstats.zero_fills + 1;
      t.config.Config.l3_lat
  | `Dram ->
      t.stats.Pstats.l3_misses <- t.stats.Pstats.l3_misses + 1;
      t.stats.Pstats.dram_reads <- t.stats.Pstats.dram_reads + 1;
      Energy.dram_access t.energy;
      let extra =
        if t.config.Config.dram_remote then 2 * t.config.Config.inter_socket_lat
        else 0
      in
      t.config.Config.l3_lat + t.config.Config.dram_lat + extra
