(** Round-robin arbiter for a single shared snooping bus.

    Models arbitration as rotation distance from the last granted core —
    the deterministic single-requestor projection of a real round-robin
    arbiter — plus fixed occupancy costs for the command broadcast and the
    optional block transfer. *)

type t

val ctl_cycles : int
(** Bus occupancy of a command/address broadcast. *)

val data_cycles : int
(** Additional occupancy of a 64-byte block transfer. *)

val create : cores:int -> t

val acquire : t -> core:int -> int
(** Grant the bus to [core]; returns the arbitration wait in cycles
    (rotation distance from the previous holder) and advances the token. *)

val copy : t -> t
val save : t -> Warden_util.Bin.w -> unit
val restore : t -> Warden_util.Bin.r -> unit
