(** The shared-memory fabric a coherence protocol operates over.

    The simulator's memory system builds one of these and hands it to the
    protocol. It exposes exactly the actions a directory controller can
    take: probe/invalidate/downgrade a private cache's copy, and read or
    merge blocks at the shared cache (which transparently falls through to
    memory). Latency arithmetic and message accounting also live here so
    both protocols charge costs identically. *)

type probe = {
  levels : int;
      (** Cache levels holding the line in that core (1 = L2 only,
          2 = L1+L2); the paper counts coherence events per cache. *)
  state : States.pstate;
      (** The copy's state at probe time (before any transition the probe
          performs). A snooping protocol has no directory, so ownership is
          discovered from the probes themselves. *)
  data : Warden_cache.Linedata.t;  (** The copy (not a defensive copy). *)
}

type t = {
  config : Warden_machine.Config.t;
  energy : Warden_machine.Energy.t;
  stats : Pstats.t;
  obs : Warden_obs.Obs.t;
      (** Event recorder (DESIGN.md §12); a no-op shell at [Obs_off].
          Protocols report invalidations, downgrades, WARD traffic and
          reconciliation through it — never simulated state. *)
  peek_priv : core:int -> blk:int -> probe option;
      (** Observe a private copy without changing it. *)
  invalidate_priv : core:int -> blk:int -> probe option;
      (** Remove the copy from the core's private hierarchy and return it. *)
  downgrade_priv : core:int -> blk:int -> probe option;
      (** Transition the copy to shared/clean, returning it as it was
          before its dirty mask was cleared. *)
  iter_priv : core:int -> (int -> unit) -> unit;
      (** Enumerate the blocks resident in one core's private hierarchy.
          Self-invalidation protocols walk their own cache at sync points,
          and a bus's flush path walks everybody's; the directory
          protocols never need this (their bookkeeping is the walk). The
          callback must not mutate the hierarchy mid-iteration — collect
          first, then probe. *)
  read_shared : blk:int -> Bytes.t * [ `L3 | `Dram | `Zero ];
      (** Fetch a block at its home LLC slice, filling from memory on an
          LLC miss; reports where it was found for latency/stats ([`Zero]
          = zero-filled fresh memory, no DRAM access). *)
  llc_merge : blk:int -> Warden_cache.Linedata.t -> unit;
      (** Merge a private copy's dirty bytes into the LLC copy
          (sectored writeback / reconciliation merge). *)
  llc_put_full : blk:int -> Bytes.t -> unit;
      (** Full-line dirty writeback into the LLC (M-state eviction). *)
}

val socket_of_core : t -> int -> int
val home_socket : t -> blk:int -> int
val num_cores : t -> int

val hop : t -> from_socket:int -> to_socket:int -> int
(** Latency of a third-party message leg (directory→owner, owner→requestor,
    invalidation, ack): [intra_hop_lat] within a socket, [inter_socket_lat]
    across sockets. *)

val req_leg : t -> from_socket:int -> to_socket:int -> int
(** Latency of the requestor↔home legs: 0 within a socket (the L3 access
    latency of Table 2 already covers the on-chip round trip),
    [inter_socket_lat] across sockets — or always [inter_socket_lat] on a
    disaggregated machine, where the home complex is behind the fabric. *)

val dir_leg : t -> socket:int -> blk:int -> int
(** Latency of one leg between [socket] and block [blk]'s home complex
    (directory/LLC): {!req_leg} against the home socket. *)

val dir_msg : t -> socket:int -> blk:int -> data:bool -> unit
(** Count a message between a socket and a home complex; on a
    disaggregated machine these always cross the fabric. *)

val dir_hop : t -> socket:int -> blk:int -> int
(** Latency of a directory→third-party leg (Fwd, Inv): like {!hop} but
    crossing the fabric on a disaggregated machine. *)

val msg : t -> from_socket:int -> to_socket:int -> data:bool -> unit
(** Count one protocol message and deposit its network energy. *)

val dir_access : t -> unit
(** Count a directory lookup/update. *)

val shared_read_latency : t -> [ `L3 | `Dram | `Zero ] -> int
(** L3 access latency, plus DRAM latency on a miss (doubled-leg remote
    memory when the machine is disaggregated), with stats/energy counted. *)

val bus_txn : t -> arb:int -> busy:int -> unit
(** Account one shared-bus transaction: [arb] cycles waiting for the
    round-robin arbiter and [busy] cycles of bus occupancy, with the
    combined cycles deposited as network energy (the bus is the snooping
    machine's interconnect, as hops are the switched machines'). *)

val bus_msg : t -> data:bool -> unit
(** Count one broadcast-bus message. Every snooper observes it but it is a
    single wire transaction, counted once (intra-complex). *)

val snoops : t -> int -> unit
(** Count [n] private caches probed by a bus broadcast. *)
