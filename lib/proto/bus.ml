(* A single shared snooping bus with a round-robin arbiter.

   The bus serializes every coherence transaction, so its cost model is a
   wait-for-grant phase (arbitration) followed by an occupancy phase
   (command broadcast, and a block transfer when data moves). Arbitration
   is strict round-robin: the token advances from the last granted core,
   one cycle per position, so a requestor [d] positions after the holder
   waits [d - 1] cycles ([0] when it is the next in rotation). This is the
   deterministic single-requestor projection of a real arbiter — the
   simulator presents one transaction at a time, so fairness shows up as
   rotation distance rather than queueing. Occupancy cycles are charged to
   the transaction's latency and accounted as bus-busy time by the caller
   (see {!Fabric.bus_txn}). *)

type t = { cores : int; mutable last_grant : int }

(* Command/address broadcast occupies the bus for [ctl_cycles]; a 64-byte
   block transfer over an 8-byte-wide data path adds [data_cycles]. *)
let ctl_cycles = 2
let data_cycles = 8

(* Start the token just before core 0 so the first requestor on an idle
   machine waits nothing. *)
let create ~cores = { cores; last_grant = cores - 1 }

(* Grant the bus to [core]: returns the arbitration wait and advances the
   token. *)
let acquire t ~core =
  let d = (core - t.last_grant + t.cores) mod t.cores in
  t.last_grant <- core;
  if d = 0 then t.cores - 1 else d - 1

let copy t = { t with last_grant = t.last_grant }
let save t w = Warden_util.Bin.w_int w t.last_grant

let restore t r =
  let g = Warden_util.Bin.r_int r in
  if g < 0 || g >= t.cores then Warden_util.Bin.corrupt "Bus: bad grant token";
  t.last_grant <- g
