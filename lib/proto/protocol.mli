(** First-class packaging of a coherence protocol.

    The simulator's memory system drives whichever protocol it is given
    through this interface; MESI ({!Mesi_protocol}) and WARDen
    ({!Warden_core.Warden}) both implement it. The region operations model
    the paper's "Add/Remove Region" instructions (§6.1): plain MESI
    implements them as cheap no-ops so that the same runtime binary runs on
    both protocols, exactly as WARDen supports unmodified legacy code. *)

type block_view = {
  bv_state : States.dstate;  (** directory state (I/S/E/M/W) *)
  bv_owner : int;  (** owning core for E/M, [-1] otherwise *)
  bv_sharers : int list;  (** sharer set, ascending core id *)
  bv_wmulti : bool;  (** block ever held by >1 core within a W epoch *)
}
(** A structured snapshot of one block's directory entry, for invariant
    checkers and debuggers. Implementations must report their *actual*
    bookkeeping, not a reconstruction — the model checker cross-validates
    these views against the private caches. *)

val invalid_view : block_view
(** The view of an untracked (invalid) block. *)

val view_of_dir : Dirstate.t -> blk:int -> block_view
(** Snapshot a directory entry (helper for implementations that keep their
    state in a {!Dirstate.t}, as MESI and WARDen both do). *)

val pp_block_view : Format.formatter -> block_view -> unit

val dump_dir : Dirstate.t -> string
(** Render every non-invalid entry, sorted by block, one per line. *)

module type S = sig
  type t

  val name : string

  val kind : [ `Directory | `Snoop | `Self ]
  (** Coherence topology. [`Directory] protocols answer requests from
      per-block bookkeeping; [`Snoop] protocols broadcast on a shared bus
      and discover copies by probing every cache; [`Self] protocols never
      initiate remote invalidations — cores self-invalidate at acquires
      and self-downgrade at releases. The simulator keys behavior off
      this: only [`Self] protocols receive {!acquire}/{!release} from the
      runtime's sync points, and their atomics are pinned to the coherent
      scheduled path. *)

  val create : Fabric.t -> t

  val fabric : t -> Fabric.t

  val handle_request :
    t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

  val handle_evict :
    t ->
    core:int ->
    blk:int ->
    pstate:States.pstate ->
    data:Warden_cache.Linedata.t ->
    unit

  val region_add : t -> lo:int -> hi:int -> bool
  (** Declare [\[lo, hi)] a WARD region. Returns whether the hardware
      accepted it (a full region CAM refuses). *)

  val is_ward : t -> blk:int -> bool
  (** Is this block currently inside an active WARD region? Always false
      for the MESI baseline. Used by invariant checkers, which must exempt
      W blocks from the single-writer rule. *)

  val region_remove : t -> lo:int -> hi:int -> int
  (** Remove the region and reconcile its blocks; returns the cycles the
      announcing thread is charged. *)

  val acquire : t -> core:int -> int
  (** Acquire fence on [core] (fork-join runtime sync point): a [`Self]
      protocol flushes the core's dirty copies to the LLC and invalidates
      everything the core holds, so later reads observe other cores'
      released writes. Returns the cycles charged; free no-op (0) for
      eagerly-coherent protocols. *)

  val release : t -> core:int -> int
  (** Release fence on [core]: a [`Self] protocol self-downgrades the
      core's dirty copies into the LLC so a subsequent acquirer can read
      them. Returns the cycles charged; free no-op (0) otherwise. *)

  val flush_all : t -> unit
  (** Drain every cached copy to memory (end-of-run, uncounted). *)

  val observe : t -> blk:int -> block_view
  (** Snapshot the directory's bookkeeping for one block. *)

  val prefetch : t -> blk:int -> int
  (** Pure helper-domain probe: warm the host cache behind the block's
      directory word without mutating protocol state. Safe to race with
      the owning lane; the result is advisory and feeds a sink only. *)

  val dump : t -> string
  (** Human-readable dump of all protocol state (directory entries plus
      any protocol-specific tables such as the WARD region CAM); used by
      the model checker's counterexample printer. *)

  val copy : t -> fabric:Fabric.t -> t
  (** Fork the protocol state, rebinding it to [fabric]. The model checker
      forks whole memory systems when exploring alternative interleavings;
      since a protocol reaches its caches only through fabric callbacks,
      the copy must be given the fabric of the forked world. *)

  val save_state : t -> Warden_util.Bin.w -> unit
  (** Serialize the protocol's own state (directory entries plus any
      protocol tables such as the WARD region CAM) for snapshots
      (DESIGN.md §15). Caches, stats and the store are serialized by
      their owners, not here. *)

  val restore_state : t -> Warden_util.Bin.r -> unit
  (** Overwrite the protocol state of a same-geometry instance from
      {!save_state} output. Raises [Warden_util.Bin.Corrupt] on a
      mismatch. *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t

val name : t -> string
val kind : t -> [ `Directory | `Snoop | `Self ]
val fabric : t -> Fabric.t
val stats : t -> Pstats.t

val handle_request :
  t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

val handle_evict :
  t -> core:int -> blk:int -> pstate:States.pstate -> data:Warden_cache.Linedata.t -> unit

val region_add : t -> lo:int -> hi:int -> bool
val region_remove : t -> lo:int -> hi:int -> int
val is_ward : t -> blk:int -> bool
val acquire : t -> core:int -> int
val release : t -> core:int -> int
val flush_all : t -> unit
val observe : t -> blk:int -> block_view
val prefetch : t -> blk:int -> int
val dump : t -> string
val copy : t -> fabric:Fabric.t -> t
val save_state : t -> Warden_util.Bin.w -> unit
val restore_state : t -> Warden_util.Bin.r -> unit

val mesi : Fabric.t -> t
(** Package the baseline MESI protocol. *)
