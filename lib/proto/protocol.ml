type block_view = {
  bv_state : States.dstate;
  bv_owner : int;
  bv_sharers : int list;
  bv_wmulti : bool;
}

let invalid_view =
  { bv_state = States.D_I; bv_owner = -1; bv_sharers = []; bv_wmulti = false }

let view_of_dir dir ~blk =
  let s = Dirstate.find dir blk in
  if s = Dirstate.no_slot then invalid_view
  else
    {
      bv_state = Dirstate.state dir s;
      bv_owner = Dirstate.owner dir s;
      bv_sharers = Dirstate.sharers dir s;
      bv_wmulti = Dirstate.w_multi dir s;
    }

let pp_block_view fmt v =
  Format.fprintf fmt "%a owner=%d sharers=[%s]%s" States.pp_dstate v.bv_state
    v.bv_owner
    (String.concat "," (List.map string_of_int v.bv_sharers))
    (if v.bv_wmulti then " multi" else "")

let dump_dir dir =
  let rows = ref [] in
  Dirstate.iter dir (fun blk s ->
      if Dirstate.state dir s <> States.D_I then
        rows := (blk, view_of_dir dir ~blk) :: !rows);
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  String.concat ""
    (List.map
       (fun (blk, v) -> Format.asprintf "  blk %d: %a@." blk pp_block_view v)
       rows)

module type S = sig
  type t

  val name : string

  val kind : [ `Directory | `Snoop | `Self ]
  (** Coherence topology: [`Directory] protocols answer requests from
      per-block bookkeeping, [`Snoop] protocols broadcast on a shared bus
      and discover copies by probing, [`Self] protocols never initiate
      remote invalidations — the cores self-invalidate at acquires and
      self-downgrade at releases. The simulator and model checker key
      behavior off this: only [`Self] protocols receive {!acquire} and
      {!release}, and their atomics take the coherent scheduled path. *)

  val create : Fabric.t -> t
  val fabric : t -> Fabric.t

  val handle_request :
    t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

  val handle_evict :
    t ->
    core:int ->
    blk:int ->
    pstate:States.pstate ->
    data:Warden_cache.Linedata.t ->
    unit

  val region_add : t -> lo:int -> hi:int -> bool
  val is_ward : t -> blk:int -> bool
  val region_remove : t -> lo:int -> hi:int -> int

  val acquire : t -> core:int -> int
  (** Acquire fence on [core]: a [`Self] protocol flushes the core's dirty
      copies and drops everything it holds, returning the cycles charged.
      Free no-op (0) for protocols whose coherence is eager. *)

  val release : t -> core:int -> int
  (** Release fence on [core]: a [`Self] protocol self-downgrades the
      core's dirty copies into the LLC. Free no-op (0) otherwise. *)

  val flush_all : t -> unit
  val observe : t -> blk:int -> block_view

  val prefetch : t -> blk:int -> int
  (** Pure helper-domain probe: warm the host cache behind the block's
      directory word without mutating protocol state. Safe to race with
      the owning lane; the result is advisory and feeds a sink only. *)

  val dump : t -> string
  val copy : t -> fabric:Fabric.t -> t
  val save_state : t -> Warden_util.Bin.w -> unit
  val restore_state : t -> Warden_util.Bin.r -> unit
end

type t = Packed : (module S with type t = 'a) * 'a -> t

let name (Packed ((module P), _)) = P.name
let kind (Packed ((module P), _)) = P.kind
let fabric (Packed ((module P), p)) = P.fabric p
let stats t = (fabric t).Fabric.stats

let handle_request (Packed ((module P), p)) ~core ~blk ~write ~holds_s =
  P.handle_request p ~core ~blk ~write ~holds_s

let handle_evict (Packed ((module P), p)) ~core ~blk ~pstate ~data =
  P.handle_evict p ~core ~blk ~pstate ~data

let region_add (Packed ((module P), p)) ~lo ~hi = P.region_add p ~lo ~hi
let region_remove (Packed ((module P), p)) ~lo ~hi = P.region_remove p ~lo ~hi
let is_ward (Packed ((module P), p)) ~blk = P.is_ward p ~blk
let acquire (Packed ((module P), p)) ~core = P.acquire p ~core
let release (Packed ((module P), p)) ~core = P.release p ~core
let flush_all (Packed ((module P), p)) = P.flush_all p
let observe (Packed ((module P), p)) ~blk = P.observe p ~blk
let prefetch (Packed ((module P), p)) ~blk = P.prefetch p ~blk
let dump (Packed ((module P), p)) = P.dump p
let copy (Packed ((module P), p)) ~fabric = Packed ((module P), P.copy p ~fabric)
let save_state (Packed ((module P), p)) w = P.save_state p w
let restore_state (Packed ((module P), p)) r = P.restore_state p r

module Mesi_protocol = struct
  type t = { fabric : Fabric.t; dir : Dirstate.t; scratch : Mesi.grant }

  let name = "mesi"
  let kind = `Directory

  let create fabric =
    let cfg = fabric.Fabric.config in
    {
      fabric;
      dir =
        Dirstate.create ~sockets:cfg.Warden_machine.Config.sockets
          ~cores_per_socket:cfg.Warden_machine.Config.cores_per_socket ();
      scratch = Mesi.fresh_grant ();
    }

  let fabric t = t.fabric

  let handle_request t ~core ~blk ~write ~holds_s =
    Mesi.handle_request t.fabric t.dir t.scratch ~core ~blk ~write ~holds_s

  let handle_evict t ~core ~blk ~pstate ~data =
    Mesi.handle_evict t.fabric t.dir ~core ~blk ~pstate ~data

  (* The region instructions exist in the ISA either way; on a machine
     without WARDen support they retire with no architectural effect (the
     attempt is still counted, so runs are comparable). *)
  let region_add t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_adds <-
      t.fabric.Fabric.stats.Pstats.ward_adds + 1;
    t.fabric.Fabric.stats.Pstats.ward_rejects <-
      t.fabric.Fabric.stats.Pstats.ward_rejects + 1;
    false

  let is_ward _ ~blk:_ = false

  let region_remove t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_removes <-
      t.fabric.Fabric.stats.Pstats.ward_removes + 1;
    0

  (* Eager coherence: acquire/release fences have no architectural effect
     (the directory already invalidates and downgrades remotely). *)
  let acquire _ ~core:_ = 0
  let release _ ~core:_ = 0

  let flush_all t =
    let blocks = ref [] in
    Dirstate.iter t.dir (fun blk _ -> blocks := blk :: !blocks);
    List.iter (fun blk -> Mesi.flush_block t.fabric t.dir ~blk) !blocks

  let observe t ~blk = view_of_dir t.dir ~blk
  let prefetch t ~blk = Dirstate.prefetch t.dir blk
  let dump t = "protocol mesi\n" ^ dump_dir t.dir
  let copy t ~fabric =
    { fabric; dir = Dirstate.copy t.dir; scratch = Mesi.fresh_grant () }

  (* MESI's whole protocol state is the directory; the fabric's caches and
     stats are serialized by their owners. *)
  let save_state t w = Dirstate.save t.dir w
  let restore_state t r = Dirstate.restore t.dir r
end

let mesi fabric = Packed ((module Mesi_protocol), Mesi_protocol.create fabric)
