(* Flat open-addressing directory. One probe per request instead of a
   Hashtbl bucket walk, and an entry is immediate ints in parallel
   arrays — no per-entry record, no boxed sharer set on any path.

   meta word layout (per slot):
     bits 0-2   directory state (I=0 S=1 E=2 M=3 W=4)
     bit  3     w_multi
     bits 4+    owner + 1 (0 = no owner)
   A fresh entry is the integer 0: D_I, no owner, not multi.

   Sharer sets come in two layouts, chosen once at [create] from the
   machine geometry (DESIGN.md §14):

   - flat (<= 62 cores): [mask.(slot)] is a plain core bitmask, bit c =
     core c. Every Table-2 topology fits in one word.

   - hierarchical (> 62 cores): [mask.(slot)] becomes a coarse
     socket-presence bitmask (bit s = socket s holds at least one copy,
     up to 62 sockets per word) and the per-socket fine words live in a
     parallel flat [fine] array at [slot * sockets + socket], bit b =
     core [socket * cores_per_socket + b] (cores_per_socket <= 62, so no
     second level of spill exists at any supported topology). The
     invalidation/downgrade walk reads the coarse mask and skips empty
     sockets in one branch — no hash table, no boxed set, no allocation.

   The directory is ideal (never evicts), so there is no deletion and no
   tombstones: linear probing terminates at the first empty slot. *)

type t = {
  mutable keys : int array; (* block id per slot; -1 = empty *)
  mutable meta : int array;
  mutable mask : int array; (* flat: sharer bits; hier: coarse socket bits *)
  mutable fine : int array; (* hier: per-socket words at slot*nsock+s; flat: [||] *)
  mutable used : int;
  mutable shift : int; (* 63 - log2 capacity *)
  nsock : int; (* 0 in flat mode, else the socket count *)
  cps : int; (* cores per socket (hier mode) *)
  cps_shift : int; (* log2 cps when cps is a power of two, else -1 *)
}

type slot = int

let no_slot = -1
let flat_max = 62

(* Start tiny and double on demand (load factor 1/2). Capacity is purely
   a host-side concern — the directory is ideal, so growth never changes
   what any request observes — but it is what the model checker's
   copy-based BFS pays per explored node, and in hierarchical mode the
   fine array scales it by the socket count. *)
let initial_lg = 6

(* Odd 63-bit multiplier (SplitMix finalizer constant); the top bits of
   blk * factor index the table. *)
let factor = 0x2545F4914F6CDD1D

let create ~sockets ~cores_per_socket () : t =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Dirstate.create: nonpositive geometry";
  let cores = sockets * cores_per_socket in
  let hier = cores > flat_max in
  if hier && sockets > flat_max then
    invalid_arg "Dirstate.create: more than 62 sockets";
  if hier && cores_per_socket > flat_max then
    invalid_arg "Dirstate.create: more than 62 cores per socket";
  let nsock = if hier then sockets else 0 in
  let cap = 1 lsl initial_lg in
  {
    keys = Array.make cap (-1);
    meta = Array.make cap 0;
    mask = Array.make cap 0;
    fine = (if hier then Array.make (cap * nsock) 0 else [||]);
    used = 0;
    shift = 63 - initial_lg;
    nsock;
    cps = cores_per_socket;
    cps_shift =
      (if cores_per_socket land (cores_per_socket - 1) = 0 then
         let rec lg n acc = if n <= 1 then acc else lg (n lsr 1) (acc + 1) in
         lg cores_per_socket 0
       else -1);
  }

let hierarchical t = t.nsock > 0

(* Socket / in-socket bit of a core; division only when cps is not a
   power of two (it is at every many-socket scaling topology). *)
let socket_of t core =
  if t.cps_shift >= 0 then core lsr t.cps_shift else core / t.cps

let lane_of t core =
  if t.cps_shift >= 0 then core land (t.cps - 1) else core mod t.cps

(* First slot holding [blk] or empty, scanning the probe sequence. *)
let probe t blk =
  let keys = t.keys in
  let m = Array.length keys - 1 in
  let i = ref ((blk * factor) lsr t.shift) in
  while
    let k = Array.unsafe_get keys !i in
    k <> blk && k <> -1
  do
    i := (!i + 1) land m
  done;
  !i

let grow t =
  let old_keys = t.keys
  and old_meta = t.meta
  and old_mask = t.mask
  and old_fine = t.fine in
  let cap = Array.length old_keys * 2 in
  let nsock = t.nsock in
  t.keys <- Array.make cap (-1);
  t.meta <- Array.make cap 0;
  t.mask <- Array.make cap 0;
  if nsock > 0 then t.fine <- Array.make (cap * nsock) 0;
  t.shift <- t.shift - 1;
  for i = 0 to Array.length old_keys - 1 do
    let blk = old_keys.(i) in
    if blk >= 0 then begin
      let j = probe t blk in
      t.keys.(j) <- blk;
      t.meta.(j) <- old_meta.(i);
      t.mask.(j) <- old_mask.(i);
      if nsock > 0 then Array.blit old_fine (i * nsock) t.fine (j * nsock) nsock
    end
  done

let rec entry t blk : slot =
  let i = probe t blk in
  if Array.unsafe_get t.keys i = blk then i
  else if 2 * (t.used + 1) > Array.length t.keys then begin
    grow t;
    entry t blk
  end
  else begin
    t.keys.(i) <- blk;
    (* meta, mask and fine are already 0 = invalid: never mutated since
       create or grow, because set_invalid resets them. *)
    t.used <- t.used + 1;
    i
  end

let find t blk : slot =
  let i = probe t blk in
  if Array.unsafe_get t.keys i = blk then i else no_slot

(* Pure probe for the sharded engine's helper domains: pull the directory
   word behind a pending miss toward the calling core's host cache
   without inserting, growing or mutating anything. Like Itab.find_or it
   snapshots the key array once and masks the start index against that
   snapshot, so racing a concurrent [grow] on the owning lane can yield a
   stale answer but never an out-of-bounds access; the snapshot is at
   least half empty (the growth invariant), so the scan terminates. The
   result is advisory and must only feed a sink. *)
let prefetch t blk =
  let keys = t.keys and meta = t.meta in
  let m = Array.length keys - 1 in
  let i = ref ((blk * factor) lsr t.shift land m) in
  while
    let k = Array.unsafe_get keys !i in
    k <> blk && k <> -1
  do
    i := (!i + 1) land m
  done;
  if Array.unsafe_get keys !i = blk && !i < Array.length meta then
    Array.unsafe_get meta !i
  else 0

let block t (s : slot) = t.keys.(s)

(* --- packed fields --------------------------------------------------------- *)

let state t (s : slot) : States.dstate =
  match t.meta.(s) land 7 with
  | 0 -> States.D_I
  | 1 -> States.D_S
  | 2 -> States.D_E
  | 3 -> States.D_M
  | _ -> States.D_W

let state_code = function
  | States.D_I -> 0
  | States.D_S -> 1
  | States.D_E -> 2
  | States.D_M -> 3
  | States.D_W -> 4

let set_state t (s : slot) st =
  t.meta.(s) <- t.meta.(s) land lnot 7 lor state_code st

let owner t (s : slot) = (t.meta.(s) lsr 4) - 1
let set_owner t (s : slot) o = t.meta.(s) <- t.meta.(s) land 15 lor ((o + 1) lsl 4)
let w_multi t (s : slot) = t.meta.(s) land 8 <> 0

let set_w_multi t (s : slot) b =
  t.meta.(s) <- (if b then t.meta.(s) lor 8 else t.meta.(s) land lnot 8)

(* --- sharer set ------------------------------------------------------------ *)

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

(* Call [f] on the index (offset by [base]) of every set bit of [word],
   ascending. Empty byte spans are skipped in one branch, so walking a
   sparse word costs its byte count, not its bit count. *)
let iter_bits word base f =
  let m = ref word and c = ref base in
  while !m <> 0 do
    if !m land 0xFF = 0 then begin
      m := !m lsr 8;
      c := !c + 8
    end
    else begin
      if !m land 1 = 1 then f !c;
      m := !m lsr 1;
      incr c
    end
  done

let sharer_add t (s : slot) core =
  if t.nsock = 0 then t.mask.(s) <- t.mask.(s) lor (1 lsl core)
  else begin
    let sk = socket_of t core in
    let j = (s * t.nsock) + sk in
    t.fine.(j) <- t.fine.(j) lor (1 lsl lane_of t core);
    t.mask.(s) <- t.mask.(s) lor (1 lsl sk)
  end

let sharer_remove t (s : slot) core =
  if t.nsock = 0 then t.mask.(s) <- t.mask.(s) land lnot (1 lsl core)
  else begin
    let sk = socket_of t core in
    let j = (s * t.nsock) + sk in
    let w = t.fine.(j) land lnot (1 lsl lane_of t core) in
    t.fine.(j) <- w;
    if w = 0 then t.mask.(s) <- t.mask.(s) land lnot (1 lsl sk)
  end

let sharer_mem t (s : slot) core =
  if t.nsock = 0 then t.mask.(s) land (1 lsl core) <> 0
  else
    t.fine.((s * t.nsock) + socket_of t core) land (1 lsl lane_of t core) <> 0

let sharers_clear t (s : slot) =
  (if t.nsock > 0 then
     let base = s * t.nsock in
     iter_bits t.mask.(s) 0 (fun sk -> t.fine.(base + sk) <- 0));
  t.mask.(s) <- 0

(* Invariant: in hierarchical mode a coarse bit is set iff its fine word
   is nonzero, so emptiness is one load in either layout. *)
let sharers_empty t (s : slot) = t.mask.(s) = 0

let sharer_count t (s : slot) =
  if t.nsock = 0 then popcount t.mask.(s)
  else begin
    let base = s * t.nsock in
    let n = ref 0 in
    iter_bits t.mask.(s) 0 (fun sk -> n := !n + popcount t.fine.(base + sk));
    !n
  end

(* Ascending core id: sockets ascending by the coarse mask, then each
   socket's fine word ascending (flat mode is the one-word case). *)
let sharer_iter t (s : slot) f =
  if t.nsock = 0 then iter_bits t.mask.(s) 0 f
  else begin
    let base = s * t.nsock and cps = t.cps in
    iter_bits t.mask.(s) 0 (fun sk ->
        iter_bits t.fine.(base + sk) (sk * cps) f)
  end

let sharers t (s : slot) =
  let acc = ref [] in
  sharer_iter t s (fun c -> acc := c :: !acc);
  List.rev !acc

(* --- whole-entry operations ------------------------------------------------ *)

let set_invalid t (s : slot) =
  t.meta.(s) <- 0;
  sharers_clear t s

let holders t (s : slot) =
  match state t s with
  | States.D_I -> []
  | States.D_E | States.D_M ->
      let o = owner t s in
      if o >= 0 then [ o ] else []
  | States.D_S | States.D_W -> sharers t s

let iter t f =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let blk = Array.unsafe_get keys i in
    if blk >= 0 then f blk i
  done

let copy (t : t) : t =
  {
    keys = Array.copy t.keys;
    meta = Array.copy t.meta;
    mask = Array.copy t.mask;
    fine = (if t.nsock > 0 then Array.copy t.fine else [||]);
    used = t.used;
    shift = t.shift;
    nsock = t.nsock;
    cps = t.cps;
    cps_shift = t.cps_shift;
  }

(* Snapshot every slot array wholesale — both the flat and the
   hierarchical sharer layouts are plain int arrays, so this is [copy]
   through a byte buffer. The geometry fields (nsock/cps) are fixed by
   [create] and only validated on restore. *)
let save (t : t) w =
  let module B = Warden_util.Bin in
  B.w_int w t.nsock;
  B.w_int w t.cps;
  B.w_int w t.used;
  B.w_int w t.shift;
  B.w_int_array w t.keys;
  B.w_int_array w t.meta;
  B.w_int_array w t.mask;
  B.w_int_array w t.fine

let restore (t : t) r =
  let module B = Warden_util.Bin in
  let nsock = B.r_int r and cps = B.r_int r in
  if nsock <> t.nsock || cps <> t.cps then
    B.corrupt "Dirstate: geometry mismatch";
  t.used <- B.r_int r;
  t.shift <- B.r_int r;
  t.keys <- B.r_int_array r;
  t.meta <- B.r_int_array r;
  t.mask <- B.r_int_array r;
  t.fine <- B.r_int_array r;
  let cap = Array.length t.keys in
  if
    cap = 0
    || cap land (cap - 1) <> 0
    || Array.length t.meta <> cap
    || Array.length t.mask <> cap
    || Array.length t.fine <> (if t.nsock > 0 then cap * t.nsock else 0)
  then B.corrupt "Dirstate: inconsistent arrays"
