open Warden_util

(* Flat open-addressing directory. One probe per request instead of a
   Hashtbl bucket walk, and an entry is three immediate ints in parallel
   arrays — no per-entry record, no boxed sharer set on the hot path.

   meta word layout (per slot):
     bits 0-2   directory state (I=0 S=1 E=2 M=3 W=4)
     bit  3     w_multi
     bits 4+    owner + 1 (0 = no owner)
   A fresh entry is the integer 0: D_I, no owner, not multi.

   Sharers are an int bitmask covering cores 0..62 (every Table-2 topology
   fits: the largest is 8 sockets x 12 cores = 96 only in the scaling
   study, so cores >= 63 spill into a side table of Bitsets keyed by
   BLOCK, which keeps spill entries valid across rehashes).

   The directory is ideal (never evicts), so there is no deletion and no
   tombstones: linear probing terminates at the first empty slot. *)

type t = {
  mutable keys : int array; (* block id per slot; -1 = empty *)
  mutable meta : int array;
  mutable mask : int array; (* sharer bits for cores 0..62 *)
  mutable used : int;
  mutable shift : int; (* 63 - log2 capacity *)
  spill : (int, Bitset.t) Hashtbl.t; (* blk -> sharers >= spill_base *)
}

type slot = int

let no_slot = -1
let spill_base = 63
let initial_lg = 12

(* Odd 63-bit multiplier (SplitMix finalizer constant); the top bits of
   blk * factor index the table. *)
let factor = 0x2545F4914F6CDD1D

let create () : t =
  {
    keys = Array.make (1 lsl initial_lg) (-1);
    meta = Array.make (1 lsl initial_lg) 0;
    mask = Array.make (1 lsl initial_lg) 0;
    used = 0;
    shift = 63 - initial_lg;
    spill = Hashtbl.create 4;
  }

(* First slot holding [blk] or empty, scanning the probe sequence. *)
let probe t blk =
  let keys = t.keys in
  let m = Array.length keys - 1 in
  let i = ref ((blk * factor) lsr t.shift) in
  while
    let k = Array.unsafe_get keys !i in
    k <> blk && k <> -1
  do
    i := (!i + 1) land m
  done;
  !i

let grow t =
  let old_keys = t.keys and old_meta = t.meta and old_mask = t.mask in
  let cap = Array.length old_keys * 2 in
  t.keys <- Array.make cap (-1);
  t.meta <- Array.make cap 0;
  t.mask <- Array.make cap 0;
  t.shift <- t.shift - 1;
  for i = 0 to Array.length old_keys - 1 do
    let blk = old_keys.(i) in
    if blk >= 0 then begin
      let j = probe t blk in
      t.keys.(j) <- blk;
      t.meta.(j) <- old_meta.(i);
      t.mask.(j) <- old_mask.(i)
    end
  done

let rec entry t blk : slot =
  let i = probe t blk in
  if Array.unsafe_get t.keys i = blk then i
  else if 2 * (t.used + 1) > Array.length t.keys then begin
    grow t;
    entry t blk
  end
  else begin
    t.keys.(i) <- blk;
    (* meta and mask are already 0 = invalid: never mutated since create
       or grow, because set_invalid resets them. *)
    t.used <- t.used + 1;
    i
  end

let find t blk : slot =
  let i = probe t blk in
  if Array.unsafe_get t.keys i = blk then i else no_slot

(* Pure probe for the sharded engine's helper domains: pull the directory
   word behind a pending miss toward the calling core's host cache
   without inserting, growing or mutating anything. Like Itab.find_or it
   snapshots the key array once and masks the start index against that
   snapshot, so racing a concurrent [grow] on the owning lane can yield a
   stale answer but never an out-of-bounds access; the snapshot is at
   least half empty (the growth invariant), so the scan terminates. The
   result is advisory and must only feed a sink. *)
let prefetch t blk =
  let keys = t.keys and meta = t.meta in
  let m = Array.length keys - 1 in
  let i = ref ((blk * factor) lsr t.shift land m) in
  while
    let k = Array.unsafe_get keys !i in
    k <> blk && k <> -1
  do
    i := (!i + 1) land m
  done;
  if Array.unsafe_get keys !i = blk && !i < Array.length meta then
    Array.unsafe_get meta !i
  else 0

let block t (s : slot) = t.keys.(s)

(* --- packed fields --------------------------------------------------------- *)

let state t (s : slot) : States.dstate =
  match t.meta.(s) land 7 with
  | 0 -> States.D_I
  | 1 -> States.D_S
  | 2 -> States.D_E
  | 3 -> States.D_M
  | _ -> States.D_W

let state_code = function
  | States.D_I -> 0
  | States.D_S -> 1
  | States.D_E -> 2
  | States.D_M -> 3
  | States.D_W -> 4

let set_state t (s : slot) st =
  t.meta.(s) <- t.meta.(s) land lnot 7 lor state_code st

let owner t (s : slot) = (t.meta.(s) lsr 4) - 1
let set_owner t (s : slot) o = t.meta.(s) <- t.meta.(s) land 15 lor ((o + 1) lsl 4)
let w_multi t (s : slot) = t.meta.(s) land 8 <> 0

let set_w_multi t (s : slot) b =
  t.meta.(s) <- (if b then t.meta.(s) lor 8 else t.meta.(s) land lnot 8)

(* --- sharer set ------------------------------------------------------------ *)

let spill_of t (s : slot) =
  if Hashtbl.length t.spill = 0 then None
  else Hashtbl.find_opt t.spill t.keys.(s)

let sharer_add t (s : slot) core =
  if core < spill_base then t.mask.(s) <- t.mask.(s) lor (1 lsl core)
  else
    let bs =
      match spill_of t s with
      | Some bs -> bs
      | None ->
          let bs = Bitset.create () in
          Hashtbl.add t.spill t.keys.(s) bs;
          bs
    in
    Bitset.add bs core

let sharer_remove t (s : slot) core =
  if core < spill_base then t.mask.(s) <- t.mask.(s) land lnot (1 lsl core)
  else match spill_of t s with Some bs -> Bitset.remove bs core | None -> ()

let sharer_mem t (s : slot) core =
  if core < spill_base then t.mask.(s) land (1 lsl core) <> 0
  else match spill_of t s with Some bs -> Bitset.mem bs core | None -> false

let sharers_clear t (s : slot) =
  t.mask.(s) <- 0;
  if Hashtbl.length t.spill > 0 then Hashtbl.remove t.spill t.keys.(s)

let sharers_empty t (s : slot) =
  t.mask.(s) = 0
  && match spill_of t s with Some bs -> Bitset.is_empty bs | None -> true

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

let sharer_count t (s : slot) =
  popcount t.mask.(s)
  + match spill_of t s with Some bs -> Bitset.cardinal bs | None -> 0

(* Ascending core id: mask bits first (cores 0..62), then the spill set
   (cores >= 63, itself ascending). *)
let sharer_iter t (s : slot) f =
  let m = ref t.mask.(s) and c = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then f !c;
    m := !m lsr 1;
    incr c
  done;
  match spill_of t s with Some bs -> Bitset.iter bs f | None -> ()

let sharers t (s : slot) =
  let acc = ref [] in
  sharer_iter t s (fun c -> acc := c :: !acc);
  List.rev !acc

(* --- whole-entry operations ------------------------------------------------ *)

let set_invalid t (s : slot) =
  t.meta.(s) <- 0;
  sharers_clear t s

let holders t (s : slot) =
  match state t s with
  | States.D_I -> []
  | States.D_E | States.D_M ->
      let o = owner t s in
      if o >= 0 then [ o ] else []
  | States.D_S | States.D_W -> sharers t s

let iter t f =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let blk = Array.unsafe_get keys i in
    if blk >= 0 then f blk i
  done

let copy (t : t) : t =
  let spill = Hashtbl.create (Hashtbl.length t.spill) in
  Hashtbl.iter (fun blk bs -> Hashtbl.add spill blk (Bitset.copy bs)) t.spill;
  {
    keys = Array.copy t.keys;
    meta = Array.copy t.meta;
    mask = Array.copy t.mask;
    used = t.used;
    shift = t.shift;
    spill;
  }
