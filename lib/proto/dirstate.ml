open Warden_util

type entry = {
  mutable state : States.dstate;
  mutable owner : int;
  sharers : Bitset.t;
  mutable w_multi : bool;
}

type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 4096

let entry t blk =
  match Hashtbl.find_opt t blk with
  | Some e -> e
  | None ->
      let e =
        { state = States.D_I; owner = -1; sharers = Bitset.create (); w_multi = false }
      in
      Hashtbl.add t blk e;
      e

let find t blk = Hashtbl.find_opt t blk

let copy (t : t) : t =
  let fresh = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun blk e ->
      Hashtbl.add fresh blk
        {
          state = e.state;
          owner = e.owner;
          sharers = Bitset.copy e.sharers;
          w_multi = e.w_multi;
        })
    t;
  fresh

let iter t f = Hashtbl.iter f t

let set_invalid e =
  e.state <- States.D_I;
  e.owner <- -1;
  e.w_multi <- false;
  Bitset.clear e.sharers

let holders e =
  match e.state with
  | States.D_I -> []
  | States.D_E | States.D_M -> if e.owner >= 0 then [ e.owner ] else []
  | States.D_S | States.D_W -> Bitset.elements e.sharers
