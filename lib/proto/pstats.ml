type t = {
  mutable dir_accesses : int;
  mutable invalidations : int;
  mutable downgrades : int;
  mutable fwds : int;
  mutable msgs_ctl_intra : int;
  mutable msgs_ctl_inter : int;
  mutable msgs_data_intra : int;
  mutable msgs_data_inter : int;
  mutable writebacks : int;
  mutable l3_hits : int;
  mutable l3_misses : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable zero_fills : int;
  mutable ward_grants : int;
  mutable ward_adds : int;
  mutable ward_removes : int;
  mutable ward_rejects : int;
  mutable recon_blocks : int;
  mutable recon_flushes : int;
  mutable bus_txns : int;
  mutable bus_arb_cycles : int;
  mutable bus_busy_cycles : int;
  mutable snoops : int;
  mutable c2c_transfers : int;
  mutable self_invs : int;
  mutable self_downs : int;
  mutable acquires : int;
  mutable releases : int;
}

let create () =
  {
    dir_accesses = 0;
    invalidations = 0;
    downgrades = 0;
    fwds = 0;
    msgs_ctl_intra = 0;
    msgs_ctl_inter = 0;
    msgs_data_intra = 0;
    msgs_data_inter = 0;
    writebacks = 0;
    l3_hits = 0;
    l3_misses = 0;
    dram_reads = 0;
    dram_writes = 0;
    zero_fills = 0;
    ward_grants = 0;
    ward_adds = 0;
    ward_removes = 0;
    ward_rejects = 0;
    recon_blocks = 0;
    recon_flushes = 0;
    bus_txns = 0;
    bus_arb_cycles = 0;
    bus_busy_cycles = 0;
    snoops = 0;
    c2c_transfers = 0;
    self_invs = 0;
    self_downs = 0;
    acquires = 0;
    releases = 0;
  }

let save t w =
  let module B = Warden_util.Bin in
  B.w_int w t.dir_accesses;
  B.w_int w t.invalidations;
  B.w_int w t.downgrades;
  B.w_int w t.fwds;
  B.w_int w t.msgs_ctl_intra;
  B.w_int w t.msgs_ctl_inter;
  B.w_int w t.msgs_data_intra;
  B.w_int w t.msgs_data_inter;
  B.w_int w t.writebacks;
  B.w_int w t.l3_hits;
  B.w_int w t.l3_misses;
  B.w_int w t.dram_reads;
  B.w_int w t.dram_writes;
  B.w_int w t.zero_fills;
  B.w_int w t.ward_grants;
  B.w_int w t.ward_adds;
  B.w_int w t.ward_removes;
  B.w_int w t.ward_rejects;
  B.w_int w t.recon_blocks;
  B.w_int w t.recon_flushes;
  B.w_int w t.bus_txns;
  B.w_int w t.bus_arb_cycles;
  B.w_int w t.bus_busy_cycles;
  B.w_int w t.snoops;
  B.w_int w t.c2c_transfers;
  B.w_int w t.self_invs;
  B.w_int w t.self_downs;
  B.w_int w t.acquires;
  B.w_int w t.releases

let restore t r =
  let module B = Warden_util.Bin in
  t.dir_accesses <- B.r_int r;
  t.invalidations <- B.r_int r;
  t.downgrades <- B.r_int r;
  t.fwds <- B.r_int r;
  t.msgs_ctl_intra <- B.r_int r;
  t.msgs_ctl_inter <- B.r_int r;
  t.msgs_data_intra <- B.r_int r;
  t.msgs_data_inter <- B.r_int r;
  t.writebacks <- B.r_int r;
  t.l3_hits <- B.r_int r;
  t.l3_misses <- B.r_int r;
  t.dram_reads <- B.r_int r;
  t.dram_writes <- B.r_int r;
  t.zero_fills <- B.r_int r;
  t.ward_grants <- B.r_int r;
  t.ward_adds <- B.r_int r;
  t.ward_removes <- B.r_int r;
  t.ward_rejects <- B.r_int r;
  t.recon_blocks <- B.r_int r;
  t.recon_flushes <- B.r_int r;
  t.bus_txns <- B.r_int r;
  t.bus_arb_cycles <- B.r_int r;
  t.bus_busy_cycles <- B.r_int r;
  t.snoops <- B.r_int r;
  t.c2c_transfers <- B.r_int r;
  t.self_invs <- B.r_int r;
  t.self_downs <- B.r_int r;
  t.acquires <- B.r_int r;
  t.releases <- B.r_int r

let total_msgs t =
  t.msgs_ctl_intra + t.msgs_ctl_inter + t.msgs_data_intra + t.msgs_data_inter

let copy t = { t with dir_accesses = t.dir_accesses }

let diff ~baseline t =
  {
    dir_accesses = baseline.dir_accesses - t.dir_accesses;
    invalidations = baseline.invalidations - t.invalidations;
    downgrades = baseline.downgrades - t.downgrades;
    fwds = baseline.fwds - t.fwds;
    msgs_ctl_intra = baseline.msgs_ctl_intra - t.msgs_ctl_intra;
    msgs_ctl_inter = baseline.msgs_ctl_inter - t.msgs_ctl_inter;
    msgs_data_intra = baseline.msgs_data_intra - t.msgs_data_intra;
    msgs_data_inter = baseline.msgs_data_inter - t.msgs_data_inter;
    writebacks = baseline.writebacks - t.writebacks;
    l3_hits = baseline.l3_hits - t.l3_hits;
    l3_misses = baseline.l3_misses - t.l3_misses;
    dram_reads = baseline.dram_reads - t.dram_reads;
    dram_writes = baseline.dram_writes - t.dram_writes;
    zero_fills = baseline.zero_fills - t.zero_fills;
    ward_grants = baseline.ward_grants - t.ward_grants;
    ward_adds = baseline.ward_adds - t.ward_adds;
    ward_removes = baseline.ward_removes - t.ward_removes;
    ward_rejects = baseline.ward_rejects - t.ward_rejects;
    recon_blocks = baseline.recon_blocks - t.recon_blocks;
    recon_flushes = baseline.recon_flushes - t.recon_flushes;
    bus_txns = baseline.bus_txns - t.bus_txns;
    bus_arb_cycles = baseline.bus_arb_cycles - t.bus_arb_cycles;
    bus_busy_cycles = baseline.bus_busy_cycles - t.bus_busy_cycles;
    snoops = baseline.snoops - t.snoops;
    c2c_transfers = baseline.c2c_transfers - t.c2c_transfers;
    self_invs = baseline.self_invs - t.self_invs;
    self_downs = baseline.self_downs - t.self_downs;
    acquires = baseline.acquires - t.acquires;
    releases = baseline.releases - t.releases;
  }
