(* The paper's running example (Figure 4): a recursive parallel prime
   sieve whose flags array races benignly — concurrent tasks write the same
   value to the same byte. The example runs the sieve under both protocols,
   checks the outputs agree, and uses the trace oracles to demonstrate:

   - the program is disentangled (Definition 1), and
   - every page the runtime marks really has the WARD property (§3.1) —
     including the benign same-value WAWs, which the oracle allows.

   It also classifies the three events of Figure 3 with the offline WARD
   checker.

   Run with:  dune exec examples/prime_sieve.exe *)

open Warden_machine
open Warden_sim
open Warden_runtime
open Warden_trace

(* In-simulator sieve, as in Figure 4 (flags.(i) = 1 iff i is prime). *)
let rec sieve_upto n =
  let flags = Sarray.create ~len:(n + 1) ~elt_bytes:1 in
  Par.parfor ~grain:1024 0 (n + 1) (fun i -> Sarray.set flags i 1L);
  Sarray.set flags 0 0L;
  if n >= 1 then Sarray.set flags 1 0L;
  if n >= 4 then begin
    let sqrt_n = int_of_float (sqrt (float_of_int n)) in
    let sqrtflags = sieve_upto sqrt_n in
    Par.parfor ~grain:1 0 (sqrt_n + 1) (fun p ->
        if p >= 2 && Sarray.get sqrtflags p = 1L then
          Par.parfor ~grain:2048 2 ((n / p) + 1) (fun m ->
              Sarray.set flags (p * m) 0L))
  end;
  flags

let count_primes ms flags =
  let c = ref 0 in
  for i = 0 to Sarray.length flags - 1 do
    if Sarray.peek_host ms flags i = 1L then incr c
  done;
  !c

let run_once proto =
  let eng = Engine.create (Config.single_socket ()) ~proto in
  let (flags, report) =
    Oracle.with_oracle (fun () ->
        let flags, _ = Par.run eng (fun () -> sieve_upto 50_000) in
        flags)
  in
  let ms = Engine.memsys eng in
  Memsys.flush_all ms;
  (count_primes ms flags, report, (Memsys.sstats ms).Sstats.cycles)

let () =
  print_endline "Figure 4: parallel prime sieve with benign WAW races.\n";
  let n_mesi, _, cy_mesi = run_once `Mesi in
  let n_warden, report, cy_warden = run_once `Warden in
  Printf.printf "primes below 50000: MESI says %d, WARDen says %d (pi(50k)=5133)\n"
    n_mesi n_warden;
  Printf.printf "WARDen speedup: %.2fx\n\n"
    (float_of_int cy_mesi /. float_of_int cy_warden);
  Printf.printf
    "oracle: %d accesses observed, %.1f%% inside marked WARD regions\n\
    \ (the conservative policy of 4.1 marks only fresh leaf-heap pages;\n\
    \ the flags array lives in ancestor heaps, so its benign WAW races are\n\
    \ WARD by the property yet unmarked by the runtime)\n"
    report.Oracle.accesses
    (100. *. Oracle.ward_fraction report);
  (match Oracle.check_clean report with
  | Ok () ->
      print_endline
        "oracle: disentangled, and every marked page had the WARD property"
  | Error msg -> Printf.printf "oracle: VIOLATIONS\n%s\n" msg);

  (* Figure 3's three events, classified offline. *)
  print_endline "\nFigure 3 classification by the offline WARD checker:";
  let open Wardprop in
  let show name events =
    let verdict =
      match classify events with
      | Ward -> "WARD"
      | Raw_dependence { writer; reader; _ } ->
          Printf.sprintf "not WARD (RAW: thread %d wrote, thread %d read)"
            writer reader
      | Waw_ordered { first; second; _ } ->
          Printf.sprintf "not WARD (ordered WAW between threads %d and %d)"
            first second
    in
    Printf.printf "  %-35s -> %s\n" name verdict
  in
  show "event 1: write i, then read j (RAW)"
    [
      { thread = 0; write = true; addr = 0; value = 1L };
      { thread = 1; write = false; addr = 0; value = 0L };
    ];
  show "event 2: WAW with different values"
    [
      { thread = 0; write = true; addr = 0; value = 1L };
      { thread = 1; write = true; addr = 0; value = 2L };
    ];
  show "event 3: WAW writing the same value"
    [
      { thread = 0; write = true; addr = 0; value = 1L };
      { thread = 1; write = true; addr = 0; value = 1L };
    ]
