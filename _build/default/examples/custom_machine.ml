(* Machine-space exploration (§7.3): run one benchmark across machine
   configurations — single socket, dual socket, a hypothetical many-socket
   part, and a disaggregated two-node system — and watch WARDen's advantage
   grow with the cost of coherence.

   Run with:  dune exec examples/custom_machine.exe *)

open Warden_machine
open Warden_harness

let () =
  let spec = Option.get (Warden_pbbs.Suite.find "dmm") in
  let machines =
    [
      Config.single_socket ();
      Config.dual_socket ();
      Config.many_socket ~sockets:4 ();
      Config.disaggregated ();
      (* A custom point: disaggregation with a faster (200 ns) fabric. *)
      {
        (Config.disaggregated ()) with
        Config.name = "disaggregated-200ns";
        inter_socket_lat = 660;
      };
    ]
  in
  Printf.printf "dmm across machine configurations (quick scale):\n\n%!";
  Printf.printf "%-22s %-9s %-12s %-12s\n" "machine" "speedup" "MESI cycles"
    "WARDen cycles";
  List.iter
    (fun config ->
      let pair = Exp.run_pair ~quick:true ~config spec in
      Printf.printf "%-22s %-9.2f %-12d %-12d\n%!" config.Config.name
        (Exp.speedup pair) pair.Exp.mesi.Exp.cycles pair.Exp.warden.Exp.cycles)
    machines
