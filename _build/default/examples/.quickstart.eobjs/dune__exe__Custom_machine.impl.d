examples/custom_machine.ml: Config Exp List Option Printf Warden_harness Warden_machine Warden_pbbs
