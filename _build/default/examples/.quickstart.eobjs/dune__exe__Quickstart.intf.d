examples/quickstart.mli:
