examples/prime_sieve.mli:
