examples/bfs_search.mli:
