examples/bfs_search.ml: Config Engine Int64 List Memsys Par Printf Sarray Sstats Warden_machine Warden_runtime Warden_sim Warden_util
