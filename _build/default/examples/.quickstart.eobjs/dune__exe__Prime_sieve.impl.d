examples/prime_sieve.ml: Config Engine Memsys Oracle Par Printf Sarray Sstats Warden_machine Warden_runtime Warden_sim Warden_trace Wardprop
