examples/quickstart.ml: Config Engine Memsys Par Printf Sarray Sstats Warden_machine Warden_proto Warden_runtime Warden_sim
