(* Engine + memory system tests: single-thread semantics, the Figure-6
   ping-pong microbenchmark across thread placements, and a randomized
   golden-model comparison of MESI against a flat reference memory. *)

open Warden_machine
open Warden_sim
module Ops = Engine.Ops

let mk ?(proto = `Mesi) cfg = Engine.create cfg ~proto

let run1 ?proto cfg body =
  let eng = mk ?proto cfg in
  let ms = Engine.memsys eng in
  let cycles = Engine.run eng [| (fun () -> body ms) |] in
  (eng, ms, cycles)

let test_load_store_roundtrip () =
  let _, ms, _ =
    run1 (Config.single_socket ()) (fun ms ->
        let a = Memsys.alloc ms ~bytes:64 ~align:8 in
        Ops.store a ~size:8 42L;
        Alcotest.(check int64) "read back" 42L (Ops.load a ~size:8);
        Ops.store (a + 8) ~size:4 0xDEADBEEFL;
        Alcotest.(check int64) "u32" 0xDEADBEEFL (Ops.load (a + 8) ~size:4);
        Ops.store (a + 16) ~size:1 0x7FL;
        Alcotest.(check int64) "u8" 0x7FL (Ops.load (a + 16) ~size:1);
        (* Partial overwrite: low byte only. *)
        Ops.store a ~size:1 0xFFL;
        Alcotest.(check int64) "merged" 0xFFL (Int64.logand (Ops.load a ~size:8) 0xFFL))
  in
  Memsys.flush_all ms;
  ()

let test_flush_reaches_store () =
  let saved = ref 0 in
  let _, ms, _ =
    run1 (Config.single_socket ()) (fun ms ->
        let a = Memsys.alloc ms ~bytes:8 ~align:8 in
        Ops.store a ~size:8 99L;
        saved := a)
  in
  Alcotest.(check int64) "not yet in store" 0L (Memsys.peek ms !saved ~size:8);
  Memsys.flush_all ms;
  Alcotest.(check int64) "flushed" 99L (Memsys.peek ms !saved ~size:8)

let test_latencies_sane () =
  (* A load hitting L1 costs l1_lat; a cold load costs more. *)
  let cfg = Config.single_socket () in
  let _, ms, cycles =
    run1 cfg (fun ms ->
        let a = Memsys.alloc ms ~bytes:8 ~align:8 in
        ignore (Ops.load a ~size:8);
        ignore (Ops.load a ~size:8))
  in
  ignore ms;
  (* cold miss (l2 + l3 + dram) then an L1 hit *)
  Alcotest.(check bool) "cold load slower than 2 hits" true (cycles > 2 * cfg.Config.l1_lat);
  let s = Memsys.sstats ms in
  Alcotest.(check int) "one l1 hit" 1 s.Sstats.l1_hits;
  Alcotest.(check int) "one miss" 1 s.Sstats.priv_misses

(* Figure 6: two threads ping-pong a cache block. Returns cycles/iter. *)
let pingpong cfg ~tid_a ~tid_b ~iters =
  let eng = mk cfg in
  let ms = Engine.memsys eng in
  let buf = Memsys.alloc ms ~bytes:8 ~align:8 in
  Memsys.poke ms buf ~size:8 1L;
  let kernel my partner () =
    for _ = 1 to iters do
      let rec wait () =
        Ops.tick 1;
        if Ops.load buf ~size:8 <> partner then wait ()
      in
      wait ();
      Ops.store buf ~size:8 my;
      Ops.tick 1
    done
  in
  let nthreads = max tid_a tid_b + 1 in
  let bodies =
    Array.init nthreads (fun tid ->
        if tid = tid_a then kernel 2L 1L
        else if tid = tid_b then kernel 1L 2L
        else fun () -> ())
  in
  let cycles = Engine.run eng bodies in
  float_of_int cycles /. float_of_int iters

let test_pingpong_ordering () =
  let same_core = pingpong (Config.single_socket ~threads_per_core:2 ()) ~tid_a:0 ~tid_b:1 ~iters:200 in
  let same_socket = pingpong (Config.single_socket ()) ~tid_a:0 ~tid_b:1 ~iters:200 in
  let cross_socket = pingpong (Config.dual_socket ()) ~tid_a:0 ~tid_b:12 ~iters:200 in
  Alcotest.(check bool)
    (Printf.sprintf "same core (%.1f) < same socket (%.1f)" same_core same_socket)
    true
    (same_core < same_socket);
  Alcotest.(check bool)
    (Printf.sprintf "same socket (%.1f) < cross socket (%.1f)" same_socket cross_socket)
    true
    (same_socket < cross_socket)

(* Golden model: random single-thread ops must match a host array. *)
let test_golden_single_thread () =
  let cfg = Config.single_socket () in
  let rng = Warden_util.Splitmix.make 0xC0FFEEL in
  let n = 4096 in
  let _, ms, _ =
    run1 cfg (fun ms ->
        let base = Memsys.alloc ms ~bytes:(n * 8) ~align:64 in
        let ref_mem = Array.make n 0L in
        for _ = 1 to 20_000 do
          let i = Warden_util.Splitmix.int rng n in
          if Warden_util.Splitmix.bool rng then begin
            let v = Warden_util.Splitmix.next rng in
            Ops.store (base + (8 * i)) ~size:8 v;
            ref_mem.(i) <- v
          end
          else
            Alcotest.(check int64)
              "value matches reference" ref_mem.(i)
              (Ops.load (base + (8 * i)) ~size:8)
        done)
  in
  ignore ms

(* Golden model, multithreaded: threads own disjoint slices but share cache
   blocks at the boundaries (false sharing), stressing the protocol. *)
let golden_multi ~proto () =
  let cfg = Config.dual_socket () in
  let eng = mk ~proto cfg in
  let ms = Engine.memsys eng in
  let nthreads = 8 in
  let per = 512 in
  let base = Memsys.alloc ms ~bytes:(nthreads * per * 8) ~align:64 in
  let ref_mem = Array.make (nthreads * per) 0L in
  let body tid () =
    let rng = Warden_util.Splitmix.make (Int64.of_int (tid + 77)) in
    for _ = 1 to 4000 do
      let i = (tid * per) + Warden_util.Splitmix.int rng per in
      if Warden_util.Splitmix.bool rng then begin
        let v = Warden_util.Splitmix.next rng in
        Ops.store (base + (8 * i)) ~size:8 v;
        ref_mem.(i) <- v
      end
      else if Ops.load (base + (8 * i)) ~size:8 <> ref_mem.(i) then
        Alcotest.failf "thread %d read stale value at %d" tid i
    done
  in
  ignore (Engine.run eng (Array.init nthreads body));
  Memsys.flush_all ms;
  Array.iteri
    (fun i v ->
      Alcotest.(check int64)
        (Printf.sprintf "final memory at %d" i)
        v
        (Memsys.peek ms (base + (8 * i)) ~size:8))
    ref_mem

let test_rmw_cas () =
  let _, ms, _ =
    run1 (Config.single_socket ()) (fun ms ->
        let a = Memsys.alloc ms ~bytes:8 ~align:8 in
        Ops.store a ~size:8 5L;
        Alcotest.(check bool) "cas succeeds" true (Ops.cas a ~size:8 ~expected:5L ~desired:9L);
        Alcotest.(check bool) "cas fails" false (Ops.cas a ~size:8 ~expected:5L ~desired:1L);
        Alcotest.(check int64) "value" 9L (Ops.load a ~size:8);
        Alcotest.(check int64) "fetch_add old" 9L (Ops.fetch_add a ~size:8 3L);
        Alcotest.(check int64) "fetch_add new" 12L (Ops.load a ~size:8))
  in
  ignore ms

(* Shared counter incremented atomically from many threads. *)
(* The invariant auditor must pass after stressful runs under both
   protocols, and an artificially broken state must be caught (we cannot
   forge one through the public API, so we check the auditor's clean
   verdicts only on real executions). *)
let test_invariants_after_stress () =
  List.iter
    (fun proto ->
      let cfg = Config.dual_socket () in
      let eng = mk ~proto cfg in
      let ms = Engine.memsys eng in
      let nthreads = 12 in
      let a = Memsys.alloc ms ~bytes:(nthreads * 512 * 8) ~align:64 in
      let body tid () =
        let rng = Warden_util.Splitmix.make (Int64.of_int (tid * 31)) in
        for _ = 1 to 2000 do
          let i = Warden_util.Splitmix.int rng (nthreads * 512) in
          if Warden_util.Splitmix.bool rng then
            ignore (Ops.load (a + (8 * i)) ~size:8)
          else if i mod nthreads = tid then
            (* writes stay in per-thread slots: data-race free *)
            Ops.store (a + (8 * i)) ~size:8 (Int64.of_int i)
        done
      in
      ignore (Engine.run eng (Array.init nthreads body));
      match Memsys.check_invariants ms with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invariants violated under stress: %s" m)
    [ `Mesi; `Warden ]

let test_atomic_counter () =
  let cfg = Config.dual_socket () in
  let eng = mk cfg in
  let ms = Engine.memsys eng in
  let a = Memsys.alloc ms ~bytes:8 ~align:8 in
  let nthreads = 16 and per = 500 in
  let body _tid () =
    for _ = 1 to per do
      ignore (Ops.fetch_add a ~size:8 1L);
      Ops.tick 1
    done
  in
  ignore (Engine.run eng (Array.init nthreads body));
  Memsys.flush_all ms;
  Alcotest.(check int64)
    "all increments observed"
    (Int64.of_int (nthreads * per))
    (Memsys.peek ms a ~size:8)

let suite =
  [
    Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
    Alcotest.test_case "flush reaches store" `Quick test_flush_reaches_store;
    Alcotest.test_case "latencies sane" `Quick test_latencies_sane;
    Alcotest.test_case "pingpong placement ordering" `Quick test_pingpong_ordering;
    Alcotest.test_case "golden single thread" `Quick test_golden_single_thread;
    Alcotest.test_case "golden multithread mesi" `Quick (golden_multi ~proto:`Mesi);
    Alcotest.test_case "rmw and cas" `Quick test_rmw_cas;
    Alcotest.test_case "invariants after stress" `Quick test_invariants_after_stress;
    Alcotest.test_case "atomic counter" `Quick test_atomic_counter;
  ]

let () = Alcotest.run "warden-sim" [ ("sim", suite) ]
