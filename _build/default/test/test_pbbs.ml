(* Integration tests: every PBBS benchmark runs at a small scale under both
   protocols, its output verifies against a host-side reference, and the
   disentanglement / WARD oracles observe no violations. *)

open Warden_machine
open Warden_sim
open Warden_pbbs

let test_scale = function
  | "fib" -> 14
  | "make_array" -> 20_000
  | "primes" -> 4_000
  | "msort" -> 3_000
  | "dedup" -> 4_000
  | "dmm" -> 32
  | "nqueens" -> 7
  | "grep" -> 20_000
  | "tokens" -> 20_000
  | "palindrome" -> 4_000
  | "quickhull" -> 3_000
  | "ray" -> 24
  | "suffix_array" -> 500
  | "nn" -> 1_200
  | name -> Alcotest.failf "unknown benchmark %s" name

let run_one proto (spec : Spec.t) () =
  let eng = Engine.create (Config.single_socket ()) ~proto in
  let verified, report =
    Warden_trace.Oracle.with_oracle (fun () ->
        spec.Spec.run ~scale:(test_scale spec.Spec.name) ~seed:42L eng)
  in
  Alcotest.(check bool) (spec.Spec.name ^ " verified") true verified;
  (match Warden_sim.Memsys.check_invariants (Engine.memsys eng) with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "%s coherence invariants violated:\n%s" spec.Spec.name msg);
  match Warden_trace.Oracle.check_clean report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s oracle violations:\n%s" spec.Spec.name msg

let dual_socket_agreement (spec : Spec.t) () =
  (* Same program, dual socket, both protocols: both must verify. *)
  List.iter
    (fun proto ->
      let eng = Engine.create (Config.dual_socket ()) ~proto in
      let ok = spec.Spec.run ~scale:(test_scale spec.Spec.name) ~seed:7L eng in
      Alcotest.(check bool) (spec.Spec.name ^ " dual-socket verified") true ok)
    [ `Mesi; `Warden ]

let suite =
  List.concat_map
    (fun (spec : Spec.t) ->
      [
        Alcotest.test_case (spec.Spec.name ^ " mesi") `Quick (run_one `Mesi spec);
        Alcotest.test_case (spec.Spec.name ^ " warden") `Quick
          (run_one `Warden spec);
      ])
    Suite.all

let dual_suite =
  List.map
    (fun (spec : Spec.t) ->
      Alcotest.test_case (spec.Spec.name ^ " dual") `Slow
        (dual_socket_agreement spec))
    Suite.all

(* Each benchmark with a different seed: input generators must not be
   accidentally seed-independent, and verification must still hold. *)
let reseeded (spec : Spec.t) () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Warden in
  let ok = spec.Spec.run ~scale:(test_scale spec.Spec.name) ~seed:987654321L eng in
  Alcotest.(check bool) (spec.Spec.name ^ " verified with seed 2") true ok

let seed_suite =
  List.map
    (fun (spec : Spec.t) ->
      Alcotest.test_case (spec.Spec.name ^ " reseeded") `Quick (reseeded spec))
    Suite.all

(* Full-trace recording: every marked region across the whole suite must
   classify as WARD offline (stronger than the incremental oracle: it sees
   whole region lifetimes), and the access counts must be consistent. *)
let recorded (spec : Spec.t) () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Warden in
  let ok, _events, summary =
    let (ok, ()), events, summary =
      Warden_trace.Recorder.record (fun () ->
          (spec.Spec.run ~scale:(test_scale spec.Spec.name) ~seed:3L eng, ()))
    in
    ignore events;
    (ok, (), summary)
  in
  Alcotest.(check bool) (spec.Spec.name ^ " verified under recorder") true ok;
  Alcotest.(check bool) "consistent counters" true
    (summary.Warden_trace.Recorder.events
    = summary.Warden_trace.Recorder.reads + summary.Warden_trace.Recorder.writes
      + summary.Warden_trace.Recorder.rmws);
  match summary.Warden_trace.Recorder.ward_verdict with
  | `Ward -> ()
  | `Violations n ->
      Alcotest.failf "%s: %d region epochs violated WARD" spec.Spec.name n

let recorder_suite =
  List.map
    (fun (spec : Spec.t) ->
      Alcotest.test_case (spec.Spec.name ^ " recorded") `Quick (recorded spec))
    Suite.all

let () =
  Alcotest.run "warden-pbbs"
    [
      ("pbbs", suite);
      ("pbbs-dual", dual_suite);
      ("pbbs-seeds", seed_suite);
      ("pbbs-recorded", recorder_suite);
    ]
