(* Tests for the benchmark toolkit (Bkit) and the benchmarks' host-side
   reference implementations. *)

open Warden_machine
open Warden_sim
open Warden_runtime
open Warden_pbbs

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let in_run f =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Warden in
  fst (Par.run eng f)

(* --- pack2 ------------------------------------------------------------------ *)

let pack_roundtrip =
  qtest ~count:300 "pack2 roundtrips"
    QCheck2.Gen.(pair (int_range 0 0x3FFFFFFF) (int_range 0 0x3FFFFFFF))
    (fun (hi, lo) ->
      let p = Bkit.pack2 hi lo in
      Bkit.unpack_hi p = hi && Bkit.unpack_lo p = lo)

let pack_order =
  qtest ~count:300 "pack2 orders lexicographically"
    QCheck2.Gen.(
      pair
        (pair (int_range 0 100000) (int_range 0 100000))
        (pair (int_range 0 100000) (int_range 0 100000)))
    (fun ((a1, a2), (b1, b2)) ->
      let cmp_pair = compare (a1, a2) (b1, b2) in
      let cmp_packed = Int64.unsigned_compare (Bkit.pack2 a1 a2) (Bkit.pack2 b1 b2) in
      (cmp_pair = 0) = (cmp_packed = 0)
      && (cmp_pair < 0) = (cmp_packed < 0))

let test_pack_rejects_out_of_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Bkit.pack2") (fun () ->
      ignore (Bkit.pack2 (-1) 0))

(* --- host helpers -------------------------------------------------------------- *)

let test_is_sorted_checksum () =
  Alcotest.(check bool) "sorted" true (Bkit.is_sorted [| 1L; 2L; 2L; 9L |]);
  Alcotest.(check bool) "unsorted" false (Bkit.is_sorted [| 2L; 1L |]);
  (* Unsigned comparison: -1L is the largest value. *)
  Alcotest.(check bool) "unsigned order" true (Bkit.is_sorted [| 5L; -1L |]);
  let a = [| 3L; 1L; 2L |] and b = [| 2L; 3L; 1L |] in
  Alcotest.(check int64) "checksum order-insensitive" (Bkit.checksum a)
    (Bkit.checksum b);
  Alcotest.(check bool) "checksum discriminates" true
    (Bkit.checksum a <> Bkit.checksum [| 3L; 1L; 5L |])

(* --- in-simulator algorithms --------------------------------------------------- *)

let test_seq_sort () =
  in_run (fun () ->
      let ms = Par.memsys () in
      let a = Sarray.create ~len:200 ~elt_bytes:8 in
      Bkit.gen_ints ms a ~seed:5L ~bound:1000L;
      Bkit.seq_sort a ~lo:0 ~hi:200;
      let h = Bkit.host_array ms a in
      (* The flushless host view can be stale; read through the simulator. *)
      ignore h;
      let prev = ref Int64.min_int in
      let sorted = ref true in
      for i = 0 to 199 do
        let v = Sarray.get a i in
        if Int64.unsigned_compare !prev v > 0 && i > 0 then sorted := false;
        prev := v
      done;
      Alcotest.(check bool) "sorted in place" true !sorted)

let test_seq_sort_partial_range () =
  in_run (fun () ->
      let a = Sarray.create ~len:6 ~elt_bytes:8 in
      List.iteri (fun i v -> Sarray.set a i v) [ 9L; 5L; 4L; 3L; 2L; 1L ];
      Bkit.seq_sort a ~lo:1 ~hi:5;
      Alcotest.(check (list int64)) "only [1,5) sorted"
        [ 9L; 2L; 3L; 4L; 5L; 1L ]
        (List.init 6 (Sarray.get a)))

let test_merge_into () =
  in_run (fun () ->
      let mk l =
        let a = Sarray.create ~len:(List.length l) ~elt_bytes:8 in
        List.iteri (fun i v -> Sarray.set a i v) l;
        a
      in
      let dst = Sarray.create ~len:7 ~elt_bytes:8 in
      Bkit.merge_into ~src1:(mk [ 1L; 4L; 6L ]) ~src2:(mk [ 2L; 3L; 5L; 7L ]) ~dst;
      Alcotest.(check (list int64)) "merged"
        [ 1L; 2L; 3L; 4L; 5L; 6L; 7L ]
        (List.init 7 (Sarray.get dst)))

let test_msort_sorts () =
  in_run (fun () ->
      let ms = Par.memsys () in
      let a = Sarray.create ~len:1500 ~elt_bytes:8 in
      Bkit.gen_ints ms a ~seed:9L ~bound:Int64.max_int;
      let out = Bkit.msort ~grain:128 a in
      let ok = ref true in
      for i = 0 to 1498 do
        if Int64.unsigned_compare (Sarray.get out i) (Sarray.get out (i + 1)) > 0
        then ok := false
      done;
      Alcotest.(check bool) "sorted" true !ok;
      Alcotest.(check int) "length" 1500 (Sarray.length out))

let test_tabulate_leafy () =
  in_run (fun () ->
      let out =
        Bkit.tabulate_leafy ~grain:64 ~n:1000 ~elt_bytes:8 (fun i ->
            Int64.of_int (i * 3))
      in
      let ok = ref true in
      for i = 0 to 999 do
        if Sarray.get out i <> Int64.of_int (i * 3) then ok := false
      done;
      Alcotest.(check bool) "tabulated" true !ok)

let test_seq_scan_excl () =
  in_run (fun () ->
      let a = Sarray.create ~len:5 ~elt_bytes:8 in
      List.iteri (fun i v -> Sarray.set_i a i v) [ 3; 1; 4; 1; 5 ];
      let total = Bkit.seq_scan_excl a in
      Alcotest.(check int) "total" 14 total;
      Alcotest.(check (list int)) "exclusive prefix"
        [ 0; 3; 4; 8; 9 ]
        (List.init 5 (Sarray.get_i a)))

let test_mat_views () =
  in_run (fun () ->
      let m = Bkit.Mat.create ~n:4 in
      for i = 0 to 3 do
        for j = 0 to 3 do
          Bkit.Mat.set m i j (Int64.of_int ((10 * i) + j))
        done
      done;
      let q11 = Bkit.Mat.quad m 1 1 in
      Alcotest.(check int) "quad size" 2 q11.Bkit.Mat.n;
      Alcotest.(check int64) "quad (0,0) = m (2,2)" 22L (Bkit.Mat.get q11 0 0);
      Bkit.Mat.set q11 1 1 99L;
      Alcotest.(check int64) "writes through to m (3,3)" 99L (Bkit.Mat.get m 3 3))

(* --- benchmark host references -------------------------------------------------- *)

let test_host_sieve () =
  let flags = Bm_primes.host_sieve 30 in
  let primes =
    List.filter (fun i -> flags.(i)) (List.init 31 Fun.id)
  in
  Alcotest.(check (list int)) "primes to 30"
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ]
    primes

let test_host_nqueens () =
  List.iter
    (fun (n, expect) ->
      Alcotest.(check int) (Printf.sprintf "nqueens %d" n) expect
        (Bm_nqueens.host_count n))
    [ (4, 2); (5, 10); (6, 4); (7, 40); (8, 92) ]

let test_host_fib () =
  Alcotest.(check int) "fib 20" 6765 (Bm_fib.fib_seq 20)

let test_host_suffix_array () =
  let sa = Bm_suffix_array.host_suffix_array "banana" in
  Alcotest.(check (array int)) "banana" [| 5; 3; 1; 0; 4; 2 |] sa

let suite =
  [
    pack_roundtrip;
    pack_order;
    Alcotest.test_case "pack2 range" `Quick test_pack_rejects_out_of_range;
    Alcotest.test_case "is_sorted / checksum" `Quick test_is_sorted_checksum;
    Alcotest.test_case "seq_sort" `Quick test_seq_sort;
    Alcotest.test_case "seq_sort partial" `Quick test_seq_sort_partial_range;
    Alcotest.test_case "merge_into" `Quick test_merge_into;
    Alcotest.test_case "msort sorts" `Quick test_msort_sorts;
    Alcotest.test_case "tabulate_leafy" `Quick test_tabulate_leafy;
    Alcotest.test_case "seq_scan_excl" `Quick test_seq_scan_excl;
    Alcotest.test_case "mat views" `Quick test_mat_views;
    Alcotest.test_case "host sieve" `Quick test_host_sieve;
    Alcotest.test_case "host fib" `Quick test_host_fib;
    Alcotest.test_case "host nqueens" `Quick test_host_nqueens;
    Alcotest.test_case "host suffix array" `Quick test_host_suffix_array;
  ]

let () = Alcotest.run "warden-bkit" [ ("bkit", suite) ]
