test/test_sarray.mli:
