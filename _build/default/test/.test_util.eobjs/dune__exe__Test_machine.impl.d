test/test_machine.ml: Alcotest Config Energy Format List String Warden_machine
