test/test_bkit.mli:
