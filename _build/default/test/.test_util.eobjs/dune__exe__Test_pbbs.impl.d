test/test_pbbs.ml: Alcotest Config Engine List Spec Suite Warden_machine Warden_pbbs Warden_sim Warden_trace
