test/test_engine.ml: Alcotest Array Config Engine Int64 Memsys Printf Sstats Warden_machine Warden_proto Warden_sim
