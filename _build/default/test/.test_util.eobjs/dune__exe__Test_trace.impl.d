test/test_trace.ml: Alcotest Config Engine Int64 List Oracle Par QCheck2 QCheck_alcotest Result String Warden_machine Warden_runtime Warden_sim Warden_trace Wardprop
