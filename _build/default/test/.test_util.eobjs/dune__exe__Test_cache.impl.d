test/test_cache.ml: Addr Alcotest Array Bytes Char Fun Hashtbl Int64 Linedata List Option QCheck2 QCheck_alcotest Sa Store Warden_cache Warden_mem
