test/test_pbbs.mli:
