test/test_util.ml: Alcotest Array Bitset Deque Fun Hashtbl Int64 List Pqueue Printf QCheck2 QCheck_alcotest Splitmix Stats String Table Warden_util
