test/test_runtime.ml: Alcotest Config Engine Int64 Memsys Par Printf Pstats Sstats Warden_machine Warden_proto Warden_runtime Warden_sim
