test/test_harness.ml: Alcotest Config Exp Experiments List Microbench Option Printf String Warden_harness Warden_machine Warden_pbbs
