test/test_random_programs.ml: Alcotest Array Config Engine Int64 List Memsys Par Printf QCheck2 QCheck_alcotest Result Sarray Warden_machine Warden_pbbs Warden_runtime Warden_sim Warden_trace
