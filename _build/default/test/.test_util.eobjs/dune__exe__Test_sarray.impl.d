test/test_sarray.ml: Alcotest Config Engine Fun Heap Int64 Option Par Rtparams Sarray Warden_machine Warden_runtime Warden_sim
