test/test_sim.ml: Alcotest Array Config Engine Int64 List Memsys Printf Sstats Warden_machine Warden_sim Warden_util
