(* Fork-join runtime tests: scheduling correctness, heap-hierarchy WARD
   marking, determinism, and MESI/WARDen agreement on program results. *)

open Warden_machine
open Warden_sim
open Warden_runtime
open Warden_proto

let run_with ?params ?workers ~proto cfg main =
  let eng = Engine.create cfg ~proto in
  let v, rs = Par.run ?params ?workers eng main in
  (v, rs, Engine.memsys eng)

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let rec fib_par n =
  if n < 2 then begin
    Par.tick 2;
    n
  end
  else begin
    let a, b = Par.par2 (fun () -> fib_par (n - 1)) (fun () -> fib_par (n - 2)) in
    Par.tick 2;
    a + b
  end

let test_fib proto () =
  let v, rs, _ = run_with ~proto (Config.single_socket ()) (fun () -> fib_par 15) in
  Alcotest.(check int) "fib value" (fib_seq 15) v;
  Alcotest.(check bool) "forked a lot" true (rs.Par.forks > 100)

let test_fib_steals () =
  let _, rs, _ = run_with ~proto:`Mesi (Config.single_socket ()) (fun () -> fib_par 18) in
  Alcotest.(check bool)
    (Printf.sprintf "steals happened (%d)" rs.Par.steals)
    true (rs.Par.steals > 0)

let test_parfor_covers_all () =
  let n = 10_000 in
  let v, _, _ =
    run_with ~proto:`Mesi (Config.single_socket ()) (fun () ->
        let base = Par.alloc ~bytes:(8 * n) in
        Par.parfor ~grain:64 0 n (fun i ->
            Par.write (base + (8 * i)) ~size:8 (Int64.of_int (i * i)));
        (* Check each index exactly once, in the simulated memory. *)
        Par.parreduce ~grain:64 0 n
          ~map:(fun i ->
            if Par.read (base + (8 * i)) ~size:8 = Int64.of_int (i * i) then 1 else 0)
          ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "all cells correct" n v

let test_ward_regions_used () =
  let _, _, ms =
    run_with ~proto:`Warden (Config.single_socket ()) (fun () -> fib_par 14)
  in
  let ps = Memsys.pstats ms in
  Alcotest.(check bool) "regions added" true (ps.Pstats.ward_adds > 10);
  Alcotest.(check bool) "regions removed" true (ps.Pstats.ward_removes > 10);
  Alcotest.(check bool) "ward grants" true (ps.Pstats.ward_grants > 0);
  Alcotest.(check bool)
    "no leftover regions"
    true
    (ps.Pstats.ward_adds - ps.Pstats.ward_rejects >= ps.Pstats.ward_removes)

let test_mesi_no_regions () =
  let _, _, ms =
    run_with ~proto:`Mesi (Config.single_socket ()) (fun () -> fib_par 12)
  in
  let ps = Memsys.pstats ms in
  Alcotest.(check int) "mesi never grants ward" 0 ps.Pstats.ward_grants;
  Alcotest.(check bool) "region adds all rejected" true (ps.Pstats.ward_adds > 0);
  Alcotest.(check int)
    "rejects = adds" ps.Pstats.ward_adds ps.Pstats.ward_rejects

let test_determinism () =
  let go () =
    let _, rs, ms =
      run_with ~proto:`Warden (Config.dual_socket ()) (fun () -> fib_par 16)
    in
    ((Memsys.sstats ms).Sstats.cycles, rs.Par.steals, rs.Par.forks)
  in
  let a = go () and b = go () in
  Alcotest.(check (triple int int int)) "identical reruns" a b

(* The same program must compute the same result under both protocols, and
   the final flushed memory image must agree (reconciliation correctness on
   a disentangled program). *)
let sum_squares_program n () =
  let base = Par.alloc ~bytes:(8 * n) in
  Par.parfor ~grain:32 0 n (fun i ->
      Par.write (base + (8 * i)) ~size:8 (Int64.of_int (i * i)));
  let total =
    Par.parreduce ~grain:32 0 n
      ~map:(fun i -> Int64.to_int (Par.read (base + (8 * i)) ~size:8))
      ~combine:( + ) ~init:0
  in
  (base, total)

let test_protocol_agreement () =
  let n = 2048 in
  let (base_m, total_m), _, ms_m =
    run_with ~proto:`Mesi (Config.dual_socket ()) (sum_squares_program n)
  in
  let (base_w, total_w), _, ms_w =
    run_with ~proto:`Warden (Config.dual_socket ()) (sum_squares_program n)
  in
  Alcotest.(check int) "same total" total_m total_w;
  Memsys.flush_all ms_m;
  Memsys.flush_all ms_w;
  for i = 0 to n - 1 do
    let vm = Memsys.peek ms_m (base_m + (8 * i)) ~size:8 in
    let vw = Memsys.peek ms_w (base_w + (8 * i)) ~size:8 in
    if vm <> vw then Alcotest.failf "memory differs at %d: %Ld vs %Ld" i vm vw
  done

let test_warden_not_slower () =
  (* Even on a pathologically fine-grained fork workload (no sequential
     cutoff at all), WARDen's region-tracking overhead must stay small. *)
  let prog () =
    let _ = fib_par 16 in
    ()
  in
  let run proto =
    let _, _, ms = run_with ~proto (Config.dual_socket ()) prog in
    (Memsys.sstats ms).Sstats.cycles
  in
  let m = run `Mesi and w = run `Warden in
  Alcotest.(check bool)
    (Printf.sprintf "warden (%d) <= 1.10 * mesi (%d)" w m)
    true
    (float_of_int w <= 1.10 *. float_of_int m)

let test_nested_alloc_isolation () =
  (* Concurrent leaf tasks bump-allocate; their heaps must not overlap. *)
  let v, _, _ =
    run_with ~proto:`Warden (Config.single_socket ()) (fun () ->
        Par.parreduce ~grain:1 0 64
          ~map:(fun i ->
            let a = Par.alloc ~bytes:256 in
            for j = 0 to 31 do
              Par.write (a + (8 * j)) ~size:8 (Int64.of_int ((i * 1000) + j))
            done;
            let ok = ref true in
            for j = 0 to 31 do
              if Par.read (a + (8 * j)) ~size:8 <> Int64.of_int ((i * 1000) + j)
              then ok := false
            done;
            if !ok then 1 else 0)
          ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "every task saw its own data" 64 v

let suite =
  [
    Alcotest.test_case "fib under mesi" `Quick (test_fib `Mesi);
    Alcotest.test_case "fib under warden" `Quick (test_fib `Warden);
    Alcotest.test_case "work stealing happens" `Quick test_fib_steals;
    Alcotest.test_case "parfor covers range" `Quick test_parfor_covers_all;
    Alcotest.test_case "ward regions used" `Quick test_ward_regions_used;
    Alcotest.test_case "mesi rejects regions" `Quick test_mesi_no_regions;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "protocol agreement" `Quick test_protocol_agreement;
    Alcotest.test_case "warden not slower on forks" `Quick test_warden_not_slower;
    Alcotest.test_case "leaf heap isolation" `Quick test_nested_alloc_isolation;
  ]

let () = Alcotest.run "warden-runtime" [ ("runtime", suite) ]
