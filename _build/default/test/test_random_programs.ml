(* Generative end-to-end testing: random disentangled fork-join programs
   run under MESI and under WARDen; both must compute the same result,
   leave identical final memory, and (under WARDen) pass the trace oracles.

   A program is a random binary fork tree. Every task allocates its own
   output array in its heap (fresh WARD pages), reads windows of an
   ancestor-provided input, writes a disjoint slice of an ancestor scratch
   array (in-place phase — still disentangled), and after its join reads
   both children's outputs to build its own. This exercises the full mix
   of memory behaviours the runtime's marking and WARDen's reconciliation
   must handle, on shapes no hand-written benchmark has. *)

open Warden_machine
open Warden_sim
open Warden_runtime

type prog = Leaf of int | Node of prog * prog

let rec size = function Leaf _ -> 1 | Node (l, r) -> 1 + size l + size r

let gen_prog =
  QCheck2.Gen.(
    sized_size (int_range 1 24)
    @@ fix (fun self n ->
           if n <= 1 then map (fun w -> Leaf w) (int_range 1 24)
           else
             frequency
               [
                 (1, map (fun w -> Leaf w) (int_range 1 24));
                 ( 3,
                   map2
                     (fun l r -> Node (l, r))
                     (self (n / 2))
                     (self (n - 1 - (n / 2))) );
               ]))

let out_len = 24

(* Interpret [prog]; [input] is an ancestor array every task may read,
   [scratch] an ancestor array in which each task owns a disjoint slice.
   Returns the root task's output array plus a host-side mirror of its
   expected contents. *)
let interpret ~input ~scratch prog =
  (* Slots are assigned structurally (preorder), so the scratch layout is
     identical across protocol runs regardless of scheduling. *)
  let rec go path slot prog =
    let out = Sarray.create ~len:out_len ~elt_bytes:8 in
    let expect = Array.make out_len 0L in
    (match prog with
    | Leaf work ->
        for i = 0 to out_len - 1 do
          Par.tick 1;
          let v =
            Int64.add
              (Sarray.get input ((path + (i * work)) mod Sarray.length input))
              (Int64.of_int ((path * 1000) + i))
          in
          Sarray.set out i v;
          expect.(i) <- v
        done
    | Node (l, r) ->
        let (lo, le), (ro, re) =
          Par.par2
            (fun () -> go ((2 * path) + 1) (slot + 1) l)
            (fun () -> go ((2 * path) + 2) (slot + 1 + size l) r)
        in
        for i = 0 to out_len - 1 do
          Par.tick 1;
          let v = Int64.logxor (Sarray.get lo i) (Sarray.get ro i) in
          Sarray.set out i v;
          expect.(i) <- Int64.logxor le.(i) re.(i)
        done);
    (* In-place phase: fill this task's private slice of the ancestor
       scratch (slices are disjoint across tasks). *)
    for i = 0 to out_len - 1 do
      Sarray.set scratch ((slot * out_len) + i) (Sarray.get out i)
    done;
    (out, expect)
  in
  go 0 0 prog

let run_program proto prog =
  let eng = Engine.create (Config.dual_socket ()) ~proto in
  let ms = Engine.memsys eng in
  let ntasks = size prog in
  let (out, expect, scratch), _ =
    Par.run eng (fun () ->
        let input = Sarray.create ~len:256 ~elt_bytes:8 in
        Warden_pbbs.Bkit.gen_ints ms input ~seed:17L ~bound:1_000_003L;
        let scratch = Sarray.create ~len:(ntasks * out_len) ~elt_bytes:8 in
        let out, expect = interpret ~input ~scratch prog in
        (out, expect, scratch))
  in
  Memsys.flush_all ms;
  let final_out = Array.init out_len (fun i -> Sarray.peek_host ms out i) in
  let final_scratch =
    Array.init (ntasks * out_len) (fun i -> Sarray.peek_host ms scratch i)
  in
  (final_out, expect, final_scratch)

let prop_protocols_agree prog =
  let out_m, expect_m, scratch_m = run_program `Mesi prog in
  let out_w, expect_w, scratch_w = run_program `Warden prog in
  out_m = expect_m && out_w = expect_w && out_m = out_w
  && scratch_m = scratch_w

let prop_warden_oracle_clean prog =
  let _, report =
    Warden_trace.Oracle.with_oracle (fun () -> run_program `Warden prog)
  in
  Result.is_ok (Warden_trace.Oracle.check_clean report)

let qtest ?(count = 25) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name
       ~print:(fun p ->
         let rec pp = function
           | Leaf w -> Printf.sprintf "L%d" w
           | Node (l, r) -> Printf.sprintf "(%s %s)" (pp l) (pp r)
         in
         pp p)
       gen_prog prop)

let fixed_shapes =
  (* A few deterministic shapes covering the edges: a lone leaf, a deep
     left spine, a deep right spine, a balanced tree. *)
  let rec left n = if n = 0 then Leaf 3 else Node (left (n - 1), Leaf 1) in
  let rec right n = if n = 0 then Leaf 5 else Node (Leaf 2, right (n - 1)) in
  let rec bal n = if n = 0 then Leaf 7 else Node (bal (n - 1), bal (n - 1)) in
  [ ("single leaf", Leaf 4); ("left spine", left 6); ("right spine", right 6);
    ("balanced depth 4", bal 4) ]

let fixed_tests =
  List.map
    (fun (name, prog) ->
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.(check bool) "protocols agree" true (prop_protocols_agree prog);
          Alcotest.(check bool) "oracle clean" true (prop_warden_oracle_clean prog)))
    fixed_shapes

let suite =
  fixed_tests
  @ [
      qtest "random programs: MESI = WARDen = expected" prop_protocols_agree;
      qtest ~count:15 "random programs: WARDen oracles clean"
        prop_warden_oracle_clean;
    ]

let () = Alcotest.run "warden-random" [ ("random-programs", suite) ]
