(* Runtime data-structure tests: simulated arrays, heap hierarchy
   behaviour, and runtime parameter variants. *)

open Warden_machine
open Warden_sim
open Warden_runtime

let in_run ?params ?(proto = `Warden) f =
  let eng = Engine.create (Config.single_socket ()) ~proto in
  fst (Par.run ?params eng f)

(* --- Sarray ------------------------------------------------------------- *)

let test_sarray_roundtrip () =
  in_run (fun () ->
      let a = Sarray.create ~len:16 ~elt_bytes:8 in
      Sarray.set a 3 123L;
      Alcotest.(check int64) "i64" 123L (Sarray.get a 3);
      Sarray.set_i a 4 (-7);
      Alcotest.(check int) "int" (-7) (Sarray.get_i a 4);
      Sarray.set_f a 5 3.25;
      Alcotest.(check (float 1e-12)) "float" 3.25 (Sarray.get_f a 5))

let test_sarray_bounds () =
  in_run (fun () ->
      let a = Sarray.create ~len:4 ~elt_bytes:8 in
      Alcotest.check_raises "negative"
        (Invalid_argument "Sarray: index -1 out of [0,4)") (fun () ->
          ignore (Sarray.get a (-1)));
      Alcotest.check_raises "past end"
        (Invalid_argument "Sarray: index 4 out of [0,4)") (fun () ->
          ignore (Sarray.get a 4)))

let test_sarray_bytes () =
  in_run (fun () ->
      let a = Sarray.create ~len:10 ~elt_bytes:1 in
      Sarray.set a 9 0x41L;
      Alcotest.(check int64) "byte" 0x41L (Sarray.get a 9);
      (* Bytes are truncated, not range-checked. *)
      Sarray.set a 0 0x1FFL;
      Alcotest.(check int64) "truncated" 0xFFL (Sarray.get a 0))

let test_sarray_sub () =
  in_run (fun () ->
      let a = Sarray.create ~len:10 ~elt_bytes:8 in
      for i = 0 to 9 do
        Sarray.set_i a i (i * 10)
      done;
      let s = Sarray.sub a ~pos:3 ~len:4 in
      Alcotest.(check int) "len" 4 (Sarray.length s);
      Alcotest.(check int) "aliases parent" 30 (Sarray.get_i s 0);
      Sarray.set_i s 1 999;
      Alcotest.(check int) "writes through" 999 (Sarray.get_i a 4);
      Alcotest.check_raises "sub bounds" (Invalid_argument "Sarray.sub")
        (fun () -> ignore (Sarray.sub a ~pos:8 ~len:3)))

let test_sarray_atomics () =
  in_run (fun () ->
      let a = Sarray.create ~len:2 ~elt_bytes:8 in
      Alcotest.(check bool) "cas ok" true (Sarray.cas_i a 0 ~expected:0 ~desired:5);
      Alcotest.(check bool) "cas stale" false
        (Sarray.cas_i a 0 ~expected:0 ~desired:9);
      Alcotest.(check int) "fetch_add old" 5 (Sarray.fetch_add_i a 0 2);
      Alcotest.(check int) "fetch_add new" 7 (Sarray.get_i a 0))

let test_sarray_host_init () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  let out = ref None in
  let _ =
    Par.run eng (fun () ->
        let ms = Par.memsys () in
        let a = Sarray.create ~len:8 ~elt_bytes:8 in
        Sarray.init_host ms a (fun i -> Int64.of_int (100 + i));
        out := Some (Sarray.get a 7))
  in
  Alcotest.(check (option int64)) "host-poked value visible" (Some 107L) !out

(* --- Heap hierarchy ------------------------------------------------------- *)

let test_alloc_alignment_and_freshness () =
  in_run (fun () ->
      let a = Par.alloc ~bytes:5 in
      let b = Par.alloc ~bytes:3 in
      Alcotest.(check int) "8-byte aligned" 0 (a land 7);
      Alcotest.(check bool) "disjoint bump" true (b >= a + 8);
      Alcotest.(check int64) "zero initialized" 0L (Par.read a ~size:8))

let test_large_alloc () =
  in_run (fun () ->
      (* Bigger than a page: must still be usable end to end. *)
      let n = 3000 in
      let a = Par.alloc ~bytes:(8 * n) in
      Par.write (a + (8 * (n - 1))) ~size:8 11L;
      Alcotest.(check int64) "last cell" 11L (Par.read (a + (8 * (n - 1))) ~size:8))

let test_heap_ownership_tracking () =
  in_run (fun () ->
      let a = Par.alloc ~bytes:8 in
      let mine = Option.get (Par.current_heap ()) in
      let owner = Option.get (Heap.owner_of a) in
      Alcotest.(check bool) "allocation owned by current heap" true (owner == mine);
      Alcotest.(check bool) "unknown address unowned" true
        (Heap.owner_of 0x10 = None);
      (* After a fork+join the child's allocation is owned by the parent. *)
      let child_addr, _ =
        Par.par2 (fun () -> Par.alloc ~bytes:8) (fun () -> ())
      in
      let owner' = Option.get (Heap.owner_of child_addr) in
      Alcotest.(check bool) "merged into parent" true
        (Heap.is_ancestor_or_self owner' ~of_:mine))

let test_ancestor_or_self () =
  in_run (fun () ->
      let root = Option.get (Par.current_heap ()) in
      let (), () =
        Par.par2
          (fun () ->
            let mine = Option.get (Par.current_heap ()) in
            Alcotest.(check bool) "root is ancestor" true
              (Heap.is_ancestor_or_self root ~of_:mine);
            Alcotest.(check bool) "self" true
              (Heap.is_ancestor_or_self mine ~of_:mine);
            Alcotest.(check bool) "child is not ancestor of root" false
              (Heap.is_ancestor_or_self mine ~of_:root))
          (fun () -> ())
      in
      ())

(* --- Runtime parameters ---------------------------------------------------- *)

let fib_check params =
  let v =
    in_run ~params (fun () ->
        Par.parreduce ~grain:1 0 32 ~map:(fun i -> i) ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "sum under params" (31 * 32 / 2) v

let test_no_marking_params () =
  fib_check { Rtparams.default with Rtparams.mark_leaf_pages = false }

let test_scratch_handoff_params () =
  fib_check { Rtparams.default with Rtparams.handoff_in_heap = false }

let test_small_pages () = fib_check { Rtparams.default with Rtparams.page_bytes = 4096 }

let test_restricted_workers () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Warden in
  let v, rs =
    Par.run ~workers:2 eng (fun () ->
        Par.parreduce ~grain:4 0 100 ~map:Fun.id ~combine:( + ) ~init:0)
  in
  Alcotest.(check int) "correct with 2 workers" 4950 v;
  Alcotest.(check bool) "work still happened" true (rs.Par.tasks > 10)

let test_workers_bounds () =
  let eng = Engine.create (Config.single_socket ()) ~proto:`Mesi in
  Alcotest.check_raises "zero workers" (Invalid_argument "Par.run: workers")
    (fun () -> ignore (Par.run ~workers:0 eng (fun () -> ())))

let suite =
  [
    Alcotest.test_case "sarray roundtrip" `Quick test_sarray_roundtrip;
    Alcotest.test_case "sarray bounds" `Quick test_sarray_bounds;
    Alcotest.test_case "sarray bytes" `Quick test_sarray_bytes;
    Alcotest.test_case "sarray sub" `Quick test_sarray_sub;
    Alcotest.test_case "sarray atomics" `Quick test_sarray_atomics;
    Alcotest.test_case "sarray host init" `Quick test_sarray_host_init;
    Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment_and_freshness;
    Alcotest.test_case "large alloc" `Quick test_large_alloc;
    Alcotest.test_case "heap ownership" `Quick test_heap_ownership_tracking;
    Alcotest.test_case "ancestor-or-self" `Quick test_ancestor_or_self;
    Alcotest.test_case "params: no marking" `Quick test_no_marking_params;
    Alcotest.test_case "params: scratch handoff" `Quick test_scratch_handoff_params;
    Alcotest.test_case "params: page size" `Quick test_small_pages;
    Alcotest.test_case "restricted workers" `Quick test_restricted_workers;
    Alcotest.test_case "workers bounds" `Quick test_workers_bounds;
  ]

let () = Alcotest.run "warden-sarray" [ ("sarray-heap", suite) ]
