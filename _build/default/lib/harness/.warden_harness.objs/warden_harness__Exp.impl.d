lib/harness/exp.ml: Config Energy Engine Memsys Pstats Spec Sstats Warden_machine Warden_pbbs Warden_proto Warden_sim
