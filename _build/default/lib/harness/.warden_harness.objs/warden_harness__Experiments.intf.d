lib/harness/experiments.mli: Config Exp Warden_machine Warden_runtime
