lib/harness/exp.mli: Config Warden_machine Warden_pbbs Warden_runtime
