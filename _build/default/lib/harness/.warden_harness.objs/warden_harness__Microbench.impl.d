lib/harness/microbench.ml: Array Config Engine Memsys Warden_machine Warden_sim
