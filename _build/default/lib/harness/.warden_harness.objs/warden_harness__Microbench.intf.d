lib/harness/microbench.mli: Warden_machine
