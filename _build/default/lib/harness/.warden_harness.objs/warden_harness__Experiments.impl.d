lib/harness/experiments.ml: Buffer Config Exp Format List Microbench Printf Spec Stats Suite Table Warden_machine Warden_pbbs Warden_util
