(** The true-sharing microbenchmark of Figure 6, used to validate the
    simulator's data-movement latencies (Table 1). *)

type row = {
  scenario : string;
  cycles_per_iter : float;
  paper_real_hw : float;  (** Table 1 "Real HW Latency". *)
  paper_simulated : float;  (** Table 1 "Simulated Latency" (Sniper). *)
}

val pingpong :
  Warden_machine.Config.t -> tid_a:int -> tid_b:int -> iters:int -> float
(** Cycles per ping-pong iteration between two hardware threads. *)

val table1 : ?iters:int -> unit -> row list
(** The three placements of Table 1: same core (SMT), same socket,
    different sockets. *)
