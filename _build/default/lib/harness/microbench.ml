open Warden_machine
open Warden_sim
module Ops = Engine.Ops

type row = {
  scenario : string;
  cycles_per_iter : float;
  paper_real_hw : float;
  paper_simulated : float;
}

(* Figure 6: while (buf != partnerID); buf = myID. *)
let pingpong cfg ~tid_a ~tid_b ~iters =
  let eng = Engine.create cfg ~proto:`Mesi in
  let ms = Engine.memsys eng in
  let buf = Memsys.alloc ms ~bytes:8 ~align:64 in
  Memsys.poke ms buf ~size:8 1L;
  let kernel my partner () =
    for _ = 1 to iters do
      let rec wait () =
        Ops.tick 1;
        if Ops.load buf ~size:8 <> partner then wait ()
      in
      wait ();
      Ops.store buf ~size:8 my;
      Ops.tick 1
    done
  in
  let bodies =
    Array.init
      (max tid_a tid_b + 1)
      (fun tid ->
        if tid = tid_a then kernel 2L 1L
        else if tid = tid_b then kernel 1L 2L
        else fun () -> ())
  in
  let cycles = Engine.run eng bodies in
  float_of_int cycles /. float_of_int iters

let table1 ?(iters = 2_000) () =
  [
    {
      scenario = "Same core";
      cycles_per_iter =
        pingpong (Config.single_socket ~threads_per_core:2 ()) ~tid_a:0 ~tid_b:1
          ~iters;
      paper_real_hw = 8.738;
      paper_simulated = 11.21;
    };
    {
      scenario = "Diff. core, same socket";
      cycles_per_iter =
        pingpong (Config.single_socket ()) ~tid_a:0 ~tid_b:1 ~iters;
      paper_real_hw = 479.68;
      paper_simulated = 286.01;
    };
    {
      scenario = "Diff. core, diff. socket";
      cycles_per_iter =
        pingpong (Config.dual_socket ()) ~tid_a:0 ~tid_b:12 ~iters;
      paper_real_hw = 1163.23;
      paper_simulated = 1213.59;
    };
  ]
