(** Tunables of the MPL-like runtime.

    The costs are charged through the engine as instructions ([tick]) or
    pure delay ([stall]) and stand in for the host-side work of the real
    scheduler/allocator, which the simulator does not execute. *)

type t = {
  page_bytes : int;  (** Heap page size; WARD regions are whole pages. *)
  fork_cost : int;  (** Instructions to create and enqueue one child task. *)
  join_cost : int;  (** Instructions for one child's join bookkeeping. *)
  alloc_cost : int;  (** Instructions per bump allocation. *)
  page_cost : int;  (** Instructions to grab and link a fresh page. *)
  steal_probe_cost : int;  (** Cycles per steal attempt beyond its CAS. *)
  steal_move_cost : int;  (** Cycles to migrate a stolen task. *)
  idle_backoff : int;  (** Cycles an idle worker waits between probes. *)
  mark_leaf_pages : bool;
      (** The paper's policy: mark fresh leaf-heap pages as WARD regions.
          [false] degenerates to plain MESI behaviour even under the
          WARDen protocol (ablation). *)
  handoff_in_heap : bool;
      (** Allocate fork descriptors in the forking task's heap (default),
          so the unmark-at-fork reconciliation proactively flushes them to
          the LLC before a stolen child reads them — the §5.3 software
          optimization. [false] places them in never-marked scratch space,
          isolating that win (ablation). Join counters and result slots are
          scheduler synchronization state and always live outside the heap,
          as in MPL. *)
  default_grain : int;  (** Default parallel-for grain. *)
  seed : int64;  (** Seed for steal-victim selection. *)
}

val default : t
