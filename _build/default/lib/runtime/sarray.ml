type t = { base : int; len : int; elt : int }

let create ~len ~elt_bytes =
  (match elt_bytes with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg "Sarray.create: elt_bytes");
  if len < 0 then invalid_arg "Sarray.create: len";
  let base = Par.alloc ~bytes:(max 8 (len * elt_bytes)) in
  { base; len; elt = elt_bytes }

let length t = t.len

let addr t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Sarray: index %d out of [0,%d)" i t.len);
  t.base + (i * t.elt)

let get t i = Par.read (addr t i) ~size:t.elt
let set t i v = Par.write (addr t i) ~size:t.elt v

let get_i t i = Int64.to_int (get t i)
let set_i t i v = set t i (Int64.of_int v)

let need_f t = if t.elt <> 8 then invalid_arg "Sarray: floats need 8-byte elements"

let get_f t i =
  need_f t;
  Int64.float_of_bits (get t i)

let set_f t i v =
  need_f t;
  set t i (Int64.bits_of_float v)

let cas_i t i ~expected ~desired =
  Par.cas (addr t i) ~size:t.elt ~expected:(Int64.of_int expected)
    ~desired:(Int64.of_int desired)

let fetch_add_i t i delta =
  Int64.to_int (Par.fetch_add (addr t i) ~size:t.elt (Int64.of_int delta))

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Sarray.sub";
  { base = t.base + (pos * t.elt); len; elt = t.elt }

let init_host ms t f =
  for i = 0 to t.len - 1 do
    Warden_sim.Memsys.poke ms (t.base + (i * t.elt)) ~size:t.elt (f i)
  done

let peek_host ms t i =
  Warden_sim.Memsys.peek ms (t.base + (i * t.elt)) ~size:t.elt
