(** The MPL-like fork-join runtime: nested parallelism over simulated
    hardware threads, with a work-stealing scheduler, the heap hierarchy,
    and automatic WARD-region marking (§4).

    Programs are ordinary OCaml functions that call {!par2}/{!parfor} and
    touch simulated memory through {!read}/{!write}/{!alloc}. Every such
    access flows through the simulated memory system; scheduler
    synchronization (join counters, steal locks) also lives in simulated
    memory, so the runtime itself produces realistic coherence traffic.

    Execution is deterministic for a fixed parameter set: steal victims
    come from seeded per-worker generators and the engine breaks timestamp
    ties FIFO. *)

type rstats = {
  mutable forks : int;
  mutable tasks : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable allocs : int;
  mutable heap_pages : int;
}

val run :
  ?params:Rtparams.t ->
  ?workers:int ->
  Warden_sim.Engine.t ->
  (unit -> 'a) ->
  'a * rstats
(** [run engine main] executes [main] as the root task on [workers]
    workers (default: every hardware thread of the engine's machine).
    Consumes the engine (one run per engine). Not reentrant. *)

(** {1 Parallelism} *)

val par2 : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Fork-join pair: evaluates both functions as child tasks (the right one
    stealable) and returns both results. Only valid inside {!run}. *)

val parfor : ?grain:int -> int -> int -> (int -> unit) -> unit
(** [parfor lo hi f] applies [f] to [lo..hi-1] by recursive halving down to
    [grain]-sized leaf tasks. *)

val parreduce :
  ?grain:int -> int -> int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> 'a
(** Tree-shaped map-reduce over an index range. *)

(** {1 Simulated memory} *)

val alloc : bytes:int -> int
(** Bump-allocate zeroed space in the current task's heap. *)

val read : int -> size:int -> int64
val write : int -> size:int -> int64 -> unit
val cas : int -> size:int -> expected:int64 -> desired:int64 -> bool
val fetch_add : int -> size:int -> int64 -> int64
val tick : int -> unit

(** {1 Introspection (used by the trace oracles)} *)

val current_heap : unit -> Heap.t option
(** Heap of the task executing on the calling worker; [None] outside a
    run. *)

val memsys : unit -> Warden_sim.Memsys.t
(** Memory system of the active run. Raises outside a run. *)

type access_kind = R | W | RMW

val set_access_hook :
  (access_kind -> addr:int -> size:int -> value:int64 -> unit) -> unit
(** Install a callback invoked on every {!read}/{!write}/{!cas}/
    {!fetch_add} made by program code (not by the scheduler's own
    synchronization). [value] is the written value for [W] accesses and
    meaningless for [R]/[RMW]. *)

val clear_access_hook : unit -> unit
