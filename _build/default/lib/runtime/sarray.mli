(** Flat arrays in simulated memory, the workhorse data structure of the
    benchmark suite (MPL sequences).

    An array is a base address plus element geometry; every [get]/[set]
    goes through the simulated memory system (and the access hook).
    Element sizes of 1, 2, 4 or 8 bytes are supported; floats are stored
    as IEEE bits in 8-byte elements. *)

type t = { base : int; len : int; elt : int }

val create : len:int -> elt_bytes:int -> t
(** Allocate in the current task's heap (so fresh pages are WARD-marked
    per policy). Must be called inside a run. *)

val length : t -> int

val get : t -> int -> int64
val set : t -> int -> int64 -> unit

val get_i : t -> int -> int
val set_i : t -> int -> int -> unit

val get_f : t -> int -> float
val set_f : t -> int -> float -> unit
(** Floats require 8-byte elements. *)

val cas_i : t -> int -> expected:int -> desired:int -> bool
val fetch_add_i : t -> int -> int -> int

val addr : t -> int -> int
(** Address of element [i] (bounds-checked). *)

val sub : t -> pos:int -> len:int -> t
(** View of a contiguous slice (no copy). *)

val init_host : Warden_sim.Memsys.t -> t -> (int -> int64) -> unit
(** Fill directly in the backing store, bypassing caches and time —
    used to materialize benchmark {e inputs} before measurement, like
    loading a PBBS input file. Only safe before any simulated access. *)

val peek_host : Warden_sim.Memsys.t -> t -> int -> int64
(** Read element [i] from the backing store (after {!Memsys.flush_all}). *)
