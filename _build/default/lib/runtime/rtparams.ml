type t = {
  page_bytes : int;
  fork_cost : int;
  join_cost : int;
  alloc_cost : int;
  page_cost : int;
  steal_probe_cost : int;
  steal_move_cost : int;
  idle_backoff : int;
  mark_leaf_pages : bool;
  handoff_in_heap : bool;
  default_grain : int;
  seed : int64;
}

let default =
  {
    page_bytes = 4096;
    fork_cost = 24;
    join_cost = 16;
    alloc_cost = 2;
    page_cost = 30;
    steal_probe_cost = 40;
    steal_move_cost = 120;
    idle_backoff = 60;
    mark_leaf_pages = true;
    handoff_in_heap = true;
    default_grain = 512;
    seed = 0x5EEDL;
  }
