lib/runtime/rtparams.ml:
