lib/runtime/sarray.ml: Int64 Par Printf Warden_sim
