lib/runtime/heap.mli: Rtparams Warden_sim
