lib/runtime/sarray.mli: Warden_sim
