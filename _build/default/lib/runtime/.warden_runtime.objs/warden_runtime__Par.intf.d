lib/runtime/par.mli: Heap Rtparams Warden_sim
