lib/runtime/par.ml: Array Deque Effect Engine Fun Heap Int64 Memsys Option Rtparams Splitmix Warden_machine Warden_sim Warden_util
