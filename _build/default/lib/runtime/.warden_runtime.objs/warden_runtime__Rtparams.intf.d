lib/runtime/rtparams.mli:
