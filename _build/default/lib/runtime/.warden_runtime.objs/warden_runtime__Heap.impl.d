lib/runtime/heap.ml: Engine Hashtbl List Memsys Rtparams Warden_sim
