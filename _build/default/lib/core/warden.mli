(** The WARDen coherence protocol (§5): MESI plus the WARD state.

    Blocks whose addresses fall inside an active WARD region are handled in
    the W state: the directory satisfies reads and writes with
    exclusive-like copies served from the shared cache, never downgrading
    or invalidating other cores' copies (Fig. 5). Every core granted a copy
    is remembered in the entry's sharer set. Removing a region reconciles
    its blocks (§5.2):

    - {e no sharing} — a sole holder whose block never saw a concurrent
      copy is converted in place to E (clean) or M (dirty);
    - {e false/true sharing} — every holder is flushed and its dirty
      {e sectors} (byte-granular masks, §6.1) are merged into the LLC in
      ascending core order; the directory entry returns to I. False and
      true sharing use the same mechanism, as in the paper.

    Blocks outside WARD regions follow the baseline {!Warden_proto.Mesi}
    transitions exactly, so legacy (non-region-marking) software runs
    unchanged. *)

open Warden_proto

module P : sig
  include Protocol.S

  val regions : t -> Regions.t
  (** The live region table (exposed for tests and inspection). *)
end

val protocol : Fabric.t -> Protocol.t
(** Package WARDen as a first-class protocol. The region capacity comes
    from the fabric's machine configuration. *)
