lib/core/regions.mli:
