lib/core/warden.mli: Fabric Protocol Regions Warden_proto
