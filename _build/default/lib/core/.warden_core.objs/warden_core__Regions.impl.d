lib/core/regions.ml: Addr Int List Map Option Warden_mem
