lib/core/warden.ml: Addr Bitset Config Dirstate Energy Fabric Linedata List Mesi Protocol Pstats Regions States Warden_cache Warden_machine Warden_mem Warden_proto Warden_util
