(* tokens: whitespace tokenization. A token belongs to the chunk where it
   starts; chunks peek one character across their left boundary to decide
   ownership, then the standard count / scan / fill pack emits
   (start, length) pairs. *)

open Warden_runtime

let is_space c = c = Int64.of_int (Char.code ' ')

let host_tokens text =
  let toks = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    while !i < n && text.[!i] = ' ' do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && text.[!i] <> ' ' do
        incr i
      done;
      toks := (start, !i - start) :: !toks
    end
  done;
  List.rev !toks

let text_of_host ms a =
  String.init (Sarray.length a) (fun i ->
      Char.chr (Int64.to_int (Sarray.peek_host ms a i)))

(* i starts a token iff text[i] is not a space and (i = 0 or text[i-1] is). *)
let starts_token text i =
  Par.tick 2;
  (not (is_space (Sarray.get text i)))
  && (i = 0 || is_space (Sarray.get text (i - 1)))

let spec =
  Spec.make ~name:"tokens" ~descr:"whitespace tokenization with pack"
    ~default_scale:160_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let text = Sarray.create ~len:scale ~elt_bytes:1 in
      Bkit.gen_text ms text ~seed ~alphabet:"ab cd efg  h";
      let chunk = 1024 in
      let nchunks = (scale + chunk - 1) / chunk in
      let counts = Sarray.create ~len:(nchunks + 1) ~elt_bytes:8 in
      Par.parfor ~grain:1 0 nchunks (fun c ->
          let lo = c * chunk and hi = min scale ((c + 1) * chunk) in
          let n = ref 0 in
          for i = lo to hi - 1 do
            if starts_token text i then incr n
          done;
          Sarray.set_i counts c !n);
      let total = Bkit.seq_scan_excl counts in
      let starts = Sarray.create ~len:(max 1 total) ~elt_bytes:8 in
      let lens = Sarray.create ~len:(max 1 total) ~elt_bytes:8 in
      Par.parfor ~grain:1 0 nchunks (fun c ->
          let lo = c * chunk and hi = min scale ((c + 1) * chunk) in
          let pos = ref (Sarray.get_i counts c) in
          for i = lo to hi - 1 do
            if starts_token text i then begin
              (* Scan forward (possibly past the chunk) for the end. *)
              let j = ref i in
              while !j < scale && not (is_space (Sarray.get text !j)) do
                Par.tick 1;
                incr j
              done;
              Sarray.set_i starts !pos i;
              Sarray.set_i lens !pos (!j - i);
              incr pos
            end
          done);
      (text, starts, lens, total))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (text, starts, lens, total) ->
      let expect = host_tokens (text_of_host ms text) in
      List.length expect = total
      && List.for_all2
           (fun (s, l) i ->
             s = Int64.to_int (Sarray.peek_host ms starts i)
             && l = Int64.to_int (Sarray.peek_host ms lens i))
           expect
           (List.init total (fun i -> i)))
