lib/pbbs/bm_make_array.mli: Spec
