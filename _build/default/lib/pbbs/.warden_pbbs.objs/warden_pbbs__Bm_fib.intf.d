lib/pbbs/bm_fib.mli: Spec
