lib/pbbs/bm_nqueens.mli: Spec
