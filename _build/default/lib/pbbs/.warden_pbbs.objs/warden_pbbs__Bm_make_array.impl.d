lib/pbbs/bm_make_array.ml: Array Bkit Int64 Par Sarray Spec Warden_runtime
