lib/pbbs/bkit.mli: Sarray Warden_runtime Warden_sim
