lib/pbbs/spec.ml: Engine Memsys Par Rtparams Warden_runtime Warden_sim
