lib/pbbs/bkit.ml: Array Char Int64 Par Sarray Splitmix String Warden_runtime Warden_util
