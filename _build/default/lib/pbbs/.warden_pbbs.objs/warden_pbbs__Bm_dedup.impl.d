lib/pbbs/bm_dedup.ml: Array Bkit Hashtbl Int64 Par Sarray Spec Warden_runtime Warden_util
