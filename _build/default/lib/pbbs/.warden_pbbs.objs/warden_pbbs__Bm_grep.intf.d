lib/pbbs/bm_grep.mli: Spec
