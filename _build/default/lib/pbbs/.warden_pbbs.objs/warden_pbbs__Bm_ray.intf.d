lib/pbbs/bm_ray.mli: Spec
