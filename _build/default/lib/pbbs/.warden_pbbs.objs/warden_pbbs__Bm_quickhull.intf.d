lib/pbbs/bm_quickhull.mli: Spec
