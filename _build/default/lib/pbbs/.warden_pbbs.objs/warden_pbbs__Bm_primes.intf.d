lib/pbbs/bm_primes.mli: Spec
