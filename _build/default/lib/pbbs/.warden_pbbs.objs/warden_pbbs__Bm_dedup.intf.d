lib/pbbs/bm_dedup.mli: Spec
