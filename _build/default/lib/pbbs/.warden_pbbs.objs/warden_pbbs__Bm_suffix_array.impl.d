lib/pbbs/bm_suffix_array.ml: Array Bkit Char Int64 Par Sarray Spec String Warden_runtime
