lib/pbbs/bm_tokens.mli: Spec
