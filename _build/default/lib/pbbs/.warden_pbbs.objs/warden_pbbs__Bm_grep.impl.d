lib/pbbs/bm_grep.ml: Bkit Char Int64 List Par Sarray Spec String Warden_runtime
