lib/pbbs/bm_dmm.ml: Array Bkit Int64 Mat Par Sarray Spec Warden_runtime
