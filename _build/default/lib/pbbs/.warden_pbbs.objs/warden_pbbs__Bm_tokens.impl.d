lib/pbbs/bm_tokens.ml: Bkit Char Int64 List Par Sarray Spec String Warden_runtime
