lib/pbbs/bm_ray.ml: Array Bkit Int64 Par Sarray Spec Warden_runtime Warden_util
