lib/pbbs/bm_palindrome.mli: Spec
