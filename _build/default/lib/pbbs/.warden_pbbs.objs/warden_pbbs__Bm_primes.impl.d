lib/pbbs/bm_primes.ml: Array Bkit Par Sarray Spec Warden_runtime
