lib/pbbs/bm_suffix_array.mli: Spec
