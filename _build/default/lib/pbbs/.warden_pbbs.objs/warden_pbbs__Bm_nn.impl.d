lib/pbbs/bm_nn.ml: Array Bkit Int64 Par Sarray Spec Warden_runtime Warden_util
