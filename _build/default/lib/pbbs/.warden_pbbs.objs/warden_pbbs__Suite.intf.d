lib/pbbs/suite.mli: Spec
