lib/pbbs/bm_nn.mli: Spec
