lib/pbbs/bm_quickhull.ml: Array Bkit List Par Sarray Spec Warden_runtime Warden_util
