lib/pbbs/bm_fib.ml: Par Spec Warden_runtime
