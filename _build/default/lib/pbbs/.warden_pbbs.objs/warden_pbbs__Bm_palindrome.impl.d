lib/pbbs/bm_palindrome.ml: Array Bkit Char Int64 Par Sarray Spec String Warden_runtime
