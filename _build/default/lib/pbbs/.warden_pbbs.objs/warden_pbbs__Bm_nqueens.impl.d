lib/pbbs/bm_nqueens.ml: List Par Sarray Spec Warden_runtime
