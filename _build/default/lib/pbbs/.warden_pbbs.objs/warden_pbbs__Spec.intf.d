lib/pbbs/spec.mli: Warden_runtime Warden_sim
