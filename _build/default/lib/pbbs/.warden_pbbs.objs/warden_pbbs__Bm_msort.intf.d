lib/pbbs/bm_msort.mli: Spec
