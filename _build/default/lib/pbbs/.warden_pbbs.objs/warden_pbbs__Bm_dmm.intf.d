lib/pbbs/bm_dmm.mli: Spec
