lib/pbbs/bm_msort.ml: Array Bkit Int64 Sarray Spec Warden_runtime
