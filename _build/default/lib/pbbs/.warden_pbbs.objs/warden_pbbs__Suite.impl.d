lib/pbbs/suite.ml: Bm_dedup Bm_dmm Bm_fib Bm_grep Bm_make_array Bm_msort Bm_nn Bm_nqueens Bm_palindrome Bm_primes Bm_quickhull Bm_ray Bm_suffix_array Bm_tokens List Spec
