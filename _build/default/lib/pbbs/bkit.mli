(** Shared building blocks for the benchmark suite: input generation,
    in-simulator sorting, scans, and matrix views. *)

open Warden_runtime

(** {1 Input generation (host-side, zero simulated cost)} *)

val gen_ints :
  Warden_sim.Memsys.t -> Sarray.t -> seed:int64 -> bound:int64 -> unit
(** Fill with uniform values in [\[0, bound)]. *)

val gen_floats :
  Warden_sim.Memsys.t -> Sarray.t -> seed:int64 -> bound:float -> unit

val gen_text :
  Warden_sim.Memsys.t -> Sarray.t -> seed:int64 -> alphabet:string -> unit
(** Fill a byte array with characters drawn from [alphabet]. *)

(** {1 In-simulator algorithms} *)

val seq_sort : Sarray.t -> lo:int -> hi:int -> unit
(** In-place sequential quicksort (with insertion sort below a cutoff) on
    unsigned comparisons of element values. *)

val merge_into : src1:Sarray.t -> src2:Sarray.t -> dst:Sarray.t -> unit
(** Sequential two-way merge of two sorted arrays; [dst] must have length
    [len src1 + len src2]. *)

val tabulate_leafy : ?grain:int -> n:int -> elt_bytes:int -> (int -> int64) -> Sarray.t
(** Functional parallel tabulate: leaves build [grain]-sized pieces in
    their own heaps; internal tasks allocate the concatenation and copy the
    halves in (the MPL sequence-append idiom — generate in leaf heaps,
    consume after joins). *)

val msort : ?grain:int -> Sarray.t -> Sarray.t
(** Parallel mergesort in the MPL style: leaves copy-and-sort into arrays
    allocated in their own (WARD) heaps, internal nodes allocate the merged
    output in the rejoined parent's heap. Returns a fresh sorted array. *)

val seq_scan_excl : Sarray.t -> int
(** Exclusive prefix sum, in place, sequential; returns the total. *)

val pack2 : int -> int -> int64
(** Pack two 31-bit non-negative ints into an int64 (hi, lo). *)

val unpack_hi : int64 -> int
val unpack_lo : int64 -> int

(** {1 Matrix views over flat arrays} *)

module Mat : sig
  type t = { arr : Sarray.t; dim : int; row0 : int; col0 : int; n : int }
  (** [n]-by-[n] view into a [dim]-by-[dim] row-major matrix. *)

  val full : Sarray.t -> dim:int -> t
  val quad : t -> int -> int -> t
  (** [quad m i j] with [i,j] in [{0,1}]: the four half-size quadrants. *)

  val get : t -> int -> int -> int64
  val set : t -> int -> int -> int64 -> unit
  val create : n:int -> t
  (** Fresh [n]x[n] matrix in the current task's heap. *)
end

(** {1 Host-side verification helpers} *)

val host_array : Warden_sim.Memsys.t -> Sarray.t -> int64 array
(** Snapshot from the backing store (flush first). *)

val is_sorted : int64 array -> bool

val checksum : int64 array -> int64
(** Order-insensitive multiset hash. *)
