(* primes: the recursive prime sieve of Figure 4. The flags array races
   benignly — concurrent threads write the same value (false) to the same
   byte — which is a WAW-apathetic pattern: disentangled but not DRF. *)

open Warden_runtime

let host_sieve n =
  let flags = Array.make (n + 1) true in
  if n >= 0 then flags.(0) <- false;
  if n >= 1 then flags.(1) <- false;
  let p = ref 2 in
  while !p * !p <= n do
    if flags.(!p) then begin
      let m = ref (!p * !p) in
      while !m <= n do
        flags.(!m) <- false;
        m := !m + !p
      done
    end;
    incr p
  done;
  flags

(* flags.(i) = 1 iff i is prime; array of bytes, sized n+1. *)
let rec sieve_upto n =
  let flags = Sarray.create ~len:(n + 1) ~elt_bytes:1 in
  Par.parfor ~grain:2048 0 (n + 1) (fun i -> Sarray.set flags i 1L);
  Sarray.set flags 0 0L;
  if n >= 1 then Sarray.set flags 1 0L;
  if n >= 4 then begin
    let sqrt_n = int_of_float (sqrt (float_of_int n)) in
    let sqrtflags = sieve_upto sqrt_n in
    Par.parfor ~grain:1 0 (sqrt_n + 1) (fun p ->
        if p >= 2 && Sarray.get sqrtflags p = 1L then
          (* Mark multiples of p composite: benign same-value WAW races at
             indices divisible by several primes. *)
          Par.parfor ~grain:4096 2 ((n / p) + 1) (fun m ->
              Par.tick 1;
              Sarray.set flags (p * m) 0L))
  end;
  flags

let spec =
  Spec.make ~name:"primes" ~descr:"recursive parallel sieve (Fig. 4)"
    ~default_scale:120_000
    ~prog:(fun ~scale ~seed:_ ~ms:_ () -> sieve_upto scale)
    ~verify:(fun ~scale ~seed:_ ~ms flags ->
      let expect = host_sieve scale in
      let got = Bkit.host_array ms flags in
      Array.length got = scale + 1
      &&
      let ok = ref true in
      Array.iteri
        (fun i v -> if (v = 1L) <> expect.(i) then ok := false)
        got;
      !ok)
