(* fib: the classic fork-join microbenchmark — almost pure task spawning,
   with a small sequential cutoff. Coherence traffic comes entirely from
   the runtime's fork/join machinery. *)

open Warden_runtime

let rec fib_seq n = if n < 2 then n else fib_seq (n - 1) + fib_seq (n - 2)

let rec fib n =
  if n < 8 then begin
    Par.tick (2 * fib_seq n);
    fib_seq n
  end
  else begin
    let a, b = Par.par2 (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    Par.tick 2;
    a + b
  end

let spec =
  Spec.make ~name:"fib" ~descr:"recursive Fibonacci, pure fork-join"
    ~default_scale:23
    ~prog:(fun ~scale ~seed:_ ~ms:_ () -> fib scale)
    ~verify:(fun ~scale ~seed:_ ~ms:_ v -> v = fib_seq scale)
