(* msort: parallel mergesort in the MPL leaf-allocating style — every task
   builds its output in its own heap, so the generate-then-consume pattern
   between merge levels is exactly the traffic WARDen's join-time
   reconciliation converts from 3-hop downgrades into LLC hits. *)

open Warden_runtime

let spec =
  Spec.make ~name:"msort" ~descr:"parallel mergesort, leaf-allocated outputs"
    ~default_scale:24_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let input = Sarray.create ~len:scale ~elt_bytes:8 in
      Bkit.gen_ints ms input ~seed ~bound:Int64.max_int;
      (input, Bkit.msort ~grain:256 input))
    ~verify:(fun ~scale ~seed:_ ~ms (input, out) ->
      let inp = Bkit.host_array ms input in
      let o = Bkit.host_array ms out in
      Array.length o = scale
      && Bkit.is_sorted o
      && Bkit.checksum inp = Bkit.checksum o)
