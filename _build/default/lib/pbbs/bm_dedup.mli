(** PBBS benchmark: dedup. *)

val spec : Spec.t
