(* ray: ray casting an image of a sphere scene. Pixels are traced in
   parallel; each ray tests every sphere with integer fixed-point
   arithmetic so that host verification is exact. *)

open Warden_runtime

(* Fixed-point 16.16 coordinates packed host-side; all math in plain ints. *)
let fp v = v * 65536

let nspheres = 24

(* Deterministic scene derived from the seed. *)
let scene seed =
  let rng = Warden_util.Splitmix.make seed in
  Array.init nspheres (fun _ ->
      let cx = fp (Warden_util.Splitmix.int rng 400) - fp 200 in
      let cy = fp (Warden_util.Splitmix.int rng 400) - fp 200 in
      let cz = fp (200 + Warden_util.Splitmix.int rng 600) in
      let r = fp (20 + Warden_util.Splitmix.int rng 60) in
      (cx, cy, cz, r))

(* Ray through pixel (i, j) of a w x w image on a z = fp 100 screen
   centered on the origin; origin at (0,0,0). Returns the index of the
   nearest sphere hit, or -1. Works on values loaded from the arrays. *)
let trace ~w ~cx ~cy ~cz ~r2 i j =
  let dx = fp (i - (w / 2)) / (w / 4) and dy = fp (j - (w / 2)) / (w / 4) in
  let dz = fp 1 in
  let best = ref (-1) and best_t = ref max_int in
  for s = 0 to nspheres - 1 do
    Par.tick 12;
    let sx = Sarray.get_i cx s and sy = Sarray.get_i cy s in
    let sz = Sarray.get_i cz s and sr2 = Sarray.get_i r2 s in
    (* Solve |o + t*d - c|^2 = r^2 in fixed point, scaled down to avoid
       overflow: work in units of 2^16 (i.e., divide coords by 2^8). *)
    let sc v = v asr 8 in
    let dxs = sc dx and dys = sc dy and dzs = sc dz in
    let cxs = sc sx and cys = sc sy and czs = sc sz in
    let a = (dxs * dxs) + (dys * dys) + (dzs * dzs) in
    let b = -2 * ((dxs * cxs) + (dys * cys) + (dzs * czs)) in
    let c = (cxs * cxs) + (cys * cys) + (czs * czs) - sc (sc sr2 * 256 * 256) in
    let disc = (b * b) - (4 * a * c) in
    if disc >= 0 then begin
      (* t = (-b - sqrt(disc)) / 2a, scaled; integer sqrt. *)
      let sq = int_of_float (sqrt (float_of_int disc)) in
      let t = -b - sq in
      if t > 0 && t < !best_t then begin
        best_t := t;
        best := s
      end
    end
  done;
  !best

let spec =
  Spec.make ~name:"ray" ~descr:"ray casting a sphere scene"
    ~default_scale:72
    ~prog:(fun ~scale ~seed ~ms () ->
      let w = scale in
      let sph = scene seed in
      let cx = Sarray.create ~len:nspheres ~elt_bytes:8 in
      let cy = Sarray.create ~len:nspheres ~elt_bytes:8 in
      let cz = Sarray.create ~len:nspheres ~elt_bytes:8 in
      let r2 = Sarray.create ~len:nspheres ~elt_bytes:8 in
      Sarray.init_host ms cx (fun s -> let x, _, _, _ = sph.(s) in Int64.of_int x);
      Sarray.init_host ms cy (fun s -> let _, y, _, _ = sph.(s) in Int64.of_int y);
      Sarray.init_host ms cz (fun s -> let _, _, z, _ = sph.(s) in Int64.of_int z);
      Sarray.init_host ms r2 (fun s -> let _, _, _, r = sph.(s) in Int64.of_int (r * r / 65536));
      let img =
        Bkit.tabulate_leafy ~grain:128 ~n:(w * w) ~elt_bytes:8 (fun p ->
            Int64.of_int (trace ~w ~cx ~cy ~cz ~r2 (p mod w) (p / w)))
      in
      (img, w))
    ~verify:(fun ~scale:_ ~seed ~ms (img, w) ->
      (* Recompute on the host with the same integer arithmetic, reading
         sphere data from the same generator. *)
      let sph = scene seed in
      let hcx = Array.map (fun (x, _, _, _) -> x) sph in
      let hcy = Array.map (fun (_, y, _, _) -> y) sph in
      let hcz = Array.map (fun (_, _, z, _) -> z) sph in
      let hr2 = Array.map (fun (_, _, _, r) -> r * r / 65536) sph in
      let host_trace i j =
        let dx = fp (i - (w / 2)) / (w / 4) and dy = fp (j - (w / 2)) / (w / 4) in
        let dz = fp 1 in
        let best = ref (-1) and best_t = ref max_int in
        for s = 0 to nspheres - 1 do
          let sc v = v asr 8 in
          let dxs = sc dx and dys = sc dy and dzs = sc dz in
          let cxs = sc hcx.(s) and cys = sc hcy.(s) and czs = sc hcz.(s) in
          let a = (dxs * dxs) + (dys * dys) + (dzs * dzs) in
          let b = -2 * ((dxs * cxs) + (dys * cys) + (dzs * czs)) in
          let c =
            (cxs * cxs) + (cys * cys) + (czs * czs) - sc (sc hr2.(s) * 256 * 256)
          in
          let disc = (b * b) - (4 * a * c) in
          if disc >= 0 then begin
            let sq = int_of_float (sqrt (float_of_int disc)) in
            let t = -b - sq in
            if t > 0 && t < !best_t then begin
              best_t := t;
              best := s
            end
          end
        done;
        !best
      in
      let ok = ref true in
      for p = 0 to (w * w) - 1 do
        if Int64.to_int (Sarray.peek_host ms img p) <> host_trace (p mod w) (p / w)
        then ok := false
      done;
      !ok)
