(* dmm: dense matrix multiplication by recursive quadrant decomposition.
   Each recursive task allocates temporaries for the two partial products
   in its own heap before combining them — the allocation-heavy functional
   style MPL programs use. *)

open Warden_runtime
open Bkit

let base_cutoff = 16

(* dst <- a * b (+ optional acc), all n x n views. *)
let rec multiply ~(a : Mat.t) ~(b : Mat.t) : Mat.t =
  let n = a.Mat.n in
  if n <= base_cutoff then begin
    let c = Mat.create ~n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0L in
        for k = 0 to n - 1 do
          Par.tick 2;
          acc := Int64.add !acc (Int64.mul (Mat.get a i k) (Mat.get b k j))
        done;
        Mat.set c i j !acc
      done
    done;
    c
  end
  else begin
    let q m = (Mat.quad m 0 0, Mat.quad m 0 1, Mat.quad m 1 0, Mat.quad m 1 1) in
    let a11, a12, a21, a22 = q a and b11, b12, b21, b22 = q b in
    let (p1, p2), (p3, p4) =
      Par.par2
        (fun () ->
          Par.par2
            (fun () -> (multiply ~a:a11 ~b:b11, multiply ~a:a12 ~b:b21))
            (fun () -> (multiply ~a:a11 ~b:b12, multiply ~a:a12 ~b:b22)))
        (fun () ->
          Par.par2
            (fun () -> (multiply ~a:a21 ~b:b11, multiply ~a:a22 ~b:b21))
            (fun () -> (multiply ~a:a21 ~b:b12, multiply ~a:a22 ~b:b22)))
    in
    (* Combine the partial products into a fresh matrix in this task's
       (again-leaf) heap. *)
    let c = Mat.create ~n in
    let h = n / 2 in
    let sum ~dst_r ~dst_c (x, y) =
      for i = 0 to h - 1 do
        for j = 0 to h - 1 do
          Par.tick 1;
          Mat.set c (dst_r + i) (dst_c + j)
            (Int64.add (Mat.get x i j) (Mat.get y i j))
        done
      done
    in
    sum ~dst_r:0 ~dst_c:0 p1;
    sum ~dst_r:0 ~dst_c:h p2;
    sum ~dst_r:h ~dst_c:0 p3;
    sum ~dst_r:h ~dst_c:h p4;
    c
  end

let spec =
  Spec.make ~name:"dmm" ~descr:"recursive dense matrix multiply"
    ~default_scale:64
    ~prog:(fun ~scale ~seed ~ms () ->
      let n = scale in
      let a = Sarray.create ~len:(n * n) ~elt_bytes:8 in
      let b = Sarray.create ~len:(n * n) ~elt_bytes:8 in
      Bkit.gen_ints ms a ~seed ~bound:100L;
      Bkit.gen_ints ms b ~seed:(Int64.add seed 1L) ~bound:100L;
      let c = multiply ~a:(Mat.full a ~dim:n) ~b:(Mat.full b ~dim:n) in
      (a, b, c))
    ~verify:(fun ~scale ~seed:_ ~ms (a, b, c) ->
      let n = scale in
      let ha = Bkit.host_array ms a and hb = Bkit.host_array ms b in
      let hc = Bkit.host_array ms c.Mat.arr in
      (* The result matrix view is dense n x n with dim = n. *)
      c.Mat.dim = n
      &&
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0L in
          for k = 0 to n - 1 do
            acc := Int64.add !acc (Int64.mul ha.((i * n) + k) hb.((k * n) + j))
          done;
          if hc.((i * n) + j) <> !acc then ok := false
        done
      done;
      !ok)
