(** PBBS benchmark: msort. *)

val spec : Spec.t
