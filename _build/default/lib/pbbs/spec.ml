open Warden_sim
open Warden_runtime

type t = {
  name : string;
  descr : string;
  default_scale : int;
  run :
    scale:int ->
    seed:int64 ->
    ?params:Rtparams.t ->
    ?workers:int ->
    Engine.t ->
    bool;
}

let make ~name ~descr ~default_scale ~prog ~verify =
  {
    name;
    descr;
    default_scale;
    run =
      (fun ~scale ~seed ?params ?workers eng ->
        let ms = Engine.memsys eng in
        let out, _ = Par.run ?params ?workers eng (prog ~scale ~seed ~ms) in
        Memsys.flush_all ms;
        verify ~scale ~seed ~ms out);
  }
