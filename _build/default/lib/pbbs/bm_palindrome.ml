(* palindrome: maximal palindromic radius around every center of a text
   (expand-around-center), built functionally with leaf-allocated chunks
   that later phases consume — the pattern where WARDen shines. *)

open Warden_runtime

(* Centers are indexed 0..2n-2: even = a character, odd = a gap. The
   radius is the number of matched positions right of the center start. *)
let host_radius text c =
  let n = String.length text in
  let r0 = (c / 2) + (c mod 2) in
  let rec expand l r =
    if l >= 0 && r < n && text.[l] = text.[r] then expand (l - 1) (r + 1)
    else r - r0
  in
  expand (c / 2) r0

let text_of_host ms a =
  String.init (Sarray.length a) (fun i ->
      Char.chr (Int64.to_int (Sarray.peek_host ms a i)))

let radius text c =
  let n = Sarray.length text in
  let l0 = c / 2 and r0 = (c / 2) + (c mod 2) in
  let rec expand l r =
    Par.tick 3;
    if l >= 0 && r < n && Sarray.get text l = Sarray.get text r then
      expand (l - 1) (r + 1)
    else r - r0
  in
  expand l0 r0

let spec =
  Spec.make ~name:"palindrome"
    ~descr:"palindromic radii around all centers, leaf-allocated"
    ~default_scale:40_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let text = Sarray.create ~len:scale ~elt_bytes:1 in
      (* A small alphabet gives nontrivial palindrome density. *)
      Bkit.gen_text ms text ~seed ~alphabet:"aab";
      let ncenters = (2 * scale) - 1 in
      let rad =
        Bkit.tabulate_leafy ~grain:512 ~n:ncenters ~elt_bytes:8 (fun c ->
            Int64.of_int (radius text c))
      in
      (* Consume: longest palindrome and total palindromic mass. *)
      let best =
        Par.parreduce ~grain:1024 0 ncenters
          ~map:(fun c -> Bkit.pack2 (Sarray.get_i rad c) c)
          ~combine:(fun a b -> if a >= b then a else b)
          ~init:0L
      in
      let total =
        Par.parreduce ~grain:1024 0 ncenters
          ~map:(fun c -> Sarray.get_i rad c)
          ~combine:( + ) ~init:0
      in
      (text, rad, best, total))
    ~verify:(fun ~scale ~seed:_ ~ms (text, rad, best, total) ->
      let t = text_of_host ms text in
      let ncenters = (2 * scale) - 1 in
      let hrad = Array.init ncenters (host_radius t) in
      let hbest = ref 0L and htotal = ref 0 in
      Array.iteri
        (fun c r ->
          htotal := !htotal + r;
          let p = Bkit.pack2 r c in
          if p > !hbest then hbest := p)
        hrad;
      let rad_ok = ref true in
      Array.iteri
        (fun c r ->
          if Int64.to_int (Sarray.peek_host ms rad c) <> r then rad_ok := false)
        hrad;
      !rad_ok && best = !hbest && total = !htotal)
