(** PBBS benchmark: nn. *)

val spec : Spec.t
