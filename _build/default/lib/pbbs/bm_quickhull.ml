(* quickhull: 2D convex hull. Each recursive task filters its point set
   into freshly allocated sub-arrays in its own heap — the divide phase of
   PBBS quickhull, dominated by leaf allocation and later consumption. *)

open Warden_runtime

(* Points are stored as packed (x, y) pairs of 21-bit coordinates to keep
   comparisons exact; geometry uses host ints read from the arrays. *)
let pack_pt x y = Bkit.pack2 x y
let px p = Bkit.unpack_hi p
let py p = Bkit.unpack_lo p

(* Twice the signed area of (a, b, c); > 0 when c is left of a->b. *)
let cross a b c =
  Par.tick 8;
  ((px b - px a) * (py c - py a)) - ((py b - py a) * (px c - px a))

let host_cross a b c =
  ((px b - px a) * (py c - py a)) - ((py b - py a) * (px c - px a))

(* Points strictly left of a->b, into a fresh array. *)
let filter_left pts a b =
  let n = Sarray.length pts in
  let keep = ref [] and count = ref 0 in
  for i = 0 to n - 1 do
    let p = Sarray.get pts i in
    if cross a b p > 0 then begin
      keep := p :: !keep;
      incr count
    end
  done;
  let out = Sarray.create ~len:!count ~elt_bytes:8 in
  List.iteri (fun i p -> Sarray.set out (!count - 1 - i) p) !keep;
  out

let rec hull_side pts a b =
  let n = Sarray.length pts in
  if n = 0 then []
  else begin
    (* Farthest point from the line a->b. *)
    let far = ref (Sarray.get pts 0) in
    let fd = ref (cross a b !far) in
    for i = 1 to n - 1 do
      let p = Sarray.get pts i in
      let d = cross a b p in
      if d > !fd then begin
        far := p;
        fd := d
      end
    done;
    let c = !far in
    if n <= 64 then begin
      let l = filter_left pts a c and r = filter_left pts c b in
      hull_side l a c @ [ c ] @ hull_side r c b
    end
    else begin
      let l, r =
        Par.par2 (fun () -> filter_left pts a c) (fun () -> filter_left pts c b)
      in
      let hl, hr =
        Par.par2 (fun () -> hull_side l a c) (fun () -> hull_side r c b)
      in
      hl @ [ c ] @ hr
    end
  end

let compute pts =
  let n = Sarray.length pts in
  (* Extremes: min and max by x (ties by y). *)
  let mn = ref (Sarray.get pts 0) and mx = ref (Sarray.get pts 0) in
  for i = 1 to n - 1 do
    Par.tick 2;
    let p = Sarray.get pts i in
    if p < !mn then mn := p;
    if p > !mx then mx := p
  done;
  let upper, lower =
    Par.par2
      (fun () -> hull_side (filter_left pts !mn !mx) !mn !mx)
      (fun () -> hull_side (filter_left pts !mx !mn) !mx !mn)
  in
  (!mn :: upper) @ (!mx :: lower)

let host_hull pts =
  (* Monotone chain on the host for verification. *)
  let pts = Array.copy pts in
  Array.sort compare pts;
  let build points =
    let stack = ref [] in
    Array.iter
      (fun p ->
        let rec pop () =
          match !stack with
          | b :: a :: rest when host_cross a b p <= 0 ->
              stack := a :: rest;
              pop ()
          | _ -> ()
        in
        pop ();
        stack := p :: !stack)
      points;
    List.rev (List.tl !stack)
  in
  let upper = build pts in
  let lower = build (Array.of_list (List.rev (Array.to_list pts))) in
  upper @ lower

let spec =
  Spec.make ~name:"quickhull" ~descr:"2-D convex hull by recursive filtering"
    ~default_scale:20_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let pts = Sarray.create ~len:scale ~elt_bytes:8 in
      let rng = Warden_util.Splitmix.make seed in
      (* Random points in a disc, so the hull is small and interesting. *)
      Sarray.init_host ms pts (fun _ ->
          let rec draw () =
            let x = Warden_util.Splitmix.int rng 1_000_000 in
            let y = Warden_util.Splitmix.int rng 1_000_000 in
            let dx = x - 500_000 and dy = y - 500_000 in
            if (dx * dx) + (dy * dy) <= 500_000 * 500_000 then pack_pt x y
            else draw ()
          in
          draw ());
      let hull = compute pts in
      (pts, hull))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (pts, hull) ->
      let hp = Bkit.host_array ms pts in
      let expect = List.sort_uniq compare (host_hull hp) in
      let got = List.sort_uniq compare hull in
      expect = got)
