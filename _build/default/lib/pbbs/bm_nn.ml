(* nn: nearest neighbors. Queries are processed in parallel against a
   spatially-gridded point set; each query task walks outward over grid
   cells (built in a leaf-allocating construction phase) until the nearest
   point is provably found. *)

open Warden_runtime

let grid_bits = 4
let gside = 1 lsl grid_bits (* 16 x 16 grid *)
let coord_max = 1 lsl 20

let cell_of x y =
  ((y * gside / coord_max) * gside) + (x * gside / coord_max)

let dist2 ax ay bx by =
  let dx = ax - bx and dy = ay - by in
  (dx * dx) + (dy * dy)

let spec =
  Spec.make ~name:"nn" ~descr:"nearest neighbor over a bucketed point set"
    ~default_scale:12_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let npts = scale and nq = scale / 8 in
      let pts = Sarray.create ~len:npts ~elt_bytes:8 in
      let qs = Sarray.create ~len:nq ~elt_bytes:8 in
      let rng = Warden_util.Splitmix.make seed in
      let gen _ =
        Bkit.pack2
          (Warden_util.Splitmix.int rng coord_max)
          (Warden_util.Splitmix.int rng coord_max)
      in
      Sarray.init_host ms pts gen;
      Sarray.init_host ms qs gen;
      (* Bucket points by grid cell: count, scan, fill (in-sim). *)
      let ncells = gside * gside in
      let counts = Sarray.create ~len:(ncells + 1) ~elt_bytes:8 in
      for i = 0 to npts - 1 do
        let p = Sarray.get pts i in
        let c = cell_of (Bkit.unpack_hi p) (Bkit.unpack_lo p) in
        Sarray.set_i counts c (Sarray.get_i counts c + 1);
        Par.tick 3
      done;
      ignore (Bkit.seq_scan_excl counts);
      let offs = Sarray.create ~len:(ncells + 1) ~elt_bytes:8 in
      for c = 0 to ncells do
        Sarray.set offs c (Sarray.get counts c)
      done;
      let bucketed = Sarray.create ~len:npts ~elt_bytes:8 in
      for i = 0 to npts - 1 do
        let p = Sarray.get pts i in
        let c = cell_of (Bkit.unpack_hi p) (Bkit.unpack_lo p) in
        let pos = Sarray.get_i offs c in
        Sarray.set_i offs c (pos + 1);
        Sarray.set bucketed pos p;
        Par.tick 3
      done;
      (* Parallel queries: expand rings of cells until the best distance
         beats the untested ring's minimum possible distance. *)
      let cell_w = coord_max / gside in
      let nearest qx qy =
        let best = ref max_int in
        let ring = ref 0 in
        let qcx = qx / cell_w and qcy = qy / cell_w in
        let continue_ = ref true in
        while !continue_ do
          let r = !ring in
          (* Scan cells at Chebyshev distance r from the query's cell. *)
          for cy = qcy - r to qcy + r do
            for cx = qcx - r to qcx + r do
              if
                (abs (cx - qcx) = r || abs (cy - qcy) = r)
                && cx >= 0 && cx < gside && cy >= 0 && cy < gside
              then begin
                let c = (cy * gside) + cx in
                let lo = Sarray.get_i counts c
                and hi = Sarray.get_i counts (c + 1) in
                for i = lo to hi - 1 do
                  Par.tick 4;
                  let p = Sarray.get bucketed i in
                  let d = dist2 qx qy (Bkit.unpack_hi p) (Bkit.unpack_lo p) in
                  if d < !best then best := d
                done
              end
            done
          done;
          (* Any point in ring r+1 is at least r*cell_w away. *)
          let safe = r * cell_w in
          if (!best < safe * safe && !best < max_int) || r > gside then
            continue_ := false
          else ring := r + 1
        done;
        !best
      in
      let out =
        Bkit.tabulate_leafy ~grain:64 ~n:nq ~elt_bytes:8 (fun qi ->
            let q = Sarray.get qs qi in
            Int64.of_int (nearest (Bkit.unpack_hi q) (Bkit.unpack_lo q)))
      in
      (pts, qs, out))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (pts, qs, out) ->
      let hp = Bkit.host_array ms pts in
      let hq = Bkit.host_array ms qs in
      let ok = ref true in
      Array.iteri
        (fun qi q ->
          let qx = Bkit.unpack_hi q and qy = Bkit.unpack_lo q in
          let best = ref max_int in
          Array.iter
            (fun p ->
              let d = dist2 qx qy (Bkit.unpack_hi p) (Bkit.unpack_lo p) in
              if d < !best then best := d)
            hp;
          if Int64.to_int (Sarray.peek_host ms out qi) <> !best then ok := false)
        hq;
      !ok)
