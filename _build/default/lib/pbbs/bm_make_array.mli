(** PBBS benchmark: make_array. *)

val spec : Spec.t
