(* dedup: remove duplicates with a shared lock-free hash set. Insertions
   use CAS on a root-allocated table — synchronization-style traffic that
   needs coherence and gets no help from WARDen (the paper measures dedup
   as its weakest benchmark). *)

open Warden_runtime

let spec =
  Spec.make ~name:"dedup" ~descr:"hash-set duplicate removal via CAS"
    ~default_scale:40_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let input = Sarray.create ~len:scale ~elt_bytes:8 in
      (* Values in [1, scale/2]: roughly half are duplicates. 0 is the
         table's empty marker. *)
      Bkit.gen_ints ms input ~seed ~bound:(Int64.of_int (scale / 2));
      let rng = Warden_util.Splitmix.make seed in
      ignore rng;
      (* table size: next power of two >= 4*scale/2 for low load factor *)
      let tsize =
        let rec go s = if s >= 2 * scale then s else go (2 * s) in
        go 1024
      in
      let table = Sarray.create ~len:tsize ~elt_bytes:8 in
      let distinct =
        Par.parreduce ~grain:512 0 scale
          ~map:(fun i ->
            let v = Int64.add (Sarray.get input i) 1L in
            let h =
              Int64.to_int
                (Int64.rem
                   (Int64.mul v 0x9E3779B97F4A7C15L)
                   (Int64.of_int tsize))
            in
            let h = abs h in
            (* Linear probing; CAS claims an empty slot. *)
            let rec probe idx tries =
              Par.tick 3;
              if tries > tsize then 0
              else
                let cur = Sarray.get table idx in
                if cur = v then 0 (* already present *)
                else if cur = 0L then
                  if
                    Par.cas (Sarray.addr table idx) ~size:8 ~expected:0L
                      ~desired:v
                  then 1
                  else probe idx (tries + 1) (* lost the race; re-read *)
                else probe ((idx + 1) mod tsize) (tries + 1)
            in
            probe (h mod tsize) 0)
          ~combine:( + ) ~init:0
      in
      (input, distinct))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (input, distinct) ->
      let h = Bkit.host_array ms input in
      let seen = Hashtbl.create 1024 in
      Array.iter (fun v -> Hashtbl.replace seen v ()) h;
      Hashtbl.length seen = distinct)
