(** Benchmark packaging for the PBBS-like suite (§7.1).

    Each benchmark couples an in-simulator parallel program (written
    against {!Warden_runtime.Par}) with a host-side verifier that checks
    the program's output in the flushed final memory image. Running a
    benchmark therefore validates the whole stack: a protocol bug that
    delivers stale data makes verification fail. *)

type t = {
  name : string;
  descr : string;
  default_scale : int;
      (** Problem size giving a simulation of a few hundred thousand to a
          few million memory accesses (§7.1 scales inputs the same way). *)
  run :
    scale:int ->
    seed:int64 ->
    ?params:Warden_runtime.Rtparams.t ->
    ?workers:int ->
    Warden_sim.Engine.t ->
    bool;
      (** Execute on (and consume) the engine; returns whether the output
          verified. *)
}

val make :
  name:string ->
  descr:string ->
  default_scale:int ->
  prog:(scale:int -> seed:int64 -> ms:Warden_sim.Memsys.t -> unit -> 'out) ->
  verify:(scale:int -> seed:int64 -> ms:Warden_sim.Memsys.t -> 'out -> bool) ->
  t
(** [prog] runs as the root task; [verify] runs host-side after a full
    cache flush. *)
