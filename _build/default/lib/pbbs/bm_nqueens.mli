(** PBBS benchmark: nqueens. *)

val spec : Spec.t

val host_count : int -> int
(** Host-side reference solution count. *)
