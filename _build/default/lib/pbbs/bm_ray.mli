(** PBBS benchmark: ray. *)

val spec : Spec.t
