open Warden_util
open Warden_runtime

(* --- input generation --------------------------------------------------- *)

let gen_ints ms a ~seed ~bound =
  let rng = Splitmix.make seed in
  Sarray.init_host ms a (fun _ -> Splitmix.int64_in rng bound)

let gen_floats ms a ~seed ~bound =
  let rng = Splitmix.make seed in
  Sarray.init_host ms a (fun _ -> Int64.bits_of_float (Splitmix.float rng bound))

let gen_text ms a ~seed ~alphabet =
  let rng = Splitmix.make seed in
  let n = String.length alphabet in
  Sarray.init_host ms a (fun _ ->
      Int64.of_int (Char.code alphabet.[Splitmix.int rng n]))

(* --- in-simulator sorting ---------------------------------------------- *)

let ucmp = Int64.unsigned_compare

let insertion_sort a ~lo ~hi =
  for i = lo + 1 to hi - 1 do
    let v = Sarray.get a i in
    let j = ref (i - 1) in
    Par.tick 2;
    while !j >= lo && ucmp (Sarray.get a !j) v > 0 do
      Sarray.set a (!j + 1) (Sarray.get a !j);
      decr j;
      Par.tick 2
    done;
    Sarray.set a (!j + 1) v
  done

let swap a i j =
  let vi = Sarray.get a i and vj = Sarray.get a j in
  Sarray.set a i vj;
  Sarray.set a j vi

let rec quicksort a ~lo ~hi =
  if hi - lo <= 24 then insertion_sort a ~lo ~hi
  else begin
    (* Median-of-three pivot. *)
    let mid = lo + ((hi - lo) / 2) in
    let va = Sarray.get a lo and vb = Sarray.get a mid and vc = Sarray.get a (hi - 1) in
    let pivot =
      let lo3, hi3 = if ucmp va vb <= 0 then (va, vb) else (vb, va) in
      if ucmp vc lo3 <= 0 then lo3 else if ucmp vc hi3 >= 0 then hi3 else vc
    in
    Par.tick 6;
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while ucmp (Sarray.get a !i) pivot < 0 do
        incr i;
        Par.tick 2
      done;
      while ucmp (Sarray.get a !j) pivot > 0 do
        decr j;
        Par.tick 2
      done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    quicksort a ~lo ~hi:(!j + 1);
    quicksort a ~lo:!i ~hi
  end

let seq_sort a ~lo ~hi = if hi - lo > 1 then quicksort a ~lo ~hi

let merge_into ~src1 ~src2 ~dst =
  let n1 = Sarray.length src1 and n2 = Sarray.length src2 in
  if Sarray.length dst <> n1 + n2 then invalid_arg "Bkit.merge_into";
  let i = ref 0 and j = ref 0 in
  for k = 0 to n1 + n2 - 1 do
    Par.tick 2;
    let take1 =
      if !i >= n1 then false
      else if !j >= n2 then true
      else ucmp (Sarray.get src1 !i) (Sarray.get src2 !j) <= 0
    in
    if take1 then begin
      Sarray.set dst k (Sarray.get src1 !i);
      incr i
    end
    else begin
      Sarray.set dst k (Sarray.get src2 !j);
      incr j
    end
  done

let tabulate_leafy ?(grain = 256) ~n ~elt_bytes f =
  let rec go lo hi =
    let len = hi - lo in
    if len <= grain then begin
      let out = Sarray.create ~len ~elt_bytes in
      for i = 0 to len - 1 do
        Sarray.set out i (f (lo + i))
      done;
      out
    end
    else begin
      let mid = lo + (len / 2) in
      let l, r = Par.par2 (fun () -> go lo mid) (fun () -> go mid hi) in
      (* Concatenate after the join, in the rejoined (leaf-again) heap. *)
      let out = Sarray.create ~len ~elt_bytes in
      for i = 0 to Sarray.length l - 1 do
        Sarray.set out i (Sarray.get l i)
      done;
      for i = 0 to Sarray.length r - 1 do
        Sarray.set out (Sarray.length l + i) (Sarray.get r i)
      done;
      out
    end
  in
  if n = 0 then Sarray.create ~len:0 ~elt_bytes else go 0 n

let msort ?(grain = 256) a =
  let rec go (s : Sarray.t) =
    let n = Sarray.length s in
    if n <= grain then begin
      (* Leaf: copy into an array allocated in this task's own heap. *)
      let out = Sarray.create ~len:n ~elt_bytes:s.Sarray.elt in
      for i = 0 to n - 1 do
        Sarray.set out i (Sarray.get s i)
      done;
      seq_sort out ~lo:0 ~hi:n;
      out
    end
    else begin
      let half = n / 2 in
      let l, r =
        Par.par2
          (fun () -> go (Sarray.sub s ~pos:0 ~len:half))
          (fun () -> go (Sarray.sub s ~pos:half ~len:(n - half)))
      in
      (* Rejoined: this task is a leaf again; the output pages are fresh
         WARD pages of its heap. *)
      let out = Sarray.create ~len:n ~elt_bytes:s.Sarray.elt in
      merge_into ~src1:l ~src2:r ~dst:out;
      out
    end
  in
  go a

let seq_scan_excl a =
  let acc = ref 0 in
  for i = 0 to Sarray.length a - 1 do
    let v = Sarray.get_i a i in
    Sarray.set_i a i !acc;
    acc := !acc + v;
    Par.tick 1
  done;
  !acc

let pack2 hi lo =
  if hi < 0 || lo < 0 || hi > 0x3FFFFFFF || lo > 0x3FFFFFFF then
    invalid_arg "Bkit.pack2";
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 31)
    (Int64.of_int lo)

let unpack_hi v = Int64.to_int (Int64.shift_right_logical v 31) land 0x3FFFFFFF
let unpack_lo v = Int64.to_int v land 0x7FFFFFFF

(* --- matrices ----------------------------------------------------------- *)

module Mat = struct
  type t = { arr : Sarray.t; dim : int; row0 : int; col0 : int; n : int }

  let full arr ~dim =
    if Sarray.length arr <> dim * dim then invalid_arg "Mat.full";
    { arr; dim; row0 = 0; col0 = 0; n = dim }

  let quad m i j =
    let h = m.n / 2 in
    { m with row0 = m.row0 + (i * h); col0 = m.col0 + (j * h); n = h }

  let get m i j = Sarray.get m.arr (((m.row0 + i) * m.dim) + m.col0 + j)
  let set m i j v = Sarray.set m.arr (((m.row0 + i) * m.dim) + m.col0 + j) v

  let create ~n =
    let arr = Sarray.create ~len:(n * n) ~elt_bytes:8 in
    full arr ~dim:n
end

(* --- host-side helpers --------------------------------------------------- *)

let host_array ms a =
  Array.init (Sarray.length a) (fun i -> Sarray.peek_host ms a i)

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if ucmp a.(i) a.(i + 1) > 0 then ok := false
  done;
  !ok

let checksum a =
  (* Order-insensitive: sum of a mix of each element. *)
  Array.fold_left
    (fun acc v ->
      let m =
        Int64.mul
          (Int64.logxor v (Int64.shift_right_logical v 29))
          0x9E3779B97F4A7C15L
      in
      Int64.add acc m)
    0L a
