(** PBBS benchmark: primes. *)

val spec : Spec.t

val host_sieve : int -> bool array
(** Host-side reference sieve; [.(i)] iff [i] is prime. *)
