(** PBBS benchmark: dmm. *)

val spec : Spec.t
