(** PBBS benchmark: palindrome. *)

val spec : Spec.t
