(** PBBS benchmark: suffix_array. *)

val spec : Spec.t

val host_suffix_array : string -> int array
(** Host-side reference construction (naive suffix sort). *)
