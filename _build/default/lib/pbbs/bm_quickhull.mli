(** PBBS benchmark: quickhull. *)

val spec : Spec.t
