(* grep: find all occurrences of a pattern in a text. Two passes over
   chunk tasks: count matches per chunk, prefix-scan the counts, then each
   chunk writes its match offsets into its slice of the output — the PBBS
   pack idiom. *)

open Warden_runtime

let pattern = "abab"

let host_matches text =
  let k = String.length pattern in
  let out = ref [] in
  for i = String.length text - k downto 0 do
    if String.sub text i k = pattern then out := i :: !out
  done;
  !out

let text_of_host ms a =
  String.init (Sarray.length a) (fun i ->
      Char.chr (Int64.to_int (Sarray.peek_host ms a i)))

let match_at text i =
  let k = String.length pattern in
  let n = Sarray.length text in
  if i + k > n then false
  else begin
    let ok = ref true in
    (try
       for j = 0 to k - 1 do
         Par.tick 2;
         if Sarray.get text (i + j) <> Int64.of_int (Char.code pattern.[j]) then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok
  end

let spec =
  Spec.make ~name:"grep" ~descr:"pattern search with two-pass pack"
    ~default_scale:200_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let text = Sarray.create ~len:scale ~elt_bytes:1 in
      Bkit.gen_text ms text ~seed ~alphabet:"aababbab";
      let chunk = 1024 in
      let nchunks = (scale + chunk - 1) / chunk in
      let counts = Sarray.create ~len:(nchunks + 1) ~elt_bytes:8 in
      Par.parfor ~grain:1 0 nchunks (fun c ->
          let lo = c * chunk and hi = min scale ((c + 1) * chunk) in
          let n = ref 0 in
          for i = lo to hi - 1 do
            if match_at text i then incr n
          done;
          Sarray.set_i counts c !n);
      let total = Bkit.seq_scan_excl counts in
      let out = Sarray.create ~len:(max 1 total) ~elt_bytes:8 in
      Par.parfor ~grain:1 0 nchunks (fun c ->
          let lo = c * chunk and hi = min scale ((c + 1) * chunk) in
          let pos = ref (Sarray.get_i counts c) in
          for i = lo to hi - 1 do
            if match_at text i then begin
              Sarray.set_i out !pos i;
              incr pos
            end
          done);
      (text, out, total))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (text, out, total) ->
      let expect = host_matches (text_of_host ms text) in
      List.length expect = total
      && List.for_all2
           (fun e i -> e = i)
           expect
           (List.init total (fun i -> Int64.to_int (Sarray.peek_host ms out i))))
