(* suffix_array: prefix-doubling construction. Each round packs
   (rank, next-rank) keys with suffix indices, sorts them with the
   leaf-allocating parallel mergesort, and rescans ranks — a sort-heavy
   pipeline of generate-then-consume phases. *)

open Warden_runtime

let host_suffix_array text =
  let n = String.length text in
  let idx = Array.init n (fun i -> i) in
  let suffix i = String.sub text i (n - i) in
  Array.sort (fun a b -> compare (suffix a) (suffix b)) idx;
  idx

(* Keys pack (rank1+1, rank2+1) into the high bits and the index below so
   that sorting the packed words sorts by (rank1, rank2, index).
   n <= 2^20, ranks <= n. *)
let pack_key r1 r2 idx =
  Int64.logor
    (Int64.shift_left (Int64.of_int (r1 + 1)) 42)
    (Int64.logor (Int64.shift_left (Int64.of_int (r2 + 1)) 21) (Int64.of_int idx))

let key_idx v = Int64.to_int (Int64.logand v 0x1FFFFFL)
let key_ranks v = Int64.shift_right_logical v 21

let spec =
  Spec.make ~name:"suffix_array" ~descr:"prefix-doubling suffix array"
    ~default_scale:3_000
    ~prog:(fun ~scale ~seed ~ms () ->
      let n = scale in
      let text = Sarray.create ~len:n ~elt_bytes:1 in
      Bkit.gen_text ms text ~seed ~alphabet:"abab$cd";
      (* rank.(i): current rank of suffix i; init from characters. *)
      let rank = Sarray.create ~len:n ~elt_bytes:8 in
      Par.parfor ~grain:512 0 n (fun i -> Sarray.set rank i (Sarray.get text i));
      let order = ref (Sarray.create ~len:n ~elt_bytes:8) in
      let k = ref 1 in
      let continue_ = ref true in
      while !continue_ do
        (* Build packed keys functionally, sort, then re-rank. *)
        let keys =
          Bkit.tabulate_leafy ~grain:256 ~n ~elt_bytes:8 (fun i ->
              let r1 = Sarray.get_i rank i in
              let r2 = if i + !k < n then Sarray.get_i rank (i + !k) else -1 in
              pack_key r1 r2 i)
        in
        let sorted = Bkit.msort ~grain:256 keys in
        (* Assign new ranks: equal (r1, r2) pairs share a rank. *)
        let newrank = Sarray.create ~len:n ~elt_bytes:8 in
        let distinct = ref 1 in
        Sarray.set_i newrank (key_idx (Sarray.get sorted 0)) 0;
        for j = 1 to n - 1 do
          Par.tick 3;
          let prev = Sarray.get sorted (j - 1) and cur = Sarray.get sorted j in
          if key_ranks cur <> key_ranks prev then incr distinct;
          Sarray.set_i newrank (key_idx cur) (!distinct - 1)
        done;
        Par.parfor ~grain:512 0 n (fun i ->
            Sarray.set rank i (Sarray.get newrank i));
        order :=
          Bkit.tabulate_leafy ~grain:256 ~n ~elt_bytes:8 (fun j ->
              Int64.of_int (key_idx (Sarray.get sorted j)));
        if !distinct = n || !k >= n then continue_ := false else k := 2 * !k
      done;
      (text, !order))
    ~verify:(fun ~scale:_ ~seed:_ ~ms (text, order) ->
      let t =
        String.init (Sarray.length text) (fun i ->
            Char.chr (Int64.to_int (Sarray.peek_host ms text i)))
      in
      let expect = host_suffix_array t in
      let ok = ref true in
      Array.iteri
        (fun j e ->
          if Int64.to_int (Sarray.peek_host ms order j) <> e then ok := false)
        expect;
      !ok)
