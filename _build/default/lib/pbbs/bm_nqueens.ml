(* nqueens: count the placements of n queens. The top levels of the search
   tree fork; each child task copies the board prefix into its own heap
   (leaf allocation) before extending it. *)

open Warden_runtime

let host_count n =
  let rec go row cols diag1 diag2 =
    if row = n then 1
    else begin
      let total = ref 0 in
      for c = 0 to n - 1 do
        let d1 = row + c and d2 = row - c + n in
        if
          (not (List.mem c cols))
          && (not (List.mem d1 diag1))
          && not (List.mem d2 diag2)
        then total := !total + go (row + 1) (c :: cols) (d1 :: diag1) (d2 :: diag2)
      done;
      !total
    end
  in
  go 0 [] [] []

(* board: a per-task array of column choices for rows [0, row). *)
let safe board row col =
  let ok = ref true in
  for r = 0 to row - 1 do
    Par.tick 3;
    let c = Sarray.get_i board r in
    if c = col || abs (c - col) = row - r then ok := false
  done;
  !ok

let rec solve n board row =
  if row = n then 1
  else if row < 3 && n - row > 4 then
    (* Parallel across column choices; each child re-creates the board in
       its own heap. *)
    Par.parreduce ~grain:1 0 n
      ~map:(fun col ->
        if safe board row col then begin
          let mine = Sarray.create ~len:n ~elt_bytes:8 in
          for r = 0 to row - 1 do
            Sarray.set mine r (Sarray.get board r)
          done;
          Sarray.set_i mine row col;
          solve n mine (row + 1)
        end
        else 0)
      ~combine:( + ) ~init:0
  else begin
    let total = ref 0 in
    for col = 0 to n - 1 do
      if safe board row col then begin
        Sarray.set_i board row col;
        total := !total + solve n board (row + 1)
      end
    done;
    !total
  end

let spec =
  Spec.make ~name:"nqueens" ~descr:"n-queens solution counting"
    ~default_scale:9
    ~prog:(fun ~scale ~seed:_ ~ms:_ () ->
      let board = Sarray.create ~len:scale ~elt_bytes:8 in
      solve scale board 0)
    ~verify:(fun ~scale ~seed:_ ~ms:_ count -> count = host_count scale)
