(** PBBS benchmark: fib. *)

val spec : Spec.t

val fib_seq : int -> int
(** Host-side reference Fibonacci. *)
