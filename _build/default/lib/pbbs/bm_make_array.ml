(* make_array: parallel tabulation of a large array allocated by the root
   task. The writes target an ancestor (internal) heap, so the paper's
   leaf-page marking cannot cover them — this is the benchmark the paper
   reports as benefitting minimally from WARDen. *)

open Warden_runtime

let f i = Int64.of_int ((i * 2654435761) land 0x3FFFFFFF)

let spec =
  Spec.make ~name:"make_array" ~descr:"parallel tabulate into an ancestor array"
    ~default_scale:300_000
    ~prog:(fun ~scale ~seed:_ ~ms:_ () ->
      let a = Sarray.create ~len:scale ~elt_bytes:8 in
      Par.parfor ~grain:1024 0 scale (fun i ->
          Par.tick 2;
          Sarray.set a i (f i));
      a)
    ~verify:(fun ~scale ~seed:_ ~ms a ->
      let h = Bkit.host_array ms a in
      Array.length h = scale
      &&
      let ok = ref true in
      Array.iteri (fun i v -> if v <> f i then ok := false) h;
      !ok)
