(** PBBS benchmark: tokens. *)

val spec : Spec.t
