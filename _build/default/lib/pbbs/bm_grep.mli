(** PBBS benchmark: grep. *)

val spec : Spec.t
