lib/proto/fabric.mli: Bytes Pstats Warden_cache Warden_machine
