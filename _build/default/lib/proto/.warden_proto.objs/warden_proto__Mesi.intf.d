lib/proto/mesi.mli: Bytes Dirstate Fabric States Warden_cache
