lib/proto/mesi.ml: Bitset Bytes Dirstate Fabric Linedata List Pstats States Warden_cache Warden_machine Warden_util
