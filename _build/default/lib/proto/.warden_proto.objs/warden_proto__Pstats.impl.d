lib/proto/pstats.ml:
