lib/proto/dirstate.ml: Bitset Hashtbl States Warden_util
