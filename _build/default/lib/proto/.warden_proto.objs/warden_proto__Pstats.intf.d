lib/proto/pstats.mli:
