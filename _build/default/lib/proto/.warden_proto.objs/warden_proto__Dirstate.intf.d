lib/proto/dirstate.mli: States Warden_util
