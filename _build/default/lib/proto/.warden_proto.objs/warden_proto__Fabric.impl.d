lib/proto/fabric.ml: Bytes Config Energy Pstats Warden_cache Warden_machine
