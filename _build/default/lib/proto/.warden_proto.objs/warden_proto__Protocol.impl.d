lib/proto/protocol.ml: Dirstate Fabric List Mesi Pstats States Warden_cache
