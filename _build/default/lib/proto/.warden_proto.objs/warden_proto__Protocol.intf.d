lib/proto/protocol.mli: Fabric Mesi Pstats States Warden_cache
