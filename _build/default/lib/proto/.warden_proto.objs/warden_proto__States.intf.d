lib/proto/states.mli: Format
