lib/proto/states.ml: Format
