(** Coherence state vocabularies.

    [dstate] is the directory's per-block state: the four MESI states plus
    WARDen's W state (§5.1). The baseline MESI protocol never produces [W];
    it is part of the shared vocabulary so that the directory, the fabric
    and both protocols agree on types.

    [pstate] is the state a private cache believes its copy is in. WARDen
    deliberately leaves private caches unmodified (§5.1), so there is no
    private W state: under W the directory hands out ordinary E/M grants. *)

type dstate = D_I | D_S | D_E | D_M | D_W

type pstate = P_S | P_E | P_M
(** Invalid lines are simply absent from the private cache. *)

val grant_pstate : write:bool -> pstate
(** What a WARD-state or I-state grant installs privately: [M] for writes,
    [E] for reads (WARDen returns exclusive copies to readers, §5.1; MESI
    does the same from [D_I] — the E-state optimization). *)

val pp_dstate : Format.formatter -> dstate -> unit
val pp_pstate : Format.formatter -> pstate -> unit
