(** First-class packaging of a coherence protocol.

    The simulator's memory system drives whichever protocol it is given
    through this interface; MESI ({!Mesi_protocol}) and WARDen
    ({!Warden_core.Warden}) both implement it. The region operations model
    the paper's "Add/Remove Region" instructions (§6.1): plain MESI
    implements them as cheap no-ops so that the same runtime binary runs on
    both protocols, exactly as WARDen supports unmodified legacy code. *)

module type S = sig
  type t

  val name : string

  val create : Fabric.t -> t

  val fabric : t -> Fabric.t

  val handle_request :
    t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

  val handle_evict :
    t ->
    core:int ->
    blk:int ->
    pstate:States.pstate ->
    data:Warden_cache.Linedata.t ->
    unit

  val region_add : t -> lo:int -> hi:int -> bool
  (** Declare [\[lo, hi)] a WARD region. Returns whether the hardware
      accepted it (a full region CAM refuses). *)

  val is_ward : t -> blk:int -> bool
  (** Is this block currently inside an active WARD region? Always false
      for the MESI baseline. Used by invariant checkers, which must exempt
      W blocks from the single-writer rule. *)

  val region_remove : t -> lo:int -> hi:int -> int
  (** Remove the region and reconcile its blocks; returns the cycles the
      announcing thread is charged. *)

  val flush_all : t -> unit
  (** Drain every cached copy to memory (end-of-run, uncounted). *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t

val name : t -> string
val fabric : t -> Fabric.t
val stats : t -> Pstats.t

val handle_request :
  t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

val handle_evict :
  t -> core:int -> blk:int -> pstate:States.pstate -> data:Warden_cache.Linedata.t -> unit

val region_add : t -> lo:int -> hi:int -> bool
val region_remove : t -> lo:int -> hi:int -> int
val is_ward : t -> blk:int -> bool
val flush_all : t -> unit

val mesi : Fabric.t -> t
(** Package the baseline MESI protocol. *)
