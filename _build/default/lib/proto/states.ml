type dstate = D_I | D_S | D_E | D_M | D_W

type pstate = P_S | P_E | P_M

let grant_pstate ~write = if write then P_M else P_E

let pp_dstate fmt s =
  Format.pp_print_string fmt
    (match s with D_I -> "I" | D_S -> "S" | D_E -> "E" | D_M -> "M" | D_W -> "W")

let pp_pstate fmt s =
  Format.pp_print_string fmt
    (match s with P_S -> "S" | P_E -> "E" | P_M -> "M")
