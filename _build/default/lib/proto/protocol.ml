module type S = sig
  type t

  val name : string
  val create : Fabric.t -> t
  val fabric : t -> Fabric.t

  val handle_request :
    t -> core:int -> blk:int -> write:bool -> holds_s:bool -> Mesi.grant

  val handle_evict :
    t ->
    core:int ->
    blk:int ->
    pstate:States.pstate ->
    data:Warden_cache.Linedata.t ->
    unit

  val region_add : t -> lo:int -> hi:int -> bool
  val is_ward : t -> blk:int -> bool
  val region_remove : t -> lo:int -> hi:int -> int
  val flush_all : t -> unit
end

type t = Packed : (module S with type t = 'a) * 'a -> t

let name (Packed ((module P), _)) = P.name
let fabric (Packed ((module P), p)) = P.fabric p
let stats t = (fabric t).Fabric.stats

let handle_request (Packed ((module P), p)) ~core ~blk ~write ~holds_s =
  P.handle_request p ~core ~blk ~write ~holds_s

let handle_evict (Packed ((module P), p)) ~core ~blk ~pstate ~data =
  P.handle_evict p ~core ~blk ~pstate ~data

let region_add (Packed ((module P), p)) ~lo ~hi = P.region_add p ~lo ~hi
let region_remove (Packed ((module P), p)) ~lo ~hi = P.region_remove p ~lo ~hi
let is_ward (Packed ((module P), p)) ~blk = P.is_ward p ~blk
let flush_all (Packed ((module P), p)) = P.flush_all p

module Mesi_protocol = struct
  type t = { fabric : Fabric.t; dir : Dirstate.t }

  let name = "mesi"
  let create fabric = { fabric; dir = Dirstate.create () }
  let fabric t = t.fabric

  let handle_request t ~core ~blk ~write ~holds_s =
    Mesi.handle_request t.fabric t.dir ~core ~blk ~write ~holds_s

  let handle_evict t ~core ~blk ~pstate ~data =
    Mesi.handle_evict t.fabric t.dir ~core ~blk ~pstate ~data

  (* The region instructions exist in the ISA either way; on a machine
     without WARDen support they retire with no architectural effect (the
     attempt is still counted, so runs are comparable). *)
  let region_add t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_adds <-
      t.fabric.Fabric.stats.Pstats.ward_adds + 1;
    t.fabric.Fabric.stats.Pstats.ward_rejects <-
      t.fabric.Fabric.stats.Pstats.ward_rejects + 1;
    false

  let is_ward _ ~blk:_ = false

  let region_remove t ~lo:_ ~hi:_ =
    t.fabric.Fabric.stats.Pstats.ward_removes <-
      t.fabric.Fabric.stats.Pstats.ward_removes + 1;
    0

  let flush_all t =
    let blocks = ref [] in
    Dirstate.iter t.dir (fun blk _ -> blocks := blk :: !blocks);
    List.iter (fun blk -> Mesi.flush_block t.fabric t.dir ~blk) !blocks
end

let mesi fabric = Packed ((module Mesi_protocol), Mesi_protocol.create fabric)
