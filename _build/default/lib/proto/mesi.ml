open Warden_util
open Warden_cache
open States

type grant = { pstate : States.pstate; fill : Bytes.t option; latency : int }

(* Invalidate [target]'s copy, counting one invalidation per cache level
   holding the line (the paper counts coherence events per cache). Returns
   the extracted copy. *)
let invalidate_counted (f : Fabric.t) ~core probe_result =
  match probe_result with
  | None -> None
  | Some p ->
      ignore core;
      f.Fabric.stats.Pstats.invalidations <-
        f.Fabric.stats.Pstats.invalidations + p.Fabric.levels;
      Some p

let downgrade_counted (f : Fabric.t) probe_result =
  match probe_result with
  | None -> None
  | Some p ->
      f.Fabric.stats.Pstats.downgrades <-
        f.Fabric.stats.Pstats.downgrades + p.Fabric.levels;
      Some p

let handle_request (f : Fabric.t) dir ~core ~blk ~write ~holds_s =
  let e = Dirstate.entry dir blk in
  let cs = Fabric.socket_of_core f core in
  Fabric.dir_access f;
  Fabric.dir_msg f ~socket:cs ~blk ~data:false;
  let to_home = Fabric.dir_leg f ~socket:cs ~blk in
  let from_home = to_home in
  let fetch_shared () =
    let data, where = f.Fabric.read_shared ~blk in
    let lat = Fabric.shared_read_latency f where in
    Fabric.dir_msg f ~socket:cs ~blk ~data:true;
    (data, lat)
  in
  match (e.Dirstate.state, write) with
  | D_W, _ -> assert false (* peeled off by the WARDen front end *)
  | D_I, _ ->
      let data, shared_lat = fetch_shared () in
      e.Dirstate.state <- (if write then D_M else D_E);
      e.Dirstate.owner <- core;
      {
        pstate = grant_pstate ~write;
        fill = Some data;
        latency = to_home + shared_lat + from_home;
      }
  | D_S, false ->
      assert (not (Bitset.mem e.Dirstate.sharers core));
      let data, shared_lat = fetch_shared () in
      Bitset.add e.Dirstate.sharers core;
      { pstate = P_S; fill = Some data; latency = to_home + shared_lat + from_home }
  | D_S, true ->
      (* Upgrade (or write miss to a shared block): invalidate every other
         sharer; acks flow to the requestor. *)
      let inv_lat = ref 0 in
      Bitset.iter e.Dirstate.sharers (fun s ->
          if s <> core then begin
            let ss = Fabric.socket_of_core f s in
            Fabric.dir_msg f ~socket:ss ~blk ~data:false;
            Fabric.msg f ~from_socket:ss ~to_socket:cs ~data:false;
            ignore
              (invalidate_counted f ~core:s (f.Fabric.invalidate_priv ~core:s ~blk));
            inv_lat :=
              max !inv_lat
                (Fabric.dir_hop f ~socket:ss ~blk
                + Fabric.hop f ~from_socket:ss ~to_socket:cs)
          end);
      let data, shared_lat =
        if holds_s then (None, f.Fabric.config.Warden_machine.Config.l3_lat)
        else
          let d, l = fetch_shared () in
          (Some d, l)
      in
      if not holds_s then
        (* grant message already counted by fetch_shared *)
        ()
      else Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      e.Dirstate.state <- D_M;
      e.Dirstate.owner <- core;
      Bitset.clear e.Dirstate.sharers;
      {
        pstate = P_M;
        fill = data;
        latency = to_home + max shared_lat !inv_lat + from_home;
      }
  | (D_E | D_M), _ ->
      (* Fwd-GetS / Fwd-GetM to the owner. The owner may have silently
         upgraded E to M, so its data is fetched either way. *)
      let o = e.Dirstate.owner in
      assert (o >= 0 && o <> core);
      let os = Fabric.socket_of_core f o in
      f.Fabric.stats.Pstats.fwds <- f.Fabric.stats.Pstats.fwds + 1;
      Fabric.dir_msg f ~socket:os ~blk ~data:false;
      Fabric.msg f ~from_socket:os ~to_socket:cs ~data:true;
      let probe =
        if write then
          invalidate_counted f ~core:o (f.Fabric.invalidate_priv ~core:o ~blk)
        else downgrade_counted f (f.Fabric.downgrade_priv ~core:o ~blk)
      in
      let owner_line =
        match probe with
        | Some p -> p.Fabric.data
        | None -> assert false (* directory is precise: owner must hold it *)
      in
      (* A dirty copy must reach the home on a downgrade so later S readers
         can be served from the LLC: a real writeback data message. *)
      if Linedata.is_dirty owner_line then begin
        if not write then begin
          Fabric.dir_msg f ~socket:os ~blk ~data:true;
          f.Fabric.stats.Pstats.writebacks <-
            f.Fabric.stats.Pstats.writebacks + 1
        end;
        f.Fabric.llc_merge ~blk owner_line;
        Linedata.clear_dirty owner_line
      end;
      let data = Bytes.copy (Linedata.bytes owner_line) in
      let latency =
        to_home
        + f.Fabric.config.Warden_machine.Config.l3_lat
        + Fabric.dir_hop f ~socket:os ~blk
        + f.Fabric.config.Warden_machine.Config.l2_lat
        + Fabric.hop f ~from_socket:os ~to_socket:cs
      in
      if write then begin
        e.Dirstate.state <- D_M;
        e.Dirstate.owner <- core;
        Bitset.clear e.Dirstate.sharers;
        { pstate = P_M; fill = Some data; latency }
      end
      else begin
        e.Dirstate.state <- D_S;
        e.Dirstate.owner <- -1;
        Bitset.clear e.Dirstate.sharers;
        Bitset.add e.Dirstate.sharers o;
        Bitset.add e.Dirstate.sharers core;
        { pstate = P_S; fill = Some data; latency }
      end

let handle_evict (f : Fabric.t) dir ~core ~blk ~pstate ~data =
  let e = Dirstate.entry dir blk in
  let cs = Fabric.socket_of_core f core in
  Fabric.dir_access f;
  match pstate with
  | P_M ->
      (* Dir may still believe E after a silent E->M upgrade. *)
      assert (e.Dirstate.state = D_M || e.Dirstate.state = D_E);
      assert (e.Dirstate.owner = core);
      Fabric.dir_msg f ~socket:cs ~blk ~data:true;
      f.Fabric.stats.Pstats.writebacks <- f.Fabric.stats.Pstats.writebacks + 1;
      f.Fabric.llc_put_full ~blk (Linedata.bytes data);
      Dirstate.set_invalid e
  | P_E ->
      assert (e.Dirstate.state = D_E && e.Dirstate.owner = core);
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      Dirstate.set_invalid e
  | P_S ->
      assert (e.Dirstate.state = D_S);
      Fabric.dir_msg f ~socket:cs ~blk ~data:false;
      Bitset.remove e.Dirstate.sharers core;
      if Bitset.is_empty e.Dirstate.sharers then Dirstate.set_invalid e

let flush_block (f : Fabric.t) dir ~blk =
  match Dirstate.find dir blk with
  | None -> ()
  | Some e -> (
      match e.Dirstate.state with
      | D_I -> ()
      | D_W -> assert false
      | D_S ->
          List.iter
            (fun c -> ignore (f.Fabric.invalidate_priv ~core:c ~blk))
            (Dirstate.holders e);
          Dirstate.set_invalid e
      | D_E | D_M -> (
          let o = e.Dirstate.owner in
          match f.Fabric.invalidate_priv ~core:o ~blk with
          | None -> Dirstate.set_invalid e
          | Some p ->
              (* A silently-upgraded E line is dirty; a true E line is not.
                 An M line must be written back whether or not its mask is
                 set (its fill base may predate memory). The writeback is
                 traffic the program owes no matter when it drains, so it
                 is counted. *)
              if e.Dirstate.state = D_M || Linedata.is_dirty p.Fabric.data
              then begin
                Fabric.dir_msg f ~socket:(Fabric.socket_of_core f o) ~blk
                  ~data:true;
                f.Fabric.stats.Pstats.writebacks <-
                  f.Fabric.stats.Pstats.writebacks + 1;
                f.Fabric.llc_put_full ~blk (Linedata.bytes p.Fabric.data)
              end;
              Dirstate.set_invalid e))
