lib/machine/energy.mli:
