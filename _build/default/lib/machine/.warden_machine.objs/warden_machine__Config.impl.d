lib/machine/config.ml: Addr Format Printf Warden_mem
