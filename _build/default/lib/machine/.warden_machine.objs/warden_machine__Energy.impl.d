lib/machine/energy.ml:
