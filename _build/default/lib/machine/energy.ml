type costs = {
  core_cycle_pj : float;
  l1_pj : float;
  l2_pj : float;
  l3_pj : float;
  dir_pj : float;
  dram_pj : float;
  msg_intra_pj : float;
  msg_inter_pj : float;
  cam_pj : float;
}

let default_costs =
  {
    core_cycle_pj = 900.0;
    l1_pj = 15.0;
    l2_pj = 45.0;
    l3_pj = 240.0;
    dir_pj = 60.0;
    dram_pj = 15_000.0;
    msg_intra_pj = 300.0;
    msg_inter_pj = 6_000.0;
    cam_pj = 8.0;
  }

type t = {
  c : costs;
  mutable core : float;
  mutable cache : float;
  mutable dram : float;
  mutable network : float;
}

let create ?(costs = default_costs) () =
  { c = costs; core = 0.; cache = 0.; dram = 0.; network = 0. }

let costs t = t.c

let core_cycles t ~cores ~cycles =
  t.core <- t.core +. (float_of_int cores *. float_of_int cycles *. t.c.core_cycle_pj)

let l1_access t = t.cache <- t.cache +. t.c.l1_pj
let l2_access t = t.cache <- t.cache +. t.c.l2_pj
let l3_access t = t.cache <- t.cache +. t.c.l3_pj
let dir_access t = t.cache <- t.cache +. t.c.dir_pj
let dram_access t = t.dram <- t.dram +. t.c.dram_pj

let message t ~inter_socket ~data =
  let base = if inter_socket then t.c.msg_inter_pj else t.c.msg_intra_pj in
  t.network <- t.network +. (if data then 5. *. base else base)

let cam_lookup t = t.cache <- t.cache +. t.c.cam_pj

let core_pj t = t.core
let cache_pj t = t.cache
let dram_pj t = t.dram
let network_pj t = t.network
let processor_pj t = t.core +. t.cache +. t.dram
let total_pj t = processor_pj t +. t.network
