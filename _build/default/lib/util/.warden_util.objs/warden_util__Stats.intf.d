lib/util/stats.mli:
