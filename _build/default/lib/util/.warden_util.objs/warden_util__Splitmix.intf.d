lib/util/splitmix.mli:
