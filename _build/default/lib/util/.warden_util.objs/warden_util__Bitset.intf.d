lib/util/bitset.mli:
