lib/util/pqueue.mli:
