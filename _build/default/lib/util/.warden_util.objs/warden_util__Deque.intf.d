lib/util/deque.mli:
