lib/util/table.mli:
