(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. Requires all elements positive. *)

val percent_change : baseline:float -> value:float -> float
(** [(baseline - value) / baseline * 100.]: positive means [value] improved
    (shrank) relative to [baseline]. *)

val speedup : baseline:float -> value:float -> float
(** [baseline /. value]; how much faster [value] is than [baseline]. *)

type online
(** Online accumulator for count/mean/min/max (Welford for variance). *)

val online : unit -> online
val push : online -> float -> unit
val count : online -> int
val omean : online -> float
val variance : online -> float
val stddev : online -> float
val omin : online -> float
val omax : online -> float
