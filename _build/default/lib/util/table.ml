let fmt_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let render ~header ~rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let bar_chart ?(width = 40) ~title () series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let max_mag =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0. series
  in
  let scale = if max_mag = 0. then 0. else float_of_int width /. max_mag in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.abs v *. scale) in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (label_w - String.length label) ' ');
      Buffer.add_string buf " |";
      if v < 0. then Buffer.add_char buf '-';
      Buffer.add_string buf (String.make n '#');
      Buffer.add_string buf (Printf.sprintf " %.2f\n" v))
    series;
  Buffer.contents buf
