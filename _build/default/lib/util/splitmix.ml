type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = seed }

let copy t = { state = t.state }

(* Mixing function from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int64_in t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Splitmix.int64_in";
  (* Rejection sampling to avoid modulo bias: reject when the draw falls in
     the incomplete final interval, detected by r - v + (bound - 1)
     overflowing (the standard Java nextLong(bound) test). *)
  let rec go () =
    let r = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem r bound in
    if Int64.compare (Int64.add (Int64.sub r v) (Int64.sub bound 1L)) 0L < 0
    then go ()
    else v
  in
  go ()

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int";
  Int64.to_int (int64_in t (Int64.of_int bound))

let float t bound =
  let r = Int64.shift_right_logical (next t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let split t = { state = mix64 (next t) }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
