(** Deterministic SplitMix64 pseudo-random number generator.

    Every stochastic choice in the simulator (steal victims, workload
    generation) draws from an explicitly-seeded [Splitmix.t] so that whole
    simulations are reproducible bit-for-bit. *)

type t

val make : int64 -> t
(** [make seed] creates a generator from a 64-bit seed. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int64_in : t -> int64 -> int64
(** [int64_in t bound] is uniform in [\[0, bound)]. Requires [bound > 0L]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator, as in the SplitMix design. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
