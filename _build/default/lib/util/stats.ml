let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0. then invalid_arg "Stats.geomean: nonpositive element";
            acc +. log x)
          0. xs
      in
      exp (log_sum /. float_of_int (List.length xs))

let percent_change ~baseline ~value =
  if baseline = 0. then 0. else (baseline -. value) /. baseline *. 100.

let speedup ~baseline ~value = if value = 0. then infinity else baseline /. value

type online = {
  mutable n : int;
  mutable m : float; (* running mean *)
  mutable s : float; (* sum of squared deviations *)
  mutable lo : float;
  mutable hi : float;
}

let online () = { n = 0; m = 0.; s = 0.; lo = infinity; hi = neg_infinity }

let push t x =
  t.n <- t.n + 1;
  let delta = x -. t.m in
  t.m <- t.m +. (delta /. float_of_int t.n);
  t.s <- t.s +. (delta *. (x -. t.m));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let omean t = t.m
let variance t = if t.n < 2 then 0. else t.s /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let omin t = t.lo
let omax t = t.hi
