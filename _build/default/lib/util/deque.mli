(** Double-ended work queue used by the work-stealing scheduler.

    The owner pushes and pops at the bottom; thieves steal from the top.
    The simulator is single-threaded, so no synchronization is needed; the
    structure only has to preserve work-stealing (LIFO-owner / FIFO-thief)
    order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_bottom : 'a t -> 'a -> unit
(** Owner enqueues freshly spawned work. *)

val pop_bottom : 'a t -> 'a option
(** Owner takes the most recently pushed item, [None] if empty. *)

val steal_top : 'a t -> 'a option
(** Thief takes the oldest item, [None] if empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Top-to-bottom snapshot, oldest first. *)
