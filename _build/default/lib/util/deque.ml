(* Growable circular buffer. [top] is the index of the oldest element,
   [bottom] one past the newest; both grow without bound and are reduced
   modulo the capacity, so [bottom - top] is the population. *)
type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;
  mutable bottom : int;
}

let initial_capacity = 16

let create () = { buf = Array.make initial_capacity None; top = 0; bottom = 0 }

let length t = t.bottom - t.top

let is_empty t = length t = 0

let slot t i = i land (Array.length t.buf - 1)

let grow t =
  let old = t.buf in
  let n = Array.length old in
  let fresh = Array.make (2 * n) None in
  for i = t.top to t.bottom - 1 do
    fresh.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
  done;
  t.buf <- fresh

let push_bottom t x =
  if length t = Array.length t.buf then grow t;
  t.buf.(slot t t.bottom) <- Some x;
  t.bottom <- t.bottom + 1

let pop_bottom t =
  if is_empty t then None
  else begin
    t.bottom <- t.bottom - 1;
    let i = slot t t.bottom in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    x
  end

let steal_top t =
  if is_empty t then None
  else begin
    let i = slot t t.top in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.top <- t.top + 1;
    x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.top <- 0;
  t.bottom <- 0

let to_list t =
  let rec go i acc =
    if i < t.top then acc
    else
      match t.buf.(slot t i) with
      | Some x -> go (i - 1) (x :: acc)
      | None -> go (i - 1) acc
  in
  go (t.bottom - 1) []
