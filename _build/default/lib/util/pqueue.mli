(** Binary min-heap priority queue keyed by integer priorities.

    Drives the discrete-event engine: priorities are cycle timestamps.
    Ties are broken by insertion order (FIFO), which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> prio:int -> 'a -> unit

val min_prio : 'a t -> int option
(** Priority of the front element without removing it. *)

val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option
(** Remove and return the element with the smallest priority (FIFO among
    equal priorities). *)

val clear : 'a t -> unit
