(** Plain-text rendering of tables and bar charts.

    The experiment harness uses these to print each reproduced table and
    figure in a shape directly comparable to the paper. *)

val render : header:string list -> rows:string list list -> string
(** Aligned ASCII table with a header rule. All rows must have the same
    arity as the header. *)

val bar_chart :
  ?width:int -> title:string -> unit -> (string * float) list -> string
(** [bar_chart ~title () series] renders one horizontal bar per labelled
    value, scaled to [width] characters for the maximum magnitude.
    Negative values render with a leading [-] marker on the bar. *)

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)
