(** Simulated physical addresses and cache-block geometry.

    Addresses are byte addresses in a flat simulated physical address space,
    represented as native [int]s (the space is far smaller than 62 bits).
    Cache blocks are fixed at 64 bytes, matching the paper's Table 2. *)

type t = int
(** A byte address. *)

val block_size : int
(** Bytes per cache block (64). *)

val block_bits : int
(** log2 [block_size]. *)

val block_of : t -> int
(** Block number containing an address. *)

val base_of_block : int -> t
(** First byte address of a block. *)

val offset_in_block : t -> int
(** Byte offset of an address within its block. *)

val block_base : t -> t
(** Address rounded down to its block boundary. *)

val same_block : t -> t -> bool

val blocks_spanning : t -> int -> int list
(** [blocks_spanning addr len] lists the block numbers touched by the byte
    range [\[addr, addr+len)], in ascending order. [len >= 0]. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering. *)
