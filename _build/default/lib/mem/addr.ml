type t = int

let block_bits = 6
let block_size = 1 lsl block_bits

let block_of addr = addr lsr block_bits
let base_of_block blk = blk lsl block_bits
let offset_in_block addr = addr land (block_size - 1)
let block_base addr = addr land lnot (block_size - 1)
let same_block a b = block_of a = block_of b

let blocks_spanning addr len =
  if len < 0 then invalid_arg "Addr.blocks_spanning";
  if len = 0 then []
  else begin
    let first = block_of addr and last = block_of (addr + len - 1) in
    let rec go b acc = if b < first then acc else go (b - 1) (b :: acc) in
    go last []
  end

let pp fmt addr = Format.fprintf fmt "0x%x" addr
