lib/mem/store.mli: Addr Bytes
