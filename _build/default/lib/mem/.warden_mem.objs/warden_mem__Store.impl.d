lib/mem/store.ml: Addr Bytes Char Hashtbl Int64 List Printf
