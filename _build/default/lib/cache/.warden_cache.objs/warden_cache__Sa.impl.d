lib/cache/sa.ml: Array
