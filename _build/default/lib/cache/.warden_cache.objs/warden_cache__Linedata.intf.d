lib/cache/linedata.mli: Bytes
