lib/cache/linedata.ml: Addr Bytes Char Int64 Warden_mem
