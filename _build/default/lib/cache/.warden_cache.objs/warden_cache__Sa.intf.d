lib/cache/sa.mli:
