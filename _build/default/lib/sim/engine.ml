open Warden_util
open Warden_mem
open Warden_machine

type _ Effect.t +=
  | E_load : (Addr.t * int) -> int64 Effect.t
  | E_store : (Addr.t * int * int64) -> unit Effect.t
  | E_rmw : (Addr.t * int * (int64 -> int64)) -> int64 Effect.t
  | E_tick : int -> unit Effect.t
  | E_stall : int -> unit Effect.t
  | E_now : int Effect.t
  | E_tid : int Effect.t
  | E_region_add : (int * int) -> bool Effect.t
  | E_region_remove : (int * int) -> unit Effect.t
  | E_yield : unit Effect.t

type tstate = {
  tid : int;
  mutable time : int;
  sb : int Queue.t; (* completion times of buffered stores, oldest first *)
}

type t = {
  ms : Memsys.t;
  cfg : Config.t;
  runq : (unit -> unit) Pqueue.t;
  threads : tstate array;
  mutable used_threads : int;
  mutable ran : bool;
}

let create cfg ~proto =
  {
    ms = Memsys.create cfg ~proto;
    cfg;
    runq = Pqueue.create ();
    threads =
      Array.init (Config.num_threads cfg) (fun tid ->
          { tid; time = 0; sb = Queue.create () });
    used_threads = 0;
    ran = false;
  }

let memsys t = t.ms
let config t = t.cfg

let retire t (st : tstate) n =
  let s = Memsys.sstats t.ms in
  s.Sstats.instructions <- s.Sstats.instructions + n;
  s.Sstats.per_thread_instructions.(st.tid) <-
    s.Sstats.per_thread_instructions.(st.tid) + n

let drain_ready st =
  while (not (Queue.is_empty st.sb)) && Queue.peek st.sb <= st.time do
    ignore (Queue.pop st.sb)
  done

(* A TSO fence: wait for every buffered store to complete. *)
let drain_all st =
  while not (Queue.is_empty st.sb) do
    st.time <- max st.time (Queue.pop st.sb)
  done

let handler t st =
  let open Effect.Deep in
  let schedule k work =
    Pqueue.add t.runq ~prio:st.time (fun () -> continue k (work ()))
  in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_tick n ->
            Some
              (fun (k : (a, unit) continuation) ->
                st.time <- st.time + n;
                retire t st n;
                continue k ())
        | E_stall n ->
            Some
              (fun k ->
                st.time <- st.time + n;
                continue k ())
        | E_now -> Some (fun k -> continue k st.time)
        | E_tid -> Some (fun k -> continue k st.tid)
        | E_yield -> Some (fun k -> schedule k (fun () -> ()))
        | E_load (addr, size) ->
            Some
              (fun k ->
                schedule k (fun () ->
                    let v, lat = Memsys.load t.ms ~thread:st.tid addr ~size in
                    st.time <- st.time + lat;
                    retire t st 1;
                    v))
        | E_store (addr, size, v) ->
            Some
              (fun k ->
                schedule k (fun () ->
                    drain_ready st;
                    if Queue.length st.sb >= t.cfg.Config.store_buffer_entries
                    then begin
                      (Memsys.sstats t.ms).Sstats.sb_stalls <-
                        (Memsys.sstats t.ms).Sstats.sb_stalls + 1;
                      st.time <- max st.time (Queue.pop st.sb)
                    end;
                    let lat = Memsys.store t.ms ~thread:st.tid addr ~size v in
                    Queue.push (st.time + lat) st.sb;
                    st.time <- st.time + 1;
                    retire t st 1))
        | E_rmw (addr, size, f) ->
            Some
              (fun k ->
                schedule k (fun () ->
                    drain_all st;
                    let old, lat = Memsys.rmw t.ms ~thread:st.tid addr ~size f in
                    st.time <- st.time + lat + 2;
                    retire t st 1;
                    old))
        | E_region_add (lo, hi) ->
            Some
              (fun k ->
                schedule k (fun () ->
                    st.time <- st.time + 1;
                    retire t st 1;
                    Memsys.region_add t.ms ~lo ~hi))
        | E_region_remove (lo, hi) ->
            Some
              (fun k ->
                schedule k (fun () ->
                    let lat = Memsys.region_remove t.ms ~lo ~hi in
                    st.time <- st.time + 1 + lat;
                    retire t st 1))
        | _ -> None)
  }

let run t bodies =
  if t.ran then invalid_arg "Engine.run: engine already used";
  t.ran <- true;
  let n = Array.length bodies in
  if n > Array.length t.threads then invalid_arg "Engine.run: too many threads";
  t.used_threads <- n;
  Array.iteri
    (fun tid body ->
      let st = t.threads.(tid) in
      Pqueue.add t.runq ~prio:0 (fun () ->
          Effect.Deep.match_with body () (handler t st)))
    bodies;
  let rec loop () =
    match Pqueue.pop t.runq with
    | None -> ()
    | Some (_, f) ->
        f ();
        loop ()
  in
  loop ();
  let makespan = ref 0 in
  for tid = 0 to n - 1 do
    drain_all t.threads.(tid);
    makespan := max !makespan t.threads.(tid).time
  done;
  (Memsys.sstats t.ms).Sstats.cycles <- !makespan;
  let cores_used =
    min (Config.num_cores t.cfg)
      ((n + t.cfg.Config.threads_per_core - 1) / t.cfg.Config.threads_per_core)
  in
  Energy.core_cycles (Memsys.energy t.ms) ~cores:cores_used ~cycles:!makespan;
  !makespan

module Ops = struct
  let load addr ~size = Effect.perform (E_load (addr, size))
  let store addr ~size v = Effect.perform (E_store (addr, size, v))
  let rmw addr ~size f = Effect.perform (E_rmw (addr, size, f))

  let cas addr ~size ~expected ~desired =
    let old = rmw addr ~size (fun v -> if v = expected then desired else v) in
    old = expected

  let fetch_add addr ~size delta = rmw addr ~size (Int64.add delta)

  let tick n = Effect.perform (E_tick n)
  let stall n = Effect.perform (E_stall n)
  let now () = Effect.perform E_now
  let tid () = Effect.perform E_tid
  let region_add ~lo ~hi = Effect.perform (E_region_add (lo, hi))
  let region_remove ~lo ~hi = Effect.perform (E_region_remove (lo, hi))
  let yield () = Effect.perform E_yield
end
