lib/sim/engine.ml: Addr Array Config Effect Energy Int64 Memsys Pqueue Queue Sstats Warden_machine Warden_mem Warden_util
