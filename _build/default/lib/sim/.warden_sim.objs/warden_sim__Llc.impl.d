lib/sim/llc.ml: Array Bytes Config Linedata Sa Store Warden_cache Warden_machine Warden_mem
