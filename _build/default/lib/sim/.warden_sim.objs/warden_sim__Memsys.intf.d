lib/sim/memsys.mli: Sstats Warden_machine Warden_mem Warden_proto
