lib/sim/privcache.mli: Bytes Warden_cache Warden_machine Warden_proto
