lib/sim/llc.mli: Bytes Warden_cache Warden_machine Warden_mem
