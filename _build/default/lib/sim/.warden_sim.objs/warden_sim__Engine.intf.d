lib/sim/engine.mli: Memsys Warden_machine Warden_mem
