lib/sim/sstats.ml: Array
