lib/sim/privcache.ml: Config Fabric Linedata Printf Sa States Warden_cache Warden_machine Warden_proto
