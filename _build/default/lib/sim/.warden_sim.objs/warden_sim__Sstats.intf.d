lib/sim/sstats.mli:
