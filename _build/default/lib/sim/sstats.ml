type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable priv_misses : int;
  mutable sb_stalls : int;
  mutable cycles : int;
  per_thread_instructions : int array;
}

let create ~threads =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    rmws = 0;
    l1_hits = 0;
    l2_hits = 0;
    priv_misses = 0;
    sb_stalls = 0;
    cycles = 0;
    per_thread_instructions = Array.make threads 0;
  }

let ipc t =
  if t.cycles = 0 then 0.
  else float_of_int t.instructions /. float_of_int t.cycles

let kilo_instructions t = float_of_int t.instructions /. 1000.
