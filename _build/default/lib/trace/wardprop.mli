(** Offline classifier for the WARD property (§3.1).

    Given the ordered accesses that a set of hardware threads made to a
    candidate region during its lifetime, decide whether the region had the
    WARD property:

    + no execution order may contain a cross-thread RAW dependence, and
    + any cross-thread WAW dependence must be resolvable in either order.

    Because the accesses come from one observed execution, we check
    conservatively: any read that follows a different thread's write to the
    same location violates condition 1; cross-thread WAWs writing {e
    different} values violate condition 2 (same-value WAWs — the prime-
    sieve pattern — are apathetic and allowed). This classifies the paper's
    Figure 3: Event 1 → [Raw_dependence], Event 2 → [Waw_ordered],
    Event 3 (same value or never read) → [Ward]. *)

type event = { thread : int; write : bool; addr : int; value : int64 }

type verdict =
  | Ward
  | Raw_dependence of { addr : int; writer : int; reader : int }
  | Waw_ordered of { addr : int; first : int; second : int }

val classify : event list -> verdict
(** First violation wins; RAW is reported in stream order. *)

val is_ward : event list -> bool
