type event = { thread : int; write : bool; addr : int; value : int64 }

type verdict =
  | Ward
  | Raw_dependence of { addr : int; writer : int; reader : int }
  | Waw_ordered of { addr : int; first : int; second : int }

type cell = { mutable writer : int; mutable value : int64 }

let classify events =
  let last_write : (int, cell) Hashtbl.t = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ward
    | ev :: rest -> (
        match Hashtbl.find_opt last_write ev.addr with
        | None ->
            if ev.write then
              Hashtbl.add last_write ev.addr
                { writer = ev.thread; value = ev.value };
            go rest
        | Some c ->
            if ev.write then
              if ev.thread <> c.writer && ev.value <> c.value then
                Waw_ordered { addr = ev.addr; first = c.writer; second = ev.thread }
              else begin
                c.writer <- ev.thread;
                c.value <- ev.value;
                go rest
              end
            else if ev.thread <> c.writer then
              Raw_dependence { addr = ev.addr; writer = c.writer; reader = ev.thread }
            else go rest)
  in
  go events

let is_ward events = classify events = Ward
