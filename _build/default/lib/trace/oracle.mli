(** Live execution oracles: dynamic checkers wired into the runtime's
    access and region hooks.

    - {b Disentanglement} (Definition 1): every program access must land in
      the accessing task's own heap or an ancestor's heap.
    - {b WARD regions} (§3.1): while a page is marked, no cross-thread RAW
      at any of its locations, no cross-thread WAW writing different
      values, and no atomics (which require coherence).

    The oracles validate the central claim of §4.1 — that the runtime's
    leaf-page marking only ever marks memory that actually has the WARD
    property — on real executions of the benchmark suite. *)

type report = {
  accesses : int;  (** Program accesses observed. *)
  ward_accesses : int;  (** Of those, accesses inside active WARD pages. *)
  disentanglement_violations : string list;  (** First few, formatted. *)
  ward_violations : string list;
}

val ward_fraction : report -> float

val with_oracle : (unit -> 'a) -> 'a * report
(** Install the hooks, run the function (typically a whole [Par.run]),
    uninstall, and report. Not reentrant. *)

val check_clean : report -> (unit, string) result
(** [Ok ()] when no violations were observed. *)
