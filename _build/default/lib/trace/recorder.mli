(** Full access-trace recording and offline analysis.

    Where {!Oracle} checks invariants on the fly, the recorder keeps the
    whole program-access stream (bounded) so it can be sliced afterwards:
    per-region event lists for the {!Wardprop} classifier, sharing
    histograms, and the WARD-coverage figures quoted in §7.2's analysis
    ("for all the benchmarks except tokens, 90%+ of accesses occur in a
    WARD region" — our conservative leaf-page marking yields lower
    coverage; the recorder measures exactly how much lower). *)

type event = {
  cycle : int;
  thread : int;
  kind : Warden_runtime.Par.access_kind;
  addr : int;
  size : int;
  value : int64;
  in_ward : bool;  (** Inside a marked region at the time of access. *)
}

type summary = {
  events : int;
  dropped : int;  (** Events beyond the buffer capacity (counted, not kept). *)
  ward_events : int;
  reads : int;
  writes : int;
  rmws : int;
  distinct_blocks : int;
  shared_blocks : int;  (** Blocks touched by more than one hardware thread. *)
  ward_verdict : [ `Ward | `Violations of int ];
      (** Offline classification of every marked-region access window. *)
}

val record : ?capacity:int -> (unit -> 'a) -> 'a * event list * summary
(** [record f] runs [f] (typically a whole [Par.run]) with recording hooks
    installed; returns the result, the retained events (oldest first, up to
    [capacity], default 200k) and the summary. Not reentrant; not
    composable with {!Oracle.with_oracle}. *)

val ward_coverage : summary -> float
(** Fraction of program accesses that hit marked WARD regions. *)

val pp_summary : Format.formatter -> summary -> unit
