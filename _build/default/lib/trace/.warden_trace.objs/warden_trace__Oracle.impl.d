lib/trace/oracle.ml: Fun Hashtbl Heap List Par Printf String Warden_core Warden_runtime Warden_sim
