lib/trace/wardprop.ml: Hashtbl
