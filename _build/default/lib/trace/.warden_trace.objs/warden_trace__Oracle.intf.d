lib/trace/oracle.mli:
