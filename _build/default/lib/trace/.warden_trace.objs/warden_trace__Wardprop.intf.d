lib/trace/wardprop.mli:
