lib/trace/recorder.mli: Format Warden_runtime
