lib/trace/recorder.ml: Format Fun Hashtbl Heap List Par Printf Warden_mem Warden_runtime Warden_sim Wardprop
